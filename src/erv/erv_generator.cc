#include "erv/erv_generator.h"

#include <algorithm>
#include <cmath>

#include "core/edge_determiner.h"
#include "rng/alias_table.h"
#include "core/rec_vec.h"
#include "core/scope_size.h"
#include "model/edge_probability.h"
#include "model/noise.h"
#include "util/flat_set64.h"

namespace tg::erv {

namespace {

int CeilLog2(std::uint64_t n) {
  TG_CHECK(n >= 1);
  int scale = 0;
  while ((std::uint64_t{1} << scale) < n) ++scale;
  return std::max(scale, 1);
}

/// Builds the seed matrix whose row conditionals equal the *column marginal*
/// of `in_seed`, i.e. every destination bit is 1 with probability
/// t = b + d regardless of the source bits. This makes the ERV in-degree
/// distribution independent of Kout (Section 6.1) while matching Table 3's
/// in-slope log2(b+d) - log2(a+c) exactly.
model::SeedMatrix MarginalizedInSeed(const model::SeedMatrix& in_seed) {
  double t = in_seed.ColSum(1);
  return model::SeedMatrix((1 - t) / 2, t / 2, (1 - t) / 2, t / 2);
}

}  // namespace

model::SeedMatrix SeedForSpec(const DegreeSpec& spec) {
  switch (spec.kind) {
    case DegreeSpec::Kind::kZipfian:
      return model::SeedMatrix::FromZipfOutSlope(spec.zipf_slope);
    case DegreeSpec::Kind::kGaussian:
    case DegreeSpec::Kind::kUniform:
    case DegreeSpec::Kind::kEmpirical:
      // Table 3: K[0.25 x4] gives the Gaussian (binomial) distribution with
      // mu = |E| / |V|. Uniform and empirical degrees are drawn directly
      // (see below); the uniform seed only matters if the spec is used for
      // the opposite side, where those kinds degrade to uniform targets.
      return model::SeedMatrix::ErdosRenyi();
  }
  TG_CHECK(false);
  return model::SeedMatrix::ErdosRenyi();
}

ErvStats GenerateErv(const ErvOptions& options,
                     const RichEdgeConsumer& consume) {
  TG_CHECK(options.num_sources >= 1);
  TG_CHECK(options.num_destinations >= 1);
  const int src_scale = CeilLog2(options.num_sources);
  const int gen_scale = CeilLog2(options.num_destinations);
  const VertexId gen_range = VertexId{1} << gen_scale;

  // Out side: scope sizes from Kout's row marginals, renormalized over the
  // rows actually used (num_sources need not be a power of two).
  const model::SeedMatrix out_seed = SeedForSpec(options.out_degree);
  const model::EdgeProbability out_prob(out_seed, src_scale);
  const double out_norm =
      options.num_sources == out_prob.num_vertices()
          ? 1.0
          : out_prob.CumulativeRowProbability(options.num_sources);

  // In side: one RecVec shared by every scope (the marginalized seed makes
  // the conditional independent of the source bits). The transpose maps the
  // spec's *in*-slope onto the column mass: for a target in-slope s the
  // destination-bit probability must be t = 1 / (1 + 2^-s), which is the
  // transposed matrix's ColSum(1).
  const model::SeedMatrix in_seed =
      MarginalizedInSeed(SeedForSpec(options.in_degree).Transposed());
  const model::NoiseVector in_noise(in_seed, gen_scale);
  const core::RecVec<double> rec_vec(in_noise, /*u=*/0);

  // Empirical out-degrees: alias table over the (degree, frequency) pairs.
  std::unique_ptr<rng::AliasTable> empirical_sampler;
  if (options.out_degree.kind == DegreeSpec::Kind::kEmpirical) {
    TG_CHECK_MSG(options.out_degree.empirical != nullptr &&
                     !options.out_degree.empirical->empty(),
                 "empirical spec needs a frequency table");
    std::vector<double> weights;
    weights.reserve(options.out_degree.empirical->size());
    for (const auto& [degree, count] : *options.out_degree.empirical) {
      (void)degree;
      weights.push_back(static_cast<double>(count));
    }
    empirical_sampler = std::make_unique<rng::AliasTable>(weights);
  }

  const rng::Rng root(options.rng_seed, /*stream=*/7);
  ErvStats stats;
  FlatSet64 dedup;
  for (VertexId u = 0; u < options.num_sources; ++u) {
    rng::Rng rng = root.Fork(u);

    std::uint64_t degree;
    if (options.out_degree.kind == DegreeSpec::Kind::kUniform) {
      std::uint64_t lo = options.out_degree.uniform_min;
      std::uint64_t hi = options.out_degree.uniform_max;
      TG_CHECK(hi >= lo);
      degree = lo + rng.NextBounded(hi - lo + 1);
    } else if (options.out_degree.kind == DegreeSpec::Kind::kEmpirical) {
      degree =
          (*options.out_degree.empirical)[empirical_sampler->Sample(&rng)]
              .first;
    } else {
      double p = out_prob.RowProbability(u) / out_norm;
      degree = core::SampleScopeSize(options.num_edges, p,
                                     options.num_destinations, &rng);
    }
    degree = std::min<std::uint64_t>(degree, options.num_destinations);
    if (degree == 0) continue;

    dedup.Reset(degree);
    std::uint64_t produced = 0;
    std::uint64_t attempts = 0;
    const std::uint64_t max_attempts = 100 * degree + 10000;
    while (produced < degree && attempts < max_attempts) {
      ++attempts;
      double x = core::NextUniformReal<double>(&rng, rec_vec.Total());
      VertexId v = core::DetermineEdge(rec_vec, x);
      // Map the power-of-two generation range onto [0, num_destinations)
      // (Section 6.1: v' = round(|Vdst| / |Vsrc| * v), applied to the
      // enclosing power-of-two range).
      VertexId mapped = static_cast<VertexId>(
          (static_cast<unsigned __int128>(v) * options.num_destinations) >>
          gen_scale);
      if (gen_range == options.num_destinations) mapped = v;
      if (dedup.Insert(mapped)) {
        consume(u, mapped);
        ++produced;
      }
    }
    stats.num_edges += produced;
    stats.num_scopes += 1;
    stats.max_out_degree = std::max(stats.max_out_degree, produced);
  }
  return stats;
}

}  // namespace tg::erv
