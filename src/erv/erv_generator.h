#ifndef TRILLIONG_ERV_ERV_GENERATOR_H_
#define TRILLIONG_ERV_ERV_GENERATOR_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "model/seed_matrix.h"
#include "rng/random.h"
#include "util/common.h"

namespace tg::erv {

/// An edge of a rich graph: source and destination are *global* vertex IDs
/// (offsets into their node-type ranges already applied by the caller).
using RichEdgeConsumer = std::function<void(VertexId src, VertexId dst)>;

/// The extended recursive vector (ERV) model of Section 6.1: generalizes the
/// recursive vector model to
///   * different seed parameters for scope sizes (Kout -> out-degree
///     distribution) and edge determination (Kin -> in-degree distribution);
///   * different source and destination vertex ranges (|Vsrc| != |Vdst|),
///     with destinations produced in the enclosing power-of-two range and
///     mapped into [0, |Vdst|) by proportional rounding.
///
/// Degree-distribution selection follows Table 3:
///   * Zipfian with slope s  -> SeedMatrix::FromZipfOutSlope(s)
///   * Gaussian (mu = |E|/|V|) -> uniform seed [0.25 x4]
///   * Uniform(lo, hi)       -> degrees drawn uniformly, destinations by Kin
struct DegreeSpec {
  enum class Kind { kZipfian, kGaussian, kUniform, kEmpirical };
  Kind kind = Kind::kZipfian;
  double zipf_slope = -1.662;      ///< Zipfian only
  std::uint64_t uniform_min = 1;   ///< Uniform only
  std::uint64_t uniform_max = 16;  ///< Uniform only
  /// Empirical only: (degree, frequency) pairs — the data-driven
  /// "frequency distribution" extension of Section 8's future work. Out-side
  /// degrees are drawn i.i.d. from this table (alias method).
  std::shared_ptr<const std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      empirical;

  static DegreeSpec Zipfian(double slope) {
    DegreeSpec spec;
    spec.kind = Kind::kZipfian;
    spec.zipf_slope = slope;
    return spec;
  }
  static DegreeSpec Gaussian() {
    DegreeSpec spec;
    spec.kind = Kind::kGaussian;
    return spec;
  }
  static DegreeSpec Uniform(std::uint64_t lo, std::uint64_t hi) {
    DegreeSpec spec;
    spec.kind = Kind::kUniform;
    spec.uniform_min = lo;
    spec.uniform_max = hi;
    return spec;
  }
  static DegreeSpec Empirical(
      std::vector<std::pair<std::uint64_t, std::uint64_t>> table) {
    DegreeSpec spec;
    spec.kind = Kind::kEmpirical;
    spec.empirical = std::make_shared<
        const std::vector<std::pair<std::uint64_t, std::uint64_t>>>(
        std::move(table));
    return spec;
  }
};

struct ErvOptions {
  /// Number of source vertices (need not be a power of two).
  std::uint64_t num_sources = 1 << 16;
  /// Number of destination vertices.
  std::uint64_t num_destinations = 1 << 16;
  /// Total edges to generate (before per-scope dedup).
  std::uint64_t num_edges = 1 << 20;
  DegreeSpec out_degree = DegreeSpec::Zipfian(-1.662);
  DegreeSpec in_degree = DegreeSpec::Gaussian();
  std::uint64_t rng_seed = 42;
};

struct ErvStats {
  std::uint64_t num_edges = 0;
  std::uint64_t num_scopes = 0;
  std::uint64_t max_out_degree = 0;
};

/// Generates the edge set. Sources and destinations are emitted as local IDs
/// in [0, num_sources) / [0, num_destinations); the gMark layer offsets them
/// into global ranges.
ErvStats GenerateErv(const ErvOptions& options,
                     const RichEdgeConsumer& consume);

/// Maps a degree spec to the seed matrix controlling that side's marginal
/// (Table 3). Exposed for tests.
model::SeedMatrix SeedForSpec(const DegreeSpec& spec);

}  // namespace tg::erv

#endif  // TRILLIONG_ERV_ERV_GENERATOR_H_
