#ifndef TRILLIONG_CLUSTER_SIM_CLUSTER_H_
#define TRILLIONG_CLUSTER_SIM_CLUSTER_H_

#include <algorithm>
#include <cstdio>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/network_model.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/common.h"
#include "util/memory_budget.h"
#include "util/stopwatch.h"

namespace tg::cluster {

/// Renders a captured worker exception for the failure log.
inline std::string DescribeError(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Simulated cluster: the substitute for the paper's "one master + ten slave
/// PCs" testbed (Section 7.1). Machines are modeled as groups of worker
/// threads sharing a per-machine MemoryBudget; the interconnect is modeled
/// by charging NetworkModel transfer time for every byte a shuffle moves
/// between distinct machines (intra-machine traffic is free). Workers do
/// real work on real threads — only machine boundaries and wire time are
/// simulated.
class SimCluster {
 public:
  struct Options {
    int num_machines = 10;
    int threads_per_machine = 6;
    /// Per-machine memory cap in bytes (0 = unlimited).
    std::uint64_t memory_limit_per_machine = 0;
    NetworkModel network;
  };

  explicit SimCluster(const Options& options) : options_(options) {
    TG_CHECK(options.num_machines >= 1);
    TG_CHECK(options.threads_per_machine >= 1);
    budgets_.reserve(options.num_machines);
    for (int m = 0; m < options.num_machines; ++m) {
      // Each budget carries its machine id so an OOM names the machine and
      // the per-machine mem.m<id>.* pressure gauges line up with spans.
      budgets_.push_back(std::make_unique<MemoryBudget>(
          options.memory_limit_per_machine, /*machine=*/m));
    }
  }

  int num_machines() const { return options_.num_machines; }
  int num_workers() const {
    return options_.num_machines * options_.threads_per_machine;
  }
  int MachineOfWorker(int worker) const {
    return worker / options_.threads_per_machine;
  }
  MemoryBudget* machine_budget(int machine) { return budgets_[machine].get(); }
  MemoryBudget* worker_budget(int worker) {
    return budgets_[MachineOfWorker(worker)].get();
  }
  const NetworkModel& network() const { return options_.network; }

  /// Peak memory over machines (the paper's per-machine peak plots).
  std::uint64_t MaxMachinePeakBytes() const {
    std::uint64_t peak = 0;
    for (const auto& b : budgets_) peak = std::max(peak, b->peak_bytes());
    return peak;
  }

  /// Runs fn(worker) on num_workers() real threads. Every worker failure is
  /// recorded (cluster.worker_failures counter + one log line each) before
  /// the first exception is rethrown with a note of how many others were
  /// suppressed — a 60-worker run that loses 12 workers to the same dead
  /// disk reports all 12, not an arbitrary one. Returns the maximum
  /// per-worker CPU time — the simulated parallel wall-clock of the phase
  /// (on an oversubscribed host, thread CPU time is what each worker would
  /// have taken on its own core).
  double RunParallel(const std::function<void(int)>& fn) const {
    const int n = num_workers();
    std::vector<std::exception_ptr> errors(n);
    std::vector<double> busy(n, 0.0);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (int w = 0; w < n; ++w) {
      threads.emplace_back([&, w] {
        // Tag the thread with its simulated machine so any spans opened by
        // fn aggregate per machine.
        obs::ScopedMachine machine_tag(MachineOfWorker(w));
        double start = ThreadCpuSeconds();
        try {
          fn(w);
        } catch (...) {
          errors[w] = std::current_exception();
        }
        busy[w] = ThreadCpuSeconds() - start;
      });
    }
    for (std::thread& t : threads) t.join();
    std::exception_ptr first;
    int failures = 0;
    for (int w = 0; w < n; ++w) {
      if (!errors[w]) continue;
      ++failures;
      if (!first) first = errors[w];
      obs::GetCounter("cluster.worker_failures")->Increment();
      std::fprintf(stderr, "[tg::cluster] worker %d (machine %d) failed: %s\n",
                   w, MachineOfWorker(w), DescribeError(errors[w]).c_str());
    }
    if (first) {
      if (failures > 1) {
        std::fprintf(stderr,
                     "[tg::cluster] rethrowing first of %d worker failures "
                     "(%d suppressed)\n",
                     failures, failures - 1);
      }
      std::rethrow_exception(first);
    }
    double max_busy = 0;
    for (double b : busy) max_busy = std::max(max_busy, b);
    return max_busy;
  }

  /// All-to-all shuffle of POD records. `outbox[src][dst]` holds what worker
  /// src sends to worker dst; the return value is the per-destination
  /// concatenation (in source order). Cross-machine bytes are charged to the
  /// simulated network clock; per-destination-machine received bytes are
  /// registered against that machine's memory budget by the caller (the
  /// records are returned in plain vectors).
  template <typename T>
  std::vector<std::vector<T>> Shuffle(
      std::vector<std::vector<std::vector<T>>>&& outbox) {
    TG_SPAN("cluster.shuffle");
    const int n = num_workers();
    TG_CHECK(static_cast<int>(outbox.size()) == n);
    // Per-machine wire traffic.
    std::vector<std::uint64_t> sent(num_machines(), 0);
    std::vector<std::uint64_t> received(num_machines(), 0);
    std::vector<std::vector<T>> inbox(n);
    for (int dst = 0; dst < n; ++dst) {
      std::size_t total = 0;
      for (int src = 0; src < n; ++src) total += outbox[src][dst].size();
      inbox[dst].reserve(total);
    }
    for (int src = 0; src < n; ++src) {
      TG_CHECK(static_cast<int>(outbox[src].size()) == n);
      for (int dst = 0; dst < n; ++dst) {
        const std::vector<T>& payload = outbox[src][dst];
        if (MachineOfWorker(src) != MachineOfWorker(dst)) {
          std::uint64_t bytes = payload.size() * sizeof(T);
          sent[MachineOfWorker(src)] += bytes;
          received[MachineOfWorker(dst)] += bytes;
        }
        inbox[dst].insert(inbox[dst].end(), payload.begin(), payload.end());
        outbox[src][dst].clear();
        outbox[src][dst].shrink_to_fit();
      }
    }
    // The collective completes when the busiest machine finishes sending and
    // receiving (full-duplex wire).
    double seconds = 0;
    std::uint64_t total_bytes = 0;
    for (int m = 0; m < num_machines(); ++m) {
      seconds = std::max(
          seconds, options_.network.TransferSeconds(
                       std::max(sent[m], received[m]), num_machines() - 1));
      total_bytes += sent[m];
    }
    // Fault model for shuffle-heavy baselines: a machine that crashes during
    // the collective loses its whole inbox, and unlike AVS recomputation the
    // data cannot be regenerated locally — every peer must resend, so the
    // wire is charged a second pass over the victim's received bytes. This
    // is the recovery-cost asymmetry the recursive-vector model predicts
    // (and that bench_fig12's recovery datapoint measures).
    if (fault_injector_ != nullptr && fault_injector_->armed()) {
      for (int m = 0; m < num_machines(); ++m) {
        if (!fault_injector_->OnShuffleBoundary(m)) continue;
        const double retransfer = options_.network.TransferSeconds(
            received[m], num_machines() - 1);
        seconds += retransfer;
        obs::GetCounter("fault.shuffle_retransfers")->Increment();
        obs::GetCounter("fault.retransferred_bytes")->Add(received[m]);
        obs::TraceWire("fault.shuffle_retransfer", retransfer);
      }
    }
    network_seconds_ += seconds;
    shuffled_bytes_ += total_bytes;
    obs::GetCounter("cluster.shuffled_bytes")->Add(total_bytes);
    obs::GetGauge("net.simulated_seconds")->Add(seconds);
    obs::GetCounter("net.transfers")->Increment();
    // Timeline: the collective's simulated duration on the wire track — in
    // a trace of a baseline run this is the shuffle barrier the paper's
    // Figure 11(b) charges against RMAT-merge methods.
    obs::TraceWire("cluster.shuffle", seconds);
    return inbox;
  }

  /// Folds per-machine peaks into the obs registry's machine table and the
  /// `mem.peak_machine_bytes` gauge. Drivers call this once per run, after
  /// the last phase.
  void RecordMachineStats() const {
    obs::Registry& registry = obs::Registry::Global();
    for (int m = 0; m < num_machines(); ++m) {
      registry.MaxMachineStat(
          m, "peak_bytes", static_cast<double>(budgets_[m]->peak_bytes()));
    }
    obs::GetGauge("mem.peak_machine_bytes")
        ->Max(static_cast<double>(MaxMachinePeakBytes()));
  }

  /// Simulated wall-clock spent on the wire so far.
  double network_seconds() const { return network_seconds_; }
  std::uint64_t shuffled_bytes() const { return shuffled_bytes_; }
  void ResetNetworkClock() {
    network_seconds_ = 0;
    shuffled_bytes_ = 0;
  }

  /// Attaches a fault injector (not owned; must outlive the cluster). The
  /// AVS driver passes it through to the scheduler for chunk-level recovery;
  /// Shuffle consults it directly for the baselines' re-transfer charge.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return fault_injector_; }

 private:
  Options options_;
  std::vector<std::unique_ptr<MemoryBudget>> budgets_;
  double network_seconds_ = 0;
  std::uint64_t shuffled_bytes_ = 0;
  fault::FaultInjector* fault_injector_ = nullptr;
};

}  // namespace tg::cluster

#endif  // TRILLIONG_CLUSTER_SIM_CLUSTER_H_
