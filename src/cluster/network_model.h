#ifndef TRILLIONG_CLUSTER_NETWORK_MODEL_H_
#define TRILLIONG_CLUSTER_NETWORK_MODEL_H_

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tg::cluster {

/// Cost model of the cluster interconnect. The paper's experiments use
/// 1 Gbps Ethernet by default and 100 Gbps InfiniBand EDR for the Graph500
/// comparison (Appendix D); we reproduce the comparison by charging
/// simulated transfer time for every byte a shuffle moves between machines.
struct NetworkModel {
  double bandwidth_bytes_per_sec = 125e6;  ///< 1 Gbps Ethernet
  double latency_seconds = 100e-6;         ///< per collective hop

  static NetworkModel OneGigabitEthernet() {
    return NetworkModel{125e6, 100e-6};
  }
  static NetworkModel InfinibandEdr() {
    return NetworkModel{12.5e9, 2e-6};  // 100 Gbps
  }

  /// Seconds to move `bytes` across the wire in `messages` messages.
  double TransferSeconds(std::uint64_t bytes, int messages = 1) const {
    return static_cast<double>(bytes) / bandwidth_bytes_per_sec +
           latency_seconds * messages;
  }

  /// Like TransferSeconds, but also books the charge into the global obs
  /// registry (`net.charged_bytes`, `net.transfers`,
  /// `net.simulated_seconds`) so run reports account every wire charge, not
  /// just bulk shuffles. Use for point-to-point control traffic; SimCluster
  /// records its collective shuffles itself (their duration is a max over
  /// machines, not a sum of per-machine charges).
  double ChargeTransfer(std::uint64_t bytes, int messages = 1) const {
    double seconds = TransferSeconds(bytes, messages);
    obs::GetCounter("net.charged_bytes")->Add(bytes);
    obs::GetCounter("net.transfers")->Increment();
    obs::GetGauge("net.simulated_seconds")->Add(seconds);
    // Timeline: a slice on the simulated-network track whose duration is
    // the simulated charge (obs/trace.h).
    obs::TraceWire("net.transfer", seconds);
    return seconds;
  }
};

}  // namespace tg::cluster

#endif  // TRILLIONG_CLUSTER_NETWORK_MODEL_H_
