#ifndef TRILLIONG_CLUSTER_TRILLIONG_CLUSTER_H_
#define TRILLIONG_CLUSTER_TRILLIONG_CLUSTER_H_

#include "cluster/sim_cluster.h"
#include "core/trilliong.h"

namespace tg::cluster {

/// The full distributed TrillionG pipeline of Section 5 on the simulated
/// cluster, following Figure 6's four steps explicitly:
///   1. combine  — every worker sizes the scopes of its equal-vertex chunk
///                 and packs them into ~|E|/p bins (parallel, real threads);
///   2. gather   — bin summaries travel to the master (byte-accounted on the
///                 simulated wire; the paper notes this traffic is tiny);
///   3. repartition — the master re-cuts bin boundaries to equal mass;
///   4. scatter  — boundaries travel back and every worker generates its
///                 ranges with the recursive vector model.
/// Unlike the in-process core::Generate (which uses the closed-form CDF
/// partitioner), this driver exercises the protocol the paper describes,
/// charges per-machine memory budgets, and reports simulated phase times.
struct ClusterGenerateStats {
  core::GenerateStats generate;      ///< per-worker aggregate (phase 4)
  double combine_seconds = 0;        ///< phase 1 (max per-worker CPU)
  double gather_scatter_seconds = 0; ///< phases 2+4 wire time
  double repartition_seconds = 0;    ///< phase 3 (master CPU)
  std::uint64_t control_bytes = 0;   ///< bin summaries on the wire
  std::uint64_t peak_machine_bytes = 0;

  /// End-to-end simulated elapsed time.
  double TotalSeconds() const {
    return combine_seconds + gather_scatter_seconds + repartition_seconds +
           generate.max_worker_cpu_seconds;
  }
};

/// Runs TrillionG across the cluster. `config.num_workers` is ignored — the
/// cluster's worker count is used; `config.budget` is ignored in favor of
/// the per-machine budgets. Output is identical to core::Generate with the
/// same seed (scope RNG streams are partition-independent).
ClusterGenerateStats GenerateOnCluster(SimCluster* cluster,
                                       const core::TrillionGConfig& config,
                                       const core::SinkFactory& sink_factory);

}  // namespace tg::cluster

#endif  // TRILLIONG_CLUSTER_TRILLIONG_CLUSTER_H_
