#include "cluster/trilliong_cluster.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/avs_generator.h"
#include "core/scheduler.h"
#include "model/noise.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/stopwatch.h"

namespace tg::cluster {

namespace {

/// One bin of the combining step: contiguous vertex range + expected mass.
struct Bin {
  VertexId begin = 0;
  VertexId end = 0;
  double mass = 0.0;
};

model::NoiseVector MakeNoise(const core::TrillionGConfig& config) {
  model::SeedMatrix seed = config.direction == core::Direction::kOut
                               ? config.seed
                               : config.seed.Transposed();
  if (config.noise <= 0.0) {
    return model::NoiseVector(seed, config.scale);
  }
  rng::Rng noise_rng(config.rng_seed, /*stream=*/0xA015E1ULL);
  return model::NoiseVector(seed, config.scale, config.noise, &noise_rng);
}

}  // namespace

ClusterGenerateStats GenerateOnCluster(SimCluster* cluster,
                                       const core::TrillionGConfig& config,
                                       const core::SinkFactory& sink_factory) {
  const int workers = cluster->num_workers();
  const VertexId num_vertices = config.NumVertices();
  const std::uint64_t num_edges = config.NumEdges();
  const model::NoiseVector noise = MakeNoise(config);
  const int scale = config.scale;

  ClusterGenerateStats stats;

  // --- Phase 1: combine. Equal-vertex chunks; each worker cuts its chunk
  // into bins of ~|E|/p expected mass (Figure 6 "combine").
  const VertexId chunk = std::max<VertexId>(num_vertices / workers, 1);
  const double per_bin_target =
      static_cast<double>(num_edges) / static_cast<double>(workers);
  std::vector<std::vector<Bin>> worker_bins(workers);
  obs::SetCurrentPhase("cluster.combine");
  stats.combine_seconds = cluster->RunParallel([&](int w) {
    TG_SPAN("cluster.combine");
    VertexId begin =
        std::min<VertexId>(static_cast<VertexId>(w) * chunk, num_vertices);
    VertexId end = (w == workers - 1)
                       ? num_vertices
                       : std::min<VertexId>(begin + chunk, num_vertices);
    std::vector<Bin>& bins = worker_bins[w];
    Bin current{begin, begin, 0.0};
    for (VertexId u = begin; u < end; ++u) {
      double mass = static_cast<double>(num_edges);
      for (int p = 0; p < scale; ++p) {
        mass *= noise.RowSumAtBit(p, static_cast<int>((u >> p) & 1u));
      }
      current.mass += mass;
      current.end = u + 1;
      if (current.mass >= per_bin_target) {
        bins.push_back(current);
        current = Bin{u + 1, u + 1, 0.0};
      }
    }
    if (current.end > current.begin) bins.push_back(current);
  });

  // --- Phase 2: gather. Bin summaries travel to the master (machine 0,
  // worker 0); only cross-machine senders pay wire time.
  std::uint64_t gathered_bytes = 0;
  for (int w = 0; w < workers; ++w) {
    if (cluster->MachineOfWorker(w) != 0) {
      gathered_bytes += worker_bins[w].size() * sizeof(Bin);
    }
  }
  stats.control_bytes = gathered_bytes;
  obs::GetCounter("cluster.control_bytes")->Add(gathered_bytes);
  stats.gather_scatter_seconds =
      cluster->network().ChargeTransfer(gathered_bytes, workers - 1);

  // --- Phase 3: repartition (master). Chunks are in vertex order, so the
  // concatenation is a sorted bin list; cut at cumulative-mass multiples.
  std::vector<VertexId> boundaries;
  {
    Stopwatch master_watch;
    obs::SetCurrentPhase("cluster.repartition");
    TG_SPAN("cluster.repartition");
    double total_mass = 0;
    for (const auto& bins : worker_bins) {
      for (const Bin& b : bins) total_mass += b.mass;
    }
    boundaries.reserve(workers + 1);
    boundaries.push_back(0);
    double cum = 0;
    int next_cut = 1;
    for (const auto& bins : worker_bins) {
      for (const Bin& b : bins) {
        cum += b.mass;
        while (next_cut < workers && cum >= total_mass * next_cut / workers) {
          boundaries.push_back(b.end);
          ++next_cut;
        }
      }
    }
    while (static_cast<int>(boundaries.size()) < workers) {
      boundaries.push_back(num_vertices);
    }
    boundaries.push_back(num_vertices);
    for (std::size_t i = 1; i < boundaries.size(); ++i) {
      boundaries[i] = std::max(boundaries[i], boundaries[i - 1]);
    }
    stats.repartition_seconds = master_watch.ElapsedSeconds();
  }

  // --- Phase 4: scatter (boundaries: workers * 8 bytes, negligible but
  // accounted) + generation under the recursive vector model.
  stats.gather_scatter_seconds += cluster->network().ChargeTransfer(
      static_cast<std::uint64_t>(workers) * sizeof(VertexId), workers - 1);

  // Generation runs on the work-stealing engine, with stealing confined to
  // each simulated machine: the threads of one machine share memory, so a
  // thief can pick up a machine-mate's chunk, but chunks never migrate
  // across the (simulated) wire. Scope RNG streams are forked per vertex,
  // so the stolen schedule produces bit-identical output.
  const rng::Rng root(config.rng_seed, /*stream=*/1);
  std::vector<core::AvsWorkerStats> worker_stats(workers);
  const int chunks_per_worker = std::max(config.chunks_per_worker, 1);
  const std::vector<std::vector<core::Chunk>> queues =
      core::BuildChunkQueues(noise, boundaries, chunks_per_worker);

  std::vector<std::unique_ptr<core::ScopeSink>> sinks;
  std::vector<core::ScopeSink*> sink_ptrs;
  sinks.reserve(workers);
  sink_ptrs.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    sinks.push_back(sink_factory(w, boundaries[w], boundaries[w + 1]));
    TG_CHECK(sinks.back() != nullptr);
    sink_ptrs.push_back(sinks.back().get());
  }

  core::SchedulerOptions sched_options;
  sched_options.steal_domain.resize(workers);
  sched_options.machine_tags.resize(workers);
  for (int w = 0; w < workers; ++w) {
    sched_options.steal_domain[w] = cluster->MachineOfWorker(w);
    sched_options.machine_tags[w] = cluster->MachineOfWorker(w);
  }

  // Fault injection: an explicit injector on the config wins, then one
  // attached to the cluster, then the TG_FAULT_PLAN environment hook. A
  // machine that crashes mid-generation stops taking chunks, its queued
  // chunks migrate to surviving machines through the scheduler's recovery
  // queue, and — scope streams being forked per vertex — the output stays
  // bit-identical to the fault-free run.
  std::unique_ptr<fault::FaultInjector> env_injector;
  fault::FaultInjector* injector = config.fault_injector != nullptr
                                       ? config.fault_injector
                                       : cluster->fault_injector();
  if (injector == nullptr) {
    env_injector =
        fault::FaultInjector::FromEnvOrNull(cluster->num_machines());
    injector = env_injector.get();
  }
  sched_options.fault_injector = injector;
  sched_options.resume_next_seq = config.resume_next_seq;
  sched_options.on_chunk_commit = config.chunk_commit_hook;

  obs::SetCurrentPhase("generate");
  auto run_generation = [&]<typename Real>() {
    auto make_worker = [&](int w) -> core::ChunkFn {
      auto generator = std::make_shared<core::AvsRangeGenerator<Real>>(
          &noise, num_edges, config.determiner, cluster->worker_budget(w),
          config.exclude_self_loops);
      auto scratch = std::make_shared<core::ScopeScratch<Real>>();
      core::AvsWorkerStats* stats_slot = &worker_stats[w];
      return [generator, scratch, stats_slot, &root](
                 const core::Chunk& c, core::ChunkBuffer* buffer) {
        generator->GenerateRange(c.lo, c.hi, root, scratch.get(), stats_slot,
                                 buffer);
      };
    };
    return core::RunWorkStealing(queues, sink_ptrs, make_worker,
                                 sched_options);
  };
  const core::SchedulerStats sched =
      config.precision == core::Precision::kDoubleDouble
          ? run_generation.template operator()<numeric::DoubleDouble>()
          : run_generation.template operator()<double>();
  stats.generate.max_worker_cpu_seconds = sched.max_worker_cpu_seconds;
  stats.generate.sched_chunks = sched.num_chunks;
  stats.generate.sched_steals = sched.num_steals;
  stats.generate.sched_recovered = sched.num_recovered;
  stats.generate.sched_imbalance = sched.imbalance;

  core::AvsWorkerStats merged;
  for (const core::AvsWorkerStats& s : worker_stats) merged.MergeFrom(s);
  stats.generate.num_edges = merged.num_edges;
  stats.generate.num_scopes = merged.num_scopes;
  stats.generate.max_degree = merged.max_degree;
  stats.generate.peak_scope_bytes = merged.peak_scope_bytes;
  stats.generate.rec_vec_builds = merged.rec_vec_builds;
  stats.generate.cdf_evaluations = merged.cdf_evaluations;
  stats.peak_machine_bytes = cluster->MaxMachinePeakBytes();
  core::RecordAvsStats(merged);
  obs::GetGauge("avs.recvec_levels")->Set(static_cast<double>(scale));
  cluster->RecordMachineStats();
  obs::SetCurrentPhase("idle");
  return stats;
}

}  // namespace tg::cluster
