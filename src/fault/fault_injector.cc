#include "fault/fault_injector.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/metrics.h"
#include "obs/span.h"
#include "rng/random.h"
#include "storage/file_io.h"

namespace tg::fault {

FaultInjector::FaultInjector(FaultPlan plan, int num_machines)
    : plan_(std::move(plan)), machines_(static_cast<std::size_t>(
                                  num_machines > 0 ? num_machines : 1)) {
  // Plans with I/O faults need the storage hook; install it eagerly so
  // every construction path (explicit, TG_FAULT_PLAN) gets it. Fault-free
  // runs construct no injector, so their write path stays hook-free.
  for (const FaultRule& rule : plan_.rules) {
    if (rule.action == FaultAction::kIoFail) {
      InstallIoHook();
      break;
    }
  }
}

FaultInjector::~FaultInjector() {
  if (io_hook_installed_) storage::IoFailureHookRef() = nullptr;
}

int FaultInjector::machines_alive() const {
  int alive = 0;
  for (const MachineState& m : machines_) {
    if (!m.dead.load(std::memory_order_acquire)) ++alive;
  }
  return alive;
}

double FaultInjector::Draw(int machine, int rule,
                           std::uint64_t ordinal) const {
  // Keyed so that each (machine, rule) pair owns an independent stream and
  // each boundary ordinal forks its own child: the draw depends only on the
  // plan, never on which thread reached the boundary first.
  rng::Rng stream(plan_.seed,
                  rng::MixSeeds(static_cast<std::uint64_t>(machine) + 1,
                                static_cast<std::uint64_t>(rule) + 1));
  return stream.Fork(ordinal).NextDouble();
}

void FaultInjector::RecordInjection(const char* kind, int machine,
                                    std::uint64_t ordinal, int rule) {
  obs::GetCounter("fault.injected")->Increment();
  obs::Event event;
  event.kind = std::string("fault.") + kind;
  event.machine = machine;
  event.ordinal = ordinal;
  event.detail = rule >= 0 && rule < static_cast<int>(plan_.rules.size())
                     ? plan_.rules[rule].ToString()
                     : std::string();
  obs::Registry::Global().RecordEvent(std::move(event));
}

Decision FaultInjector::OnChunkBoundary(int machine) {
  Decision decision;
  if (machine < 0 || machine >= num_machines()) return decision;
  MachineState& state = machines_[machine];
  if (state.dead.load(std::memory_order_acquire)) {
    decision.kind = Decision::Kind::kCrash;
    return decision;
  }
  const std::uint64_t ordinal =
      state.chunk_ordinal.fetch_add(1, std::memory_order_relaxed) + 1;

  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (!rule.Matches(machine)) continue;

    if (rule.action == FaultAction::kSlow) {
      // Slow rules do not consume the boundary; they annotate it.
      if (rule.slow_factor > decision.slow_factor) {
        decision.slow_factor = rule.slow_factor;
        if (decision.rule < 0) decision.rule = static_cast<int>(r);
      }
      continue;
    }

    bool fires = false;
    if (rule.at_chunk > 0) {
      fires = ordinal == rule.at_chunk;
    } else if (rule.probability > 0.0) {
      fires = Draw(machine, static_cast<int>(r), ordinal) < rule.probability;
    }
    if (!fires) continue;

    switch (rule.action) {
      case FaultAction::kCrash:
        state.dead.store(true, std::memory_order_release);
        decision.kind = Decision::Kind::kCrash;
        decision.rule = static_cast<int>(r);
        obs::GetCounter("fault.injected_crashes")->Increment();
        obs::GetCounter("fault.machines_lost")->Increment();
        RecordInjection("crash", machine, ordinal, decision.rule);
        return decision;
      case FaultAction::kDie:
        decision.kind = Decision::Kind::kDie;
        decision.rule = static_cast<int>(r);
        obs::GetCounter("fault.injected_crashes")->Increment();
        RecordInjection("die", machine, ordinal, decision.rule);
        return decision;
      case FaultAction::kFlaky:
        decision.kind = Decision::Kind::kTransient;
        decision.rule = static_cast<int>(r);
        RecordInjection("transient", machine, ordinal, decision.rule);
        return decision;
      case FaultAction::kIoFail:
        if (!state.io_failing.exchange(true, std::memory_order_acq_rel)) {
          obs::GetCounter("fault.injected_io_failures")->Increment();
          RecordInjection("iofail", machine, ordinal, static_cast<int>(r));
        }
        continue;  // the machine keeps running; its writes fail
      case FaultAction::kSlow:
        break;  // handled above
    }
  }

  if (decision.slow_factor > 1.0) {
    obs::GetCounter("fault.injected_delays")->Increment();
  }
  return decision;
}

bool FaultInjector::OnShuffleBoundary(int machine) {
  if (machine < 0 || machine >= num_machines()) return false;
  MachineState& state = machines_[machine];
  const std::uint64_t ordinal =
      state.shuffle_ordinal.fetch_add(1, std::memory_order_relaxed) + 1;
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.action != FaultAction::kCrash || rule.at_shuffle == 0 ||
        !rule.Matches(machine)) {
      continue;
    }
    if (ordinal == rule.at_shuffle) {
      obs::GetCounter("fault.injected_crashes")->Increment();
      RecordInjection("shuffle_crash", machine, ordinal,
                      static_cast<int>(r));
      return true;
    }
  }
  return false;
}

void FaultInjector::BackoffBeforeRetry(int attempt) const {
  obs::GetCounter("fault.retries")->Increment();
  int shift = attempt < 10 ? attempt : 10;
  std::this_thread::sleep_for(
      std::chrono::microseconds(kBackoffBaseMicros << shift));
}

void FaultInjector::InstallIoHook() {
  storage::IoFailureHookRef() = [this](const std::string&) {
    int machine = obs::CurrentMachine();
    if (machine < 0) machine = 0;  // untagged threads belong to machine 0
    return machine < num_machines() && io_failing(machine);
  };
  io_hook_installed_ = true;
}

std::unique_ptr<FaultInjector> FaultInjector::FromEnvOrNull(
    int num_machines) {
  FaultPlan plan;
  Status s = FaultPlan::FromEnv(&plan);
  if (!s.ok()) {
    std::fprintf(stderr, "[tg::fault] ignoring TG_FAULT_PLAN: %s\n",
                 s.ToString().c_str());
    return nullptr;
  }
  if (plan.empty()) return nullptr;
  return std::make_unique<FaultInjector>(std::move(plan), num_machines);
}

}  // namespace tg::fault
