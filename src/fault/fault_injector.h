// fault/fault_injector.h — the runtime interpreter of a FaultPlan. One
// injector is shared by every worker thread of a run; the scheduler consults
// it at each chunk boundary and SimCluster::Shuffle at each collective.
//
// Determinism contract: the decision for (machine, ordinal) is a pure
// function of the plan — probabilistic rules draw from an Rng forked from
// (plan.seed, machine, rule index) at the per-machine boundary ordinal, so
// the injected schedule does not depend on thread interleaving. The chaos
// determinism test in tests/fault_test.cc pins this down.
#ifndef TRILLIONG_FAULT_FAULT_INJECTOR_H_
#define TRILLIONG_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fault/fault_plan.h"

namespace tg::fault {

/// Thrown when a fault plan leaves a run unable to finish (e.g. every
/// simulated machine crashed). Callers that injected faults on purpose —
/// the crash/resume tests, gen_cli under --fault_plan — catch this.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

/// What the injector decided for one chunk boundary.
struct Decision {
  enum class Kind {
    kNone,       ///< proceed normally
    kCrash,      ///< this machine is dead: stop taking work, reassign queues
    kDie,        ///< hard process exit with kKilledExitCode
    kTransient,  ///< this chunk failed transiently: back off and retry
  };
  Kind kind = Kind::kNone;
  double slow_factor = 1.0;  ///< > 1 when a slow rule matched this machine
  int rule = -1;             ///< index of the rule that fired, -1 for none
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int num_machines);

  /// True when the plan has at least one rule. Fault-free runs construct no
  /// injector at all, but cheap armed() gating lets call sites share code.
  bool armed() const { return !plan_.empty(); }

  const FaultPlan& plan() const { return plan_; }
  int num_machines() const { return static_cast<int>(machines_.size()); }

  /// Consulted by a worker thread of `machine` after finishing each chunk
  /// (and before taking the next). Advances the machine's boundary ordinal
  /// and evaluates every matching rule in plan order; the first triggered
  /// rule wins. Records the decision as an obs event + counter. A machine
  /// already marked dead always gets kCrash back.
  Decision OnChunkBoundary(int machine);

  /// Same contract for shuffle collectives: returns true when a
  /// `crash@shuffle=N` rule fires for this machine's Nth shuffle, in which
  /// case the caller charges NetworkModel re-transfer cost.
  bool OnShuffleBoundary(int machine);

  /// Retries a transient (flaky) failure: exponential backoff starting at
  /// `kBackoffBaseMicros`, doubling per attempt, capped at kMaxRetries —
  /// after which the failure is promoted to a crash. Sleeps for real.
  static constexpr int kMaxRetries = 16;
  static constexpr int kBackoffBaseMicros = 100;
  void BackoffBeforeRetry(int attempt) const;

  bool machine_dead(int machine) const {
    return machines_[machine].dead.load(std::memory_order_acquire);
  }
  void MarkDead(int machine) {
    machines_[machine].dead.store(true, std::memory_order_release);
  }
  int machines_alive() const;

  /// True once an iofail rule has fired for this machine: the storage-layer
  /// failure hook (storage/file_io.h) makes every subsequent write on
  /// threads tagged with this machine return a sticky IoError.
  bool io_failing(int machine) const {
    return machines_[machine].io_failing.load(std::memory_order_acquire);
  }

  /// Installs this injector as the process-wide storage failure hook
  /// (consulted via obs::CurrentMachine()). Uninstalls on destruction.
  void InstallIoHook();

  ~FaultInjector();

  /// Builds an injector from TG_FAULT_PLAN, or returns null when the
  /// variable is unset/empty. A malformed plan is reported to stderr and
  /// ignored (chaos hooks must never break a production run).
  static std::unique_ptr<FaultInjector> FromEnvOrNull(int num_machines);

 private:
  struct MachineState {
    std::atomic<bool> dead{false};
    std::atomic<bool> io_failing{false};
    std::atomic<std::uint64_t> chunk_ordinal{0};
    std::atomic<std::uint64_t> shuffle_ordinal{0};
  };

  /// Deterministic per-(machine, rule, ordinal) uniform draw in [0, 1).
  double Draw(int machine, int rule, std::uint64_t ordinal) const;
  void RecordInjection(const char* kind, int machine, std::uint64_t ordinal,
                       int rule);

  FaultPlan plan_;
  std::vector<MachineState> machines_;
  bool io_hook_installed_ = false;
};

}  // namespace tg::fault

#endif  // TRILLIONG_FAULT_FAULT_INJECTOR_H_
