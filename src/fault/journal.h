// fault/journal.h — the chunk-commit journal behind `gen_cli --resume`.
//
// One journal file (`<out>.journal`) records, per output range, which chunks
// have been made durable, in commit order. It is a plain text log:
//
//   TGJOURNAL 1 <config fingerprint, hex>
//   c <range> <seq> <sink state token>
//   ...
//   done
//
// Every `c` record is appended and flushed to the kernel immediately after
// the corresponding chunk's bytes were flushed (ResumableSink::CommitState),
// so after a process kill the journal never claims more than the output
// files actually hold. Because the scheduler commits chunks of a range
// strictly in seq order, the LAST `c` record of each range carries both the
// resume point (seq + 1) and the sink state to restore. A torn final line
// (no trailing newline — the process died mid-append) is ignored on load.
// `done` marks the whole run complete; resuming a done journal is a no-op.
//
// The fingerprint hashes every generation parameter that affects output
// bytes; a resume with a different config refuses to run rather than
// silently splicing two different graphs into one file.
#ifndef TRILLIONG_FAULT_JOURNAL_H_
#define TRILLIONG_FAULT_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/trilliong.h"
#include "util/status.h"

namespace tg::fault {

/// Append side of the journal. Thread-safe: chunk commits of different
/// ranges land from different worker threads.
class Journal {
 public:
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Starts a fresh journal at `path`, truncating any previous one, and
  /// writes the header.
  static Status Start(const std::string& path, std::uint64_t fingerprint,
                      std::unique_ptr<Journal>* out);

  /// Reopens an existing journal for appending (after Load, on resume).
  static Status Reopen(const std::string& path,
                       std::unique_ptr<Journal>* out);

  /// Appends one durable-chunk record and flushes it to the kernel.
  /// `state_token` must be whitespace-free (CommitState tokens are).
  Status AppendCommit(int range, std::uint32_t seq,
                      const std::string& state_token);

  /// Marks the run complete.
  Status AppendDone();

 private:
  explicit Journal(std::FILE* file) : file_(file) {}

  std::mutex mu_;
  std::FILE* file_;
};

/// What a journal said when loaded.
struct JournalState {
  std::uint64_t fingerprint = 0;
  bool done = false;
  /// Per range: next chunk seq to generate and the sink state token of the
  /// last committed chunk. Ranges that never committed are absent.
  struct RangeState {
    std::uint32_t next_seq = 0;
    std::string sink_state;
  };
  std::map<int, RangeState> ranges;
};

/// Parses a journal. Returns NotFound when the file does not exist,
/// Corruption on a bad header; malformed or torn trailing records are
/// dropped silently (they were never acknowledged).
Status LoadJournal(const std::string& path, JournalState* out);

/// Hash of every config parameter that shapes output bytes (plus the output
/// format name). Two runs with equal fingerprints write identical files.
std::uint64_t ConfigFingerprint(const core::TrillionGConfig& config,
                                const std::string& format);

}  // namespace tg::fault

#endif  // TRILLIONG_FAULT_JOURNAL_H_
