#include "fault/fault_plan.h"

#include <cstdlib>
#include <sstream>

namespace tg::fault {
namespace {

// Splits `text` on `sep`, trimming surrounding whitespace from each piece.
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(text);
  while (std::getline(in, piece, sep)) {
    std::size_t b = piece.find_first_not_of(" \t");
    std::size_t e = piece.find_last_not_of(" \t");
    out.push_back(b == std::string::npos ? std::string()
                                         : piece.substr(b, e - b + 1));
  }
  return out;
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Status BadClause(const std::string& clause, const std::string& why) {
  return Status::InvalidArgument("fault plan clause '" + clause + "': " + why);
}

// Parses the action part of a clause ("crash@chunk=120", "slow@2x", ...).
Status ParseAction(const std::string& clause, const std::string& action,
                   FaultRule* rule) {
  std::size_t at = action.find('@');
  if (at == std::string::npos) {
    return BadClause(clause, "expected '<action>@<trigger>'");
  }
  std::string verb = action.substr(0, at);
  std::string trigger = action.substr(at + 1);

  if (verb == "slow") {
    // slow@<F>x — no trigger; the factor applies to every chunk.
    if (trigger.empty() || trigger.back() != 'x') {
      return BadClause(clause, "slow wants 'slow@<factor>x'");
    }
    double factor = 0.0;
    if (!ParseF64(trigger.substr(0, trigger.size() - 1), &factor) ||
        factor < 1.0) {
      return BadClause(clause, "slow factor must be a number >= 1");
    }
    rule->action = FaultAction::kSlow;
    rule->slow_factor = factor;
    return Status::Ok();
  }

  if (verb == "crash") {
    rule->action = FaultAction::kCrash;
  } else if (verb == "die") {
    rule->action = FaultAction::kDie;
  } else if (verb == "flaky") {
    rule->action = FaultAction::kFlaky;
  } else if (verb == "iofail") {
    rule->action = FaultAction::kIoFail;
  } else {
    return BadClause(clause, "unknown action '" + verb + "'");
  }

  std::size_t eq = trigger.find('=');
  if (eq == std::string::npos) {
    return BadClause(clause, "expected '<trigger>=<value>'");
  }
  std::string key = trigger.substr(0, eq);
  std::string value = trigger.substr(eq + 1);

  if (key == "chunk") {
    std::uint64_t n = 0;
    if (!ParseU64(value, &n) || n == 0) {
      return BadClause(clause, "chunk ordinal must be a positive integer");
    }
    rule->at_chunk = n;
    return Status::Ok();
  }
  if (key == "shuffle") {
    if (rule->action != FaultAction::kCrash) {
      return BadClause(clause, "only crash supports a shuffle trigger");
    }
    std::uint64_t n = 0;
    if (!ParseU64(value, &n) || n == 0) {
      return BadClause(clause, "shuffle ordinal must be a positive integer");
    }
    rule->at_shuffle = n;
    return Status::Ok();
  }
  if (key == "p") {
    if (rule->action == FaultAction::kDie) {
      return BadClause(clause, "die wants a deterministic 'chunk=' trigger");
    }
    double p = 0.0;
    if (!ParseF64(value, &p) || p <= 0.0 || p > 1.0) {
      return BadClause(clause, "probability must be in (0, 1]");
    }
    rule->probability = p;
    return Status::Ok();
  }
  return BadClause(clause, "unknown trigger '" + key + "'");
}

}  // namespace

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kCrash: return "crash";
    case FaultAction::kDie: return "die";
    case FaultAction::kSlow: return "slow";
    case FaultAction::kFlaky: return "flaky";
    case FaultAction::kIoFail: return "iofail";
  }
  return "?";
}

std::string FaultRule::ToString() const {
  std::ostringstream out;
  if (machine < 0) {
    out << "*";
  } else {
    out << "m" << machine;
  }
  out << ":" << FaultActionName(action);
  if (action == FaultAction::kSlow) {
    out << "@" << slow_factor << "x";
  } else if (at_chunk > 0) {
    out << "@chunk=" << at_chunk;
  } else if (at_shuffle > 0) {
    out << "@shuffle=" << at_shuffle;
  } else {
    out << "@p=" << probability;
  }
  return out.str();
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (const FaultRule& rule : rules) out << "," << rule.ToString();
  return out.str();
}

Status FaultPlan::Parse(const std::string& text, FaultPlan* out) {
  FaultPlan plan;
  for (const std::string& clause : Split(text, ',')) {
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      if (!ParseU64(clause.substr(5), &plan.seed)) {
        return BadClause(clause, "seed must be an unsigned integer");
      }
      continue;
    }
    std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return BadClause(clause, "expected '<target>:<action>'");
    }
    FaultRule rule;
    std::string target = clause.substr(0, colon);
    if (target == "*") {
      rule.machine = -1;
    } else if (target.size() >= 2 && target[0] == 'm') {
      std::uint64_t m = 0;
      if (!ParseU64(target.substr(1), &m) || m > 1 << 20) {
        return BadClause(clause, "bad machine id '" + target + "'");
      }
      rule.machine = static_cast<int>(m);
    } else {
      return BadClause(clause, "target must be 'mN' or '*'");
    }
    Status s = ParseAction(clause, clause.substr(colon + 1), &rule);
    if (!s.ok()) return s;
    plan.rules.push_back(rule);
  }
  *out = std::move(plan);
  return Status::Ok();
}

Status FaultPlan::FromEnv(FaultPlan* out) {
  const char* env = std::getenv("TG_FAULT_PLAN");
  if (env == nullptr || *env == '\0') {
    *out = FaultPlan{};
    out->rules.clear();
    return Status::Ok();
  }
  return Parse(env, out);
}

}  // namespace tg::fault
