#include "fault/journal.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <vector>

#include "rng/random.h"

namespace tg::fault {

namespace {

constexpr char kHeaderTag[] = "TGJOURNAL";
constexpr int kJournalVersion = 1;

}  // namespace

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Journal::Start(const std::string& path, std::uint64_t fingerprint,
                      std::unique_ptr<Journal>* out) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create journal: " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fprintf(f, "%s %d %016" PRIx64 "\n", kHeaderTag, kJournalVersion,
                   fingerprint) < 0 ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IoError("cannot write journal header: " + path);
  }
  out->reset(new Journal(f));
  return Status::Ok();
}

Status Journal::Reopen(const std::string& path,
                       std::unique_ptr<Journal>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return Status::IoError("cannot reopen journal: " + path + ": " +
                           std::strerror(errno));
  }
  // Drop a torn final record (the previous process died mid-append) before
  // appending: a new record glued onto the torn bytes could otherwise
  // complete them into a valid-looking line that was never acknowledged.
  std::string data;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const std::size_t last_newline = data.rfind('\n');
  if (last_newline == std::string::npos) {
    std::fclose(f);
    return Status::Corruption("journal has no complete records: " + path);
  }
  const auto end = static_cast<off_t>(last_newline + 1);
  if (::ftruncate(fileno(f), end) != 0 || std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot truncate journal: " + path);
  }
  out->reset(new Journal(f));
  return Status::Ok();
}

Status Journal::AppendCommit(int range, std::uint32_t seq,
                             const std::string& state_token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fprintf(file_, "c %d %u %s\n", range, seq, state_token.c_str()) <
          0 ||
      std::fflush(file_) != 0) {
    return Status::IoError("journal append failed");
  }
  return Status::Ok();
}

Status Journal::AppendDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fprintf(file_, "done\n") < 0 || std::fflush(file_) != 0) {
    return Status::IoError("journal append failed");
  }
  return Status::Ok();
}

Status LoadJournal(const std::string& path, JournalState* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no journal at " + path);
  *out = JournalState{};

  // Read the whole file; journals are tiny (one short line per chunk).
  std::string data;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  std::size_t pos = 0;
  bool first = true;
  while (pos < data.size()) {
    const std::size_t eol = data.find('\n', pos);
    if (eol == std::string::npos) break;  // torn final record: never acked
    const std::string line = data.substr(pos, eol - pos);
    pos = eol + 1;
    if (first) {
      first = false;
      char tag[16];
      int version = 0;
      std::uint64_t fp = 0;
      if (std::sscanf(line.c_str(), "%15s %d %" SCNx64, tag, &version, &fp) !=
              3 ||
          std::strcmp(tag, kHeaderTag) != 0 || version != kJournalVersion) {
        return Status::Corruption("bad journal header: " + path);
      }
      out->fingerprint = fp;
      continue;
    }
    if (line == "done") {
      out->done = true;
      continue;
    }
    int range = 0;
    unsigned seq = 0;
    char token[256];
    if (std::sscanf(line.c_str(), "c %d %u %255s", &range, &seq, token) == 3 &&
        range >= 0) {
      // Commits arrive in seq order per range, so the last record wins.
      JournalState::RangeState& rs = out->ranges[range];
      rs.next_seq = seq + 1;
      rs.sink_state = token;
    }
    // Any other malformed line is a torn or foreign record — skip it.
  }
  if (first) return Status::Corruption("empty journal: " + path);
  return Status::Ok();
}

std::uint64_t ConfigFingerprint(const core::TrillionGConfig& config,
                                const std::string& format) {
  auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  std::uint64_t h = 0x7161FA0105EEDULL;
  auto mix = [&h](std::uint64_t v) { h = rng::MixSeeds(h, v); };
  mix(static_cast<std::uint64_t>(config.scale));
  mix(config.edge_factor);
  mix(config.num_edges);
  mix(bits(config.noise));
  mix(config.rng_seed);
  mix(bits(config.seed.a()));
  mix(bits(config.seed.b()));
  mix(bits(config.seed.c()));
  mix(bits(config.seed.d()));
  // The worker count and chunk granularity shape the per-range files and
  // chunk seq numbering, so a resume must match them exactly.
  mix(static_cast<std::uint64_t>(config.num_workers));
  mix(static_cast<std::uint64_t>(config.chunks_per_worker));
  mix(static_cast<std::uint64_t>(config.precision));
  mix(static_cast<std::uint64_t>(config.direction));
  mix(static_cast<std::uint64_t>(config.exclude_self_loops));
  mix(static_cast<std::uint64_t>(config.determiner.reuse_rec_vec));
  mix(static_cast<std::uint64_t>(config.determiner.reduce_recursions));
  mix(static_cast<std::uint64_t>(config.determiner.reuse_random_value));
  // The table kernel draws a different (still deterministic) RNG stream, so
  // resuming across a toggle would splice two different graphs.
  mix(static_cast<std::uint64_t>(config.determiner.use_prefix_tables));
  for (char ch : format) mix(static_cast<std::uint64_t>(ch));
  mix(static_cast<std::uint64_t>(format.size()));
  return h;
}

}  // namespace tg::fault
