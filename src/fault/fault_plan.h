// fault/fault_plan.h — the declarative description of the faults a run must
// survive. A FaultPlan is parsed from `gen_cli --fault_plan` (or the
// TG_FAULT_PLAN environment hook used by the chaos CI job) and interpreted
// at runtime by fault::FaultInjector. The grammar is deliberately tiny:
//
//   plan    := clause (',' clause)*
//   clause  := 'seed=' N | target ':' action
//   target  := 'm' N                    one simulated machine
//            | '*'                      every machine
//   action  := 'crash@chunk=' N        kill the machine at its Nth chunk
//                                      boundary (its threads stop; queued
//                                      chunks are reassigned to survivors)
//            | 'crash@p=' F            seeded per-boundary crash probability
//            | 'crash@shuffle=' N      die during the machine's Nth shuffle
//                                      collective (re-transfer is charged)
//            | 'die@chunk=' N          hard process exit (simulates kill -9;
//                                      buffered output is lost, the commit
//                                      journal survives — see journal.h)
//            | 'slow@' F 'x'           run the machine F× slower
//            | 'flaky@p=' F            transient chunk failures, retried
//                                      with exponential backoff
//            | 'iofail@chunk=' N       all writes on the machine start
//                                      failing at its Nth chunk boundary
//
// Examples: "m3:crash@chunk=120", "m1:slow@2x",
//           "seed=7,*:crash@p=0.001", "m0:die@chunk=40".
//
// Probabilistic clauses draw from a splittable RNG keyed by
// (seed, machine, boundary ordinal, rule), so the injected schedule is a
// pure function of the plan — chaos runs are reproducible.
#ifndef TRILLIONG_FAULT_FAULT_PLAN_H_
#define TRILLIONG_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tg::fault {

/// Exit code used by `die` clauses (a hard std::_Exit, as close to kill -9
/// as a single process can simulate). Distinctive so tests and the chaos CI
/// job can assert the run died by injection, not by accident.
inline constexpr int kKilledExitCode = 86;

enum class FaultAction {
  kCrash,   ///< machine stops taking chunks; its queue is reassigned
  kDie,     ///< hard process exit (resume-from-journal test path)
  kSlow,    ///< machine runs slow_factor× slower
  kFlaky,   ///< transient chunk failure; retried with backoff
  kIoFail,  ///< the machine's writes start failing (sticky writer status)
};

const char* FaultActionName(FaultAction action);

struct FaultRule {
  int machine = -1;             ///< -1: any machine ('*')
  FaultAction action = FaultAction::kCrash;
  std::uint64_t at_chunk = 0;   ///< fire at this per-machine chunk boundary
                                ///  ordinal (1-based); 0 = not chunk-triggered
  std::uint64_t at_shuffle = 0; ///< fire at this per-machine shuffle ordinal
  double probability = 0.0;     ///< per-boundary probability when > 0
  double slow_factor = 1.0;     ///< kSlow only

  bool Matches(int m) const { return machine < 0 || machine == m; }
  std::string ToString() const;
};

struct FaultPlan {
  std::uint64_t seed = 0x5EEDFA17ULL;  ///< probabilistic-draw seed
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
  std::string ToString() const;

  /// Parses the grammar above. On error returns InvalidArgument naming the
  /// offending clause and leaves *out untouched.
  static Status Parse(const std::string& text, FaultPlan* out);

  /// Parses TG_FAULT_PLAN. Returns Ok with an empty plan when the variable
  /// is unset or empty.
  static Status FromEnv(FaultPlan* out);
};

}  // namespace tg::fault

#endif  // TRILLIONG_FAULT_FAULT_PLAN_H_
