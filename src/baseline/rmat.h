#ifndef TRILLIONG_BASELINE_RMAT_H_
#define TRILLIONG_BASELINE_RMAT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/noise.h"
#include "model/seed_matrix.h"
#include "rng/alias_table.h"
#include "rng/random.h"
#include "util/common.h"
#include "util/memory_budget.h"

namespace tg::baseline {

/// Per-edge consumer used by the edge-at-a-time baselines.
using EdgeConsumer = std::function<void(const Edge&)>;

/// Generates one edge by recursive quadrant selection on the adjacency
/// matrix (Section 2.1, Figure 1(b)): one uniform deviate and one quadrant
/// choice per level, MSB first. The per-level matrices come from a
/// NoiseVector, so the same kernel serves RMAT, SKG and NSKG (Graph500)
/// generation.
Edge RmatEdge(const model::NoiseVector& noise, rng::Rng* rng);

/// Path-prefix probability tables for the R-MAT quadrant descent (the
/// arXiv 1905.03525 trick, mirrored on the AVS side by
/// core/prefix_tables.h): levels are grouped four at a time, the 4^m joint
/// quadrant choices of a group form one PackedAliasTable, and each sampled
/// outcome decodes into m source bits and m destination bits. One raw
/// 64-bit draw per group — ceil(levels/4) draws per edge — instead of one
/// deviate plus up to three compares per level. Per-level NSKG noise is
/// baked into the group weights, so noisy seeds work unchanged. Build once
/// per NoiseVector; Sample is const and thread-safe.
class RmatPrefixTables {
 public:
  static constexpr int kGroupLevels = 4;

  explicit RmatPrefixTables(const model::NoiseVector& noise);

  /// Draws one edge; consumes exactly one NextUint64 per level group (a
  /// different — still deterministic — stream than RmatEdge's NextDouble
  /// descent).
  Edge Sample(rng::Rng* rng) const;

 private:
  struct Group {
    int levels;  ///< levels covered (1..kGroupLevels)
    rng::PackedAliasTable table;
    std::vector<std::uint8_t> u_bits;  ///< outcome -> source bit pattern
    std::vector<std::uint8_t> v_bits;  ///< outcome -> destination pattern
  };
  std::vector<Group> groups_;
};

/// Statistics common to the WES baselines.
struct WesStats {
  std::uint64_t num_edges = 0;       ///< unique edges delivered
  std::uint64_t num_generated = 0;   ///< raw trials (>= num_edges)
  std::uint64_t peak_bytes = 0;      ///< peak dedup / sort memory
  std::uint64_t spilled_bytes = 0;   ///< disk traffic (disk variants only)
};

struct RmatOptions {
  model::SeedMatrix seed = model::SeedMatrix::Graph500();
  int scale = 20;
  std::uint64_t num_edges = 0;  ///< 0 -> 16 * |V|
  double noise = 0.0;           ///< NSKG noise N
  std::uint64_t rng_seed = 42;
  /// Per-machine memory cap (nullptr = unlimited). RMAT-mem registers its
  /// O(|E|) dedup set here, which is what reproduces the paper's O.O.M rows.
  MemoryBudget* budget = nullptr;
  /// Draw edges through RmatPrefixTables (one table draw per 4 levels)
  /// instead of the per-level descent. Same distribution, different RNG
  /// stream; false restores the pre-table kernel for A/B comparisons.
  bool use_prefix_tables = true;

  std::uint64_t NumVertices() const { return std::uint64_t{1} << scale; }
  std::uint64_t NumEdges() const {
    return num_edges != 0 ? num_edges : std::uint64_t{16} << scale;
  }
};

/// RMAT-mem (Section 7.3): the default WES generator. Keeps every generated
/// edge in an in-memory hash set to reject repeats until |E| unique edges
/// exist — O(|E|) space, O(|E| log |V|) time. Requires 2 * scale <= 48 so an
/// edge packs into one dedup key.
WesStats RmatMem(const RmatOptions& options, const EdgeConsumer& consume);

/// RMAT-disk (Section 7.3): generates |E| * (1 + epsilon) raw edges without
/// in-memory dedup, spilling sorted runs, then external-sort merges with
/// duplicate elimination. O(buffer) memory, disk-bound.
struct RmatDiskOptions : RmatOptions {
  std::string temp_dir = ".";
  std::size_t sort_buffer_items = 1 << 20;
  double epsilon = 0.01;  ///< oversampling factor of Algorithm 3
};
WesStats RmatDisk(const RmatDiskOptions& options, const EdgeConsumer& consume);

}  // namespace tg::baseline

#endif  // TRILLIONG_BASELINE_RMAT_H_
