#ifndef TRILLIONG_BASELINE_SIMPLE_H_
#define TRILLIONG_BASELINE_SIMPLE_H_

#include "baseline/rmat.h"
#include "util/common.h"

namespace tg::baseline {

/// Erdős–Rényi G(n, m): |E| uniformly random edges, optional dedup
/// (Section 8: equivalent to RMAT with all seed parameters 0.25).
struct ErdosRenyiOptions {
  int scale = 16;
  std::uint64_t num_edges = 0;  ///< 0 -> 16 * |V|
  std::uint64_t rng_seed = 42;
  bool dedup = true;

  std::uint64_t NumVertices() const { return std::uint64_t{1} << scale; }
  std::uint64_t NumEdges() const {
    return num_edges != 0 ? num_edges : std::uint64_t{16} << scale;
  }
};
std::uint64_t ErdosRenyi(const ErdosRenyiOptions& options,
                         const EdgeConsumer& consume);

/// Barabási–Albert preferential attachment via the edge-list sampling trick
/// used by ROLL [23] (Section 8): a new edge attaches to the endpoint of a
/// uniformly random existing edge, which samples proportionally to degree in
/// O(1). In-memory, O(|E|) space — included as the related-work baseline
/// that "cannot generate a larger-scale graph".
struct BarabasiAlbertOptions {
  VertexId num_vertices = 1 << 16;
  /// Edges attached per new vertex.
  int edges_per_vertex = 8;
  std::uint64_t rng_seed = 42;
};
std::uint64_t BarabasiAlbert(const BarabasiAlbertOptions& options,
                             const EdgeConsumer& consume);

}  // namespace tg::baseline

#endif  // TRILLIONG_BASELINE_SIMPLE_H_
