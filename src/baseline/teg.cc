#include "baseline/teg.h"

#include <cmath>
#include <vector>

#include "numeric/bits.h"
#include "util/flat_set64.h"

namespace tg::baseline {

TegStats RunTeg(const TegOptions& options, const EdgeConsumer& consume) {
  const int scale = options.scale;
  const int grid_scale = options.GridScale();
  TG_CHECK(grid_scale >= 0 && grid_scale <= scale);
  const int sub_scale = scale - grid_scale;  // levels inside a submatrix
  const VertexId grid_dim = VertexId{1} << grid_scale;
  const VertexId sub_dim = VertexId{1} << sub_scale;
  const double total_edges = static_cast<double>(options.NumEdges());
  const model::SeedMatrix& seed = options.seed;

  // mass(I, J) of a grid cell is the Kronecker product over grid_scale
  // levels: a^na * b^nb * c^nc * d^nd by popcounts (Proposition 1).
  std::vector<double> pow_a(grid_scale + 1), pow_b(grid_scale + 1),
      pow_c(grid_scale + 1), pow_d(grid_scale + 1);
  for (int i = 0; i <= grid_scale; ++i) {
    pow_a[i] = std::pow(seed.a(), i);
    pow_b[i] = std::pow(seed.b(), i);
    pow_c[i] = std::pow(seed.c(), i);
    pow_d[i] = std::pow(seed.d(), i);
  }

  TegStats stats;
  rng::Rng rng(options.rng_seed, /*stream=*/4);
  FlatSet64 dedup;
  for (VertexId gi = 0; gi < grid_dim; ++gi) {
    const int i_ones = numeric::BitsLow(gi, grid_scale);
    for (VertexId gj = 0; gj < grid_dim; ++gj) {
      const int nd = numeric::Bits(gi & gj);
      const int nb = numeric::BitsLow(gj, grid_scale) - nd;
      const int nc = i_ones - nd;
      const int na = grid_scale - nb - nc - nd;
      const double mass = pow_a[na] * pow_b[nb] * pow_c[nc] * pow_d[nd];
      // The TeG defect: a deterministic, early-fixed count per region.
      auto cell_edges =
          static_cast<std::uint64_t>(std::llround(total_edges * mass));
      if (cell_edges == 0) continue;
      const std::uint64_t capacity = sub_dim * sub_dim;
      if (cell_edges > capacity) cell_edges = capacity;
      ++stats.num_cells;

      dedup.Reset(cell_edges);
      const VertexId base_u = gi << sub_scale;
      const VertexId base_v = gj << sub_scale;
      std::uint64_t produced = 0;
      std::uint64_t attempts = 0;
      const std::uint64_t max_attempts = 100 * cell_edges + 1000;
      while (produced < cell_edges && attempts < max_attempts) {
        ++attempts;
        // TeG places edges uniformly inside the submatrix — combined with
        // the static counts this flattens the fine-grained power law into a
        // per-block staircase, which is exactly why its Figure 8 plot is
        // "far from RMAT's".
        VertexId su = 0, sv = 0;
        if (sub_scale > 0) {
          su = rng.NextBounded(sub_dim);
          sv = rng.NextBounded(sub_dim);
        }
        if (dedup.Insert((su << sub_scale) | sv)) {
          consume(Edge{base_u | su, base_v | sv});
          ++produced;
        }
      }
      stats.num_edges += produced;
    }
  }
  return stats;
}

}  // namespace tg::baseline
