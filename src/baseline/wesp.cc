#include "baseline/wesp.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>

#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/external_sorter.h"
#include "util/stopwatch.h"

namespace tg::baseline {

WespStats RunWesp(cluster::SimCluster* cluster, const WespOptions& options,
                  const WorkerConsumerFactory& consumer_factory) {
  const int workers = cluster->num_workers();
  const VertexId num_vertices = options.NumVertices();
  const std::uint64_t target = options.NumEdges();
  const auto per_worker_raw = static_cast<std::uint64_t>(
      static_cast<double>(target) / workers * (1.0 + options.epsilon));
  // Owner of an edge: block partition by source vertex (naive and skewed —
  // see header comment).
  const VertexId block = (num_vertices + workers - 1) / workers;

  const model::NoiseVector noise = [&] {
    if (options.noise <= 0.0) {
      return model::NoiseVector(options.seed, options.scale);
    }
    rng::Rng noise_rng(options.rng_seed, 0xA015E1ULL);
    return model::NoiseVector(options.seed, options.scale, options.noise,
                              &noise_rng);
  }();

  // Shared read-only prefix tables (Sample is const); each worker keeps its
  // own RNG stream exactly as before.
  const std::optional<RmatPrefixTables> tables =
      options.use_prefix_tables ? std::optional<RmatPrefixTables>(noise)
                                : std::nullopt;

  WespStats stats;

  // --- Generation phase (Algorithm 3 lines 1-6). ---
  // The mem variant holds the generated edges in RAM and registers them
  // against the machine budget. The disk variant conceptually spools them
  // (a real implementation writes run files before the shuffle), so only
  // its bounded sort buffer counts against the budget.
  const bool charge_buffers = !options.disk;
  std::vector<std::vector<std::vector<Edge>>> outbox(workers);
  stats.generate_seconds = cluster->RunParallel([&](int w) {
    TG_SPAN("wesp.generate");
    rng::Rng rng(options.rng_seed, 1000 + static_cast<std::uint64_t>(w));
    auto& buckets = outbox[w];
    buckets.resize(workers);
    MemoryBudget* budget = cluster->worker_budget(w);
    MemoryBudget::TagStats* shuffle_tag = budget->Tag("cluster.shuffle_buf");
    std::uint64_t registered = 0;
    for (std::uint64_t i = 0; i < per_worker_raw; ++i) {
      Edge e = tables ? tables->Sample(&rng) : RmatEdge(noise, &rng);
      int owner = static_cast<int>(e.src / block);
      buckets[owner].push_back(e);
      // Register outbox growth in coarse chunks to keep the hot loop cheap.
      if (charge_buffers && (i & 0xFFFF) == 0) {
        std::uint64_t now = i * sizeof(Edge);
        budget->Allocate(now - registered, shuffle_tag);
        registered = now;
      }
    }
    if (charge_buffers) {
      budget->Allocate(per_worker_raw * sizeof(Edge) - registered,
                       shuffle_tag);
    }
  });
  stats.num_generated = static_cast<std::uint64_t>(per_worker_raw) * workers;

  // --- Shuffle phase (Algorithm 3 line 7). The concatenation CPU would be
  // spread across machines in a real cluster; the wire time is simulated.
  cluster->ResetNetworkClock();
  double shuffle_cpu_start = ThreadCpuSeconds();
  std::vector<std::vector<Edge>> inbox = cluster->Shuffle(std::move(outbox));
  double shuffle_cpu =
      (ThreadCpuSeconds() - shuffle_cpu_start) / cluster->num_machines();
  // Outboxes were freed by the shuffle; swap the registration to the inbox.
  for (int m = 0; m < cluster->num_machines(); ++m) {
    cluster->machine_budget(m)->ReleaseAll();
  }
  for (int w = 0; w < workers; ++w) {
    if (charge_buffers) {
      MemoryBudget* budget = cluster->worker_budget(w);
      budget->Allocate(inbox[w].size() * sizeof(Edge),
                       budget->Tag("cluster.shuffle_buf"));
    }
    stats.max_partition_edges =
        std::max<std::uint64_t>(stats.max_partition_edges, inbox[w].size());
  }
  stats.shuffle_seconds = cluster->network_seconds() + shuffle_cpu;
  stats.shuffled_bytes = cluster->shuffled_bytes();

  // --- Merge phase (Algorithm 3 lines 8-9). ---
  std::atomic<std::uint64_t> unique_edges{0};
  std::atomic<std::uint64_t> spilled{0};
  stats.merge_seconds = cluster->RunParallel([&](int w) {
    TG_SPAN("wesp.merge");
    EdgeConsumer consume =
        consumer_factory ? consumer_factory(w) : EdgeConsumer();
    std::uint64_t count = 0;
    if (!options.disk) {
      // In-memory: sort + unique in place (the inbox bytes are already
      // registered against the machine budget).
      std::vector<Edge>& edges = inbox[w];
      std::sort(edges.begin(), edges.end());
      auto end = std::unique(edges.begin(), edges.end());
      for (auto it = edges.begin(); it != end; ++it) {
        if (consume) consume(*it);
        ++count;
      }
    } else {
      // The sorter charges its run buffer against the machine budget
      // itself (tag "storage.extsort.run").
      storage::ExternalSorter<Edge> sorter(
          {options.temp_dir, options.sort_buffer_items,
           "wesp_disk_w" + std::to_string(w), cluster->worker_budget(w)});
      // Stream the inbox into the sorter, shrinking the in-memory partition
      // (a real disk implementation would have received straight to disk).
      std::vector<Edge>& edges = inbox[w];
      for (const Edge& e : edges) sorter.Add(e);
      edges.clear();
      edges.shrink_to_fit();
      count = sorter.Merge(/*dedup=*/true, [&](const Edge& e) {
        if (consume) consume(e);
      });
      spilled.fetch_add(sorter.bytes_spilled());
    }
    unique_edges.fetch_add(count);
  });
  stats.num_edges = unique_edges.load();
  stats.spilled_bytes = spilled.load();
  stats.peak_machine_bytes = cluster->MaxMachinePeakBytes();
  obs::GetCounter("wesp.edges_generated")->Add(stats.num_generated);
  obs::GetCounter("wesp.edges_unique")->Add(stats.num_edges);
  cluster->RecordMachineStats();

  // Release the remaining inbox registrations.
  for (int m = 0; m < cluster->num_machines(); ++m) {
    cluster->machine_budget(m)->ReleaseAll();
  }
  return stats;
}

}  // namespace tg::baseline
