#include "baseline/rmat.h"

#include <algorithm>
#include <optional>

#include "storage/external_sorter.h"
#include "util/flat_set64.h"

namespace tg::baseline {

RmatPrefixTables::RmatPrefixTables(const model::NoiseVector& noise) {
  const int levels = noise.levels();
  for (int l0 = 0; l0 < levels; l0 += kGroupLevels) {
    const int m = std::min(kGroupLevels, levels - l0);
    const int outcomes = 1 << (2 * m);
    Group group;
    group.levels = m;
    group.u_bits.resize(outcomes);
    group.v_bits.resize(outcomes);
    std::vector<double> weights(outcomes);
    for (int p = 0; p < outcomes; ++p) {
      // Outcome encoding: two bits per level (row bit high), first level of
      // the group in the most significant position — matching the MSB-first
      // descent order of RmatEdge.
      double w = 1.0;
      std::uint8_t ub = 0, vb = 0;
      for (int j = 0; j < m; ++j) {
        const int cell = (p >> (2 * (m - 1 - j))) & 3;
        const int row = cell >> 1;
        const int col = cell & 1;
        w *= noise.Entry(l0 + j, row, col);
        ub = static_cast<std::uint8_t>((ub << 1) | row);
        vb = static_cast<std::uint8_t>((vb << 1) | col);
      }
      weights[p] = w;
      group.u_bits[p] = ub;
      group.v_bits[p] = vb;
    }
    group.table = rng::PackedAliasTable(weights);
    groups_.push_back(std::move(group));
  }
}

Edge RmatPrefixTables::Sample(rng::Rng* rng) const {
  VertexId u = 0, v = 0;
  for (const Group& group : groups_) {
    const std::uint32_t p = group.table.Sample(rng->NextUint64());
    u = (u << group.levels) | group.u_bits[p];
    v = (v << group.levels) | group.v_bits[p];
  }
  return Edge{u, v};
}

Edge RmatEdge(const model::NoiseVector& noise, rng::Rng* rng) {
  VertexId u = 0, v = 0;
  const int levels = noise.levels();
  for (int level = 0; level < levels; ++level) {
    double x = rng->NextDouble();
    // Quadrant cumulative: a, a+b, a+b+c, 1.
    double a = noise.Entry(level, 0, 0);
    double b = noise.Entry(level, 0, 1);
    double c = noise.Entry(level, 1, 0);
    int row, col;
    if (x < a) {
      row = 0;
      col = 0;
    } else if (x < a + b) {
      row = 0;
      col = 1;
    } else if (x < a + b + c) {
      row = 1;
      col = 0;
    } else {
      row = 1;
      col = 1;
    }
    u = (u << 1) | static_cast<VertexId>(row);
    v = (v << 1) | static_cast<VertexId>(col);
  }
  return Edge{u, v};
}

namespace {

model::NoiseVector MakeNoise(const RmatOptions& options, int extra_stream) {
  if (options.noise <= 0.0) {
    return model::NoiseVector(options.seed, options.scale);
  }
  rng::Rng noise_rng(options.rng_seed,
                     0xA015E1ULL + static_cast<std::uint64_t>(extra_stream));
  return model::NoiseVector(options.seed, options.scale, options.noise,
                            &noise_rng);
}

std::uint64_t PackEdge(const Edge& e, int scale) {
  return (e.src << scale) | e.dst;
}

}  // namespace

WesStats RmatMem(const RmatOptions& options, const EdgeConsumer& consume) {
  TG_CHECK_MSG(2 * options.scale <= 48,
               "RMAT-mem packs edges into 48-bit keys; scale too large");
  const model::NoiseVector noise = MakeNoise(options, 0);
  rng::Rng rng(options.rng_seed, /*stream=*/2);
  const std::uint64_t target = options.NumEdges();
  TG_CHECK_MSG(target <= (options.NumVertices() * options.NumVertices()) / 2,
               "|E| must be well below |V|^2 for rejection to terminate");

  WesStats stats;
  FlatSet64 dedup(static_cast<std::size_t>(target));
  ScopedAllocation dedup_mem(options.budget, dedup.MemoryBytes(),
                             "baseline.rmat.edge_set");
  stats.peak_bytes = dedup_mem.bytes();

  const std::optional<RmatPrefixTables> tables =
      options.use_prefix_tables ? std::optional<RmatPrefixTables>(noise)
                                : std::nullopt;
  while (dedup.size() < target) {
    Edge e = tables ? tables->Sample(&rng) : RmatEdge(noise, &rng);
    ++stats.num_generated;
    if (dedup.Insert(PackEdge(e, options.scale))) {
      consume(e);
      ++stats.num_edges;
      if (dedup.MemoryBytes() > dedup_mem.bytes()) {
        dedup_mem.ResizeTo(dedup.MemoryBytes());
        stats.peak_bytes = std::max(stats.peak_bytes, dedup_mem.bytes());
      }
    }
  }
  return stats;
}

WesStats RmatDisk(const RmatDiskOptions& options, const EdgeConsumer& consume) {
  const model::NoiseVector noise = MakeNoise(options, 0);
  rng::Rng rng(options.rng_seed, /*stream=*/2);
  const std::uint64_t target = options.NumEdges();
  const auto raw_target = static_cast<std::uint64_t>(
      static_cast<double>(target) * (1.0 + options.epsilon));

  WesStats stats;
  // The sorter charges its own run buffer (tag "storage.extsort.run").
  storage::ExternalSorter<Edge> sorter(
      {options.temp_dir, options.sort_buffer_items, "rmat_disk",
       options.budget});
  stats.peak_bytes = sorter.buffer_bytes();

  const std::optional<RmatPrefixTables> tables =
      options.use_prefix_tables ? std::optional<RmatPrefixTables>(noise)
                                : std::nullopt;
  for (std::uint64_t i = 0; i < raw_target; ++i) {
    sorter.Add(tables ? tables->Sample(&rng) : RmatEdge(noise, &rng));
  }
  stats.num_generated = raw_target;

  std::uint64_t delivered = 0;
  sorter.Merge(/*dedup=*/true, [&](const Edge& e) {
    if (delivered < target) {
      consume(e);
      ++delivered;
    }
  });
  stats.num_edges = delivered;
  stats.spilled_bytes = sorter.bytes_spilled();
  return stats;
}

}  // namespace tg::baseline
