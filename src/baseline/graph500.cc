#include "baseline/graph500.h"

#include <algorithm>
#include <optional>

#include "baseline/rmat.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "rng/random.h"
#include "util/stopwatch.h"

namespace tg::baseline {

VertexId ScrambleVertex(VertexId x, int scale, std::uint64_t key) {
  const VertexId mask = (scale >= 64) ? ~VertexId{0}
                                      : ((VertexId{1} << scale) - 1);
  const int shift = scale / 2 + 1;
  // Two rounds of (xor-key, odd multiply mod 2^scale, xorshift-right); every
  // step is bijective on scale-bit integers.
  x = (x ^ (key & mask)) & mask;
  x = (x * 0x9E3779B97F4A7C15ULL + 1) & mask;  // odd multiplier, bijective
  x ^= x >> shift;
  x = (x * 0xBF58476D1CE4E5B9ULL + (key | 1)) & mask;
  x ^= x >> shift;
  return x & mask;
}

Graph500Stats RunGraph500(cluster::SimCluster* cluster,
                          const Graph500Options& options,
                          const CsrConsumer& consume) {
  const int workers = cluster->num_workers();
  const int machines = cluster->num_machines();
  const VertexId num_vertices = options.NumVertices();
  const std::uint64_t total_edges = options.NumEdges();
  const std::uint64_t per_worker = (total_edges + workers - 1) / workers;
  const VertexId block = (num_vertices + machines - 1) / machines;
  const std::uint64_t scramble_key = rng::MixSeeds(options.rng_seed, 0x6500);

  const model::NoiseVector noise = [&] {
    if (options.noise <= 0.0) {
      return model::NoiseVector(options.seed, options.scale);
    }
    rng::Rng noise_rng(options.rng_seed, 0xA015E1ULL);
    return model::NoiseVector(options.seed, options.scale, options.noise,
                              &noise_rng);
  }();

  // Shared read-only prefix tables (Sample is const); per-worker RNG
  // streams are unchanged.
  const std::optional<RmatPrefixTables> tables =
      options.use_prefix_tables ? std::optional<RmatPrefixTables>(noise)
                                : std::nullopt;

  Graph500Stats stats;

  // --- Phase 1: edge generation (each worker owns a contiguous slice of
  // edge indices; ownership of vertices is irrelevant thanks to scrambling).
  // Phase times are simulated cluster times: max per-worker CPU time (what
  // the phase takes when every worker has its own core) plus wire time.
  std::vector<std::vector<std::vector<Edge>>> outbox(workers);
  stats.generation_seconds = cluster->RunParallel([&](int w) {
    TG_SPAN("g500.generate");
    rng::Rng rng(options.rng_seed, 2000 + static_cast<std::uint64_t>(w));
    auto& buckets = outbox[w];
    buckets.resize(workers);
    MemoryBudget* budget = cluster->worker_budget(w);
    MemoryBudget::TagStats* shuffle_tag = budget->Tag("cluster.shuffle_buf");
    std::uint64_t begin = static_cast<std::uint64_t>(w) * per_worker;
    std::uint64_t end = std::min(begin + per_worker, total_edges);
    std::uint64_t registered = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      Edge e = tables ? tables->Sample(&rng) : RmatEdge(noise, &rng);
      e.src = ScrambleVertex(e.src, options.scale, scramble_key);
      e.dst = ScrambleVertex(e.dst, options.scale, scramble_key);
      // Route to the machine owning the source block; spread across that
      // machine's workers by source for a deterministic layout.
      int machine = static_cast<int>(e.src / block);
      int dst_worker = machine * (workers / machines);
      buckets[dst_worker].push_back(e);
      if (((i - begin) & 0xFFFF) == 0) {
        std::uint64_t now = (i - begin) * sizeof(Edge);
        budget->Allocate(now - registered, shuffle_tag);
        registered = now;
      }
    }
    budget->Allocate((end - begin) * sizeof(Edge) - registered, shuffle_tag);
  });
  stats.num_edges = total_edges;

  // --- Phase 2: construction = shuffle + per-machine CSR assembly.
  cluster->ResetNetworkClock();
  double shuffle_cpu_start = ThreadCpuSeconds();
  std::vector<std::vector<Edge>> inbox = cluster->Shuffle(std::move(outbox));
  // The in-memory concatenation work would be spread over the machines.
  double shuffle_cpu = (ThreadCpuSeconds() - shuffle_cpu_start) / machines;
  for (int m = 0; m < machines; ++m) {
    cluster->machine_budget(m)->ReleaseAll();
  }
  for (int w = 0; w < workers; ++w) {
    MemoryBudget* budget = cluster->worker_budget(w);
    budget->Allocate(inbox[w].size() * sizeof(Edge),
                     budget->Tag("cluster.shuffle_buf"));
  }

  // One CSR per machine (built by its first worker; Graph500's construction
  // is not the parallel-friendly part, which is the point of Figure 14(b)).
  double assembly_seconds = cluster->RunParallel([&](int w) {
    TG_SPAN("g500.csr_assembly");
    const int leads = workers / machines;
    if (w % leads != 0) return;
    int machine = w / leads;
    std::vector<Edge>& edges = inbox[w];
    MemoryBudget* budget = cluster->machine_budget(machine);

    VertexId lo = static_cast<VertexId>(machine) * block;
    VertexId hi = std::min<VertexId>(lo + block, num_vertices);
    std::vector<std::uint64_t> offsets(hi - lo + 1, 0);
    ScopedAllocation offsets_mem(budget, offsets.size() * sizeof(offsets[0]),
                                 "baseline.g500.csr");
    for (const Edge& e : edges) ++offsets[e.src - lo + 1];
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] += offsets[i - 1];
    }
    std::vector<VertexId> adj(edges.size());
    ScopedAllocation adj_mem(budget, adj.size() * sizeof(VertexId),
                             "baseline.g500.csr");
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    ScopedAllocation cursor_mem(budget, cursor.size() * sizeof(cursor[0]),
                                "baseline.g500.csr");
    for (const Edge& e : edges) adj[cursor[e.src - lo]++] = e.dst;
    // Sort each adjacency (CSR convention; also what the BFS kernel wants).
    for (VertexId u = lo; u < hi; ++u) {
      std::sort(adj.begin() + offsets[u - lo], adj.begin() + offsets[u - lo + 1]);
    }
    if (consume) consume(machine, lo, offsets, adj);
  });
  stats.network_seconds = cluster->network_seconds();
  stats.shuffled_bytes = cluster->shuffled_bytes();
  stats.construction_seconds =
      shuffle_cpu + assembly_seconds + stats.network_seconds;
  stats.peak_machine_bytes = cluster->MaxMachinePeakBytes();
  obs::GetCounter("g500.edges_generated")->Add(stats.num_edges);
  cluster->RecordMachineStats();

  for (int m = 0; m < machines; ++m) {
    cluster->machine_budget(m)->ReleaseAll();
  }
  return stats;
}

}  // namespace tg::baseline
