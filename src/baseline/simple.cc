#include "baseline/simple.h"

#include <vector>

#include "rng/random.h"
#include "util/flat_set64.h"

namespace tg::baseline {

std::uint64_t ErdosRenyi(const ErdosRenyiOptions& options,
                         const EdgeConsumer& consume) {
  TG_CHECK(2 * options.scale <= 48);
  rng::Rng rng(options.rng_seed, /*stream=*/5);
  const VertexId n = options.NumVertices();
  const std::uint64_t target = options.NumEdges();
  std::uint64_t produced = 0;
  if (options.dedup) {
    FlatSet64 dedup(target);
    while (produced < target) {
      VertexId u = rng.NextBounded(n);
      VertexId v = rng.NextBounded(n);
      if (dedup.Insert((u << options.scale) | v)) {
        consume(Edge{u, v});
        ++produced;
      }
    }
  } else {
    for (; produced < target; ++produced) {
      consume(Edge{rng.NextBounded(n), rng.NextBounded(n)});
    }
  }
  return produced;
}

std::uint64_t BarabasiAlbert(const BarabasiAlbertOptions& options,
                             const EdgeConsumer& consume) {
  TG_CHECK(options.edges_per_vertex >= 1);
  rng::Rng rng(options.rng_seed, /*stream=*/6);
  const VertexId n = options.num_vertices;
  const int m = options.edges_per_vertex;
  TG_CHECK(n > static_cast<VertexId>(m));

  // Endpoint pool: every endpoint of every edge, so a uniform draw samples
  // vertices proportionally to degree (the ROLL trick).
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * m);

  // Seed clique over the first m+1 vertices.
  std::uint64_t produced = 0;
  for (int i = 0; i <= m; ++i) {
    for (int j = 0; j < i; ++j) {
      consume(Edge{static_cast<VertexId>(i), static_cast<VertexId>(j)});
      endpoints.push_back(i);
      endpoints.push_back(j);
      ++produced;
    }
  }

  for (VertexId u = m + 1; u < n; ++u) {
    for (int e = 0; e < m; ++e) {
      VertexId v = endpoints[rng.NextBounded(endpoints.size())];
      consume(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
      ++produced;
    }
  }
  return produced;
}

}  // namespace tg::baseline
