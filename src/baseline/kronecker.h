#ifndef TRILLIONG_BASELINE_KRONECKER_H_
#define TRILLIONG_BASELINE_KRONECKER_H_

#include "baseline/rmat.h"
#include "model/seed_matrix_n.h"
#include "util/common.h"
#include "util/memory_budget.h"

namespace tg::baseline {

/// FastKronecker (Section 3.1; SNAP's krongen): recursive region selection
/// with an n x n seed matrix, log_n |V| levels per edge, in-memory duplicate
/// elimination — i.e. the WES approach generalized beyond 2 x 2. With n = 2
/// it generates exactly the RMAT distribution.
struct FastKroneckerOptions {
  model::SeedMatrixN seed = model::SeedMatrixN::FromSeedMatrix(
      model::SeedMatrix::Graph500());
  VertexId num_vertices = VertexId{1} << 20;  ///< must be a power of n
  std::uint64_t num_edges = 16ULL << 20;
  std::uint64_t rng_seed = 42;
  MemoryBudget* budget = nullptr;
  /// Group levels into joint-outcome PackedAliasTables (n^2 cells per level,
  /// as many levels per group as fit 256 outcomes) instead of one binary
  /// search per level. Same distribution, different RNG stream.
  bool use_prefix_tables = true;
};
WesStats FastKronecker(const FastKroneckerOptions& options,
                       const EdgeConsumer& consume);

/// The original Kronecker generator (AES, Section 3): visits every cell of
/// the |V| x |V| probability matrix and performs one Bernoulli trial per
/// cell — O(|V|^2 / P) time, O(1) space. Only feasible at small scales,
/// exactly as the paper observes ("extremely slow").
struct KroneckerAesOptions {
  model::SeedMatrix seed = model::SeedMatrix::Graph500();
  int scale = 10;
  std::uint64_t num_edges = 0;  ///< 0 -> 16 * |V|; scales cell probabilities
  std::uint64_t rng_seed = 42;
  int num_threads = 1;

  std::uint64_t NumVertices() const { return std::uint64_t{1} << scale; }
  std::uint64_t NumEdges() const {
    return num_edges != 0 ? num_edges : std::uint64_t{16} << scale;
  }
};

struct AesStats {
  std::uint64_t num_edges = 0;
  std::uint64_t cells_visited = 0;
};

/// Visits all cells; each cell (u, v) yields an edge with probability
/// |E| * K_{u,v} (clamped at 1). The consumer is invoked from multiple
/// threads when num_threads > 1 and must be thread-safe in that case.
AesStats KroneckerAes(const KroneckerAesOptions& options,
                      const EdgeConsumer& consume);

}  // namespace tg::baseline

#endif  // TRILLIONG_BASELINE_KRONECKER_H_
