#include "baseline/kronecker.h"

#include <atomic>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "numeric/bits.h"
#include "rng/alias_table.h"
#include "util/flat_set64.h"

namespace tg::baseline {

namespace {

/// Prefix tables for the n x n recursive descent: the joint cell choices of
/// up to `m` consecutive levels (n^2m outcomes, zero-padded to a power of
/// two) become one PackedAliasTable draw, decoded into m base-n source and
/// destination digits. The n = 2 case matches RmatPrefixTables; the general
/// case keeps the group outcome count at or below 256.
struct KroneckerPrefixTables {
  struct Group {
    VertexId radix;  ///< n^levels-in-group: the per-group digit multiplier
    rng::PackedAliasTable table;
    std::vector<VertexId> u_val;  ///< outcome -> source digits value
    std::vector<VertexId> v_val;  ///< outcome -> destination digits value
  };
  std::vector<Group> groups;

  KroneckerPrefixTables(const model::SeedMatrixN& seed, int levels) {
    const int n = seed.n();
    const int cells = n * n;
    int per_group = 1;
    while (std::pow(cells, per_group + 1) <= 256.0) ++per_group;
    for (int l0 = 0; l0 < levels; l0 += per_group) {
      const int m = std::min(per_group, levels - l0);
      int outcomes = 1;
      for (int j = 0; j < m; ++j) outcomes *= cells;
      std::size_t padded = 1;
      while (padded < static_cast<std::size_t>(outcomes)) padded *= 2;

      Group group;
      group.radix = 1;
      for (int j = 0; j < m; ++j) group.radix *= n;
      group.u_val.resize(padded, 0);
      group.v_val.resize(padded, 0);
      std::vector<double> weights(padded, 0.0);
      for (int p = 0; p < outcomes; ++p) {
        // Outcome p in base `cells`, first level of the group in the most
        // significant digit (matching the MSB-first descent).
        double w = 1.0;
        VertexId u = 0, v = 0;
        int rest = p;
        int divisor = outcomes / cells;
        for (int j = 0; j < m; ++j) {
          const int cell = rest / divisor;
          rest %= divisor;
          divisor = divisor == 1 ? 1 : divisor / cells;
          const int row = cell / n;
          const int col = cell % n;
          w *= seed.Entry(row, col);
          u = u * n + static_cast<VertexId>(row);
          v = v * n + static_cast<VertexId>(col);
        }
        weights[p] = w;
        group.u_val[p] = u;
        group.v_val[p] = v;
      }
      group.table = rng::PackedAliasTable(weights);
      groups.push_back(std::move(group));
    }
  }

  Edge Sample(rng::Rng* rng) const {
    VertexId u = 0, v = 0;
    for (const Group& group : groups) {
      const std::uint32_t p = group.table.Sample(rng->NextUint64());
      u = u * group.radix + group.u_val[p];
      v = v * group.radix + group.v_val[p];
    }
    return Edge{u, v};
  }
};

}  // namespace

WesStats FastKronecker(const FastKroneckerOptions& options,
                       const EdgeConsumer& consume) {
  const model::SeedMatrixN& seed = options.seed;
  const int n = seed.n();
  const int levels = seed.LevelsFor(options.num_vertices);
  TG_CHECK_MSG(
      options.num_edges <= options.num_vertices * options.num_vertices / 2,
      "|E| must be well below |V|^2 for rejection to terminate");
  rng::Rng rng(options.rng_seed, /*stream=*/3);

  WesStats stats;
  FlatSet64 dedup(static_cast<std::size_t>(options.num_edges));
  ScopedAllocation dedup_mem(options.budget, dedup.MemoryBytes(),
                             "baseline.kron.edge_set");
  stats.peak_bytes = dedup_mem.bytes();

  // Dedup key: u * |V| + v (fits 64 bits whenever |V|^2 does; the paper's
  // WES baselines die of memory long before that).
  TG_CHECK_MSG(options.num_vertices <= (VertexId{1} << 31),
               "FastKronecker dedup key overflows past |V| = 2^31");

  const std::optional<KroneckerPrefixTables> tables =
      options.use_prefix_tables
          ? std::optional<KroneckerPrefixTables>(std::in_place, seed, levels)
          : std::nullopt;
  while (dedup.size() < options.num_edges) {
    VertexId u, v;
    if (tables) {
      const Edge e = tables->Sample(&rng);
      u = e.src;
      v = e.dst;
    } else {
      u = 0;
      v = 0;
      for (int level = 0; level < levels; ++level) {
        int cell = seed.SelectCell(rng.NextDouble());
        u = u * n + static_cast<VertexId>(cell / n);
        v = v * n + static_cast<VertexId>(cell % n);
      }
    }
    ++stats.num_generated;
    if (dedup.Insert(u * options.num_vertices + v)) {
      consume(Edge{u, v});
      ++stats.num_edges;
      if (dedup.MemoryBytes() > dedup_mem.bytes()) {
        dedup_mem.ResizeTo(dedup.MemoryBytes());
        stats.peak_bytes = std::max(stats.peak_bytes, dedup_mem.bytes());
      }
    }
  }
  return stats;
}

AesStats KroneckerAes(const KroneckerAesOptions& options,
                      const EdgeConsumer& consume) {
  const int scale = options.scale;
  const VertexId n = options.NumVertices();
  const double edge_scale = static_cast<double>(options.NumEdges());

  // K_{u,v} = a^na * b^nb * c^nc * d^nd where the exponents are popcounts
  // (Proposition 1); precomputing the power tables makes each cell O(1).
  std::vector<double> pow_a(scale + 1), pow_b(scale + 1), pow_c(scale + 1),
      pow_d(scale + 1);
  for (int i = 0; i <= scale; ++i) {
    pow_a[i] = std::pow(options.seed.a(), i);
    pow_b[i] = std::pow(options.seed.b(), i);
    pow_c[i] = std::pow(options.seed.c(), i);
    pow_d[i] = std::pow(options.seed.d(), i);
  }

  const int threads = std::max(options.num_threads, 1);
  std::atomic<std::uint64_t> total_edges{0};
  std::atomic<std::uint64_t> total_cells{0};

  auto run_rows = [&](VertexId row_lo, VertexId row_hi, std::uint64_t stream) {
    rng::Rng rng(options.rng_seed, 100 + stream);
    std::uint64_t edges = 0, cells = 0;
    for (VertexId u = row_lo; u < row_hi; ++u) {
      const int u_ones = numeric::BitsLow(u, scale);
      for (VertexId v = 0; v < n; ++v) {
        const int nd = numeric::Bits(u & v);
        const int nb = numeric::BitsLow(v, scale) - nd;
        const int nc = u_ones - nd;
        const int na = scale - nb - nc - nd;
        const double p =
            edge_scale * pow_a[na] * pow_b[nb] * pow_c[nc] * pow_d[nd];
        ++cells;
        if (rng.NextDouble() < p) {
          consume(Edge{u, v});
          ++edges;
        }
      }
    }
    total_edges.fetch_add(edges);
    total_cells.fetch_add(cells);
  };

  if (threads == 1) {
    run_rows(0, n, 0);
  } else {
    std::vector<std::thread> pool;
    VertexId chunk = (n + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      VertexId lo = std::min<VertexId>(static_cast<VertexId>(t) * chunk, n);
      VertexId hi = std::min<VertexId>(lo + chunk, n);
      pool.emplace_back(run_rows, lo, hi, static_cast<std::uint64_t>(t));
    }
    for (std::thread& t : pool) t.join();
  }

  return AesStats{total_edges.load(), total_cells.load()};
}

}  // namespace tg::baseline
