#include "baseline/kronecker.h"

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "numeric/bits.h"
#include "util/flat_set64.h"

namespace tg::baseline {

WesStats FastKronecker(const FastKroneckerOptions& options,
                       const EdgeConsumer& consume) {
  const model::SeedMatrixN& seed = options.seed;
  const int n = seed.n();
  const int levels = seed.LevelsFor(options.num_vertices);
  TG_CHECK_MSG(
      options.num_edges <= options.num_vertices * options.num_vertices / 2,
      "|E| must be well below |V|^2 for rejection to terminate");
  rng::Rng rng(options.rng_seed, /*stream=*/3);

  WesStats stats;
  FlatSet64 dedup(static_cast<std::size_t>(options.num_edges));
  ScopedAllocation dedup_mem(options.budget, dedup.MemoryBytes(),
                             "baseline.kron.edge_set");
  stats.peak_bytes = dedup_mem.bytes();

  // Dedup key: u * |V| + v (fits 64 bits whenever |V|^2 does; the paper's
  // WES baselines die of memory long before that).
  TG_CHECK_MSG(options.num_vertices <= (VertexId{1} << 31),
               "FastKronecker dedup key overflows past |V| = 2^31");

  while (dedup.size() < options.num_edges) {
    VertexId u = 0, v = 0;
    for (int level = 0; level < levels; ++level) {
      int cell = seed.SelectCell(rng.NextDouble());
      u = u * n + static_cast<VertexId>(cell / n);
      v = v * n + static_cast<VertexId>(cell % n);
    }
    ++stats.num_generated;
    if (dedup.Insert(u * options.num_vertices + v)) {
      consume(Edge{u, v});
      ++stats.num_edges;
      if (dedup.MemoryBytes() > dedup_mem.bytes()) {
        dedup_mem.ResizeTo(dedup.MemoryBytes());
        stats.peak_bytes = std::max(stats.peak_bytes, dedup_mem.bytes());
      }
    }
  }
  return stats;
}

AesStats KroneckerAes(const KroneckerAesOptions& options,
                      const EdgeConsumer& consume) {
  const int scale = options.scale;
  const VertexId n = options.NumVertices();
  const double edge_scale = static_cast<double>(options.NumEdges());

  // K_{u,v} = a^na * b^nb * c^nc * d^nd where the exponents are popcounts
  // (Proposition 1); precomputing the power tables makes each cell O(1).
  std::vector<double> pow_a(scale + 1), pow_b(scale + 1), pow_c(scale + 1),
      pow_d(scale + 1);
  for (int i = 0; i <= scale; ++i) {
    pow_a[i] = std::pow(options.seed.a(), i);
    pow_b[i] = std::pow(options.seed.b(), i);
    pow_c[i] = std::pow(options.seed.c(), i);
    pow_d[i] = std::pow(options.seed.d(), i);
  }

  const int threads = std::max(options.num_threads, 1);
  std::atomic<std::uint64_t> total_edges{0};
  std::atomic<std::uint64_t> total_cells{0};

  auto run_rows = [&](VertexId row_lo, VertexId row_hi, std::uint64_t stream) {
    rng::Rng rng(options.rng_seed, 100 + stream);
    std::uint64_t edges = 0, cells = 0;
    for (VertexId u = row_lo; u < row_hi; ++u) {
      const int u_ones = numeric::BitsLow(u, scale);
      for (VertexId v = 0; v < n; ++v) {
        const int nd = numeric::Bits(u & v);
        const int nb = numeric::BitsLow(v, scale) - nd;
        const int nc = u_ones - nd;
        const int na = scale - nb - nc - nd;
        const double p =
            edge_scale * pow_a[na] * pow_b[nb] * pow_c[nc] * pow_d[nd];
        ++cells;
        if (rng.NextDouble() < p) {
          consume(Edge{u, v});
          ++edges;
        }
      }
    }
    total_edges.fetch_add(edges);
    total_cells.fetch_add(cells);
  };

  if (threads == 1) {
    run_rows(0, n, 0);
  } else {
    std::vector<std::thread> pool;
    VertexId chunk = (n + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      VertexId lo = std::min<VertexId>(static_cast<VertexId>(t) * chunk, n);
      VertexId hi = std::min<VertexId>(lo + chunk, n);
      pool.emplace_back(run_rows, lo, hi, static_cast<std::uint64_t>(t));
    }
    for (std::thread& t : pool) t.join();
  }

  return AesStats{total_edges.load(), total_cells.load()};
}

}  // namespace tg::baseline
