#ifndef TRILLIONG_BASELINE_GRAPH500_H_
#define TRILLIONG_BASELINE_GRAPH500_H_

#include <functional>
#include <vector>

#include "cluster/sim_cluster.h"
#include "model/seed_matrix.h"
#include "util/common.h"

namespace tg::baseline {

/// Bijective vertex-ID scramble on [0, 2^scale) in the style of the
/// Graph500 reference generator: relabeling via (odd-multiplier, xorshift)
/// rounds destroys the correlation between vertex ID and degree, which is
/// how Graph500 avoids the workload skew problem without range partitioning
/// (Appendix D: "scramble mechanism that relabels vertex IDs via perfect
/// hashing").
VertexId ScrambleVertex(VertexId x, int scale, std::uint64_t key);

/// Graph500-benchmark-style generator (Appendix D): an in-memory, two-phase
/// pipeline. Phase 1 (generation): every worker produces its share of |E|
/// NSKG edges by per-edge recursive quadrant selection and scrambles the
/// endpoints. Phase 2 (construction): edges are shuffled to the machine
/// owning their source block and assembled into an in-memory CSR —
/// shuffling, merging and format conversion all count as construction
/// overhead, which is what Figure 14(b) measures.
struct Graph500Options {
  model::SeedMatrix seed = model::SeedMatrix::Graph500();
  int scale = 20;
  std::uint64_t edge_factor = 16;
  double noise = 0.1;  ///< the benchmark generates noisy SKG (Figure 9(c))
  std::uint64_t rng_seed = 42;
  /// Draw edges through RmatPrefixTables instead of the per-level descent
  /// (see RmatOptions::use_prefix_tables).
  bool use_prefix_tables = true;

  std::uint64_t NumVertices() const { return std::uint64_t{1} << scale; }
  std::uint64_t NumEdges() const { return edge_factor << scale; }
};

struct Graph500Stats {
  std::uint64_t num_edges = 0;  ///< raw edges (the kernel keeps duplicates)
  double generation_seconds = 0;
  /// Construction = shuffle (simulated wire time) + CSR assembly (wall).
  double construction_seconds = 0;
  double network_seconds = 0;  ///< portion of construction on the wire
  std::uint64_t shuffled_bytes = 0;
  std::uint64_t peak_machine_bytes = 0;
};

/// Optional per-machine CSR consumer: (machine, lo, offsets, neighbors)
/// where offsets has (block size + 1) entries into neighbors.
using CsrConsumer = std::function<void(int machine, VertexId lo,
                                       const std::vector<std::uint64_t>&,
                                       const std::vector<VertexId>&)>;

Graph500Stats RunGraph500(cluster::SimCluster* cluster,
                          const Graph500Options& options,
                          const CsrConsumer& consume = nullptr);

}  // namespace tg::baseline

#endif  // TRILLIONG_BASELINE_GRAPH500_H_
