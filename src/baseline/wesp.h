#ifndef TRILLIONG_BASELINE_WESP_H_
#define TRILLIONG_BASELINE_WESP_H_

#include <functional>
#include <string>

#include "baseline/rmat.h"
#include "cluster/sim_cluster.h"
#include "model/seed_matrix.h"

namespace tg::baseline {

/// The merge-based parallel WES approach of Section 3.2 (Algorithm 3),
/// called RMAT/p in the evaluation: every worker generates |E|/P * (1+eps)
/// raw RMAT edges over the whole matrix, edges are shuffled to their owner
/// (block partition by source vertex — which concentrates the power-law head
/// on machine 0, reproducing the workload skew the paper describes), and
/// each worker merges its partition while eliminating duplicates.
struct WespOptions {
  model::SeedMatrix seed = model::SeedMatrix::Graph500();
  int scale = 20;
  std::uint64_t num_edges = 0;  ///< 0 -> 16 * |V|
  double noise = 0.0;
  std::uint64_t rng_seed = 42;
  double epsilon = 0.01;  ///< oversampling factor (Section 3.2)
  /// false: WES/p-mem (sort+unique in RAM). true: WES/p-disk (external sort).
  bool disk = false;
  std::string temp_dir = ".";
  std::size_t sort_buffer_items = 1 << 20;
  /// Draw edges through RmatPrefixTables instead of the per-level descent
  /// (see RmatOptions::use_prefix_tables).
  bool use_prefix_tables = true;

  std::uint64_t NumVertices() const { return std::uint64_t{1} << scale; }
  std::uint64_t NumEdges() const {
    return num_edges != 0 ? num_edges : std::uint64_t{16} << scale;
  }
};

struct WespStats {
  std::uint64_t num_edges = 0;       ///< unique edges after the merge
  std::uint64_t num_generated = 0;   ///< raw edges before dedup
  std::uint64_t shuffled_bytes = 0;  ///< cross-machine wire traffic
  std::uint64_t spilled_bytes = 0;   ///< disk traffic (disk variant)
  std::uint64_t peak_machine_bytes = 0;
  std::uint64_t max_partition_edges = 0;  ///< skew indicator (largest inbox)
  double generate_seconds = 0;
  double shuffle_seconds = 0;  ///< simulated network time
  double merge_seconds = 0;
};

/// Per-worker edge consumer factory; pass nullptr to discard edges.
using WorkerConsumerFactory = std::function<EdgeConsumer(int worker)>;

WespStats RunWesp(cluster::SimCluster* cluster, const WespOptions& options,
                  const WorkerConsumerFactory& consumer_factory = nullptr);

}  // namespace tg::baseline

#endif  // TRILLIONG_BASELINE_WESP_H_
