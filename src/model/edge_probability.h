#ifndef TRILLIONG_MODEL_EDGE_PROBABILITY_H_
#define TRILLIONG_MODEL_EDGE_PROBABILITY_H_

#include <cmath>

#include "model/seed_matrix.h"
#include "numeric/bits.h"
#include "util/common.h"

namespace tg::model {

/// Closed-form Kronecker probability math for a 2x2 seed matrix over a graph
/// with |V| = 2^scale vertices (Proposition 1 and Lemma 1).
class EdgeProbability {
 public:
  EdgeProbability(const SeedMatrix& seed, int scale)
      : seed_(seed), scale_(scale) {
    TG_CHECK(scale >= 1 && scale <= 62);
  }

  int scale() const { return scale_; }
  VertexId num_vertices() const { return VertexId{1} << scale_; }
  const SeedMatrix& seed() const { return seed_; }

  /// K_{u,v} (Proposition 1): probability mass of the cell (u, v), i.e.
  /// a^Bits(~u&~v) * b^Bits(~u&v) * c^Bits(u&~v) * d^Bits(u&v) over the
  /// scale-bit ID width.
  double CellProbability(VertexId u, VertexId v) const {
    int bits_d = numeric::BitsLow(u & v, scale_);
    int bits_c = numeric::BitsLow(u, scale_) - bits_d;
    int bits_b = numeric::BitsLow(v, scale_) - bits_d;
    int bits_a = scale_ - bits_b - bits_c - bits_d;
    return std::pow(seed_.a(), bits_a) * std::pow(seed_.b(), bits_b) *
           std::pow(seed_.c(), bits_c) * std::pow(seed_.d(), bits_d);
  }

  /// P_{u->} (Lemma 1): probability that one edge trial lands in row u,
  /// (a+b)^Bits(~u) * (c+d)^Bits(u).
  double RowProbability(VertexId u) const {
    int ones = numeric::BitsLow(u, scale_);
    return std::pow(seed_.RowSum(0), scale_ - ones) *
           std::pow(seed_.RowSum(1), ones);
  }

  /// P_{->v} (column marginal, symmetric to Lemma 1):
  /// (a+c)^Bits(~v) * (b+d)^Bits(v).
  double ColProbability(VertexId v) const {
    int ones = numeric::BitsLow(v, scale_);
    return std::pow(seed_.ColSum(0), scale_ - ones) *
           std::pow(seed_.ColSum(1), ones);
  }

  /// Cumulative row marginal: sum over u' < u of P_{u'->}, computed in
  /// O(scale) from the Kronecker product structure. This is the source-side
  /// CDF used by the AVS-level range partitioner (Figure 6) to binary-search
  /// balanced bin boundaries without enumerating vertices.
  ///
  /// Derivation: split on the most significant bit b at position k of the
  /// remaining range; all IDs with that bit 0 contribute
  /// rowsum(0) ^ 1 * (total mass of a (k)-bit sub-problem) etc. Concretely,
  /// walking bits of u from MSB to LSB with a running prefix product:
  /// whenever bit k of u is 1, all 2^k vertices below it (prefix + 0 + free
  /// low bits) are < u, contributing prefix * RowSum(0) * (a+b+c+d)^k ==
  /// prefix * RowSum(0) (since row sums total 1 per level).
  double CumulativeRowProbability(VertexId u) const {
    TG_CHECK(u <= num_vertices());
    if (u == num_vertices()) return 1.0;  // total mass of all rows
    double cum = 0.0;
    double prefix = 1.0;
    for (int k = scale_ - 1; k >= 0; --k) {
      if (((u >> k) & 1u) != 0) {
        cum += prefix * seed_.RowSum(0);
        prefix *= seed_.RowSum(1);
      } else {
        prefix *= seed_.RowSum(0);
      }
    }
    return cum;
  }

  /// Expected number of edges out of u when |E| trials are made (Theorem 1
  /// mean np).
  double ExpectedOutDegree(VertexId u, std::uint64_t num_edges) const {
    return static_cast<double>(num_edges) * RowProbability(u);
  }

  /// Largest row marginal (row 0...0 if a+b >= c+d, else row 1...1); together
  /// with |E| this bounds E[d_max], the space bound of the AVS approach.
  double MaxRowProbability() const {
    double hi = std::max(seed_.RowSum(0), seed_.RowSum(1));
    return std::pow(hi, scale_);
  }

 private:
  SeedMatrix seed_;
  int scale_;
};

}  // namespace tg::model

#endif  // TRILLIONG_MODEL_EDGE_PROBABILITY_H_
