#ifndef TRILLIONG_MODEL_NOISE_H_
#define TRILLIONG_MODEL_NOISE_H_

#include <vector>

#include "model/seed_matrix.h"
#include "rng/random.h"
#include "util/common.h"

namespace tg::model {

/// Noisy SKG (NSKG) noise vector (Appendix C, Definition 3). The Kronecker
/// product uses a different perturbed seed matrix per level,
/// K = K_0 (x) K_1 (x) ... (x) K_{L-1}, with
///   K_i = [ a(1 - 2u_i/(a+d)),  b + u_i ;
///           c + u_i,            d(1 - 2u_i/(a+d)) ]
/// where u_i ~ U[-N, N] and N <= min((a+d)/2, b).
///
/// Level index convention: level 0 is the MOST significant Kronecker factor.
/// Bit position k (from the LSB, as in Lemma 3) maps to level L-1-k.
class NoiseVector {
 public:
  /// Noise-free: every level is the base matrix.
  NoiseVector(const SeedMatrix& base, int levels)
      : base_(base), mu_(levels, 0.0) {
    BuildLevels();
  }

  /// Draws u_i ~ U[-N, N] per level. N is clamped to the validity bound
  /// min((a+d)/2, b) so all noisy entries stay non-negative.
  NoiseVector(const SeedMatrix& base, int levels, double noise,
              rng::Rng* rng)
      : base_(base), mu_(levels) {
    TG_CHECK(noise >= 0.0);
    double bound = std::min((base.a() + base.d()) / 2.0, base.b());
    double n = std::min(noise, bound);
    for (double& mu : mu_) mu = rng->NextDouble(-n, n);
    BuildLevels();
  }

  int levels() const { return static_cast<int>(mu_.size()); }
  const SeedMatrix& base() const { return base_; }
  double mu(int level) const { return mu_[level]; }

  /// Entry of the level-i noisy matrix, row r, column c.
  double Entry(int level, int r, int c) const {
    return entries_[level][r * 2 + c];
  }

  /// Row sum of the level-i noisy matrix (the per-level factor of P'_{u->},
  /// Lemma 7).
  double RowSum(int level, int r) const { return row_sums_[level][r]; }

  /// Convenience: the same accessors indexed by bit position from the LSB.
  double EntryAtBit(int bit, int r, int c) const {
    return Entry(levels() - 1 - bit, r, c);
  }
  double RowSumAtBit(int bit, int r) const {
    return RowSum(levels() - 1 - bit, r);
  }

  /// True if every level equals the base matrix (no noise drawn).
  bool IsNoiseFree() const {
    for (double mu : mu_) {
      if (mu != 0.0) return false;
    }
    return true;
  }

 private:
  void BuildLevels() {
    int n = levels();
    entries_.resize(n);
    row_sums_.resize(n);
    double a = base_.a(), b = base_.b(), c = base_.c(), d = base_.d();
    for (int i = 0; i < n; ++i) {
      double shrink = 1.0 - 2.0 * mu_[i] / (a + d);
      entries_[i] = {a * shrink, b + mu_[i], c + mu_[i], d * shrink};
      row_sums_[i] = {entries_[i][0] + entries_[i][1],
                      entries_[i][2] + entries_[i][3]};
      for (double e : entries_[i]) {
        TG_CHECK_MSG(e >= 0.0, "noisy seed entry negative; noise too large");
      }
    }
  }

  SeedMatrix base_;
  std::vector<double> mu_;
  std::vector<std::array<double, 4>> entries_;
  std::vector<std::array<double, 2>> row_sums_;
};

}  // namespace tg::model

#endif  // TRILLIONG_MODEL_NOISE_H_
