#ifndef TRILLIONG_MODEL_SEED_MATRIX_H_
#define TRILLIONG_MODEL_SEED_MATRIX_H_

#include <array>
#include <cmath>
#include <string>

#include "util/common.h"

namespace tg::model {

/// The 2x2 seed probability matrix K = [a b; c d] of RMAT / SKG
/// (Figure 1(a)). Entries are the quadrant-selection probabilities
/// alpha, beta, gamma, delta; they must be non-negative and sum to 1.
class SeedMatrix {
 public:
  SeedMatrix(double a, double b, double c, double d) : k_{a, b, c, d} {
    TG_CHECK_MSG(a >= 0 && b >= 0 && c >= 0 && d >= 0,
                 "seed parameters must be non-negative");
    TG_CHECK_MSG(std::abs(a + b + c + d - 1.0) < 1e-9,
                 "seed parameters must sum to 1, got " << a + b + c + d);
  }

  /// The Graph500 standard parameters used throughout the paper's evaluation:
  /// K = [0.57, 0.19; 0.19, 0.05].
  static SeedMatrix Graph500() { return SeedMatrix(0.57, 0.19, 0.19, 0.05); }

  /// Erdős–Rényi: uniform quadrants (Section 8 notes ER == RMAT with 0.25s).
  static SeedMatrix ErdosRenyi() { return SeedMatrix(0.25, 0.25, 0.25, 0.25); }

  /// Builds a seed matrix whose *out*-degree distribution is Zipfian with the
  /// given log-log slope (Lemma 6: slope = log2(c+d) - log2(a+b)).
  /// `row_skew` splits each row between its two columns (fraction assigned to
  /// column 0); it controls the in-degree slope independently.
  static SeedMatrix FromZipfOutSlope(double slope, double row_skew = 0.75) {
    TG_CHECK_MSG(slope < 0, "Zipfian slope must be negative");
    TG_CHECK(row_skew > 0 && row_skew < 1);
    // (c+d)/(a+b) = 2^slope and (a+b) + (c+d) = 1.
    double top = 1.0 / (1.0 + std::exp2(slope));
    double bottom = 1.0 - top;
    return SeedMatrix(top * row_skew, top * (1.0 - row_skew),
                      bottom * row_skew, bottom * (1.0 - row_skew));
  }

  double a() const { return k_[0]; }
  double b() const { return k_[1]; }
  double c() const { return k_[2]; }
  double d() const { return k_[3]; }

  /// K_{r,c} with r,c in {0,1}: the probability parameter of the quadrant in
  /// row r, column c.
  double Entry(int row, int col) const { return k_[row * 2 + col]; }

  /// Row sum: a+b (row 0) or c+d (row 1). This is the per-bit factor of the
  /// source-marginal probability P_{u->} (Lemma 1).
  double RowSum(int row) const { return k_[row * 2] + k_[row * 2 + 1]; }

  /// Column sum: a+c (col 0) or b+d (col 1): per-bit factor of P_{->v}.
  double ColSum(int col) const { return k_[col] + k_[2 + col]; }

  /// sigma_{u[k]} of Lemma 3: K_{bit,1} / K_{bit,0}.
  double Sigma(int bit) const { return Entry(bit, 1) / Entry(bit, 0); }

  /// Theoretical Zipfian out-degree slope (Lemma 6 / Table 3):
  /// log2(c+d) - log2(a+b).
  double TheoreticalOutSlope() const {
    return std::log2(RowSum(1)) - std::log2(RowSum(0));
  }

  /// Theoretical Zipfian in-degree slope (Lemma 6 / Table 3):
  /// log2(b+d) - log2(a+c).
  double TheoreticalInSlope() const {
    return std::log2(ColSum(1)) - std::log2(ColSum(0));
  }

  /// Expected fraction of 1-bits in a generated destination ID (the quantity
  /// Lemma 5 estimates). Exact marginal: over the edge distribution each
  /// source bit is 1 with probability (c+d) and the conditional destination
  /// bit is 1 with probability b/(a+b) or d/(c+d), so
  ///   P(dest bit = 1) = (a+b) * b/(a+b) + (c+d) * d/(c+d) = b + d.
  /// For the Graph500 parameters this is 0.24 = 1/4.167 per bit. (The
  /// paper's Lemma 5 prints 1/4.917 for the same parameters; neither its
  /// closed form nor that constant matches its own fixed-point equation (10),
  /// whose solution is also 0.24 here — see EXPERIMENTS.md. The empirical
  /// tests validate b + d.)
  double ExpectedOneBitFraction() const { return b() + d(); }

  /// Transposed matrix; generating with it swaps the roles of sources and
  /// destinations (used by the AVS-I orientation of the ERV model).
  SeedMatrix Transposed() const { return SeedMatrix(a(), c(), b(), d()); }

  std::string ToString() const;

  friend bool operator==(const SeedMatrix& x, const SeedMatrix& y) {
    return x.k_ == y.k_;
  }

 private:
  std::array<double, 4> k_;
};

}  // namespace tg::model

#endif  // TRILLIONG_MODEL_SEED_MATRIX_H_
