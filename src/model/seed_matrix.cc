#include "model/seed_matrix.h"

#include <cstdio>

namespace tg::model {

std::string SeedMatrix::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.4g, %.4g; %.4g, %.4g]", a(), b(), c(),
                d());
  return buf;
}

}  // namespace tg::model
