#ifndef TRILLIONG_MODEL_SEED_MATRIX_N_H_
#define TRILLIONG_MODEL_SEED_MATRIX_N_H_

#include <cmath>
#include <vector>

#include "model/seed_matrix.h"
#include "util/common.h"

namespace tg::model {

/// General n x n seed probability matrix for SKG / FastKronecker
/// (Section 2.2: RMAT is the special case n = 2). Precomputes the flattened
/// cumulative distribution used by the recursive cell selection.
class SeedMatrixN {
 public:
  SeedMatrixN(int n, std::vector<double> entries)
      : n_(n), entries_(std::move(entries)) {
    TG_CHECK(n >= 2);
    TG_CHECK_MSG(entries_.size() == static_cast<std::size_t>(n) * n,
                 "need n*n entries");
    double total = 0;
    for (double e : entries_) {
      TG_CHECK_MSG(e >= 0, "seed entries must be non-negative");
      total += e;
    }
    TG_CHECK_MSG(std::abs(total - 1.0) < 1e-9, "seed entries must sum to 1");
    cumulative_.resize(entries_.size());
    double cum = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      cum += entries_[i];
      cumulative_[i] = cum;
    }
    cumulative_.back() = 1.0;
  }

  static SeedMatrixN FromSeedMatrix(const SeedMatrix& k) {
    return SeedMatrixN(2, {k.a(), k.b(), k.c(), k.d()});
  }

  /// A 3x3 example matrix (row-skewed), for exercising the n != 2 paths.
  static SeedMatrixN Example3x3() {
    return SeedMatrixN(3, {0.30, 0.12, 0.08,  //
                           0.12, 0.10, 0.05,  //
                           0.08, 0.05, 0.10});
  }

  int n() const { return n_; }
  double Entry(int row, int col) const { return entries_[row * n_ + col]; }

  double RowSum(int row) const {
    double s = 0;
    for (int c = 0; c < n_; ++c) s += Entry(row, c);
    return s;
  }

  /// Selects a cell from a uniform deviate in [0, 1): returns row * n + col.
  /// Binary search over the cumulative entries.
  int SelectCell(double x) const {
    int lo = 0, hi = static_cast<int>(cumulative_.size()) - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (cumulative_[mid] <= x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Number of recursion levels for |V| vertices (requires |V| = n^levels).
  int LevelsFor(VertexId num_vertices) const {
    int levels = 0;
    VertexId v = 1;
    while (v < num_vertices) {
      v *= n_;
      ++levels;
    }
    TG_CHECK_MSG(v == num_vertices,
                 "|V| must be a power of the seed dimension n=" << n_);
    return levels;
  }

 private:
  int n_;
  std::vector<double> entries_;
  std::vector<double> cumulative_;
};

}  // namespace tg::model

#endif  // TRILLIONG_MODEL_SEED_MATRIX_N_H_
