// storage/fs.h — minimal filesystem helpers for the writers that create
// files in caller-chosen locations (obs reports, trace exports). POSIX-only,
// like the rest of the storage layer.
#ifndef TRILLIONG_STORAGE_FS_H_
#define TRILLIONG_STORAGE_FS_H_

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <string>

#include "util/status.h"

namespace tg::storage {

/// `mkdir -p`: creates `dir` and every missing ancestor. Empty path and
/// already-existing directories are not errors; a path component that exists
/// as a regular file is.
inline Status MakeDirectories(const std::string& dir) {
  if (dir.empty()) return Status::Ok();
  std::string prefix;
  prefix.reserve(dir.size());
  std::size_t i = 0;
  while (i < dir.size()) {
    std::size_t slash = dir.find('/', i);
    if (slash == std::string::npos) slash = dir.size();
    prefix.assign(dir, 0, slash);
    i = slash + 1;
    if (prefix.empty()) continue;  // leading '/': root always exists
    if (::mkdir(prefix.c_str(), 0777) == 0 || errno == EEXIST) {
      // EEXIST may mean "exists as a file"; only a directory lets the next
      // component (or the final open) succeed.
      struct stat st;
      if (::stat(prefix.c_str(), &st) == 0 && !S_ISDIR(st.st_mode)) {
        return Status::IoError("not a directory: " + prefix);
      }
      continue;
    }
    return Status::IoError("cannot create directory: " + prefix);
  }
  return Status::Ok();
}

/// Creates the parent directory of `file_path` (and its ancestors) so a
/// subsequent open-for-write cannot fail on a missing directory.
inline Status EnsureParentDirectory(const std::string& file_path) {
  std::size_t slash = file_path.find_last_of('/');
  if (slash == std::string::npos) return Status::Ok();  // cwd-relative
  return MakeDirectories(file_path.substr(0, slash));
}

}  // namespace tg::storage

#endif  // TRILLIONG_STORAGE_FS_H_
