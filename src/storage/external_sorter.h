// storage/external_sorter.h — disk-backed K-way merge sort of POD records
// with optional duplicate elimination: the external-memory substrate behind
// the RMAT-disk and WES/p-disk baselines. Spills sorted runs to temp files
// and streams the merged (optionally deduplicated) sequence through a
// callback; reports runs written / bytes spilled / merge passes to tg::obs.
#ifndef TRILLIONG_STORAGE_EXTERNAL_SORTER_H_
#define TRILLIONG_STORAGE_EXTERNAL_SORTER_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/async_writer.h"
#include "storage/file_io.h"
#include "util/common.h"
#include "util/memory_budget.h"

namespace tg::storage {

/// Disk-backed merge sort of POD records with optional duplicate
/// elimination — the substrate behind RMAT-disk and WES/p-disk (Sections 3.2
/// and 7.3: "eliminates edge duplicates using the external sort").
///
/// Usage: Add() records (spills sorted runs of `buffer_items` records to
/// temp files), then Merge() streams the globally sorted sequence through a
/// callback. In-memory footprint is O(buffer_items); everything else lives
/// in the run files.
template <typename T, typename Less = std::less<T>>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<T>,
                "ExternalSorter requires trivially copyable records");

 public:
  struct Options {
    /// Directory for run files.
    std::string temp_dir = ".";
    /// Records buffered in memory before a run is spilled.
    std::size_t buffer_items = 1 << 20;
    /// Distinguishes concurrent sorters sharing a temp dir.
    std::string name = "extsort";
    /// Optional machine budget the in-memory run buffer is charged against
    /// (tag "storage.extsort.run"). Construction throws OomError when the
    /// buffer alone does not fit — the paper's disk baselines O.O.M exactly
    /// this way once the sort buffer outgrows a machine.
    MemoryBudget* budget = nullptr;
  };

  explicit ExternalSorter(Options options)
      : options_(std::move(options)),
        buffer_mem_(options_.budget, options_.buffer_items * sizeof(T),
                    "storage.extsort.run") {
    TG_CHECK(options_.buffer_items > 0);
    buffer_.reserve(options_.buffer_items);
  }

  ~ExternalSorter() {
    if (spill_writer_ != nullptr) spill_writer_->Close();  // best effort
    spill_writer_.reset();
    for (const std::string& path : run_paths_) RemoveFile(path);
  }

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  void Add(const T& item) {
    buffer_.push_back(item);
    ++num_added_;
    if (buffer_.size() >= options_.buffer_items) SpillRun();
  }

  std::uint64_t num_added() const { return num_added_; }
  std::uint64_t bytes_spilled() const { return bytes_spilled_; }
  std::size_t num_runs() const { return run_paths_.size(); }
  /// Bytes the in-memory run buffer occupies at capacity (what the budget
  /// was charged).
  std::uint64_t buffer_bytes() const { return buffer_mem_.bytes(); }

  /// Merges all runs (plus the in-memory tail) in sorted order. When `dedup`
  /// is true, equal consecutive records are delivered once. Returns the
  /// number of records delivered. The sorter is consumed: Add() must not be
  /// called afterwards.
  std::uint64_t Merge(bool dedup, const std::function<void(const T&)>& fn) {
    TG_SPAN("sort.merge");
    FinishPendingSpill();  // the last run may still be draining to disk
    obs::GetCounter("sort.merge_passes")->Increment();
    obs::GetCounter("sort.records_added")->Add(num_added_);
    std::sort(buffer_.begin(), buffer_.end(), Less());

    // Open one cursor per run file.
    struct Cursor {
      FileReader reader;
      T current;
      bool valid = false;

      bool Advance() {
        valid = reader.Read(&current, sizeof(T));
        return valid;
      }
    };
    std::vector<Cursor> cursors(run_paths_.size());
    for (std::size_t i = 0; i < run_paths_.size(); ++i) {
      TG_CHECK(cursors[i].reader.Open(run_paths_[i]).ok());
      cursors[i].Advance();
    }

    // K-way merge over run cursors and the in-memory buffer.
    Less less;
    auto cmp = [&less, &cursors, this](std::size_t a, std::size_t b) {
      const T& va = a < cursors.size() ? cursors[a].current : buffer_[mem_pos_];
      const T& vb = b < cursors.size() ? cursors[b].current : buffer_[mem_pos_];
      // std::priority_queue is a max-heap; invert.
      return less(vb, va);
    };
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        decltype(cmp)>
        heap(cmp);
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].valid) heap.push(i);
    }
    const std::size_t kMemSource = cursors.size();
    if (!buffer_.empty()) heap.push(kMemSource);

    std::uint64_t delivered = 0;
    T last{};
    bool has_last = false;
    while (!heap.empty()) {
      std::size_t src = heap.top();
      heap.pop();
      const T& value =
          src == kMemSource ? buffer_[mem_pos_] : cursors[src].current;
      if (!dedup || !has_last || less(last, value) || less(value, last)) {
        fn(value);
        ++delivered;
        last = value;
        has_last = true;
      }
      if (src == kMemSource) {
        if (++mem_pos_ < buffer_.size()) heap.push(kMemSource);
      } else if (cursors[src].Advance()) {
        heap.push(src);
      }
    }
    obs::GetCounter("sort.records_delivered")->Add(delivered);
    return delivered;
  }

 private:
  void SpillRun() {
    std::sort(buffer_.begin(), buffer_.end(), Less());
    std::string path = options_.temp_dir + "/" + options_.name + ".run" +
                       std::to_string(run_paths_.size());
    // The previous run's writer is closed only now: with the async backend
    // its blocks drained while this run was being built and sorted, so run
    // building overlaps spill I/O (arXiv 1210.0187's overlap discipline).
    FinishPendingSpill();
    spill_writer_ = MakeFileWriter();
    TG_CHECK_MSG(spill_writer_->Open(path).ok(),
                 "cannot create run file " << path);
    spill_writer_->Append(buffer_.data(), buffer_.size() * sizeof(T));
    bytes_spilled_ += buffer_.size() * sizeof(T);
    obs::GetCounter("sort.runs_spilled")->Increment();
    obs::GetCounter("sort.bytes_spilled")->Add(buffer_.size() * sizeof(T));
    run_paths_.push_back(std::move(path));
    buffer_.clear();
  }

  void FinishPendingSpill() {
    if (spill_writer_ == nullptr) return;
    TG_CHECK_MSG(spill_writer_->Close().ok(),
                 "spill failed for " << spill_writer_->path());
    spill_writer_.reset();
  }

  Options options_;
  ScopedAllocation buffer_mem_;
  std::vector<T> buffer_;
  std::size_t mem_pos_ = 0;
  std::vector<std::string> run_paths_;
  std::unique_ptr<FileWriterBase> spill_writer_;
  std::uint64_t num_added_ = 0;
  std::uint64_t bytes_spilled_ = 0;
};

}  // namespace tg::storage

#endif  // TRILLIONG_STORAGE_EXTERNAL_SORTER_H_
