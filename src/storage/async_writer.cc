#include "storage/async_writer.h"

#include <fcntl.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"
#include "prof/profiler.h"
#include "storage/uring.h"

namespace tg::storage {

namespace {

obs::Counter* StallCounter() {
  static obs::Counter* const counter = obs::GetCounter("io.writer_stall_ms");
  return counter;
}

obs::Gauge* InflightGauge() {
  static obs::Gauge* const gauge = obs::GetGauge("io.inflight_bytes");
  return gauge;
}

obs::Gauge* UringActiveGauge() {
  static obs::Gauge* const gauge = obs::GetGauge("io.uring_active");
  return gauge;
}

}  // namespace

Status ParseIoSpec(const std::string& spec, IoConfig* config) {
  IoConfig parsed;
  if (spec == "sync") {
    parsed.mode = IoMode::kSync;
  } else if (spec == "async" || spec == "async,uring") {
    parsed.mode = IoMode::kAsync;
    parsed.use_uring = true;
  } else if (spec == "async,nouring") {
    parsed.mode = IoMode::kAsync;
    parsed.use_uring = false;
  } else {
    return Status::InvalidArgument(
        "unknown I/O spec \"" + spec +
        "\" (expected sync | async | async,uring | async,nouring)");
  }
  *config = parsed;
  return Status::Ok();
}

std::string IoSpecString(const IoConfig& config) {
  if (config.mode == IoMode::kSync) return "sync";
  return config.use_uring ? "async,uring" : "async,nouring";
}

IoConfig& GlobalIoConfig() {
  static IoConfig config = [] {
    IoConfig c;
    const char* env = std::getenv("TG_IO");
    if (env != nullptr && env[0] != '\0') {
      IoConfig parsed;
      const Status status = ParseIoSpec(env, &parsed);
      if (status.ok()) {
        c = parsed;
      } else {
        std::fprintf(stderr, "warning: TG_IO: %s\n",
                     status.ToString().c_str());
      }
    }
    return c;
  }();
  return config;
}

std::unique_ptr<FileWriterBase> MakeFileWriter(std::size_t buffer_bytes,
                                               const IoConfig& config) {
  if (config.mode == IoMode::kSync) {
    return std::make_unique<FileWriter>(buffer_bytes);
  }
  return std::make_unique<AsyncFileWriter>(
      buffer_bytes, config.use_uring && UringCompiledIn());
}

std::unique_ptr<FileWriterBase> MakeFileWriter(std::size_t buffer_bytes) {
  return MakeFileWriter(buffer_bytes, GlobalIoConfig());
}

AsyncFileWriter::~AsyncFileWriter() { Close(); }

Status AsyncFileWriter::BackendOpen(const std::string& path, bool resume,
                                    std::uint64_t offset) {
  const int flags = resume ? O_WRONLY : (O_WRONLY | O_CREAT | O_TRUNC);
  fd_ = ::open(path.c_str(), flags, 0666);
  if (fd_ < 0) {
    return Status::IoError((resume ? "cannot open for resume: "
                                   : "cannot open for write: ") +
                           path);
  }
  if (resume && ::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::IoError("cannot truncate for resume: " + path);
  }
  next_offset_ = offset;
  stall_carry_us_ = 0;
  stop_ = false;
  writer_thread_ = std::thread(&AsyncFileWriter::WriterLoop, this);
  return Status::Ok();
}

std::vector<char> AsyncFileWriter::TakeSpareBuffer() {
  if (spare_buffers_.empty()) return {};
  std::vector<char> buffer = std::move(spare_buffers_.back());
  spare_buffers_.pop_back();
  buffer.clear();
  return buffer;
}

void AsyncFileWriter::EnqueueBlock(std::vector<char>&& data) {
  const std::size_t n = data.size();
  std::unique_lock<std::mutex> lock(mutex_);
  if (pending_blocks_ >= kQueueDepth) {
    const auto start = std::chrono::steady_clock::now();
    producer_cv_.wait(lock, [this] {
      return pending_blocks_ < kQueueDepth || backend_failed();
    });
    const std::uint64_t waited_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    stall_carry_us_ += waited_us;
    // Off-CPU attribution: the producer sat blocked on a full write queue.
    prof::RecordStall("writer", static_cast<double>(waited_us) * 1e-6);
    if (stall_carry_us_ >= 1000) {
      StallCounter()->Add(stall_carry_us_ / 1000);
      stall_carry_us_ %= 1000;
    }
  }
  if (backend_failed()) return;  // sticky error: drop the block
  Block block;
  block.data = std::move(data);
  block.offset = next_offset_;
  next_offset_ += n;
  queue_.push_back(std::move(block));
  ++pending_blocks_;
  InflightGauge()->Add(static_cast<double>(n));
  writer_cv_.notify_one();
}

void AsyncFileWriter::BackendWrite(std::vector<char>& buffer) {
  std::vector<char> data;
  data.swap(buffer);
  EnqueueBlock(std::move(data));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffer = TakeSpareBuffer();
  }
  if (buffer.capacity() < buffer_capacity()) buffer.reserve(buffer_capacity());
}

void AsyncFileWriter::BackendWriteDirect(const char* data, std::size_t n) {
  const std::size_t chunk = buffer_capacity();
  while (n > 0 && !backend_failed()) {
    const std::size_t m = std::min(n, chunk);
    std::vector<char> block;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      block = TakeSpareBuffer();
    }
    block.assign(data, data + m);
    EnqueueBlock(std::move(block));
    data += m;
    n -= m;
  }
}

void AsyncFileWriter::BackendBarrier() {
  std::unique_lock<std::mutex> lock(mutex_);
  producer_cv_.wait(lock, [this] { return pending_blocks_ == 0; });
}

void AsyncFileWriter::BackendRewriteAt(std::uint64_t offset, const char* data,
                                       std::size_t n) {
  // Only reached between BackendBarrier() and the next append: the writer
  // thread is idle, so a producer-side pwrite cannot interleave with it.
  if (backend_failed() || fd_ < 0) return;
  const IoFailureHook& hook = IoFailureHookRef();
  if (hook && hook(path())) {
    RecordBackendError(Status::IoError("injected I/O failure: " + path()));
    return;
  }
  while (n > 0) {
    const ssize_t wrote = ::pwrite(fd_, data, n, static_cast<off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      RecordBackendError(Status::IoError("write failed: " + path()));
      return;
    }
    if (wrote == 0) {
      RecordBackendError(Status::IoError("write failed: " + path()));
      return;
    }
    data += wrote;
    offset += static_cast<std::uint64_t>(wrote);
    n -= static_cast<std::size_t>(wrote);
  }
}

void AsyncFileWriter::BackendClose() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  writer_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  queue_.clear();
  spare_buffers_.clear();
  pending_blocks_ = 0;
  if (fd_ >= 0) {
    if (::close(fd_) != 0 && !backend_failed()) {
      RecordBackendError(Status::IoError("close failed: " + path()));
    }
    fd_ = -1;
  }
}

bool AsyncFileWriter::WriteBlockSync(const Block& block) {
  if (backend_failed()) return false;
  const IoFailureHook& hook = IoFailureHookRef();
  if (hook && hook(path())) {
    RecordBackendError(Status::IoError("injected I/O failure: " + path()));
    return false;
  }
  return PwriteRange(block.data.data(), block.data.size(), block.offset);
}

void AsyncFileWriter::RetireBlock(Block& block) {
  InflightGauge()->Add(-static_cast<double>(block.data.size()));
  block.data.clear();
  if (spare_buffers_.size() < kQueueDepth) {
    spare_buffers_.push_back(std::move(block.data));
  }
  block.data = {};
  --pending_blocks_;
  producer_cv_.notify_all();
}

void AsyncFileWriter::WriterLoop() {
  prof::EnsureThreadRegistered();
  std::unique_lock<std::mutex> lock(mutex_);
  if (use_uring_) {
    WriterLoopUring(lock);
  } else {
    WriterLoopPwrite(lock);
  }
}

void AsyncFileWriter::WriterLoopPwrite(std::unique_lock<std::mutex>& lock) {
  for (;;) {
    writer_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Block block = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    WriteBlockSync(block);
    lock.lock();
    RetireBlock(block);
  }
}

void AsyncFileWriter::WriterLoopUring(std::unique_lock<std::mutex>& lock) {
  UringQueue ring;
  lock.unlock();
  const bool ring_ready = ring.Init(kQueueDepth);
  lock.lock();
  if (!ring_ready) {
    WriterLoopPwrite(lock);
    return;
  }
  UringActiveGauge()->Set(1.0);

  std::vector<Block> slots(kQueueDepth);
  std::vector<bool> slot_used(kQueueDepth, false);
  std::size_t used_count = 0;

  for (;;) {
    if (queue_.empty() && used_count == 0) {
      if (stop_) return;
      writer_cv_.wait(lock);
      continue;
    }

    // Move queued blocks into free slots and submit them; a block the kernel
    // refuses (ring pressure, unsupported SQE) is written synchronously so
    // ordering and the error contract never depend on uring health.
    while (!queue_.empty() && used_count < kQueueDepth) {
      std::size_t s = 0;
      while (slot_used[s]) ++s;
      slots[s] = std::move(queue_.front());
      queue_.pop_front();
      slot_used[s] = true;
      ++used_count;
      Block& block = slots[s];
      lock.unlock();
      bool submitted = false;
      if (!backend_failed()) {
        const IoFailureHook& hook = IoFailureHookRef();
        if (hook && hook(path())) {
          RecordBackendError(
              Status::IoError("injected I/O failure: " + path()));
        } else if (ring.SubmitWrite(fd_, block.data.data(), block.data.size(),
                                    block.offset, s)) {
          submitted = true;
        } else {
          PwriteRange(block.data.data(), block.data.size(), block.offset);
        }
      }
      lock.lock();
      if (!submitted) {
        RetireBlock(slots[s]);
        slot_used[s] = false;
        --used_count;
      }
    }

    if (ring.inflight() == 0) continue;

    lock.unlock();
    UringCompletion completions[kQueueDepth];
    const int reaped =
        ring.Wait(completions, static_cast<int>(kQueueDepth));
    if (reaped < 0) {
      // The ring itself died (io_uring_enter failure). Completions for the
      // in-flight slots will never arrive; fail the writer and fall back to
      // pwrite for whatever is still queued.
      RecordBackendError(Status::IoError("write failed: " + path()));
      lock.lock();
      for (std::size_t s = 0; s < kQueueDepth; ++s) {
        if (!slot_used[s]) continue;
        RetireBlock(slots[s]);
        slot_used[s] = false;
        --used_count;
      }
      ring.Shutdown();
      WriterLoopPwrite(lock);
      return;
    }
    for (int i = 0; i < reaped; ++i) {
      const std::size_t s = static_cast<std::size_t>(completions[i].user_data);
      Block& block = slots[s];
      const std::int64_t result = completions[i].result;
      if (result < 0) {
        // Per-op failure (e.g. EINVAL from a kernel without IORING_OP_WRITE
        // at this offset shape): retry the whole block synchronously.
        if (!backend_failed()) {
          PwriteRange(block.data.data(), block.data.size(), block.offset);
        }
      } else if (static_cast<std::size_t>(result) < block.data.size()) {
        PwriteRange(block.data.data() + result, block.data.size() - result,
                    block.offset + static_cast<std::uint64_t>(result));
      }
      completions[i].user_data = s;  // slot retired below, under the lock
    }
    lock.lock();
    for (int i = 0; i < reaped; ++i) {
      const std::size_t s = static_cast<std::size_t>(completions[i].user_data);
      RetireBlock(slots[s]);
      slot_used[s] = false;
      --used_count;
    }
  }
}

bool AsyncFileWriter::PwriteRange(const char* data, std::size_t n,
                                  std::uint64_t offset) {
  if (backend_failed()) return false;
  while (n > 0) {
    const ssize_t wrote = ::pwrite(fd_, data, n, static_cast<off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      RecordBackendError(Status::IoError("write failed: " + path()));
      return false;
    }
    if (wrote == 0) {
      RecordBackendError(Status::IoError("write failed: " + path()));
      return false;
    }
    data += wrote;
    offset += static_cast<std::uint64_t>(wrote);
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace tg::storage
