// storage/temp_dir.h — RAII scratch directory under the system temp root,
// recursively deleted on destruction. Used by the external sorter's spill
// runs and by tests that need throwaway graph files.
#ifndef TRILLIONG_STORAGE_TEMP_DIR_H_
#define TRILLIONG_STORAGE_TEMP_DIR_H_

#include <filesystem>
#include <random>
#include <string>

#include "util/common.h"

namespace tg::storage {

/// RAII temporary directory (for run files, generated graph shards in tests
/// and benches). Created under the system temp path, removed recursively on
/// destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "trilliong") {
    std::random_device rd;
    for (int attempt = 0; attempt < 100; ++attempt) {
      std::filesystem::path candidate =
          std::filesystem::temp_directory_path() /
          (prefix + "." + std::to_string(rd()));
      std::error_code ec;
      if (std::filesystem::create_directory(candidate, ec)) {
        path_ = candidate.string();
        return;
      }
    }
    TG_CHECK_MSG(false, "cannot create temp directory with prefix " << prefix);
  }

  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  /// Path of a file inside the directory.
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace tg::storage

#endif  // TRILLIONG_STORAGE_TEMP_DIR_H_
