// storage/uring.h — minimal raw-syscall io_uring submission queue for the
// async writer. No liburing dependency: the ring is set up with
// io_uring_setup(2)/io_uring_enter(2) directly and the SQ/CQ rings are
// mmap'd by hand (docs/PERFORMANCE.md, "I/O path").
//
// Compiled out (every call degrades to "unsupported") when the build lacks
// <linux/io_uring.h> or was configured with -DTG_IO_URING=OFF; probed at
// runtime so old kernels fall back to pwrite transparently.
#ifndef TRILLIONG_STORAGE_URING_H_
#define TRILLIONG_STORAGE_URING_H_

#include <cstddef>
#include <cstdint>

namespace tg::storage {

/// True when this build carries the io_uring submission path at all
/// (TG_IO_URING=ON and the kernel header was present at compile time).
bool UringCompiledIn();

/// True when the running kernel accepts io_uring_setup(2). Probed once and
/// cached; false on ENOSYS (kernel too old / seccomp-blocked) or when the
/// build compiled the path out.
bool UringAvailable();

/// Completion record handed back by UringQueue::Wait.
struct UringCompletion {
  std::uint64_t user_data = 0;
  std::int64_t result = 0;  // bytes written, or -errno
};

/// Single-threaded io_uring wrapper issuing positional IORING_OP_WRITE
/// submissions. Owned and driven entirely by the async writer thread; not
/// thread-safe. All methods are safe to call when Init failed (they report
/// no capacity / no completions).
class UringQueue {
 public:
  UringQueue() = default;
  ~UringQueue();

  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Sets up a ring with at least `entries` submission slots. Returns false
  /// when io_uring is unavailable — the caller falls back to pwrite.
  bool Init(unsigned entries);

  bool ready() const { return ring_fd_ >= 0; }
  unsigned inflight() const { return inflight_; }
  bool HasSpace() const;

  /// Queues one positional write and submits it to the kernel. Returns false
  /// without consuming a slot when the ring is full, not ready, or the
  /// kernel rejects the submission (caller should pwrite instead). `data`
  /// must stay alive until the matching completion is reaped.
  bool SubmitWrite(int fd, const void* data, std::size_t len,
                   std::uint64_t offset, std::uint64_t user_data);

  /// Reaps up to `max` completions, blocking until at least one arrives
  /// (there must be in-flight submissions). Returns the number reaped, or -1
  /// on an unrecoverable ring error.
  int Wait(UringCompletion* out, int max);

  void Shutdown();

 private:
  int ring_fd_ = -1;
  unsigned inflight_ = 0;

  // SQ ring.
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_entries_ = 0;
  void* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;

  // CQ ring (may alias sq_ring_ under IORING_FEAT_SINGLE_MMAP).
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  void* cqes_ = nullptr;
};

}  // namespace tg::storage

#endif  // TRILLIONG_STORAGE_URING_H_
