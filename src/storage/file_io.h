// storage/file_io.h — buffered sequential FileReader/FileWriter over stdio,
// returning tg::Status instead of throwing. The byte transport beneath every
// format writer (TSV/ADJ6/CSR6), the external sorter's run files, and the
// obs::RunReport JSON output.
#ifndef TRILLIONG_STORAGE_FILE_IO_H_
#define TRILLIONG_STORAGE_FILE_IO_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace tg::storage {

/// Process-wide write-failure hook, consulted on every raw write. Returns
/// true to make the write fail with a sticky IoError — this is how
/// fault::FaultInjector simulates a dying disk without touching the real
/// filesystem. Installed before worker threads start and cleared after they
/// join; the empty default costs one branch per flushed buffer.
using IoFailureHook = std::function<bool(const std::string& path)>;
inline IoFailureHook& IoFailureHookRef() {
  static IoFailureHook hook;
  return hook;
}

/// Buffered sequential file writer. Errors are sticky: the first failure is
/// recorded and reported from Close()/status(); subsequent writes are
/// dropped. Not thread-safe.
class FileWriter {
 public:
  explicit FileWriter(std::size_t buffer_bytes = 1 << 20)
      : buffer_bytes_(buffer_bytes) {}

  ~FileWriter() { Close(); }

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  Status Open(const std::string& path) {
    Close();
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) {
      status_ = Status::IoError("cannot open for write: " + path);
      return status_;
    }
    path_ = path;
    status_ = Status::Ok();
    buffer_.reserve(buffer_bytes_);
    bytes_written_ = 0;
    return status_;
  }

  /// Reopens an existing file for resumed writing: truncates it to `offset`
  /// (discarding any bytes past the last durable commit) and continues
  /// appending from there. bytes_written() resumes at `offset`.
  Status OpenForResume(const std::string& path, std::uint64_t offset) {
    Close();
    file_ = std::fopen(path.c_str(), "r+b");
    if (file_ == nullptr) {
      status_ = Status::IoError("cannot open for resume: " + path);
      return status_;
    }
    if (::ftruncate(fileno(file_), static_cast<off_t>(offset)) != 0 ||
        std::fseek(file_, 0, SEEK_END) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      status_ = Status::IoError("cannot truncate for resume: " + path);
      return status_;
    }
    path_ = path;
    status_ = Status::Ok();
    buffer_.reserve(buffer_bytes_);
    buffer_.clear();
    bytes_written_ = offset;
    return status_;
  }

  bool is_open() const { return file_ != nullptr; }
  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }
  std::uint64_t bytes_written() const { return bytes_written_ + buffer_.size(); }

  void Append(const void* data, std::size_t n) {
    if (!status_.ok() || file_ == nullptr) return;
    const char* p = static_cast<const char*>(data);
    if (buffer_.size() + n > buffer_bytes_) {
      Flush();
      if (n >= buffer_bytes_) {
        WriteRaw(p, n);
        return;
      }
    }
    buffer_.insert(buffer_.end(), p, p + n);
  }

  /// Appends a 48-bit little-endian integer (the "6-byte representation"
  /// required by ADJ6 / CSR6; Section 5).
  void Append48(std::uint64_t value) {
    TG_CHECK_MSG(value < (std::uint64_t{1} << 48),
                 "value does not fit in 6 bytes: " << value);
    unsigned char bytes[6];
    for (int i = 0; i < 6; ++i) bytes[i] = (value >> (8 * i)) & 0xFF;
    Append(bytes, 6);
  }

  void Append64(std::uint64_t value) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = (value >> (8 * i)) & 0xFF;
    Append(bytes, 8);
  }

  /// Pushes all buffered bytes into the kernel (fwrite + fflush). After an
  /// Ok return, the bytes survive a process kill (not an OS crash — that
  /// would need fsync, which the simulated cluster does not model). This is
  /// the durability point of the chunk-commit journal (fault/journal.h).
  Status FlushToOs() {
    if (file_ == nullptr) return status_;
    Flush();
    if (status_.ok() && std::fflush(file_) != 0) {
      status_ = Status::IoError("flush failed: " + path_);
    }
    return status_;
  }

  Status Close() {
    if (file_ != nullptr) {
      Flush();
      if (std::fclose(file_) != 0 && status_.ok()) {
        status_ = Status::IoError("close failed: " + path_);
      }
      file_ = nullptr;
    }
    return status_;
  }

 private:
  void Flush() {
    if (!buffer_.empty()) {
      WriteRaw(buffer_.data(), buffer_.size());
      buffer_.clear();
    }
  }

  void WriteRaw(const char* p, std::size_t n) {
    if (!status_.ok()) return;
    const IoFailureHook& hook = IoFailureHookRef();
    if (hook && hook(path_)) {
      status_ = Status::IoError("injected I/O failure: " + path_);
      return;
    }
    if (std::fwrite(p, 1, n, file_) != n) {
      status_ = Status::IoError("write failed: " + path_);
    } else {
      bytes_written_ += n;
    }
  }

  std::FILE* file_ = nullptr;
  std::string path_;
  Status status_;
  std::size_t buffer_bytes_;
  std::vector<char> buffer_;
  std::uint64_t bytes_written_ = 0;
};

/// Buffered sequential file reader.
class FileReader {
 public:
  FileReader() = default;
  ~FileReader() { Close(); }

  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  Status Open(const std::string& path) {
    Close();
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) {
      return Status::IoError("cannot open for read: " + path);
    }
    path_ = path;
    return Status::Ok();
  }

  bool is_open() const { return file_ != nullptr; }

  /// Reads exactly n bytes; returns false on clean EOF at offset 0 of the
  /// read, aborts (corruption) on a short read mid-record.
  bool Read(void* out, std::size_t n) {
    std::size_t got = std::fread(out, 1, n, file_);
    if (got == 0) return false;
    TG_CHECK_MSG(got == n, "short read in " << path_);
    return true;
  }

  bool Read48(std::uint64_t* out) {
    unsigned char bytes[6];
    if (!Read(bytes, 6)) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 6; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
    *out = v;
    return true;
  }

  bool Read64(std::uint64_t* out) {
    unsigned char bytes[8];
    if (!Read(bytes, 8)) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
    *out = v;
    return true;
  }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Removes a file if it exists (best effort; used for temp cleanup).
inline void RemoveFile(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace tg::storage

#endif  // TRILLIONG_STORAGE_FILE_IO_H_
