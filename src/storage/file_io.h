// storage/file_io.h — buffered sequential file transport beneath every format
// writer (TSV/ADJ6/CSR6), the external sorter's run files, and the
// obs::RunReport JSON output. Returns tg::Status instead of throwing.
//
// FileWriterBase owns the producer-side buffering and the error/durability
// contracts; concrete backends plug in at flush granularity:
//
//   FileWriter       synchronous stdio backend (this header)
//   AsyncFileWriter  double-buffered writer thread, io_uring-capable
//                    (storage/async_writer.h)
//
// Three contracts every backend must preserve (fault_test.cc pins them):
//   1. Errors are sticky: the first failure freezes status()/bytes_written();
//      later appends are dropped.
//   2. IoFailureHookRef() is consulted before every raw write, on whatever
//      thread performs it; the injected error surfaces on the next
//      producer-side status()/Append/FlushToOs call.
//   3. FlushToOs() is the durability barrier of the chunk-commit journal:
//      after an Ok return every appended byte survives a process kill.
#ifndef TRILLIONG_STORAGE_FILE_IO_H_
#define TRILLIONG_STORAGE_FILE_IO_H_

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/common.h"
#include "util/status.h"

namespace tg::storage {

namespace internal {
/// One buffer handoff from producer to backend (mode-independent, so the
/// io.* counters compare exactly between --io=sync and --io=async runs).
/// Registry pointers are stable for the process lifetime; cache them once.
inline void NoteIoHandoff(std::size_t bytes) {
  static obs::Counter* const bytes_written =
      obs::GetCounter("io.bytes_written");
  static obs::Counter* const flushes = obs::GetCounter("io.flushes");
  bytes_written->Add(bytes);
  flushes->Increment();
}
}  // namespace internal

/// Process-wide write-failure hook, consulted on every raw write. Returns
/// true to make the write fail with a sticky IoError — this is how
/// fault::FaultInjector simulates a dying disk without touching the real
/// filesystem. Installed before worker threads start and cleared after they
/// join; the empty default costs one branch per flushed buffer. With the
/// async backend the hook fires on the writer thread.
using IoFailureHook = std::function<bool(const std::string& path)>;
inline IoFailureHook& IoFailureHookRef() {
  static IoFailureHook hook;
  return hook;
}

/// Buffered sequential file writer interface. Errors are sticky: the first
/// failure is recorded and reported from Close()/status(); subsequent writes
/// are dropped. Not thread-safe on the producer side; backends may move the
/// actual write to another thread, reporting failures through
/// RecordBackendError().
class FileWriterBase {
 public:
  explicit FileWriterBase(std::size_t buffer_bytes = 1 << 20)
      : buffer_bytes_(buffer_bytes == 0 ? 1 : buffer_bytes) {}

  // Concrete classes call Close() from their own destructor — the backend
  // virtuals are gone by the time this base destructor runs.
  virtual ~FileWriterBase() = default;

  FileWriterBase(const FileWriterBase&) = delete;
  FileWriterBase& operator=(const FileWriterBase&) = delete;

  Status Open(const std::string& path) { return OpenInternal(path, false, 0); }

  /// Reopens an existing file for resumed writing: truncates it to `offset`
  /// (discarding any bytes past the last durable commit) and continues
  /// appending from there. bytes_written() resumes at `offset`.
  Status OpenForResume(const std::string& path, std::uint64_t offset) {
    return OpenInternal(path, true, offset);
  }

  bool is_open() const { return open_; }
  const Status& status() const {
    AbsorbBackendError();
    return status_;
  }
  const std::string& path() const { return path_; }
  std::uint64_t bytes_written() const { return bytes_written_ + buffer_.size(); }

  void Append(const void* data, std::size_t n) {
    if (!open_ || !status().ok()) return;
    const char* p = static_cast<const char*>(data);
    if (buffer_.size() + n > buffer_bytes_) {
      FlushProducerBuffer();
      if (n >= buffer_bytes_) {
        bytes_written_ += n;
        internal::NoteIoHandoff(n);
        BackendWriteDirect(p, n);
        return;
      }
    }
    buffer_.insert(buffer_.end(), p, p + n);
  }

  /// Hot-path variant of Append for callers that format records in place:
  /// returns a pointer to `n` writable staging bytes (flushing first if the
  /// buffer is short on room), or nullptr when the writer is closed or in
  /// its sticky error state. The caller fills at most `n` bytes and then
  /// calls CommitReserved(n, used) — until then bytes_written() already
  /// counts the full reservation, so no other writer call may intervene.
  char* Reserve(std::size_t n) {
    if (!open_ || !status().ok()) return nullptr;
    TG_DCHECK(n <= buffer_bytes_);
    if (buffer_.size() + n > buffer_bytes_) {
      FlushProducerBuffer();
      if (!status().ok()) return nullptr;
    }
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + n);
    return buffer_.data() + old_size;
  }

  /// Trims a Reserve(n) down to the `used` bytes actually written.
  void CommitReserved(std::size_t reserved, std::size_t used) {
    TG_DCHECK(used <= reserved);
    TG_DCHECK(buffer_.size() >= reserved);
    buffer_.resize(buffer_.size() - (reserved - used));
  }

  /// Appends a 48-bit little-endian integer (the "6-byte representation"
  /// required by ADJ6 / CSR6; Section 5). Range validation is the format
  /// writer's job, once per scope — this inner-loop check compiles out of
  /// release builds.
  void Append48(std::uint64_t value) {
    TG_DCHECK(value < (std::uint64_t{1} << 48));
    unsigned char bytes[6];
    for (int i = 0; i < 6; ++i) bytes[i] = (value >> (8 * i)) & 0xFF;
    Append(bytes, 6);
  }

  void Append64(std::uint64_t value) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = (value >> (8 * i)) & 0xFF;
    Append(bytes, 8);
  }

  /// Pushes all appended bytes into the kernel. After an Ok return, the bytes
  /// survive a process kill (not an OS crash — that would need fsync, which
  /// the simulated cluster does not model). This is the durability point of
  /// the chunk-commit journal (fault/journal.h): the async backend drains its
  /// in-flight queue before returning.
  Status FlushToOs() {
    if (!open_) return status();
    if (status().ok()) FlushProducerBuffer();
    BackendBarrier();
    return status();
  }

  /// Rewrites `n` bytes in place at absolute `offset` (must lie within bytes
  /// already appended). Used by Csr6Writer to finalize its header without a
  /// second pass over the file. Implies a FlushToOs() barrier; does not
  /// advance bytes_written().
  Status RewriteAt(std::uint64_t offset, const void* data, std::size_t n) {
    if (!open_) return status();
    if (status().ok()) FlushProducerBuffer();
    BackendBarrier();
    if (status().ok()) {
      TG_CHECK_MSG(offset + n <= bytes_written_,
                   "RewriteAt past end of " << path_);
      BackendRewriteAt(offset, static_cast<const char*>(data), n);
    }
    return status();
  }

  Status Close() {
    if (open_) {
      if (status().ok()) {
        FlushProducerBuffer();
      } else {
        buffer_.clear();
      }
      BackendClose();
      open_ = false;
    }
    return status();
  }

 protected:
  /// Opens the backing file. `resume` selects append-at-offset semantics
  /// (open existing + truncate to `offset`).
  virtual Status BackendOpen(const std::string& path, bool resume,
                             std::uint64_t offset) = 0;

  /// Consumes the full producer buffer. Must leave `buffer` empty (capacity
  /// preserved or replaced with a recycled one); may hand the storage off to
  /// another thread. Dropped silently after a backend error.
  virtual void BackendWrite(std::vector<char>& buffer) = 0;

  /// Writes a large run that bypasses the producer buffer (which is empty at
  /// this point).
  virtual void BackendWriteDirect(const char* data, std::size_t n) = 0;

  /// Blocks until every byte handed to the backend reached the kernel.
  virtual void BackendBarrier() = 0;

  /// Positional overwrite; only called between BackendBarrier() and the next
  /// append, so the backend has no in-flight sequential writes.
  virtual void BackendRewriteAt(std::uint64_t offset, const char* data,
                                std::size_t n) = 0;

  /// Releases the backing file (joins threads, closes descriptors). Buffers
  /// were flushed or discarded by Close().
  virtual void BackendClose() = 0;

  /// Records a backend failure from any thread; first error wins. The
  /// producer observes it on its next status() call.
  void RecordBackendError(const Status& error) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!backend_failed_.load(std::memory_order_relaxed)) {
      backend_error_ = error;
      backend_failed_.store(true, std::memory_order_release);
    }
  }

  /// Cheap cross-thread check, usable by backends to drop work early after a
  /// failure.
  bool backend_failed() const {
    return backend_failed_.load(std::memory_order_acquire);
  }

  std::size_t buffer_capacity() const { return buffer_bytes_; }

 private:
  Status OpenInternal(const std::string& path, bool resume,
                      std::uint64_t offset) {
    Close();
    // A writer whose previous Open() failed can still hold buffered bytes —
    // Close() has no backing file to flush them into. Never leak them into
    // the next file.
    buffer_.clear();
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      backend_error_ = Status::Ok();
      backend_failed_.store(false, std::memory_order_release);
    }
    path_ = path;
    status_ = BackendOpen(path, resume, offset);
    open_ = status_.ok();
    if (!open_) return status_;
    buffer_.reserve(buffer_bytes_);
    bytes_written_ = offset;
    return status_;
  }

  void FlushProducerBuffer() {
    if (buffer_.empty()) return;
    bytes_written_ += buffer_.size();
    internal::NoteIoHandoff(buffer_.size());
    BackendWrite(buffer_);
    TG_DCHECK(buffer_.empty());
  }

  // Pulls a backend-thread failure into the producer-visible status. The
  // fast path is one relaxed atomic load; `status_` is mutable so that
  // status() keeps returning a stable reference.
  void AbsorbBackendError() const {
    if (!status_.ok()) return;
    if (!backend_failed_.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (status_.ok()) status_ = backend_error_;
  }

  std::string path_;
  mutable Status status_;
  bool open_ = false;
  std::size_t buffer_bytes_;
  std::vector<char> buffer_;
  std::uint64_t bytes_written_ = 0;

  mutable std::mutex error_mutex_;
  Status backend_error_;
  std::atomic<bool> backend_failed_{false};
};

/// Synchronous stdio backend — the original FileWriter. Still the right
/// choice for small metadata files (RunReport JSON, trace export) and the
/// default when TG_IO=sync.
class FileWriter final : public FileWriterBase {
 public:
  explicit FileWriter(std::size_t buffer_bytes = 1 << 20)
      : FileWriterBase(buffer_bytes) {}

  ~FileWriter() override { Close(); }

 protected:
  Status BackendOpen(const std::string& path, bool resume,
                     std::uint64_t offset) override {
    if (!resume) {
      file_ = std::fopen(path.c_str(), "wb");
      if (file_ == nullptr) {
        return Status::IoError("cannot open for write: " + path);
      }
      return Status::Ok();
    }
    file_ = std::fopen(path.c_str(), "r+b");
    if (file_ == nullptr) {
      return Status::IoError("cannot open for resume: " + path);
    }
    if (::ftruncate(fileno(file_), static_cast<off_t>(offset)) != 0 ||
        std::fseek(file_, 0, SEEK_END) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::IoError("cannot truncate for resume: " + path);
    }
    return Status::Ok();
  }

  void BackendWrite(std::vector<char>& buffer) override {
    WriteRaw(buffer.data(), buffer.size());
    buffer.clear();
  }

  void BackendWriteDirect(const char* data, std::size_t n) override {
    WriteRaw(data, n);
  }

  void BackendBarrier() override {
    if (backend_failed() || file_ == nullptr) return;
    if (std::fflush(file_) != 0) {
      RecordBackendError(Status::IoError("flush failed: " + path()));
    }
  }

  void BackendRewriteAt(std::uint64_t offset, const char* data,
                        std::size_t n) override {
    if (backend_failed() || file_ == nullptr) return;
    const IoFailureHook& hook = IoFailureHookRef();
    if (hook && hook(path())) {
      RecordBackendError(Status::IoError("injected I/O failure: " + path()));
      return;
    }
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fwrite(data, 1, n, file_) != n ||
        std::fflush(file_) != 0 ||
        std::fseek(file_, 0, SEEK_END) != 0) {
      RecordBackendError(Status::IoError("write failed: " + path()));
    }
  }

  void BackendClose() override {
    if (file_ == nullptr) return;
    if (std::fclose(file_) != 0 && !backend_failed()) {
      RecordBackendError(Status::IoError("close failed: " + path()));
    }
    file_ = nullptr;
  }

 private:
  void WriteRaw(const char* p, std::size_t n) {
    if (backend_failed() || file_ == nullptr) return;
    const IoFailureHook& hook = IoFailureHookRef();
    if (hook && hook(path())) {
      RecordBackendError(Status::IoError("injected I/O failure: " + path()));
      return;
    }
    if (std::fwrite(p, 1, n, file_) != n) {
      RecordBackendError(Status::IoError("write failed: " + path()));
    }
  }

  std::FILE* file_ = nullptr;
};

/// Buffered sequential file reader.
class FileReader {
 public:
  FileReader() = default;
  ~FileReader() { Close(); }

  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  Status Open(const std::string& path) {
    Close();
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) {
      return Status::IoError("cannot open for read: " + path);
    }
    path_ = path;
    return Status::Ok();
  }

  bool is_open() const { return file_ != nullptr; }

  /// Reads exactly n bytes; returns false on clean EOF at offset 0 of the
  /// read, aborts (corruption) on a short read mid-record.
  bool Read(void* out, std::size_t n) {
    std::size_t got = std::fread(out, 1, n, file_);
    if (got == 0) return false;
    TG_CHECK_MSG(got == n, "short read in " << path_);
    return true;
  }

  bool Read48(std::uint64_t* out) {
    unsigned char bytes[6];
    if (!Read(bytes, 6)) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 6; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
    *out = v;
    return true;
  }

  bool Read64(std::uint64_t* out) {
    unsigned char bytes[8];
    if (!Read(bytes, 8)) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
    *out = v;
    return true;
  }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Removes a file if it exists (best effort; used for temp cleanup).
inline void RemoveFile(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace tg::storage

#endif  // TRILLIONG_STORAGE_FILE_IO_H_
