#include "storage/uring.h"

#if defined(TG_IO_URING) && TG_IO_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace tg::storage {

#if defined(TG_IO_URING) && TG_IO_URING

namespace {

int SysUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

}  // namespace

bool UringCompiledIn() { return true; }

bool UringAvailable() {
  static const bool available = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysUringSetup(2, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return available;
}

UringQueue::~UringQueue() { Shutdown(); }

bool UringQueue::Init(unsigned entries) {
  Shutdown();
  if (!UringAvailable()) return false;
  if (entries < 1) entries = 1;

  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  ring_fd_ = SysUringSetup(entries, &params);
  if (ring_fd_ < 0) return false;

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) {
    sq_ring_bytes_ = cq_ring_bytes_;
  }

  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    Shutdown();
    return false;
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
    cq_ring_bytes_ = 0;  // owned by the SQ mapping
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      Shutdown();
      return false;
    }
  }

  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    Shutdown();
    return false;
  }

  char* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  sq_entries_ = params.sq_entries;

  char* cq = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  cqes_ = cq + params.cq_off.cqes;
  inflight_ = 0;
  return true;
}

bool UringQueue::HasSpace() const {
  if (ring_fd_ < 0) return false;
  const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  const unsigned tail = *sq_tail_;  // sole producer
  return tail - head < sq_entries_;
}

bool UringQueue::SubmitWrite(int fd, const void* data, std::size_t len,
                             std::uint64_t offset, std::uint64_t user_data) {
  if (!HasSpace()) return false;
  const unsigned tail = *sq_tail_;
  const unsigned index = tail & *sq_mask_;
  io_uring_sqe* sqe = static_cast<io_uring_sqe*>(sqes_) + index;
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_WRITE;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(data);
  sqe->len = static_cast<unsigned>(len);
  sqe->off = offset;
  sqe->user_data = user_data;
  sq_array_[index] = index;
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);

  for (;;) {
    const int ret = SysUringEnter(ring_fd_, 1, 0, 0);
    if (ret >= 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EBUSY) {
      // Kernel-side completion queue pressure: reap before resubmitting is
      // the caller's job; report the slot as unsubmittable.
      __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);
      return false;
    }
    // EINVAL/EOPNOTSUPP and friends: this kernel cannot run our SQE shape.
    __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);
    return false;
  }
  ++inflight_;
  return true;
}

int UringQueue::Wait(UringCompletion* out, int max) {
  if (ring_fd_ < 0 || inflight_ == 0 || max <= 0) return 0;
  for (;;) {
    unsigned head = *cq_head_;  // sole consumer
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    int count = 0;
    while (head != tail && count < max) {
      const io_uring_cqe* cqe =
          static_cast<const io_uring_cqe*>(cqes_) + (head & *cq_mask_);
      out[count].user_data = cqe->user_data;
      out[count].result = cqe->res;
      ++head;
      ++count;
    }
    if (count > 0) {
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      inflight_ -= static_cast<unsigned>(count);
      return count;
    }
    const int ret = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
    if (ret < 0 && errno != EINTR) return -1;
  }
}

void UringQueue::Shutdown() {
  if (sqes_ != nullptr) {
    ::munmap(sqes_, sqes_bytes_);
    sqes_ = nullptr;
  }
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_ && cq_ring_bytes_ > 0) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  cq_ring_ = nullptr;
  if (sq_ring_ != nullptr) {
    ::munmap(sq_ring_, sq_ring_bytes_);
    sq_ring_ = nullptr;
  }
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
    ring_fd_ = -1;
  }
  inflight_ = 0;
  sq_head_ = sq_tail_ = sq_mask_ = sq_array_ = nullptr;
  cq_head_ = cq_tail_ = cq_mask_ = nullptr;
  cqes_ = nullptr;
  sq_entries_ = 0;
}

#else  // !TG_IO_URING

bool UringCompiledIn() { return false; }
bool UringAvailable() { return false; }

UringQueue::~UringQueue() = default;
bool UringQueue::Init(unsigned) { return false; }
bool UringQueue::HasSpace() const { return false; }
bool UringQueue::SubmitWrite(int, const void*, std::size_t, std::uint64_t,
                             std::uint64_t) {
  return false;
}
int UringQueue::Wait(UringCompletion*, int) { return 0; }
void UringQueue::Shutdown() {}

#endif  // TG_IO_URING

}  // namespace tg::storage
