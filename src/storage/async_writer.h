// storage/async_writer.h — double-buffered asynchronous FileWriter backend
// plus the process-wide I/O mode selection (TG_IO env, gen_cli --io flag).
//
// AsyncFileWriter moves the kernel copy off the producer thread: Append()
// fills a buffer as before, but a full buffer is handed (one pointer swap,
// no copy) to a dedicated writer thread that issues positional writes —
// io_uring submission when the build and kernel support it, plain pwrite(2)
// otherwise. Up to kQueueDepth blocks ride in flight; the producer only
// stalls when all are taken (counted in io.writer_stall_ms). Buffers are
// recycled through a free list, so steady state allocates nothing.
//
// The FileWriterBase contracts survive the thread hop (fault_test.cc,
// io_test.cc): errors detected on the writer thread — including the
// IoFailureHook firing there — are sticky and surface on the next
// producer-side status() call; FlushToOs() drains the in-flight queue before
// returning, keeping it the journal's durability barrier; and output is
// byte-identical to the sync writer because blocks are written in hand-off
// order at explicit offsets.
#ifndef TRILLIONG_STORAGE_ASYNC_WRITER_H_
#define TRILLIONG_STORAGE_ASYNC_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/file_io.h"
#include "util/status.h"

namespace tg::storage {

/// Which FileWriterBase backend MakeFileWriter() hands out.
enum class IoMode {
  kSync,   // stdio FileWriter: every flush is a blocking fwrite
  kAsync,  // AsyncFileWriter: flushes hop to a writer thread
};

/// Process-wide I/O configuration. Defaults to the async path with io_uring
/// auto-probed (silently falling back to pwrite when the kernel lacks it);
/// overridden by the TG_IO environment variable at first use and by the
/// gen_cli --io flag.
struct IoConfig {
  IoMode mode = IoMode::kAsync;
  bool use_uring = true;
};

/// Parses an I/O spec — "sync", "async", "async,uring", "async,nouring" —
/// into `config`. InvalidArgument on anything else.
Status ParseIoSpec(const std::string& spec, IoConfig* config);

/// Canonical spec string for a config ("sync", "async,uring", ...), as
/// recorded in RunReport meta.
std::string IoSpecString(const IoConfig& config);

/// The mutable process-wide config. Initialized from TG_IO on first call;
/// not thread-safe to mutate once worker threads are constructing writers.
IoConfig& GlobalIoConfig();

/// Constructs a writer for the given (or global) config.
std::unique_ptr<FileWriterBase> MakeFileWriter(std::size_t buffer_bytes,
                                               const IoConfig& config);
std::unique_ptr<FileWriterBase> MakeFileWriter(
    std::size_t buffer_bytes = 1 << 20);

/// RAII override of GlobalIoConfig() for tests.
class ScopedIoConfig {
 public:
  explicit ScopedIoConfig(const IoConfig& config)
      : saved_(GlobalIoConfig()) {
    GlobalIoConfig() = config;
  }
  ~ScopedIoConfig() { GlobalIoConfig() = saved_; }

  ScopedIoConfig(const ScopedIoConfig&) = delete;
  ScopedIoConfig& operator=(const ScopedIoConfig&) = delete;

 private:
  IoConfig saved_;
};

/// Double-buffered asynchronous writer. Producer-side API is exactly
/// FileWriterBase; one writer thread per open file performs the writes.
class AsyncFileWriter final : public FileWriterBase {
 public:
  explicit AsyncFileWriter(std::size_t buffer_bytes = 1 << 20,
                           bool use_uring = true)
      : FileWriterBase(buffer_bytes), use_uring_(use_uring) {}

  ~AsyncFileWriter() override;

  /// Blocks the producer until at most `max_inflight` blocks are queued or
  /// being written (default kQueueDepth).
  static constexpr std::size_t kQueueDepth = 4;

 protected:
  Status BackendOpen(const std::string& path, bool resume,
                     std::uint64_t offset) override;
  void BackendWrite(std::vector<char>& buffer) override;
  void BackendWriteDirect(const char* data, std::size_t n) override;
  void BackendBarrier() override;
  void BackendRewriteAt(std::uint64_t offset, const char* data,
                        std::size_t n) override;
  void BackendClose() override;

 private:
  struct Block {
    std::vector<char> data;
    std::uint64_t offset = 0;
  };

  void EnqueueBlock(std::vector<char>&& data);
  std::vector<char> TakeSpareBuffer();  // caller holds mutex_
  void WriterLoop();
  void WriterLoopPwrite(std::unique_lock<std::mutex>& lock);
  void WriterLoopUring(std::unique_lock<std::mutex>& lock);
  bool WriteBlockSync(const Block& block);
  bool PwriteRange(const char* data, std::size_t n, std::uint64_t offset);
  void RetireBlock(Block& block);  // caller holds mutex_

  bool use_uring_ = true;
  int fd_ = -1;
  std::uint64_t next_offset_ = 0;  // producer-side append cursor

  std::mutex mutex_;
  std::condition_variable producer_cv_;  // block retired / queue drained
  std::condition_variable writer_cv_;    // work arrived / stop requested
  std::deque<Block> queue_;
  std::vector<std::vector<char>> spare_buffers_;
  std::size_t pending_blocks_ = 0;  // queued + in flight
  bool stop_ = false;
  std::thread writer_thread_;

  std::uint64_t stall_carry_us_ = 0;  // sub-ms stall remainder
};

}  // namespace tg::storage

#endif  // TRILLIONG_STORAGE_ASYNC_WRITER_H_
