#ifndef TRILLIONG_ANALYSIS_GRAPH_STATS_H_
#define TRILLIONG_ANALYSIS_GRAPH_STATS_H_

#include <string>

#include "query/csr_graph.h"
#include "rng/random.h"
#include "util/common.h"

namespace tg::analysis {

/// Structural statistics of a generated graph beyond the degree
/// distribution — the properties the realism literature ([35] and the
/// paper's Section 1) inspects when judging a synthetic generator.
struct GraphStats {
  VertexId num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t self_loops = 0;
  /// Fraction of edges (u,v) with v != u whose reverse edge (v,u) exists.
  double reciprocity = 0.0;
  /// Sampled local clustering coefficient (mean over sampled vertices with
  /// degree >= 2, treating the graph as undirected out-neighborhoods).
  double clustering_coefficient = 0.0;
  /// Fraction of vertices with out-degree zero.
  double isolated_fraction = 0.0;
  std::uint64_t max_out_degree = 0;

  std::string ToString() const;
};

struct GraphStatsOptions {
  /// Vertices sampled for the clustering coefficient (0 disables it).
  std::uint64_t clustering_samples = 1000;
  std::uint64_t rng_seed = 42;
};

/// Computes the statistics from an in-memory CSR graph. Adjacency lists must
/// be sorted (CsrGraph::FromCsr6Shards guarantees this; re-sort otherwise).
GraphStats ComputeGraphStats(const query::CsrGraph& graph,
                             const GraphStatsOptions& options = {});

}  // namespace tg::analysis

#endif  // TRILLIONG_ANALYSIS_GRAPH_STATS_H_
