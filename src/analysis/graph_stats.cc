#include "analysis/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace tg::analysis {

namespace {

bool HasSortedEdge(const query::CsrGraph& graph, VertexId u, VertexId v) {
  auto nbrs = graph.OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace

GraphStats ComputeGraphStats(const query::CsrGraph& graph,
                             const GraphStatsOptions& options) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();

  std::uint64_t reciprocal = 0;
  std::uint64_t non_loop_edges = 0;
  std::uint64_t isolated = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    std::uint64_t degree = graph.OutDegree(u);
    stats.max_out_degree = std::max(stats.max_out_degree, degree);
    if (degree == 0) ++isolated;
    for (VertexId v : graph.OutNeighbors(u)) {
      if (v == u) {
        ++stats.self_loops;
        continue;
      }
      ++non_loop_edges;
      if (HasSortedEdge(graph, v, u)) ++reciprocal;
    }
  }
  stats.reciprocity =
      non_loop_edges == 0
          ? 0.0
          : static_cast<double>(reciprocal) / static_cast<double>(non_loop_edges);
  stats.isolated_fraction =
      graph.num_vertices() == 0
          ? 0.0
          : static_cast<double>(isolated) /
                static_cast<double>(graph.num_vertices());

  if (options.clustering_samples > 0 && graph.num_vertices() > 0) {
    rng::Rng rng(options.rng_seed, /*stream=*/9);
    double total = 0.0;
    std::uint64_t counted = 0;
    std::uint64_t attempts = options.clustering_samples * 20;
    while (counted < options.clustering_samples && attempts-- > 0) {
      VertexId u = rng.NextBounded(graph.num_vertices());
      auto nbrs = graph.OutNeighbors(u);
      if (nbrs.size() < 2) continue;
      // Count closed wedges among (up to) 16 sampled neighbor pairs.
      int pairs = 0, closed = 0;
      for (int i = 0; i < 16; ++i) {
        VertexId a = nbrs[rng.NextBounded(nbrs.size())];
        VertexId b = nbrs[rng.NextBounded(nbrs.size())];
        if (a == b || a == u || b == u) continue;
        ++pairs;
        if (HasSortedEdge(graph, a, b) || HasSortedEdge(graph, b, a)) {
          ++closed;
        }
      }
      if (pairs > 0) {
        total += static_cast<double>(closed) / pairs;
        ++counted;
      }
    }
    stats.clustering_coefficient = counted == 0 ? 0.0 : total / counted;
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream out;
  out << "|V|=" << num_vertices << " |E|=" << num_edges
      << " self_loops=" << self_loops << " reciprocity=" << reciprocity
      << " clustering~" << clustering_coefficient
      << " isolated=" << isolated_fraction
      << " max_out_degree=" << max_out_degree;
  return out.str();
}

}  // namespace tg::analysis
