#include "analysis/degree_dist.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace tg::analysis {

DegreeHistogram DegreeHistogram::FromDegrees(
    const std::vector<std::uint32_t>& degrees, bool include_zero) {
  DegreeHistogram h;
  for (std::uint32_t d : degrees) {
    if (d > 0 || include_zero) h.AddVertex(d);
  }
  return h;
}

std::uint64_t DegreeHistogram::NumVertices() const {
  std::uint64_t total = 0;
  for (const auto& [deg, count] : counts_) total += count;
  return total;
}

std::uint64_t DegreeHistogram::NumEdges() const {
  std::uint64_t total = 0;
  for (const auto& [deg, count] : counts_) total += deg * count;
  return total;
}

std::uint64_t DegreeHistogram::MaxDegree() const {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

std::vector<DegreeHistogram::Bin> DegreeHistogram::LogBinned(
    double bins_per_decade) const {
  std::vector<Bin> bins;
  if (counts_.empty()) return bins;
  const double ratio = std::pow(10.0, 1.0 / bins_per_decade);
  double lo = 1.0;
  auto it = counts_.begin();
  if (it->first == 0) ++it;  // log bins start at degree 1
  while (it != counts_.end()) {
    double hi = std::max(lo * ratio, lo + 1.0);
    double weight = 0, count = 0;
    std::uint64_t degrees_in_bin = 0;
    while (it != counts_.end() && static_cast<double>(it->first) < hi) {
      weight += static_cast<double>(it->first) * it->second;
      count += static_cast<double>(it->second);
      ++degrees_in_bin;
      ++it;
    }
    if (count > 0) {
      // x = count-weighted mean degree; y = avg vertices per integer degree
      // in the bin (normalizing for bin width keeps the slope honest).
      double span = std::floor(hi) - std::floor(lo);
      if (span < 1) span = 1;
      bins.push_back(Bin{weight / count, count / span});
    }
    lo = hi;
  }
  return bins;
}

double DegreeHistogram::ZipfRankSlope() const {
  // Expand to a descending degree sequence implicitly: iterate the histogram
  // from the highest degree, tracking cumulative rank.
  std::vector<std::pair<double, double>> points;  // (log2 rank, log2 degree)
  std::uint64_t rank = 0;
  std::uint64_t next_pow = 1;
  for (auto it = counts_.rbegin(); it != counts_.rend(); ++it) {
    auto [deg, count] = *it;
    // Stop at the degree-1 plateau: integer rounding turns the tail into a
    // flat shelf that would bias the fit toward zero.
    if (deg <= 1) break;
    // Ranks covered by this degree: [rank+1, rank+count].
    while (next_pow >= rank + 1 && next_pow <= rank + count) {
      points.emplace_back(std::log2(static_cast<double>(next_pow)),
                          std::log2(static_cast<double>(deg)));
      next_pow *= 2;
    }
    rank += count;
  }
  if (points.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (auto [x, y] : points) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  double n = static_cast<double>(points.size());
  double denom = n * sxx - sx * sx;
  return denom == 0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

double DegreeHistogram::LogLogSlope() const {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double n = 0;
  for (const auto& [deg, count] : counts_) {
    if (deg == 0) continue;
    double x = std::log2(static_cast<double>(deg));
    double y = std::log2(static_cast<double>(count));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    n += 1;
  }
  if (n < 2) return 0.0;
  double denom = n * sxx - sx * sx;
  return denom == 0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

double DegreeHistogram::OscillationScore(std::uint64_t max_degree) const {
  // Contiguous-degree second differences of log2(count) in the head.
  double total = 0;
  int terms = 0;
  for (std::uint64_t d = 2; d + 1 <= max_degree; ++d) {
    auto a = counts_.find(d - 1);
    auto b = counts_.find(d);
    auto c = counts_.find(d + 1);
    if (a == counts_.end() || b == counts_.end() || c == counts_.end()) {
      continue;
    }
    double la = std::log2(static_cast<double>(a->second));
    double lb = std::log2(static_cast<double>(b->second));
    double lc = std::log2(static_cast<double>(c->second));
    total += std::abs(la - 2 * lb + lc);
    ++terms;
  }
  return terms == 0 ? 0.0 : total / terms;
}

double DegreeHistogram::KsDistance(const DegreeHistogram& a,
                                   const DegreeHistogram& b) {
  double na = static_cast<double>(a.NumVertices());
  double nb = static_cast<double>(b.NumVertices());
  if (na == 0 || nb == 0) return 1.0;
  auto ia = a.counts_.begin();
  auto ib = b.counts_.begin();
  double ca = 0, cb = 0, ks = 0;
  while (ia != a.counts_.end() || ib != b.counts_.end()) {
    std::uint64_t deg;
    if (ib == b.counts_.end() ||
        (ia != a.counts_.end() && ia->first <= ib->first)) {
      deg = ia->first;
    } else {
      deg = ib->first;
    }
    while (ia != a.counts_.end() && ia->first <= deg) {
      ca += static_cast<double>(ia->second);
      ++ia;
    }
    while (ib != b.counts_.end() && ib->first <= deg) {
      cb += static_cast<double>(ib->second);
      ++ib;
    }
    ks = std::max(ks, std::abs(ca / na - cb / nb));
  }
  return ks;
}

double PopcountClassSlope(const std::vector<std::uint32_t>& degrees,
                          std::size_t min_vertices) {
  if (degrees.empty()) return 0.0;
  int max_class = 1;
  std::uint64_t n = degrees.size();
  while ((std::uint64_t{1} << max_class) < n) ++max_class;
  std::vector<double> sum(max_class + 1, 0.0);
  std::vector<std::uint64_t> count(max_class + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    int cls = std::popcount(v);
    sum[cls] += degrees[v];
    ++count[cls];
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int points = 0;
  for (int cls = 0; cls <= max_class; ++cls) {
    if (count[cls] < min_vertices) continue;
    double mean = sum[cls] / static_cast<double>(count[cls]);
    // Below ~2 the integer resolution of degrees flattens the class means
    // (the degree-1 shelf), which would bias the fit toward zero.
    if (mean < 2.0) continue;
    double x = cls;
    double y = std::log2(mean);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++points;
  }
  if (points < 2) return 0.0;
  double denom = points * sxx - sx * sx;
  return denom == 0 ? 0.0 : (points * sxy - sx * sy) / denom;
}

double DegreeHistogram::MeanDegree() const {
  std::uint64_t n = NumVertices();
  return n == 0 ? 0.0
                : static_cast<double>(NumEdges()) / static_cast<double>(n);
}

double DegreeHistogram::StddevDegree() const {
  std::uint64_t n = NumVertices();
  if (n == 0) return 0.0;
  double mean = MeanDegree();
  double sumsq = 0;
  for (const auto& [deg, count] : counts_) {
    double diff = static_cast<double>(deg) - mean;
    sumsq += diff * diff * static_cast<double>(count);
  }
  return std::sqrt(sumsq / static_cast<double>(n));
}

std::string DegreeHistogram::ToSeriesString(double bins_per_decade) const {
  std::ostringstream out;
  for (const Bin& bin : LogBinned(bins_per_decade)) {
    out << bin.degree << "\t" << bin.count << "\n";
  }
  return out.str();
}

}  // namespace tg::analysis
