#ifndef TRILLIONG_ANALYSIS_DEGREE_DIST_H_
#define TRILLIONG_ANALYSIS_DEGREE_DIST_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/scope_sink.h"
#include "util/common.h"

namespace tg::analysis {

/// Histogram of vertex degrees: degree -> number of vertices. The raw
/// ingredient of every degree-distribution figure in the paper (Figures 8,
/// 9, 10).
class DegreeHistogram {
 public:
  DegreeHistogram() = default;

  /// Builds from per-vertex degree counts (index = vertex).
  static DegreeHistogram FromDegrees(const std::vector<std::uint32_t>& degrees,
                                     bool include_zero = false);

  void AddVertex(std::uint64_t degree) { ++counts_[degree]; }

  const std::map<std::uint64_t, std::uint64_t>& counts() const {
    return counts_;
  }

  std::uint64_t NumVertices() const;
  std::uint64_t NumEdges() const;
  std::uint64_t MaxDegree() const;

  /// Multiplicative log-binned series (degree-bin geometric mean, average
  /// count per degree in bin): the standard way to render a power-law plot.
  struct Bin {
    double degree;
    double count;
  };
  std::vector<Bin> LogBinned(double bins_per_decade = 10.0) const;

  /// Rank-frequency Zipf slope (Lemma 6): degrees sorted descending, least
  /// squares of log2(degree) against log2(rank) sampled at power-of-two
  /// ranks. Returns 0 for degenerate inputs.
  double ZipfRankSlope() const;

  /// Least-squares slope of log2(count) vs log2(degree) over the raw
  /// histogram (the "plot slope" of Figures 8/9).
  double LogLogSlope() const;

  /// Oscillation score (Figure 9 / Appendix C): mean |second difference| of
  /// log2(count) over consecutive degrees in the head of the distribution.
  /// Noise-free SKG oscillates (score high); NSKG smooths it (score low).
  double OscillationScore(std::uint64_t max_degree = 256) const;

  /// Kolmogorov–Smirnov distance between two degree distributions (over the
  /// degree CDF weighted by vertex count).
  static double KsDistance(const DegreeHistogram& a, const DegreeHistogram& b);

  /// Sample mean and standard deviation of the degree of a vertex.
  double MeanDegree() const;
  double StddevDegree() const;

  /// "deg\tcount" lines, log-binned, for the bench harness output.
  std::string ToSeriesString(double bins_per_decade = 10.0) const;

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
};

/// Fits log2(mean degree) of vertices grouped by popcount(vertex id) against
/// the popcount class index. For SKG/RMAT graphs the class-j mean degree is
/// |E| * (a+b)^(L-j) * (c+d)^j, so the slope is exactly
/// log2(c+d) - log2(a+b) — the quantity Lemma 6 / Table 3 identify as the
/// "Zipfian slope" (the raw rank-frequency curve of an SKG graph is only
/// piecewise linear, so this class-based estimator is the exact one).
/// Classes with fewer than `min_vertices` members or mean degree < 1 are
/// excluded (head clipping / empty tail).
double PopcountClassSlope(const std::vector<std::uint32_t>& degrees,
                          std::size_t min_vertices = 8);

/// ScopeSink that accumulates out-degrees (scope sizes) and in-degrees
/// (neighbor occurrences) without storing edges — the O(|V|) way to get
/// Figure 8/9 data from a generation run. Single-worker use.
class DegreeSink : public core::ScopeSink {
 public:
  explicit DegreeSink(VertexId num_vertices)
      : out_degrees_(num_vertices, 0), in_degrees_(num_vertices, 0) {}

  void ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) override {
    out_degrees_[u] += static_cast<std::uint32_t>(n);
    for (std::size_t i = 0; i < n; ++i) ++in_degrees_[adj[i]];
  }

  /// Out-degree histogram (vertices with degree 0 excluded, matching the
  /// paper's log-log plots).
  DegreeHistogram OutHistogram() const {
    return DegreeHistogram::FromDegrees(out_degrees_);
  }
  DegreeHistogram InHistogram() const {
    return DegreeHistogram::FromDegrees(in_degrees_);
  }

  const std::vector<std::uint32_t>& out_degrees() const {
    return out_degrees_;
  }
  const std::vector<std::uint32_t>& in_degrees() const { return in_degrees_; }

 private:
  std::vector<std::uint32_t> out_degrees_;
  std::vector<std::uint32_t> in_degrees_;
};

}  // namespace tg::analysis

#endif  // TRILLIONG_ANALYSIS_DEGREE_DIST_H_
