// serve/request.h — the generation-request schema of the tg::serve daemon.
//
// A request is the JSON mirror of gen_cli's command line: the same knobs
// (scale, edge factor, seed matrix, noise, workers, format, ...) with the
// same defaults, plus a `tenant` identity used for fair admission and
// per-tenant metrics. Parsing is strict — unknown keys, non-integral
// integers, and out-of-range values are rejected with a message naming the
// offending field — because the daemon must never feed unvalidated numbers
// into TrillionGConfig (SeedMatrix and NumEdges TG_CHECK-abort on bad
// input, which would take the whole multi-tenant process down).
//
// Because AVS partitioning is shuffle-free, a validated request is a pure
// function of its parameters: Fingerprint() (the same hash the resume
// journal uses to refuse splicing mismatched outputs) keys the daemon's
// whole-graph cache, and ModelKey() — the subset of parameters that shape
// the noise vector — keys the shared prefix tables and partition plans.
#ifndef TRILLIONG_SERVE_REQUEST_H_
#define TRILLIONG_SERVE_REQUEST_H_

#include <cstdint>
#include <string>

#include "core/trilliong.h"
#include "util/status.h"

namespace tg::serve {

/// One validated generation request. Field defaults match gen_cli's flag
/// defaults, so an empty JSON object `{}` asks for the same graph as
/// `gen_cli` with no flags (modulo --out).
struct GenRequest {
  std::string tenant = "anon";  ///< [A-Za-z0-9_-]{1,64}
  int scale = 20;
  std::uint64_t edge_factor = 16;
  std::uint64_t num_edges = 0;  ///< 0: edge_factor * |V|
  double noise = 0.0;
  std::uint64_t rng_seed = 42;
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  int workers = 4;
  int chunks_per_worker = 16;
  std::string format = "adj6";      ///< tsv | adj6 | csr6
  std::string direction = "out";    ///< out | in
  std::string precision = "double"; ///< double | dd
  bool use_prefix_tables = true;
};

/// The daemon's per-request resource ceilings (DaemonOptions carries the
/// operator-chosen values). Everything a client could use to make one
/// request arbitrarily expensive is bounded here, at validation time.
struct RequestLimits {
  int max_scale = 26;
  int max_workers = 16;
  int max_chunks_per_worker = 256;
  std::uint64_t max_edges = std::uint64_t{1} << 32;
};

/// Parses and validates a JSON request body. On error the returned status
/// message is safe to echo to the client (it names fields and bounds, never
/// server state).
Status ParseGenRequest(const std::string& json_body,
                       const RequestLimits& limits, GenRequest* out);

/// The TrillionGConfig a gen_cli run with these parameters would build.
/// Only the graph-shaping fields are set; the caller wires budget, cancel
/// flag, hooks, and cached artifacts.
core::TrillionGConfig ToConfig(const GenRequest& request);

/// Hash of every output-shaping parameter including the format — equal
/// fingerprints mean byte-identical payloads (fault::ConfigFingerprint,
/// the contract the resume journal already enforces). Keys the whole-graph
/// cache.
std::uint64_t Fingerprint(const GenRequest& request);

/// Hash of only the parameters that shape the noise vector (seed matrix,
/// scale, noise, rng seed, direction). Requests with equal model keys share
/// prefix tables; plans additionally key on the worker count.
std::uint64_t ModelKey(const GenRequest& request);

}  // namespace tg::serve

#endif  // TRILLIONG_SERVE_REQUEST_H_
