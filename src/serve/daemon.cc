#include "serve/daemon.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <list>

#include "core/scheduler.h"
#include "core/trilliong.h"
#include "fault/fault_injector.h"
#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "obs/metrics.h"
#include "obs/serve/admin_server.h"
#include "util/memory_budget.h"

namespace tg::serve {

namespace {

std::string ShardPath(const std::string& prefix, int worker,
                      const std::string& format) {
  // Same naming as gen_cli: <prefix>.w<k>.<ext>, so the shard writers and
  // the byte layout are exactly the offline tool's.
  return prefix + ".w" + std::to_string(worker) + "." + format;
}

std::unique_ptr<core::ScopeSink> MakeSink(const std::string& format,
                                          const std::string& path, VertexId lo,
                                          VertexId hi, bool transposed) {
  if (format == "tsv") {
    return std::make_unique<format::TsvWriter>(path, transposed);
  }
  if (format == "adj6") {
    return std::make_unique<format::Adj6Writer>(path);
  }
  return std::make_unique<format::Csr6Writer>(path, lo, hi);
}

const char* ContentTypeFor(const std::string& format) {
  return format == "tsv" ? "text/tab-separated-values; charset=utf-8"
                         : "application/octet-stream";
}

/// Extracts the durable byte count from a CommitState token — "bytes=N" for
/// TSV/ADJ6, "bytes=N,next=...,edges=..." for CSR6.
std::uint64_t DurableBytesFromToken(const std::string& token) {
  const std::size_t pos = token.find("bytes=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(token.c_str() + pos + 6, nullptr, 10);
}

std::string JsonError(const std::string& message) {
  std::string out = "{\"error\": \"";
  for (char ch : message) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(ch) >= 0x20) out.push_back(ch);
  }
  out += "\"}\n";
  return out;
}

std::string HexFingerprint(std::uint64_t fingerprint) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

void RecordServeEvent(const std::string& kind, std::uint64_t id,
                      const std::string& detail) {
  obs::Event event;
  event.kind = kind;
  event.machine = -1;
  event.ordinal = id;
  event.detail = detail;
  obs::Registry::Global().RecordEvent(std::move(event));
}

}  // namespace

/// One admitted generation request moving through queue -> generate+stream
/// -> completion. Shared by the executor, the streamer thread, and the
/// chunk-commit hook.
struct ServeDaemon::Request {
  std::uint64_t id = 0;
  GenRequest gen;
  std::uint64_t fingerprint = 0;
  std::string channel;
  std::chrono::steady_clock::time_point accept_time{};

  /// Flipped by the streamer on disconnect/stall and by Stop(); generation
  /// halts at the next chunk boundary (TrillionGConfig::cancel_flag).
  std::atomic<bool> cancel{false};

  std::mutex mu;
  std::condition_variable cv;
  /// Per shard, bytes made durable by the chunk-commit protocol — the
  /// prefix the streamer may send while generation is still running.
  std::vector<std::uint64_t> durable;
  bool done = false;       ///< Generate() returned
  bool failed = false;     ///< OOM / unrecoverable fault
  bool cancelled = false;  ///< generation stopped early: shards are prefixes

  /// Streamer-thread results, read by the executor after join.
  bool streamed_all = false;
  std::uint64_t bytes_streamed = 0;
};

/// The shared generation pool: every tenant's scheduler workers run here.
/// Run() executes a batch of worker bodies, the caller's thread working on
/// its own batch alongside the pool threads, and returns when the batch is
/// complete — the SchedulerOptions::worker_runner contract. Safe with any
/// pool size because any single scheduler worker drains all remaining
/// chunks by stealing.
class ServeDaemon::WorkerPool {
 public:
  explicit WorkerPool(int threads) {
    for (int i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { Loop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void Run(std::vector<std::function<void()>>& bodies) {
    auto batch = std::make_shared<Batch>();
    batch->bodies = &bodies;
    batch->size = bodies.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      batches_.push_back(batch);
    }
    cv_.notify_all();
    // The caller works its own batch too: a request never waits idle for
    // pool threads occupied by another tenant's batch.
    while (ExecuteOne(batch)) {
    }
    std::unique_lock<std::mutex> lk(batch->mu);
    batch->cv.wait(lk, [&] { return batch->done == bodies.size(); });
    lk.unlock();
    std::lock_guard<std::mutex> lock(mu_);
    batches_.remove(batch);
  }

 private:
  struct Batch {
    /// Valid while any body is still unfinished: Run() cannot return (and
    /// the caller's vector cannot die) before done == size. Exhausted
    /// batches are tested against `size` only, never through this pointer.
    std::vector<std::function<void()>>* bodies = nullptr;
    std::size_t size = 0;
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;  ///< guarded by mu
  };

  /// Claims and runs one body of `batch`; false when the batch has none
  /// left to claim.
  static bool ExecuteOne(const std::shared_ptr<Batch>& batch) {
    const std::size_t idx = batch->next.fetch_add(1);
    if (idx >= batch->size) return false;
    (*batch->bodies)[idx]();
    {
      std::lock_guard<std::mutex> lock(batch->mu);
      ++batch->done;
    }
    batch->cv.notify_all();
    return true;
  }

  void Loop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] {
          if (stop_) return true;
          for (const auto& b : batches_) {
            if (b->next.load() < b->size) return true;
          }
          return false;
        });
        if (stop_) return;
        for (const auto& b : batches_) {
          if (b->next.load() < b->size) {
            batch = b;
            break;
          }
        }
      }
      if (batch != nullptr) ExecuteOne(batch);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::list<std::shared_ptr<Batch>> batches_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

ServeDaemon::ServeDaemon() = default;

ServeDaemon::~ServeDaemon() { Stop(); }

Status ServeDaemon::Start(const DaemonOptions& options) {
  Stop();
  options_ = options;
  start_time_ = std::chrono::steady_clock::now();

  if (options_.work_dir.empty()) {
    owned_work_dir_ = std::make_unique<storage::TempDir>("tg_serve");
    work_dir_ = owned_work_dir_->path();
  } else {
    work_dir_ = options_.work_dir;
  }

  ArtifactCache::Options cache_options;
  cache_options.graph_cache_bytes = options_.cache_bytes;
  cache_options.graph_entry_max_bytes = options_.cache_entry_max_bytes;
  cache_ = std::make_unique<ArtifactCache>(cache_options);
  pool_ = std::make_unique<WorkerPool>(std::max(options_.worker_threads, 1));

  // Create the serve.* families up front so /metrics exposes them (at zero)
  // from the first scrape, before any request arrives.
  for (const char* name :
       {"serve.requests", "serve.rejected", "serve.completed",
        "serve.cancelled", "serve.failed", "serve.cache_hits",
        "serve.cache_misses", "serve.bytes_streamed"}) {
    obs::GetCounter(name);
  }
  obs::GetGauge("serve.active")->Set(0);
  obs::GetGauge("serve.queued")->Set(0);
  obs::GetHistogram("serve.queue_wait_ms");
  obs::GetHistogram("serve.request_ms");

  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = false;
    stopping_ = false;
    next_id_ = 1;
  }

  net::HttpServer::Options http;
  http.bind_address = options_.bind_address;
  http.port = options_.port;
  http.max_body_bytes = options_.max_body_bytes;
  // Headroom for the request line + headers on top of the body cap.
  http.max_request_bytes =
      std::max<std::size_t>(16 * 1024, options_.max_body_bytes + 16 * 1024);
  Status started = server_.Start(
      http, [this](const net::HttpRequest& request) { return Handle(request); });
  if (!started.ok()) return started;
  obs::serve::InstallEventStreamBridges(&server_);

  for (int i = 0; i < std::max(options_.max_concurrent, 1); ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  return Status::Ok();
}

void ServeDaemon::Drain() { Shutdown(/*cancel_inflight=*/false); }

void ServeDaemon::Stop() { Shutdown(/*cancel_inflight=*/true); }

int ServeDaemon::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size() + active_.size());
}

void ServeDaemon::Shutdown(bool cancel_inflight) {
  if (!server_.running() && executors_.empty()) return;

  std::vector<std::shared_ptr<Request>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    if (cancel_inflight) {
      stopping_ = true;
      for (auto& req : queue_) {
        dropped.push_back(req);
        if (--tenant_inflight_[req->gen.tenant] <= 0) {
          tenant_inflight_.erase(req->gen.tenant);
        }
      }
      queue_.clear();
      for (auto& req : active_) req->cancel.store(true);
      obs::GetGauge("serve.queued")->Set(0);
    }
    queue_cv_.notify_all();
  }
  // Channel teardown outside mu_: CloseChannel takes the server's lock.
  for (auto& req : dropped) {
    req->cancel.store(true);
    server_.CloseChannel(req->channel, /*graceful=*/false);
    obs::GetCounter("serve.cancelled")->Add(1);
  }

  {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [&] { return queue_.empty() && active_.empty(); });
    stopping_ = true;  // executors may now exit
    queue_cv_.notify_all();
  }
  for (std::thread& t : executors_) t.join();
  executors_.clear();

  obs::serve::InstallEventStreamBridges(nullptr);
  server_.Stop();
  pool_.reset();
  cache_.reset();
  owned_work_dir_.reset();
}

net::HttpResponse ServeDaemon::Handle(const net::HttpRequest& request) {
  if (request.path == "/generate") return HandleGenerate(request);
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  return obs::serve::HandleAdminRequest(request, options_.meta, uptime_s);
}

net::HttpResponse ServeDaemon::HandleGenerate(const net::HttpRequest& http) {
  net::HttpResponse response;
  if (http.method != "POST") {
    response.status = 405;
    response.headers["Allow"] = "POST";
    response.content_type = "application/json";
    response.body = JsonError("/generate takes POST with a JSON body");
    return response;
  }

  obs::GetCounter("serve.requests")->Add(1);

  GenRequest gen;
  Status parsed = ParseGenRequest(http.body, options_.limits, &gen);
  if (!parsed.ok()) {
    obs::GetCounter("serve.rejected")->Add(1);
    response.status = 400;
    response.content_type = "application/json";
    response.body = JsonError(parsed.message());
    return response;
  }
  obs::GetCounter("serve.tenant." + gen.tenant + ".requests")->Add(1);

  const std::uint64_t fingerprint = Fingerprint(gen);
  response.headers["X-TG-Fingerprint"] = HexFingerprint(fingerprint);
  response.content_type = ContentTypeFor(gen.format);

  if (std::shared_ptr<const std::string> payload =
          cache_->LookupGraph(fingerprint)) {
    obs::GetCounter("serve.cache_hits")->Add(1);
    obs::GetCounter("serve.bytes_streamed")->Add(payload->size());
    obs::GetCounter("serve.tenant." + gen.tenant + ".bytes_streamed")
        ->Add(payload->size());
    response.headers["X-TG-Cache"] = "hit";
    response.body = *payload;
    response.chunked = response.body.size() > 64 * 1024;
    return response;
  }
  obs::GetCounter("serve.cache_misses")->Add(1);

  std::shared_ptr<Request> req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stopping_) {
      obs::GetCounter("serve.rejected")->Add(1);
      response.status = 503;
      response.headers["Retry-After"] = "1";
      response.content_type = "application/json";
      response.body = JsonError("daemon is draining");
      return response;
    }
    auto tenant_it = tenant_inflight_.find(gen.tenant);
    const int tenant_inflight =
        tenant_it == tenant_inflight_.end() ? 0 : tenant_it->second;
    if (tenant_inflight >= options_.per_tenant_inflight) {
      obs::GetCounter("serve.rejected")->Add(1);
      response.status = 429;
      response.headers["Retry-After"] = "1";
      response.content_type = "application/json";
      response.body = JsonError("tenant '" + gen.tenant +
                                "' is at its in-flight request cap");
      return response;
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queued) {
      obs::GetCounter("serve.rejected")->Add(1);
      response.status = 429;
      response.headers["Retry-After"] = "2";
      response.content_type = "application/json";
      response.body = JsonError("admission queue is full");
      return response;
    }

    req = std::make_shared<Request>();
    req->id = next_id_++;
    req->gen = gen;
    req->fingerprint = fingerprint;
    req->channel = "serve.req." + std::to_string(req->id);
    req->accept_time = std::chrono::steady_clock::now();
    req->durable.assign(static_cast<std::size_t>(gen.workers), 0);
    queue_.push_back(req);
    ++tenant_inflight_[gen.tenant];
    obs::GetGauge("serve.queued")->Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  RecordServeEvent("serve.accept", req->id,
                   gen.tenant + " scale=" + std::to_string(gen.scale) + " " +
                       gen.format);

  response.headers["X-TG-Cache"] = "miss";
  response.headers["X-TG-Request-Id"] = std::to_string(req->id);
  response.stream_channel = req->channel;
  return response;
}

void ServeDaemon::ExecutorLoop() {
  for (;;) {
    std::shared_ptr<Request> req;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      req = queue_.front();
      queue_.pop_front();
      active_.push_back(req);
      obs::GetGauge("serve.queued")->Set(static_cast<double>(queue_.size()));
      obs::GetGauge("serve.active")->Set(static_cast<double>(active_.size()));
    }

    const double wait_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - req->accept_time)
            .count();
    obs::GetHistogram("serve.queue_wait_ms")
        ->Observe(static_cast<std::uint64_t>(wait_ms));

    RunRequest(req);

    {
      std::lock_guard<std::mutex> lock(mu_);
      active_.erase(std::find(active_.begin(), active_.end(), req));
      if (--tenant_inflight_[req->gen.tenant] <= 0) {
        tenant_inflight_.erase(req->gen.tenant);
      }
      obs::GetGauge("serve.active")->Set(static_cast<double>(active_.size()));
    }
    idle_cv_.notify_all();
  }
}

void ServeDaemon::RunRequest(const std::shared_ptr<Request>& req) {
  const std::string prefix = work_dir_ + "/req" + std::to_string(req->id);
  const std::string& format = req->gen.format;
  const bool transposed = req->gen.direction == "in";

  core::TrillionGConfig config = ToConfig(req->gen);
  MemoryBudget budget(options_.request_mem_budget_bytes);
  config.budget = &budget;
  config.cancel_flag = &req->cancel;
  config.worker_runner = [this](std::vector<std::function<void()>>& bodies) {
    pool_->Run(bodies);
  };

  // Cached model artifacts: the plan and tables a fresh run would compute,
  // shared read-only across every request with the same model.
  std::shared_ptr<const std::vector<VertexId>> plan =
      cache_->PartitionPlan(req->gen, nullptr);
  config.precomputed_boundaries = *plan;
  std::shared_ptr<const core::AvsPrefixTables> tables =
      cache_->PrefixTables(req->gen, nullptr);
  config.shared_prefix_tables = tables.get();

  // The commit hook publishes each shard's durable byte count; the streamer
  // tails exactly that prefix. Runs under the range commit lock — keep it to
  // the checkpoint and one notify. CSR6 is excluded: its header + offsets
  // region at the file front is back-patched in Finish(), so mid-run bytes
  // are not a prefix of the final file — those streams start once the shard
  // is complete (durable stays 0 until done).
  if (format != "csr6") {
    config.chunk_commit_hook = [req](const core::Chunk& chunk,
                                     core::ScopeSink* sink) {
      auto* resumable = dynamic_cast<core::ResumableSink*>(sink);
      if (resumable == nullptr) return;
      std::string token;
      if (!resumable->CommitState(&token).ok()) return;
      const std::uint64_t bytes = DurableBytesFromToken(token);
      {
        std::lock_guard<std::mutex> lock(req->mu);
        if (bytes > req->durable[static_cast<std::size_t>(chunk.range)]) {
          req->durable[static_cast<std::size_t>(chunk.range)] = bytes;
        }
      }
      req->cv.notify_all();
    };
  }

  std::thread streamer([this, req] { StreamRequest(req); });

  bool failed = false;
  core::GenerateStats stats;
  try {
    stats = core::Generate(
        config,
        [&](int worker, VertexId lo,
            VertexId hi) -> std::unique_ptr<core::ScopeSink> {
          return MakeSink(format, ShardPath(prefix, worker, format), lo, hi,
                          transposed);
        });
  } catch (const OomError& e) {
    failed = true;
    RecordServeEvent("serve.oom", req->id, e.what());
  } catch (const fault::FaultError& e) {
    failed = true;
    RecordServeEvent("serve.fault", req->id, e.what());
  }

  // Admit the whole payload into the content-addressed cache when it fits.
  // This runs before `done` is published: the streamer cannot close the
  // client's stream until then, so by the time any client has seen this
  // response, a repeat of its fingerprint is already a hit.
  if (!failed && !stats.cancelled) {
    std::uint64_t total = 0;
    for (int w = 0; w < req->gen.workers; ++w) {
      std::error_code ec;
      total += std::filesystem::file_size(ShardPath(prefix, w, format), ec);
      if (ec) total = ~std::uint64_t{0};
    }
    if (total <= cache_->entry_cap()) {
      try {
        // Attribute the staging buffer to this request's budget so an
        // operator cap bounds it like any other per-request allocation.
        ScopedAllocation staging(
            &budget, total,
            budget.Tag(("serve.req." + std::to_string(req->id)).c_str()));
        std::string payload;
        payload.reserve(static_cast<std::size_t>(total));
        bool ok = true;
        for (int w = 0; w < req->gen.workers && ok; ++w) {
          std::FILE* f =
              std::fopen(ShardPath(prefix, w, format).c_str(), "rb");
          if (f == nullptr) {
            ok = false;
            break;
          }
          char buf[64 * 1024];
          std::size_t n;
          while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
            payload.append(buf, n);
          }
          ok = std::ferror(f) == 0;
          std::fclose(f);
        }
        if (ok) cache_->InsertGraph(req->fingerprint, std::move(payload));
      } catch (const OomError&) {
        // Budget too tight for staging: the graph just isn't cached.
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(req->mu);
    req->done = true;
    req->failed = failed;
    req->cancelled = stats.cancelled;
  }
  req->cv.notify_all();
  streamer.join();

  // A request that streamed every byte completed, even if Stop() flipped its
  // cancel flag after the fact; one whose stream aborted was cancelled.
  const bool cancelled = !failed && (stats.cancelled || !req->streamed_all);
  const double request_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - req->accept_time)
          .count();
  obs::GetHistogram("serve.request_ms")
      ->Observe(static_cast<std::uint64_t>(request_ms));

  if (failed) {
    obs::GetCounter("serve.failed")->Add(1);
  } else if (cancelled) {
    obs::GetCounter("serve.cancelled")->Add(1);
    RecordServeEvent("serve.cancel", req->id, req->gen.tenant);
  } else {
    obs::GetCounter("serve.completed")->Add(1);
    obs::GetCounter("serve.tenant." + req->gen.tenant + ".bytes_streamed")
        ->Add(req->bytes_streamed);
    RecordServeEvent("serve.done", req->id,
                     req->gen.tenant + " bytes=" +
                         std::to_string(req->bytes_streamed));
  }

  for (int w = 0; w < req->gen.workers; ++w) {
    const std::string shard = ShardPath(prefix, w, format);
    std::remove(shard.c_str());
    if (format == "csr6") {
      std::remove(format::Csr6Writer::SidecarPath(shard).c_str());
    }
  }
}

void ServeDaemon::StreamRequest(const std::shared_ptr<Request>& req) {
  const std::string prefix = work_dir_ + "/req" + std::to_string(req->id);
  const std::string& channel = req->channel;
  const std::size_t block_bytes = std::max<std::size_t>(
      options_.stream_block_bytes, 4 * 1024);
  obs::Counter* streamed_counter = obs::GetCounter("serve.bytes_streamed");

  auto abort_stream = [&](const char* why) {
    req->cancel.store(true);
    req->cv.notify_all();
    server_.CloseChannel(channel, /*graceful=*/false);
    RecordServeEvent("serve.stream_abort", req->id, why);
  };

  // Wait for the response to flush and the connection to subscribe. The
  // handler subscribes on the service thread right after admission, so this
  // resolves in microseconds unless the client vanished immediately.
  const auto subscribe_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.stall_timeout_ms);
  while (server_.SubscriberCount(channel) == 0) {
    if (req->cancel.load()) return;
    if (std::chrono::steady_clock::now() > subscribe_deadline) {
      abort_stream("client never subscribed");
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<char> block(block_bytes);
  for (int shard = 0; shard < req->gen.workers; ++shard) {
    const std::string path = ShardPath(prefix, shard, req->gen.format);
    std::FILE* file = nullptr;
    std::uint64_t sent = 0;
    for (;;) {
      if (req->cancel.load()) {
        if (file != nullptr) std::fclose(file);
        abort_stream("cancelled");
        return;
      }
      std::uint64_t target = 0;
      bool done = false;
      bool failed = false;
      bool cancelled = false;
      {
        std::unique_lock<std::mutex> lk(req->mu);
        req->cv.wait_for(lk, std::chrono::milliseconds(5), [&] {
          return req->done ||
                 req->durable[static_cast<std::size_t>(shard)] > sent;
        });
        target = req->durable[static_cast<std::size_t>(shard)];
        done = req->done;
        failed = req->failed;
        cancelled = req->cancelled;
      }
      if (failed || cancelled) {
        // A cancelled run's shards are committed prefixes, not complete
        // payloads; never close them out as a well-formed stream.
        if (file != nullptr) std::fclose(file);
        abort_stream(failed ? "generation failed" : "cancelled");
        return;
      }
      if (done) {
        // Generation finished and the writers are flushed and closed: the
        // shard's final size includes Finish() tails (and the CSR6 footer)
        // that no chunk commit covered.
        std::error_code ec;
        const std::uint64_t size = std::filesystem::file_size(path, ec);
        if (ec) {
          if (file != nullptr) std::fclose(file);
          abort_stream("shard file missing");
          return;
        }
        target = size;
      }
      if (server_.SubscriberCount(channel) == 0) {
        if (file != nullptr) std::fclose(file);
        abort_stream("client disconnected");
        return;
      }

      while (sent < target) {
        if (file == nullptr) {
          file = std::fopen(path.c_str(), "rb");
          if (file == nullptr) break;  // not created yet; retry next round
        }
        // Per-request backpressure: pause while this channel's backlog is
        // above the watermark. Only this streamer waits — generation keeps
        // committing to disk and other requests' channels are independent.
        const auto stall_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.stall_timeout_ms);
        while (server_.ChannelBacklogBytes(channel) >
               options_.backlog_watermark_bytes) {
          if (req->cancel.load() || server_.SubscriberCount(channel) == 0) {
            std::fclose(file);
            abort_stream("client disconnected under backpressure");
            return;
          }
          if (std::chrono::steady_clock::now() > stall_deadline) {
            std::fclose(file);
            abort_stream("client stalled past timeout");
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(block_bytes, target - sent));
        if (std::fseek(file, static_cast<long>(sent), SEEK_SET) != 0) break;
        const std::size_t got = std::fread(block.data(), 1, want, file);
        if (got == 0) break;  // writer mid-flush; retry next round
        server_.Broadcast(channel, std::string(block.data(), got));
        sent += got;
        req->bytes_streamed += got;
        streamed_counter->Add(got);
      }
      if (done && sent >= target) break;  // shard fully streamed
    }
    if (file != nullptr) std::fclose(file);
  }

  req->streamed_all = true;
  server_.CloseChannel(channel, /*graceful=*/true);
}

}  // namespace tg::serve
