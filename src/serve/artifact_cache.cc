#include "serve/artifact_cache.h"

#include <utility>

#include "core/partitioner.h"
#include "core/trilliong.h"
#include "model/noise.h"
#include "obs/metrics.h"

namespace tg::serve {

ArtifactCache::ArtifactCache(const Options& options) : options_(options) {
  if (options_.graph_entry_max_bytes == 0) {
    options_.graph_entry_max_bytes = options_.graph_cache_bytes / 4;
  }
}

ArtifactCache::ModelEntry* ArtifactCache::ModelFor(std::uint64_t key) {
  auto it = models_.find(key);
  if (it != models_.end()) return &it->second;
  if (models_.size() >= options_.max_models && !model_age_.empty()) {
    // Age out the oldest model. In-flight runs keep their artifacts alive
    // through their shared_ptr pins; only the memoization is lost.
    models_.erase(model_age_.front());
    model_age_.pop_front();
  }
  model_age_.push_back(key);
  return &models_[key];
}

std::shared_ptr<const std::vector<VertexId>> ArtifactCache::PartitionPlan(
    const GenRequest& request, bool* computed) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelEntry* entry = ModelFor(ModelKey(request));
  auto it = entry->plans.find(request.workers);
  if (it != entry->plans.end()) {
    if (computed != nullptr) *computed = false;
    return it->second;
  }
  // Building under mu_ is deliberate: the closed-form CDF inversion is
  // milliseconds even at max scale, and holding the lock makes concurrent
  // identical requests share one build instead of racing duplicates.
  const model::NoiseVector noise = core::MakeRunNoise(ToConfig(request));
  auto plan = std::make_shared<const std::vector<VertexId>>(
      core::PartitionByCdf(noise, request.workers));
  entry->plans[request.workers] = plan;
  obs::GetCounter("serve.cache.plan_builds")->Add(1);
  if (computed != nullptr) *computed = true;
  return plan;
}

std::shared_ptr<const core::AvsPrefixTables> ArtifactCache::PrefixTables(
    const GenRequest& request, bool* built) {
  if (built != nullptr) *built = false;
  // Mirror AvsRangeGenerator's eligibility: the table kernel only runs for
  // plain doubles with every Section 4.3 idea enabled (serve requests keep
  // the default determiner, so use_prefix_tables is the only lever).
  if (request.precision != "double" || !request.use_prefix_tables) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ModelEntry* entry = ModelFor(ModelKey(request));
  if (entry->tables == nullptr) {
    const model::NoiseVector noise = core::MakeRunNoise(ToConfig(request));
    auto tables = std::make_shared<core::AvsPrefixTables>();
    tables->Build(noise);
    entry->tables = tables;
    obs::GetCounter("serve.cache.table_builds")->Add(1);
    obs::GetGauge("serve.cache.table_bytes")
        ->Add(static_cast<double>(tables->MemoryBytes()));
    if (built != nullptr) *built = true;
  }
  return entry->tables;
}

std::shared_ptr<const std::string> ArtifactCache::LookupGraph(
    std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(fingerprint);
  if (it == graphs_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

bool ArtifactCache::InsertGraph(std::uint64_t fingerprint,
                                std::string payload) {
  const std::uint64_t bytes = payload.size();
  if (options_.graph_cache_bytes == 0 || bytes == 0 ||
      bytes > options_.graph_entry_max_bytes ||
      bytes > options_.graph_cache_bytes) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.count(fingerprint) != 0) return true;  // raced: already cached
  while (graph_bytes_ + bytes > options_.graph_cache_bytes && !lru_.empty()) {
    const GraphEntry& victim = lru_.back();
    graph_bytes_ -= victim.payload->size();
    graphs_.erase(victim.fingerprint);
    lru_.pop_back();
  }
  lru_.push_front(GraphEntry{
      fingerprint, std::make_shared<const std::string>(std::move(payload))});
  graphs_[fingerprint] = lru_.begin();
  graph_bytes_ += bytes;
  obs::GetGauge("serve.cache.graph_bytes")
      ->Set(static_cast<double>(graph_bytes_));
  obs::GetGauge("serve.cache.graph_entries")
      ->Set(static_cast<double>(graphs_.size()));
  return true;
}

std::uint64_t ArtifactCache::graph_bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_bytes_;
}

std::size_t ArtifactCache::graph_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace tg::serve
