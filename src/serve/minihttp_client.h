// serve/minihttp_client.h — a deliberately small blocking HTTP/1.1 client,
// just enough to exercise the serve daemon from tests and benches: one
// request per connection, chunked and Content-Length bodies, streaming
// consumption with an optional per-read callback (for disconnect tests and
// time-to-first-byte measurements). Not a general client; no TLS, no
// keep-alive, no redirects.
#ifndef TRILLIONG_SERVE_MINIHTTP_CLIENT_H_
#define TRILLIONG_SERVE_MINIHTTP_CLIENT_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>

namespace tg::serve {

struct ClientResponse {
  /// -1 when the request failed before a status line arrived (connect
  /// failure, connection reset); `error` says why.
  int status = -1;
  /// Header names lower-cased.
  std::map<std::string, std::string> headers;
  /// Full body, de-chunked when the transfer was chunked.
  std::string body;
  /// True when the connection ended before the body was complete (server
  /// abort mid-stream — the daemon's cancel path does this deliberately).
  bool truncated = false;
  std::string error;
};

struct ClientOptions {
  /// Per-read socket timeout; a stream idle this long counts as truncated.
  int timeout_ms = 30000;
  /// Called with each body fragment as it arrives (already de-chunked).
  /// Returning false closes the socket immediately — mid-stream client
  /// disconnect, exactly what the cancellation tests need.
  std::function<bool(const char* data, std::size_t n)> on_body;
};

/// POSTs `body` to http://<host>:<port><path> and blocks until the response
/// is complete (or truncated / errored).
ClientResponse HttpPost(const std::string& host, int port,
                        const std::string& path, const std::string& body,
                        const std::string& content_type = "application/json",
                        const ClientOptions& options = {});

/// GET counterpart, for /metrics and friends.
ClientResponse HttpGet(const std::string& host, int port,
                       const std::string& path,
                       const ClientOptions& options = {});

}  // namespace tg::serve

#endif  // TRILLIONG_SERVE_MINIHTTP_CLIENT_H_
