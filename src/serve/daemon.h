// serve/daemon.h — generation as a service: the multi-tenant tg::serve
// daemon (ROADMAP item 1's control plane, ISSUE: tg::serve).
//
// One HTTP port carries both planes. POST /generate takes a JSON request
// (serve/request.h — the same knobs as gen_cli) and streams the graph back
// in the requested format over chunked transfer; every other path is the
// live observability plane (obs/serve/admin_server.h): /metrics,
// /report.json, /events, /healthz, ... with serve.* metrics wired in.
//
// Life of a request:
//
//   validate -> 400 | cache hit -> whole payload from memory (X-TG-Cache:
//   hit) | admit -> 429/503 when over caps | stream.
//
// A streamed request generates into per-worker shard files in the daemon's
// work dir, riding the deterministic chunk-commit protocol: the commit hook
// checkpoints each shard (ResumableSink::CommitState) and publishes the
// shard's durable byte count, and a per-request streamer thread tails the
// durable prefixes in shard order, broadcasting blocks onto the request's
// HTTP channel. Backpressure is per request: a slow client grows its
// channel backlog past the watermark and only its streamer pauses —
// generation keeps committing to disk, other tenants' streams are
// untouched. A disconnected client (subscriber count drops to zero, or the
// backlog stalls past the timeout) flips the request's cancel flag;
// generation stops at the next chunk boundary, exactly as if the process
// had crashed there — the committed prefix is the prefix an uncancelled run
// would have written.
//
// All tenants share one persistent worker pool (SchedulerOptions::
// worker_runner): admission bounds concurrent requests and per-tenant
// in-flight counts (429 + Retry-After beyond them), so one tenant cannot
// monopolize the pool or the queue. Completed graphs small enough for the
// artifact cache are kept content-addressed by ConfigFingerprint and served
// from memory on repeat; prefix tables and partition plans are memoized
// across requests regardless of size (serve/artifact_cache.h).
//
// docs/SERVING.md is the operator's guide.
#ifndef TRILLIONG_SERVE_DAEMON_H_
#define TRILLIONG_SERVE_DAEMON_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http_server.h"
#include "serve/artifact_cache.h"
#include "serve/request.h"
#include "storage/temp_dir.h"
#include "util/status.h"

namespace tg::serve {

struct DaemonOptions {
  /// 0 binds an ephemeral port (read it back from port()).
  int port = 0;
  std::string bind_address = "127.0.0.1";

  /// Requests generating at once; beyond this they queue.
  int max_concurrent = 2;
  /// Admission queue depth beyond the active set; 429 past it.
  int max_queued = 8;
  /// One tenant's in-flight (queued + active) ceiling; 429 past it.
  int per_tenant_inflight = 2;
  /// Threads in the shared generation pool all tenants' chunks run on.
  int worker_threads = 4;

  /// Validation ceilings (serve/request.h).
  RequestLimits limits;

  /// POST body cap handed to the HTTP server (411/413 semantics there).
  std::size_t max_body_bytes = 64 * 1024;

  /// Whole-graph cache (0 disables); entry cap defaults to a quarter.
  std::uint64_t cache_bytes = 256ULL << 20;
  std::uint64_t cache_entry_max_bytes = 0;

  /// Streamer block size and the per-connection backlog watermark above
  /// which the request's streamer pauses.
  std::size_t stream_block_bytes = 256 * 1024;
  std::size_t backlog_watermark_bytes = 4ULL << 20;
  /// A streamer blocked this long with no progress (client neither reading
  /// nor disconnecting cleanly) cancels the request.
  int stall_timeout_ms = 30000;

  /// Per-request logical memory cap (MemoryBudget); 0 tracks only.
  std::uint64_t request_mem_budget_bytes = 0;

  /// Shard files of in-flight requests live here; empty creates a private
  /// temp dir for the daemon's lifetime.
  std::string work_dir;

  /// Merged into /report.json meta.
  std::map<std::string, std::string> meta;
};

class ServeDaemon {
 public:
  ServeDaemon();   ///< out of line: members hold incomplete types here
  ~ServeDaemon();  ///< Stop()s if still running

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  Status Start(const DaemonOptions& options);

  /// Graceful shutdown: new requests get 503, queued and active ones run to
  /// completion, then everything stops. The SIGINT/SIGTERM path.
  void Drain();

  /// Immediate shutdown: cancels in-flight requests at their next chunk
  /// boundary and aborts their streams.
  void Stop();

  bool running() const { return server_.running(); }
  int port() const { return server_.port(); }

  /// In-flight (queued + active) requests right now; exposed for tests.
  int inflight() const;

 private:
  struct Request;
  class WorkerPool;

  net::HttpResponse Handle(const net::HttpRequest& request);
  net::HttpResponse HandleGenerate(const net::HttpRequest& request);
  void ExecutorLoop();
  void RunRequest(const std::shared_ptr<Request>& req);
  void StreamRequest(const std::shared_ptr<Request>& req);
  void Shutdown(bool cancel_inflight);

  DaemonOptions options_;
  net::HttpServer server_;
  std::unique_ptr<ArtifactCache> cache_;
  std::unique_ptr<WorkerPool> pool_;
  std::string work_dir_;
  std::unique_ptr<storage::TempDir> owned_work_dir_;  ///< when work_dir empty
  std::chrono::steady_clock::time_point start_time_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< executors wait for work
  std::condition_variable idle_cv_;   ///< Drain waits for in-flight == 0
  std::deque<std::shared_ptr<Request>> queue_;
  std::vector<std::shared_ptr<Request>> active_;
  std::map<std::string, int> tenant_inflight_;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  bool stopping_ = false;

  std::vector<std::thread> executors_;
};

}  // namespace tg::serve

#endif  // TRILLIONG_SERVE_DAEMON_H_
