#include "serve/request.h"

#include <cmath>
#include <cstring>
#include <set>

#include "fault/journal.h"
#include "util/json.h"

namespace tg::serve {

namespace {

Status Invalid(const std::string& message) {
  return Status::InvalidArgument(message);
}

bool ValidTenant(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 64) return false;
  for (char ch : tenant) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '-';
    if (!ok) return false;
  }
  return true;
}

/// Reads an optional integral member into *out. JSON numbers are doubles, so
/// integrality and the [0, 2^53) exact range are enforced explicitly.
Status ReadUint(const json::Value& object, const std::string& key,
                std::uint64_t* out) {
  const json::Value* v = object.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number() || v->number < 0 || v->number != std::floor(v->number) ||
      v->number >= 9007199254740992.0) {
    return Invalid("'" + key + "' must be a non-negative integer");
  }
  *out = static_cast<std::uint64_t>(v->number);
  return Status::Ok();
}

Status ReadDouble(const json::Value& object, const std::string& key,
                  double* out) {
  const json::Value* v = object.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number()) return Invalid("'" + key + "' must be a number");
  *out = v->number;
  return Status::Ok();
}

Status ReadString(const json::Value& object, const std::string& key,
                  std::string* out) {
  const json::Value* v = object.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_string()) return Invalid("'" + key + "' must be a string");
  *out = v->str;
  return Status::Ok();
}

Status ReadBool(const json::Value& object, const std::string& key, bool* out) {
  const json::Value* v = object.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_bool()) return Invalid("'" + key + "' must be a boolean");
  *out = v->boolean;
  return Status::Ok();
}

std::uint64_t HashMix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the 8 value bytes; enough for cache keys (collisions only
  // cost a spurious shared-artifact miss/hit between distinct models, and
  // the whole-graph cache uses the journal's ConfigFingerprint instead).
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

Status ParseGenRequest(const std::string& json_body,
                       const RequestLimits& limits, GenRequest* out) {
  json::Value doc;
  Status parsed = json::Parse(json_body, &doc);
  if (!parsed.ok()) return Invalid("request body is not valid JSON: " +
                                   parsed.message());
  if (!doc.is_object()) return Invalid("request body must be a JSON object");

  static const std::set<std::string> kKnownKeys = {
      "tenant",  "scale",     "edge_factor", "num_edges",
      "noise",   "seed",      "a",           "b",
      "c",       "d",         "workers",     "chunks_per_worker",
      "format",  "direction", "precision",   "use_prefix_tables"};
  for (const auto& [key, value] : doc.object) {
    if (kKnownKeys.count(key) == 0) return Invalid("unknown field '" + key + "'");
  }

  GenRequest req;
  Status s;
  if (!(s = ReadString(doc, "tenant", &req.tenant)).ok()) return s;
  if (!ValidTenant(req.tenant)) {
    return Invalid("'tenant' must match [A-Za-z0-9_-]{1,64}");
  }

  std::uint64_t scale = static_cast<std::uint64_t>(req.scale);
  if (!(s = ReadUint(doc, "scale", &scale)).ok()) return s;
  if (scale < 1 || scale > static_cast<std::uint64_t>(limits.max_scale)) {
    return Invalid("'scale' must be in [1, " +
                   std::to_string(limits.max_scale) + "]");
  }
  req.scale = static_cast<int>(scale);

  if (!(s = ReadUint(doc, "edge_factor", &req.edge_factor)).ok()) return s;
  if (!(s = ReadUint(doc, "num_edges", &req.num_edges)).ok()) return s;
  if (req.num_edges == 0 && req.edge_factor == 0) {
    return Invalid("'edge_factor' must be >= 1 when 'num_edges' is not given");
  }
  // |E| bound, computed in 128 bits so edge_factor << scale cannot overflow
  // before the comparison (TrillionGConfig::NumEdges would abort instead).
  const unsigned __int128 edges =
      req.num_edges != 0
          ? static_cast<unsigned __int128>(req.num_edges)
          : static_cast<unsigned __int128>(req.edge_factor) << req.scale;
  if (edges == 0 || edges > limits.max_edges) {
    return Invalid("request asks for more than max_edges=" +
                   std::to_string(limits.max_edges) + " edges");
  }

  if (!(s = ReadDouble(doc, "noise", &req.noise)).ok()) return s;
  if (!(req.noise >= 0.0 && req.noise <= 1.0)) {
    return Invalid("'noise' must be in [0, 1]");
  }
  if (!(s = ReadUint(doc, "seed", &req.rng_seed)).ok()) return s;

  if (!(s = ReadDouble(doc, "a", &req.a)).ok()) return s;
  if (!(s = ReadDouble(doc, "b", &req.b)).ok()) return s;
  if (!(s = ReadDouble(doc, "c", &req.c)).ok()) return s;
  if (!(s = ReadDouble(doc, "d", &req.d)).ok()) return s;
  // Mirror SeedMatrix's own TG_CHECKs — those abort the process, this
  // returns a 400.
  if (!(req.a >= 0 && req.b >= 0 && req.c >= 0 && req.d >= 0) ||
      !(std::abs(req.a + req.b + req.c + req.d - 1.0) < 1e-9)) {
    return Invalid("'a'+'b'+'c'+'d' must be non-negative and sum to 1");
  }

  std::uint64_t workers = static_cast<std::uint64_t>(req.workers);
  if (!(s = ReadUint(doc, "workers", &workers)).ok()) return s;
  if (workers < 1 || workers > static_cast<std::uint64_t>(limits.max_workers)) {
    return Invalid("'workers' must be in [1, " +
                   std::to_string(limits.max_workers) + "]");
  }
  req.workers = static_cast<int>(workers);

  std::uint64_t chunks = static_cast<std::uint64_t>(req.chunks_per_worker);
  if (!(s = ReadUint(doc, "chunks_per_worker", &chunks)).ok()) return s;
  if (chunks < 1 ||
      chunks > static_cast<std::uint64_t>(limits.max_chunks_per_worker)) {
    return Invalid("'chunks_per_worker' must be in [1, " +
                   std::to_string(limits.max_chunks_per_worker) + "]");
  }
  req.chunks_per_worker = static_cast<int>(chunks);

  if (!(s = ReadString(doc, "format", &req.format)).ok()) return s;
  if (req.format != "tsv" && req.format != "adj6" && req.format != "csr6") {
    return Invalid("'format' must be one of tsv|adj6|csr6");
  }
  if (!(s = ReadString(doc, "direction", &req.direction)).ok()) return s;
  if (req.direction != "out" && req.direction != "in") {
    return Invalid("'direction' must be out|in");
  }
  if (!(s = ReadString(doc, "precision", &req.precision)).ok()) return s;
  if (req.precision != "double" && req.precision != "dd") {
    return Invalid("'precision' must be double|dd");
  }
  if (!(s = ReadBool(doc, "use_prefix_tables", &req.use_prefix_tables)).ok()) {
    return s;
  }

  *out = req;
  return Status::Ok();
}

core::TrillionGConfig ToConfig(const GenRequest& request) {
  core::TrillionGConfig config;
  config.seed = model::SeedMatrix(request.a, request.b, request.c, request.d);
  config.scale = request.scale;
  config.edge_factor = request.edge_factor;
  config.num_edges = request.num_edges;
  config.noise = request.noise;
  config.rng_seed = request.rng_seed;
  config.num_workers = request.workers;
  config.chunks_per_worker = request.chunks_per_worker;
  config.precision = request.precision == "dd"
                         ? core::Precision::kDoubleDouble
                         : core::Precision::kDouble;
  config.direction = request.direction == "in" ? core::Direction::kIn
                                               : core::Direction::kOut;
  config.determiner.use_prefix_tables = request.use_prefix_tables;
  return config;
}

std::uint64_t Fingerprint(const GenRequest& request) {
  return fault::ConfigFingerprint(ToConfig(request), request.format);
}

std::uint64_t ModelKey(const GenRequest& request) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = HashMix(h, DoubleBits(request.a));
  h = HashMix(h, DoubleBits(request.b));
  h = HashMix(h, DoubleBits(request.c));
  h = HashMix(h, DoubleBits(request.d));
  h = HashMix(h, static_cast<std::uint64_t>(request.scale));
  h = HashMix(h, DoubleBits(request.noise));
  h = HashMix(h, request.rng_seed);
  h = HashMix(h, request.direction == "in" ? 1 : 0);
  return h;
}

}  // namespace tg::serve
