// serve/artifact_cache.h — cross-request memoization for the serve daemon.
//
// TrillionG generation is a pure function of its validated parameters
// (shuffle-free AVS partitioning, per-scope RNG forking), which makes two
// kinds of reuse correct by construction:
//
//  * Model artifacts. The prefix tables (core/prefix_tables.h) and the CDF
//    partition plan (core/partitioner.h) depend only on the noise vector —
//    seed matrix, scale, noise, rng seed, direction — and, for the plan,
//    the worker count. Requests sharing a model reuse one read-only
//    instance instead of rebuilding per request; TrillionGConfig's
//    shared_prefix_tables / precomputed_boundaries inject them into the
//    run, whose output bytes are identical either way.
//
//  * Whole graphs. Small popular configurations are kept content-addressed
//    by fault::ConfigFingerprint (the hash the resume journal already uses
//    to mean "byte-identical output") and served straight from memory: a
//    repeated request skips generation entirely. LRU with a total byte cap
//    and a per-entry cap so one big graph cannot evict the popular set.
//
// All methods are thread-safe; returned artifacts are shared_ptr-pinned and
// immutable, so in-flight requests keep them alive across evictions.
#ifndef TRILLIONG_SERVE_ARTIFACT_CACHE_H_
#define TRILLIONG_SERVE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/prefix_tables.h"
#include "serve/request.h"
#include "util/common.h"

namespace tg::serve {

class ArtifactCache {
 public:
  struct Options {
    /// Total whole-graph cache budget; 0 disables graph caching (model
    /// artifacts are always memoized — they are small and always correct).
    std::uint64_t graph_cache_bytes = 0;
    /// Largest single graph admitted; 0 means graph_cache_bytes / 4.
    std::uint64_t graph_entry_max_bytes = 0;
    /// Distinct models memoized before the oldest is dropped.
    std::size_t max_models = 64;
  };

  explicit ArtifactCache(const Options& options);

  /// The memoized partition plan for (request's model, request's workers) —
  /// exactly PartitionByCdf(MakeRunNoise(config), workers), computed on
  /// first use. `*computed` reports whether this call built it (a miss).
  std::shared_ptr<const std::vector<VertexId>> PartitionPlan(
      const GenRequest& request, bool* computed);

  /// The memoized prefix tables for the request's model, or nullptr when
  /// the table kernel is ineligible for this request (dd precision or
  /// use_prefix_tables=false — the run then builds nothing to share).
  std::shared_ptr<const core::AvsPrefixTables> PrefixTables(
      const GenRequest& request, bool* built);

  /// Whole-graph lookup by ConfigFingerprint; nullptr on miss. A hit
  /// refreshes LRU recency.
  std::shared_ptr<const std::string> LookupGraph(std::uint64_t fingerprint);

  /// Admits a complete payload when it fits (per-entry cap, then total cap
  /// after LRU eviction). Returns whether the payload was kept.
  bool InsertGraph(std::uint64_t fingerprint, std::string payload);

  std::uint64_t graph_bytes_used() const;
  std::size_t graph_entries() const;

  /// Largest payload InsertGraph would admit — callers can skip staging
  /// bigger graphs in memory at all.
  std::uint64_t entry_cap() const {
    return options_.graph_cache_bytes == 0 ? 0 : options_.graph_entry_max_bytes;
  }

 private:
  struct ModelEntry {
    std::shared_ptr<const core::AvsPrefixTables> tables;  ///< null until built
    std::map<int, std::shared_ptr<const std::vector<VertexId>>> plans;
  };
  struct GraphEntry {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const std::string> payload;
  };

  ModelEntry* ModelFor(std::uint64_t key);  ///< mu_ held

  Options options_;
  mutable std::mutex mu_;
  /// Model key -> artifacts, with FIFO age order for eviction.
  std::map<std::uint64_t, ModelEntry> models_;
  std::list<std::uint64_t> model_age_;
  /// Whole-graph LRU: front of lru_ is most recently used.
  std::list<GraphEntry> lru_;
  std::map<std::uint64_t, std::list<GraphEntry>::iterator> graphs_;
  std::uint64_t graph_bytes_ = 0;
};

}  // namespace tg::serve

#endif  // TRILLIONG_SERVE_ARTIFACT_CACHE_H_
