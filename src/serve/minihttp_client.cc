#include "serve/minihttp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace tg::serve {

namespace {

class Socket {
 public:
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() {
    if (fd_ >= 0) ::close(fd_);
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  int fd() const { return fd_; }

 private:
  int fd_;
};

int Connect(const std::string& host, int port, int timeout_ms,
            std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "socket: " + std::string(std::strerror(errno));
    return -1;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect: " + std::string(std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data, std::string* error) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) {
      *error = "send: " + std::string(std::strerror(errno));
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Feeds de-chunked body bytes into the response (and the callback).
/// Returns false when the callback asked to disconnect.
bool DeliverBody(const ClientOptions& options, ClientResponse* out,
                 const char* data, std::size_t n) {
  out->body.append(data, n);
  if (options.on_body && !options.on_body(data, n)) return false;
  return true;
}

ClientResponse Execute(const std::string& host, int port,
                       const std::string& request_text,
                       const ClientOptions& options) {
  ClientResponse out;
  const int raw_fd = Connect(host, port, options.timeout_ms, &out.error);
  if (raw_fd < 0) return out;
  Socket sock(raw_fd);
  if (!SendAll(sock.fd(), request_text, &out.error)) return out;

  // Read headers.
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[16 * 1024];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      out.error = n == 0 ? "connection closed before headers"
                         : "recv: " + std::string(std::strerror(errno));
      return out;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    header_end = buf.find("\r\n\r\n");
    if (buf.size() > 1 * 1024 * 1024) {
      out.error = "response headers too large";
      return out;
    }
  }

  const std::string head = buf.substr(0, header_end);
  std::string rest = buf.substr(header_end + 4);

  // Status line: HTTP/1.1 NNN Reason
  const std::size_t sp = head.find(' ');
  if (sp == std::string::npos) {
    out.error = "malformed status line";
    return out;
  }
  out.status = std::atoi(head.c_str() + sp + 1);

  std::size_t line_start = head.find("\r\n");
  while (line_start != std::string::npos && line_start + 2 < head.size()) {
    line_start += 2;
    std::size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string value = line.substr(colon + 1);
      const std::size_t first = value.find_first_not_of(" \t");
      value = first == std::string::npos ? "" : value.substr(first);
      out.headers[Lower(line.substr(0, colon))] = value;
    }
    line_start = line_end;
  }

  const bool chunked =
      Lower(out.headers.count("transfer-encoding")
                ? out.headers["transfer-encoding"]
                : "") == "chunked";

  if (!chunked) {
    std::uint64_t content_length = 0;
    const bool has_length = out.headers.count("content-length") != 0;
    if (has_length) {
      content_length = std::strtoull(
          out.headers["content-length"].c_str(), nullptr, 10);
    }
    if (!rest.empty() && !DeliverBody(options, &out, rest.data(), rest.size()))
      return out;
    while (!has_length || out.body.size() < content_length) {
      const ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) {
        // Without Content-Length, EOF is the normal terminator.
        out.truncated = has_length && out.body.size() < content_length;
        return out;
      }
      if (!DeliverBody(options, &out, chunk, static_cast<std::size_t>(n)))
        return out;
    }
    return out;
  }

  // Chunked transfer: parse <hex-size>\r\n<data>\r\n ... 0\r\n\r\n from a
  // rolling buffer.
  std::string stream = std::move(rest);
  for (;;) {
    const std::size_t eol = stream.find("\r\n");
    if (eol == std::string::npos) {
      const ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) {
        out.truncated = true;
        return out;
      }
      stream.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::uint64_t size =
        std::strtoull(stream.substr(0, eol).c_str(), nullptr, 16);
    if (size == 0) return out;  // terminal chunk; ignore trailers
    while (stream.size() < eol + 2 + size + 2) {
      const ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) {
        // Deliver the durable part of the torn chunk, then report truncation.
        const std::size_t have =
            std::min<std::size_t>(stream.size() - (eol + 2),
                                  static_cast<std::size_t>(size));
        if (have > 0) DeliverBody(options, &out, stream.data() + eol + 2, have);
        out.truncated = true;
        return out;
      }
      stream.append(chunk, static_cast<std::size_t>(n));
    }
    if (!DeliverBody(options, &out, stream.data() + eol + 2,
                     static_cast<std::size_t>(size))) {
      return out;
    }
    stream.erase(0, eol + 2 + static_cast<std::size_t>(size) + 2);
  }
}

}  // namespace

ClientResponse HttpPost(const std::string& host, int port,
                        const std::string& path, const std::string& body,
                        const std::string& content_type,
                        const ClientOptions& options) {
  std::string request = "POST " + path + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Content-Type: " + content_type + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  return Execute(host, port, request, options);
}

ClientResponse HttpGet(const std::string& host, int port,
                       const std::string& path, const ClientOptions& options) {
  std::string request = "GET " + path + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Connection: close\r\n\r\n";
  return Execute(host, port, request, options);
}

}  // namespace tg::serve
