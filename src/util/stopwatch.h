#ifndef TRILLIONG_UTIL_STOPWATCH_H_
#define TRILLIONG_UTIL_STOPWATCH_H_

#include <ctime>

#include <chrono>

namespace tg {

/// CPU time consumed by the calling thread. Used by the cluster simulation:
/// on an oversubscribed host, per-worker CPU time is the faithful stand-in
/// for the wall time the worker would take on its own machine.
inline double ThreadCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

/// Wall-clock stopwatch used by the bench harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_STOPWATCH_H_
