#ifndef TRILLIONG_UTIL_COMMON_H_
#define TRILLIONG_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/oom_report.h"

namespace tg {

/// Vertex identifier. The paper targets up to 2^38 vertices, so 64 bits are
/// required; the on-disk formats pack IDs into 6 bytes (48 bits).
using VertexId = std::uint64_t;

/// An edge (source, destination) in a directed graph.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge& a, const Edge& b) = default;
  friend auto operator<=>(const Edge& a, const Edge& b) = default;
};

/// Thrown when a simulated per-machine memory budget is exceeded. Benches
/// catch this to report "O.O.M" rows exactly like the paper's figures, and
/// the attached report() says which machine/tag ran out and how pressure
/// built up (per-tag breakdown, headroom tail, active span stack).
class OomError : public std::runtime_error {
 public:
  explicit OomError(const std::string& what) : std::runtime_error(what) {}
  explicit OomError(OomReport report)
      : std::runtime_error(report.Summary()), report_(std::move(report)) {}

  const OomReport& report() const { return report_; }

 private:
  OomReport report_;
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "%s:%d: check failed: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace tg

/// Fatal invariant check, always on (generation correctness depends on it and
/// the cost is negligible relative to RNG work in hot loops that use it).
#define TG_CHECK(expr)                                             \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::tg::internal::CheckFailed(__FILE__, __LINE__, #expr, ""); \
    }                                                              \
  } while (0)

#define TG_CHECK_MSG(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream tg_check_stream_;                           \
      tg_check_stream_ << msg;                                       \
      ::tg::internal::CheckFailed(__FILE__, __LINE__, #expr,         \
                                  tg_check_stream_.str());           \
    }                                                                \
  } while (0)

/// Debug-only invariant check: active when NDEBUG is not defined, compiled
/// out (without evaluating the expression) in release builds. Use for checks
/// whose failure mode has a safe release-mode fallback — e.g. a mismatched
/// MemoryBudget::Release aborts in debug builds but clamps to zero in
/// release builds instead of wrapping the counter to ~2^64.
#ifndef NDEBUG
#define TG_DCHECK(expr) TG_CHECK(expr)
#define TG_DCHECK_MSG(expr, msg) TG_CHECK_MSG(expr, msg)
#else
#define TG_DCHECK(expr) \
  do {                  \
  } while (false && (expr))
#define TG_DCHECK_MSG(expr, msg) \
  do {                           \
  } while (false && (expr))
#endif

#endif  // TRILLIONG_UTIL_COMMON_H_
