#ifndef TRILLIONG_UTIL_OOM_REPORT_H_
#define TRILLIONG_UTIL_OOM_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tg {

/// Structured forensics attached to an OomError when a MemoryBudget trips.
/// Captures *what* ran out, not just that something did: the simulated
/// machine, the component tag of the failing request, the full per-tag
/// breakdown at time of death, and (when the obs layer is active) the tail
/// of the sampled headroom series plus the active trace-span stack.
///
/// This lives in util (not obs) so MemoryBudget can build one without a
/// dependency on the observability layer; the obs-only fields are filled in
/// by a hook the obs layer installs (see SetOomContextHook below).
struct OomReport {
  /// One row of the per-tag breakdown at time of death.
  struct TagUsage {
    std::string tag;
    std::uint64_t used_bytes = 0;
    std::uint64_t peak_bytes = 0;
  };

  /// Simulated machine id of the budget that tripped.
  int machine = -1;
  /// Component tag of the failing request ("untagged" for raw call sites).
  std::string tag;
  /// Size of the request that pushed the budget over its cap.
  std::uint64_t requested_bytes = 0;
  /// Registered bytes on the budget just before the failing request.
  std::uint64_t used_bytes = 0;
  std::uint64_t limit_bytes = 0;
  /// Per-tag used/peak at time of death, sorted by tag name.
  std::vector<TagUsage> breakdown;

  // --- Filled by the obs context hook (empty otherwise). ---
  /// Slash-joined active TG_SPAN stack of the throwing thread.
  std::string span_stack;
  /// Tail of the sampled mem.headroom_pct series: timestamps (seconds since
  /// sampler start) and headroom percentages, oldest first.
  std::vector<double> headroom_t;
  std::vector<double> headroom_pct;

  /// One-line summary; used as the OomError::what() message.
  std::string Summary() const;
  /// Multi-line forensic dump (summary + per-tag table + span stack).
  std::string ToString() const;
};

/// Hook invoked on the throwing thread while an OomReport is being built,
/// before the OomError leaves MemoryBudget::Allocate. The obs layer installs
/// one that fills span_stack / headroom_* (see obs::EnableMemoryObservability).
using OomContextHook = void (*)(OomReport* report);
void SetOomContextHook(OomContextHook hook);
OomContextHook GetOomContextHook();

class MemoryBudget;

/// Hook invoked from ~MemoryBudget so per-tag peaks outlive short-lived
/// budgets (benches construct one per table row). The obs layer installs one
/// that max-merges per-tag peak gauges into the global metric registry.
using BudgetRetireHook = void (*)(const MemoryBudget& budget);
void SetBudgetRetireHook(BudgetRetireHook hook);
BudgetRetireHook GetBudgetRetireHook();

}  // namespace tg

#endif  // TRILLIONG_UTIL_OOM_REPORT_H_
