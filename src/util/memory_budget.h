#ifndef TRILLIONG_UTIL_MEMORY_BUDGET_H_
#define TRILLIONG_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/oom_report.h"

namespace tg {

class MemoryBudget;

namespace internal {

/// Process-wide registry of live budgets (meyers singletons so the header
/// stays self-contained). Budgets self-register on construction; the obs
/// layer walks them to publish per-machine pressure gauges.
inline std::mutex& BudgetRegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

inline std::set<MemoryBudget*>& BudgetRegistry() {
  static std::set<MemoryBudget*> registry;
  return registry;
}

}  // namespace internal

/// Tracks logical memory consumption of the dominant data structures of a
/// generator (edge sets, shuffle buffers, CSR arrays) and enforces an optional
/// cap. This is the substitute for the paper's physical 32 GB machines: with
/// a proportionally scaled-down budget, the "O.O.M" failures of RMAT-mem /
/// FastKronecker / RMAT/p-mem at particular scales are reproduced
/// deterministically instead of by crashing a real host.
///
/// Every registration can carry a component tag (e.g. "core.scope_dedup",
/// "baseline.rmat.edge_set", "cluster.shuffle_buf") so a trip is attributable:
/// the budget keeps per-tag used/peak counters and, on OOM, throws an
/// OomError whose report() names the machine, the failing tag, and the full
/// per-tag breakdown at time of death.
///
/// Thread-safe; one instance models one machine (`machine` is the simulated
/// machine id carried into OomReport and the per-machine mem gauges).
class MemoryBudget {
 public:
  /// Per-tag accounting cell. Stable address for the budget's lifetime, so
  /// hot paths intern once via Tag() and pass the pointer to Allocate.
  struct TagStats {
    explicit TagStats(std::string name_in) : name(std::move(name_in)) {}
    const std::string name;
    std::atomic<std::uint64_t> used{0};
    std::atomic<std::uint64_t> peak{0};
  };

  /// `limit_bytes` == 0 means unlimited (tracking only).
  explicit MemoryBudget(std::uint64_t limit_bytes = 0, int machine = 0)
      : limit_bytes_(limit_bytes), machine_(machine) {
    std::lock_guard<std::mutex> lock(internal::BudgetRegistryMutex());
    internal::BudgetRegistry().insert(this);
  }

  ~MemoryBudget() {
    if (BudgetRetireHook hook = GetBudgetRetireHook()) hook(*this);
    std::lock_guard<std::mutex> lock(internal::BudgetRegistryMutex());
    internal::BudgetRegistry().erase(this);
  }

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Interns a per-tag accounting cell; the returned pointer stays valid for
  /// the budget's lifetime. Takes a mutex — intern outside hot loops.
  TagStats* Tag(std::string_view name) {
    std::lock_guard<std::mutex> lock(tags_mu_);
    auto it = tags_.find(name);
    if (it == tags_.end()) {
      it = tags_.emplace(std::string(name),
                         std::make_unique<TagStats>(std::string(name)))
               .first;
    }
    return it->second.get();
  }

  /// Registers an allocation; throws OomError (carrying a full OomReport)
  /// if the cap would be exceeded. `tag` may be null for untagged sites.
  void Allocate(std::uint64_t bytes, TagStats* tag = nullptr) {
    std::uint64_t now = used_bytes_.fetch_add(bytes) + bytes;
    if (limit_bytes_ != 0 && now > limit_bytes_) {
      used_bytes_.fetch_sub(bytes);
      ThrowOom(bytes, now - bytes, tag);
    }
    UpdatePeak(&peak_bytes_, now);
    if (tag != nullptr) {
      std::uint64_t tag_now = tag->used.fetch_add(bytes) + bytes;
      UpdatePeak(&tag->peak, tag_now);
    }
  }

  /// Drops a previous registration. A release larger than the outstanding
  /// registration is a caller bug: it aborts in debug builds and clamps the
  /// counter to zero in release builds (instead of wrapping to ~2^64).
  void Release(std::uint64_t bytes, TagStats* tag = nullptr) {
    SubClamped(&used_bytes_, bytes);
    if (tag != nullptr) SubClamped(&tag->used, bytes);
  }

  /// Replaces a previous registration of `old_bytes` with `new_bytes`
  /// (e.g. when a hash set grows).
  void Resize(std::uint64_t old_bytes, std::uint64_t new_bytes,
              TagStats* tag = nullptr) {
    if (new_bytes >= old_bytes) {
      Allocate(new_bytes - old_bytes, tag);
    } else {
      Release(old_bytes - new_bytes, tag);
    }
  }

  /// Drops every outstanding registration, total and per tag (peaks are
  /// kept). Used at phase barriers where a machine's buffers are handed off
  /// wholesale (e.g. after a shuffle the outboxes become the inboxes).
  void ReleaseAll() {
    used_bytes_.store(0);
    std::lock_guard<std::mutex> lock(tags_mu_);
    for (auto& [name, tag] : tags_) tag->used.store(0);
  }

  std::uint64_t used_bytes() const { return used_bytes_.load(); }
  std::uint64_t peak_bytes() const { return peak_bytes_.load(); }
  std::uint64_t limit_bytes() const { return limit_bytes_; }
  int machine() const { return machine_; }

  void ResetPeak() {
    peak_bytes_.store(used_bytes_.load());
    std::lock_guard<std::mutex> lock(tags_mu_);
    for (auto& [name, tag] : tags_) tag->peak.store(tag->used.load());
  }

  /// Snapshot of the per-tag used/peak counters, sorted by tag name.
  std::vector<OomReport::TagUsage> TagBreakdown() const {
    std::vector<OomReport::TagUsage> out;
    std::lock_guard<std::mutex> lock(tags_mu_);
    out.reserve(tags_.size());
    for (const auto& [name, tag] : tags_) {
      out.push_back({name, tag->used.load(), tag->peak.load()});
    }
    return out;
  }

  /// Visits every live budget in the process under the registry lock. The
  /// obs layer uses this to publish per-machine used/headroom gauges without
  /// budgets having to know about the metric registry.
  static void ForEachBudget(
      const std::function<void(const MemoryBudget&)>& fn) {
    std::lock_guard<std::mutex> lock(internal::BudgetRegistryMutex());
    for (const MemoryBudget* budget : internal::BudgetRegistry()) {
      fn(*budget);
    }
  }

 private:
  static void UpdatePeak(std::atomic<std::uint64_t>* peak_cell,
                         std::uint64_t now) {
    std::uint64_t peak = peak_cell->load();
    while (now > peak && !peak_cell->compare_exchange_weak(peak, now)) {
    }
  }

  static void SubClamped(std::atomic<std::uint64_t>* cell,
                         std::uint64_t bytes) {
    std::uint64_t cur = cell->load();
    TG_DCHECK_MSG(cur >= bytes, "memory budget release underflow: releasing "
                                    << bytes << " bytes with only " << cur
                                    << " registered");
    while (true) {
      std::uint64_t next = cur >= bytes ? cur - bytes : 0;
      if (cell->compare_exchange_weak(cur, next)) return;
    }
  }

  [[noreturn]] void ThrowOom(std::uint64_t requested, std::uint64_t used,
                             const TagStats* tag) {
    OomReport report;
    report.machine = machine_;
    report.tag = tag != nullptr ? tag->name : "untagged";
    report.requested_bytes = requested;
    report.used_bytes = used;
    report.limit_bytes = limit_bytes_;
    report.breakdown = TagBreakdown();
    if (OomContextHook hook = GetOomContextHook()) hook(&report);
    throw OomError(std::move(report));
  }

  const std::uint64_t limit_bytes_;
  const int machine_;
  std::atomic<std::uint64_t> used_bytes_{0};
  std::atomic<std::uint64_t> peak_bytes_{0};
  mutable std::mutex tags_mu_;
  std::map<std::string, std::unique_ptr<TagStats>, std::less<>> tags_;
};

/// RAII registration of a fixed-size allocation against a budget. The tag
/// names the component for attribution; pass a pre-interned TagStats* on hot
/// paths (one ScopedAllocation per generated scope) to skip the intern.
class ScopedAllocation {
 public:
  ScopedAllocation(MemoryBudget* budget, std::uint64_t bytes,
                   const char* tag = nullptr)
      : ScopedAllocation(budget, bytes,
                         budget != nullptr && tag != nullptr
                             ? budget->Tag(tag)
                             : nullptr) {}

  ScopedAllocation(MemoryBudget* budget, std::uint64_t bytes,
                   MemoryBudget::TagStats* tag)
      : budget_(budget), bytes_(bytes), tag_(tag) {
    if (budget_ != nullptr) budget_->Allocate(bytes_, tag_);
  }

  ~ScopedAllocation() {
    if (budget_ != nullptr) budget_->Release(bytes_, tag_);
  }

  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;

  /// Adjusts the registered size to `new_bytes`. If growing trips the cap,
  /// the OomError propagates and the registration keeps its old size (the
  /// destructor releases exactly what is still registered).
  void ResizeTo(std::uint64_t new_bytes) {
    if (budget_ != nullptr) budget_->Resize(bytes_, new_bytes, tag_);
    bytes_ = new_bytes;
  }

  std::uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_;
  std::uint64_t bytes_;
  MemoryBudget::TagStats* tag_;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_MEMORY_BUDGET_H_
