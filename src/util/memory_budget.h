#ifndef TRILLIONG_UTIL_MEMORY_BUDGET_H_
#define TRILLIONG_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/common.h"

namespace tg {

/// Tracks logical memory consumption of the dominant data structures of a
/// generator (edge sets, shuffle buffers, CSR arrays) and enforces an optional
/// cap. This is the substitute for the paper's physical 32 GB machines: with
/// a proportionally scaled-down budget, the "O.O.M" failures of RMAT-mem /
/// FastKronecker / RMAT/p-mem at particular scales are reproduced
/// deterministically instead of by crashing a real host.
///
/// Thread-safe; one instance models one machine.
class MemoryBudget {
 public:
  /// `limit_bytes` == 0 means unlimited (tracking only).
  explicit MemoryBudget(std::uint64_t limit_bytes = 0)
      : limit_bytes_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Registers an allocation; throws OomError if the cap would be exceeded.
  void Allocate(std::uint64_t bytes) {
    std::uint64_t now = used_bytes_.fetch_add(bytes) + bytes;
    if (limit_bytes_ != 0 && now > limit_bytes_) {
      used_bytes_.fetch_sub(bytes);
      throw OomError("memory budget exceeded: need " + std::to_string(now) +
                     " bytes, limit " + std::to_string(limit_bytes_));
    }
    // Monotonic peak update.
    std::uint64_t peak = peak_bytes_.load();
    while (now > peak && !peak_bytes_.compare_exchange_weak(peak, now)) {
    }
  }

  void Release(std::uint64_t bytes) { used_bytes_.fetch_sub(bytes); }

  /// Replaces a previous registration of `old_bytes` with `new_bytes`
  /// (e.g. when a hash set grows).
  void Resize(std::uint64_t old_bytes, std::uint64_t new_bytes) {
    if (new_bytes >= old_bytes) {
      Allocate(new_bytes - old_bytes);
    } else {
      Release(old_bytes - new_bytes);
    }
  }

  std::uint64_t used_bytes() const { return used_bytes_.load(); }
  std::uint64_t peak_bytes() const { return peak_bytes_.load(); }
  std::uint64_t limit_bytes() const { return limit_bytes_; }

  void ResetPeak() { peak_bytes_.store(used_bytes_.load()); }

 private:
  const std::uint64_t limit_bytes_;
  std::atomic<std::uint64_t> used_bytes_{0};
  std::atomic<std::uint64_t> peak_bytes_{0};
};

/// RAII registration of a fixed-size allocation against a budget.
class ScopedAllocation {
 public:
  ScopedAllocation(MemoryBudget* budget, std::uint64_t bytes)
      : budget_(budget), bytes_(bytes) {
    if (budget_ != nullptr) budget_->Allocate(bytes_);
  }

  ~ScopedAllocation() {
    if (budget_ != nullptr) budget_->Release(bytes_);
  }

  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;

  /// Adjusts the registered size to `new_bytes`.
  void ResizeTo(std::uint64_t new_bytes) {
    if (budget_ != nullptr) budget_->Resize(bytes_, new_bytes);
    bytes_ = new_bytes;
  }

  std::uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_;
  std::uint64_t bytes_;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_MEMORY_BUDGET_H_
