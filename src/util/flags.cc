#include "util/flags.h"

#include <cstdlib>

namespace tg {

FlagParser::FlagParser(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      std::size_t eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        // `--key value`: the next non-flag token is the value.
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool FlagParser::Has(const std::string& key) const {
  return flags_.count(key) > 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& default_value) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? default_value : it->second;
}

std::int64_t FlagParser::GetInt(const std::string& key,
                                std::int64_t default_value) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? default_value
                            : std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& key,
                             double default_value) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? default_value
                            : std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& key, bool default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> FlagParser::GetStringList(
    const std::string& key) const {
  std::vector<std::string> items;
  auto it = flags_.find(key);
  if (it == flags_.end()) return items;
  const std::string& value = it->second;
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    if (comma > start) items.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

}  // namespace tg
