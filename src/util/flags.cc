#include "util/flags.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tg {

bool ParseByteSize(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  const char* begin = text.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end == begin || value < 0) return false;
  std::string suffix;
  for (const char* p = end; *p != '\0'; ++p) {
    suffix.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  double multiplier = 1.0;
  if (!suffix.empty() && suffix != "b") {
    switch (suffix[0]) {
      case 'k':
        multiplier = 1024.0;
        break;
      case 'm':
        multiplier = 1024.0 * 1024.0;
        break;
      case 'g':
        multiplier = 1024.0 * 1024.0 * 1024.0;
        break;
      case 't':
        multiplier = 1024.0 * 1024.0 * 1024.0 * 1024.0;
        break;
      default:
        return false;
    }
    std::string rest = suffix.substr(1);
    if (!rest.empty() && rest != "b" && rest != "ib") return false;
  }
  *out = static_cast<std::uint64_t>(value * multiplier + 0.5);
  return true;
}

FlagParser::FlagParser(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      std::size_t eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        // `--key value`: the next non-flag token is the value.
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool FlagParser::Has(const std::string& key) const {
  return flags_.count(key) > 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& default_value) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? default_value : it->second;
}

std::int64_t FlagParser::GetInt(const std::string& key,
                                std::int64_t default_value) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? default_value
                            : std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& key,
                             double default_value) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? default_value
                            : std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& key, bool default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

std::uint64_t FlagParser::GetBytes(const std::string& key,
                                   std::uint64_t default_value) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  std::uint64_t bytes = 0;
  if (!ParseByteSize(it->second, &bytes)) {
    std::fprintf(stderr, "warning: --%s: unparseable byte size \"%s\"\n",
                 key.c_str(), it->second.c_str());
    return default_value;
  }
  return bytes;
}

std::vector<std::string> FlagParser::GetStringList(
    const std::string& key) const {
  std::vector<std::string> items;
  auto it = flags_.find(key);
  if (it == flags_.end()) return items;
  const std::string& value = it->second;
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    if (comma > start) items.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

}  // namespace tg
