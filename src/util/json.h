// util/json.h — a minimal JSON document model and recursive-descent parser.
// Exists so consumers of our emitted JSON (trace schema validation in tests,
// tooling that inspects Chrome trace files) can walk arbitrary documents;
// obs::RunReport keeps its own streaming typed parser for its fixed schema.
#ifndef TRILLIONG_UTIL_JSON_H_
#define TRILLIONG_UTIL_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace tg::json {

/// One JSON value. A tagged struct rather than a variant: documents here are
/// small (reports, traces), so per-node overhead does not matter.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const Value* Find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Convenience accessors with defaults for optional members.
  double NumberOr(double fallback) const {
    return is_number() ? number : fallback;
  }
  const std::string& StringOr(const std::string& fallback) const {
    return is_string() ? str : fallback;
  }
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Numbers are stored as doubles; strings support the
/// standard escapes. \uXXXX escapes decode to UTF-8 (surrogate pairs
/// combine; unpaired surrogates become U+FFFD), so multi-byte content in
/// paths and plan strings survives a round trip.
Status Parse(const std::string& text, Value* out);

/// Decodes one \uXXXX escape whose four hex digits start at *p (just past
/// the 'u'), appends the code point UTF-8-encoded to `out`, and advances
/// *p past the consumed digits. A UTF-16 high surrogate followed by a
/// `\uXXXX` low surrogate consumes both and yields the combined code point;
/// unpaired surrogates yield U+FFFD. Returns false when fewer than four hex
/// digits are available (the escape is malformed). Shared by the DOM parser
/// above and obs::RunReport's streaming parser.
bool DecodeUnicodeEscape(const char** p, const char* end, std::string* out);

}  // namespace tg::json

#endif  // TRILLIONG_UTIL_JSON_H_
