#ifndef TRILLIONG_UTIL_STATUS_H_
#define TRILLIONG_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace tg {

/// Lightweight status type for recoverable errors (chiefly file I/O), in the
/// style of RocksDB's Status. Programming errors use TG_CHECK instead.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kIoError,
    kInvalidArgument,
    kCorruption,
    kNotFound,
  };

  Status() = default;

  static Status Ok() { return Status(); }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable one-line rendering, e.g. "IoError: open failed".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_STATUS_H_
