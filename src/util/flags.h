#ifndef TRILLIONG_UTIL_FLAGS_H_
#define TRILLIONG_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tg {

/// Parses a human-readable byte size: a non-negative number with an optional
/// binary suffix k/m/g/t (case-insensitive, optionally followed by "b" or
/// "ib", so "512m" == "512MB" == "512MiB" == 512 * 2^20). Fractions work
/// with suffixes ("1.5g"). Returns false on malformed input and leaves *out
/// untouched. Shared by `--mem_budget`-style flags and the benches'
/// TG_MEM_BUDGET env hook.
bool ParseByteSize(const std::string& text, std::uint64_t* out);

/// Minimal command-line parser for the example binaries. Accepts
/// `--key=value`, `--key value` (the next non-flag token becomes the value),
/// and bare `--flag` (value "true"). Because `--flag token` binds greedily,
/// boolean flags followed by a positional argument must use the `=` form
/// (`--flag=true positional`); remaining non-flag tokens are collected in
/// order as positionals.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& key, std::int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Byte-size flag via ParseByteSize: `--mem_budget 512m`, `--mem_budget
  /// 2g`. A malformed value warns on stderr and falls back to the default.
  std::uint64_t GetBytes(const std::string& key,
                         std::uint64_t default_value) const;

  /// Comma-separated list flag: `--skip a,b,c` -> {"a","b","c"}. Empty
  /// items are dropped; an absent flag yields an empty vector.
  std::vector<std::string> GetStringList(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_FLAGS_H_
