#ifndef TRILLIONG_UTIL_FLAGS_H_
#define TRILLIONG_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tg {

/// Minimal `--key=value` / `--flag` command-line parser for the example
/// binaries. Unrecognized positional arguments are collected in order.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& key, std::int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_FLAGS_H_
