#ifndef TRILLIONG_UTIL_FLAGS_H_
#define TRILLIONG_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tg {

/// Minimal command-line parser for the example binaries. Accepts
/// `--key=value`, `--key value` (the next non-flag token becomes the value),
/// and bare `--flag` (value "true"). Because `--flag token` binds greedily,
/// boolean flags followed by a positional argument must use the `=` form
/// (`--flag=true positional`); remaining non-flag tokens are collected in
/// order as positionals.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& key, std::int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Comma-separated list flag: `--skip a,b,c` -> {"a","b","c"}. Empty
  /// items are dropped; an absent flag yields an empty vector.
  std::vector<std::string> GetStringList(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_FLAGS_H_
