#ifndef TRILLIONG_UTIL_FLAT_SET64_H_
#define TRILLIONG_UTIL_FLAT_SET64_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace tg {

/// Open-addressing hash set of 64-bit keys, used for duplicate elimination of
/// destination vertices inside one AVS scope. It is the structure whose peak
/// size realizes the O(d_max) space bound of the recursive vector model, so it
/// is deliberately compact: one 8-byte slot per entry at a 50% max load
/// factor, no per-entry allocation.
///
/// The value kEmpty (2^64-1) cannot be stored; vertex IDs are < 2^48 in all
/// supported formats so this never constrains callers.
class FlatSet64 {
 public:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  explicit FlatSet64(std::size_t expected_size = 8) { Reset(expected_size); }

  /// Clears the set and reserves capacity for `expected_size` entries.
  void Reset(std::size_t expected_size) {
    std::size_t cap = 16;
    while (cap < expected_size * 2) cap <<= 1;
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
    size_ = 0;
  }

  void Clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

  /// Inserts `key`; returns true if it was newly added.
  bool Insert(std::uint64_t key) {
    TG_CHECK(key != kEmpty);
    if ((size_ + 1) * 2 > slots_.size()) Grow();
    std::size_t i = Hash(key) & mask_;
    while (true) {
      std::uint64_t slot = slots_[i];
      if (slot == kEmpty) {
        slots_[i] = key;
        ++size_;
        return true;
      }
      if (slot == key) return false;
      i = (i + 1) & mask_;
    }
  }

  bool Contains(std::uint64_t key) const {
    std::size_t i = Hash(key) & mask_;
    while (true) {
      std::uint64_t slot = slots_[i];
      if (slot == kEmpty) return false;
      if (slot == key) return true;
      i = (i + 1) & mask_;
    }
  }

  std::size_t size() const { return size_; }

  /// Bytes held by the backing array (for peak-memory accounting).
  std::size_t MemoryBytes() const { return slots_.size() * sizeof(slots_[0]); }

  /// Visits every stored key (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::uint64_t slot : slots_) {
      if (slot != kEmpty) fn(slot);
    }
  }

 private:
  static std::size_t Hash(std::uint64_t key) {
    // SplitMix64 finalizer: full-avalanche, cheap.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  void Grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (std::uint64_t key : old) {
      if (key != kEmpty) Insert(key);
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_FLAT_SET64_H_
