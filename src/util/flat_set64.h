#ifndef TRILLIONG_UTIL_FLAT_SET64_H_
#define TRILLIONG_UTIL_FLAT_SET64_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/common.h"

namespace tg {

/// Open-addressing hash set of 64-bit keys, used for duplicate elimination of
/// destination vertices inside one AVS scope. It is the structure whose peak
/// size realizes the O(d_max) space bound of the recursive vector model, so it
/// is deliberately compact: one 8-byte slot per entry at a 50% max load
/// factor, no per-entry allocation.
///
/// Reset() is called once per scope by the generator's per-worker scratch
/// state, so it is built to be reused millions of times: the table never
/// shrinks, and clearing erases only the slots occupied since the last reset
/// (logged at insert time) whenever that beats a full wipe. A run of small
/// scopes after one huge scope therefore pays O(d) per scope, not O(d_max).
///
/// The value kEmpty (2^64-1) cannot be stored; vertex IDs are < 2^48 in all
/// supported formats so this never constrains callers.
class FlatSet64 {
 public:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  explicit FlatSet64(std::size_t expected_size = 8) { Reset(expected_size); }

  /// Clears the set and reserves capacity for `expected_size` entries. The
  /// backing table only ever grows; when the previous use touched few slots
  /// relative to the table, only those slots are wiped.
  void Reset(std::size_t expected_size) {
    std::size_t cap = 16;
    while (cap < expected_size * 2) cap <<= 1;
    if (cap > slots_.size()) {
      slots_.assign(cap, kEmpty);
      mask_ = cap - 1;
    } else if (used_.size() * 4 < slots_.size()) {
      for (std::uint32_t i : used_) slots_[i] = kEmpty;
    } else {
      std::fill(slots_.begin(), slots_.end(), kEmpty);
    }
    used_.clear();
    size_ = 0;
  }

  void Clear() { Reset(0); }

  /// Inserts `key`; returns true if it was newly added.
  bool Insert(std::uint64_t key) {
    TG_CHECK(key != kEmpty);
    if ((size_ + 1) * 2 > slots_.size()) Grow();
    std::size_t i = Hash(key) & mask_;
    while (true) {
      std::uint64_t slot = slots_[i];
      if (slot == kEmpty) {
        slots_[i] = key;
        used_.push_back(static_cast<std::uint32_t>(i));
        ++size_;
        return true;
      }
      if (slot == key) return false;
      i = (i + 1) & mask_;
    }
  }

  bool Contains(std::uint64_t key) const {
    std::size_t i = Hash(key) & mask_;
    while (true) {
      std::uint64_t slot = slots_[i];
      if (slot == kEmpty) return false;
      if (slot == key) return true;
      i = (i + 1) & mask_;
    }
  }

  std::size_t size() const { return size_; }

  /// Bytes held by the backing array plus the occupied-slot log (for
  /// peak-memory accounting).
  std::size_t MemoryBytes() const {
    return slots_.size() * sizeof(slots_[0]) +
           used_.capacity() * sizeof(used_[0]);
  }

  /// Visits every stored key (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::uint32_t i : used_) {
      if (slots_[i] != kEmpty) fn(slots_[i]);
    }
  }

 private:
  static std::size_t Hash(std::uint64_t key) {
    // SplitMix64 finalizer: full-avalanche, cheap.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  void Grow() {
    // 32-bit slot indices cap the table at 2^32 slots = 2^31 entries; far
    // above any realizable scope degree (d_max << |V| <= 2^48 only in theory;
    // a 2^31-entry scope would already exhaust the adjacency buffer first).
    TG_CHECK(slots_.size() * 2 <= (std::size_t{1} << 32));
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    size_ = 0;
    used_.clear();
    for (std::uint64_t key : old) {
      if (key != kEmpty) Insert(key);
    }
  }

  std::vector<std::uint64_t> slots_;
  /// Slot indices written since the last Reset, in insertion order. Enables
  /// the O(#entries) targeted clear; rebuilt by Grow().
  std::vector<std::uint32_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tg

#endif  // TRILLIONG_UTIL_FLAT_SET64_H_
