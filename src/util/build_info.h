// util/build_info.h — compile-time identity of this binary: git describe,
// compiler, flags, build type, and the SIMD / io_uring configuration. The
// values come from a CMake-generated header (build_info_generated.h); a
// build without it degrades to "unknown" placeholders. Surfaced as the
// `build.*` meta keys of every RunReport and as the admin server's /buildz
// endpoint, so profiles and bench baselines are attributable to an exact
// binary.
#ifndef TRILLIONG_UTIL_BUILD_INFO_H_
#define TRILLIONG_UTIL_BUILD_INFO_H_

#include <map>
#include <string>

namespace tg::util {

/// Stable map of `build.*` keys (build.git, build.compiler, build.flags,
/// build.type, build.simd, build.io_uring, build.cxx_standard). Computed
/// once; the reference stays valid for the process lifetime.
const std::map<std::string, std::string>& BuildInfoMap();

/// The same data as a single JSON object (one key per `build.*` entry,
/// prefix stripped), newline-terminated — the /buildz response body.
std::string BuildInfoJson();

}  // namespace tg::util

#endif  // TRILLIONG_UTIL_BUILD_INFO_H_
