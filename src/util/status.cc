#include "util/status.h"

namespace tg {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      name = "Ok";
      break;
    case Code::kIoError:
      name = "IoError";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
  }
  if (message_.empty()) return name;
  return std::string(name) + ": " + message_;
}

}  // namespace tg
