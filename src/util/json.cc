#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace tg::json {

namespace {

struct Parser {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool Consume(char c) {
    SkipWs();
    if (p >= end || *p != c) return false;
    ++p;
    return true;
  }

  bool Literal(const char* word) {
    const char* q = word;
    const char* save = p;
    while (*q != '\0') {
      if (p >= end || *p != *q) {
        p = save;
        return false;
      }
      ++p;
      ++q;
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return false;
      char esc = *p++;
      switch (esc) {
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (end - p < 4) return false;
          char hex[5] = {p[0], p[1], p[2], p[3], 0};
          out->push_back(
              static_cast<char>(std::strtoul(hex, nullptr, 16) & 0xFF));
          p += 4;
          break;
        }
        default:
          out->push_back(esc);  // covers \" \\ \/
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (p >= end) return false;
    switch (*p) {
      case '{': {
        ++p;
        out->type = Value::Type::kObject;
        if (Consume('}')) return true;
        do {
          std::string key;
          if (!ParseString(&key) || !Consume(':')) return false;
          if (!ParseValue(&out->object[key])) return false;
        } while (Consume(','));
        return Consume('}');
      }
      case '[': {
        ++p;
        out->type = Value::Type::kArray;
        if (Consume(']')) return true;
        do {
          out->array.emplace_back();
          if (!ParseValue(&out->array.back())) return false;
        } while (Consume(','));
        return Consume(']');
      }
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = Value::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = Value::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = Value::Type::kNull;
        return Literal("null");
      default: {
        const char* start = p;
        if (p < end && (*p == '-' || *p == '+')) ++p;
        while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                           *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                           *p == '-')) {
          ++p;
        }
        if (p == start) return false;
        out->type = Value::Type::kNumber;
        out->number = std::strtod(std::string(start, p).c_str(), nullptr);
        return true;
      }
    }
  }
};

}  // namespace

Status Parse(const std::string& text, Value* out) {
  *out = Value();
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.ParseValue(out)) {
    return Status::Corruption("malformed JSON");
  }
  parser.SkipWs();
  if (parser.p != parser.end) {
    return Status::Corruption("trailing garbage after JSON document");
  }
  return Status::Ok();
}

}  // namespace tg::json
