#include "util/json.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>

namespace tg::json {

namespace {

/// Reads exactly four hex digits into *out; false on any non-hex character.
bool ReadHex4(const char* p, std::uint32_t* out) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = p[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

void AppendUtf8(std::uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

struct Parser {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool Consume(char c) {
    SkipWs();
    if (p >= end || *p != c) return false;
    ++p;
    return true;
  }

  bool Literal(const char* word) {
    const char* q = word;
    const char* save = p;
    while (*q != '\0') {
      if (p >= end || *p != *q) {
        p = save;
        return false;
      }
      ++p;
      ++q;
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return false;
      char esc = *p++;
      switch (esc) {
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u':
          if (!DecodeUnicodeEscape(&p, end, out)) return false;
          break;
        default:
          out->push_back(esc);  // covers \" \\ \/
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (p >= end) return false;
    switch (*p) {
      case '{': {
        ++p;
        out->type = Value::Type::kObject;
        if (Consume('}')) return true;
        do {
          std::string key;
          if (!ParseString(&key) || !Consume(':')) return false;
          if (!ParseValue(&out->object[key])) return false;
        } while (Consume(','));
        return Consume('}');
      }
      case '[': {
        ++p;
        out->type = Value::Type::kArray;
        if (Consume(']')) return true;
        do {
          out->array.emplace_back();
          if (!ParseValue(&out->array.back())) return false;
        } while (Consume(','));
        return Consume(']');
      }
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = Value::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = Value::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = Value::Type::kNull;
        return Literal("null");
      default: {
        const char* start = p;
        if (p < end && (*p == '-' || *p == '+')) ++p;
        while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                           *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                           *p == '-')) {
          ++p;
        }
        if (p == start) return false;
        out->type = Value::Type::kNumber;
        out->number = std::strtod(std::string(start, p).c_str(), nullptr);
        return true;
      }
    }
  }
};

}  // namespace

bool DecodeUnicodeEscape(const char** p, const char* end, std::string* out) {
  const char* cur = *p;
  std::uint32_t cp = 0;
  if (end - cur < 4 || !ReadHex4(cur, &cp)) return false;
  cur += 4;
  if (cp >= 0xD800 && cp <= 0xDBFF) {
    // High surrogate: combine with a following \uDC00..\uDFFF low surrogate;
    // when it is absent or out of range, substitute U+FFFD and leave the
    // following escape (if any) to be decoded on its own.
    std::uint32_t lo = 0;
    if (end - cur >= 6 && cur[0] == '\\' && cur[1] == 'u' &&
        ReadHex4(cur + 2, &lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      cur += 6;
    } else {
      cp = 0xFFFD;
    }
  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
    cp = 0xFFFD;  // lone low surrogate
  }
  AppendUtf8(cp, out);
  *p = cur;
  return true;
}

Status Parse(const std::string& text, Value* out) {
  *out = Value();
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.ParseValue(out)) {
    return Status::Corruption("malformed JSON");
  }
  parser.SkipWs();
  if (parser.p != parser.end) {
    return Status::Corruption("trailing garbage after JSON document");
  }
  return Status::Ok();
}

}  // namespace tg::json
