#include "util/build_info.h"

#if defined(__has_include)
#if __has_include("util/build_info_generated.h")
#include "util/build_info_generated.h"
#endif
#endif

// Placeholders for builds that bypass CMake (the generated header carries
// the real values).
#ifndef TG_BUILD_GIT_DESCRIBE
#define TG_BUILD_GIT_DESCRIBE "unknown"
#endif
#ifndef TG_BUILD_TYPE
#define TG_BUILD_TYPE "unknown"
#endif
#ifndef TG_BUILD_CXX_FLAGS
#define TG_BUILD_CXX_FLAGS ""
#endif
#ifndef TG_BUILD_COMPILER
#define TG_BUILD_COMPILER "unknown"
#endif
#ifndef TG_BUILD_SIMD
#define TG_BUILD_SIMD "unknown"
#endif
#ifndef TG_BUILD_IO_URING
#define TG_BUILD_IO_URING "unknown"
#endif

namespace tg::util {

namespace {

std::map<std::string, std::string> MakeBuildInfo() {
  std::map<std::string, std::string> info;
  info["build.git"] = TG_BUILD_GIT_DESCRIBE;
  info["build.type"] = TG_BUILD_TYPE;
  info["build.compiler"] = TG_BUILD_COMPILER;
  info["build.flags"] = TG_BUILD_CXX_FLAGS;
  info["build.simd"] = TG_BUILD_SIMD;
  info["build.io_uring"] = TG_BUILD_IO_URING;
  info["build.cxx_standard"] = std::to_string(__cplusplus / 100 % 100);
  return info;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

const std::map<std::string, std::string>& BuildInfoMap() {
  static const std::map<std::string, std::string>* info =
      new std::map<std::string, std::string>(MakeBuildInfo());  // leaked
  return *info;
}

std::string BuildInfoJson() {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : BuildInfoMap()) {
    out += first ? "\n  " : ",\n  ";
    first = false;
    // Strip the "build." prefix: the endpoint is already scoped.
    AppendJsonEscaped(key.rfind("build.", 0) == 0 ? key.substr(6) : key,
                      &out);
    out += ": ";
    AppendJsonEscaped(value, &out);
  }
  out += "\n}\n";
  return out;
}

}  // namespace tg::util
