#include "util/oom_report.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>

namespace tg {
namespace {

std::atomic<OomContextHook> g_oom_context_hook{nullptr};
std::atomic<BudgetRetireHook> g_budget_retire_hook{nullptr};

std::string FormatBytes(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, bytes);
  return buf;
}

}  // namespace

void SetOomContextHook(OomContextHook hook) { g_oom_context_hook.store(hook); }
OomContextHook GetOomContextHook() { return g_oom_context_hook.load(); }

void SetBudgetRetireHook(BudgetRetireHook hook) {
  g_budget_retire_hook.store(hook);
}
BudgetRetireHook GetBudgetRetireHook() { return g_budget_retire_hook.load(); }

std::string OomReport::Summary() const {
  std::string out = "memory budget exceeded on machine " +
                    std::to_string(machine) + ": tag " +
                    (tag.empty() ? "untagged" : tag) + " requested " +
                    FormatBytes(requested_bytes) + " bytes (used " +
                    FormatBytes(used_bytes) + " / limit " +
                    FormatBytes(limit_bytes) + ")";
  return out;
}

std::string OomReport::ToString() const {
  std::string out = Summary();
  out += "\n";
  if (!span_stack.empty()) {
    out += "  span stack: " + span_stack + "\n";
  }
  if (!breakdown.empty()) {
    out += "  per-tag breakdown at time of death:\n";
    for (const TagUsage& usage : breakdown) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "    %-32s used %14" PRIu64 "  peak %14" PRIu64 "\n",
                    usage.tag.c_str(), usage.used_bytes, usage.peak_bytes);
      out += line;
    }
  }
  if (!headroom_pct.empty()) {
    out += "  headroom tail (pct):";
    for (std::size_t i = 0; i < headroom_pct.size(); ++i) {
      char cell[48];
      std::snprintf(cell, sizeof(cell), " %.1f", headroom_pct[i]);
      out += cell;
    }
    out += "\n";
  }
  return out;
}

}  // namespace tg
