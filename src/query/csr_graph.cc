#include "query/csr_graph.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "format/adj6.h"
#include "format/csr6_mapped.h"

namespace tg::query {

CsrGraph CsrGraph::FromEdges(VertexId num_vertices,
                             const std::vector<Edge>& edges) {
  CsrGraph graph;
  graph.offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    TG_CHECK(e.src < num_vertices && e.dst < num_vertices);
    ++graph.offsets_[e.src + 1];
  }
  for (std::size_t i = 1; i < graph.offsets_.size(); ++i) {
    graph.offsets_[i] += graph.offsets_[i - 1];
  }
  graph.edges_.resize(edges.size());
  std::vector<std::uint64_t> cursor(graph.offsets_.begin(),
                                    graph.offsets_.end() - 1);
  for (const Edge& e : edges) graph.edges_[cursor[e.src]++] = e.dst;
  return graph;
}

Status CsrGraph::FromCsr6Shards(const std::vector<std::string>& paths,
                                CsrGraph* graph) {
  // Zero-copy load: each shard is mmap'd (format/csr6_mapped.h) and its
  // 6-byte neighbors widened straight into the final edge array — no
  // intermediate per-shard vectors.
  std::vector<std::unique_ptr<format::Csr6MappedReader>> shards;
  for (const std::string& path : paths) {
    auto shard = std::make_unique<format::Csr6MappedReader>(path);
    if (!shard->status().ok()) return shard->status();
    shards.push_back(std::move(shard));
  }
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a->lo() < b->lo(); });
  VertexId expected_lo = 0;
  std::uint64_t total_edges = 0;
  for (const auto& shard : shards) {
    if (shard->lo() != expected_lo) {
      return Status::InvalidArgument("CSR6 shards do not tile the range");
    }
    expected_lo = shard->hi();
    total_edges += shard->num_edges();
  }
  const VertexId num_vertices = expected_lo;

  graph->offsets_.assign(num_vertices + 1, 0);
  graph->edges_.resize(total_edges);
  std::uint64_t base = 0;
  for (const auto& shard : shards) {
    for (VertexId u = shard->lo(); u < shard->hi(); ++u) {
      graph->offsets_[u + 1] = base + shard->EdgeOffset(u + 1);
    }
    shard->CopyAllNeighbors(graph->edges_.data() + base);
    base += shard->num_edges();
  }
  return Status::Ok();
}

Status CsrGraph::FromAdj6Files(VertexId num_vertices,
                               const std::vector<std::string>& paths,
                               CsrGraph* graph) {
  // Two passes would need re-reading files; instead collect per-vertex
  // adjacency lengths and payload in one pass, then assemble.
  std::vector<std::uint32_t> degrees(num_vertices, 0);
  std::vector<std::pair<VertexId, std::vector<VertexId>>> records;
  for (const std::string& path : paths) {
    Status status = format::Adj6Reader::ForEach(
        path, [&](VertexId u, const std::vector<VertexId>& adj) {
          TG_CHECK(u < num_vertices);
          degrees[u] += static_cast<std::uint32_t>(adj.size());
          records.emplace_back(u, adj);
        });
    if (!status.ok()) return status;
  }
  graph->offsets_.assign(num_vertices + 1, 0);
  for (VertexId u = 0; u < num_vertices; ++u) {
    graph->offsets_[u + 1] = graph->offsets_[u] + degrees[u];
  }
  graph->edges_.resize(graph->offsets_.back());
  std::vector<std::uint64_t> cursor(graph->offsets_.begin(),
                                    graph->offsets_.end() - 1);
  for (const auto& [u, adj] : records) {
    for (VertexId v : adj) graph->edges_[cursor[u]++] = v;
  }
  return Status::Ok();
}

CsrGraph CsrGraph::Transposed() const {
  CsrGraph t;
  const VertexId n = num_vertices();
  t.offsets_.assign(n + 1, 0);
  for (VertexId v : edges_) ++t.offsets_[v + 1];
  for (std::size_t i = 1; i < t.offsets_.size(); ++i) {
    t.offsets_[i] += t.offsets_[i - 1];
  }
  t.edges_.resize(edges_.size());
  std::vector<std::uint64_t> cursor(t.offsets_.begin(), t.offsets_.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : OutNeighbors(u)) t.edges_[cursor[v]++] = u;
  }
  return t;
}

}  // namespace tg::query
