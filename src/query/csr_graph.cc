#include "query/csr_graph.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "format/adj6.h"
#include "format/csr6.h"

namespace tg::query {

CsrGraph CsrGraph::FromEdges(VertexId num_vertices,
                             const std::vector<Edge>& edges) {
  CsrGraph graph;
  graph.offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    TG_CHECK(e.src < num_vertices && e.dst < num_vertices);
    ++graph.offsets_[e.src + 1];
  }
  for (std::size_t i = 1; i < graph.offsets_.size(); ++i) {
    graph.offsets_[i] += graph.offsets_[i - 1];
  }
  graph.edges_.resize(edges.size());
  std::vector<std::uint64_t> cursor(graph.offsets_.begin(),
                                    graph.offsets_.end() - 1);
  for (const Edge& e : edges) graph.edges_[cursor[e.src]++] = e.dst;
  return graph;
}

Status CsrGraph::FromCsr6Shards(const std::vector<std::string>& paths,
                                CsrGraph* graph) {
  struct Shard {
    format::Csr6Reader reader;
    explicit Shard(const std::string& path) : reader(path) {}
  };
  std::vector<std::unique_ptr<Shard>> shards;
  for (const std::string& path : paths) {
    auto shard = std::make_unique<Shard>(path);
    if (!shard->reader.status().ok()) return shard->reader.status();
    shards.push_back(std::move(shard));
  }
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) {
              return a->reader.lo() < b->reader.lo();
            });
  VertexId expected_lo = 0;
  std::uint64_t total_edges = 0;
  for (const auto& shard : shards) {
    if (shard->reader.lo() != expected_lo) {
      return Status::InvalidArgument("CSR6 shards do not tile the range");
    }
    expected_lo = shard->reader.hi();
    total_edges += shard->reader.num_edges();
  }
  const VertexId num_vertices = expected_lo;

  graph->offsets_.assign(num_vertices + 1, 0);
  graph->edges_.clear();
  graph->edges_.reserve(total_edges);
  for (const auto& shard : shards) {
    const format::Csr6Reader& r = shard->reader;
    for (VertexId u = r.lo(); u < r.hi(); ++u) {
      auto nbrs = r.Neighbors(u);
      graph->offsets_[u + 1] = graph->offsets_[u] + nbrs.size();
      graph->edges_.insert(graph->edges_.end(), nbrs.begin(), nbrs.end());
    }
  }
  return Status::Ok();
}

Status CsrGraph::FromAdj6Files(VertexId num_vertices,
                               const std::vector<std::string>& paths,
                               CsrGraph* graph) {
  // Two passes would need re-reading files; instead collect per-vertex
  // adjacency lengths and payload in one pass, then assemble.
  std::vector<std::uint32_t> degrees(num_vertices, 0);
  std::vector<std::pair<VertexId, std::vector<VertexId>>> records;
  for (const std::string& path : paths) {
    Status status = format::Adj6Reader::ForEach(
        path, [&](VertexId u, const std::vector<VertexId>& adj) {
          TG_CHECK(u < num_vertices);
          degrees[u] += static_cast<std::uint32_t>(adj.size());
          records.emplace_back(u, adj);
        });
    if (!status.ok()) return status;
  }
  graph->offsets_.assign(num_vertices + 1, 0);
  for (VertexId u = 0; u < num_vertices; ++u) {
    graph->offsets_[u + 1] = graph->offsets_[u] + degrees[u];
  }
  graph->edges_.resize(graph->offsets_.back());
  std::vector<std::uint64_t> cursor(graph->offsets_.begin(),
                                    graph->offsets_.end() - 1);
  for (const auto& [u, adj] : records) {
    for (VertexId v : adj) graph->edges_[cursor[u]++] = v;
  }
  return Status::Ok();
}

CsrGraph CsrGraph::Transposed() const {
  CsrGraph t;
  const VertexId n = num_vertices();
  t.offsets_.assign(n + 1, 0);
  for (VertexId v : edges_) ++t.offsets_[v + 1];
  for (std::size_t i = 1; i < t.offsets_.size(); ++i) {
    t.offsets_[i] += t.offsets_[i - 1];
  }
  t.edges_.resize(edges_.size());
  std::vector<std::uint64_t> cursor(t.offsets_.begin(), t.offsets_.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : OutNeighbors(u)) t.edges_[cursor[v]++] = u;
  }
  return t;
}

}  // namespace tg::query
