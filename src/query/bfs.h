// query/bfs.h — breadth-first search over a CsrGraph plus the Graph500-style
// checks (parent-tree validation, traversed-edge counting for TEPS). Proves
// generated graphs are loadable and traversable end to end; used by
// examples/graph500_pipeline and bench_fig14.
#ifndef TRILLIONG_QUERY_BFS_H_
#define TRILLIONG_QUERY_BFS_H_

#include <vector>

#include "query/csr_graph.h"
#include "util/common.h"
#include "util/status.h"

namespace tg::query {

/// BFS result in Graph500 style: a parent tree plus traversal statistics.
struct BfsResult {
  /// parent[v] == kUnreached for unvisited vertices; parent[root] == root.
  std::vector<VertexId> parent;
  std::uint64_t vertices_visited = 0;
  std::uint64_t edges_traversed = 0;
  int max_depth = 0;

  static constexpr VertexId kUnreached = ~VertexId{0};
};

/// Level-synchronous BFS from `root`, following out-edges of `graph` and,
/// when `reverse` is non-null, in-edges too (Graph500 treats the generated
/// graph as undirected; pass graph.Transposed() as `reverse` for that).
BfsResult Bfs(const CsrGraph& graph, VertexId root,
              const CsrGraph* reverse = nullptr);

/// Graph500-style result validation: the parent array must form a tree
/// rooted at `root` whose edges exist in the graph (in either direction when
/// `reverse` is provided) and whose depths are consistent (parent depth ==
/// child depth - 1).
Status ValidateBfsTree(const CsrGraph& graph, VertexId root,
                       const BfsResult& result,
                       const CsrGraph* reverse = nullptr);

/// Traversed-edges-per-second figure of merit (Graph500's TEPS).
inline double Teps(const BfsResult& result, double seconds) {
  return seconds <= 0 ? 0.0
                      : static_cast<double>(result.edges_traversed) / seconds;
}

}  // namespace tg::query

#endif  // TRILLIONG_QUERY_BFS_H_
