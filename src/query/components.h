// query/components.h — connected components via union-find with path
// halving, treating edges as undirected. Component counts/sizes feed the
// structural sanity checks on generated graphs (scale-free graphs should
// have one giant component plus dust).
#ifndef TRILLIONG_QUERY_COMPONENTS_H_
#define TRILLIONG_QUERY_COMPONENTS_H_

#include <vector>

#include "util/common.h"

namespace tg::query {

/// Union–find (disjoint sets) with path halving + union by size. Streams
/// edges, so connected components of a generated graph can be computed
/// without materializing adjacency (O(|V|) memory regardless of |E|).
class DisjointSets {
 public:
  explicit DisjointSets(VertexId n) : parent_(n), size_(n, 1) {
    for (VertexId v = 0; v < n; ++v) parent_[v] = v;
  }

  VertexId Find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  /// Returns true if the union merged two distinct components.
  bool Union(VertexId a, VertexId b) {
    VertexId ra = Find(a);
    VertexId rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_components_delta_;
    return true;
  }

  VertexId num_vertices() const {
    return static_cast<VertexId>(parent_.size());
  }

  /// Number of components (vertices minus successful unions).
  std::uint64_t NumComponents() {
    return parent_.size() + num_components_delta_;
  }

  /// Size of the component containing v.
  std::uint64_t ComponentSize(VertexId v) { return size_[Find(v)]; }

  /// Size of the largest component.
  std::uint64_t LargestComponent() {
    std::uint64_t best = 0;
    for (VertexId v = 0; v < parent_.size(); ++v) {
      if (Find(v) == v) best = std::max<std::uint64_t>(best, size_[v]);
    }
    return best;
  }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint64_t> size_;
  std::int64_t num_components_delta_ = 0;
};

}  // namespace tg::query

#endif  // TRILLIONG_QUERY_COMPONENTS_H_
