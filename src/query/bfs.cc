#include "query/bfs.h"

#include <algorithm>

namespace tg::query {

BfsResult Bfs(const CsrGraph& graph, VertexId root, const CsrGraph* reverse) {
  const VertexId n = graph.num_vertices();
  TG_CHECK(root < n);
  BfsResult result;
  result.parent.assign(n, BfsResult::kUnreached);
  result.parent[root] = root;

  std::vector<VertexId> frontier = {root};
  std::vector<VertexId> next;
  result.vertices_visited = 1;
  int depth = 0;
  while (!frontier.empty()) {
    next.clear();
    for (VertexId u : frontier) {
      auto expand = [&](std::span<const VertexId> nbrs) {
        result.edges_traversed += nbrs.size();
        for (VertexId v : nbrs) {
          if (result.parent[v] == BfsResult::kUnreached) {
            result.parent[v] = u;
            next.push_back(v);
          }
        }
      };
      expand(graph.OutNeighbors(u));
      if (reverse != nullptr) expand(reverse->OutNeighbors(u));
    }
    if (!next.empty()) ++depth;
    result.vertices_visited += next.size();
    std::swap(frontier, next);
  }
  result.max_depth = depth;
  return result;
}

namespace {

bool HasEdge(const CsrGraph& graph, VertexId u, VertexId v) {
  auto nbrs = graph.OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v) ||
         // Adjacency lists from FromEdges may be unsorted; fall back to a
         // linear scan when binary search misses (cheap for sparse rows).
         std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

}  // namespace

Status ValidateBfsTree(const CsrGraph& graph, VertexId root,
                       const BfsResult& result, const CsrGraph* reverse) {
  const VertexId n = graph.num_vertices();
  if (result.parent.size() != n) {
    return Status::InvalidArgument("parent array size mismatch");
  }
  if (result.parent[root] != root) {
    return Status::Corruption("root is not its own parent");
  }

  // Compute depths by chasing parents, with path lengths bounded by n.
  std::vector<std::int64_t> depth(n, -1);
  depth[root] = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (result.parent[v] == BfsResult::kUnreached || depth[v] >= 0) continue;
    // Walk up until a vertex with known depth (or the root).
    std::vector<VertexId> chain;
    VertexId cur = v;
    while (depth[cur] < 0) {
      chain.push_back(cur);
      VertexId p = result.parent[cur];
      if (p == BfsResult::kUnreached) {
        return Status::Corruption("reached vertex with unreached ancestor");
      }
      if (chain.size() > n) return Status::Corruption("parent cycle");
      cur = p;
    }
    std::int64_t d = depth[cur];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    VertexId p = result.parent[v];
    if (p == BfsResult::kUnreached || v == root) continue;
    if (p >= n) return Status::Corruption("parent out of range");
    // Tree edge must exist in the graph (either direction if undirected).
    bool exists = HasEdge(graph, p, v) || (reverse != nullptr && HasEdge(graph, v, p));
    if (!exists) return Status::Corruption("tree edge not in graph");
    if (depth[v] != depth[p] + 1) {
      return Status::Corruption("inconsistent BFS depths");
    }
  }
  return Status::Ok();
}

}  // namespace tg::query
