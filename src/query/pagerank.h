// query/pagerank.h — power-iteration PageRank over a CsrGraph with uniform
// teleport and dangling-mass redistribution; iterates to an L1 tolerance.
// A second "real workload" consumer of generated graphs alongside BFS.
#ifndef TRILLIONG_QUERY_PAGERANK_H_
#define TRILLIONG_QUERY_PAGERANK_H_

#include <vector>

#include "query/csr_graph.h"
#include "util/common.h"

namespace tg::query {

/// Power-iteration PageRank on an in-memory CSR graph — the second standard
/// "simple query" (after BFS) used to evaluate graph systems on generated
/// graphs. Dangling vertices (out-degree 0) redistribute their mass
/// uniformly, the textbook treatment.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 50;
  /// Stop when the L1 delta between iterations falls below this.
  double tolerance = 1e-9;
};

struct PageRankResult {
  std::vector<double> rank;  ///< sums to 1 (within floating-point error)
  int iterations = 0;
  double final_delta = 0.0;
};

PageRankResult PageRank(const CsrGraph& graph,
                        const PageRankOptions& options = {});

}  // namespace tg::query

#endif  // TRILLIONG_QUERY_PAGERANK_H_
