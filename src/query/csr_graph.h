// query/csr_graph.h — in-memory compressed-sparse-row graph, loadable from
// the on-disk formats (TSV/ADJ6/CSR6 shards). The common input of the query
// kernels (BFS, PageRank, components) and the analysis passes.
#ifndef TRILLIONG_QUERY_CSR_GRAPH_H_
#define TRILLIONG_QUERY_CSR_GRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace tg::query {

/// In-memory CSR graph over the whole vertex range [0, num_vertices).
/// The consumption side of the generator: Graph500 measures "generate, then
/// run a simple query" (Appendix D), and the paper motivates generation by
/// graph-processing evaluation — this module closes that loop.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an unsorted edge list (counting sort by source).
  static CsrGraph FromEdges(VertexId num_vertices,
                            const std::vector<Edge>& edges);

  /// Loads and concatenates CSR6 shard files (as produced by per-worker
  /// Csr6Writer sinks). Shards may arrive in any order but must tile
  /// [0, num_vertices) exactly.
  static Status FromCsr6Shards(const std::vector<std::string>& paths,
                               CsrGraph* graph);

  /// Loads ADJ6 files (any order; vertices absent from the files have
  /// degree 0).
  static Status FromAdj6Files(VertexId num_vertices,
                              const std::vector<std::string>& paths,
                              CsrGraph* graph);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  std::uint64_t num_edges() const { return edges_.size(); }

  std::uint64_t OutDegree(VertexId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  std::span<const VertexId> OutNeighbors(VertexId u) const {
    return std::span<const VertexId>(edges_.data() + offsets_[u],
                                     OutDegree(u));
  }

  /// Transposed copy (in-edges become out-edges) — needed for BFS on
  /// directed graphs treated as undirected, Graph500-style.
  CsrGraph Transposed() const;

  std::uint64_t MemoryBytes() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           edges_.size() * sizeof(VertexId);
  }

 private:
  std::vector<std::uint64_t> offsets_;  // num_vertices + 1
  std::vector<VertexId> edges_;
};

}  // namespace tg::query

#endif  // TRILLIONG_QUERY_CSR_GRAPH_H_
