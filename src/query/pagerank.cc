#include "query/pagerank.h"

#include <cmath>

namespace tg::query {

PageRankResult PageRank(const CsrGraph& graph,
                        const PageRankOptions& options) {
  const VertexId n = graph.num_vertices();
  PageRankResult result;
  if (n == 0) return result;

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    for (VertexId u = 0; u < n; ++u) {
      if (graph.OutDegree(u) == 0) dangling_mass += rank[u];
    }
    const double base =
        (1.0 - options.damping) * uniform +
        options.damping * dangling_mass * uniform;
    std::fill(next.begin(), next.end(), base);
    for (VertexId u = 0; u < n; ++u) {
      const std::uint64_t degree = graph.OutDegree(u);
      if (degree == 0) continue;
      const double share =
          options.damping * rank[u] / static_cast<double>(degree);
      for (VertexId v : graph.OutNeighbors(u)) next[v] += share;
    }
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.tolerance) break;
  }
  result.rank = std::move(rank);
  return result;
}

}  // namespace tg::query
