#ifndef TRILLIONG_CORE_TRILLIONG_H_
#define TRILLIONG_CORE_TRILLIONG_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "core/edge_determiner.h"
#include "core/scheduler.h"
#include "core/scope_sink.h"
#include "model/seed_matrix.h"
#include "util/memory_budget.h"

namespace tg::core {

class AvsPrefixTables;

/// RecVec arithmetic precision (Section 5: TrillionG uses BigDecimal; our
/// DoubleDouble plays that role — see DESIGN.md).
enum class Precision { kDouble, kDoubleDouble };

/// Scope orientation (Section 3.3): AVS-O scopes are source rows (1 x |V|),
/// AVS-I scopes are destination columns (|V| x 1).
enum class Direction { kOut, kIn };

/// Configuration of a TrillionG generation run — the public entry point of
/// the library.
struct TrillionGConfig {
  /// 2x2 seed probability matrix (Graph500 standard by default).
  model::SeedMatrix seed = model::SeedMatrix::Graph500();
  /// log2 |V|.
  int scale = 20;
  /// |E| = edge_factor * |V| unless num_edges overrides it (Graph500 uses 16).
  std::uint64_t edge_factor = 16;
  /// Explicit |E|; 0 means "use edge_factor".
  std::uint64_t num_edges = 0;
  /// NSKG noise parameter N (Appendix C); 0 disables noise.
  double noise = 0.0;
  /// Root RNG seed; the whole run is deterministic given this.
  std::uint64_t rng_seed = 42;
  /// Worker threads ("machines x threads" of the paper's cluster).
  int num_workers = 1;
  /// Work-stealing granularity: each worker's CDF-partitioned range is split
  /// into this many chunks of equal expected edge mass, and idle workers
  /// steal chunks from busy ones (src/core/scheduler.h). 1 restores the
  /// static one-range-per-worker schedule. Output is bit-identical for any
  /// value. Ignored when num_workers == 1.
  int chunks_per_worker = 16;
  Precision precision = Precision::kDouble;
  Direction direction = Direction::kOut;
  /// Ablation toggles for the three key ideas (Figure 13).
  DeterminerOptions determiner;
  /// Reject edges (u, u) during generation (the Graph500 specification
  /// discards self-loops; RMAT-family models allow them by default).
  bool exclude_self_loops = false;
  /// Optional per-machine memory cap; OomError propagates to the caller.
  MemoryBudget* budget = nullptr;

  /// Optional fault injector (not owned) consulted at every chunk boundary;
  /// see src/fault/. Setting it forces the work-stealing scheduler path even
  /// for num_workers == 1, because recovery and resume live there. When left
  /// null, Generate() arms one from TG_FAULT_PLAN if that variable is set —
  /// the chaos CI hook, mirroring TG_CHUNKS_PER_WORKER.
  fault::FaultInjector* fault_injector = nullptr;
  /// Resume support: per worker range, the next chunk seq still to commit
  /// (all earlier chunks were journaled as durable by an interrupted
  /// process). Empty for a fresh run; non-empty forces the scheduler path.
  std::vector<std::uint32_t> resume_next_seq;
  /// Called under the range commit lock after each chunk's scopes reach the
  /// sink (SchedulerOptions::on_chunk_commit). gen_cli checkpoints writers
  /// and appends to the chunk-commit journal here. Non-null forces the
  /// scheduler path.
  std::function<void(const Chunk&, ScopeSink*)> chunk_commit_hook;

  /// Cooperative cancellation flag (not owned), observed at chunk
  /// boundaries: once true, no further chunks are taken and Generate
  /// returns with GenerateStats::cancelled set. Non-null forces the
  /// scheduler path even for one worker, so the committed prefix is exactly
  /// what an uncancelled run would have committed (bit-identical resume).
  const std::atomic<bool>* cancel_flag = nullptr;

  /// Precomputed worker-range boundaries (size num_workers + 1), exactly
  /// what PartitionByCdf(noise, num_workers) would return for this config.
  /// Empty (the default) computes them; the serve daemon's artifact cache
  /// injects memoized plans here. Output bytes are identical either way.
  std::vector<VertexId> precomputed_boundaries;

  /// Prefix tables already built for this config's noise vector (not
  /// owned; must outlive the run). Skips the per-run table build when the
  /// table kernel is eligible; ignored otherwise (DoubleDouble precision,
  /// ablations). The serve daemon's artifact cache shares one instance
  /// across requests with the same model parameters.
  const AvsPrefixTables* shared_prefix_tables = nullptr;

  /// Worker-thread executor override (SchedulerOptions::worker_runner):
  /// null spawns one thread per worker; the serve daemon injects its shared
  /// persistent pool. Non-null forces the scheduler path.
  std::function<void(std::vector<std::function<void()>>&)> worker_runner;

  std::uint64_t NumVertices() const { return std::uint64_t{1} << scale; }
  std::uint64_t NumEdges() const {
    if (num_edges != 0) return num_edges;
    // edge_factor << scale overflows silently for large runs (e.g. factor
    // 2^20 at scale 48); widen to 128 bits and fail loudly instead.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(edge_factor)
        << static_cast<unsigned>(scale);
    TG_CHECK_MSG(product <= ~std::uint64_t{0},
                 "edge_factor << scale overflows uint64");
    return static_cast<std::uint64_t>(product);
  }
};

/// Aggregate statistics of a generation run.
struct GenerateStats {
  std::uint64_t num_edges = 0;
  std::uint64_t num_scopes = 0;
  std::uint64_t max_degree = 0;
  /// Peak per-scope working set over all workers — the O(d_max) bytes.
  std::uint64_t peak_scope_bytes = 0;
  std::uint64_t rec_vec_builds = 0;
  /// CDF inversions attempted, counting rejection-loop retries.
  std::uint64_t cdf_evaluations = 0;
  /// Scopes/edges produced by the table kernel (core/prefix_tables.h);
  /// zero when the descent kernel ran (ablations, DoubleDouble precision,
  /// determiner.use_prefix_tables == false).
  std::uint64_t table_scopes = 0;
  std::uint64_t table_edges = 0;
  double partition_seconds = 0.0;
  /// Wall-clock of the generation phase on this host.
  double generate_seconds = 0.0;
  /// Maximum per-worker CPU time: the simulated parallel wall-clock when
  /// every worker has its own core (used by the cluster-comparison benches
  /// on oversubscribed hosts).
  double max_worker_cpu_seconds = 0.0;
  /// Work-stealing scheduler observations (all zero / 1.0 when the static
  /// single-range path ran, i.e. num_workers == 1 or chunks_per_worker == 1).
  std::uint64_t sched_chunks = 0;
  std::uint64_t sched_steals = 0;
  /// Chunks re-executed on surviving machines after an injected crash.
  std::uint64_t sched_recovered = 0;
  /// max/mean per-worker CPU seconds; 1.0 is perfectly balanced.
  double sched_imbalance = 1.0;
  /// True when TrillionGConfig::cancel_flag stopped the run early; the
  /// outputs hold a clean committed prefix, not the whole graph.
  bool cancelled = false;
};

/// Creates one sink per worker. Called before generation starts, with the
/// worker index and its vertex range [lo, hi).
using SinkFactory = std::function<std::unique_ptr<ScopeSink>(
    int worker, VertexId lo, VertexId hi)>;

/// Runs the full TrillionG pipeline: AVS-level range partitioning (Figure 6)
/// followed by parallel scope generation under the recursive vector model
/// (Algorithm 4). Each worker streams its scopes to its own sink in
/// increasing vertex order. Deterministic given config.rng_seed, regardless
/// of num_workers.
GenerateStats Generate(const TrillionGConfig& config,
                       const SinkFactory& sink_factory);

/// Convenience: generation into a single caller-provided sink; only valid
/// with num_workers == 1.
GenerateStats GenerateToSink(const TrillionGConfig& config, ScopeSink* sink);

/// The per-level noise vector a Generate() run over `config` would build
/// (AVS-I transposes the seed; NSKG perturbs from the run's dedicated RNG
/// stream). Exposed so the serve daemon's artifact cache can precompute
/// partition plans and prefix tables bit-identical to the run's own.
model::NoiseVector MakeRunNoise(const TrillionGConfig& config);

}  // namespace tg::core

#endif  // TRILLIONG_CORE_TRILLIONG_H_
