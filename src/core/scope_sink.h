#ifndef TRILLIONG_CORE_SCOPE_SINK_H_
#define TRILLIONG_CORE_SCOPE_SINK_H_

#include <cstddef>
#include <string>

#include "util/common.h"
#include "util/status.h"

namespace tg::core {

/// Consumer of generated scopes. The AVS model produces edges grouped by
/// scope vertex (the whole adjacency of one source under AVS-O, or of one
/// destination under AVS-I), which is exactly what the ADJ/CSR writers want
/// (Section 5: "the neighbors of each vertex are generated on the same
/// machine").
///
/// One sink instance is owned by one worker; implementations need not be
/// thread-safe.
class ScopeSink {
 public:
  virtual ~ScopeSink() = default;

  /// Delivers the adjacency of scope vertex `u`. `adj` holds `n` neighbor
  /// IDs (destinations for AVS-O, sources for AVS-I); the buffer is only
  /// valid for the duration of the call. Neighbors are NOT sorted.
  virtual void ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) = 0;

  /// Flushes buffered output. Called exactly once, after the last scope.
  virtual void Finish() {}
};

/// A sink whose output can be checkpointed durably and continued by a later
/// process — the sink half of the chunk-commit protocol behind
/// `gen_cli --resume` (see fault/journal.h and docs/FAULT_TOLERANCE.md).
///
/// CommitState() pushes everything consumed so far into the kernel (so it
/// survives a process kill) and returns an opaque, whitespace-free token
/// describing the durable position; the journal stores one token per
/// committed chunk. A new process reconstructs the sink by passing the last
/// journaled token to the format writer's resume constructor (see
/// format/*), which truncates whatever was written past that point — torn
/// buffers, uncommitted chunks — and continues appending.
class ResumableSink : public ScopeSink {
 public:
  /// Makes all consumed scopes durable and renders the state token.
  /// Returns non-ok (and leaves *token untouched) if the underlying file is
  /// already in error.
  virtual Status CommitState(std::string* token) = 0;
};

/// Tag argument selecting a format writer's resume constructor: `state` is
/// the token returned by CommitState() in the interrupted process.
struct ResumeFrom {
  std::string state;
};

/// Sink that discards edges but counts them — used by benches that measure
/// pure generation speed and by tests.
class CountingSink : public ScopeSink {
 public:
  void ConsumeScope(VertexId /*u*/, const VertexId* /*adj*/,
                    std::size_t n) override {
    num_edges_ += n;
    num_scopes_ += 1;
  }

  std::uint64_t num_edges() const { return num_edges_; }
  std::uint64_t num_scopes() const { return num_scopes_; }

 private:
  std::uint64_t num_edges_ = 0;
  std::uint64_t num_scopes_ = 0;
};

}  // namespace tg::core

#endif  // TRILLIONG_CORE_SCOPE_SINK_H_
