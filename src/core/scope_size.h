#ifndef TRILLIONG_CORE_SCOPE_SIZE_H_
#define TRILLIONG_CORE_SCOPE_SIZE_H_

#include <cmath>
#include <cstdint>

#include "rng/random.h"
#include "util/common.h"

namespace tg::core {

/// Samples the size of a scope |S(u, V)| — the degree of vertex u — per
/// Theorem 1: the number of successful Bernoulli trials among n = |E| edge
/// trials with per-trial probability p = P_{u->} is Binomial(n, p),
/// approximated by Normal(np, np(1-p)). The result is rounded, clamped to
/// [0, max_degree] (a scope cannot hold more distinct neighbors than |V|).
///
/// Generic over the generator so the legacy kernel (rng::Rng) and the table
/// kernel (rng::LaneRng) share the identical formula; `RngT` must provide
/// NextGaussian().
template <typename RngT>
inline std::uint64_t SampleScopeSize(std::uint64_t num_edges, double p,
                                     std::uint64_t max_degree, RngT* rng) {
  double n = static_cast<double>(num_edges);
  double mean = n * p;
  double stddev = std::sqrt(std::max(mean * (1.0 - p), 0.0));
  double sampled = mean + stddev * rng->NextGaussian();
  if (sampled <= 0.0) return 0;
  auto size = static_cast<std::uint64_t>(std::llround(sampled));
  return size > max_degree ? max_degree : size;
}

}  // namespace tg::core

#endif  // TRILLIONG_CORE_SCOPE_SIZE_H_
