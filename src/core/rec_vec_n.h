#ifndef TRILLIONG_CORE_REC_VEC_N_H_
#define TRILLIONG_CORE_REC_VEC_N_H_

#include <vector>

#include "model/seed_matrix_n.h"
#include "rng/random.h"
#include "util/common.h"

namespace tg::core {

/// The recursive vector model generalized to n x n seed matrices — an
/// extension beyond the paper, which develops RecVec for the 2 x 2 case and
/// leaves general SKG to the FastKronecker baseline. The same two symmetries
/// hold per base-n digit:
///   * scale symmetry: within digit position k, block d's mass is block 0's
///     mass times K(u[k], d) / K(u[k], 0);
///   * translational symmetry: F_u(d * n^k + r) =
///     F_u(d * n^k) + (K(u[k], d) / K(u[k], 0)) * F_u(r).
/// So it suffices to store F_u(n^x) for x in [0, L] (L = log_n |V|) plus the
/// seed row cumulatives; edge determination costs one digit search per
/// nonzero digit of the destination, and space stays O(n * log_n |V|).
class RecVecN {
 public:
  /// `u` is the source vertex; `levels` = log_n |V|.
  RecVecN(const model::SeedMatrixN& seed, int levels, VertexId u)
      : seed_(&seed), levels_(levels), u_(u) {
    const int n = seed.n();

    // Base-n digits of u (least significant first) and n^k magnitudes.
    digits_.resize(levels);
    pow_n_.resize(levels + 1);
    pow_n_[0] = 1;
    VertexId rest = u;
    for (int k = 0; k < levels; ++k) {
      digits_[k] = static_cast<int>(rest % n);
      rest /= n;
      pow_n_[k + 1] = pow_n_[k] * static_cast<VertexId>(n);
    }
    TG_CHECK_MSG(rest == 0, "source vertex out of range");

    // F_u(n^L) = P_{u->} = prod rowsum(u[k]); then downward
    // F_u(n^x) = F_u(n^{x+1}) * K(u[x], 0) / rowsum(u[x]).
    values_.resize(levels + 1);
    double total = 1.0;
    for (int k = 0; k < levels; ++k) total *= seed.RowSum(digits_[k]);
    values_[levels] = total;
    for (int x = levels - 1; x >= 0; --x) {
      int digit = digits_[x];
      values_[x] =
          values_[x + 1] * seed.Entry(digit, 0) / seed.RowSum(digit);
    }

    // Per-position block starts and scale ratios:
    // block_start_[x][d] = F_u(d * n^x), ratio_[x][d] = K(u[x],d)/K(u[x],0).
    block_start_.assign(levels, std::vector<double>(n + 1, 0.0));
    ratio_.assign(levels, std::vector<double>(n, 0.0));
    for (int x = 0; x < levels; ++x) {
      double row_cum = 0;
      double k0 = seed.Entry(digits_[x], 0);
      TG_CHECK_MSG(k0 > 0, "RecVecN requires positive column-0 seed entries");
      for (int d = 0; d < n; ++d) {
        block_start_[x][d] = values_[x] * row_cum / k0;
        ratio_[x][d] = seed.Entry(digits_[x], d) / k0;
        row_cum += seed.Entry(digits_[x], d);
      }
      block_start_[x][n] = values_[x] * row_cum / k0;  // == F_u(n^{x+1})
    }
  }

  int levels() const { return levels_; }
  int n() const { return seed_->n(); }
  VertexId source() const { return u_; }
  double Total() const { return values_[levels_]; }

  /// F_u(n^x).
  double operator[](int x) const { return values_[x]; }

  /// F_u(digit * n^x).
  double BlockStart(int x, int digit) const {
    return block_start_[x][digit];
  }

  /// Scale-symmetry ratio K(u[x], digit) / K(u[x], 0).
  double BlockRatio(int x, int digit) const { return ratio_[x][digit]; }

  VertexId PowN(int k) const { return pow_n_[k]; }

  std::size_t MemoryBytes() const {
    return values_.size() * sizeof(double) +
           static_cast<std::size_t>(levels_) * (n() + 1) * sizeof(double) +
           static_cast<std::size_t>(levels_) * n() * sizeof(double) +
           digits_.size() * sizeof(int) + pow_n_.size() * sizeof(VertexId);
  }

 private:
  const model::SeedMatrixN* seed_;
  int levels_;
  VertexId u_;
  std::vector<int> digits_;
  std::vector<VertexId> pow_n_;
  std::vector<double> values_;
  std::vector<std::vector<double>> block_start_;
  std::vector<std::vector<double>> ratio_;
};

/// Theorem 2 generalized: repeatedly (1) binary-search the largest position
/// k with F_u(n^k) <= x, (2) search the digit d whose block contains x,
/// (3) translate x back into [0, F_u(n^k)), accumulating v += d * n^k.
/// Positions whose destination digit is zero are skipped for free, exactly
/// as in the 2 x 2 model.
inline VertexId DetermineEdgeN(const RecVecN& rv, double x) {
  VertexId v = 0;
  int hi = rv.levels();
  while (hi > 0 && x >= rv[0]) {
    // Largest k in [0, hi) with rv[k] <= x.
    int lo = 0, high = hi;
    while (high - lo > 1) {
      int mid = (lo + high) / 2;
      if (rv[mid] <= x) {
        lo = mid;
      } else {
        high = mid;
      }
    }
    int k = lo;
    // Digit d >= 1 with BlockStart(k, d) <= x < BlockStart(k, d + 1);
    // linear scan, n is tiny.
    int d = 1;
    while (d + 1 < rv.n() && rv.BlockStart(k, d + 1) <= x) ++d;
    x = (x - rv.BlockStart(k, d)) / rv.BlockRatio(k, d);
    if (x < 0) x = 0;
    v += static_cast<VertexId>(d) * rv.PowN(k);
    hi = k;
  }
  return v;
}

/// Uniform deviate for the generalized model.
inline double NextUniformForRecVecN(rng::Rng* rng, const RecVecN& rv) {
  return rng->NextDouble(rv.Total());
}

}  // namespace tg::core

#endif  // TRILLIONG_CORE_REC_VEC_N_H_
