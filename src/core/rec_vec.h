#ifndef TRILLIONG_CORE_REC_VEC_H_
#define TRILLIONG_CORE_REC_VEC_H_

#include <array>
#include <cstdint>

#include "model/noise.h"
#include "model/seed_matrix.h"
#include "numeric/double_double.h"
#include "rng/random.h"
#include "util/common.h"

namespace tg::core {

/// Maximum supported scale (6-byte vertex IDs cap |V| at 2^48).
inline constexpr int kMaxScale = 48;

/// The recursive vector RecVec of a source vertex u (Definition 2):
/// RecVec[x] = F_u(2^x) for x in [0, log|V|], where F_u is the CDF of the
/// destination distribution of u. Built in O(log|V|) using Lemma 2 and kept
/// in a fixed-size array so it lives on the stack / in CPU cache (key idea #1
/// of Section 4.3).
///
/// `Real` is the arithmetic type: `double` for everyday scales, or
/// `tg::numeric::DoubleDouble` (the paper's BigDecimal stand-in) when the
/// CDF translation of Theorem 2 needs more than 53 mantissa bits.
template <typename Real>
class RecVec {
 public:
  RecVec() = default;

  /// Builds RecVec for source vertex u. `noise` supplies the per-level seed
  /// matrices (a noise-free NoiseVector reproduces plain SKG / RMAT;
  /// Lemma 8 is realized simply by using the per-level noisy entries in the
  /// same product form).
  RecVec(const model::NoiseVector& noise, VertexId u) { Build(noise, u); }

  void Build(const model::NoiseVector& noise, VertexId u) {
    int scale = noise.levels();
    TG_CHECK(scale >= 1 && scale <= kMaxScale);
    scale_ = scale;
    u_ = u;

    // F_u(2^scale) = P_{u->} = prod over bit positions of rowsum(u[p])
    // (Lemma 1, per-level for NSKG per Lemma 7).
    Real total(1.0);
    for (int p = 0; p < scale; ++p) {
      total = total * Real(noise.RowSumAtBit(p, BitOf(u, p)));
    }
    values_[scale] = total;

    // Downward recurrence from Lemma 2's product form:
    // F_u(2^x) = F_u(2^{x+1}) * K_x(u[x], 0) / rowsum_x(u[x]),
    // since lowering x by one pins bit x of the destination to zero.
    for (int x = scale - 1; x >= 0; --x) {
      int bit = BitOf(u, x);
      Real ratio = Real(noise.EntryAtBit(x, bit, 0)) /
                   Real(noise.RowSumAtBit(x, bit));
      values_[x] = values_[x + 1] * ratio;
    }

    // Cache 1/sigma_{u[k]} per level so Theorem 2's translation is a
    // subtract + multiply in the hot loop (part of key idea #1: everything
    // derivable from the scope is precomputed once).
    for (int k = 0; k < scale; ++k) {
      inv_sigma_[k] = values_[k] / (values_[k + 1] - values_[k]);
    }
  }

  int scale() const { return scale_; }
  VertexId source() const { return u_; }

  /// RecVec[x] == F_u(2^x).
  const Real& operator[](int x) const { return values_[x]; }

  /// Total row mass P_{u->} == F_u(|V|) — the upper bound of the uniform
  /// random variable in Theorem 2.
  const Real& Total() const { return values_[scale_]; }

  /// sigma_{u[k]} (Lemma 3) computed from the stored CDF values, exactly as
  /// Algorithm 5 line 3 does: (RecVec[k+1] - RecVec[k]) / RecVec[k].
  Real Sigma(int k) const {
    return (values_[k + 1] - values_[k]) / values_[k];
  }

  /// Precomputed 1 / sigma_{u[k]} (see Build).
  Real InvSigma(int k) const { return inv_sigma_[k]; }

  /// Bytes of the structure (Section 4.2: ~ (log|V|+1) * sizeof(Real)).
  std::size_t MemoryBytes() const {
    return static_cast<std::size_t>(scale_ + 1) * sizeof(Real);
  }

 private:
  static int BitOf(VertexId u, int p) {
    return static_cast<int>((u >> p) & 1u);
  }

  std::array<Real, kMaxScale + 1> values_{};
  std::array<Real, kMaxScale> inv_sigma_{};
  int scale_ = 0;
  VertexId u_ = 0;
};

/// Draws a uniform random Real in [0, high). For DoubleDouble the value gets
/// 106 random mantissa bits so that Theorem 2's repeated translation does not
/// exhaust the randomness at extreme scales.
template <typename Real>
inline Real NextUniformReal(rng::Rng* rng, const Real& high);

template <>
inline double NextUniformReal<double>(rng::Rng* rng, const double& high) {
  return rng->NextDouble(high);
}

template <>
inline numeric::DoubleDouble NextUniformReal<numeric::DoubleDouble>(
    rng::Rng* rng, const numeric::DoubleDouble& high) {
  double hi = static_cast<double>(rng->NextUint64() >> 11) * 0x1.0p-53;
  double lo = static_cast<double>(rng->NextUint64() >> 11) * 0x1.0p-106;
  return numeric::DoubleDouble(hi, lo) * high;
}

}  // namespace tg::core

#endif  // TRILLIONG_CORE_REC_VEC_H_
