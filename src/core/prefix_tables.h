// core/prefix_tables.h — table-driven, binary-search-free CDF inversion for
// the recursive vector model. The destination distribution of a scope
// factorizes per bit level (Lemma 2), so the descent of Algorithm 5 is an
// inverse-transform over independent per-level Bernoulli splits. This file
// precomputes, per group of up to 8 consecutive levels and per 8-bit source
// pattern, the cumulative boundaries of all 2^8 destination-prefix outcomes
// plus a guide index — the path-prefix-table idea of "Linear Work Generation
// of R-MAT Graphs" (arXiv 1905.03525) applied to AVS scopes. One edge then
// costs ceil(scale/8) table draws (guide lookup + short scan + one
// renormalizing multiply each) instead of `scale` recursion steps, and the
// tables are shared by every scope, so there is no per-scope build cost at
// all. All arithmetic is plain scalar IEEE double: the inversion is
// bit-identical whether the deviates feeding it came from the AVX2 or the
// portable lane generator (docs/PERFORMANCE.md, determinism contract).
#ifndef TRILLIONG_CORE_PREFIX_TABLES_H_
#define TRILLIONG_CORE_PREFIX_TABLES_H_

#include <cstdint>
#include <vector>

#include "core/rec_vec.h"
#include "model/noise.h"
#include "util/common.h"

namespace tg::core {

/// Precomputed inversion tables for one NoiseVector. Built once per
/// generator (read-only afterwards, safe to share across workers).
///
/// Group g covers bit positions [8g, min(8(g+1), scale)) counted from the
/// LSB. Within a group, the table for source pattern s (the scope's u-bits
/// at the group's positions) stores the normalized cumulative boundaries
/// bound[P] of the 2^w destination-prefix outcomes P, ordered so that the
/// inverse transform is monotone: a deviate y uniform in [0, 1) selects the
/// outcome P with bound[P] <= y < bound[P+1], and the renormalized residual
/// (y - bound[P]) * invw[P] is again uniform in [0, 1) and independent, so
/// it feeds the next (lower) group directly — one deviate per edge, exactly
/// like Theorem 2's CDF translation, but 8 levels at a time.
class AvsPrefixTables {
 public:
  static constexpr int kGroupBits = 8;
  static constexpr int kMaxGroups = (kMaxScale + kGroupBits - 1) / kGroupBits;

  /// Per-scope resolved table pointers plus the scope's total row mass
  /// P_{u->} (the product of per-level row sums, Lemma 1 — what RecVec
  /// would have reported as Total()). Resolving once per scope keeps the
  /// per-edge loop free of index arithmetic on u.
  struct ScopeView {
    const double* bound[kMaxGroups];
    const double* invw[kMaxGroups];
    const std::uint16_t* guide[kMaxGroups];
    double total;
  };

  AvsPrefixTables() = default;

  explicit AvsPrefixTables(const model::NoiseVector& noise) { Build(noise); }

  /// Builds all tables: for every group and every source pattern, the
  /// outcome widths are products of per-level conditional bit
  /// probabilities q1 = K(b,1) / rowsum(b) (per-level noisy entries, so
  /// NSKG works unchanged).
  void Build(const model::NoiseVector& noise) {
    const int scale = noise.levels();
    TG_CHECK(scale >= 1 && scale <= kMaxScale);
    scale_ = scale;
    groups_.clear();
    for (int shift = 0; shift < scale; shift += kGroupBits) {
      Group grp;
      grp.shift = shift;
      grp.width = std::min(kGroupBits, scale - shift);
      grp.entries = 1 << grp.width;
      grp.guide_size = grp.entries * 2;
      const int patterns = grp.entries;
      grp.bound.resize(static_cast<std::size_t>(patterns) *
                       (grp.entries + 1));
      grp.invw.resize(static_cast<std::size_t>(patterns) * grp.entries);
      grp.guide.resize(static_cast<std::size_t>(patterns) * grp.guide_size);
      grp.row_mass.resize(patterns);

      std::vector<double> w(grp.entries);
      for (int s = 0; s < patterns; ++s) {
        // Outcome widths by doubling, most significant group bit first, so
        // outcome index P carries destination bit (shift + b) at bit b.
        w[0] = 1.0;
        int filled = 1;
        double mass = 1.0;
        for (int b = grp.width - 1; b >= 0; --b) {
          const int bit = grp.shift + b;
          const int ub = (s >> b) & 1;
          const double e0 = noise.EntryAtBit(bit, ub, 0);
          const double e1 = noise.EntryAtBit(bit, ub, 1);
          const double sum = e0 + e1;
          const double q1 = sum > 0.0 ? e1 / sum : 0.0;
          const double q0 = 1.0 - q1;
          for (int j = filled - 1; j >= 0; --j) {
            w[2 * j + 1] = w[j] * q1;
            w[2 * j] = w[j] * q0;
          }
          filled *= 2;
          mass *= noise.RowSumAtBit(bit, ub);
        }
        grp.row_mass[s] = mass;

        double* bound = grp.bound.data() +
                        static_cast<std::size_t>(s) * (grp.entries + 1);
        double* invw =
            grp.invw.data() + static_cast<std::size_t>(s) * grp.entries;
        bound[0] = 0.0;
        for (int p = 0; p < grp.entries; ++p) bound[p + 1] = bound[p] + w[p];
        // Absorb accumulated rounding into the top interval so every deviate
        // in [0, 1) lands in some interval and the scan below terminates.
        bound[grp.entries] = 1.0;
        for (int p = 0; p < grp.entries; ++p) {
          const double width = bound[p + 1] - bound[p];
          invw[p] = width > 0.0 ? 1.0 / width : 0.0;
        }

        // Guide index: guide[j] is the largest P with bound[P] <= j/G, so
        // the per-draw scan starts at most a few intervals short of the
        // answer (expected O(1) steps).
        std::uint16_t* guide =
            grp.guide.data() + static_cast<std::size_t>(s) * grp.guide_size;
        unsigned p = 0;
        for (int j = 0; j < grp.guide_size; ++j) {
          const double lo = static_cast<double>(j) / grp.guide_size;
          while (p + 1 < static_cast<unsigned>(grp.entries) &&
                 bound[p + 1] <= lo) {
            ++p;
          }
          guide[j] = static_cast<std::uint16_t>(p);
        }
      }
      groups_.push_back(std::move(grp));
    }
  }

  bool built() const { return !groups_.empty(); }
  int scale() const { return scale_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }

  /// Resolves the per-group table slices for source vertex u and the
  /// scope's total row mass. O(num_groups) — a handful of shifts and
  /// multiplies per scope.
  ScopeView ViewFor(VertexId u) const {
    ScopeView view;
    view.total = 1.0;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const Group& grp = groups_[g];
      const unsigned s =
          static_cast<unsigned>(u >> grp.shift) & (grp.entries - 1);
      view.bound[g] =
          grp.bound.data() + static_cast<std::size_t>(s) * (grp.entries + 1);
      view.invw[g] =
          grp.invw.data() + static_cast<std::size_t>(s) * grp.entries;
      view.guide[g] =
          grp.guide.data() + static_cast<std::size_t>(s) * grp.guide_size;
      view.total *= grp.row_mass[s];
    }
    return view;
  }

  /// Inverts one deviate y in [0, 1) into a destination vertex: the
  /// table-draw replacement for DetermineEdge's recursive descent. Highest
  /// group first, exactly mirroring the MSB-first descent order.
  VertexId Invert(const ScopeView& view, double y) const {
    VertexId v = 0;
    for (int g = static_cast<int>(groups_.size()) - 1; g >= 0; --g) {
      const Group& grp = groups_[g];
      const double* bound = view.bound[g];
      unsigned p = view.guide[g][static_cast<unsigned>(
          y * static_cast<double>(grp.guide_size))];
      while (bound[p + 1] <= y) ++p;
      v |= static_cast<VertexId>(p) << grp.shift;
      y = (y - bound[p]) * view.invw[g][p];
      // Renormalization guards: y is in [0, ~1+ulp) by construction; clamp
      // the rounding spill so the next group's guide lookup stays in range.
      if (y >= 1.0) y = 0x1.fffffffffffffp-1;
      if (y < 0.0) y = 0.0;
    }
    return v;
  }

  /// Bytes held by all tables (budget attribution, tag
  /// "core.prefix_tables").
  std::size_t MemoryBytes() const {
    std::size_t bytes = 0;
    for (const Group& grp : groups_) {
      bytes += grp.bound.size() * sizeof(double) +
               grp.invw.size() * sizeof(double) +
               grp.guide.size() * sizeof(std::uint16_t) +
               grp.row_mass.size() * sizeof(double);
    }
    return bytes;
  }

 private:
  struct Group {
    int shift = 0;       ///< bit position of the group's least level
    int width = 0;       ///< levels in this group (1..8)
    int entries = 0;     ///< 1 << width outcomes (== source patterns)
    int guide_size = 0;  ///< guide buckets per table
    std::vector<double> bound;        ///< per pattern: entries + 1
    std::vector<double> invw;         ///< per pattern: entries
    std::vector<std::uint16_t> guide; ///< per pattern: guide_size
    std::vector<double> row_mass;     ///< per pattern: group row-sum product
  };

  std::vector<Group> groups_;
  int scale_ = 0;
};

}  // namespace tg::core

#endif  // TRILLIONG_CORE_PREFIX_TABLES_H_
