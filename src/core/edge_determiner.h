#ifndef TRILLIONG_CORE_EDGE_DETERMINER_H_
#define TRILLIONG_CORE_EDGE_DETERMINER_H_

#include "core/rec_vec.h"
#include "model/noise.h"
#include "rng/random.h"
#include "util/common.h"

namespace tg::core {

/// Toggles for the three key performance ideas of Section 4.3, exposed so the
/// Figure 13 ablation can run all eight combinations. All four code paths
/// draw destinations from the identical distribution; they differ only in
/// cost.
struct DeterminerOptions {
  /// Idea #1: reuse the per-scope precomputed RecVec. When false every CDF
  /// access recomputes Lemma 2's product from the seed parameters
  /// (OnDemandCdf).
  bool reuse_rec_vec = true;
  /// Idea #2: skip zero bits via binary search on RecVec (popcount(v)
  /// iterations). When false every one of the log|V| levels is visited.
  bool reduce_recursions = true;
  /// Idea #3: reuse one random value across all recursion steps by CDF
  /// translation (Theorem 2). When false a fresh uniform deviate is drawn at
  /// each recursion step (distributionally identical, see Lemma 4).
  bool reuse_random_value = true;
  /// Table kernel: replace the per-edge descent with precomputed prefix-table
  /// inversion (core/prefix_tables.h) fed by the lane RNG
  /// (rng/lane_rng.h). Only takes effect when the three ideas above are all
  /// on and RecVec arithmetic is double; the ablation combinations and the
  /// DoubleDouble precision always use the descent kernel. Distributionally
  /// identical, different RNG stream (docs/PERFORMANCE.md).
  bool use_prefix_tables = true;
};

/// The determiners are generic over the CDF accessor `Cdf`, which must
/// provide scale(), operator[](int) -> Real, Total(), Sigma(k), InvSigma(k).
/// RecVec<Real> provides O(1) cached access; OnDemandCdf<Real> recomputes
/// per access (the Idea#1-off ablation).

/// Determines one destination vertex from a CDF and a uniform deviate
/// x in [0, cdf.Total()), implementing Theorem 2 / Algorithm 5 iteratively.
/// The produced k indices are strictly decreasing, so the binary search
/// range shrinks each step and v accumulates distinct powers of two; total
/// cost O(popcount(v) * log log|V|) CDF accesses.
template <typename Real, typename Cdf>
VertexId DetermineEdge(const Cdf& cdf, Real x) {
  VertexId v = 0;
  int hi = cdf.scale();  // search window is [0, hi); invariant: x < cdf[hi]
  while (hi > 0 && x >= cdf[0]) {
    // Largest k in [0, hi) with cdf[k] <= x (binary search, O(log log|V|)).
    int lo = 0;
    int high = hi;
    while (high - lo > 1) {
      int mid = (lo + high) / 2;
      if (cdf[mid] <= x) {
        lo = mid;
      } else {
        high = mid;
      }
    }
    int k = lo;
    // Translate x into [0, cdf[k]) using sigma_{u[k]} (Lemma 4):
    // x' = (x - F(2^k)) / sigma.
    x = (x - cdf[k]) * cdf.InvSigma(k);
    if (x < Real(0.0)) x = Real(0.0);  // floating-point guard
    v += VertexId{1} << k;
    hi = k;
  }
  return v;
}

/// Idea#2-off variant: walks every level from MSB to LSB, performing the same
/// per-level translation (log|V| iterations regardless of popcount(v)).
template <typename Real, typename Cdf>
VertexId DetermineEdgeLinear(const Cdf& cdf, Real x) {
  VertexId v = 0;
  for (int k = cdf.scale() - 1; k >= 0; --k) {
    Real fk = cdf[k];
    if (x >= fk) {
      x = (x - fk) * cdf.InvSigma(k);
      if (x < Real(0.0)) x = Real(0.0);
      v += VertexId{1} << k;
    }
  }
  return v;
}

/// Idea#3-off variants: after selecting k, draw a fresh uniform in
/// [0, cdf[k]) instead of translating the old value. Identical distribution
/// (given x uniform on [cdf[k], cdf[k+1]), the translated value is uniform
/// on [0, cdf[k])) but costs one RNG call per recursion step.
template <typename Real, typename Cdf>
VertexId DetermineEdgeFreshRandom(const Cdf& cdf, Real x, rng::Rng* rng) {
  VertexId v = 0;
  int hi = cdf.scale();
  while (hi > 0 && x >= cdf[0]) {
    int lo = 0;
    int high = hi;
    while (high - lo > 1) {
      int mid = (lo + high) / 2;
      if (cdf[mid] <= x) {
        lo = mid;
      } else {
        high = mid;
      }
    }
    int k = lo;
    x = NextUniformReal<Real>(rng, cdf[k]);
    v += VertexId{1} << k;
    hi = k;
  }
  return v;
}

/// Idea#2-off AND Idea#3-off: per-level Bernoulli walk with a fresh deviate
/// at every level — this is essentially the classic RMAT recursion
/// conditioned on the source row.
template <typename Real, typename Cdf>
VertexId DetermineEdgeLinearFreshRandom(const Cdf& cdf, Real x,
                                        rng::Rng* rng) {
  VertexId v = 0;
  for (int k = cdf.scale() - 1; k >= 0; --k) {
    Real fk = cdf[k];
    if (x >= fk) {
      x = NextUniformReal<Real>(rng, fk);
      v += VertexId{1} << k;
    } else if (k > 0) {
      // Rescale the remaining range [0, cdf[k]) with a fresh draw as well,
      // so that exactly one RNG value is consumed per level.
      x = NextUniformReal<Real>(rng, fk);
    }
  }
  return v;
}

/// Dispatcher used by the generator and the Figure 13 bench: applies the
/// Idea#2/#3 toggles (Idea#1 selects the Cdf type at the caller).
template <typename Real, typename Cdf>
VertexId DetermineEdgeWithOptions(const Cdf& cdf, Real x, rng::Rng* rng,
                                  const DeterminerOptions& opts) {
  if (opts.reduce_recursions) {
    if (opts.reuse_random_value) return DetermineEdge(cdf, x);
    return DetermineEdgeFreshRandom(cdf, x, rng);
  }
  if (opts.reuse_random_value) return DetermineEdgeLinear(cdf, x);
  return DetermineEdgeLinearFreshRandom(cdf, x, rng);
}

}  // namespace tg::core

#endif  // TRILLIONG_CORE_EDGE_DETERMINER_H_
