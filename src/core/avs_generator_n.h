#ifndef TRILLIONG_CORE_AVS_GENERATOR_N_H_
#define TRILLIONG_CORE_AVS_GENERATOR_N_H_

#include <vector>

#include "core/rec_vec_n.h"
#include "core/scope_sink.h"
#include "core/scope_size.h"
#include "model/seed_matrix_n.h"
#include "rng/random.h"
#include "util/flat_set64.h"

namespace tg::core {

/// AVS generation under the generalized n x n recursive vector model
/// (see RecVecN). Scope sizes follow Theorem 1 with the n x n row marginal
/// P_{u->} = prod_k rowsum(u[k]); destinations come from DetermineEdgeN with
/// per-scope dedup — the full TrillionG pipeline for arbitrary SKG seeds.
struct AvsNOptions {
  model::SeedMatrixN seed = model::SeedMatrixN::Example3x3();
  /// log_n |V|.
  int levels = 8;
  std::uint64_t num_edges = 1 << 20;
  std::uint64_t rng_seed = 42;
};

struct AvsNStats {
  std::uint64_t num_edges = 0;
  std::uint64_t num_scopes = 0;
  std::uint64_t max_degree = 0;
};

inline AvsNStats GenerateAvsN(const AvsNOptions& options, ScopeSink* sink) {
  const int n = options.seed.n();
  VertexId num_vertices = 1;
  for (int k = 0; k < options.levels; ++k) {
    num_vertices *= static_cast<VertexId>(n);
  }

  const rng::Rng root(options.rng_seed, /*stream=*/8);
  AvsNStats stats;
  FlatSet64 dedup;
  std::vector<VertexId> adj;
  for (VertexId u = 0; u < num_vertices; ++u) {
    rng::Rng rng = root.Fork(u);
    RecVecN rv(options.seed, options.levels, u);
    std::uint64_t degree =
        SampleScopeSize(options.num_edges, rv.Total(), num_vertices, &rng);
    if (degree == 0) continue;

    dedup.Reset(degree);
    adj.clear();
    adj.reserve(degree);
    const std::uint64_t max_attempts = 100 * degree + 10000;
    std::uint64_t attempts = 0;
    while (adj.size() < degree && attempts < max_attempts) {
      ++attempts;
      VertexId v = DetermineEdgeN(rv, NextUniformForRecVecN(&rng, rv));
      if (dedup.Insert(v)) adj.push_back(v);
    }
    stats.num_edges += adj.size();
    stats.num_scopes += 1;
    stats.max_degree = std::max<std::uint64_t>(stats.max_degree, adj.size());
    sink->ConsumeScope(u, adj.data(), adj.size());
  }
  return stats;
}

}  // namespace tg::core

#endif  // TRILLIONG_CORE_AVS_GENERATOR_N_H_
