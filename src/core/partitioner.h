#ifndef TRILLIONG_CORE_PARTITIONER_H_
#define TRILLIONG_CORE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "model/noise.h"
#include "util/common.h"

namespace tg::core {

/// AVS-level workload partitioning (Section 5, Figure 6). TrillionG avoids
/// the workload skew of shuffle-based generators by splitting the vertex
/// range into bins of approximately equal *expected* edge counts before any
/// edge is generated.
///
/// Two implementations are provided:
///  * `PartitionByCdf` — closed-form: the cumulative expected out-degree
///    Cum(u) = sum_{u' < u} P_{u'->} is computable in O(log|V|) from the
///    Kronecker product structure (see EdgeProbability::
///    CumulativeRowProbability); each bin boundary is found by binary search.
///    This is how arbitrarily large scales are partitioned without touching
///    every vertex.
///  * `PartitionByCombine` — the paper's four-step combine / gather /
///    repartition / scatter protocol operating on explicit per-thread bins;
///    faithful to Figure 6 and used by the cluster driver at small scales and
///    by tests as a cross-check of `PartitionByCdf`.

/// Cumulative row-marginal probability sum_{u' < u} P_{u'->} under the
/// (possibly noisy) per-level seed matrices, in O(log|V|).
double CumulativeRowProbability(const model::NoiseVector& noise, VertexId u);

/// Returns `num_bins + 1` boundaries b_0 = 0 <= b_1 <= ... <= b_num_bins =
/// |V| such that each [b_i, b_{i+1}) carries ~1/num_bins of the total
/// expected edge mass.
std::vector<VertexId> PartitionByCdf(const model::NoiseVector& noise,
                                     int num_bins);

/// `PartitionByCdf` restricted to the vertex range [lo, hi): returns
/// `num_bins + 1` boundaries b_0 = lo <= ... <= b_num_bins = hi such that
/// each [b_i, b_{i+1}) carries ~1/num_bins of the range's expected edge
/// mass. Used by the work-stealing scheduler to split a worker's range into
/// chunks of equal expected mass (src/core/scheduler.h).
std::vector<VertexId> PartitionRangeByCdf(const model::NoiseVector& noise,
                                          VertexId lo, VertexId hi,
                                          int num_bins);

/// Figure 6 protocol. `thread_ranges` gives each thread's contiguous vertex
/// range (equal vertex counts, as in the paper's combining step); each thread
/// combines its per-vertex expected sizes into bins of ~|E|/p mass, the
/// master gathers the bins, repartitions them to equal mass, and the returned
/// boundaries are what would be scattered. Enumerates vertices (O(|V|)), so
/// intended for moderate scales.
std::vector<VertexId> PartitionByCombine(const model::NoiseVector& noise,
                                         std::uint64_t num_edges,
                                         int num_threads, int num_bins);

}  // namespace tg::core

#endif  // TRILLIONG_CORE_PARTITIONER_H_
