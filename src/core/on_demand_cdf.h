// core/on_demand_cdf.h — CDF accessor that recomputes F_u(2^x) from the seed
// parameters on every access: the "Idea #1 off" subject of the Figure 13
// ablation. Interface-compatible with RecVec<Real> so the edge determiners
// are generic over which one backs them; never used by the default table
// kernel (core/prefix_tables.h), which precomputes everything instead.
#ifndef TRILLIONG_CORE_ON_DEMAND_CDF_H_
#define TRILLIONG_CORE_ON_DEMAND_CDF_H_

#include "model/noise.h"
#include "util/common.h"

namespace tg::core {

/// CDF accessor that computes F_u(2^x) from the seed parameters on *every*
/// access instead of precomputing a RecVec — the "Idea #1 disabled" subject
/// of the Figure 13 ablation (Section 4.3: "RMAT cannot reuse pre-computed
/// result like RecVec"). Each access walks the per-level product of Lemma 2
/// (O(log|V|)), so an edge determination pays O(log|V|) arithmetic per
/// binary-search probe rather than one cached load.
///
/// Interface-compatible with RecVec<Real> where the edge determiners are
/// concerned (scale / operator[] / Total / Sigma / InvSigma).
template <typename Real>
class OnDemandCdf {
 public:
  OnDemandCdf(const model::NoiseVector* noise, VertexId u)
      : noise_(noise), u_(u), scale_(noise->levels()) {}

  int scale() const { return scale_; }
  VertexId source() const { return u_; }

  Real operator[](int x) const { return Compute(x); }
  Real Total() const { return Compute(scale_); }

  Real Sigma(int k) const {
    Real fk = Compute(k);
    return (Compute(k + 1) - fk) / fk;
  }

  Real InvSigma(int k) const {
    Real fk = Compute(k);
    return fk / (Compute(k + 1) - fk);
  }

  /// Number of CDF evaluations performed so far (ablation statistic).
  std::uint64_t evaluations() const { return evaluations_; }

 private:
  Real Compute(int x) const {
    ++evaluations_;
    // Lemma 2's product: levels below x contribute their row sum (both
    // destination branches), levels at or above x pin the destination bit
    // to zero.
    Real value(1.0);
    for (int p = 0; p < scale_; ++p) {
      int bit = static_cast<int>((u_ >> p) & 1u);
      if (p >= x) {
        value = value * Real(noise_->EntryAtBit(p, bit, 0));
      } else {
        value = value * Real(noise_->RowSumAtBit(p, bit));
      }
    }
    return value;
  }

  const model::NoiseVector* noise_;
  VertexId u_;
  int scale_;
  mutable std::uint64_t evaluations_ = 0;
};

}  // namespace tg::core

#endif  // TRILLIONG_CORE_ON_DEMAND_CDF_H_
