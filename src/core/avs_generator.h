// core/avs_generator.h — the per-worker scope generator (Algorithm 4): for
// every source vertex u in a range, sample the scope size |S(u, V)| by
// Theorem 1, then rejection-sample that many distinct destinations. Two
// kernels share the loop: the *table kernel* (the default hot path — prefix
// tables from core/prefix_tables.h fed by the batched lane RNG from
// rng/lane_rng.h, no RecVec build and no per-edge descent) and the *descent
// kernel* (RecVec + Theorem 2 CDF translation), which serves the Figure 13
// ablations and the DoubleDouble precision. Both draw each scope from its
// own deterministic RNG stream, so output is identical for any worker count
// and chunking; see docs/PERFORMANCE.md for the kernel design and the
// determinism contract.
#ifndef TRILLIONG_CORE_AVS_GENERATOR_H_
#define TRILLIONG_CORE_AVS_GENERATOR_H_

#include <algorithm>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/edge_determiner.h"
#include "core/on_demand_cdf.h"
#include "core/prefix_tables.h"
#include "core/rec_vec.h"
#include "core/scope_dedup.h"
#include "core/scope_sink.h"
#include "core/scope_size.h"
#include "model/noise.h"
#include "obs/metrics.h"
#include "rng/lane_rng.h"
#include "rng/random.h"
#include "util/memory_budget.h"

namespace tg::core {

/// Per-worker generation statistics.
struct AvsWorkerStats {
  std::uint64_t num_edges = 0;
  std::uint64_t num_scopes = 0;       ///< scopes with at least one edge
  std::uint64_t max_degree = 0;       ///< realized d_max in this range
  std::uint64_t peak_scope_bytes = 0; ///< peak working-set (the O(d_max) term)
  std::uint64_t rec_vec_builds = 0;   ///< RecVec constructions (ablation stat)
  /// CDF inversions attempted (Theorem 2 determinations, counting
  /// rejection-loop retries) — the per-edge work unit of Table 1.
  std::uint64_t cdf_evaluations = 0;
  /// Scopes and edges produced by the table kernel (vs the descent kernel).
  std::uint64_t table_scopes = 0;
  std::uint64_t table_edges = 0;
  /// Bitmap words the dense dedup wiped lazily (regression canary: must stay
  /// proportional to inserted entries, not to |V| per dense scope).
  std::uint64_t dedup_wiped_words = 0;

  void MergeFrom(const AvsWorkerStats& o) {
    num_edges += o.num_edges;
    num_scopes += o.num_scopes;
    max_degree = std::max(max_degree, o.max_degree);
    peak_scope_bytes = std::max(peak_scope_bytes, o.peak_scope_bytes);
    rec_vec_builds += o.rec_vec_builds;
    cdf_evaluations += o.cdf_evaluations;
    table_scopes += o.table_scopes;
    table_edges += o.table_edges;
    dedup_wiped_words += o.dedup_wiped_words;
  }
};

/// Folds a merged per-run AvsWorkerStats into the global obs registry under
/// the canonical `avs.*` metric names (docs/OBSERVABILITY.md). Called once
/// per run by the in-process and cluster drivers.
inline void RecordAvsStats(const AvsWorkerStats& merged) {
  obs::GetCounter("avs.edges_generated")->Add(merged.num_edges);
  obs::GetCounter("avs.scopes_generated")->Add(merged.num_scopes);
  obs::GetCounter("avs.recvec_builds")->Add(merged.rec_vec_builds);
  obs::GetCounter("avs.cdf_evaluations")->Add(merged.cdf_evaluations);
  obs::GetGauge("avs.max_degree")
      ->Max(static_cast<double>(merged.max_degree));
  obs::GetGauge("mem.peak_scope_bytes")
      ->Max(static_cast<double>(merged.peak_scope_bytes));
  // kernel.*: which edge kernel ran and at what lane width
  // (docs/PERFORMANCE.md). simd_lanes is 1 on the portable path — compiled
  // out, TG_NO_SIMD, or forced off at runtime.
  obs::GetCounter("kernel.table_scopes")->Add(merged.table_scopes);
  obs::GetCounter("kernel.table_edges")->Add(merged.table_edges);
  obs::GetCounter("kernel.dedup_wiped_words")->Add(merged.dedup_wiped_words);
  obs::GetGauge("kernel.simd_lanes")
      ->Max(rng::LaneRng::SimdActive() ? rng::LaneRng::kLanes : 1);
}

/// The reusable per-worker working state of scope generation: the scope's
/// RecVec, the duplicate eliminator, and the adjacency buffer. One instance
/// lives for a whole worker (across every scope, chunk, and range it
/// executes), so the backing capacity is allocated on high-water marks only —
/// per-scope work is clear-and-refill, never allocate.
template <typename Real>
struct ScopeScratch {
  RecVec<Real> rec_vec;
  ScopeDedup dedup;
  std::vector<VertexId> adj;
};

/// Generates all scopes of a contiguous vertex range following the recursive
/// vector model (Algorithm 4). One instance per worker; scope RNG streams
/// are forked per vertex, so output is identical regardless of how ranges
/// are assigned to workers.
///
/// `Real` selects RecVec arithmetic: double or numeric::DoubleDouble.
template <typename Real>
class AvsRangeGenerator {
 public:
  /// Uniform deviates drawn per rejection round on the hot path. One batch
  /// fill amortizes the RNG state loads/stores over the whole block and lets
  /// the determiner loop run without the generator in its dependency chain.
  static constexpr std::size_t kDrawBatch = 64;

  /// `noise` must outlive the generator. `num_edges` is the global |E| of
  /// Theorem 1. `budget`, if non-null, models the per-machine memory cap.
  /// `shared_tables`, if non-null, must hold prefix tables built from an
  /// identical noise vector (the serve daemon's artifact cache memoizes
  /// them by model fingerprint); the generator then skips its own build and
  /// charges nothing — the cache owns and accounts for the bytes.
  AvsRangeGenerator(const model::NoiseVector* noise, std::uint64_t num_edges,
                    const DeterminerOptions& opts,
                    MemoryBudget* budget = nullptr,
                    bool exclude_self_loops = false,
                    const AvsPrefixTables* shared_tables = nullptr)
      : noise_(noise),
        num_edges_(num_edges),
        opts_(opts),
        budget_(budget),
        // Intern the attribution tag once; GenerateScope runs once per
        // vertex and must not take the budget's tag-intern mutex.
        scope_tag_(budget != nullptr ? budget->Tag("core.scope_dedup")
                                     : nullptr),
        num_vertices_(VertexId{1} << noise->levels()),
        exclude_self_loops_(exclude_self_loops),
        // Per-scope histogram observations only happen under an active
        // report; otherwise the generator carries a null pointer and the
        // hot loop pays a single predictable branch.
        degree_hist_(obs::Enabled() ? obs::GetHistogram("avs.scope_degree")
                                    : nullptr),
        // Live mirror of edges emitted so far, bumped once per finished
        // scope (never per edge) so the obs::Sampler can compute a rate and
        // ETA mid-run. `avs.edges_generated` itself stays an end-of-run
        // aggregate (RecordAvsStats), keeping both exact.
        live_edges_(obs::Enabled() ? obs::GetCounter("progress.edges")
                                   : nullptr) {
    // The table kernel requires plain-double arithmetic and all three of
    // Section 4.3's ideas: any ablation combination (Figure 13) and the
    // DoubleDouble precision keep the descent kernel, whose cost model the
    // ablations measure.
    use_tables_ = kRealIsDouble && opts_.use_prefix_tables &&
                  opts_.reuse_rec_vec && opts_.reduce_recursions &&
                  opts_.reuse_random_value;
    if (use_tables_) {
      if (shared_tables != nullptr) {
        tables_view_ = shared_tables;
      } else {
        tables_.Build(*noise_);
        // The tables are a per-generator (not per-scope) allocation, shared
        // by all workers; charge them once for the generator's lifetime.
        tables_mem_.emplace(budget_, tables_.MemoryBytes(),
                            "core.prefix_tables");
        tables_view_ = &tables_;
      }
    }
  }

  /// Runs Algorithm 4 over scopes [lo, hi). `root` is the graph-level RNG
  /// (forked per scope). Scopes are delivered to `sink` in increasing vertex
  /// order. Returns per-range stats.
  AvsWorkerStats GenerateRange(VertexId lo, VertexId hi, const rng::Rng& root,
                               ScopeSink* sink) {
    AvsWorkerStats stats;
    ScopeScratch<Real> scratch;
    GenerateRange(lo, hi, root, &scratch, &stats, sink);
    return stats;
  }

  /// Scratch-reusing form used by the work-stealing scheduler: one scratch
  /// per worker outlives every chunk the worker executes.
  void GenerateRange(VertexId lo, VertexId hi, const rng::Rng& root,
                     ScopeScratch<Real>* scratch, AvsWorkerStats* stats,
                     ScopeSink* sink) const {
    for (VertexId u = lo; u < hi; ++u) {
      GenerateScope(u, root, scratch, stats, sink);
    }
  }

  /// Generates a single scope (exposed for tests and the Figure 13 bench).
  /// Safe to call concurrently from multiple threads as long as each thread
  /// brings its own scratch/stats (the generator itself is read-only here;
  /// the shared MemoryBudget is thread-safe).
  void GenerateScope(VertexId u, const rng::Rng& root,
                     ScopeScratch<Real>* scratch, AvsWorkerStats* stats,
                     ScopeSink* sink) const {
    if constexpr (kRealIsDouble) {
      if (use_tables_) {
        GenerateScopeTables(u, root, scratch, stats, sink);
        return;
      }
    }
    rng::Rng rng = root.Fork(u);

    RecVec<Real>& rv = scratch->rec_vec;
    rv.Build(*noise_, u);
    ++stats->rec_vec_builds;
    const double p = ToDouble(rv.Total());

    // Line 2 of Algorithm 4: numEdges <- |S(u, V)| by Theorem 1.
    const std::uint64_t degree =
        SampleScopeSize(num_edges_, p, num_vertices_, &rng);
    if (degree == 0) return;

    ScopeDedup& dedup = scratch->dedup;
    std::vector<VertexId>& adj = scratch->adj;
    const std::uint64_t wiped_before = dedup.wiped_words();
    dedup.Reset(degree, num_vertices_);
    stats->dedup_wiped_words += dedup.wiped_words() - wiped_before;
    adj.clear();
    adj.reserve(degree);

    // Account the per-scope working set against the machine budget: this is
    // exactly the O(d_max) space term of Table 1.
    ScopedAllocation scope_mem(
        budget_, dedup.MemoryBytes() + degree * sizeof(VertexId), scope_tag_);
    stats->peak_scope_bytes =
        std::max(stats->peak_scope_bytes, scope_mem.bytes());

    // Rejection loop (Algorithm 4 lines 4-7): repeat until `degree` distinct
    // neighbors are collected. The attempt cap only matters for near-dense
    // scopes, which realistic sparse configurations never produce.
    const std::uint64_t max_attempts = 100 * degree + 10000;
    std::uint64_t attempts = 0;

    auto accept = [&](VertexId v) {
      if (exclude_self_loops_ && v == u) return;
      if (dedup.Insert(v)) {
        adj.push_back(v);
        const std::uint64_t working =
            dedup.MemoryBytes() + degree * sizeof(VertexId);
        if (working > scope_mem.bytes()) {
          scope_mem.ResizeTo(working);
          stats->peak_scope_bytes =
              std::max(stats->peak_scope_bytes, scope_mem.bytes());
        }
      }
    };

    if (opts_.reuse_rec_vec && opts_.reuse_random_value) {
      // Batched hot path. With the cached RecVec and Theorem 2's value
      // reuse, one attempt consumes exactly one uniform deviate and the
      // determiner touches no RNG state, so drawing a block up front
      // consumes the scope's stream in the same order as the scalar loop —
      // the output is bit-identical, only cheaper.
      Real xs[kDrawBatch];
      while (adj.size() < degree && attempts < max_attempts) {
        std::uint64_t block = degree - adj.size();
        if (block > kDrawBatch) block = kDrawBatch;
        if (block > max_attempts - attempts) block = max_attempts - attempts;
        for (std::uint64_t i = 0; i < block; ++i) {
          xs[i] = NextUniformReal<Real>(&rng, rv.Total());
        }
        attempts += block;
        stats->cdf_evaluations += block;
        if (opts_.reduce_recursions) {
          for (std::uint64_t i = 0; i < block; ++i) {
            accept(DetermineEdge(rv, xs[i]));
          }
        } else {
          for (std::uint64_t i = 0; i < block; ++i) {
            accept(DetermineEdgeLinear(rv, xs[i]));
          }
        }
      }
    } else {
      // Ablation paths (Figure 13): a fresh deviate may be drawn inside the
      // determiner (Idea#3 off) or the CDF is recomputed per access
      // (Idea#1 off), so attempts stay strictly sequential.
      auto draw_destination = [&]() -> VertexId {
        ++stats->cdf_evaluations;
        if (opts_.reuse_rec_vec) {
          Real x = NextUniformReal<Real>(&rng, rv.Total());
          return DetermineEdgeWithOptions(rv, x, &rng, opts_);
        }
        // Idea#1 disabled: every CDF access recomputes from the seed
        // parameters (no precomputed vector exists conceptually).
        OnDemandCdf<Real> on_demand(noise_, u);
        Real x = NextUniformReal<Real>(&rng, on_demand.Total());
        VertexId v = DetermineEdgeWithOptions(on_demand, x, &rng, opts_);
        ++stats->rec_vec_builds;  // counts per-edge recomputation work
        return v;
      };
      while (adj.size() < degree && attempts < max_attempts) {
        ++attempts;
        accept(draw_destination());
      }
    }

    stats->num_edges += adj.size();
    stats->num_scopes += 1;
    stats->max_degree = std::max<std::uint64_t>(stats->max_degree, adj.size());
    if (degree_hist_ != nullptr) degree_hist_->Observe(adj.size());
    if (live_edges_ != nullptr) live_edges_->Add(adj.size());
    sink->ConsumeScope(u, adj.data(), adj.size());
  }

  /// True when GenerateScope routes through the table kernel (exposed for
  /// tests/benches; depends on Real, the determiner options, and nothing
  /// else — never on worker count or SIMD availability).
  bool uses_table_kernel() const { return use_tables_; }

  /// Read-only access to the prefix tables (empty unless the table kernel is
  /// active). Used by the inversion-equivalence tests.
  const AvsPrefixTables& prefix_tables() const {
    return tables_view_ != nullptr ? *tables_view_ : tables_;
  }

 private:
  static constexpr bool kRealIsDouble = std::is_same_v<Real, double>;

  /// The table kernel (ROADMAP item 2): one LaneRng stream per scope, scope
  /// size from the precomputed row-mass product (no RecVec build), and
  /// destinations by prefix-table inversion of batched unit deviates (no
  /// per-edge descent). The batches consume the scope's counter stream in
  /// order, so SIMD-on and SIMD-off runs are bit-identical.
  void GenerateScopeTables(VertexId u, const rng::Rng& root,
                           ScopeScratch<Real>* scratch, AvsWorkerStats* stats,
                           ScopeSink* sink) const {
    // Same fork namespace as rng::Rng::Fork: deterministic per (root, u),
    // independent of which worker or chunk runs the scope.
    rng::LaneRng lane(rng::MixSeeds(root.StreamKey(), u + 1));
    const AvsPrefixTables::ScopeView view = tables_view_->ViewFor(u);

    const std::uint64_t degree =
        SampleScopeSize(num_edges_, view.total, num_vertices_, &lane);
    if (degree == 0) return;

    ScopeDedup& dedup = scratch->dedup;
    std::vector<VertexId>& adj = scratch->adj;
    const std::uint64_t wiped_before = dedup.wiped_words();
    dedup.Reset(degree, num_vertices_);
    stats->dedup_wiped_words += dedup.wiped_words() - wiped_before;
    adj.clear();
    adj.reserve(degree);

    ScopedAllocation scope_mem(
        budget_, dedup.MemoryBytes() + degree * sizeof(VertexId), scope_tag_);
    stats->peak_scope_bytes =
        std::max(stats->peak_scope_bytes, scope_mem.bytes());

    const std::uint64_t max_attempts = 100 * degree + 10000;
    std::uint64_t attempts = 0;

    auto accept = [&](VertexId v) {
      if (exclude_self_loops_ && v == u) return;
      if (dedup.Insert(v)) {
        adj.push_back(v);
        const std::uint64_t working =
            dedup.MemoryBytes() + degree * sizeof(VertexId);
        if (working > scope_mem.bytes()) {
          scope_mem.ResizeTo(working);
          stats->peak_scope_bytes =
              std::max(stats->peak_scope_bytes, scope_mem.bytes());
        }
      }
    };

    double xs[kDrawBatch];
    while (adj.size() < degree && attempts < max_attempts) {
      std::uint64_t block = degree - adj.size();
      if (block > kDrawBatch) block = kDrawBatch;
      if (block > max_attempts - attempts) block = max_attempts - attempts;
      lane.FillUnit(xs, block);
      attempts += block;
      stats->cdf_evaluations += block;
      for (std::uint64_t i = 0; i < block; ++i) {
        accept(tables_view_->Invert(view, xs[i]));
      }
    }

    stats->num_edges += adj.size();
    stats->num_scopes += 1;
    stats->table_scopes += 1;
    stats->table_edges += adj.size();
    stats->max_degree = std::max<std::uint64_t>(stats->max_degree, adj.size());
    if (degree_hist_ != nullptr) degree_hist_->Observe(adj.size());
    if (live_edges_ != nullptr) live_edges_->Add(adj.size());
    sink->ConsumeScope(u, adj.data(), adj.size());
  }

  static double ToDouble(double v) { return v; }
  static double ToDouble(const numeric::DoubleDouble& v) {
    return v.ToDouble();
  }

  const model::NoiseVector* noise_;
  std::uint64_t num_edges_;
  DeterminerOptions opts_;
  MemoryBudget* budget_;
  MemoryBudget::TagStats* scope_tag_;
  VertexId num_vertices_;
  bool exclude_self_loops_;
  obs::Histogram* degree_hist_;
  obs::Counter* live_edges_;
  bool use_tables_ = false;
  AvsPrefixTables tables_;
  /// The tables the hot path reads: &tables_ normally, the caller's shared
  /// instance when one was injected. Null only when use_tables_ is false.
  const AvsPrefixTables* tables_view_ = nullptr;
  std::optional<ScopedAllocation> tables_mem_;
};

}  // namespace tg::core

#endif  // TRILLIONG_CORE_AVS_GENERATOR_H_
