// core/cdf_vector.h — the naive fully-materialized CDF vector of Section 4.2
// (O(|V|) doubles per source vertex) with linear- and binary-search
// inversion. Nothing on the hot path uses it: it exists as the measured
// baseline for RecVec (Table 2) and as the ground-truth oracle the
// prefix-table and determiner tests invert against. Keep it dumb and
// obviously correct — its value is being trivially auditable.
#ifndef TRILLIONG_CORE_CDF_VECTOR_H_
#define TRILLIONG_CORE_CDF_VECTOR_H_

#include <vector>

#include "model/noise.h"
#include "util/common.h"

namespace tg::core {

/// The naive method of Section 4.2 (Table 2): materializes the full CDF
/// vector F_u(0..|V|) of a source vertex — O(|V|) space — and inverts it by
/// linear or binary search. Exists as the baseline RecVec is measured
/// against; a trillion-scale CDF vector would need ~274 GB, which is the
/// paper's argument for RecVec.
class CdfVector {
 public:
  CdfVector(const model::NoiseVector& noise, VertexId u) {
    const int scale = noise.levels();
    const VertexId n = VertexId{1} << scale;
    cdf_.resize(n + 1);
    cdf_[0] = 0.0;
    // One pass over destinations; per-cell probability maintained
    // incrementally would be O(1) amortized, but the straightforward
    // per-cell product is what the naive method does.
    for (VertexId v = 0; v < n; ++v) {
      double p = 1.0;
      for (int bit = 0; bit < scale; ++bit) {
        p *= noise.EntryAtBit(bit, static_cast<int>((u >> bit) & 1),
                              static_cast<int>((v >> bit) & 1));
      }
      cdf_[v + 1] = cdf_[v] + p;
    }
  }

  /// F_u(r).
  double operator[](VertexId r) const { return cdf_[r]; }

  /// Total row mass F_u(|V|).
  double Total() const { return cdf_.back(); }

  /// F_u^{-1}(x) by linear scan — O(|V|).
  VertexId InvertLinear(double x) const {
    VertexId v = 0;
    while (v + 1 < cdf_.size() - 1 && cdf_[v + 1] <= x) ++v;
    return v;
  }

  /// F_u^{-1}(x) by binary search — O(log |V|).
  VertexId InvertBinary(double x) const {
    VertexId lo = 0;
    VertexId hi = cdf_.size() - 1;  // invariant: cdf_[lo] <= x < cdf_[hi]
    while (hi - lo > 1) {
      VertexId mid = lo + (hi - lo) / 2;
      if (cdf_[mid] <= x) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t MemoryBytes() const { return cdf_.size() * sizeof(double); }

 private:
  std::vector<double> cdf_;
};

}  // namespace tg::core

#endif  // TRILLIONG_CORE_CDF_VECTOR_H_
