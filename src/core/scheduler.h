// core/scheduler.h — the deterministic work-stealing generation engine.
//
// The paper's expected-edge-mass partitioning (Figure 6) balances workers
// only in expectation: realized scope degrees are skewed, so a static
// one-thread-per-range driver is bound by its slowest worker. Because every
// scope's RNG stream is forked from the vertex id alone (rng::Rng::Fork(u)),
// scope generation is embarrassingly parallel at any granularity — WHO
// generates a scope cannot change WHAT is generated. This engine exploits
// that: each CDF-partitioned range is split into `chunks_per_worker` chunks
// of equal expected mass, chunks start on their owner's deque, and idle
// workers steal from the tail of the fullest deque. Generated chunks are
// buffered and committed to the owning range's sink strictly in chunk order,
// so every ScopeSink still observes its scopes in increasing vertex order —
// the output is bit-identical for any worker count and any chunking.
#ifndef TRILLIONG_CORE_SCHEDULER_H_
#define TRILLIONG_CORE_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/scope_sink.h"
#include "model/noise.h"
#include "util/common.h"

namespace tg::fault {
class FaultInjector;
}  // namespace tg::fault

namespace tg::core {

/// Default chunks per worker: enough slack for stealing to erase realized
/// skew (Figure 12's max-CPU vs wall gap) while keeping per-chunk overhead —
/// one deque pop, one reorder-buffer commit — far below generation cost.
inline constexpr int kDefaultChunksPerWorker = 16;

/// One unit of schedulable work: chunk `seq` of owner range `range`,
/// covering scopes [lo, hi). Chunks of a range are numbered 0..n-1 in vertex
/// order; the commit protocol releases them to the range's sink in exactly
/// that order.
struct Chunk {
  int range = 0;
  std::uint32_t seq = 0;
  VertexId lo = 0;
  VertexId hi = 0;
};

/// Buffered output of one generated chunk: scope-packed adjacency. A worker
/// generates into the buffer, then the commit protocol flushes it to the
/// owner range's (single-threaded) sink once every earlier chunk of that
/// range has been flushed. Capacity persists across Clear(), so the
/// in-order common case recycles one buffer per worker.
class ChunkBuffer : public ScopeSink {
 public:
  void ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) override {
    scopes_.push_back({u, adj_.size(), n});
    adj_.insert(adj_.end(), adj, adj + n);
  }

  void Clear() {
    adj_.clear();
    scopes_.clear();
  }

  /// Replays the buffered scopes, in order, into `sink`.
  void FlushTo(ScopeSink* sink) const {
    for (const ScopeRef& s : scopes_) {
      sink->ConsumeScope(s.u, adj_.data() + s.offset, s.n);
    }
  }

  std::size_t num_scopes() const { return scopes_.size(); }
  std::size_t num_edges() const { return adj_.size(); }

 private:
  struct ScopeRef {
    VertexId u;
    std::size_t offset;
    std::size_t n;
  };
  std::vector<VertexId> adj_;
  std::vector<ScopeRef> scopes_;
};

/// Scheduling policy knobs.
struct SchedulerOptions {
  /// Steal domain of each worker; a worker only steals from deques in its
  /// own domain. Empty means one shared domain (the in-process driver). The
  /// cluster driver maps each simulated machine to its own domain — threads
  /// of one machine share memory, machines do not.
  std::vector<int> steal_domain;
  /// Simulated-machine tag installed on each worker thread (obs span and
  /// per-machine stat attribution). Empty means tag worker w as machine w,
  /// matching the in-process driver's convention.
  std::vector<int> machine_tags;

  /// Fault injector consulted at every chunk boundary (see fault/*). When
  /// set and armed, workers whose simulated machine crashes drain their
  /// deques into a shared recovery queue that surviving machines pull from
  /// once their own steal domain runs dry — because chunk generation is
  /// deterministic in the chunk alone, the recovered output is bit-identical
  /// to a fault-free run. Null: the fault-free fast path, unchanged.
  fault::FaultInjector* fault_injector = nullptr;

  /// Resume support: when non-empty (one entry per range), chunks with
  /// seq < resume_next_seq[range] are treated as already committed by a
  /// previous process (per the chunk-commit journal) and are neither
  /// generated nor delivered; the range's sink continues at that seq.
  std::vector<std::uint32_t> resume_next_seq;

  /// Called under the range's commit lock immediately after each chunk's
  /// scopes are flushed to the sink (and before Finish on the last chunk).
  /// gen_cli uses this to checkpoint the sink and append to the journal.
  std::function<void(const Chunk& chunk, ScopeSink* sink)> on_chunk_commit;

  /// Cooperative cancellation, observed at chunk boundaries (not owned).
  /// Once it reads true, workers stop taking chunks and the run returns
  /// with SchedulerStats::cancelled set; sinks of unfinished ranges never
  /// see Finish(). Everything committed before the flag flipped is exactly
  /// the prefix an uncancelled run would have committed — the property the
  /// serve daemon's disconnect-cancel and gen_cli's SIGINT drain rely on.
  const std::atomic<bool>* cancel = nullptr;

  /// Runs the per-worker bodies to completion. Null (the default) spawns
  /// one std::thread per body and joins them. The serve daemon injects its
  /// shared persistent pool here so every tenant's chunks execute on one
  /// bounded set of threads. Contract: each body must run exactly once and
  /// the call must not return before all bodies have; order and real
  /// parallelism are free — any single worker drains all remaining chunks
  /// by stealing, so even sequential execution completes the run.
  std::function<void(std::vector<std::function<void()>>& bodies)>
      worker_runner;
};

/// What the engine measured about one run.
struct SchedulerStats {
  std::uint64_t num_chunks = 0;  ///< chunks executed (all workers)
  std::uint64_t num_steals = 0;  ///< chunks executed off their owner's deque
  std::uint64_t num_recovered = 0;  ///< chunks re-run on a surviving machine
                                    ///  after their owner machine crashed
  /// max/mean per-worker CPU seconds — 1.0 is a perfectly balanced run; the
  /// static driver's gap between max worker CPU and mean shows up here.
  double imbalance = 1.0;
  double max_worker_cpu_seconds = 0.0;
  std::vector<double> worker_cpu_seconds;  ///< one entry per worker
  /// True when SchedulerOptions::cancel stopped the run before every chunk
  /// committed. Unfinished ranges' sinks did not receive Finish().
  bool cancelled = false;
};

/// Computes `imbalance` (max/mean, 1.0 when idle) from per-worker CPU times.
double CpuImbalance(const std::vector<double>& worker_cpu_seconds);

/// The body a worker runs for one chunk: generate scopes [lo, hi) of
/// `chunk` into `buffer` (already cleared). Must be deterministic in the
/// chunk alone — it runs on whichever thread got the chunk.
using ChunkFn = std::function<void(const Chunk& chunk, ChunkBuffer* buffer)>;

/// Called once per worker, on that worker's thread, before it starts taking
/// chunks — the place to build per-worker scratch (generator, ScopeScratch,
/// stats slot) captured by the returned ChunkFn.
using WorkerFactory = std::function<ChunkFn(int worker)>;

/// Splits each range [boundaries[r], boundaries[r+1]) into exactly
/// `chunks_per_worker` chunks whose boundaries are found by the same
/// closed-form CDF inversion as the range partition itself (PartitionByCdf
/// restricted to the range), so chunks carry ~equal *expected* edge mass.
/// Queue r holds the chunks of range r, in vertex order.
std::vector<std::vector<Chunk>> BuildChunkQueues(
    const model::NoiseVector& noise, const std::vector<VertexId>& boundaries,
    int chunks_per_worker);

/// Runs every chunk in `queues` on queues.size() worker threads with
/// work stealing. `sinks[r]` receives range r's scopes in vertex order and
/// its Finish() exactly once, after the last chunk of r commits. Rethrows
/// the first worker exception (e.g. OomError) after all workers stop.
/// Records `sched.chunks` / `sched.steals` counters and the
/// `sched.imbalance` gauge in the global obs registry.
SchedulerStats RunWorkStealing(const std::vector<std::vector<Chunk>>& queues,
                               const std::vector<ScopeSink*>& sinks,
                               const WorkerFactory& make_worker,
                               const SchedulerOptions& options = {});

/// The TG_CHUNKS_PER_WORKER environment hook used by the figure benches
/// (mirrors the TG_METRICS_JSON-style ObsSession hooks): returns the parsed
/// value when the variable is set to a positive integer, else `fallback`.
int ChunksPerWorkerFromEnv(int fallback = kDefaultChunksPerWorker);

}  // namespace tg::core

#endif  // TRILLIONG_CORE_SCHEDULER_H_
