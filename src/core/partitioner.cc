#include "core/partitioner.h"

#include <algorithm>
#include <cmath>

#include "numeric/bits.h"

namespace tg::core {

double CumulativeRowProbability(const model::NoiseVector& noise, VertexId u) {
  int scale = noise.levels();
  TG_CHECK(u <= (VertexId{1} << scale));
  // Noisy row sums still total 1 per level, so the whole-range mass is 1.
  if (u == (VertexId{1} << scale)) return 1.0;
  // Walk bits of u from MSB to LSB keeping the prefix product of row sums.
  // Whenever bit k of u is set, every vertex sharing the higher prefix with
  // a 0 at position k is < u; their mass is prefix * rowsum_k(0) * 1 (the
  // free low bits sum to 1 per level because noisy row sums still total 1).
  double cum = 0.0;
  double prefix = 1.0;
  for (int k = scale - 1; k >= 0; --k) {
    int bit = static_cast<int>((u >> k) & 1u);
    if (bit != 0) {
      cum += prefix * noise.RowSumAtBit(k, 0);
      prefix *= noise.RowSumAtBit(k, 1);
    } else {
      prefix *= noise.RowSumAtBit(k, 0);
    }
  }
  return cum;
}

std::vector<VertexId> PartitionByCdf(const model::NoiseVector& noise,
                                     int num_bins) {
  TG_CHECK(num_bins >= 1);
  const VertexId num_vertices = VertexId{1} << noise.levels();
  const double total = CumulativeRowProbability(noise, num_vertices);

  std::vector<VertexId> boundaries(num_bins + 1);
  boundaries[0] = 0;
  boundaries[num_bins] = num_vertices;
  for (int i = 1; i < num_bins; ++i) {
    double target = total * static_cast<double>(i) / num_bins;
    // Smallest u with Cum(u) >= target.
    VertexId lo = 0;
    VertexId hi = num_vertices;
    while (lo < hi) {
      VertexId mid = lo + (hi - lo) / 2;
      if (CumulativeRowProbability(noise, mid) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    boundaries[i] = lo;
  }
  // Monotonicity guard: extremely skewed seeds can push several boundaries
  // onto the same vertex; keep them non-decreasing.
  for (int i = 1; i <= num_bins; ++i) {
    boundaries[i] = std::max(boundaries[i], boundaries[i - 1]);
  }
  return boundaries;
}

std::vector<VertexId> PartitionRangeByCdf(const model::NoiseVector& noise,
                                          VertexId lo, VertexId hi,
                                          int num_bins) {
  TG_CHECK(num_bins >= 1);
  TG_CHECK(lo <= hi);
  std::vector<VertexId> boundaries(num_bins + 1);
  boundaries[0] = lo;
  boundaries[num_bins] = hi;
  const double cum_lo = CumulativeRowProbability(noise, lo);
  const double cum_hi = CumulativeRowProbability(noise, hi);
  for (int i = 1; i < num_bins; ++i) {
    double target =
        cum_lo + (cum_hi - cum_lo) * static_cast<double>(i) / num_bins;
    // Smallest u in [lo, hi] with Cum(u) >= target.
    VertexId a = lo;
    VertexId b = hi;
    while (a < b) {
      VertexId mid = a + (b - a) / 2;
      if (CumulativeRowProbability(noise, mid) < target) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    boundaries[i] = a;
  }
  for (int i = 1; i <= num_bins; ++i) {
    boundaries[i] = std::max(boundaries[i], boundaries[i - 1]);
  }
  return boundaries;
}

namespace {

/// One bin of Figure 6's combining step: a contiguous vertex range plus its
/// combined expected edge mass.
struct Bin {
  VertexId begin = 0;
  VertexId end = 0;
  double mass = 0.0;
};

}  // namespace

std::vector<VertexId> PartitionByCombine(const model::NoiseVector& noise,
                                         std::uint64_t num_edges,
                                         int num_threads, int num_bins) {
  TG_CHECK(num_threads >= 1);
  TG_CHECK(num_bins >= 1);
  const int scale = noise.levels();
  const VertexId num_vertices = VertexId{1} << scale;
  const double per_bin_target =
      static_cast<double>(num_edges) / static_cast<double>(num_bins);

  // Combining step: each thread takes an equal contiguous vertex range and
  // greedily packs consecutive scopes into bins of ~|E|/p expected mass.
  std::vector<Bin> gathered;  // gathering step: ordered concatenation
  const VertexId chunk = std::max<VertexId>(num_vertices / num_threads, 1);
  for (int t = 0; t < num_threads; ++t) {
    VertexId begin = std::min<VertexId>(static_cast<VertexId>(t) * chunk,
                                        num_vertices);
    VertexId end = (t == num_threads - 1)
                       ? num_vertices
                       : std::min<VertexId>(begin + chunk, num_vertices);
    Bin current{begin, begin, 0.0};
    for (VertexId u = begin; u < end; ++u) {
      double mass = static_cast<double>(num_edges);
      for (int p = 0; p < scale; ++p) {
        mass *= noise.RowSumAtBit(p, static_cast<int>((u >> p) & 1u));
      }
      current.mass += mass;
      current.end = u + 1;
      if (current.mass >= per_bin_target) {
        gathered.push_back(current);
        current = Bin{u + 1, u + 1, 0.0};
      }
    }
    if (current.end > current.begin) gathered.push_back(current);
  }

  // Repartitioning step (master): walk the gathered bins, cutting at
  // cumulative-mass multiples of total/num_bins.
  double total_mass = 0.0;
  for (const Bin& b : gathered) total_mass += b.mass;
  std::vector<VertexId> boundaries;
  boundaries.reserve(num_bins + 1);
  boundaries.push_back(0);
  double cum = 0.0;
  int next_cut = 1;
  for (const Bin& b : gathered) {
    cum += b.mass;
    while (next_cut < num_bins &&
           cum >= total_mass * next_cut / num_bins) {
      boundaries.push_back(b.end);
      ++next_cut;
    }
  }
  while (static_cast<int>(boundaries.size()) < num_bins) {
    boundaries.push_back(num_vertices);
  }
  boundaries.push_back(num_vertices);
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    boundaries[i] = std::max(boundaries[i], boundaries[i - 1]);
  }
  return boundaries;
}

}  // namespace tg::core
