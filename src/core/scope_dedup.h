#ifndef TRILLIONG_CORE_SCOPE_DEDUP_H_
#define TRILLIONG_CORE_SCOPE_DEDUP_H_

#include <cstdint>
#include <vector>

#include "util/common.h"
#include "util/flat_set64.h"

namespace tg::core {

/// Per-scope duplicate eliminator with two representations, picked per scope
/// by expected density:
///
///  * sparse scopes (the overwhelming majority under a power-law seed) use
///    FlatSet64 — O(d) memory for a degree-d scope;
///  * dense scopes, where the sampled degree exceeds 1/64 of the scope's
///    reachable destination range, use a plain bitmap over [0, |V|) — |V|/8
///    bytes is then at most 8 bytes per expected entry, cheaper than the
///    ~16-32 bytes/entry the hash table costs, and Insert degrades to a
///    branch-free test-and-set with no probe chains.
///
/// The mode depends only on (degree, universe), both of which are derived
/// from the scope's own RNG stream, so the choice — and therefore the
/// generated graph — is independent of worker count and chunking.
///
/// Both backing stores persist across Reset calls (capacity is never
/// released), so a per-worker instance reused for millions of scopes
/// allocates only on high-water marks. Clearing is lazy per mode: a sparse
/// Reset never touches the bitmap, and a dense Reset wipes only the words
/// the previous dense scope actually dirtied (a touched-word log) — O(d)
/// per scope, never O(|V|/64). wiped_words() counts the wiped words
/// cumulatively so tests can pin this down.
class ScopeDedup {
 public:
  /// Entries per bitmap word: the density threshold is degree > universe/64,
  /// i.e. at least one expected entry per word of the bitmap.
  static constexpr std::uint64_t kDenseDivisor = 64;

  /// Clears the structure and picks the representation for a scope expected
  /// to hold `degree` distinct destinations drawn from [0, universe).
  void Reset(std::uint64_t degree, VertexId universe) {
    dense_ = universe != 0 && degree > universe / kDenseDivisor;
    if (dense_) {
      words_ = static_cast<std::size_t>((universe + 63) / 64);
      // Fresh words come zeroed from the resize; previously dirtied words
      // are wiped from the touched log — the only O(words_) cost is the
      // one-time high-water-mark growth.
      if (bits_.size() < words_) bits_.resize(words_, 0);
      for (std::size_t w : dirty_) bits_[w] = 0;
      wiped_words_ += dirty_.size();
      dirty_.clear();
    } else {
      set_.Reset(static_cast<std::size_t>(degree));
    }
    size_ = 0;
  }

  /// Inserts `v`; returns true if it was newly added.
  bool Insert(VertexId v) {
    if (dense_) {
      std::uint64_t& word = bits_[static_cast<std::size_t>(v >> 6)];
      // A zero word cannot be in the touched log (entries are logged on the
      // 0 -> nonzero transition and stay nonzero until the next dense
      // Reset wipes them), so this logs each word at most once.
      if (word == 0) dirty_.push_back(static_cast<std::size_t>(v >> 6));
      const std::uint64_t mask = std::uint64_t{1} << (v & 63);
      if ((word & mask) != 0) return false;
      word |= mask;
      ++size_;
      return true;
    }
    if (set_.Insert(v)) {
      ++size_;
      return true;
    }
    return false;
  }

  std::size_t size() const { return size_; }
  bool dense() const { return dense_; }

  /// Cumulative count of bitmap words zeroed by dense Resets. With lazy
  /// clearing this tracks inserted entries, not scopes * |V|/64; the
  /// generator_test regression assertion relies on exactly that.
  std::uint64_t wiped_words() const { return wiped_words_; }

  /// Bytes held by the active representation (the other one's retained
  /// capacity is idle scratch, charged once per worker, not per scope).
  std::size_t MemoryBytes() const {
    return dense_ ? words_ * sizeof(std::uint64_t) : set_.MemoryBytes();
  }

 private:
  FlatSet64 set_;
  std::vector<std::uint64_t> bits_;
  std::vector<std::size_t> dirty_;  ///< words dirtied since the last wipe
  std::size_t words_ = 0;
  std::size_t size_ = 0;
  std::uint64_t wiped_words_ = 0;
  bool dense_ = false;
};

}  // namespace tg::core

#endif  // TRILLIONG_CORE_SCOPE_DEDUP_H_
