#include "core/trilliong.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/avs_generator.h"
#include "core/partitioner.h"
#include "core/scheduler.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/stopwatch.h"

namespace tg::core {

/// Builds the per-level seed matrices for the run. AVS-I generates with the
/// transposed seed (the noisy transpose equals the transpose of the noisy
/// matrix because Definition 3 perturbs b and c symmetrically).
model::NoiseVector MakeRunNoise(const TrillionGConfig& config) {
  model::SeedMatrix seed = config.direction == Direction::kOut
                               ? config.seed
                               : config.seed.Transposed();
  if (config.noise <= 0.0) {
    return model::NoiseVector(seed, config.scale);
  }
  rng::Rng noise_rng(config.rng_seed, /*stream=*/0xA015E1ULL);
  return model::NoiseVector(seed, config.scale, config.noise, &noise_rng);
}

namespace {

template <typename Real>
GenerateStats RunTyped(const TrillionGConfig& config,
                       const SinkFactory& sink_factory) {
  TG_CHECK(config.num_workers >= 1);
  GenerateStats stats;
  Stopwatch watch;

  const model::NoiseVector noise = MakeRunNoise(config);
  obs::SetCurrentPhase("partition");
  const std::vector<VertexId> boundaries = [&]() -> std::vector<VertexId> {
    if (!config.precomputed_boundaries.empty()) {
      TG_CHECK_MSG(static_cast<int>(config.precomputed_boundaries.size()) ==
                       config.num_workers + 1,
                   "precomputed_boundaries must hold num_workers + 1 entries");
      return config.precomputed_boundaries;
    }
    TG_SPAN("partition");
    return PartitionByCdf(noise, config.num_workers);
  }();
  stats.partition_seconds = watch.ElapsedSeconds();

  watch.Restart();
  obs::SetCurrentPhase("generate");
  TG_SPAN("generate");
  const rng::Rng root(config.rng_seed, /*stream=*/1);
  AvsRangeGenerator<Real> generator(&noise, config.NumEdges(),
                                    config.determiner, config.budget,
                                    config.exclude_self_loops,
                                    config.shared_prefix_tables);

  std::vector<AvsWorkerStats> worker_stats(config.num_workers);
  std::vector<double> worker_cpu(config.num_workers, 0.0);

  // Fault injection, resume, and the commit journal all live in the
  // scheduler's chunk protocol, so any of them forces the scheduler path
  // even for a single worker.
  const bool needs_scheduler =
      (config.fault_injector != nullptr && config.fault_injector->armed()) ||
      config.chunk_commit_hook != nullptr || !config.resume_next_seq.empty() ||
      config.cancel_flag != nullptr || config.worker_runner != nullptr;

  if (config.num_workers == 1 && !needs_scheduler) {
    // Single worker: no scheduling to do — run directly on the calling
    // thread (GenerateToSink relies on this) with the same per-worker
    // scratch reuse the scheduler path gets.
    obs::ScopedMachine machine_tag(0);
    TG_SPAN("avs.generate");
    const double cpu_start = ThreadCpuSeconds();
    std::unique_ptr<ScopeSink> sink =
        sink_factory(0, boundaries[0], boundaries[1]);
    TG_CHECK(sink != nullptr);
    ScopeScratch<Real> scratch;
    generator.GenerateRange(boundaries[0], boundaries[1], root, &scratch,
                            &worker_stats[0], sink.get());
    sink->Finish();
    worker_cpu[0] = ThreadCpuSeconds() - cpu_start;
  } else {
    // Work-stealing path: split each worker's range into chunks of equal
    // expected mass; per-scope RNG forking makes the output bit-identical
    // to the static schedule no matter which thread runs which chunk.
    const int chunks_per_worker = std::max(config.chunks_per_worker, 1);
    const std::vector<std::vector<Chunk>> queues =
        BuildChunkQueues(noise, boundaries, chunks_per_worker);

    std::vector<std::unique_ptr<ScopeSink>> sinks;
    std::vector<ScopeSink*> sink_ptrs;
    sinks.reserve(config.num_workers);
    sink_ptrs.reserve(config.num_workers);
    for (int w = 0; w < config.num_workers; ++w) {
      sinks.push_back(sink_factory(w, boundaries[w], boundaries[w + 1]));
      TG_CHECK(sinks.back() != nullptr);
      sink_ptrs.push_back(sinks.back().get());
    }

    auto make_worker = [&](int w) -> ChunkFn {
      // shared_ptr because ChunkFn (std::function) must be copyable; the
      // scratch itself is only ever touched by worker w's thread.
      auto scratch = std::make_shared<ScopeScratch<Real>>();
      AvsWorkerStats* stats_slot = &worker_stats[w];
      return [&generator, &root, scratch, stats_slot](const Chunk& c,
                                                      ChunkBuffer* buffer) {
        generator.GenerateRange(c.lo, c.hi, root, scratch.get(), stats_slot,
                                buffer);
      };
    };

    SchedulerOptions sched_options;
    sched_options.fault_injector = config.fault_injector;
    sched_options.resume_next_seq = config.resume_next_seq;
    sched_options.on_chunk_commit = config.chunk_commit_hook;
    sched_options.cancel = config.cancel_flag;
    sched_options.worker_runner = config.worker_runner;
    const SchedulerStats sched =
        RunWorkStealing(queues, sink_ptrs, make_worker, sched_options);
    worker_cpu = sched.worker_cpu_seconds;
    stats.sched_chunks = sched.num_chunks;
    stats.sched_steals = sched.num_steals;
    stats.sched_recovered = sched.num_recovered;
    stats.sched_imbalance = sched.imbalance;
    stats.cancelled = sched.cancelled;
  }

  AvsWorkerStats merged;
  for (const AvsWorkerStats& s : worker_stats) merged.MergeFrom(s);
  stats.num_edges = merged.num_edges;
  stats.num_scopes = merged.num_scopes;
  stats.max_degree = merged.max_degree;
  stats.peak_scope_bytes = merged.peak_scope_bytes;
  stats.rec_vec_builds = merged.rec_vec_builds;
  stats.cdf_evaluations = merged.cdf_evaluations;
  stats.table_scopes = merged.table_scopes;
  stats.table_edges = merged.table_edges;
  stats.generate_seconds = watch.ElapsedSeconds();
  for (double cpu : worker_cpu) {
    stats.max_worker_cpu_seconds = std::max(stats.max_worker_cpu_seconds, cpu);
  }
  RecordAvsStats(merged);
  obs::GetGauge("avs.recvec_levels")
      ->Set(static_cast<double>(noise.levels()));
  for (int w = 0; w < config.num_workers; ++w) {
    obs::Registry& reg = obs::Registry::Global();
    reg.MaxMachineStat(w, "peak_scope_bytes",
                       static_cast<double>(worker_stats[w].peak_scope_bytes));
    reg.MaxMachineStat(w, "cpu_seconds", worker_cpu[w]);
  }
  obs::SetCurrentPhase("idle");
  return stats;
}

}  // namespace

GenerateStats Generate(const TrillionGConfig& config,
                       const SinkFactory& sink_factory) {
  // The TG_FAULT_PLAN chaos hook: a run that did not wire an injector of its
  // own still honors the environment plan (machine = worker index for the
  // in-process driver). Keeps existing tests/benches usable as chaos tests.
  if (config.fault_injector == nullptr) {
    if (std::unique_ptr<fault::FaultInjector> env_injector =
            fault::FaultInjector::FromEnvOrNull(config.num_workers)) {
      TrillionGConfig armed = config;
      armed.fault_injector = env_injector.get();
      return Generate(armed, sink_factory);
    }
  }
  if (config.precision == Precision::kDoubleDouble) {
    return RunTyped<numeric::DoubleDouble>(config, sink_factory);
  }
  return RunTyped<double>(config, sink_factory);
}

GenerateStats GenerateToSink(const TrillionGConfig& config, ScopeSink* sink) {
  TG_CHECK_MSG(config.num_workers == 1,
               "GenerateToSink requires num_workers == 1");
  return Generate(config, [sink](int, VertexId, VertexId) {
    // Non-owning wrapper around the caller's sink.
    class Forward : public ScopeSink {
     public:
      explicit Forward(ScopeSink* inner) : inner_(inner) {}
      void ConsumeScope(VertexId u, const VertexId* adj,
                        std::size_t n) override {
        inner_->ConsumeScope(u, adj, n);
      }
      // Finish() intentionally not forwarded: the caller owns flushing.

     private:
      ScopeSink* inner_;
    };
    return std::make_unique<Forward>(sink);
  });
}

}  // namespace tg::core
