#include "core/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "core/partitioner.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "prof/profiler.h"
#include "util/stopwatch.h"

namespace tg::core {

double CpuImbalance(const std::vector<double>& worker_cpu_seconds) {
  if (worker_cpu_seconds.empty()) return 1.0;
  double sum = 0.0;
  double max_cpu = 0.0;
  for (double c : worker_cpu_seconds) {
    sum += c;
    max_cpu = std::max(max_cpu, c);
  }
  const double mean = sum / static_cast<double>(worker_cpu_seconds.size());
  return mean > 0.0 ? max_cpu / mean : 1.0;
}

std::vector<std::vector<Chunk>> BuildChunkQueues(
    const model::NoiseVector& noise, const std::vector<VertexId>& boundaries,
    int chunks_per_worker) {
  TG_CHECK(chunks_per_worker >= 1);
  TG_CHECK(boundaries.size() >= 2);
  const int num_ranges = static_cast<int>(boundaries.size()) - 1;
  std::vector<std::vector<Chunk>> queues(num_ranges);
  for (int r = 0; r < num_ranges; ++r) {
    const std::vector<VertexId> sub = PartitionRangeByCdf(
        noise, boundaries[r], boundaries[r + 1], chunks_per_worker);
    queues[r].reserve(chunks_per_worker);
    for (int i = 0; i < chunks_per_worker; ++i) {
      queues[r].push_back(Chunk{r, static_cast<std::uint32_t>(i), sub[i],
                                sub[i + 1]});
    }
  }
  return queues;
}

int ChunksPerWorkerFromEnv(int fallback) {
  const char* value = std::getenv("TG_CHUNKS_PER_WORKER");
  if (value == nullptr || value[0] == '\0') return fallback;
  const int parsed = std::atoi(value);
  return parsed >= 1 ? parsed : fallback;
}

namespace {

/// One worker's deque of runnable chunks. The owner pops from the front
/// (vertex order, so its own sink commits mostly in order); thieves take
/// from the back — the work the owner would reach last. Chunks are coarse
/// (milliseconds), so a plain mutex per deque costs nothing measurable and
/// keeps the engine trivially ThreadSanitizer-clean.
struct WorkerDeque {
  std::mutex mu;
  std::deque<Chunk> q;
};

/// A chunk that completed out of order, waiting for its predecessors. The
/// Chunk rides along so the commit hook fires with full chunk identity when
/// the parked buffer is finally drained.
struct ParkedChunk {
  Chunk chunk;
  ChunkBuffer buffer;
};

/// Per-range commit state: the reorder buffer that turns
/// completed-in-any-order chunks back into in-vertex-order sink delivery.
struct RangeCommit {
  std::mutex mu;
  std::uint32_t next_seq = 0;  ///< next chunk seq the sink may receive
  std::uint32_t total = 0;     ///< chunks this range was split into
  std::map<std::uint32_t, ParkedChunk> parked;  ///< done but out of order
  ScopeSink* sink = nullptr;
};

}  // namespace

SchedulerStats RunWorkStealing(const std::vector<std::vector<Chunk>>& queues,
                               const std::vector<ScopeSink*>& sinks,
                               const WorkerFactory& make_worker,
                               const SchedulerOptions& options) {
  const int num_workers = static_cast<int>(queues.size());
  const int num_ranges = static_cast<int>(sinks.size());
  TG_CHECK(num_workers >= 1);
  TG_CHECK(options.steal_domain.empty() ||
           static_cast<int>(options.steal_domain.size()) == num_workers);
  TG_CHECK(options.machine_tags.empty() ||
           static_cast<int>(options.machine_tags.size()) == num_workers);

  TG_CHECK(options.resume_next_seq.empty() ||
           static_cast<int>(options.resume_next_seq.size()) == num_ranges);
  fault::FaultInjector* injector = options.fault_injector;
  const bool faulty = injector != nullptr && injector->armed();

  std::vector<WorkerDeque> deques(num_workers);
  std::vector<RangeCommit> ranges(num_ranges);
  std::uint64_t enqueued = 0;
  for (int w = 0; w < num_workers; ++w) {
    for (const Chunk& c : queues[w]) {
      TG_CHECK(c.range >= 0 && c.range < num_ranges);
      ++ranges[c.range].total;
      // Chunks a previous process already committed (per the journal) are
      // skipped entirely: their scopes exist durably in the output.
      if (!options.resume_next_seq.empty() &&
          c.seq < options.resume_next_seq[c.range]) {
        continue;
      }
      deques[w].q.push_back(c);
      ++enqueued;
    }
  }
  for (int r = 0; r < num_ranges; ++r) {
    TG_CHECK(sinks[r] != nullptr);
    ranges[r].sink = sinks[r];
    if (!options.resume_next_seq.empty()) {
      TG_CHECK(options.resume_next_seq[r] <= ranges[r].total);
      ranges[r].next_seq = options.resume_next_seq[r];
    }
    // A range with nothing left to commit (no chunks, or fully committed by
    // the interrupted process) will never commit; honor the Finish contract.
    if (ranges[r].next_seq == ranges[r].total) sinks[r]->Finish();
  }

  std::atomic<bool> abort{false};
  std::atomic<bool> cancelled{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> recovered_chunks{0};
  // Chunks enqueued but not yet committed. Only consulted on the fault path,
  // where "my deque and my domain are empty" no longer implies "done" — a
  // machine death can put orphaned chunks on the recovery queue at any time.
  std::atomic<std::uint64_t> outstanding{enqueued};
  // Orphaned chunks of dead machines, pulled by any surviving worker once
  // its own steal domain runs dry. Cross-domain on purpose: recovery is the
  // one case where work legitimately crosses a simulated machine boundary.
  std::mutex recovery_mu;
  std::deque<Chunk> recovery_q;
  std::vector<double> cpu(num_workers, 0.0);
  // Wall time at which each worker ran out of work, for the profiler's
  // off-CPU idle-tail attribution (workers that finish early sit joined
  // while the slowest one runs; that gap is `[stall:idle]` time).
  Stopwatch run_timer;
  std::vector<double> exit_wall(num_workers, 0.0);

  auto domain_of = [&](int w) {
    return options.steal_domain.empty() ? 0 : options.steal_domain[w];
  };

  auto try_pop_own = [&](int w, Chunk* out) {
    WorkerDeque& wd = deques[w];
    std::lock_guard<std::mutex> lock(wd.mu);
    if (wd.q.empty()) return false;
    *out = wd.q.front();
    wd.q.pop_front();
    return true;
  };

  auto try_steal = [&](int w, Chunk* out) {
    const int domain = domain_of(w);
    while (true) {
      // Pick the busiest victim in our steal domain, then take from its
      // tail. One lock at a time, so no lock-order concerns.
      int victim = -1;
      std::size_t victim_size = 0;
      for (int v = 0; v < num_workers; ++v) {
        if (v == w || domain_of(v) != domain) continue;
        std::lock_guard<std::mutex> lock(deques[v].mu);
        if (deques[v].q.size() > victim_size) {
          victim = v;
          victim_size = deques[v].q.size();
        }
      }
      if (victim < 0) return false;  // domain fully drained
      std::lock_guard<std::mutex> lock(deques[victim].mu);
      if (deques[victim].q.empty()) continue;  // lost the race; rescan
      *out = deques[victim].q.back();
      deques[victim].q.pop_back();
      return true;
    }
  };

  // Flushes `buf` to its range's sink if it is the next chunk in vertex
  // order, else parks it; then drains any parked successors. The range
  // mutex doubles as the serializer for the (not thread-safe) sink.
  auto commit = [&](const Chunk& c, ChunkBuffer* buf) {
    RangeCommit& rc = ranges[c.range];
    std::lock_guard<std::mutex> lock(rc.mu);
    if (c.seq != rc.next_seq) {
      rc.parked.emplace(c.seq, ParkedChunk{c, std::move(*buf)});
      return;
    }
    buf->FlushTo(rc.sink);
    if (options.on_chunk_commit) options.on_chunk_commit(c, rc.sink);
    ++rc.next_seq;
    while (!rc.parked.empty() && rc.parked.begin()->first == rc.next_seq) {
      ParkedChunk& parked = rc.parked.begin()->second;
      parked.buffer.FlushTo(rc.sink);
      if (options.on_chunk_commit) options.on_chunk_commit(parked.chunk, rc.sink);
      rc.parked.erase(rc.parked.begin());
      ++rc.next_seq;
    }
    if (rc.next_seq == rc.total) rc.sink->Finish();
  };

  // Moves every chunk still queued on worker `w` (whose machine just died)
  // onto the recovery queue. The chunk the worker is mid-way through is not
  // here — crashes take effect at chunk boundaries, so in-flight work
  // completes and commits first (docs/FAULT_TOLERANCE.md, "crash model").
  auto orphan_own_deque = [&](int w) {
    WorkerDeque& wd = deques[w];
    std::lock_guard<std::mutex> lock(wd.mu);
    if (wd.q.empty()) return;
    std::lock_guard<std::mutex> rlock(recovery_mu);
    while (!wd.q.empty()) {
      recovery_q.push_back(wd.q.front());
      wd.q.pop_front();
    }
  };

  auto try_pop_recovery = [&](Chunk* out) {
    std::lock_guard<std::mutex> lock(recovery_mu);
    if (recovery_q.empty()) return false;
    *out = recovery_q.front();
    recovery_q.pop_front();
    return true;
  };

  auto worker_body = [&](int w) {
    const int machine =
        options.machine_tags.empty() ? w : options.machine_tags[w];
    obs::ScopedMachine machine_tag(machine);
    prof::EnsureThreadRegistered(w);
    TG_SPAN("avs.generate");
    const double cpu_start = ThreadCpuSeconds();
    try {
      ChunkFn fn = make_worker(w);
      ChunkBuffer local;
      Chunk c;
      double slow_factor = 1.0;
      int transient_attempts = 0;
      while (!abort.load(std::memory_order_relaxed)) {
        // Cancellation is a chunk-boundary event like an injected crash:
        // the chunk in flight commits, nothing further is taken.
        if (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_acquire)) {
          cancelled.store(true, std::memory_order_relaxed);
          break;
        }
        if (faulty) {
          // Chunk boundary: consult the injector before taking more work.
          // Crashes take effect here, so a chunk in flight always commits.
          if (injector->machine_dead(machine)) {
            orphan_own_deque(w);
            break;
          }
          fault::Decision d = injector->OnChunkBoundary(machine);
          if (d.kind == fault::Decision::Kind::kDie) {
            std::_Exit(fault::kKilledExitCode);
          }
          if (d.kind == fault::Decision::Kind::kCrash) {
            orphan_own_deque(w);
            break;
          }
          if (d.kind == fault::Decision::Kind::kTransient) {
            if (++transient_attempts >= fault::FaultInjector::kMaxRetries) {
              // Retries exhausted: promote the flaky machine to dead. The
              // next loop iteration takes the machine_dead exit above.
              injector->MarkDead(machine);
              obs::GetCounter("fault.machines_lost")->Increment();
              continue;
            }
            injector->BackoffBeforeRetry(transient_attempts);
            continue;
          }
          transient_attempts = 0;
          slow_factor = d.slow_factor;
        }
        bool stolen = false;
        bool recovered = false;
        if (!try_pop_own(w, &c)) {
          if (try_steal(w, &c)) {
            stolen = true;
          } else if (faulty && try_pop_recovery(&c)) {
            recovered = true;
          } else if (!faulty ||
                     outstanding.load(std::memory_order_acquire) == 0) {
            break;
          } else {
            // Another machine may still crash and orphan chunks onto the
            // recovery queue; stay alive until everything has committed.
            prof::RecordStall("steal_wait", 50e-6);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            continue;
          }
        }
        double chunk_wall = 0.0;
        {
          TG_SPAN(recovered ? "fault.recover" : "sched.chunk");
          Stopwatch chunk_timer;
          local.Clear();
          fn(c, &local);
          if (faulty) chunk_wall = chunk_timer.ElapsedSeconds();
        }
        executed.fetch_add(1, std::memory_order_relaxed);
        if (stolen) steals.fetch_add(1, std::memory_order_relaxed);
        if (recovered) {
          recovered_chunks.fetch_add(1, std::memory_order_relaxed);
          obs::GetGauge("fault.recovery_seconds")->Add(chunk_wall);
        }
        if (faulty && slow_factor > 1.0) {
          // A slow machine takes slow_factor× the time per chunk: charge
          // the difference as real sleep so stealing reacts to it.
          const double delay = (slow_factor - 1.0) * chunk_wall;
          obs::GetGauge("fault.delay_seconds")->Add(delay);
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        }
        commit(c, &local);
        if (faulty) outstanding.fetch_sub(1, std::memory_order_acq_rel);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true, std::memory_order_relaxed);
    }
    cpu[w] = ThreadCpuSeconds() - cpu_start;
    exit_wall[w] = run_timer.ElapsedSeconds();
  };

  if (options.worker_runner) {
    // External executor (the serve daemon's shared pool): hand over the
    // bodies and block until the pool has run them all. Safe at any real
    // parallelism — a body that starts late finds its deque already stolen
    // empty and exits.
    std::vector<std::function<void()>> bodies;
    bodies.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
      bodies.push_back([&worker_body, w] { worker_body(w); });
    }
    options.worker_runner(bodies);
  } else if (num_workers == 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) threads.emplace_back(worker_body, w);
    for (std::thread& t : threads) t.join();
  }

  // Idle tails: workers that drained their domain early were off-CPU until
  // the slowest worker finished. Recorded per simulated machine so the
  // folded profile shows load imbalance as `[stall:idle]` frames.
  const double last_exit =
      *std::max_element(exit_wall.begin(), exit_wall.end());
  for (int w = 0; w < num_workers; ++w) {
    const double tail = last_exit - exit_wall[w];
    if (tail <= 0.0) continue;
    prof::RecordStall("idle", tail,
                      options.machine_tags.empty() ? w
                                                   : options.machine_tags[w]);
  }

  if (first_error) std::rethrow_exception(first_error);
  if (faulty && !cancelled.load(std::memory_order_relaxed)) {
    const std::uint64_t lost = outstanding.load(std::memory_order_acquire);
    if (lost != 0) {
      // Every worker exited through the crash path: no machine survived to
      // drain the recovery queue. The caller decides whether this run can
      // be resumed from its journal.
      throw fault::FaultError(
          "all simulated machines crashed; " + std::to_string(lost) +
          " chunks uncommitted (plan: " + injector->plan().ToString() + ")");
    }
  }

  SchedulerStats stats;
  stats.cancelled = cancelled.load(std::memory_order_relaxed);
  stats.num_chunks = executed.load(std::memory_order_relaxed);
  stats.num_steals = steals.load(std::memory_order_relaxed);
  stats.num_recovered = recovered_chunks.load(std::memory_order_relaxed);
  stats.worker_cpu_seconds = cpu;
  for (double c : cpu) {
    stats.max_worker_cpu_seconds = std::max(stats.max_worker_cpu_seconds, c);
  }
  stats.imbalance = CpuImbalance(cpu);

  // Phase-boundary recording: a handful of ops per run, always on (like
  // RecordAvsStats). Set (not Max) so one report per bench row reflects the
  // row's own run.
  obs::GetCounter("sched.chunks")->Add(stats.num_chunks);
  obs::GetCounter("sched.steals")->Add(stats.num_steals);
  obs::GetGauge("sched.imbalance")->Set(stats.imbalance);
  if (stats.num_recovered != 0) {
    obs::GetCounter("fault.recovered_chunks")->Add(stats.num_recovered);
  }
  return stats;
}

}  // namespace tg::core
