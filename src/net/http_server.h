// net/http_server.h — a minimal poll-based HTTP/1.1 server: the network
// substrate of the live observability plane (src/obs/serve/) and of the
// `tg::serve` generation daemon (src/serve/). No third party dependencies:
// one listener socket, one service thread multiplexing every connection
// through poll(2), bounded request parsing, and response writers for plain
// bodies, chunked transfer, and long-lived chunk streams (Server-Sent
// Events or binary graph shards).
//
// Scope is deliberately narrow. By default the server is the read-only
// admin surface: GET/HEAD only, no request bodies, loopback bind. Setting
// Options::max_body_bytes > 0 additionally admits POST with a bounded
// Content-Length body (411 when the length is missing, 413 over the cap) —
// the serve daemon's request ingress. Either way the server supports
// exactly what its two consumers need: keep-alive with pipelining
// (Prometheus scrapers reuse connections), long-lived streaming responses
// fed from other threads (Broadcast) with producer-visible backpressure
// (ChannelBacklogBytes), and hard limits on request size so a misbehaving
// client cannot grow server-side buffers.
#ifndef TRILLIONG_NET_HTTP_SERVER_H_
#define TRILLIONG_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace tg::net {

/// One parsed request. Header names are lower-cased; the query string is
/// split into decoded key=value pairs.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", "POST" (with bodies enabled)
  std::string target;  ///< raw request target, e.g. "/metrics?name=avs"
  std::string path;    ///< target up to the first '?'
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;
  /// POST body, complete before the handler runs (the service thread waits
  /// for Content-Length bytes). Empty unless Options::max_body_bytes > 0.
  std::string body;
};

/// What a handler returns. Plain responses carry `body` and are written with
/// a Content-Length. `chunked` switches to Transfer-Encoding: chunked (large
/// downloads). A non-empty `stream_channel` turns the connection into a
/// long-lived chunked stream: the response headers and `body` (typically an
/// SSE preamble) are written immediately, the connection is subscribed to
/// that channel, and every later HttpServer::Broadcast to the channel is
/// appended as one chunk until the client disconnects.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  /// Extra headers (e.g. Content-Disposition); Content-Length/Connection
  /// are managed by the server.
  std::map<std::string, std::string> headers;
  std::string body;
  bool chunked = false;
  std::string stream_channel;
};

/// The server. Start spawns one service thread that owns all sockets;
/// handlers run on that thread, so they must not block for long (the admin
/// endpoints only snapshot in-memory state). Broadcast may be called from
/// any thread.
class HttpServer {
 public:
  struct Options {
    /// Loopback by default: the admin plane is not an external service.
    std::string bind_address = "127.0.0.1";
    /// 0 binds an ephemeral port; read the result from port().
    int port = 0;
    /// A connection whose buffered request bytes exceed this without
    /// forming a complete request is answered 431 and closed.
    std::size_t max_request_bytes = 16 * 1024;
    /// Accepted connections beyond this are closed immediately.
    int max_connections = 64;
    /// 0 (default) keeps the server read-only: any request advertising a
    /// body is answered 413 and POST is answered 405, exactly the admin
    /// plane's historical contract. > 0 admits POST whose Content-Length is
    /// at most this many bytes: a missing length is answered 411, an
    /// over-cap one 413, and the handler runs only once the whole body has
    /// arrived (HttpRequest::body).
    std::size_t max_body_bytes = 0;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();  ///< Stop()s if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the service thread. `handler` is called for
  /// every well-formed GET/HEAD request (and POST, when
  /// Options::max_body_bytes > 0).
  Status Start(const Options& options, Handler handler);

  /// Closes the listener and every connection and joins the thread.
  /// Idempotent.
  void Stop();

  bool running() const;

  /// The bound port (the ephemeral one when Options::port was 0); -1 when
  /// not running.
  int port() const;

  /// Appends `data` as one chunk to every connection streaming `channel`
  /// and wakes the service thread. Callable from any thread; cheap when the
  /// channel has no subscribers.
  void Broadcast(const std::string& channel, const std::string& data);

  /// Current number of connections subscribed to `channel`.
  std::size_t SubscriberCount(const std::string& channel) const;

  /// Largest unsent out-buffer among `channel`'s subscribers — the
  /// producer-side backpressure signal. A producer that pauses while this
  /// exceeds its watermark bounds per-connection memory: the buffer only
  /// grows as fast as the slowest client drains it plus one producer burst.
  std::size_t ChannelBacklogBytes(const std::string& channel) const;

  /// Ends the stream on every connection subscribed to `channel`: appends
  /// the terminating zero-length chunk (unless `graceful` is false — an
  /// abort, letting the client detect truncation by the missing terminator)
  /// and closes each connection once its buffer drains. Callable from any
  /// thread.
  void CloseChannel(const std::string& channel, bool graceful = true);

 private:
  struct Connection {
    int fd = -1;
    std::string in;         ///< bytes received, not yet parsed; guarded by mu_
    std::string out;        ///< bytes to send; guarded by mu_
    std::string channel;    ///< non-empty: streaming subscriber; guarded by mu_
    /// Atomic: the service thread reads it outside mu_ while CloseChannel
    /// sets it from producer threads (under mu_).
    std::atomic<bool> close_after_write{false};
    /// Atomic because the service thread marks connections broken outside
    /// mu_ (read/write loops) while Broadcast/SubscriberCount read it under
    /// mu_ from other threads.
    std::atomic<bool> broken{false};
  };

  void Loop();
  /// Parses and answers every complete request in `conn->in`. Returns false
  /// when the connection must be dropped without further writes.
  bool ServiceInput(Connection* conn);
  void Respond(Connection* conn, const HttpRequest& request,
               const HttpResponse& response);
  void RespondError(Connection* conn, int status, const std::string& text);

  Handler handler_;
  Options options_;
  mutable std::mutex mu_;  ///< guards conns_, their buffers, and the wake pipe
  std::vector<std::unique_ptr<Connection>> conns_;
  std::thread thread_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: Broadcast/Stop wake poll()
  int port_ = -1;
  bool running_ = false;
  bool stop_requested_ = false;
};

/// Appends `data` to `out` in HTTP/1.1 chunked framing (hex length, CRLF,
/// payload, CRLF). Empty `data` is skipped — an empty chunk would terminate
/// the stream; use AppendLastChunk for that.
void AppendChunk(const std::string& data, std::string* out);
void AppendLastChunk(std::string* out);

}  // namespace tg::net

#endif  // TRILLIONG_NET_HTTP_SERVER_H_
