#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tg::net {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("fcntl(O_NONBLOCK) failed");
  }
  return Status::Ok();
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// %XX-decodes a query component (also '+' -> space).
std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      char hex[3] = {s[i + 1], s[i + 2], 0};
      out.push_back(static_cast<char>(std::strtoul(hex, nullptr, 16)));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Parses one request whose header block is text[0, header_end) (excluding
/// the blank line). Returns false on malformed input.
bool ParseRequest(const std::string& text, std::size_t header_end,
                  HttpRequest* out) {
  std::size_t line_end = text.find("\r\n");
  if (line_end == std::string::npos || line_end > header_end) return false;

  // Request line: METHOD SP target SP HTTP/1.x
  const std::string line = text.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  out->method = line.substr(0, sp1);
  out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (out->method.empty() || out->target.empty() ||
      out->target[0] != '/' || version.rfind("HTTP/1.", 0) != 0) {
    return false;
  }

  // Headers: "Name: value" per line, names lower-cased. A line without a
  // colon is malformed; a bounded count guards against header floods that
  // stay under the byte cap.
  std::size_t pos = line_end + 2;
  int header_count = 0;
  while (pos < header_end) {
    std::size_t eol = text.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string header = text.substr(pos, eol - pos);
    pos = eol + 2;
    if (header.empty()) break;
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) return false;
    if (++header_count > 100) return false;
    std::string value = header.substr(colon + 1);
    const std::size_t first = value.find_first_not_of(" \t");
    const std::size_t last = value.find_last_not_of(" \t");
    value = first == std::string::npos
                ? ""
                : value.substr(first, last - first + 1);
    out->headers[ToLower(header.substr(0, colon))] = value;
  }

  // Split the target into path + decoded query pairs.
  const std::size_t qmark = out->target.find('?');
  out->path = out->target.substr(0, qmark);
  if (qmark != std::string::npos) {
    std::string query = out->target.substr(qmark + 1);
    std::size_t start = 0;
    while (start <= query.size()) {
      std::size_t amp = query.find('&', start);
      if (amp == std::string::npos) amp = query.size();
      const std::string pair = query.substr(start, amp - start);
      start = amp + 1;
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        out->query[UrlDecode(pair)] = "";
      } else {
        out->query[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  return true;
}

}  // namespace

void AppendChunk(const std::string& data, std::string* out) {
  if (data.empty()) return;
  char head[24];
  std::snprintf(head, sizeof(head), "%zx\r\n", data.size());
  *out += head;
  *out += data;
  *out += "\r\n";
}

void AppendLastChunk(std::string* out) { *out += "0\r\n\r\n"; }

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(const Options& options, Handler handler) {
  Stop();
  options_ = options;
  handler_ = std::move(handler);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("cannot bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  Status nb = SetNonBlocking(listen_fd_);
  if (!nb.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return nb;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_fds_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("pipe() failed");
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread(&HttpServer::Loop, this);
  return Status::Ok();
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    // Wake poll() so the loop observes the stop flag promptly. Written
    // under mu_ so it cannot race with the fd teardown below (Broadcast
    // writes the wake pipe under mu_ for the same reason).
    char byte = 'q';
    (void)!::write(wake_fds_[1], &byte, 1);
  }
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) ::close(conn->fd);
    conns_.clear();
    running_ = false;
    ::close(listen_fd_);
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
    listen_fd_ = -1;
    wake_fds_[0] = wake_fds_[1] = -1;
    port_ = -1;
  }
}

bool HttpServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int HttpServer::port() const { return port_; }

void HttpServer::Broadcast(const std::string& channel, const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;
  bool any = false;
  for (auto& conn : conns_) {
    if (conn->channel == channel && !conn->broken) {
      AppendChunk(data, &conn->out);
      any = true;
    }
  }
  if (any) {
    // The wake pipe is non-blocking, so writing under mu_ cannot stall;
    // holding the lock keeps the fd alive against a concurrent Stop().
    char byte = 'b';
    (void)!::write(wake_fds_[1], &byte, 1);
  }
}

std::size_t HttpServer::SubscriberCount(const std::string& channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& conn : conns_) {
    if (conn->channel == channel && !conn->broken) ++n;
  }
  return n;
}

std::size_t HttpServer::ChannelBacklogBytes(const std::string& channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t backlog = 0;
  for (const auto& conn : conns_) {
    if (conn->channel == channel && !conn->broken) {
      backlog = std::max(backlog, conn->out.size());
    }
  }
  return backlog;
}

void HttpServer::CloseChannel(const std::string& channel, bool graceful) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;
  bool any = false;
  for (auto& conn : conns_) {
    if (conn->channel == channel && !conn->broken) {
      if (graceful) AppendLastChunk(&conn->out);
      conn->close_after_write = true;
      any = true;
    }
  }
  if (any) {
    char byte = 'c';
    (void)!::write(wake_fds_[1], &byte, 1);
  }
}

void HttpServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<Connection*> polled;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) return;
      fds.clear();
      polled.clear();
      fds.push_back({listen_fd_, POLLIN, 0});
      fds.push_back({wake_fds_[0], POLLIN, 0});
      for (auto& conn : conns_) {
        short events = POLLIN;
        if (!conn->out.empty()) events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
        polled.push_back(conn.get());
      }
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;

    // Drain the wake pipe.
    if (fds[1].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // New connections.
    if (fds[0].revents & POLLIN) {
      for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        std::lock_guard<std::mutex> lock(mu_);
        if (static_cast<int>(conns_.size()) >= options_.max_connections) {
          ::close(fd);
          continue;
        }
        SetNonBlocking(fd);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conns_.push_back(std::move(conn));
      }
    }

    // Existing connections: read + parse + write outside mu_ (handlers may
    // take observability locks; Broadcast from other threads only appends
    // to out buffers under mu_, so we re-acquire it around buffer edits).
    for (std::size_t i = 0; i < polled.size(); ++i) {
      Connection* conn = polled[i];
      const short revents = fds[i + 2].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        conn->broken = true;
      }
      if (!conn->broken && (revents & POLLIN)) {
        char buf[4096];
        for (;;) {
          const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
          if (n > 0) {
            std::lock_guard<std::mutex> lock(mu_);
            conn->in.append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) conn->broken = true;  // peer closed
          break;  // EAGAIN or error
        }
        if (!conn->broken && !ServiceInput(conn)) conn->broken = true;
      }
      if (!conn->broken) {
        // Snapshot the out buffer under mu_ (Broadcast appends to it from
        // other threads); never touch conn->out without the lock.
        std::string pending;
        {
          std::lock_guard<std::mutex> lock(mu_);
          pending.swap(conn->out);
        }
        std::size_t sent = 0;
        while (sent < pending.size()) {
          const ssize_t n =
              ::write(conn->fd, pending.data() + sent, pending.size() - sent);
          if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          conn->broken = true;
          break;
        }
        if (sent < pending.size() && !conn->broken) {
          // Put the unsent tail back *in front of* anything broadcast since.
          std::lock_guard<std::mutex> lock(mu_);
          conn->out.insert(0, pending, sent, pending.size() - sent);
        }
        if (!conn->broken && conn->close_after_write) {
          std::lock_guard<std::mutex> lock(mu_);
          if (conn->out.empty()) conn->broken = true;
        }
      }
    }

    // Sweep closed connections.
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->broken) {
          ::close((*it)->fd);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

bool HttpServer::ServiceInput(Connection* conn) {
  for (;;) {
    std::string in_snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A connection subscribed to a stream channel is write-only from here
      // on: discard any further client bytes instead of parsing them, so a
      // pipelined request cannot interleave a full HTTP response into the
      // middle of the open chunked SSE stream.
      if (!conn->channel.empty()) {
        conn->in.clear();
        return true;
      }
      in_snapshot = conn->in;
    }
    const std::size_t header_end = in_snapshot.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (in_snapshot.size() > options_.max_request_bytes) {
        RespondError(conn, 431, "request too large\n");
        return true;
      }
      return true;  // wait for more bytes
    }

    HttpRequest request;
    if (!ParseRequest(in_snapshot, header_end, &request)) {
      RespondError(conn, 400, "malformed request\n");
      return true;
    }

    // Body policy. With bodies disabled (the admin plane) any advertised
    // body is rejected before the method check — the historical contract.
    // With bodies enabled, POST must carry a bounded Content-Length and the
    // request is dispatched only once the whole body has been buffered.
    std::uint64_t body_len = 0;
    const auto length_it = request.headers.find("content-length");
    if (length_it != request.headers.end()) {
      char* end = nullptr;
      body_len = std::strtoull(length_it->second.c_str(), &end, 10);
      if (end == length_it->second.c_str() || *end != '\0') {
        RespondError(conn, 400, "malformed Content-Length\n");
        return true;
      }
    }
    const bool read_only_method =
        request.method == "GET" || request.method == "HEAD";
    if (options_.max_body_bytes == 0 || read_only_method) {
      if (body_len != 0) {
        RespondError(conn, 413, "request bodies not supported\n");
        return true;
      }
      if (!read_only_method) {
        const char* text = options_.max_body_bytes == 0
                               ? "only GET and HEAD are supported\n"
                               : "only GET, HEAD, and POST are supported\n";
        RespondError(conn, 405, text);
        return true;
      }
    } else {
      if (request.method != "POST") {
        RespondError(conn, 405, "only GET, HEAD, and POST are supported\n");
        return true;
      }
      if (length_it == request.headers.end()) {
        RespondError(conn, 411, "POST requires Content-Length\n");
        return true;
      }
      if (body_len > options_.max_body_bytes) {
        RespondError(conn, 413, "request body too large\n");
        return true;
      }
      if (in_snapshot.size() < header_end + 4 + body_len) {
        return true;  // wait for the rest of the body
      }
      request.body = in_snapshot.substr(header_end + 4,
                                        static_cast<std::size_t>(body_len));
    }
    {
      // Consume the parsed request (pipelined requests keep the tail).
      std::lock_guard<std::mutex> lock(mu_);
      conn->in.erase(0, header_end + 4 + request.body.size());
    }

    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = HttpResponse{};
      response.status = 500;
      response.body = std::string("handler error: ") + e.what() + "\n";
    }
    Respond(conn, request, response);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn->close_after_write || !conn->channel.empty()) {
        // The connection closes once this response flushes (or when its
        // stream channel does); drop any pipelined tail rather than
        // answering past the close.
        conn->in.clear();
        return true;
      }
    }
  }
}

void HttpServer::Respond(Connection* conn, const HttpRequest& request,
                         const HttpResponse& response) {
  const bool head = request.method == "HEAD";
  const bool streaming = !response.stream_channel.empty() && !head;
  const bool chunked = (response.chunked || streaming) && !head;
  auto it = request.headers.find("connection");
  const bool close =
      (it != request.headers.end() && ToLower(it->second) == "close");

  std::string out;
  out += "HTTP/1.1 " + std::to_string(response.status) + " " +
         ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  if (streaming) {
    out += "Cache-Control: no-cache\r\n";
  }
  if (chunked) {
    out += "Transfer-Encoding: chunked\r\n";
  } else {
    // HEAD advertises the length a GET would return, with no body bytes.
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += close || streaming ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  if (!head) {
    if (chunked) {
      // Large bodies go out in bounded chunks; streams leave the chunk
      // sequence open for Broadcast.
      for (std::size_t off = 0; off < response.body.size(); off += 64 * 1024) {
        AppendChunk(response.body.substr(off, 64 * 1024), &out);
      }
      if (!streaming) AppendLastChunk(&out);
    } else {
      out += response.body;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  conn->out += out;
  if (streaming) conn->channel = response.stream_channel;
  // A subscribed connection outlives this response: it closes when its
  // channel does (CloseChannel sets close_after_write then), not when the
  // headers flush — even if the client sent Connection: close.
  if (close && !streaming) conn->close_after_write = true;
}

void HttpServer::RespondError(Connection* conn, int status,
                              const std::string& text) {
  std::string out;
  out += "HTTP/1.1 " + std::to_string(status) + " " + ReasonPhrase(status) +
         "\r\n";
  out += "Content-Type: text/plain; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(text.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += text;
  std::lock_guard<std::mutex> lock(mu_);
  conn->out += out;
  conn->close_after_write = true;
  // Discard the offending input so a later POLLIN cannot re-parse the same
  // prefix and queue a duplicate error response.
  conn->in.clear();
}

}  // namespace tg::net
