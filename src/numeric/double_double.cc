#include "numeric/double_double.h"

#include <cstdio>

namespace tg::numeric {

std::string DoubleDouble::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g%+.17g", hi_, lo_);
  return buf;
}

}  // namespace tg::numeric
