#ifndef TRILLIONG_NUMERIC_DOUBLE_DOUBLE_H_
#define TRILLIONG_NUMERIC_DOUBLE_DOUBLE_H_

#include <cmath>
#include <compare>
#include <string>

namespace tg::numeric {

/// Double-double ("compensated") arithmetic: an unevaluated sum of two IEEE
/// doubles giving ~106 bits of mantissa. TrillionG's RecVec needs more than
/// double precision at trillion scale — the paper uses Scala's BigDecimal;
/// this type is the C++ substitute. Section 5 ("TrillionG uses the
/// BigDecimal type for RecVec").
///
/// Implements the classical Dekker/Knuth error-free transformations. Only
/// the operations RecVec construction and edge determination need are
/// provided: +, -, *, /, comparisons, and pow with integer exponent.
class DoubleDouble {
 public:
  constexpr DoubleDouble() = default;
  constexpr DoubleDouble(double hi) : hi_(hi) {}  // NOLINT: implicit by design
  constexpr DoubleDouble(double hi, double lo) : hi_(hi), lo_(lo) {}

  double hi() const { return hi_; }
  double lo() const { return lo_; }

  /// Best double approximation of the value.
  double ToDouble() const { return hi_ + lo_; }

  static DoubleDouble FromProduct(double a, double b) { return TwoProd(a, b); }

  friend DoubleDouble operator+(const DoubleDouble& a, const DoubleDouble& b) {
    DoubleDouble s = TwoSum(a.hi_, b.hi_);
    s.lo_ += a.lo_ + b.lo_;
    return Renormalize(s.hi_, s.lo_);
  }

  friend DoubleDouble operator-(const DoubleDouble& a, const DoubleDouble& b) {
    return a + DoubleDouble(-b.hi_, -b.lo_);
  }

  friend DoubleDouble operator*(const DoubleDouble& a, const DoubleDouble& b) {
    DoubleDouble p = TwoProd(a.hi_, b.hi_);
    p.lo_ += a.hi_ * b.lo_ + a.lo_ * b.hi_;
    return Renormalize(p.hi_, p.lo_);
  }

  friend DoubleDouble operator/(const DoubleDouble& a, const DoubleDouble& b) {
    // One Newton refinement of the double quotient is enough for ~2 ulp of
    // double-double accuracy: q1 = a/b; r = a - q1*b; q2 = r/b.
    double q1 = a.hi_ / b.hi_;
    DoubleDouble r = a - b * DoubleDouble(q1);
    double q2 = (r.hi_ + r.lo_) / b.hi_;
    DoubleDouble q = TwoSum(q1, q2);
    r = a - b * q;
    double q3 = (r.hi_ + r.lo_) / b.hi_;
    return Renormalize(q.hi_, q.lo_ + q3);
  }

  DoubleDouble& operator+=(const DoubleDouble& o) { return *this = *this + o; }
  DoubleDouble& operator-=(const DoubleDouble& o) { return *this = *this - o; }
  DoubleDouble& operator*=(const DoubleDouble& o) { return *this = *this * o; }
  DoubleDouble& operator/=(const DoubleDouble& o) { return *this = *this / o; }

  friend DoubleDouble operator-(const DoubleDouble& a) {
    return DoubleDouble(-a.hi_, -a.lo_);
  }

  friend bool operator==(const DoubleDouble& a, const DoubleDouble& b) {
    return a.hi_ == b.hi_ && a.lo_ == b.lo_;
  }

  friend std::strong_ordering operator<=>(const DoubleDouble& a,
                                          const DoubleDouble& b) {
    if (a.hi_ < b.hi_) return std::strong_ordering::less;
    if (a.hi_ > b.hi_) return std::strong_ordering::greater;
    if (a.lo_ < b.lo_) return std::strong_ordering::less;
    if (a.lo_ > b.lo_) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  /// value^n for n >= 0 by binary exponentiation.
  static DoubleDouble Pow(DoubleDouble base, unsigned n) {
    DoubleDouble result(1.0);
    while (n != 0) {
      if (n & 1u) result *= base;
      base *= base;
      n >>= 1;
    }
    return result;
  }

  std::string ToString() const;

 private:
  /// Error-free sum: hi+lo == a+b exactly, |lo| <= ulp(hi)/2.
  static DoubleDouble TwoSum(double a, double b) {
    double s = a + b;
    double bb = s - a;
    double err = (a - (s - bb)) + (b - bb);
    return DoubleDouble(s, err);
  }

  /// Error-free product via FMA: hi+lo == a*b exactly.
  static DoubleDouble TwoProd(double a, double b) {
    double p = a * b;
    double err = std::fma(a, b, -p);
    return DoubleDouble(p, err);
  }

  /// Re-establishes |lo| <= ulp(hi)/2.
  static DoubleDouble Renormalize(double hi, double lo) {
    return TwoSum(hi, lo);
  }

  double hi_ = 0.0;
  double lo_ = 0.0;
};

}  // namespace tg::numeric

#endif  // TRILLIONG_NUMERIC_DOUBLE_DOUBLE_H_
