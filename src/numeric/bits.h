#ifndef TRILLIONG_NUMERIC_BITS_H_
#define TRILLIONG_NUMERIC_BITS_H_

#include <bit>
#include <cstdint>

#include "util/common.h"

namespace tg::numeric {

/// Bits(x) from the paper: number of set bits in x (Proposition 1).
inline int Bits(std::uint64_t x) { return std::popcount(x); }

/// Number of set bits among the low `width` bits of x.
inline int BitsLow(std::uint64_t x, int width) {
  if (width <= 0) return 0;
  if (width >= 64) return std::popcount(x);
  return std::popcount(x & ((std::uint64_t{1} << width) - 1));
}

/// Number of zero bits among the low `width` bits of x (the Bits(~u) of
/// Lemma 1, restricted to the log|V|-bit vertex ID width).
inline int ZeroBitsLow(std::uint64_t x, int width) {
  return width - BitsLow(x, width);
}

/// k-th bit of u counted from the LSB, as used in Lemma 3's u[k].
inline int BitAt(std::uint64_t u, int k) {
  return static_cast<int>((u >> k) & 1u);
}

/// floor(log2(x)) for x > 0.
inline int Log2Floor(std::uint64_t x) {
  TG_CHECK(x != 0);
  return 63 - std::countl_zero(x);
}

/// Exact log2 for powers of two (checked).
inline int Log2Exact(std::uint64_t x) {
  TG_CHECK(std::has_single_bit(x));
  return Log2Floor(x);
}

/// True if x is a power of two (and nonzero).
inline bool IsPowerOfTwo(std::uint64_t x) { return std::has_single_bit(x); }

}  // namespace tg::numeric

#endif  // TRILLIONG_NUMERIC_BITS_H_
