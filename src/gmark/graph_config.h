#ifndef TRILLIONG_GMARK_GRAPH_CONFIG_H_
#define TRILLIONG_GMARK_GRAPH_CONFIG_H_

#include <string>
#include <vector>

#include "erv/erv_generator.h"
#include "util/common.h"
#include "util/status.h"

namespace tg::gmark {

/// gMark-style graph configuration (Section 6.2, Figure 7(a)): node types
/// with size ratios, edge predicates with edge ratios, and schema entries
/// binding (source type, predicate, target type) to out-/in-degree
/// distributions.
struct NodeType {
  std::string name;
  double ratio = 0.0;  ///< fraction of total_nodes
};

struct Predicate {
  std::string name;
  double ratio = 0.0;  ///< fraction of total_edges
};

struct SchemaEntry {
  std::string source_type;
  std::string predicate;
  std::string target_type;
  erv::DegreeSpec out_degree;
  erv::DegreeSpec in_degree;
};

class GraphConfig {
 public:
  std::uint64_t total_nodes = 0;
  std::uint64_t total_edges = 0;
  std::vector<NodeType> node_types;
  std::vector<Predicate> predicates;
  std::vector<SchemaEntry> schema;

  /// The paper's running example (Figure 7): a bibliographical graph with
  /// researcher/paper/journal/conference nodes and author/publishedIn/heldIn
  /// predicates; author edges are Zipfian-out / Gaussian-in.
  static GraphConfig Bibliography(std::uint64_t total_nodes,
                                  std::uint64_t total_edges);

  /// Parses the line-based text format:
  ///   nodes <N>
  ///   edges <M>
  ///   type <name> <ratio>
  ///   predicate <name> <ratio>
  ///   schema <src> <pred> <dst> out=<dist> in=<dist>
  /// where <dist> is zipfian:<slope>, gaussian, or uniform:<min>:<max>.
  /// '#' starts a comment.
  static Status Parse(const std::string& text, GraphConfig* config);

  /// Checks referential integrity and ratio sums.
  Status Validate() const;

  /// Index of a node type / predicate by name (-1 if absent).
  int NodeTypeIndex(const std::string& name) const;
  int PredicateIndex(const std::string& name) const;

  /// Contiguous global vertex range of a node type: types are laid out in
  /// declaration order; counts are ratio-rounded with the remainder going to
  /// the last type.
  struct Range {
    VertexId begin = 0;
    VertexId end = 0;
    std::uint64_t size() const { return end - begin; }
  };
  std::vector<Range> NodeRanges() const;

  /// Edge budget of a schema entry (predicate ratio * total_edges).
  std::uint64_t EdgesForSchema(const SchemaEntry& entry) const;

  std::string ToString() const;
};

}  // namespace tg::gmark

#endif  // TRILLIONG_GMARK_GRAPH_CONFIG_H_
