#ifndef TRILLIONG_GMARK_SCHEMA_GENERATOR_H_
#define TRILLIONG_GMARK_SCHEMA_GENERATOR_H_

#include <functional>
#include <vector>

#include "gmark/graph_config.h"
#include "util/common.h"

namespace tg::gmark {

/// A typed edge of a rich graph: global vertex IDs plus the predicate index
/// into GraphConfig::predicates.
struct RichEdge {
  VertexId src = 0;
  VertexId dst = 0;
  std::uint32_t predicate = 0;

  friend bool operator==(const RichEdge&, const RichEdge&) = default;
  friend auto operator<=>(const RichEdge&, const RichEdge&) = default;
};

using RichEdgeSink = std::function<void(const RichEdge&)>;

struct RichStats {
  std::uint64_t num_edges = 0;
  /// Edges per predicate (indexed like GraphConfig::predicates).
  std::vector<std::uint64_t> edges_per_predicate;
};

/// Schema-driven rich graph generation (Section 6.2): conceptually divides
/// the global probability matrix into the colored rectangles of Figure 7(b)
/// — one per schema entry — and generates each rectangle with the ERV model
/// using that entry's out-/in-degree distributions and the node-type vertex
/// ranges. Duplicate edges within a (source, predicate) scope are
/// eliminated, which gMark itself cannot do (Section 6.2).
RichStats GenerateRichGraph(const GraphConfig& config, std::uint64_t rng_seed,
                            const RichEdgeSink& sink);

}  // namespace tg::gmark

#endif  // TRILLIONG_GMARK_SCHEMA_GENERATOR_H_
