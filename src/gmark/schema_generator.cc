#include "gmark/schema_generator.h"

#include "rng/random.h"

namespace tg::gmark {

RichStats GenerateRichGraph(const GraphConfig& config, std::uint64_t rng_seed,
                            const RichEdgeSink& sink) {
  TG_CHECK_MSG(config.Validate().ok(), "invalid graph configuration");
  const std::vector<GraphConfig::Range> ranges = config.NodeRanges();

  RichStats stats;
  stats.edges_per_predicate.assign(config.predicates.size(), 0);

  for (std::size_t entry_idx = 0; entry_idx < config.schema.size();
       ++entry_idx) {
    const SchemaEntry& entry = config.schema[entry_idx];
    const GraphConfig::Range& src_range =
        ranges[config.NodeTypeIndex(entry.source_type)];
    const GraphConfig::Range& dst_range =
        ranges[config.NodeTypeIndex(entry.target_type)];
    const auto predicate =
        static_cast<std::uint32_t>(config.PredicateIndex(entry.predicate));

    erv::ErvOptions options;
    options.num_sources = src_range.size();
    options.num_destinations = dst_range.size();
    options.num_edges = config.EdgesForSchema(entry);
    options.out_degree = entry.out_degree;
    options.in_degree = entry.in_degree;
    options.rng_seed = rng::MixSeeds(rng_seed, entry_idx);

    erv::ErvStats entry_stats = erv::GenerateErv(
        options, [&](VertexId local_src, VertexId local_dst) {
          sink(RichEdge{src_range.begin + local_src,
                        dst_range.begin + local_dst, predicate});
        });
    stats.num_edges += entry_stats.num_edges;
    stats.edges_per_predicate[predicate] += entry_stats.num_edges;
  }
  return stats;
}

}  // namespace tg::gmark
