#include "gmark/graph_config.h"

#include <cmath>
#include <sstream>

namespace tg::gmark {

namespace {

/// Parses "zipfian:-1.662", "gaussian", or "uniform:1:3".
bool ParseDegreeSpec(const std::string& text, erv::DegreeSpec* spec) {
  if (text == "gaussian") {
    *spec = erv::DegreeSpec::Gaussian();
    return true;
  }
  if (text.rfind("zipfian:", 0) == 0) {
    char* end = nullptr;
    double slope = std::strtod(text.c_str() + 8, &end);
    if (end == nullptr || *end != '\0' || slope >= 0) return false;
    *spec = erv::DegreeSpec::Zipfian(slope);
    return true;
  }
  if (text.rfind("uniform:", 0) == 0) {
    std::size_t second_colon = text.find(':', 8);
    if (second_colon == std::string::npos) return false;
    std::uint64_t lo = std::strtoull(text.substr(8).c_str(), nullptr, 10);
    std::uint64_t hi =
        std::strtoull(text.substr(second_colon + 1).c_str(), nullptr, 10);
    if (hi < lo) return false;
    *spec = erv::DegreeSpec::Uniform(lo, hi);
    return true;
  }
  if (text.rfind("empirical:", 0) == 0) {
    // Data-driven frequency table: "empirical:<deg>*<count>[,<deg>*<count>]"
    std::vector<std::pair<std::uint64_t, std::uint64_t>> table;
    std::istringstream entries(text.substr(10));
    std::string entry;
    while (std::getline(entries, entry, ',')) {
      std::size_t star = entry.find('*');
      if (star == std::string::npos) return false;
      std::uint64_t degree =
          std::strtoull(entry.substr(0, star).c_str(), nullptr, 10);
      std::uint64_t count =
          std::strtoull(entry.substr(star + 1).c_str(), nullptr, 10);
      if (count == 0) return false;
      table.emplace_back(degree, count);
    }
    if (table.empty()) return false;
    *spec = erv::DegreeSpec::Empirical(std::move(table));
    return true;
  }
  return false;
}

std::string FormatDegreeSpec(const erv::DegreeSpec& spec) {
  std::ostringstream out;
  switch (spec.kind) {
    case erv::DegreeSpec::Kind::kZipfian:
      out << "zipfian:" << spec.zipf_slope;
      break;
    case erv::DegreeSpec::Kind::kGaussian:
      out << "gaussian";
      break;
    case erv::DegreeSpec::Kind::kUniform:
      out << "uniform:" << spec.uniform_min << ":" << spec.uniform_max;
      break;
    case erv::DegreeSpec::Kind::kEmpirical: {
      out << "empirical:";
      bool first = true;
      for (const auto& [degree, count] : *spec.empirical) {
        if (!first) out << ",";
        out << degree << "*" << count;
        first = false;
      }
      break;
    }
  }
  return out.str();
}

}  // namespace

GraphConfig GraphConfig::Bibliography(std::uint64_t total_nodes,
                                      std::uint64_t total_edges) {
  GraphConfig config;
  config.total_nodes = total_nodes;
  config.total_edges = total_edges;
  config.node_types = {{"researcher", 0.5},
                       {"paper", 0.3},
                       {"journal", 0.1},
                       {"conference", 0.1}};
  config.predicates = {{"author", 0.5}, {"publishedIn", 0.3}, {"heldIn", 0.2}};
  config.schema = {
      // Figure 7(a) row 1: researcher --author--> paper, Zipfian out
      // (Graph500 slope), Gaussian in.
      {"researcher", "author", "paper", erv::DegreeSpec::Zipfian(-1.662),
       erv::DegreeSpec::Gaussian()},
      // A paper appears in exactly one venue; venue in-degrees are skewed
      // (a few prolific journals) or balanced (conferences), respectively.
      {"paper", "publishedIn", "journal", erv::DegreeSpec::Uniform(1, 1),
       erv::DegreeSpec::Zipfian(-2.0)},
      {"paper", "heldIn", "conference", erv::DegreeSpec::Uniform(1, 1),
       erv::DegreeSpec::Gaussian()},
  };
  return config;
}

Status GraphConfig::Parse(const std::string& text, GraphConfig* config) {
  *config = GraphConfig();
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank line

    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     why);
    };

    if (keyword == "nodes") {
      if (!(tokens >> config->total_nodes)) return fail("nodes needs a count");
    } else if (keyword == "edges") {
      if (!(tokens >> config->total_edges)) return fail("edges needs a count");
    } else if (keyword == "type") {
      NodeType t;
      if (!(tokens >> t.name >> t.ratio)) return fail("type needs name ratio");
      config->node_types.push_back(t);
    } else if (keyword == "predicate") {
      Predicate p;
      if (!(tokens >> p.name >> p.ratio)) {
        return fail("predicate needs name ratio");
      }
      config->predicates.push_back(p);
    } else if (keyword == "schema") {
      SchemaEntry e;
      std::string out_text, in_text;
      if (!(tokens >> e.source_type >> e.predicate >> e.target_type >>
            out_text >> in_text)) {
        return fail("schema needs src pred dst out=<dist> in=<dist>");
      }
      if (out_text.rfind("out=", 0) != 0 || in_text.rfind("in=", 0) != 0) {
        return fail("schema distributions must be out=... in=...");
      }
      if (!ParseDegreeSpec(out_text.substr(4), &e.out_degree)) {
        return fail("bad out distribution: " + out_text.substr(4));
      }
      if (!ParseDegreeSpec(in_text.substr(3), &e.in_degree)) {
        return fail("bad in distribution: " + in_text.substr(3));
      }
      config->schema.push_back(e);
    } else {
      return fail("unknown keyword: " + keyword);
    }
  }
  return config->Validate();
}

Status GraphConfig::Validate() const {
  if (total_nodes == 0) return Status::InvalidArgument("total nodes is zero");
  if (total_edges == 0) return Status::InvalidArgument("total edges is zero");
  if (node_types.empty()) return Status::InvalidArgument("no node types");
  double type_sum = 0;
  for (const NodeType& t : node_types) {
    if (t.ratio <= 0) {
      return Status::InvalidArgument("node type ratio must be positive: " +
                                     t.name);
    }
    type_sum += t.ratio;
  }
  if (std::abs(type_sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("node type ratios must sum to 1");
  }
  double pred_sum = 0;
  for (const Predicate& p : predicates) pred_sum += p.ratio;
  if (std::abs(pred_sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("predicate ratios must sum to 1");
  }
  for (const SchemaEntry& e : schema) {
    if (NodeTypeIndex(e.source_type) < 0) {
      return Status::InvalidArgument("unknown source type: " + e.source_type);
    }
    if (NodeTypeIndex(e.target_type) < 0) {
      return Status::InvalidArgument("unknown target type: " + e.target_type);
    }
    if (PredicateIndex(e.predicate) < 0) {
      return Status::InvalidArgument("unknown predicate: " + e.predicate);
    }
  }
  return Status::Ok();
}

int GraphConfig::NodeTypeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < node_types.size(); ++i) {
    if (node_types[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int GraphConfig::PredicateIndex(const std::string& name) const {
  for (std::size_t i = 0; i < predicates.size(); ++i) {
    if (predicates[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<GraphConfig::Range> GraphConfig::NodeRanges() const {
  std::vector<Range> ranges(node_types.size());
  VertexId offset = 0;
  for (std::size_t i = 0; i < node_types.size(); ++i) {
    std::uint64_t count =
        i + 1 == node_types.size()
            ? total_nodes - offset
            : static_cast<std::uint64_t>(
                  std::llround(node_types[i].ratio *
                               static_cast<double>(total_nodes)));
    ranges[i].begin = offset;
    ranges[i].end = offset + count;
    offset += count;
  }
  return ranges;
}

std::uint64_t GraphConfig::EdgesForSchema(const SchemaEntry& entry) const {
  int pred = PredicateIndex(entry.predicate);
  TG_CHECK(pred >= 0);
  // When several schema entries share a predicate, they split it evenly.
  int sharing = 0;
  for (const SchemaEntry& e : schema) {
    if (e.predicate == entry.predicate) ++sharing;
  }
  return static_cast<std::uint64_t>(
      std::llround(predicates[pred].ratio * static_cast<double>(total_edges) /
                   sharing));
}

std::string GraphConfig::ToString() const {
  std::ostringstream out;
  out << "nodes " << total_nodes << "\n";
  out << "edges " << total_edges << "\n";
  for (const NodeType& t : node_types) {
    out << "type " << t.name << " " << t.ratio << "\n";
  }
  for (const Predicate& p : predicates) {
    out << "predicate " << p.name << " " << p.ratio << "\n";
  }
  for (const SchemaEntry& e : schema) {
    out << "schema " << e.source_type << " " << e.predicate << " "
        << e.target_type << " out=" << FormatDegreeSpec(e.out_degree)
        << " in=" << FormatDegreeSpec(e.in_degree) << "\n";
  }
  return out.str();
}

}  // namespace tg::gmark
