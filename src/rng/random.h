// rng/random.h — the deterministic random-number substrate: SplitMix64 (seed
// derivation and hashing), MixSeeds (stream-key mixing), Pcg64 (the
// statistically strong workhorse), and the Rng façade that every component
// draws uniforms/Gaussians/bounded integers through. Determinism is the
// point: every value is a pure function of (seed, stream), Fork derives
// independent per-scope child streams so generated graphs are identical at
// any worker count, and nothing here depends on libstdc++ distribution
// internals (std::normal_distribution etc. are banned — they differ across
// standard libraries). The batched counter-form generator used by the SIMD
// edge kernel lives in rng/lane_rng.h and shares SplitMix64's constants.
#ifndef TRILLIONG_RNG_RANDOM_H_
#define TRILLIONG_RNG_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace tg::rng {

/// SplitMix64: tiny, fast, full-avalanche 64-bit generator. Used directly for
/// seeding and hashing, and as the "split" function that derives independent
/// per-scope streams (every AVS scope gets its own deterministic stream so
/// that generation is reproducible regardless of thread scheduling).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mixes two 64-bit values into one (used to derive stream seeds).
inline std::uint64_t MixSeeds(std::uint64_t a, std::uint64_t b) {
  SplitMix64 m(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  m.Next();
  return m.Next();
}

/// PCG64 (pcg_oneseq_128 variant with XSL-RR output): statistically strong,
/// 128-bit state, cheap on 64-bit hardware. This is the workhorse generator
/// for edge generation.
class Pcg64 {
 public:
  using result_type = std::uint64_t;

  explicit Pcg64(std::uint64_t seed, std::uint64_t stream = 0) {
    SplitMix64 init(MixSeeds(seed, stream));
    state_ = (static_cast<u128>(init.Next()) << 64) | init.Next();
    inc_ = ((static_cast<u128>(init.Next()) << 64) | init.Next()) | 1;
    Next();
  }

  std::uint64_t Next() {
    state_ = state_ * kMultiplier + inc_;
    std::uint64_t xored =
        static_cast<std::uint64_t>(state_ >> 64) ^ static_cast<std::uint64_t>(state_);
    int rot = static_cast<int>(state_ >> 122);
    return (xored >> rot) | (xored << ((-rot) & 63));
  }

  // UniformRandomBitGenerator interface.
  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

 private:
  using u128 = unsigned __int128;
  static constexpr u128 kMultiplier =
      (static_cast<u128>(2549297995355413924ULL) << 64) |
      4865540595714422341ULL;

  u128 state_ = 0;
  u128 inc_ = 1;
};

/// The generator façade used throughout the library: uniform doubles, bounded
/// integers, and Gaussians, all deterministic given (seed, stream). One `Rng`
/// per scope/worker; `Fork` derives an independent child stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0)
      : gen_(seed, stream), seed_(seed), stream_(stream) {}

  /// Independent child generator for substream `id` (e.g. one per scope).
  Rng Fork(std::uint64_t id) const {
    return Rng(MixSeeds(seed_, stream_), id + 1);
  }

  /// The seed every Fork(id) child is derived from. Exposed so alternative
  /// per-scope generators (the table kernel's rng::LaneRng) can mint child
  /// streams from the same deterministic namespace:
  /// MixSeeds(StreamKey(), id + 1) is worker- and chunk-count independent
  /// exactly like Fork.
  std::uint64_t StreamKey() const { return MixSeeds(seed_, stream_); }

  std::uint64_t NextUint64() { return gen_.Next(); }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    using u128 = unsigned __int128;
    std::uint64_t x = gen_.Next();
    u128 m = static_cast<u128>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      std::uint64_t threshold = (~bound + 1) % bound;
      while (low < threshold) {
        x = gen_.Next();
        m = static_cast<u128>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(gen_.Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [0, high).
  double NextDouble(double high) { return NextDouble() * high; }

  /// Uniform double in [low, high).
  double NextDouble(double low, double high) {
    return low + NextDouble() * (high - low);
  }

  /// Standard normal deviate (Box–Muller with cached spare; platform
  /// deterministic, unlike std::normal_distribution).
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 0.0);
    u2 = NextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  std::uint64_t operator()() { return gen_.Next(); }
  static constexpr std::uint64_t min() { return Pcg64::min(); }
  static constexpr std::uint64_t max() { return Pcg64::max(); }

 private:
  Pcg64 gen_;
  std::uint64_t seed_;
  std::uint64_t stream_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tg::rng

#endif  // TRILLIONG_RNG_RANDOM_H_
