// rng/lane_rng.h — multi-lane uniform deviate generator for the edge kernel:
// SplitMix64 rewritten in counter form so 4 lanes of AVX2 integer arithmetic
// (or a scalar-unrolled portable loop) produce the *same* stream as the
// sequential reference, bit for bit. The hot generation path draws all of its
// per-edge randomness through this type; because every output is a pure
// function of (seed, counter), the stream is identical at any lane width,
// any batch size, and with SIMD compiled out (TG_NO_SIMD) or forced off at
// runtime — the determinism contract documented in docs/PERFORMANCE.md.
#ifndef TRILLIONG_RNG_LANE_RNG_H_
#define TRILLIONG_RNG_LANE_RNG_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "rng/random.h"

#if defined(__AVX2__) && !defined(TG_NO_SIMD)
#include <immintrin.h>
#define TG_LANE_RNG_AVX2 1
#endif

namespace tg::rng {

/// Maps 64 random bits to a uniform double in [0, 1) with 52 random mantissa
/// bits via the exponent-splice trick: build a double in [1, 2) and subtract
/// 1.0. Exactly one integer OR + one IEEE subtract, so the scalar and SIMD
/// conversions are bit-identical by construction (no int->fp rounding mode
/// involved).
inline double UnitDoubleFromBits(std::uint64_t bits) {
  const std::uint64_t mant = (bits >> 12) | 0x3FF0000000000000ULL;
  double d;
  std::memcpy(&d, &mant, sizeof(d));
  return d - 1.0;
}

namespace internal {

/// SplitMix64's finalizer applied to an explicit counter value. The
/// sequential SplitMix64 with initial state s emits Mix64(s + (i+1)*gamma)
/// at step i, so a counter-form generator that tracks s + i*gamma
/// reproduces the exact reference stream while exposing the embarrassing
/// parallelism across i.
inline std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

}  // namespace internal

/// Process-wide switch forcing the portable (scalar-unrolled) fill loops
/// even in an AVX2 build. Exists so one binary can prove SIMD-on and
/// SIMD-off output bit-identical (tests, gen_cli --portable_kernel, the
/// TG_PORTABLE_KERNEL env hook for A/B benching). Reads are relaxed: the
/// flag is a test/bench knob, not a synchronization point.
inline std::atomic<bool>& LaneForcePortableFlag() {
  static std::atomic<bool> flag(std::getenv("TG_PORTABLE_KERNEL") != nullptr);
  return flag;
}

inline void SetLaneForcePortable(bool force) {
  LaneForcePortableFlag().store(force, std::memory_order_relaxed);
}

/// The lane generator. One instance per AVS scope (seeded from the scope's
/// deterministic stream key); header draws (scope-size Gaussian) and bulk
/// deviate blocks consume one shared counter, so interleaving scalar Next()
/// calls with vector Fill* calls cannot change any value.
class LaneRng {
 public:
  /// Lanes the widest compiled kernel advances per step (informational).
#ifdef TG_LANE_RNG_AVX2
  static constexpr int kLanes = 4;
#else
  static constexpr int kLanes = 1;
#endif

  explicit LaneRng(std::uint64_t seed) : state_(seed) {}

  /// True when a vector kernel is compiled in (AVX2 build without
  /// TG_NO_SIMD).
  static constexpr bool CompiledSimd() {
#ifdef TG_LANE_RNG_AVX2
    return true;
#else
    return false;
#endif
  }

  /// True when Fill* will actually take the vector path right now.
  static bool SimdActive() {
    return CompiledSimd() &&
           !LaneForcePortableFlag().load(std::memory_order_relaxed);
  }

  /// Next raw 64-bit value — identical to SplitMix64::Next() from the same
  /// seed.
  std::uint64_t Next() { return internal::Mix64(state_ += internal::kGamma); }

  /// Next uniform double in [0, 1).
  double NextUnit() { return UnitDoubleFromBits(Next()); }

  /// Standard normal deviate (Box–Muller, first value r*cos(theta); the
  /// scope-size draw needs exactly one Gaussian so no spare is cached).
  double NextGaussian() {
    double u1;
    do {
      u1 = NextUnit();
    } while (u1 <= 0.0);
    const double u2 = NextUnit();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * M_PI * u2);
  }

  /// Fills out[0..n) with the next n raw 64-bit values of the stream.
  void FillRaw(std::uint64_t* out, std::size_t n) {
#ifdef TG_LANE_RNG_AVX2
    if (SimdActive()) {
      FillRawAvx2(out, n);
      return;
    }
#endif
    FillRawPortable(out, n);
  }

  /// Fills out[0..n) with the next n uniform doubles in [0, 1).
  void FillUnit(double* out, std::size_t n) {
#ifdef TG_LANE_RNG_AVX2
    if (SimdActive()) {
      FillUnitAvx2(out, n);
      return;
    }
#endif
    FillUnitPortable(out, n);
  }

  /// Portable reference loops: always compiled, used by tests to pin the
  /// vector kernels and by the forced-portable mode. Unrolled by four so the
  /// compiler can keep four independent mix chains in flight even without
  /// vector ISA.
  void FillRawPortable(std::uint64_t* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const std::uint64_t s = state_;
      out[i + 0] = internal::Mix64(s + 1 * internal::kGamma);
      out[i + 1] = internal::Mix64(s + 2 * internal::kGamma);
      out[i + 2] = internal::Mix64(s + 3 * internal::kGamma);
      out[i + 3] = internal::Mix64(s + 4 * internal::kGamma);
      state_ = s + 4 * internal::kGamma;
    }
    for (; i < n; ++i) out[i] = Next();
  }

  void FillUnitPortable(double* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const std::uint64_t s = state_;
      out[i + 0] = UnitDoubleFromBits(internal::Mix64(s + 1 * internal::kGamma));
      out[i + 1] = UnitDoubleFromBits(internal::Mix64(s + 2 * internal::kGamma));
      out[i + 2] = UnitDoubleFromBits(internal::Mix64(s + 3 * internal::kGamma));
      out[i + 3] = UnitDoubleFromBits(internal::Mix64(s + 4 * internal::kGamma));
      state_ = s + 4 * internal::kGamma;
    }
    for (; i < n; ++i) out[i] = NextUnit();
  }

#ifdef TG_LANE_RNG_AVX2
  void FillRawAvx2(std::uint64_t* out, std::size_t n) {
    std::size_t i = 0;
    __m256i ctr = CounterVector();
    const __m256i step = _mm256_set1_epi64x(
        static_cast<long long>(4 * internal::kGamma));
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Mix4(ctr));
      ctr = _mm256_add_epi64(ctr, step);
      state_ += 4 * internal::kGamma;
    }
    for (; i < n; ++i) out[i] = Next();
  }

  void FillUnitAvx2(double* out, std::size_t n) {
    std::size_t i = 0;
    __m256i ctr = CounterVector();
    const __m256i step = _mm256_set1_epi64x(
        static_cast<long long>(4 * internal::kGamma));
    const __m256i exp = _mm256_set1_epi64x(0x3FF0000000000000LL);
    const __m256d one = _mm256_set1_pd(1.0);
    for (; i + 4 <= n; i += 4) {
      const __m256i z = Mix4(ctr);
      // Same exponent-splice conversion as UnitDoubleFromBits, lane-wise.
      const __m256i mant = _mm256_or_si256(_mm256_srli_epi64(z, 12), exp);
      _mm256_storeu_pd(out + i,
                       _mm256_sub_pd(_mm256_castsi256_pd(mant), one));
      ctr = _mm256_add_epi64(ctr, step);
      state_ += 4 * internal::kGamma;
    }
    for (; i < n; ++i) out[i] = NextUnit();
  }
#endif  // TG_LANE_RNG_AVX2

 private:
#ifdef TG_LANE_RNG_AVX2
  /// [state+g, state+2g, state+3g, state+4g] — the next four counters.
  __m256i CounterVector() const {
    const __m256i base = _mm256_set1_epi64x(static_cast<long long>(state_));
    const __m256i offs = _mm256_setr_epi64x(
        static_cast<long long>(1 * internal::kGamma),
        static_cast<long long>(2 * internal::kGamma),
        static_cast<long long>(3 * internal::kGamma),
        static_cast<long long>(4 * internal::kGamma));
    return _mm256_add_epi64(base, offs);
  }

  /// 64x64->64 low multiply by a broadcast constant (AVX2 has only 32x32
  /// widening multiplies; the three-product decomposition is exact mod 2^64).
  static __m256i Mul64(__m256i a, __m256i b) {
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i lo = _mm256_mul_epu32(a, b);
    const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                           _mm256_mul_epu32(a_hi, b));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
  }

  /// Four lanes of internal::Mix64.
  static __m256i Mix4(__m256i z) {
    const __m256i m1 = _mm256_set1_epi64x(
        static_cast<long long>(0xbf58476d1ce4e5b9ULL));
    const __m256i m2 = _mm256_set1_epi64x(
        static_cast<long long>(0x94d049bb133111ebULL));
    z = Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), m1);
    z = Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), m2);
    return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
  }
#endif  // TG_LANE_RNG_AVX2

  std::uint64_t state_;
};

}  // namespace tg::rng

#endif  // TRILLIONG_RNG_LANE_RNG_H_
