// rng/alias_table.h — O(1) discrete sampling via Walker's alias method.
// Two flavors: AliasTable, the general-purpose variant (arbitrary size, two
// RNG draws per sample) kept for data-driven degree distributions; and
// PackedAliasTable, the kernel variant used by the baseline prefix tables
// (baseline/rmat.h) — power-of-two size so a single 64-bit draw supplies
// both the column choice (top bits) and the accept/alias test (low bits vs
// a precomputed integer threshold), with no floating-point comparison in
// the sample path.
#ifndef TRILLIONG_RNG_ALIAS_TABLE_H_
#define TRILLIONG_RNG_ALIAS_TABLE_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "rng/random.h"
#include "util/common.h"

namespace tg::rng {

/// Walker alias method: O(1) sampling from an arbitrary discrete
/// distribution after O(n) construction. Substrate for the data-driven
/// (LDBC-style) degree distributions of the extended gMark generator — the
/// direction the paper's Section 8 names as future work ("improve TrillionG
/// to support frequency distributions ... by using data dictionaries").
class AliasTable {
 public:
  /// `weights` need not be normalized; they must be non-negative with a
  /// positive sum.
  explicit AliasTable(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    TG_CHECK(n > 0);
    double total = 0;
    for (double w : weights) {
      TG_CHECK_MSG(w >= 0, "negative weight");
      total += w;
    }
    TG_CHECK_MSG(total > 0, "weights sum to zero");

    prob_.resize(n);
    alias_.resize(n);
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }
    std::vector<std::uint32_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(
          static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      std::uint32_t s = small.back();
      small.pop_back();
      std::uint32_t l = large.back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::uint32_t i : large) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
    for (std::uint32_t i : small) {  // numerical leftovers
      prob_[i] = 1.0;
      alias_[i] = i;
    }
  }

  std::size_t size() const { return prob_.size(); }

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight. One bounded integer + one uniform double per sample.
  std::size_t Sample(Rng* rng) const {
    std::size_t column = rng->NextBounded(prob_.size());
    return rng->NextDouble() < prob_[column] ? column : alias_[column];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Alias table with 2^k outcomes sampled from one raw 64-bit value: the top
/// k bits pick the column, the remaining 64-k bits are compared against the
/// column's acceptance threshold scaled to integer range. Outcome counts
/// that are not powers of two are handled by zero-padding the weight vector
/// (zero-weight columns get threshold 0 and are never accepted, so only
/// their alias can be drawn). One load + one compare per sample.
class PackedAliasTable {
 public:
  PackedAliasTable() = default;

  /// `weights.size()` must be a power of two; weights are non-negative with
  /// a positive sum (zeros allowed — pad with them).
  explicit PackedAliasTable(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    TG_CHECK_MSG(n > 0 && (n & (n - 1)) == 0,
                 "PackedAliasTable size must be a power of two");
    bits_ = 0;
    while ((std::size_t{1} << bits_) < n) ++bits_;
    low_mask_ = bits_ == 0 ? ~std::uint64_t{0} : (~std::uint64_t{0} >> bits_);

    double total = 0;
    for (double w : weights) {
      TG_CHECK_MSG(w >= 0, "negative weight");
      total += w;
    }
    TG_CHECK_MSG(total > 0, "weights sum to zero");

    // Standard alias construction on weights scaled to mean 1...
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }
    std::vector<double> prob(n);
    alias_.resize(n);
    std::vector<std::uint32_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(
          static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      std::uint32_t s = small.back();
      small.pop_back();
      std::uint32_t l = large.back();
      large.pop_back();
      prob[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::uint32_t i : large) {
      prob[i] = 1.0;
      alias_[i] = i;
    }
    for (std::uint32_t i : small) {  // numerical leftovers
      prob[i] = 1.0;
      alias_[i] = i;
    }

    // ...then bake each acceptance probability into an integer threshold on
    // the (64 - k) low bits. prob == 1 maps to a threshold strictly above
    // the largest low value, so full columns always accept.
    threshold_.resize(n);
    const double span = std::ldexp(1.0, 64 - bits_);
    for (std::size_t i = 0; i < n; ++i) {
      threshold_[i] = prob[i] >= 1.0
                          ? low_mask_ + (bits_ == 0 ? 0 : 1)
                          : static_cast<std::uint64_t>(prob[i] * span);
    }
  }

  std::size_t size() const { return alias_.size(); }

  /// Draws an outcome from one raw 64-bit value (e.g. Rng::NextUint64 or a
  /// LaneRng batch). Branch-predictable: a single compare selects column or
  /// alias.
  std::uint32_t Sample(std::uint64_t r) const {
    if (bits_ == 0) return 0;
    const auto column = static_cast<std::uint32_t>(r >> (64 - bits_));
    return (r & low_mask_) < threshold_[column] ? column : alias_[column];
  }

 private:
  std::vector<std::uint64_t> threshold_;
  std::vector<std::uint32_t> alias_;
  int bits_ = 0;
  std::uint64_t low_mask_ = 0;
};

}  // namespace tg::rng

#endif  // TRILLIONG_RNG_ALIAS_TABLE_H_
