#ifndef TRILLIONG_RNG_ALIAS_TABLE_H_
#define TRILLIONG_RNG_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "rng/random.h"
#include "util/common.h"

namespace tg::rng {

/// Walker alias method: O(1) sampling from an arbitrary discrete
/// distribution after O(n) construction. Substrate for the data-driven
/// (LDBC-style) degree distributions of the extended gMark generator — the
/// direction the paper's Section 8 names as future work ("improve TrillionG
/// to support frequency distributions ... by using data dictionaries").
class AliasTable {
 public:
  /// `weights` need not be normalized; they must be non-negative with a
  /// positive sum.
  explicit AliasTable(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    TG_CHECK(n > 0);
    double total = 0;
    for (double w : weights) {
      TG_CHECK_MSG(w >= 0, "negative weight");
      total += w;
    }
    TG_CHECK_MSG(total > 0, "weights sum to zero");

    prob_.resize(n);
    alias_.resize(n);
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }
    std::vector<std::uint32_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(
          static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      std::uint32_t s = small.back();
      small.pop_back();
      std::uint32_t l = large.back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::uint32_t i : large) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
    for (std::uint32_t i : small) {  // numerical leftovers
      prob_[i] = 1.0;
      alias_[i] = i;
    }
  }

  std::size_t size() const { return prob_.size(); }

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight. One bounded integer + one uniform double per sample.
  std::size_t Sample(Rng* rng) const {
    std::size_t column = rng->NextBounded(prob_.size());
    return rng->NextDouble() < prob_[column] ? column : alias_[column];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace tg::rng

#endif  // TRILLIONG_RNG_ALIAS_TABLE_H_
