// prof/profiler.h — tg::prof: an in-process, no-dependency sampling
// profiler. A process-wide CPU-time timer (timer_create + SIGPROF) fires at
// a fixed rate; the signal handler captures a frame-pointer call stack
// (async-signal-safe, bounded depth) into a per-thread lock-free sample
// ring modeled on obs/trace.cc's seqlock rings. Each sample is tagged with
// the current obs phase, the simulated machine, and the worker id, so
// profiles slice along the same dimensions as the metrics. A collector
// thread drains the rings and deduplicates stacks into a hash-interned
// stack table; prof/folded.h renders the table as flamegraph.pl-compatible
// collapsed stacks and as the `prof` section of a RunReport.
//
// Off-CPU time rides along: subsystems that measure blocking (the async
// writer's producer stall, the scheduler's steal-wait) call RecordStall,
// and the folded output shows that time as synthetic `[stall:<kind>]`
// frames next to the on-CPU stacks.
//
// The profiler only *reads* program state — generated output is
// bit-identical with sampling on or off (CI's prof-smoke job proves it).
// docs/OBSERVABILITY.md "Profiling" documents usage and the output formats.
#ifndef TRILLIONG_PROF_PROFILER_H_
#define TRILLIONG_PROF_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tg::prof {

/// Frames kept per sample. Deeper stacks are truncated at the leaf end's
/// 48th ancestor; the root-most frames are the ones lost.
inline constexpr int kMaxStackDepth = 48;

/// Slots per per-thread sample ring. The collector drains every ~50 ms; at
/// the default 99 Hz a ring holds many seconds of samples, so drops only
/// happen when the collector is starved.
inline constexpr int kRingSlots = 256;

/// Sample rings available. Threads self-register (explicitly via
/// EnsureThreadRegistered, or lazily from the signal handler); threads past
/// this count are sampled into the drop counter instead.
inline constexpr int kMaxProfiledThreads = 64;

struct ProfilerOptions {
  /// Samples per second of *process CPU time* (99 by default — the
  /// conventional off-by-one from 100 so sampling never aliases against
  /// 10 ms-periodic work).
  int hz = 99;
};

/// Installs the SIGPROF handler, arms the CPU-time timer, and starts the
/// collector thread. Fails if already running or if the OS refuses the
/// timer. Restarting after StopProfiler discards the previous session's
/// samples.
Status StartProfiler(const ProfilerOptions& options = {});

/// Disarms the timer, drains every ring one final time, and joins the
/// collector. The aggregated profile remains readable (TakeSnapshot,
/// ExportTo, WriteFoldedFile) until the next StartProfiler. Idempotent.
void StopProfiler();

bool ProfilerRunning();

struct ProfilerStatus {
  bool running = false;
  int hz = 0;
  std::uint64_t samples = 0;  ///< collected into the stack table
  std::uint64_t dropped = 0;  ///< overwritten or ring-less, never collected
  int threads = 0;            ///< sample rings handed out
  double ring_occupancy = 0.0;  ///< max undrained fraction across rings
};
ProfilerStatus GetStatus();

/// The deduplicated profile: one row per distinct
/// (stack, phase, machine, worker) with its sample count, plus the off-CPU
/// stall totals converted to sample-equivalents at the profiler rate.
struct ProfileSnapshot {
  struct Stack {
    std::uint32_t stack_id = 0;  ///< stable within one profiler session
    std::vector<std::uintptr_t> pcs;  ///< leaf first
    const char* phase = "";
    int machine = -1;
    int worker = -1;
    std::uint64_t count = 0;
  };
  struct Stall {
    std::string kind;  ///< "writer", "steal_wait", "idle", ...
    const char* phase = "";
    int machine = -1;
    std::uint64_t count = 0;  ///< seconds * hz, rounded
  };
  std::vector<Stack> stacks;
  std::vector<Stall> stalls;
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  int hz = 0;
};

/// Drains every ring and returns the cumulative aggregate since the last
/// StartProfiler. Safe from any thread; empty when never started.
ProfileSnapshot TakeSnapshot();

/// Records `seconds` of off-CPU time under `[stall:<kind>]`, attributed to
/// the current obs phase. `machine` defaults to the calling thread's
/// simulated machine tag; pass an explicit id when recording on behalf of
/// another thread (the scheduler's post-join idle accounting does). No-op
/// while the profiler is not running; `kind` must be a string literal.
void RecordStall(const char* kind, double seconds, int machine = -2);

/// Registers the calling thread for full-depth sampling: grabs a sample
/// ring, resolves the thread's stack bounds (the unwinder refuses to walk
/// without them), and tags future samples with `worker_id`. Threads that
/// skip this still get leaf-only samples via lazy in-handler registration.
void EnsureThreadRegistered(int worker_id = -1);

/// Test hook: captures the calling thread's stack with the same bounded
/// frame-pointer walk the signal handler uses (minus the signal). Returns
/// the depth written into `pcs`. Works without a running profiler.
int CaptureStack(std::uintptr_t* pcs, int max_depth);

}  // namespace tg::prof

#endif  // TRILLIONG_PROF_PROFILER_H_
