#include "prof/folded.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/run_report.h"
#include "prof/symbolize.h"

namespace tg::prof {

namespace {

/// Frames kept per phase in the RunReport `prof` section.
constexpr std::size_t kTopFramesPerPhase = 20;

const char* PhaseName(const char* phase) {
  return (phase != nullptr && *phase != '\0') ? phase : "(idle)";
}

std::string StallFrame(const std::string& kind) {
  return "[stall:" + kind + "]";
}

/// Renders one stack as `phase;root;...;leaf` (pcs arrive leaf-first).
std::string FoldedLine(const ProfileSnapshot::Stack& stack) {
  std::string line = PhaseName(stack.phase);
  for (std::size_t i = stack.pcs.size(); i-- > 0;) {
    line += ';';
    line += SymbolizeFrame(stack.pcs[i], /*is_leaf=*/i == 0);
  }
  return line;
}

std::string JoinLines(const std::map<std::string, std::uint64_t>& lines) {
  std::string out;
  for (const auto& [line, count] : lines) {
    if (count == 0) continue;
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace

std::string RenderFolded(const ProfileSnapshot& snapshot) {
  std::map<std::string, std::uint64_t> lines;  // lexically sorted
  for (const ProfileSnapshot::Stack& stack : snapshot.stacks) {
    lines[FoldedLine(stack)] += stack.count;
  }
  for (const ProfileSnapshot::Stall& stall : snapshot.stalls) {
    lines[std::string(PhaseName(stall.phase)) + ';' + StallFrame(stall.kind)] +=
        stall.count;
  }
  return JoinLines(lines);
}

std::string RenderFoldedDiff(const ProfileSnapshot& before,
                             const ProfileSnapshot& after) {
  // Stack ids are stable within one profiler session and counts are
  // cumulative, so the interval profile is a per-row subtraction.
  std::map<std::tuple<std::uint32_t, std::string, int, int>, std::uint64_t>
      stack_base;
  for (const ProfileSnapshot::Stack& stack : before.stacks) {
    stack_base[{stack.stack_id, PhaseName(stack.phase), stack.machine,
                stack.worker}] = stack.count;
  }
  std::map<std::tuple<std::string, std::string, int>, std::uint64_t>
      stall_base;
  for (const ProfileSnapshot::Stall& stall : before.stalls) {
    stall_base[{stall.kind, PhaseName(stall.phase), stall.machine}] =
        stall.count;
  }

  std::map<std::string, std::uint64_t> lines;
  for (const ProfileSnapshot::Stack& stack : after.stacks) {
    std::uint64_t base = 0;
    auto it = stack_base.find({stack.stack_id, PhaseName(stack.phase),
                               stack.machine, stack.worker});
    if (it != stack_base.end()) base = it->second;
    if (stack.count <= base) continue;
    lines[FoldedLine(stack)] += stack.count - base;
  }
  for (const ProfileSnapshot::Stall& stall : after.stalls) {
    std::uint64_t base = 0;
    auto it =
        stall_base.find({stall.kind, PhaseName(stall.phase), stall.machine});
    if (it != stall_base.end()) base = it->second;
    if (stall.count <= base) continue;
    lines[std::string(PhaseName(stall.phase)) + ';' + StallFrame(stall.kind)] +=
        stall.count - base;
  }
  return JoinLines(lines);
}

void ExportTo(const ProfileSnapshot& snapshot, obs::RunReport* report) {
  report->prof.emplace();
  obs::ProfSection& section = *report->prof;
  section.samples = snapshot.samples;
  section.dropped = snapshot.dropped;
  section.hz = snapshot.hz;

  // (phase, frame) -> {self, total}. `total` counts each sample once even
  // when recursion puts the frame on the stack multiple times.
  std::map<std::pair<std::string, std::string>,
           std::pair<std::uint64_t, std::uint64_t>>
      frames;
  for (const ProfileSnapshot::Stack& stack : snapshot.stacks) {
    const std::string phase = PhaseName(stack.phase);
    std::set<std::string> on_stack;
    for (std::size_t i = 0; i < stack.pcs.size(); ++i) {
      on_stack.insert(SymbolizeFrame(stack.pcs[i], /*is_leaf=*/i == 0));
    }
    if (!stack.pcs.empty()) {
      frames[{phase, SymbolizeFrame(stack.pcs[0], /*is_leaf=*/true)}].first +=
          stack.count;
    }
    for (const std::string& name : on_stack) {
      frames[{phase, name}].second += stack.count;
    }
  }
  for (const ProfileSnapshot::Stall& stall : snapshot.stalls) {
    auto& cell = frames[{PhaseName(stall.phase), StallFrame(stall.kind)}];
    cell.first += stall.count;
    cell.second += stall.count;
  }

  // Top frames per phase by total time, phases in lexical order.
  std::map<std::string, std::vector<obs::ProfFrameRow>> by_phase;
  for (const auto& [key, cell] : frames) {
    obs::ProfFrameRow row;
    row.phase = key.first;
    row.frame = key.second;
    row.self = cell.first;
    row.total = cell.second;
    by_phase[key.first].push_back(std::move(row));
  }
  for (auto& [phase, rows] : by_phase) {
    std::sort(rows.begin(), rows.end(),
              [](const obs::ProfFrameRow& a, const obs::ProfFrameRow& b) {
                if (a.total != b.total) return a.total > b.total;
                if (a.self != b.self) return a.self > b.self;
                return a.frame < b.frame;
              });
    if (rows.size() > kTopFramesPerPhase) rows.resize(kTopFramesPerPhase);
    for (obs::ProfFrameRow& row : rows) {
      section.frames.push_back(std::move(row));
    }
  }
}

Status WriteFoldedFile(const ProfileSnapshot& snapshot,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open profile output: " + path);
  out << RenderFolded(snapshot);
  out.flush();
  if (!out) return Status::IoError("short write to profile output: " + path);
  return Status::Ok();
}

}  // namespace tg::prof
