#include "prof/profiler.h"

#include <errno.h>
#include <pthread.h>
#include <signal.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

#if defined(__linux__)
#include <ucontext.h>
#endif

namespace tg::prof {

namespace {

/// One captured sample. The seqlock protocol is obs/trace.cc's: seq goes
/// odd (2h+1) while the handler writes, even (2h+2) when the slot is
/// consistent; the collector revalidates after copying and discards slots
/// the writer lapped mid-read. All payload fields are relaxed atomics so
/// the protocol is explicit to ThreadSanitizer.
struct SampleSlot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::int32_t> depth{0};
  std::atomic<std::int32_t> machine{-1};
  std::atomic<std::int32_t> worker{-1};
  std::atomic<const char*> phase{nullptr};
  std::atomic<std::uintptr_t> pcs[kMaxStackDepth] = {};
};

/// One thread's single-writer ring. Only the owning thread's signal handler
/// writes; only the collector reads. The writer never blocks — if the
/// collector falls behind, old samples are overwritten and counted as
/// dropped from the head/drained_head gap.
struct SampleRing {
  std::atomic<std::uint64_t> head{0};
  SampleSlot slots[kRingSlots];
  std::uint64_t drained_head = 0;  ///< collector-side only
};

/// Everything the signal handler touches. Allocated once and leaked so a
/// signal delivered after StopProfiler can never dereference freed memory.
struct ProfState {
  std::atomic<bool> sampling{false};
  /// Bumped per StartProfiler so threads caching a ring pointer from a
  /// previous session re-register instead of writing into reset rings.
  std::atomic<std::uint64_t> generation{0};
  std::atomic<int> next_ring{0};
  /// Samples lost because every ring was taken (> kMaxProfiledThreads
  /// distinct threads got sampled).
  std::atomic<std::uint64_t> lost_no_ring{0};
  SampleRing rings[kMaxProfiledThreads];
};

std::atomic<ProfState*> g_state{nullptr};

// Per-thread registration. Stack bounds are resolved once (they never
// change for a live thread); the ring is re-acquired when the profiler
// restarts. The signal handler only reads/writes these thread_locals plus
// ProfState atomics — no locks, no allocation.
thread_local SampleRing* t_ring = nullptr;
thread_local std::uint64_t t_ring_generation = 0;
thread_local int t_worker = -1;
thread_local std::uintptr_t t_stack_lo = 0;
thread_local std::uintptr_t t_stack_hi = 0;
thread_local bool t_bounds_resolved = false;

/// Grabs (or revalidates) this thread's ring. Async-signal-safe: the pool
/// is preallocated, so registration is one fetch_add plus thread_local
/// stores. Returns nullptr when the pool is exhausted.
SampleRing* AcquireRing(ProfState* state) {
  const std::uint64_t generation =
      state->generation.load(std::memory_order_acquire);
  if (t_ring != nullptr && t_ring_generation == generation) return t_ring;
  const int idx = state->next_ring.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxProfiledThreads) return nullptr;
  t_ring = &state->rings[idx];
  t_ring_generation = generation;
  return t_ring;
}

/// Bounded frame-pointer walk. `pc` is recorded as the leaf; the chain is
/// only followed when the thread's stack bounds are known (lo < hi), and
/// every frame pointer is validated — in bounds, word-aligned, strictly
/// increasing — before dereferencing, so a torn or foreign frame ends the
/// walk instead of faulting.
int WalkFrames(std::uintptr_t pc, std::uintptr_t fp, std::uintptr_t lo,
               std::uintptr_t hi, std::uintptr_t* pcs, int max_depth) {
  if (max_depth <= 0) return 0;
  int depth = 0;
  pcs[depth++] = pc;
  if (lo == 0 || hi <= lo) return depth;
  constexpr std::uintptr_t kWord = sizeof(std::uintptr_t);
  while (depth < max_depth) {
    if (fp < lo || fp + 2 * kWord > hi || (fp % kWord) != 0) break;
    const std::uintptr_t* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t next_fp = frame[0];
    const std::uintptr_t ret = frame[1];
    if (ret < 4096) break;  // fell off the call chain into zeroed stack
    pcs[depth++] = ret;
    if (next_fp <= fp) break;  // frame pointers must grow toward the base
    fp = next_fp;
  }
  return depth;
}

void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* ucontext_raw) {
  ProfState* state = g_state.load(std::memory_order_acquire);
  if (state == nullptr || !state->sampling.load(std::memory_order_relaxed)) {
    return;
  }
  const int saved_errno = errno;
  SampleRing* ring = AcquireRing(state);
  if (ring == nullptr) {
    state->lost_no_ring.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }

  std::uintptr_t pcs[kMaxStackDepth];
  int depth = 0;
#if defined(__linux__) && defined(__x86_64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_raw);
  depth = WalkFrames(
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]),
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]),
      t_stack_lo, t_stack_hi, pcs, kMaxStackDepth);
#elif defined(__linux__) && defined(__aarch64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_raw);
  depth = WalkFrames(static_cast<std::uintptr_t>(uc->uc_mcontext.pc),
                     static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]),
                     t_stack_lo, t_stack_hi, pcs, kMaxStackDepth);
#else
  (void)ucontext_raw;
#endif
  if (depth == 0) {
    errno = saved_errno;
    return;
  }

  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  SampleSlot& slot = ring->slots[h % kRingSlots];
  slot.seq.store(2 * h + 1, std::memory_order_release);
  slot.depth.store(depth, std::memory_order_relaxed);
  slot.machine.store(obs::CurrentMachine(), std::memory_order_relaxed);
  slot.worker.store(t_worker, std::memory_order_relaxed);
  slot.phase.store(obs::CurrentPhase(), std::memory_order_relaxed);
  for (int i = 0; i < depth; ++i) {
    slot.pcs[i].store(pcs[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * h + 2, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
  errno = saved_errno;
}

/// Collector-side state: timer/thread lifecycle under `mu`, the aggregated
/// stack table under `table_mu`. Lock order: `mu` before `table_mu`, never
/// the reverse. Leaked like ProfState for symmetry.
struct Collector {
  std::mutex mu;
  bool running = false;
  bool stop_requested = false;
  timer_t timer{};
  std::thread thread;
  std::condition_variable cv;

  std::mutex table_mu;
  int hz = 0;
  /// Stack interning: distinct pc sequences get dense ids; stacks_by_id
  /// points into the map's (stable) keys.
  std::map<std::vector<std::uintptr_t>, std::uint32_t> intern;
  std::vector<const std::vector<std::uintptr_t>*> stacks_by_id;
  /// Sample counts keyed (stack id, phase literal, machine, worker).
  std::map<std::tuple<std::uint32_t, const void*, int, int>, std::uint64_t>
      counts;
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  /// Off-CPU seconds keyed (kind, phase literal, machine).
  std::map<std::tuple<std::string, const void*, int>, double> stall_seconds;
};

Collector& GlobalCollector() {
  static Collector* collector = new Collector();  // leaked
  return *collector;
}

/// Drains every ring into the stack table. Caller holds table_mu.
void DrainIntoTables(ProfState* state, Collector& c) {
  const int num_rings = std::min(
      state->next_ring.load(std::memory_order_acquire), kMaxProfiledThreads);
  std::vector<std::uintptr_t> key;
  for (int r = 0; r < num_rings; ++r) {
    SampleRing& ring = state->rings[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    std::uint64_t begin = head > kRingSlots ? head - kRingSlots : 0;
    if (begin < ring.drained_head) begin = ring.drained_head;
    c.dropped += begin - ring.drained_head;
    for (std::uint64_t i = begin; i < head; ++i) {
      SampleSlot& slot = ring.slots[i % kRingSlots];
      if (slot.seq.load(std::memory_order_acquire) != 2 * i + 2) continue;
      int depth = slot.depth.load(std::memory_order_relaxed);
      if (depth < 1) depth = 1;
      if (depth > kMaxStackDepth) depth = kMaxStackDepth;
      const int machine = slot.machine.load(std::memory_order_relaxed);
      const int worker = slot.worker.load(std::memory_order_relaxed);
      const char* phase = slot.phase.load(std::memory_order_relaxed);
      key.clear();
      for (int j = 0; j < depth; ++j) {
        key.push_back(slot.pcs[j].load(std::memory_order_relaxed));
      }
      // Revalidate (read-don't-modify RMW, as in obs/trace.cc): if the
      // writer lapped us mid-copy the sequence has moved on and the copy
      // is torn — discard it.
      if (slot.seq.fetch_add(0, std::memory_order_acq_rel) != 2 * i + 2) {
        ++c.dropped;
        continue;
      }
      auto [it, inserted] =
          c.intern.emplace(key, static_cast<std::uint32_t>(c.intern.size()));
      if (inserted) c.stacks_by_id.push_back(&it->first);
      c.counts[{it->second, phase, machine, worker}] += 1;
      ++c.samples;
    }
    ring.drained_head = head;
  }
  obs::GetCounter("prof.samples")->Reset();
  obs::GetCounter("prof.samples")->Add(c.samples);
  const std::uint64_t dropped =
      c.dropped + state->lost_no_ring.load(std::memory_order_relaxed);
  obs::GetCounter("prof.dropped_samples")->Reset();
  obs::GetCounter("prof.dropped_samples")->Add(dropped);
}

void CollectorLoop(ProfState* state) {
  // The collector must never be sampled: a SIGPROF landing here could
  // interleave with a drain of its own ring. Blocking the signal also
  // biases CPU-time delivery toward the threads doing the work.
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &block, nullptr);

  Collector& c = GlobalCollector();
  std::unique_lock<std::mutex> lock(c.mu);
  while (!c.stop_requested) {
    c.cv.wait_for(lock, std::chrono::milliseconds(50),
                  [&] { return c.stop_requested; });
    lock.unlock();
    {
      std::lock_guard<std::mutex> table_lock(c.table_mu);
      DrainIntoTables(state, c);
    }
    lock.lock();
  }
}

/// Resolves (once) the calling thread's stack bounds for the unwinder.
void ResolveStackBounds() {
  if (t_bounds_resolved) return;
  t_bounds_resolved = true;
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0 && size > 0) {
      t_stack_lo = reinterpret_cast<std::uintptr_t>(addr);
      t_stack_hi = t_stack_lo + size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
}

}  // namespace

Status StartProfiler(const ProfilerOptions& options) {
#if !defined(__linux__)
  (void)options;
  return Status::InvalidArgument("tg::prof requires linux (timer_create)");
#else
  if (options.hz < 1 || options.hz > 10000) {
    return Status::InvalidArgument("profiler rate must be in [1, 10000] Hz");
  }
  Collector& c = GlobalCollector();
  std::unique_lock<std::mutex> lock(c.mu);
  if (c.running) return Status::InvalidArgument("profiler already running");

  ProfState* state = g_state.load(std::memory_order_acquire);
  if (state == nullptr) {
    // Leaked: a SIGPROF pending across StopProfiler must never touch freed
    // memory. One allocation per process, ~7 MB, only when profiling.
    state = new ProfState();
    g_state.store(state, std::memory_order_release);
  }

  // Reset the previous session. No timer is armed and sampling is false,
  // so no handler writes concurrently.
  for (SampleRing& ring : state->rings) {
    ring.head.store(0, std::memory_order_relaxed);
    ring.drained_head = 0;
    for (SampleSlot& slot : ring.slots) {
      slot.seq.store(0, std::memory_order_relaxed);
    }
  }
  state->lost_no_ring.store(0, std::memory_order_relaxed);
  state->next_ring.store(0, std::memory_order_relaxed);
  state->generation.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> table_lock(c.table_mu);
    c.hz = options.hz;
    c.intern.clear();
    c.stacks_by_id.clear();
    c.counts.clear();
    c.samples = 0;
    c.dropped = 0;
    c.stall_seconds.clear();
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &SigprofHandler;
  // SA_RESTART: SIGPROF interrupts syscalls at the sampling rate; restart
  // them so profiled I/O paths never see spurious EINTR.
  sa.sa_flags = SA_RESTART | SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) != 0) {
    return Status::IoError("sigaction(SIGPROF) failed");
  }

  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &c.timer) != 0) {
    return Status::IoError("timer_create(CLOCK_PROCESS_CPUTIME_ID) failed");
  }

  // Register the launching thread before the first tick so its samples are
  // full-depth from the start.
  ResolveStackBounds();
  AcquireRing(state);

  c.stop_requested = false;
  c.thread = std::thread(CollectorLoop, state);
  state->sampling.store(true, std::memory_order_release);

  const long period_ns = 1000000000L / options.hz;
  struct itimerspec its;
  its.it_interval.tv_sec = period_ns / 1000000000L;
  its.it_interval.tv_nsec = period_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(c.timer, 0, &its, nullptr) != 0) {
    state->sampling.store(false, std::memory_order_release);
    timer_delete(c.timer);
    c.stop_requested = true;
    lock.unlock();
    c.cv.notify_all();
    c.thread.join();
    return Status::IoError("timer_settime failed");
  }
  c.running = true;
  return Status::Ok();
#endif
}

void StopProfiler() {
  Collector& c = GlobalCollector();
  std::unique_lock<std::mutex> lock(c.mu);
  if (!c.running) return;
  ProfState* state = g_state.load(std::memory_order_acquire);
#if defined(__linux__)
  timer_delete(c.timer);
#endif
  state->sampling.store(false, std::memory_order_release);
  c.stop_requested = true;
  lock.unlock();
  c.cv.notify_all();
  c.thread.join();
  lock.lock();
  c.running = false;
  c.stop_requested = false;
  // Final drain so samples that landed between the collector's last pass
  // and the timer teardown make it into the table.
  std::lock_guard<std::mutex> table_lock(c.table_mu);
  DrainIntoTables(state, c);
}

bool ProfilerRunning() {
  Collector& c = GlobalCollector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.running;
}

ProfilerStatus GetStatus() {
  ProfilerStatus status;
  Collector& c = GlobalCollector();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    status.running = c.running;
  }
  ProfState* state = g_state.load(std::memory_order_acquire);
  if (state == nullptr) return status;
  std::lock_guard<std::mutex> table_lock(c.table_mu);
  status.hz = c.hz;
  status.samples = c.samples;
  status.dropped =
      c.dropped + state->lost_no_ring.load(std::memory_order_relaxed);
  const int num_rings = std::min(
      state->next_ring.load(std::memory_order_acquire), kMaxProfiledThreads);
  status.threads = num_rings;
  for (int r = 0; r < num_rings; ++r) {
    const SampleRing& ring = state->rings[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t undrained =
        std::min<std::uint64_t>(head - ring.drained_head, kRingSlots);
    status.ring_occupancy =
        std::max(status.ring_occupancy,
                 static_cast<double>(undrained) / kRingSlots);
  }
  return status;
}

ProfileSnapshot TakeSnapshot() {
  ProfileSnapshot snapshot;
  ProfState* state = g_state.load(std::memory_order_acquire);
  if (state == nullptr) return snapshot;
  Collector& c = GlobalCollector();
  std::lock_guard<std::mutex> table_lock(c.table_mu);
  DrainIntoTables(state, c);
  snapshot.hz = c.hz;
  snapshot.samples = c.samples;
  snapshot.dropped =
      c.dropped + state->lost_no_ring.load(std::memory_order_relaxed);
  snapshot.stacks.reserve(c.counts.size());
  for (const auto& [key, count] : c.counts) {
    const auto& [stack_id, phase, machine, worker] = key;
    ProfileSnapshot::Stack row;
    row.stack_id = stack_id;
    row.pcs = *c.stacks_by_id[stack_id];
    row.phase = static_cast<const char*>(phase);
    row.machine = machine;
    row.worker = worker;
    row.count = count;
    snapshot.stacks.push_back(std::move(row));
  }
  for (const auto& [key, seconds] : c.stall_seconds) {
    const auto& [kind, phase, machine] = key;
    ProfileSnapshot::Stall row;
    row.kind = kind;
    row.phase = static_cast<const char*>(phase);
    row.machine = machine;
    row.count = static_cast<std::uint64_t>(
        std::llround(seconds * static_cast<double>(c.hz)));
    if (row.count == 0) continue;  // below one sample-equivalent
    snapshot.stalls.push_back(std::move(row));
  }
  return snapshot;
}

void RecordStall(const char* kind, double seconds, int machine) {
  if (seconds <= 0.0) return;
  ProfState* state = g_state.load(std::memory_order_acquire);
  if (state == nullptr || !state->sampling.load(std::memory_order_relaxed)) {
    return;
  }
  if (machine == -2) machine = obs::CurrentMachine();
  const char* phase = obs::CurrentPhase();
  Collector& c = GlobalCollector();
  std::lock_guard<std::mutex> table_lock(c.table_mu);
  c.stall_seconds[{std::string(kind), phase, machine}] += seconds;
}

void EnsureThreadRegistered(int worker_id) {
  ResolveStackBounds();
  if (worker_id >= 0) t_worker = worker_id;
  ProfState* state = g_state.load(std::memory_order_acquire);
  if (state != nullptr) AcquireRing(state);
}

__attribute__((noinline)) int CaptureStack(std::uintptr_t* pcs,
                                           int max_depth) {
  ResolveStackBounds();
  const std::uintptr_t own_fp =
      reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
  const std::uintptr_t pc =
      reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
  // Start the walk at the caller's frame (own_fp holds its frame pointer),
  // so pcs[0] is the caller's pc — exactly what the handler records for an
  // interrupted thread.
  std::uintptr_t caller_fp = 0;
  if (own_fp >= t_stack_lo && own_fp + sizeof(std::uintptr_t) < t_stack_hi) {
    caller_fp = *reinterpret_cast<const std::uintptr_t*>(own_fp);
  }
  return WalkFrames(pc, caller_fp, t_stack_lo, t_stack_hi, pcs, max_depth);
}

}  // namespace tg::prof
