// prof/folded.h — render a ProfileSnapshot as flamegraph.pl-compatible
// collapsed stacks ("folded" text: `phase;root;...;leaf <count>` per line)
// and as the aggregated `prof` section of a RunReport (top frames per
// phase, self + total sample counts). Off-CPU stall totals appear as
// synthetic `[stall:<kind>]` leaf frames so blocked time renders next to
// on-CPU time in the same flamegraph.
#ifndef TRILLIONG_PROF_FOLDED_H_
#define TRILLIONG_PROF_FOLDED_H_

#include <string>

#include "prof/profiler.h"
#include "util/status.h"

namespace tg::obs {
struct RunReport;
}  // namespace tg::obs

namespace tg::prof {

/// Renders the snapshot as folded text: one `frame;frame;... count` line
/// per distinct symbolized stack, root first, prefixed with the obs phase,
/// lexically sorted. Identical lines (same stack observed under different
/// workers/machines, or distinct pcs symbolizing identically) are merged.
std::string RenderFolded(const ProfileSnapshot& snapshot);

/// Folded text for the samples accrued *between* two snapshots of the same
/// profiler session (`/pprof/profile?seconds=N` uses this). Counts present
/// in `before` are subtracted; rows that do not grow are omitted.
std::string RenderFoldedDiff(const ProfileSnapshot& before,
                             const ProfileSnapshot& after);

/// Fills `report->prof`: sampler totals plus the top frames per phase,
/// with `self` (samples with the frame as leaf) and `total` (samples with
/// the frame anywhere on stack, counted once per sample) columns. Stall
/// rows carry the `[stall:<kind>]` frame name.
void ExportTo(const ProfileSnapshot& snapshot, obs::RunReport* report);

/// Writes RenderFolded(snapshot) to `path` (truncating).
Status WriteFoldedFile(const ProfileSnapshot& snapshot,
                       const std::string& path);

}  // namespace tg::prof

#endif  // TRILLIONG_PROF_FOLDED_H_
