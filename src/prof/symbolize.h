// prof/symbolize.h — lazy, cached symbolization for profiler frames.
// Resolution order: dladdr (needs -rdynamic so the dynamic symbol table
// covers the binary's own functions) with abi::__cxa_demangle, then a
// /proc/self/maps lookup rendering `module+0xoffset`, then bare hex.
// Symbolization happens at render time, never in the signal handler.
#ifndef TRILLIONG_PROF_SYMBOLIZE_H_
#define TRILLIONG_PROF_SYMBOLIZE_H_

#include <cstdint>
#include <string>

namespace tg::prof {

/// Returns a human-readable name for `pc`. Non-leaf frames hold *return*
/// addresses — the instruction after the call — so pass `is_leaf = false`
/// to symbolize `pc - 1` and land inside the calling function even when
/// the call is its final instruction. Results are cached per pc.
std::string SymbolizeFrame(std::uintptr_t pc, bool is_leaf);

/// Drops the pc → name cache (tests use this to exercise cold lookups).
void ClearSymbolCache();

}  // namespace tg::prof

#endif  // TRILLIONG_PROF_SYMBOLIZE_H_
