#include "prof/symbolize.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#endif

namespace tg::prof {

namespace {

struct MapsEntry {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  std::string name;
};

/// Parses /proc/self/maps once into executable ranges. Good enough for the
/// fallback path: module+offset lets `addr2line`/`llvm-symbolizer` finish
/// the job offline when dladdr has no symbol (static functions, stripped
/// libraries).
std::vector<MapsEntry> LoadExecutableMaps() {
  std::vector<MapsEntry> entries;
  std::FILE* maps = std::fopen("/proc/self/maps", "r");
  if (maps == nullptr) return entries;
  char line[1024];
  while (std::fgets(line, sizeof(line), maps) != nullptr) {
    unsigned long long lo = 0;
    unsigned long long hi = 0;
    char perms[8] = {0};
    int path_offset = -1;
    if (std::sscanf(line, "%llx-%llx %7s %*s %*s %*s %n", &lo, &hi, perms,
                    &path_offset) < 3) {
      continue;
    }
    if (perms[2] != 'x') continue;
    MapsEntry entry;
    entry.lo = static_cast<std::uintptr_t>(lo);
    entry.hi = static_cast<std::uintptr_t>(hi);
    if (path_offset > 0) {
      std::string path(line + path_offset);
      while (!path.empty() && (path.back() == '\n' || path.back() == ' ')) {
        path.pop_back();
      }
      // Keep the basename only: full paths make folded lines unwieldy.
      const std::size_t slash = path.find_last_of('/');
      entry.name = slash == std::string::npos ? path : path.substr(slash + 1);
    }
    if (entry.name.empty()) entry.name = "anon";
    entries.push_back(std::move(entry));
  }
  std::fclose(maps);
  return entries;
}

std::string HexName(std::uintptr_t pc) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

std::string ResolveUncached(std::uintptr_t pc) {
#if defined(__linux__)
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);
      return name;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
  static const std::vector<MapsEntry>* maps =
      new std::vector<MapsEntry>(LoadExecutableMaps());  // leaked
  for (const MapsEntry& entry : *maps) {
    if (pc >= entry.lo && pc < entry.hi) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "+0x%llx",
                    static_cast<unsigned long long>(pc - entry.lo));
      return entry.name + buf;
    }
  }
#endif
  return HexName(pc);
}

struct SymbolCache {
  std::mutex mu;
  std::map<std::uintptr_t, std::string> names;
};

SymbolCache& Cache() {
  static SymbolCache* cache = new SymbolCache();  // leaked
  return *cache;
}

}  // namespace

std::string SymbolizeFrame(std::uintptr_t pc, bool is_leaf) {
  // A non-leaf pc is a return address; step back one byte so a call that
  // ends its function doesn't get attributed to the *next* function.
  const std::uintptr_t lookup = (is_leaf || pc == 0) ? pc : pc - 1;
  SymbolCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  auto it = cache.names.find(lookup);
  if (it != cache.names.end()) return it->second;
  std::string name = ResolveUncached(lookup);
  cache.names.emplace(lookup, name);
  return name;
}

void ClearSymbolCache() {
  SymbolCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.names.clear();
}

}  // namespace tg::prof
