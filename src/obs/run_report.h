// obs/run_report.h — the end-of-run serialization of everything the
// obs::Registry collected: counters, gauges, histograms, trace spans, and
// the per-simulated-machine stat table, plus free-form metadata describing
// the run configuration. One report reproduces one figure data point; the
// JSON schema is documented in docs/OBSERVABILITY.md.
#ifndef TRILLIONG_OBS_RUN_REPORT_H_
#define TRILLIONG_OBS_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/oom_report.h"
#include "util/status.h"

namespace tg::obs {

/// One sampled metric over time: parallel arrays of (seconds since sampling
/// start, value). Produced by obs::Sampler, embedded in RunReport under the
/// metric's name.
struct TimeSeries {
  double interval_seconds = 0.0;  ///< nominal sampling interval
  std::vector<double> t;          ///< monotonically non-decreasing
  std::vector<double> v;

  std::size_t size() const { return t.size(); }
};

/// One row of the RunReport "prof" section: a symbolized frame within an
/// obs phase, with `self` (samples where the frame was the leaf) and
/// `total` (samples with the frame anywhere on stack, counted once per
/// sample) counts. Stall rows use the synthetic `[stall:<kind>]` frame
/// name. Produced by prof::ExportTo.
struct ProfFrameRow {
  std::string phase;
  std::string frame;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

/// The aggregated CPU-profile section of a RunReport: sampler totals plus
/// the top frames per phase (see docs/OBSERVABILITY.md "Profiling").
struct ProfSection {
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  int hz = 0;
  std::vector<ProfFrameRow> frames;  ///< grouped by phase, hottest first
};

struct RunReport {
  /// One aggregated trace-span row (path + simulated machine tag).
  struct SpanRow {
    std::string path;
    int machine = -1;  ///< -1: recorded on an untagged thread
    std::uint64_t count = 0;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
  };

  /// Free-form run description (scale, edge_factor, workers, format, ...).
  std::map<std::string, std::string> meta;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<SpanRow> spans;  ///< sorted by (path, machine)
  /// machine id -> stat key -> value (peak_bytes, cpu_seconds, ...).
  std::map<int, std::map<std::string, double>> machines;
  /// Sampled time series, keyed by metric name (obs::Sampler::ExportTo).
  std::map<std::string, TimeSeries> series;
  /// OOM forensics when a budget tripped during the run (serialized as the
  /// "mem.oom" section; absent otherwise). Filled by Collect from the last
  /// OomError recorded via obs::RecordOom.
  std::optional<OomReport> oom;
  /// The injected-fault schedule: every "fault.*" event the fault injector
  /// recorded (crash/die/transient/iofail/shuffle_crash), in injection
  /// order. Serialized as the "fault" section; empty (and omitted from the
  /// JSON) on fault-free runs.
  std::vector<Event> fault;
  /// Aggregated sampling-profiler output (serialized as the "prof"
  /// section; absent when the run was not profiled). Filled by
  /// prof::ExportTo, never by Collect.
  std::optional<ProfSection> prof;

  /// Snapshots the registry. Counters/gauges/histograms/spans/machines are
  /// filled (plus `oom` from obs::LastOom and `fault` from the registry's
  /// "fault.*" events), and `meta` is seeded with the `build.*` keys from
  /// util/build_info so every report names the exact binary; the rest of
  /// `meta` is left for the caller.
  static RunReport Collect(const Registry& registry = Registry::Global());

  /// Stable, pretty-printed JSON (schema in docs/OBSERVABILITY.md).
  std::string ToJson() const;

  /// Parses ToJson() output back into a report (unknown keys are skipped).
  static Status FromJson(const std::string& json, RunReport* out);

  /// Human-readable multi-section table for terminal output. Histograms are
  /// summarized with p50/p90/p99 estimated from their log2 buckets.
  std::string ToTable() const;

  /// Serializes to `path`, creating missing parent directories first.
  Status WriteJsonFile(const std::string& path) const;
};

/// Standalone JSON for an OomReport (same schema as the "mem.oom" section).
std::string OomReportToJson(const OomReport& report);

/// Writes OomReportToJson to `path`, creating parent directories first.
/// Backs `gen_cli --oom_report <path>`.
Status WriteOomReportFile(const OomReport& report, const std::string& path);

}  // namespace tg::obs

#endif  // TRILLIONG_OBS_RUN_REPORT_H_
