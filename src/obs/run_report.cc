#include "obs/run_report.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/mem.h"
#include "storage/file_io.h"
#include "storage/fs.h"
#include "util/build_info.h"
#include "util/json.h"

namespace tg::obs {

namespace {

// ---------------------------------------------------------------------------
// JSON writing. The report is the only producer, so the writer is a handful
// of append helpers rather than a general serializer.

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendDouble(double v, std::string* out) {
  char buf[40];
  // %.17g round-trips IEEE doubles exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // JSON has no inf/nan; clamp to null-free sentinels.
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
    *out += "0";
    return;
  }
  *out += buf;
}

// ---------------------------------------------------------------------------
// JSON parsing — just enough to read ToJson() output back (and any JSON
// whose values fit the schema; unknown keys are skipped structurally).

struct Cursor {
  const char* p;
  const char* end;
  bool failed = false;

  void Fail() { failed = true; }

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool Consume(char c) {
    SkipWs();
    if (failed || p >= end || *p != c) return false;
    ++p;
    return true;
  }

  char Peek() {
    SkipWs();
    return (failed || p >= end) ? '\0' : *p;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      Fail();
      return false;
    }
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\' && p < end) {
        char esc = *p++;
        switch (esc) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'u':
            // Shared with util/json: full UTF-8 decode incl. surrogate pairs,
            // so multi-byte meta values round-trip through ToJson/FromJson.
            if (!json::DecodeUnicodeEscape(&p, end, out)) {
              Fail();
              return false;
            }
            break;
          default:
            out->push_back(esc);  // covers \" \\ \/
        }
      } else {
        out->push_back(c);
      }
    }
    if (p >= end) {
      Fail();
      return false;
    }
    ++p;  // closing quote
    return true;
  }

  /// Parses a number; exact for 64-bit unsigned integers.
  bool ParseNumber(double* as_double, std::uint64_t* as_u64, bool* integral) {
    SkipWs();
    const char* start = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    bool is_int = true;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+')) {
      if (*p == '.' || *p == 'e' || *p == 'E') is_int = false;
      ++p;
    }
    if (p == start) {
      Fail();
      return false;
    }
    std::string text(start, p);
    *as_double = std::strtod(text.c_str(), nullptr);
    *as_u64 = is_int && text[0] != '-'
                  ? std::strtoull(text.c_str(), nullptr, 10)
                  : static_cast<std::uint64_t>(*as_double);
    *integral = is_int;
    return true;
  }

  /// Skips any JSON value (for unknown keys).
  void SkipValue() {
    char c = Peek();
    if (failed) return;
    if (c == '{' || c == '[') {
      char open = c;
      char close = (c == '{') ? '}' : ']';
      ++p;
      int depth = 1;
      while (p < end && depth > 0) {
        if (*p == '"') {
          std::string ignored;
          ParseString(&ignored);
          continue;
        }
        if (*p == open) ++depth;
        if (*p == close) --depth;
        ++p;
      }
      if (depth != 0) Fail();
    } else if (c == '"') {
      std::string ignored;
      ParseString(&ignored);
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (p < end && std::isalpha(static_cast<unsigned char>(*p))) ++p;
    } else {
      double d;
      std::uint64_t u;
      bool i;
      ParseNumber(&d, &u, &i);
    }
  }

  /// Iterates "key": value pairs of an object; calls fn(key) positioned at
  /// the value, which fn must fully consume.
  template <typename Fn>
  bool ParseObject(const Fn& fn) {
    if (!Consume('{')) {
      Fail();
      return false;
    }
    if (Consume('}')) return true;
    do {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) {
        Fail();
        return false;
      }
      fn(key);
      if (failed) return false;
    } while (Consume(','));
    if (!Consume('}')) {
      Fail();
      return false;
    }
    return true;
  }

  /// Iterates array elements; fn is called positioned at each element.
  template <typename Fn>
  bool ParseArray(const Fn& fn) {
    if (!Consume('[')) {
      Fail();
      return false;
    }
    if (Consume(']')) return true;
    do {
      fn();
      if (failed) return false;
    } while (Consume(','));
    if (!Consume(']')) {
      Fail();
      return false;
    }
    return true;
  }

  double ParseDouble() {
    double d = 0;
    std::uint64_t u;
    bool i;
    ParseNumber(&d, &u, &i);
    return d;
  }

  std::uint64_t ParseU64() {
    double d;
    std::uint64_t u = 0;
    bool i;
    ParseNumber(&d, &u, &i);
    return u;
  }
};

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.4f", s);
  return buf;
}

/// Serializes an OomReport object; `pad` is the indentation of the opening
/// brace's line, so the section nests correctly in ToJson and stands alone
/// in OomReportToJson.
void AppendOomReport(const OomReport& report, const std::string& pad,
                     std::string* out) {
  const std::string field_pad = pad + "  ";
  *out += "{\n" + field_pad + "\"machine\": ";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", report.machine);
  *out += buf;
  *out += ",\n" + field_pad + "\"tag\": ";
  AppendEscaped(report.tag, out);
  *out += ",\n" + field_pad + "\"requested_bytes\": ";
  AppendU64(report.requested_bytes, out);
  *out += ",\n" + field_pad + "\"used_bytes\": ";
  AppendU64(report.used_bytes, out);
  *out += ",\n" + field_pad + "\"limit_bytes\": ";
  AppendU64(report.limit_bytes, out);
  *out += ",\n" + field_pad + "\"span_stack\": ";
  AppendEscaped(report.span_stack, out);
  *out += ",\n" + field_pad + "\"breakdown\": [";
  bool first = true;
  for (const OomReport::TagUsage& usage : report.breakdown) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += field_pad + "  {\"tag\": ";
    AppendEscaped(usage.tag, out);
    *out += ", \"used_bytes\": ";
    AppendU64(usage.used_bytes, out);
    *out += ", \"peak_bytes\": ";
    AppendU64(usage.peak_bytes, out);
    *out += "}";
  }
  if (!report.breakdown.empty()) *out += "\n" + field_pad;
  *out += "],\n" + field_pad + "\"headroom_t\": [";
  for (std::size_t i = 0; i < report.headroom_t.size(); ++i) {
    if (i != 0) *out += ", ";
    AppendDouble(report.headroom_t[i], out);
  }
  *out += "],\n" + field_pad + "\"headroom_pct\": [";
  for (std::size_t i = 0; i < report.headroom_pct.size(); ++i) {
    if (i != 0) *out += ", ";
    AppendDouble(report.headroom_pct[i], out);
  }
  *out += "]\n" + pad + "}";
}

void ParseOomReport(Cursor& cur, OomReport* report) {
  cur.ParseObject([&](const std::string& field) {
    if (field == "machine") {
      report->machine = static_cast<int>(cur.ParseDouble());
    } else if (field == "tag") {
      cur.ParseString(&report->tag);
    } else if (field == "requested_bytes") {
      report->requested_bytes = cur.ParseU64();
    } else if (field == "used_bytes") {
      report->used_bytes = cur.ParseU64();
    } else if (field == "limit_bytes") {
      report->limit_bytes = cur.ParseU64();
    } else if (field == "span_stack") {
      cur.ParseString(&report->span_stack);
    } else if (field == "breakdown") {
      cur.ParseArray([&] {
        OomReport::TagUsage usage;
        cur.ParseObject([&](const std::string& key) {
          if (key == "tag") {
            cur.ParseString(&usage.tag);
          } else if (key == "used_bytes") {
            usage.used_bytes = cur.ParseU64();
          } else if (key == "peak_bytes") {
            usage.peak_bytes = cur.ParseU64();
          } else {
            cur.SkipValue();
          }
        });
        report->breakdown.push_back(std::move(usage));
      });
    } else if (field == "headroom_t") {
      cur.ParseArray([&] { report->headroom_t.push_back(cur.ParseDouble()); });
    } else if (field == "headroom_pct") {
      cur.ParseArray(
          [&] { report->headroom_pct.push_back(cur.ParseDouble()); });
    } else {
      cur.SkipValue();
    }
  });
}

}  // namespace

RunReport RunReport::Collect(const Registry& registry) {
  // Fold current budget pressure / per-tag peaks into the (global) registry
  // so end-of-run reports include them even without a sampler.
  PublishMemoryGauges();
  RunReport report;
  report.oom = LastOom();
  report.counters = registry.CounterValues();
  report.gauges = registry.GaugeValues();
  report.histograms = registry.HistogramValues();
  report.machines = registry.MachineStats();
  for (const auto& [key, stats] : registry.SpanValues()) {
    report.spans.push_back(
        {key.first, key.second, stats.count, stats.wall_seconds,
         stats.cpu_seconds});
  }
  for (Event& event : registry.EventValues()) {
    if (event.kind.rfind("fault.", 0) == 0) {
      report.fault.push_back(std::move(event));
    }
  }
  // Seed meta with the binary's identity; callers add run configuration on
  // top (and may override, since this runs first).
  for (const auto& [key, value] : util::BuildInfoMap()) {
    report.meta[key] = value;
  }
  return report;
}

std::string RunReport::ToJson() const {
  std::string out;
  out += "{\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(key, &out);
    out += ": ";
    AppendEscaped(value, &out);
  }
  out += "\n  },\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(name, &out);
    out += ": ";
    AppendU64(value, &out);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(name, &out);
    out += ": ";
    AppendDouble(value, &out);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(name, &out);
    out += ": {\"count\": ";
    AppendU64(h.count, &out);
    out += ", \"sum\": ";
    AppendU64(h.sum, &out);
    out += ", \"min\": ";
    AppendU64(h.min, &out);
    out += ", \"max\": ";
    AppendU64(h.max, &out);
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out += ", ";
      AppendU64(h.buckets[i], &out);
    }
    out += "]}";
  }
  out += "\n  },\n  \"spans\": [";
  first = true;
  for (const SpanRow& row : spans) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"path\": ";
    AppendEscaped(row.path, &out);
    out += ", \"machine\": ";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", row.machine);
    out += buf;
    out += ", \"count\": ";
    AppendU64(row.count, &out);
    out += ", \"wall_seconds\": ";
    AppendDouble(row.wall_seconds, &out);
    out += ", \"cpu_seconds\": ";
    AppendDouble(row.cpu_seconds, &out);
    out += "}";
  }
  out += "\n  ],\n  \"machines\": [";
  first = true;
  for (const auto& [machine, stats] : machines) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"machine\": ";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", machine);
    out += buf;
    for (const auto& [key, value] : stats) {
      out += ", ";
      AppendEscaped(key, &out);
      out += ": ";
      AppendDouble(value, &out);
    }
    out += "}";
  }
  out += "\n  ]";
  if (oom.has_value()) {
    out += ",\n  \"mem.oom\": ";
    AppendOomReport(*oom, "  ", &out);
  }
  if (!fault.empty()) {
    out += ",\n  \"fault\": [";
    first = true;
    for (const Event& event : fault) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"kind\": ";
      AppendEscaped(event.kind, &out);
      out += ", \"machine\": ";
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%d", event.machine);
      out += buf;
      out += ", \"ordinal\": ";
      AppendU64(event.ordinal, &out);
      out += ", \"detail\": ";
      AppendEscaped(event.detail, &out);
      out += "}";
    }
    out += "\n  ]";
  }
  if (prof.has_value()) {
    out += ",\n  \"prof\": {\n    \"samples\": ";
    AppendU64(prof->samples, &out);
    out += ",\n    \"dropped\": ";
    AppendU64(prof->dropped, &out);
    out += ",\n    \"hz\": ";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", prof->hz);
    out += buf;
    out += ",\n    \"frames\": [";
    first = true;
    for (const ProfFrameRow& row : prof->frames) {
      out += first ? "\n      " : ",\n      ";
      first = false;
      out += "{\"phase\": ";
      AppendEscaped(row.phase, &out);
      out += ", \"frame\": ";
      AppendEscaped(row.frame, &out);
      out += ", \"self\": ";
      AppendU64(row.self, &out);
      out += ", \"total\": ";
      AppendU64(row.total, &out);
      out += "}";
    }
    if (!prof->frames.empty()) out += "\n    ";
    out += "]\n  }";
  }
  out += ",\n  \"series\": {";
  first = true;
  for (const auto& [name, ts] : series) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(name, &out);
    out += ": {\"interval_seconds\": ";
    AppendDouble(ts.interval_seconds, &out);
    out += ", \"t\": [";
    for (std::size_t i = 0; i < ts.t.size(); ++i) {
      if (i != 0) out += ", ";
      AppendDouble(ts.t[i], &out);
    }
    out += "], \"v\": [";
    for (std::size_t i = 0; i < ts.v.size(); ++i) {
      if (i != 0) out += ", ";
      AppendDouble(ts.v[i], &out);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

Status RunReport::FromJson(const std::string& json, RunReport* out) {
  *out = RunReport();
  Cursor cur{json.data(), json.data() + json.size()};

  cur.ParseObject([&](const std::string& section) {
    if (section == "meta") {
      cur.ParseObject([&](const std::string& key) {
        std::string value;
        cur.ParseString(&value);
        out->meta[key] = value;
      });
    } else if (section == "counters") {
      cur.ParseObject(
          [&](const std::string& key) { out->counters[key] = cur.ParseU64(); });
    } else if (section == "gauges") {
      cur.ParseObject(
          [&](const std::string& key) { out->gauges[key] = cur.ParseDouble(); });
    } else if (section == "histograms") {
      cur.ParseObject([&](const std::string& name) {
        HistogramSnapshot h;
        cur.ParseObject([&](const std::string& field) {
          if (field == "count") {
            h.count = cur.ParseU64();
          } else if (field == "sum") {
            h.sum = cur.ParseU64();
          } else if (field == "min") {
            h.min = cur.ParseU64();
          } else if (field == "max") {
            h.max = cur.ParseU64();
          } else if (field == "buckets") {
            cur.ParseArray([&] { h.buckets.push_back(cur.ParseU64()); });
          } else {
            cur.SkipValue();
          }
        });
        out->histograms[name] = std::move(h);
      });
    } else if (section == "spans") {
      cur.ParseArray([&] {
        SpanRow row;
        cur.ParseObject([&](const std::string& field) {
          if (field == "path") {
            cur.ParseString(&row.path);
          } else if (field == "machine") {
            row.machine = static_cast<int>(cur.ParseDouble());
          } else if (field == "count") {
            row.count = cur.ParseU64();
          } else if (field == "wall_seconds") {
            row.wall_seconds = cur.ParseDouble();
          } else if (field == "cpu_seconds") {
            row.cpu_seconds = cur.ParseDouble();
          } else {
            cur.SkipValue();
          }
        });
        out->spans.push_back(std::move(row));
      });
    } else if (section == "machines") {
      cur.ParseArray([&] {
        int machine = -1;
        std::map<std::string, double> stats;
        cur.ParseObject([&](const std::string& field) {
          if (field == "machine") {
            machine = static_cast<int>(cur.ParseDouble());
          } else {
            stats[field] = cur.ParseDouble();
          }
        });
        out->machines[machine] = std::move(stats);
      });
    } else if (section == "series") {
      cur.ParseObject([&](const std::string& name) {
        TimeSeries ts;
        cur.ParseObject([&](const std::string& field) {
          if (field == "interval_seconds") {
            ts.interval_seconds = cur.ParseDouble();
          } else if (field == "t") {
            cur.ParseArray([&] { ts.t.push_back(cur.ParseDouble()); });
          } else if (field == "v") {
            cur.ParseArray([&] { ts.v.push_back(cur.ParseDouble()); });
          } else {
            cur.SkipValue();
          }
        });
        out->series[name] = std::move(ts);
      });
    } else if (section == "mem.oom") {
      OomReport report;
      ParseOomReport(cur, &report);
      out->oom = std::move(report);
    } else if (section == "prof") {
      ProfSection prof_section;
      cur.ParseObject([&](const std::string& field) {
        if (field == "samples") {
          prof_section.samples = cur.ParseU64();
        } else if (field == "dropped") {
          prof_section.dropped = cur.ParseU64();
        } else if (field == "hz") {
          prof_section.hz = static_cast<int>(cur.ParseDouble());
        } else if (field == "frames") {
          cur.ParseArray([&] {
            ProfFrameRow row;
            cur.ParseObject([&](const std::string& key) {
              if (key == "phase") {
                cur.ParseString(&row.phase);
              } else if (key == "frame") {
                cur.ParseString(&row.frame);
              } else if (key == "self") {
                row.self = cur.ParseU64();
              } else if (key == "total") {
                row.total = cur.ParseU64();
              } else {
                cur.SkipValue();
              }
            });
            prof_section.frames.push_back(std::move(row));
          });
        } else {
          cur.SkipValue();
        }
      });
      out->prof = std::move(prof_section);
    } else if (section == "fault") {
      cur.ParseArray([&] {
        Event event;
        cur.ParseObject([&](const std::string& field) {
          if (field == "kind") {
            cur.ParseString(&event.kind);
          } else if (field == "machine") {
            event.machine = static_cast<int>(cur.ParseDouble());
          } else if (field == "ordinal") {
            event.ordinal = cur.ParseU64();
          } else if (field == "detail") {
            cur.ParseString(&event.detail);
          } else {
            cur.SkipValue();
          }
        });
        out->fault.push_back(std::move(event));
      });
    } else {
      cur.SkipValue();
    }
  });

  if (cur.failed) {
    return Status::Corruption("malformed run report JSON");
  }
  return Status::Ok();
}

std::string RunReport::ToTable() const {
  std::ostringstream out;
  out << "== run report ==\n";
  if (!meta.empty()) {
    out << "-- meta --\n";
    for (const auto& [key, value] : meta) {
      out << "  " << key << " = " << value << "\n";
    }
  }
  // Pad names to a 34-char column, but never glue a long name (e.g.
  // mem.tag.*.peak_bytes) to its value.
  const auto pad_name = [&out](const std::string& name) {
    out << "  " << name;
    std::size_t spaces = name.size() < 34 ? 34 - name.size() : 1;
    while (spaces-- > 0) out << ' ';
  };
  out << "-- counters --\n";
  for (const auto& [name, value] : counters) {
    pad_name(name);
    out << value << "\n";
  }
  out << "-- gauges --\n";
  for (const auto& [name, value] : gauges) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    pad_name(name);
    out << buf << "\n";
  }
  if (!histograms.empty()) {
    out << "-- histograms (percentiles estimated from log2 buckets) --\n";
    char header[160];
    std::snprintf(header, sizeof(header), "  %-28s %10s %8s %10s %10s %10s %10s %10s\n",
                  "name", "count", "min", "p50", "p90", "p99", "max", "mean");
    out << header;
    for (const auto& [name, h] : histograms) {
      double mean = h.count == 0
                        ? 0.0
                        : static_cast<double>(h.sum) /
                              static_cast<double>(h.count);
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "  %-28s %10" PRIu64 " %8" PRIu64 " %10.1f %10.1f %10.1f %10" PRIu64 " %10.1f\n",
                    name.c_str(), h.count, h.min, h.Quantile(0.50),
                    h.Quantile(0.90), h.Quantile(0.99), h.max, mean);
      out << buf;
    }
  }
  if (!spans.empty()) {
    out << "-- spans (aggregated; wall / cpu seconds) --\n";
    for (const SpanRow& row : spans) {
      out << "  " << row.path;
      if (row.machine >= 0) out << " [m" << row.machine << "]";
      out << "  x" << row.count << "  wall=" << FormatSeconds(row.wall_seconds)
          << "  cpu=" << FormatSeconds(row.cpu_seconds) << "\n";
    }
  }
  if (!machines.empty()) {
    out << "-- machines --\n";
    for (const auto& [machine, stats] : machines) {
      out << "  machine " << machine << ":";
      for (const auto& [key, value] : stats) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %s=%.6g", key.c_str(), value);
        out << buf;
      }
      out << "\n";
    }
  }
  if (!fault.empty()) {
    out << "-- fault (injected schedule) --\n";
    for (const Event& event : fault) {
      out << "  " << event.kind << " [m" << event.machine << "] @"
          << event.ordinal;
      if (!event.detail.empty()) out << "  " << event.detail;
      out << "\n";
    }
  }
  if (prof.has_value()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "-- prof (%" PRIu64 " samples @ %d Hz, %" PRIu64
                  " dropped) --\n",
                  prof->samples, prof->hz, prof->dropped);
    out << buf;
    std::snprintf(buf, sizeof(buf), "  %-14s %8s %8s  %s\n", "phase", "self",
                  "total", "frame");
    out << buf;
    for (const ProfFrameRow& row : prof->frames) {
      std::snprintf(buf, sizeof(buf), "  %-14s %8" PRIu64 " %8" PRIu64 "  ",
                    row.phase.c_str(), row.self, row.total);
      out << buf << row.frame << "\n";
    }
  }
  if (oom.has_value()) {
    out << "-- mem.oom --\n";
    std::istringstream lines(oom->ToString());
    std::string line;
    while (std::getline(lines, line)) {
      out << "  " << line << "\n";
    }
  }
  if (!series.empty()) {
    out << "-- sampled series --\n";
    for (const auto& [name, ts] : series) {
      char buf[160];
      double last_t = ts.t.empty() ? 0.0 : ts.t.back();
      double first_v = ts.v.empty() ? 0.0 : ts.v.front();
      double last_v = ts.v.empty() ? 0.0 : ts.v.back();
      std::snprintf(buf, sizeof(buf),
                    "  %-28s %4zu points over %.2fs  %.6g -> %.6g\n",
                    name.c_str(), ts.size(), last_t, first_v, last_v);
      out << buf;
    }
  }
  return out.str();
}

Status RunReport::WriteJsonFile(const std::string& path) const {
  Status made = storage::EnsureParentDirectory(path);
  if (!made.ok()) return made;
  storage::FileWriter writer;
  Status s = writer.Open(path);
  if (!s.ok()) return s;
  std::string json = ToJson();
  writer.Append(json.data(), json.size());
  return writer.Close();
}

std::string OomReportToJson(const OomReport& report) {
  std::string out;
  AppendOomReport(report, "", &out);
  out += "\n";
  return out;
}

Status WriteOomReportFile(const OomReport& report, const std::string& path) {
  Status made = storage::EnsureParentDirectory(path);
  if (!made.ok()) return made;
  storage::FileWriter writer;
  Status s = writer.Open(path);
  if (!s.ok()) return s;
  std::string json = OomReportToJson(report);
  writer.Append(json.data(), json.size());
  return writer.Close();
}

}  // namespace tg::obs
