#include "obs/report_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tg::obs {

namespace {

/// Denominator floor so a zero baseline still admits a zero-tolerance match
/// without dividing by zero.
constexpr double kEps = 1e-12;

bool Skipped(const DiffOptions& options, const std::string& name) {
  return std::find(options.skip.begin(), options.skip.end(), name) !=
         options.skip.end();
}

/// Tolerance for a gauge, or a negative value meaning "do not compare".
double GaugeTolerance(const DiffOptions& options, const std::string& name) {
  auto it = options.tolerances.find(name);
  if (it != options.tolerances.end()) return it->second;
  // Per-tag peak bytes (mem.tag.<tag>.peak_bytes) gate memory regressions
  // the way counters gate time: any tag present in the baseline must stay
  // within the prefix tolerance, and a vanished tag is a regression.
  if (name.rfind("mem.tag.", 0) == 0 &&
      name.size() >= sizeof(".peak_bytes") - 1 &&
      name.compare(name.size() - (sizeof(".peak_bytes") - 1),
                   std::string::npos, ".peak_bytes") == 0) {
    return options.mem_tag_peak_rel_tol;
  }
  return options.default_gauge_rel_tol;
}

void Compare(const std::string& name, double baseline, bool have_current,
             double current, double rel_tol, DiffResult* result) {
  MetricDelta delta;
  delta.name = name;
  delta.baseline = baseline;
  delta.current = current;
  delta.rel_tol = rel_tol;
  if (!have_current) {
    delta.missing = true;
    delta.regressed = true;
  } else {
    double denom = std::max(std::fabs(baseline), kEps);
    delta.regressed = std::fabs(current - baseline) > rel_tol * denom;
  }
  result->num_checked += 1;
  result->num_regressed += delta.regressed ? 1 : 0;
  result->deltas.push_back(std::move(delta));
}

}  // namespace

DiffOptions DiffOptions::Defaults() {
  DiffOptions options;
  // Simulated wire time is arithmetic over byte counts: deterministic, but
  // accumulated in floating point, so allow rounding-order slack.
  options.tolerances["net.simulated_seconds"] = 1e-6;
  // Peak memory accounting is deterministic per worker but the cross-worker
  // peak can shift with scheduling when workers share one budget.
  options.tolerances["mem.peak_machine_bytes"] = 0.5;
  options.tolerances["mem.peak_scope_bytes"] = 0.5;
  // Structural gauges: exact.
  options.tolerances["avs.max_degree"] = 0.0;
  options.tolerances["avs.recvec_levels"] = 0.0;
  // Which chunks get stolen is a thread-timing outcome, not a property of
  // the build (sched.chunks, which is deterministic, stays gated).
  options.skip.push_back("sched.steals");
  // How long the producer blocked on a full async-writer queue is likewise
  // wall-clock, not workload (io.bytes_written / io.flushes, which are
  // deterministic, stay gated).
  options.skip.push_back("io.writer_stall_ms");
  // Profiler sample counts are a function of CPU time consumed, not of the
  // workload's output — two hosts (or two optimization levels) legitimately
  // disagree.
  options.skip.push_back("prof.samples");
  options.skip.push_back("prof.dropped_samples");
  return options;
}

std::vector<GatedMetric> ListGatedMetrics(const RunReport& baseline,
                                          const DiffOptions& options) {
  std::vector<GatedMetric> out;
  auto add = [&out](const std::string& name, const char* kind, double tol,
                    bool skipped) {
    GatedMetric metric;
    metric.name = name;
    metric.kind = kind;
    metric.rel_tol = tol;
    metric.skipped = skipped || tol < 0;
    out.push_back(std::move(metric));
  };

  for (const auto& [name, value] : baseline.counters) {
    (void)value;
    auto it = options.tolerances.find(name);
    double tol =
        it != options.tolerances.end() ? it->second : options.counter_rel_tol;
    add(name, "counter", tol, Skipped(options, name));
  }
  for (const auto& [name, value] : baseline.gauges) {
    (void)value;
    add(name, "gauge", GaugeTolerance(options, name), Skipped(options, name));
  }
  for (const auto& [name, hist] : baseline.histograms) {
    (void)hist;
    auto it = options.tolerances.find(name);
    double tol =
        it != options.tolerances.end() ? it->second : options.counter_rel_tol;
    const bool skipped = Skipped(options, name) || !options.check_histograms;
    add("histogram/" + name + "/count", "histogram", tol, skipped);
    add("histogram/" + name + "/sum", "histogram", tol, skipped);
  }
  return out;
}

DiffResult DiffReports(const RunReport& baseline, const RunReport& current,
                       const DiffOptions& options) {
  DiffResult result;

  for (const auto& [name, base_value] : baseline.counters) {
    if (Skipped(options, name)) continue;
    auto it = options.tolerances.find(name);
    double tol =
        it != options.tolerances.end() ? it->second : options.counter_rel_tol;
    if (tol < 0) continue;
    auto cur = current.counters.find(name);
    Compare(name, static_cast<double>(base_value),
            cur != current.counters.end(),
            cur != current.counters.end()
                ? static_cast<double>(cur->second)
                : 0.0,
            tol, &result);
  }

  for (const auto& [name, base_value] : baseline.gauges) {
    if (Skipped(options, name)) continue;
    double tol = GaugeTolerance(options, name);
    if (tol < 0) continue;
    auto cur = current.gauges.find(name);
    Compare(name, base_value, cur != current.gauges.end(),
            cur != current.gauges.end() ? cur->second : 0.0, tol, &result);
  }

  if (options.check_histograms) {
    for (const auto& [name, base_hist] : baseline.histograms) {
      if (Skipped(options, name)) continue;
      auto it = options.tolerances.find(name);
      double tol = it != options.tolerances.end() ? it->second
                                                  : options.counter_rel_tol;
      if (tol < 0) continue;
      auto cur = current.histograms.find(name);
      bool have = cur != current.histograms.end();
      Compare("histogram/" + name + "/count",
              static_cast<double>(base_hist.count), have,
              have ? static_cast<double>(cur->second.count) : 0.0, tol,
              &result);
      Compare("histogram/" + name + "/sum",
              static_cast<double>(base_hist.sum), have,
              have ? static_cast<double>(cur->second.sum) : 0.0, tol,
              &result);
    }
  }

  return result;
}

std::string DiffResult::ToString(bool verbose) const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-44s %16s %16s %9s  %s\n", "metric",
                "baseline", "current", "tol", "status");
  out += buf;
  for (const MetricDelta& delta : deltas) {
    if (!verbose && !delta.regressed) continue;
    const char* status = delta.missing     ? "MISSING"
                         : delta.regressed ? "FAIL"
                                           : "ok";
    std::snprintf(buf, sizeof(buf), "%-44s %16.6g %16.6g %9.2g  %s\n",
                  delta.name.c_str(), delta.baseline, delta.current,
                  delta.rel_tol, status);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%d metric(s) checked, %d regression(s)\n",
                num_checked, num_regressed);
  out += buf;
  return out;
}

}  // namespace tg::obs
