#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/mem.h"

namespace tg::obs {

namespace {
std::atomic<bool> g_enabled{false};
std::atomic<const char*> g_phase{"idle"};

std::mutex g_event_observer_mu;
std::function<void(const Event&)> g_event_observer;

void NotifyEventObserver(const Event& event) {
  std::function<void(const Event&)> observer;
  {
    std::lock_guard<std::mutex> lock(g_event_observer_mu);
    observer = g_event_observer;
  }
  if (observer) observer(event);
}
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void SetCurrentPhase(const char* phase) {
  g_phase.store(phase == nullptr ? "idle" : phase, std::memory_order_relaxed);
}

const char* CurrentPhase() { return g_phase.load(std::memory_order_relaxed); }

void SetEventObserver(std::function<void(const Event&)> observer) {
  std::lock_guard<std::mutex> lock(g_event_observer_mu);
  g_event_observer = std::move(observer);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  int last_nonzero = -1;
  std::vector<std::uint64_t> buckets(kNumBuckets, 0);
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += buckets[i];
    if (buckets[i] != 0) last_nonzero = i;
  }
  buckets.resize(last_nonzero + 1);
  snap.buckets = std::move(buckets);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation in [0, count-1], then walk buckets until
  // the cumulative count covers it.
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(before + in_bucket)) {
      if (b == 0) return 0.0;  // bucket 0 holds exactly the zeros
      const double lo = static_cast<double>(
          Histogram::BucketLowerBound(static_cast<int>(b)));
      const double hi = 2.0 * lo;
      // Fractional position inside the bucket (midpoint of the covered
      // observation), interpolated over the bucket's value range.
      const double frac = (rank - static_cast<double>(before) + 0.5) /
                          static_cast<double>(in_bucket);
      double value = lo + frac * (hi - lo);
      value = std::min(value, static_cast<double>(max));
      value = std::max(value, static_cast<double>(min));
      return value;
    }
    before += in_bucket;
  }
  return static_cast<double>(max);
}

std::uint64_t Histogram::count() const {
  std::uint64_t c = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    c += buckets_[i].load(std::memory_order_relaxed);
  }
  return c;
}

void Histogram::Reset() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // intentionally leaked
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::RecordSpan(const std::string& path, int machine,
                          double wall_seconds, double cpu_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& stats = spans_[{path, machine}];
  stats.count += 1;
  stats.wall_seconds += wall_seconds;
  stats.cpu_seconds += cpu_seconds;
}

void Registry::SetMachineStat(int machine, const std::string& key,
                              double value) {
  std::lock_guard<std::mutex> lock(mu_);
  machines_[machine][key] = value;
}

void Registry::MaxMachineStat(int machine, const std::string& key,
                              double value) {
  std::lock_guard<std::mutex> lock(mu_);
  double& slot = machines_[machine][key];
  if (value > slot) slot = value;
}

std::map<std::string, std::uint64_t> Registry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> Registry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, HistogramSnapshot> Registry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) out[name] = hist->Snapshot();
  return out;
}

std::map<std::pair<std::string, int>, SpanStats> Registry::SpanValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<int, std::map<std::string, double>> Registry::MachineStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return machines_;
}

void Registry::RecordEvent(Event event) {
  // The dropped counter is fetched before taking mu_ (GetCounter locks it).
  Counter* dropped = GetCounter("obs.events_dropped");
  bool stored = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < kMaxEvents) {
      events_.push_back(event);
      stored = true;
    }
  }
  if (!stored) dropped->Increment();
  // Fan out after releasing mu_ — live consumers (SSE) get every event,
  // even ones the bounded report buffer dropped.
  NotifyEventObserver(event);
}

std::vector<Event> Registry::EventValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Registry::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
    for (auto& [name, hist] : histograms_) hist->Reset();
    spans_.clear();
    machines_.clear();
    events_.clear();
  }
  // Only meaningful for the global registry, but harmless otherwise: a reset
  // starts a fresh run, which must not inherit a stale mem.oom section.
  ClearLastOom();
}

void PreregisterCanonicalMetrics() {
  Registry& r = Registry::Global();
  // Generation (core/avs_generator*, core/trilliong.cc).
  r.GetCounter("avs.edges_generated");
  r.GetCounter("avs.scopes_generated");
  r.GetCounter("avs.recvec_builds");
  r.GetCounter("avs.cdf_evaluations");
  r.GetGauge("avs.recvec_levels");
  r.GetGauge("avs.max_degree");
  r.GetGauge("mem.peak_scope_bytes");
  // Table-driven edge kernel (core/prefix_tables.h, rng/lane_rng.h; see
  // docs/PERFORMANCE.md).
  r.GetCounter("kernel.table_scopes");
  r.GetCounter("kernel.table_edges");
  r.GetCounter("kernel.dedup_wiped_words");
  r.GetGauge("kernel.simd_lanes");
  // Work-stealing scheduler (core/scheduler.cc).
  r.GetCounter("sched.chunks");
  r.GetCounter("sched.steals");
  r.GetGauge("sched.imbalance");
  // Simulated cluster (cluster/sim_cluster.h, cluster/network_model.h).
  r.GetCounter("cluster.shuffled_bytes");
  r.GetCounter("cluster.control_bytes");
  r.GetCounter("net.transfers");
  r.GetCounter("net.charged_bytes");
  r.GetGauge("net.simulated_seconds");
  r.GetGauge("mem.peak_machine_bytes");
  // Memory pressure + OOM forensics (obs/mem.h; per-machine mem.m<id>.* and
  // per-tag mem.tag.<tag>.peak_bytes gauges appear dynamically).
  r.GetCounter("mem.oom_events");
  r.GetGauge("mem.used_bytes");
  r.GetGauge("mem.headroom_pct");
  // External sort (storage/external_sorter.h).
  r.GetCounter("sort.records_added");
  r.GetCounter("sort.records_delivered");
  r.GetCounter("sort.runs_spilled");
  r.GetCounter("sort.bytes_spilled");
  r.GetCounter("sort.merge_passes");
  // Output formats (format/).
  r.GetCounter("format.tsv.bytes_written");
  r.GetCounter("format.adj6.bytes_written");
  r.GetCounter("format.csr6.bytes_written");
  // Storage I/O transport (storage/file_io.h, storage/async_writer.h).
  // bytes_written/flushes count producer->backend handoffs, so they compare
  // exactly between --io=sync and --io=async runs; writer_stall_ms is
  // wall-clock (skipped by DiffOptions::Defaults); uring_active reports
  // whether any writer thread actually ran on an io_uring.
  r.GetCounter("io.bytes_written");
  r.GetCounter("io.flushes");
  r.GetCounter("io.writer_stall_ms");
  r.GetGauge("io.inflight_bytes");
  r.GetGauge("io.uring_active");
  // Live progress + tracing (obs/sampler.h, obs/trace.h).
  r.GetCounter("progress.edges");
  r.GetCounter("trace.dropped_events");
  // Sampling profiler (prof/profiler.h). Zero unless --profile / TG_PROFILE
  // armed the sampler; wall-clock-dependent, so skipped by bench diffs.
  r.GetCounter("prof.samples");
  r.GetCounter("prof.dropped_samples");
  // Sampler tick drift (obs/sampler.cc): observed minus nominal interval of
  // the latest tick, so SSE consumers can judge timestamp quality.
  r.GetGauge("obs.sampler.drift_ms");
  // Fault injection + recovery (fault/fault_injector.h, core/scheduler.cc,
  // cluster/sim_cluster.h). Zero in a fault-free run by construction.
  r.GetCounter("fault.injected");
  r.GetCounter("fault.injected_crashes");
  r.GetCounter("fault.injected_delays");
  r.GetCounter("fault.injected_io_failures");
  r.GetCounter("fault.retries");
  r.GetCounter("fault.recovered_chunks");
  r.GetCounter("fault.machines_lost");
  r.GetCounter("fault.shuffle_retransfers");
  r.GetCounter("fault.retransferred_bytes");
  r.GetCounter("cluster.worker_failures");
  r.GetGauge("fault.recovery_seconds");
  r.GetGauge("fault.delay_seconds");
  // Install the memory-observability hooks (span stack / headroom tail on
  // OomReport, per-tag peak fold-in on budget destruction): any binary that
  // preregisters gets OOM attribution without extra wiring.
  EnableMemoryObservability();
}

}  // namespace tg::obs
