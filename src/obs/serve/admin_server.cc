#include "obs/serve/admin_server.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/sampler.h"
#include "obs/serve/prometheus.h"
#include "obs/trace.h"
#include "prof/folded.h"
#include "prof/profiler.h"
#include "util/build_info.h"

namespace tg::obs::serve {

namespace {

constexpr const char* kEventsChannel = "events";

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':  *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Counter-like quantities (cumulative edges, byte totals, ETAs) must not
/// lose precision at trillion scale, where %.6g would round to ~1e6
/// granularity and disagree with the exact counters on /metrics and
/// /report.json. Integral values below 2^53 render as exact integers;
/// anything else gets full round-trip precision.
std::string FormatExact(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// data payload of a `tick` SSE event. Cumulative/absolute quantities use
/// FormatExact; smoothed rates and percentages keep the compact %.6g.
std::string TickJson(const TickSample& tick) {
  std::string out = "{";
  out += "\"t\": " + FormatExact(tick.t_seconds);
  out += ", \"edges\": " + FormatExact(tick.edges);
  out += ", \"edges_per_sec\": " + FormatDouble(tick.edges_per_sec);
  out += ", \"eta_seconds\": " + FormatExact(tick.eta_seconds);
  out += ", \"mem_used_bytes\": " + FormatExact(tick.mem_used_bytes);
  out += ", \"mem_headroom_pct\": " + FormatDouble(tick.mem_headroom_pct);
  out += ", \"drift_ms\": " + FormatDouble(tick.drift_ms);
  out += std::string(", \"phase\": ");
  AppendJsonString(CurrentPhase(), &out);
  out += "}";
  return out;
}

/// data payload of a fault/log SSE event.
std::string EventJson(const Event& event) {
  std::string out = "{\"kind\": ";
  AppendJsonString(event.kind, &out);
  out += ", \"machine\": " + std::to_string(event.machine);
  out += ", \"ordinal\": " + std::to_string(event.ordinal);
  out += ", \"detail\": ";
  AppendJsonString(event.detail, &out);
  out += "}";
  return out;
}

/// One SSE frame: named event + single-line JSON data.
std::string SseFrame(const std::string& event, const std::string& data) {
  return "event: " + event + "\ndata: " + data + "\n\n";
}

/// Parses a bounded non-negative integer query parameter; `fallback` when
/// absent or malformed.
int QueryInt(const net::HttpRequest& request, const std::string& key,
             int fallback, int max_value) {
  auto it = request.query.find(key);
  if (it == request.query.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || value < 0) return fallback;
  return static_cast<int>(value < max_value ? value : max_value);
}

/// GET /pprof/profile?seconds=N[&hz=H]. seconds=0 (the default) returns the
/// cumulative folded profile of the running profiler; seconds=N collects an
/// interval profile — diffing two snapshots when the profiler is already
/// running, or spinning up a temporary one when it is not. The admin server
/// serves requests on one thread, so an interval collection blocks other
/// endpoints for its (bounded, ≤60 s) duration.
net::HttpResponse HandlePprofProfile(const net::HttpRequest& request) {
  net::HttpResponse response;
  response.content_type = "text/plain; charset=utf-8";
  const int seconds = QueryInt(request, "seconds", 0, 60);
  const bool was_running = prof::ProfilerRunning();

  if (seconds == 0) {
    const prof::ProfileSnapshot snapshot = prof::TakeSnapshot();
    if (!was_running && snapshot.samples == 0 && snapshot.stalls.empty()) {
      response.status = 409;
      response.body =
          "profiler not running (pass ?seconds=N to collect on demand, or "
          "start the run with --profile / TG_PROFILE)\n";
      return response;
    }
    response.body = prof::RenderFolded(snapshot);
    return response;
  }

  if (!was_running) {
    prof::ProfilerOptions options;
    options.hz = QueryInt(request, "hz", options.hz, 1000);
    Status started = prof::StartProfiler(options);
    if (!started.ok()) {
      response.status = 500;
      response.body = "cannot start profiler: " + started.message() + "\n";
      return response;
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    response.body = prof::RenderFolded(prof::TakeSnapshot());
    prof::StopProfiler();
    return response;
  }

  const prof::ProfileSnapshot before = prof::TakeSnapshot();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  response.body = prof::RenderFoldedDiff(before, prof::TakeSnapshot());
  return response;
}

std::string PprofStatusJson() {
  const prof::ProfilerStatus status = prof::GetStatus();
  std::string out = "{";
  out += std::string("\"running\": ") + (status.running ? "true" : "false");
  out += ", \"hz\": " + std::to_string(status.hz);
  out += ", \"samples\": " + std::to_string(status.samples);
  out += ", \"dropped\": " + std::to_string(status.dropped);
  out += ", \"threads\": " + std::to_string(status.threads);
  out += ", \"ring_occupancy\": " + FormatDouble(status.ring_occupancy);
  out += "}\n";
  return out;
}

}  // namespace

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start(const AdminOptions& options) {
  Stop();
  options_ = options;
  start_time_ = std::chrono::steady_clock::now();

  net::HttpServer::Options http;
  http.bind_address = options_.bind_address;
  http.port = options_.port;
  Status started = server_.Start(
      http, [this](const net::HttpRequest& request) { return Handle(request); });
  if (!started.ok()) return started;

  InstallEventStreamBridges(&server_);
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!server_.running()) return;
  InstallEventStreamBridges(nullptr);
  server_.Stop();
}

int AdminServer::PortFromEnv() {
  const char* text = std::getenv("TG_ADMIN_PORT");
  if (text == nullptr || text[0] == '\0') return -1;
  char* end = nullptr;
  const long port = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || port < 0 || port > 65535) return -1;
  return static_cast<int>(port);
}

net::HttpResponse AdminServer::Handle(const net::HttpRequest& request) {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  return HandleAdminRequest(request, options_.meta, uptime_s);
}

void InstallEventStreamBridges(net::HttpServer* server) {
  if (server == nullptr) {
    SetTickListener(nullptr);
    SetEventObserver(nullptr);
    return;
  }
  // Feed /events: sampler ticks and obs events (fault schedule, ...) are
  // fanned out as SSE frames. Broadcast is cheap with no subscribers, so
  // installing the hooks unconditionally costs nothing on idle servers.
  SetTickListener([server](const TickSample& tick) {
    server->Broadcast(kEventsChannel, SseFrame("tick", TickJson(tick)));
  });
  SetEventObserver([server](const Event& event) {
    const bool fault = event.kind.rfind("fault.", 0) == 0;
    server->Broadcast(kEventsChannel,
                      SseFrame(fault ? "fault" : "event", EventJson(event)));
  });
}

net::HttpResponse HandleAdminRequest(
    const net::HttpRequest& request,
    const std::map<std::string, std::string>& meta, double uptime_s) {
  net::HttpResponse response;

  if (request.path == "/healthz") {
    char line[128];
    std::snprintf(line, sizeof(line), "ok phase=%s uptime_s=%.1f\n",
                  CurrentPhase(), uptime_s);
    response.body = line;
    return response;
  }

  if (request.path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheus(Registry::Global());
    return response;
  }

  if (request.path == "/report.json") {
    RunReport report = RunReport::Collect(Registry::Global());
    // Merge (not assign): Collect seeds build.* identity keys that the
    // launcher's meta should extend, not clobber.
    for (const auto& [key, value] : meta) {
      report.meta[key] = value;
    }
    report.meta["live"] = "1";
    report.meta["phase"] = CurrentPhase();
    report.meta["uptime_seconds"] = FormatDouble(uptime_s);
    Sampler::ExportActiveTo(&report);
    response.content_type = "application/json";
    response.body = report.ToJson();
    return response;
  }

  if (request.path == "/events") {
    response.content_type = "text/event-stream";
    response.stream_channel = kEventsChannel;
    // An immediate hello event so clients know the stream is live before
    // the first sampler tick.
    response.body = SseFrame(
        "hello", std::string("{\"phase\": \"") + CurrentPhase() + "\"}");
    return response;
  }

  if (request.path == "/trace") {
    response.content_type = "application/json";
    response.headers["Content-Disposition"] =
        "attachment; filename=\"trilliong_trace.json\"";
    response.chunked = true;  // trace snapshots can be tens of MB
    response.body = TraceToChromeJson(DrainTrace());
    return response;
  }

  if (request.path == "/buildz") {
    response.content_type = "application/json";
    response.body = util::BuildInfoJson();
    return response;
  }

  if (request.path == "/pprof/profile") {
    return HandlePprofProfile(request);
  }

  if (request.path == "/pprof/status") {
    response.content_type = "application/json";
    response.body = PprofStatusJson();
    return response;
  }

  if (request.path == "/") {
    response.body =
        "TrillionG admin server\n"
        "  GET /healthz        liveness + current phase\n"
        "  GET /metrics        Prometheus text exposition\n"
        "  GET /report.json    live RunReport snapshot\n"
        "  GET /events         SSE: sampler ticks + fault events\n"
        "  GET /trace          Chrome Trace Event snapshot\n"
        "  GET /buildz         binary identity (git, compiler, flags)\n"
        "  GET /pprof/profile  folded CPU profile (?seconds=N collects on\n"
        "                      demand and blocks this endpoint while doing so)\n"
        "  GET /pprof/status   sampler rate, drops, ring occupancy\n";
    return response;
  }

  response.status = 404;
  response.body = "not found (try /)\n";
  return response;
}

}  // namespace tg::obs::serve
