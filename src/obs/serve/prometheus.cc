#include "obs/serve/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <vector>

#include "storage/file_io.h"
#include "storage/fs.h"

namespace tg::obs::serve {

namespace {

/// One exposed sample: an optional {label="value"} block plus the rendered
/// number. Samples of one family share a TYPE line.
struct Sample {
  std::string labels;  ///< "" or "{machine=\"m0\"}"
  std::string value;
};

struct Family {
  const char* type = "gauge";  ///< "counter" | "gauge" | "histogram"
  std::vector<Sample> samples;
};

std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string FormatU64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatDouble(double v) {
  char buf[40];
  // %.17g round-trips doubles; Prometheus accepts scientific notation.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splits a registry name into (family, labels). The structured mem.*
/// namespaces (see header) become labeled samples of one shared family so a
/// scraper can aggregate across machines/tags; everything else maps 1:1.
void FamilyAndLabels(const std::string& name, std::string* family,
                     std::string* labels) {
  labels->clear();
  // mem.m<digits>.<stat> -> tg_mem_<stat>{machine="m<digits>"}
  if (name.rfind("mem.m", 0) == 0) {
    std::size_t i = 5;
    while (i < name.size() && std::isdigit(static_cast<unsigned char>(name[i]))) {
      ++i;
    }
    if (i > 5 && i < name.size() && name[i] == '.') {
      *family = "tg_mem_" + Sanitize(name.substr(i + 1));
      *labels = "{machine=\"" + name.substr(4, i - 4) + "\"}";
      return;
    }
  }
  // mem.tag.<tag>.peak_bytes -> tg_mem_tag_peak_bytes{tag="<tag>"}
  const std::string tag_prefix = "mem.tag.";
  const std::string tag_suffix = ".peak_bytes";
  if (name.rfind(tag_prefix, 0) == 0 && name.size() > tag_prefix.size() + tag_suffix.size() &&
      name.compare(name.size() - tag_suffix.size(), tag_suffix.size(),
                   tag_suffix) == 0) {
    const std::string tag = name.substr(
        tag_prefix.size(), name.size() - tag_prefix.size() - tag_suffix.size());
    *family = "tg_mem_tag_peak_bytes";
    *labels = "{tag=\"" + EscapeLabelValue(tag) + "\"}";
    return;
  }
  *family = "tg_" + Sanitize(name);
}

void AddSample(std::map<std::string, Family>* families,
               const std::string& name, const char* type,
               const std::string& value) {
  std::string family, labels;
  FamilyAndLabels(name, &family, &labels);
  Family& slot = (*families)[family];
  slot.type = type;
  slot.samples.push_back({labels, value});
}

/// Emits one histogram family: cumulative buckets with exact integer upper
/// bounds (bucket i of the log2 histogram holds values in [2^(i-1), 2^i),
/// all <= 2^i - 1; bucket 0 holds exactly the zeros), then +Inf, _sum and
/// _count per the exposition format.
void AppendHistogram(const std::string& family, const HistogramSnapshot& h,
                     std::string* out) {
  *out += "# TYPE " + family + " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cumulative += h.buckets[i];
    const std::uint64_t le =
        i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    *out += family + "_bucket{le=\"" + FormatU64(le) + "\"} " +
            FormatU64(cumulative) + "\n";
  }
  *out += family + "_bucket{le=\"+Inf\"} " + FormatU64(h.count) + "\n";
  *out += family + "_sum " + FormatU64(h.sum) + "\n";
  *out += family + "_count " + FormatU64(h.count) + "\n";
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"':  out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:   out.push_back(c);
    }
  }
  return out;
}

std::string RenderPrometheus(const Registry& registry) {
  // Counters, gauges and machine stats are grouped into families first so
  // each family gets exactly one TYPE line even when its samples come from
  // several registry names (the per-machine mem.* gauges).
  std::map<std::string, Family> families;
  for (const auto& [name, value] : registry.CounterValues()) {
    AddSample(&families, name, "counter", FormatU64(value));
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    AddSample(&families, name, "gauge", FormatDouble(value));
  }
  for (const auto& [machine, stats] : registry.MachineStats()) {
    for (const auto& [key, value] : stats) {
      Family& slot = families["tg_machine_" + Sanitize(key)];
      slot.type = "gauge";
      slot.samples.push_back(
          {"{machine=\"m" + std::to_string(machine) + "\"}",
           FormatDouble(value)});
    }
  }

  std::string out;
  for (const auto& [family, data] : families) {
    out += "# TYPE " + family + " " + data.type + "\n";
    for (const Sample& sample : data.samples) {
      out += family + sample.labels + " " + sample.value + "\n";
    }
  }
  // Histograms last, each a self-contained family (registry names are
  // unique across kinds, so no family collides with the scalar ones).
  for (const auto& [name, snapshot] : registry.HistogramValues()) {
    std::string family, labels;
    FamilyAndLabels(name, &family, &labels);
    AppendHistogram(family, snapshot, &out);
  }
  return out;
}

Status WritePrometheusFile(const std::string& path, const Registry& registry) {
  Status made = storage::EnsureParentDirectory(path);
  if (!made.ok()) return made;
  storage::FileWriter writer;
  Status s = writer.Open(path);
  if (!s.ok()) return s;
  const std::string text = RenderPrometheus(registry);
  writer.Append(text.data(), text.size());
  return writer.Close();
}

}  // namespace tg::obs::serve
