// obs/serve/admin_server.h — the live observability plane: a resident admin
// thread serving the obs::Registry over HTTP while a run is in flight.
// Everything PRs 1–5 collect (metrics, time series, memory pressure, fault
// events, traces) was previously visible only at process exit; the admin
// server makes the same data pull-able mid-run, which is the first piece of
// the control plane the future `tg::serve` daemon needs (ROADMAP item 1 —
// AVS workers are pure functions of (seed, range), so monitoring/control is
// the hard remaining problem).
//
// Endpoints (docs/OBSERVABILITY.md "Live endpoints" has the full table):
//
//   GET /healthz      cheap liveness: "ok phase=<phase> uptime_s=<t>"
//   GET /metrics      Prometheus text exposition of the live registry
//   GET /report.json  a mid-run RunReport snapshot (same schema as
//                     --metrics_json, plus meta live=1)
//   GET /events       SSE stream: sampler ticks (edges/sec, ETA, memory
//                     pressure, tick drift) and obs events (fault.*) live
//   GET /trace        Chrome Trace Event snapshot of the seqlock rings
//   GET /buildz       binary identity: git describe, compiler, flags,
//                     SIMD/io_uring configuration (util/build_info)
//   GET /pprof/profile  folded CPU profile from tg::prof — cumulative when
//                     the run was started with --profile, or collected on
//                     demand with ?seconds=N (blocks the service thread
//                     for the collection window)
//   GET /pprof/status sampler rate, sample/drop counts, ring occupancy
//
// The server only *reads* observability state — generation output is
// bit-identical with the server on or off (CI's admin-smoke job proves it).
#ifndef TRILLIONG_OBS_SERVE_ADMIN_SERVER_H_
#define TRILLIONG_OBS_SERVE_ADMIN_SERVER_H_

#include <chrono>
#include <map>
#include <string>

#include "net/http_server.h"
#include "util/status.h"

namespace tg::obs::serve {

struct AdminOptions {
  /// 0 binds an ephemeral port (read it back from port()).
  int port = 0;
  /// Loopback by default; set to "0.0.0.0" to expose beyond the host.
  std::string bind_address = "127.0.0.1";
  /// Merged into the meta section of /report.json snapshots (scale, seed,
  /// format, ... — whatever the launcher knows about the run).
  std::map<std::string, std::string> meta;
};

class AdminServer {
 public:
  AdminServer() = default;
  ~AdminServer();  ///< Stop()s if still running

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds and starts serving; installs the sampler tick listener and the
  /// obs event observer that feed `GET /events`.
  Status Start(const AdminOptions& options);

  /// Stops serving and removes the listeners. Idempotent.
  void Stop();

  bool running() const { return server_.running(); }
  int port() const { return server_.port(); }

  /// TG_ADMIN_PORT when set to a valid port (0 for ephemeral), else -1.
  /// The bench ObsSession uses this, mirroring TG_METRICS_JSON et al.
  static int PortFromEnv();

 private:
  net::HttpResponse Handle(const net::HttpRequest& request);

  AdminOptions options_;
  net::HttpServer server_;
  std::chrono::steady_clock::time_point start_time_;
};

/// The endpoint logic behind AdminServer, reusable by any HttpServer host:
/// the tg::serve daemon mounts these same routes next to POST /generate so
/// one port carries both the data plane and its observability. Dispatches
/// on request.path; unknown paths get the 404 with the endpoint index.
/// `meta` is merged into /report.json snapshots.
net::HttpResponse HandleAdminRequest(const net::HttpRequest& request,
                                     const std::map<std::string, std::string>& meta,
                                     double uptime_seconds);

/// Installs the sampler tick listener and obs event observer that fan out
/// SSE frames on `server`'s "events" channel (what GET /events subscribes
/// to). Pass nullptr to remove the hooks. The hooks hold a raw pointer, so
/// remove them before the server is destroyed.
void InstallEventStreamBridges(net::HttpServer* server);

}  // namespace tg::obs::serve

#endif  // TRILLIONG_OBS_SERVE_ADMIN_SERVER_H_
