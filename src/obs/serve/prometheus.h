// obs/serve/prometheus.h — renders an obs::Registry in the Prometheus text
// exposition format (version 0.0.4). One renderer serves both the live
// `GET /metrics` endpoint of the admin server and the one-shot
// `gen_cli --metrics_prom <file>` dump, so scrapes and CI artifacts are
// byte-compatible.
//
// Name mapping: every metric keeps its dotted registry name with dots
// replaced by underscores under a `tg_` prefix (`avs.edges_generated` ->
// `tg_avs_edges_generated`). Two structured families are recognized and
// lifted into labels instead:
//
//   mem.m<N>.<stat>              -> tg_mem_<stat>{machine="m<N>"}
//   mem.tag.<tag>.peak_bytes     -> tg_mem_tag_peak_bytes{tag="<tag>"}
//
// and the per-machine stat table becomes tg_machine_<stat>{machine="m<N>"}.
// Counters are exposed as-is (cumulative), gauges as gauges, and the log2
// histograms as cumulative `_bucket{le="..."}` series with exact integer
// upper bounds (values in bucket i are <= 2^i - 1), plus `_sum`/`_count`.
#ifndef TRILLIONG_OBS_SERVE_PROMETHEUS_H_
#define TRILLIONG_OBS_SERVE_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace tg::obs::serve {

/// Renders the full registry (counters, gauges, histograms, machine stats)
/// as Prometheus text exposition. Deterministic: families and samples are
/// emitted in sorted order.
std::string RenderPrometheus(const Registry& registry = Registry::Global());

/// RenderPrometheus + write to `path`, creating parent directories first.
/// Backs `gen_cli --metrics_prom <path>`.
Status WritePrometheusFile(const std::string& path,
                           const Registry& registry = Registry::Global());

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string EscapeLabelValue(const std::string& value);

}  // namespace tg::obs::serve

#endif  // TRILLIONG_OBS_SERVE_PROMETHEUS_H_
