// obs/sampler.h — background time-series sampling. A single thread wakes on
// a fixed interval, snapshots selected counters/gauges (plus process RSS)
// from the global registry, and appends each value to an in-memory
// TimeSeries that Sampler::ExportTo embeds into a RunReport. The same tick
// optionally drives a live `edges/sec + ETA` progress line (gen_cli
// --progress) and, when tracing is on, emits counter events so the sampled
// curves appear in Perfetto alongside the span timeline.
//
// The sampler only *reads* metrics; the instrumented hot paths are untouched
// and keep their disabled-cost guarantee.
#ifndef TRILLIONG_OBS_SAMPLER_H_
#define TRILLIONG_OBS_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/run_report.h"

namespace tg::obs {

/// One sampler tick, as fanned out to the process-wide tick listener (see
/// SetTickListener). The admin server's `GET /events` SSE stream is built
/// from these: everything a live dashboard needs without touching the
/// registry itself.
struct TickSample {
  double t_seconds = 0.0;        ///< seconds since sampling started
  double edges = 0.0;            ///< cumulative progress.edges
  double edges_per_sec = 0.0;    ///< smoothed over a ~2s window
  double eta_seconds = -1.0;     ///< -1 when no target is known
  double mem_used_bytes = 0.0;   ///< mem.used_bytes gauge at this tick
  double mem_headroom_pct = 0.0; ///< mem.headroom_pct gauge at this tick
  double drift_ms = 0.0;         ///< observed minus nominal tick interval
};

/// Installs (or, with nullptr, removes) the process-wide tick listener,
/// invoked from the sampling thread on every tick of every running Sampler.
/// The listener must not call back into the Sampler.
void SetTickListener(std::function<void(const TickSample&)> listener);

/// The sampler interval to use when the caller did not pass one explicitly:
/// TG_SAMPLE_INTERVAL_MS when set and positive, else `default_ms`. Shared
/// by gen_cli and the bench ObsSession so one env var retunes a whole sweep.
int SamplerIntervalFromEnv(int default_ms);

struct SamplerOptions {
  int interval_ms = 100;

  /// Counters sampled each tick (as doubles, cumulative values).
  std::vector<std::string> counters = {
      "progress.edges",
      "cluster.shuffled_bytes",
  };
  /// Gauges sampled each tick. The mem.* pressure gauges are refreshed from
  /// the live MemoryBudget registry at the top of every tick (see
  /// obs::PublishMemoryGauges), so the series shows pressure building, not
  /// just the final peak.
  std::vector<std::string> gauges = {
      "mem.peak_machine_bytes",
      "mem.used_bytes",
      "mem.headroom_pct",
      "net.simulated_seconds",
  };
  /// Also record the process resident set size as `proc.rss_bytes`
  /// (Linux /proc/self/statm; absent elsewhere).
  bool sample_rss = true;

  /// Mirror every sample onto trace counter tracks when tracing is enabled.
  bool emit_trace_counters = true;

  /// Print a `\r`-refreshed progress line to stderr: edges so far, rate,
  /// and — when `progress_target_edges` is nonzero — percent done and ETA.
  /// Reads the `progress.edges` counter (live, bumped per generated scope).
  bool print_progress = false;
  std::uint64_t progress_target_edges = 0;
  /// Edges already durable before this process started (a --resume run's
  /// committed journal chunks). Added to the live counter for the progress
  /// percentage and ETA so resumed runs start at their true completion
  /// fraction instead of 0% — without it the first ETA estimates treat the
  /// whole remaining target as if it had to be generated at a rate measured
  /// from a cold start. The recorded `progress.edges` series stays raw
  /// (this-process edges only), and the rate is delta-based so the constant
  /// offset cancels.
  std::uint64_t progress_initial_edges = 0;
};

/// Process RSS in bytes (0 where /proc is unavailable).
std::uint64_t CurrentRssBytes();

class Sampler {
 public:
  explicit Sampler(const SamplerOptions& options);
  ~Sampler();  ///< stops (joining the thread) if still running

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Spawns the sampling thread and records the t=0 sample.
  void Start();

  /// Records one final sample, stops and joins the thread. Idempotent.
  void Stop();

  /// The collected series so far (call after Stop for a complete set).
  std::map<std::string, TimeSeries> Series() const;

  /// Merges the collected series into `report->series`.
  void ExportTo(RunReport* report) const;

  /// ExportTo against the most recently started, still-live sampler (no-op
  /// when none is active). The admin server's `GET /report.json` uses this
  /// to embed the mid-run time series without owning the sampler.
  static void ExportActiveTo(RunReport* report);

  /// Copies the last `max_points` of series `name` from the most recently
  /// started, still-live sampler (no-op leaving *t/*v empty when none is
  /// active or the series does not exist). The OOM context hook uses this
  /// to attach the mem.headroom_pct tail to an OomReport.
  static void CopyActiveSeriesTail(const std::string& name,
                                   std::size_t max_points,
                                   std::vector<double>* t,
                                   std::vector<double>* v);

 private:
  void Loop();
  /// `drift_ms`: how far this tick landed from its nominal interval
  /// (0 for the boundary samples taken in Start/Stop).
  void SampleOnce(double t_seconds, double drift_ms);
  void PrintProgress(double t_seconds, double edges, double rate);

  SamplerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
  std::map<std::string, TimeSeries> series_;
  std::chrono::steady_clock::time_point start_time_;
  /// (t, edges) of the sample ~1s back, for a smoothed progress rate.
  std::vector<std::pair<double, double>> rate_window_;
};

}  // namespace tg::obs

#endif  // TRILLIONG_OBS_SAMPLER_H_
