// obs/metrics.h — thread-safe metrics registry: monotonic counters, double
// gauges, and log2-bucketed histograms, addressed by name. The measurement
// substrate behind every figure of the evaluation (EXPERIMENTS.md): hot
// layers record what they did (edges generated, bytes shuffled, simulated
// wire seconds, peak memory) and obs::RunReport serializes one structured
// report per run. See docs/OBSERVABILITY.md for the metric name catalog.
#ifndef TRILLIONG_OBS_METRICS_H_
#define TRILLIONG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tg::obs {

/// Global observability switch. Phase-boundary recording (a handful of
/// counter adds per run) is always on — it is free relative to the phases it
/// measures. Per-scope / per-edge instrumentation (trace spans, degree
/// histograms) only runs while enabled, so a run that never asks for a
/// report pays one predictable branch per scope and no clock syscalls.
bool Enabled();
void SetEnabled(bool on);

/// Coarse run-phase marker ("partition", "generate", "idle", ...) for cheap
/// liveness surfaces — the admin server's `GET /healthz` reports it without
/// touching the registry. `phase` must be a string literal (the pointer is
/// stored, not copied); the drivers in core/ and cluster/ set it at phase
/// boundaries.
void SetCurrentPhase(const char* phase);
const char* CurrentPhase();

/// Monotonic event counter. Relaxed atomics: totals are read only at report
/// time, after the threads that wrote them have been joined.
class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Double-valued gauge with set / accumulate / max-merge updates (seconds of
/// simulated wire time accumulate; per-machine peaks max-merge).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }

  void Max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Snapshot of a Histogram at report time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  /// bucket[i] counts observations with bit_width == i (bucket 0: value 0;
  /// bucket i >= 1: values in [2^(i-1), 2^i)). Trailing zero buckets are
  /// trimmed.
  std::vector<std::uint64_t> buckets;

  /// Estimates the q-quantile (q in [0, 1]) by locating the bucket holding
  /// the rank and interpolating linearly inside its [2^(i-1), 2^i) range,
  /// clamped to the observed min/max. Exact at the resolution of log2
  /// buckets — off by at most a factor of 2, usually much less.
  double Quantile(double q) const;
};

/// Log-scale histogram of non-negative integer samples (latencies in
/// nanoseconds, sizes in bytes or edges). Power-of-two buckets match how the
/// paper reasons about scale sweeps: one bucket per doubling.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit_width(v) in [0, 64]

  void Observe(std::uint64_t v) {
    int b = BucketOf(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Bucket index of a value: its bit width (0 for value 0).
  static int BucketOf(std::uint64_t v) {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }

  /// Inclusive lower bound of bucket `b` (0, 1, 2, 4, 8, ...).
  static std::uint64_t BucketLowerBound(int b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  HistogramSnapshot Snapshot() const;
  std::uint64_t count() const;
  void Reset();

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// One structured event: something that happened at a specific point in the
/// run, as opposed to an aggregate. Used by tg::fault to record the injected
/// schedule (every crash/delay/retry with its machine and boundary ordinal)
/// so a RunReport proves *which* faults a run survived, not just how many.
struct Event {
  std::string kind;          ///< dotted name, e.g. "fault.crash"
  int machine = -1;          ///< simulated machine, -1 when not applicable
  std::uint64_t ordinal = 0; ///< per-machine boundary ordinal (1-based)
  std::string detail;        ///< free-form, e.g. the rule that fired
};

/// Installs (or, with nullptr, removes) a process-wide observer invoked for
/// every RecordEvent — including events dropped from the bounded report
/// buffer, so live consumers (the admin server's SSE stream) see the full
/// firehose. Called on the recording thread with no registry lock held; the
/// observer must be fast and must not record events itself.
void SetEventObserver(std::function<void(const Event&)> observer);

/// Aggregated statistics of one trace-span path (see obs/span.h).
struct SpanStats {
  std::uint64_t count = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

/// The process-wide metric store. Metric objects are created on first use
/// and live for the lifetime of the registry, so hot paths may cache the
/// returned pointers. Reset() zeroes values in place — cached pointers stay
/// valid.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Aggregates one finished span occurrence. `machine` is the simulated
  /// machine tag active on the recording thread (-1 when untagged).
  void RecordSpan(const std::string& path, int machine, double wall_seconds,
                  double cpu_seconds);

  /// Per-simulated-machine stat table (peak bytes, CPU seconds, ...).
  /// SetMachineStat overwrites; MaxMachineStat keeps the maximum.
  void SetMachineStat(int machine, const std::string& key, double value);
  void MaxMachineStat(int machine, const std::string& key, double value);

  /// Appends one structured event (capped at kMaxEvents to bound report
  /// size under pathological chaos plans; overflow is counted in the
  /// "obs.events_dropped" counter).
  void RecordEvent(Event event);
  static constexpr std::size_t kMaxEvents = 1024;

  // --- Report-time snapshots. ---
  std::map<std::string, std::uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;
  std::map<std::string, HistogramSnapshot> HistogramValues() const;
  /// Keyed by (span path, machine tag).
  std::map<std::pair<std::string, int>, SpanStats> SpanValues() const;
  std::map<int, std::map<std::string, double>> MachineStats() const;
  std::vector<Event> EventValues() const;

  /// Zeroes every counter/gauge/histogram in place (previously returned
  /// pointers remain valid) and clears span and machine tables. Used by
  /// tests and by harnesses that emit one report per bench row.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::pair<std::string, int>, SpanStats> spans_;
  std::map<int, std::map<std::string, double>> machines_;
  std::vector<Event> events_;
};

/// Shorthands against the global registry (the form the hot layers use).
inline Counter* GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) {
  return Registry::Global().GetGauge(name);
}
inline Histogram* GetHistogram(const std::string& name) {
  return Registry::Global().GetHistogram(name);
}

/// Creates (at zero) the canonical metrics every run report promises —
/// docs/OBSERVABILITY.md documents the list — so reports from runs that
/// never touch a subsystem (e.g. a shuffle-free single-process run) still
/// contain its keys with explicit zeros.
void PreregisterCanonicalMetrics();

}  // namespace tg::obs

#endif  // TRILLIONG_OBS_METRICS_H_
