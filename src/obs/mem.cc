#include "obs/mem.h"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/memory_budget.h"

namespace tg::obs {

namespace {

std::mutex g_last_oom_mu;
std::optional<OomReport> g_last_oom;

/// How many trailing headroom samples an OomReport carries.
constexpr std::size_t kHeadroomTailPoints = 32;

/// OomContextHook: runs on the throwing thread, inside MemoryBudget, before
/// the OomError propagates — the only moment the span stack is still intact.
void OomContext(OomReport* report) {
  report->span_stack = CurrentSpanPath();
  Sampler::CopyActiveSeriesTail("mem.headroom_pct", kHeadroomTailPoints,
                                &report->headroom_t, &report->headroom_pct);
}

/// BudgetRetireHook: folds a dying budget's peaks into the registry so
/// per-tag attribution survives the budget (benches build one per row).
void FoldBudget(const MemoryBudget& budget) {
  Registry& registry = Registry::Global();
  if (budget.peak_bytes() > 0) {
    registry.MaxMachineStat(budget.machine(), "peak_bytes",
                            static_cast<double>(budget.peak_bytes()));
    GetGauge("mem.peak_machine_bytes")
        ->Max(static_cast<double>(budget.peak_bytes()));
  }
  for (const OomReport::TagUsage& usage : budget.TagBreakdown()) {
    GetGauge("mem.tag." + usage.tag + ".peak_bytes")
        ->Max(static_cast<double>(usage.peak_bytes));
  }
}

}  // namespace

void EnableMemoryObservability() {
  SetOomContextHook(&OomContext);
  SetBudgetRetireHook(&FoldBudget);
}

void PublishMemoryGauges() {
  std::uint64_t total_used = 0;
  double min_headroom_pct = 100.0;
  bool any_capped = false;
  MemoryBudget::ForEachBudget([&](const MemoryBudget& budget) {
    const std::uint64_t used = budget.used_bytes();
    const std::uint64_t limit = budget.limit_bytes();
    total_used += used;
    const std::string machine_prefix =
        "mem.m" + std::to_string(budget.machine()) + ".";
    GetGauge(machine_prefix + "used_bytes")->Set(static_cast<double>(used));
    if (limit != 0) {
      any_capped = true;
      const std::uint64_t free_bytes = used < limit ? limit - used : 0;
      const double headroom_pct =
          100.0 * static_cast<double>(free_bytes) / static_cast<double>(limit);
      GetGauge(machine_prefix + "headroom_pct")->Set(headroom_pct);
      min_headroom_pct = std::min(min_headroom_pct, headroom_pct);
    }
    for (const OomReport::TagUsage& usage : budget.TagBreakdown()) {
      GetGauge("mem.tag." + usage.tag + ".peak_bytes")
          ->Max(static_cast<double>(usage.peak_bytes));
    }
  });
  GetGauge("mem.used_bytes")->Set(static_cast<double>(total_used));
  GetGauge("mem.headroom_pct")->Set(any_capped ? min_headroom_pct : 100.0);
}

void RecordOom(const OomReport& report) {
  GetCounter("mem.oom_events")->Add(1);
  if (TraceEnabled()) TraceInstant("mem.oom");
  std::lock_guard<std::mutex> lock(g_last_oom_mu);
  g_last_oom = report;
}

std::optional<OomReport> LastOom() {
  std::lock_guard<std::mutex> lock(g_last_oom_mu);
  return g_last_oom;
}

void ClearLastOom() {
  std::lock_guard<std::mutex> lock(g_last_oom_mu);
  g_last_oom.reset();
}

}  // namespace tg::obs
