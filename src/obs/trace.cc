#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <set>

#include "obs/metrics.h"
#include "obs/span.h"

namespace tg::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

/// Trace epoch. Monotonic timestamps are taken relative to this so exported
/// microsecond values stay small. Reset only by ResetTraceForTest().
std::atomic<std::int64_t> g_epoch_ns{0};

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Registry of every thread's buffer. Buffers are only appended (and only
/// cleared wholesale by ResetTraceForTest), so a drain can walk the vector
/// under the lock and read buffers lock-free afterwards.
struct BufferRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  /// Bumped by ResetTraceForTest so threads holding a cached pointer into a
  /// cleared registry re-register instead of writing into freed memory.
  std::atomic<std::uint64_t> generation{0};
};

BufferRegistry& GlobalBuffers() {
  static BufferRegistry* registry = new BufferRegistry();  // leaked
  return *registry;
}

thread_local TraceBuffer* t_buffer = nullptr;
thread_local std::uint64_t t_buffer_generation = 0;

void EmitTyped(const char* name, TraceEventType type, double value) {
  TraceEvent event;
  event.ts_ns = TraceNowNs();
  event.name = name;
  event.type = type;
  event.machine = CurrentMachine();
  event.value = value;
  CurrentTraceBuffer()->Emit(event);
}

}  // namespace

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool on) {
  if (on) {
    // Establish the epoch on first enable so timestamps start near zero.
    std::int64_t expected = 0;
    g_epoch_ns.compare_exchange_strong(expected, SteadyNowNs(),
                                       std::memory_order_relaxed);
  }
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t TraceNowNs() {
  return SteadyNowNs() - g_epoch_ns.load(std::memory_order_relaxed);
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void TraceBuffer::Emit(const TraceEvent& event) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[h % capacity_];
  slot.seq.store(2 * h + 1, std::memory_order_release);
  slot.ts_ns.store(event.ts_ns, std::memory_order_relaxed);
  slot.name.store(event.name, std::memory_order_relaxed);
  slot.type.store(static_cast<std::int32_t>(event.type),
                  std::memory_order_relaxed);
  slot.machine.store(event.machine, std::memory_order_relaxed);
  slot.value.store(event.value, std::memory_order_relaxed);
  slot.seq.store(2 * h + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

std::size_t TraceBuffer::Drain(std::vector<TraceEvent>* out) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;
  std::size_t appended = 0;
  for (std::uint64_t i = begin; i < head; ++i) {
    Slot& slot = slots_[i % capacity_];
    if (slot.seq.load(std::memory_order_acquire) != 2 * i + 2) continue;
    TraceEvent event;
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    event.name = slot.name.load(std::memory_order_relaxed);
    event.type = static_cast<TraceEventType>(
        slot.type.load(std::memory_order_relaxed));
    event.machine = slot.machine.load(std::memory_order_relaxed);
    event.value = slot.value.load(std::memory_order_relaxed);
    // Revalidate: if the writer lapped us mid-copy the sequence has moved on
    // and we discard. The read-don't-modify RMW's release half orders the
    // payload reads before it (an atomic_thread_fence would too, but TSan
    // cannot model fences and this path is drain-time, not hot).
    if (slot.seq.fetch_add(0, std::memory_order_acq_rel) != 2 * i + 2) {
      continue;
    }
    out->push_back(event);
    ++appended;
  }
  return appended;
}

TraceBuffer* CurrentTraceBuffer() {
  BufferRegistry& registry = GlobalBuffers();
  const std::uint64_t generation =
      registry.generation.load(std::memory_order_acquire);
  if (t_buffer == nullptr || t_buffer_generation != generation) {
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.buffers.push_back(std::make_unique<TraceBuffer>());
    t_buffer = registry.buffers.back().get();
    t_buffer_generation =
        registry.generation.load(std::memory_order_relaxed);
  }
  return t_buffer;
}

void TraceBegin(const char* name) {
  if (!TraceEnabled()) return;
  EmitTyped(name, TraceEventType::kBegin, 0.0);
}

void TraceEnd(const char* name) {
  if (!TraceEnabled()) return;
  EmitTyped(name, TraceEventType::kEnd, 0.0);
}

void TraceInstant(const char* name) {
  if (!TraceEnabled()) return;
  EmitTyped(name, TraceEventType::kInstant, 0.0);
}

void TraceCounter(const char* name, double value) {
  if (!TraceEnabled()) return;
  EmitTyped(name, TraceEventType::kCounter, value);
}

void TraceWire(const char* name, double simulated_seconds) {
  if (!TraceEnabled()) return;
  EmitTyped(name, TraceEventType::kWire, simulated_seconds);
}

const char* InternTraceName(const std::string& name) {
  static std::mutex* mu = new std::mutex();
  static std::set<std::string>* interned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(*mu);
  return interned->insert(name).first->c_str();
}

TraceSnapshot DrainTrace() {
  BufferRegistry& registry = GlobalBuffers();
  std::vector<TraceBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers.reserve(registry.buffers.size());
    for (const auto& buffer : registry.buffers) {
      buffers.push_back(buffer.get());
    }
  }

  TraceSnapshot snapshot;
  std::vector<TraceEvent> events;
  for (std::size_t tid = 0; tid < buffers.size(); ++tid) {
    events.clear();
    buffers[tid]->Drain(&events);
    snapshot.dropped += buffers[tid]->dropped();
    for (const TraceEvent& event : events) {
      snapshot.rows.push_back({event, static_cast<int>(tid)});
    }
  }
  // Rows were appended buffer-by-buffer in emission order; a stable sort by
  // timestamp therefore preserves each thread's B/E nesting on ties.
  std::stable_sort(snapshot.rows.begin(), snapshot.rows.end(),
                   [](const TraceSnapshot::Row& a, const TraceSnapshot::Row& b) {
                     return a.event.ts_ns < b.event.ts_ns;
                   });
  GetCounter("trace.dropped_events")->Reset();
  GetCounter("trace.dropped_events")->Add(snapshot.dropped);
  return snapshot;
}

void ResetTraceForTest() {
  BufferRegistry& registry = GlobalBuffers();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.buffers.clear();
  registry.generation.fetch_add(1, std::memory_order_release);
  g_epoch_ns.store(0, std::memory_order_relaxed);
  if (TraceEnabled()) {
    g_epoch_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  }
}

}  // namespace tg::obs
