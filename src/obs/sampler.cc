#include "obs/sampler.h"

#include <cstdio>
#include <cstdlib>
#include <unistd.h>

#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tg::obs {

namespace {

/// The most recently started, still-live sampler; CopyActiveSeriesTail reads
/// it so the OOM context hook can attach the headroom tail. Guarded by its
/// own mutex, always acquired *before* the sampler's mu_ (Start/Stop touch
/// it outside their mu_ critical sections to keep the order acyclic).
std::mutex g_active_mu;
Sampler* g_active_sampler = nullptr;

/// Process-wide tick fan-out (admin server SSE). Guarded separately from
/// the sampler's mu_; the listener is invoked with mu_ held, so it must not
/// call back into the Sampler (documented on SetTickListener).
std::mutex g_tick_mu;
std::function<void(const TickSample&)> g_tick_listener;

/// Formats an edge count compactly (1234567 -> "1.23M").
std::string HumanCount(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace

void SetTickListener(std::function<void(const TickSample&)> listener) {
  std::lock_guard<std::mutex> lock(g_tick_mu);
  g_tick_listener = std::move(listener);
}

int SamplerIntervalFromEnv(int default_ms) {
  const char* text = std::getenv("TG_SAMPLE_INTERVAL_MS");
  if (text == nullptr || text[0] == '\0') return default_ms;
  const int ms = std::atoi(text);
  return ms > 0 ? ms : default_ms;
}

std::uint64_t CurrentRssBytes() {
#ifdef __linux__
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long rss_pages = 0;
  int matched = std::fscanf(statm, "%llu %llu", &size_pages, &rss_pages);
  std::fclose(statm);
  if (matched != 2) return 0;
  return static_cast<std::uint64_t>(rss_pages) *
         static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

Sampler::Sampler(const SamplerOptions& options) : options_(options) {
  if (options_.interval_ms < 1) options_.interval_ms = 1;
}

Sampler::~Sampler() { Stop(); }

void Sampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    start_time_ = std::chrono::steady_clock::now();
    SampleOnce(0.0, 0.0);
    thread_ = std::thread(&Sampler::Loop, this);
  }
  std::lock_guard<std::mutex> active_lock(g_active_mu);
  g_active_sampler = this;
}

void Sampler::Stop() {
  {
    // Deregister first (and unconditionally) so the OOM hook can never race
    // a dying sampler; done before taking mu_ to keep lock order acyclic.
    std::lock_guard<std::mutex> active_lock(g_active_mu);
    if (g_active_sampler == this) g_active_sampler = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  // One closing sample so the series always covers the full run, then
  // terminate the \r progress line cleanly.
  SampleOnce(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_time_)
                 .count(),
             0.0);
  if (options_.print_progress) std::fputc('\n', stderr);
}

void Sampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const double interval_s = options_.interval_ms / 1000.0;
  double last_t = 0.0;  // the Start() sample anchors the first interval
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
    // Observed tick drift: how far this wakeup landed from nominal. SSE
    // consumers read the gauge to judge how much to trust tick timestamps
    // (a thrashing host shows large positive drift).
    const double drift_ms = (t - last_t - interval_s) * 1000.0;
    last_t = t;
    SampleOnce(t, drift_ms);
  }
}

void Sampler::SampleOnce(double t_seconds, double drift_ms) {
  // Caller holds mu_ (Start/Stop) or the Loop's unique_lock.
  // Refresh the mem.* pressure gauges from the live budgets so the tick
  // captures current usage/headroom, not a stale end-of-phase value.
  PublishMemoryGauges();
  auto record = [&](const std::string& name, double value) {
    TimeSeries& ts = series_[name];
    ts.interval_seconds = options_.interval_ms / 1000.0;
    ts.t.push_back(t_seconds);
    ts.v.push_back(value);
    if (options_.emit_trace_counters && TraceEnabled()) {
      TraceCounter(InternTraceName(name), value);
    }
  };

  Registry& registry = Registry::Global();
  registry.GetGauge("obs.sampler.drift_ms")->Set(drift_ms);
  double edges = 0.0;
  for (const std::string& name : options_.counters) {
    double value =
        static_cast<double>(registry.GetCounter(name)->value());
    if (name == "progress.edges") edges = value;
    record(name, value);
  }
  // Resume credit: chunks a previous process already committed count as done
  // work from t=0. The series above recorded the raw counter; everything
  // rate/ETA/percent below sees the shifted value (the offset is constant,
  // so the windowed rate is unaffected).
  edges += static_cast<double>(options_.progress_initial_edges);
  for (const std::string& name : options_.gauges) {
    record(name, registry.GetGauge(name)->value());
  }
  if (options_.sample_rss) {
    std::uint64_t rss = CurrentRssBytes();
    if (rss != 0) record("proc.rss_bytes", static_cast<double>(rss));
  }

  // Smoothed rate over a sliding ~2s window (whole run while young); shared
  // by the --progress line and the tick fan-out.
  rate_window_.emplace_back(t_seconds, edges);
  while (rate_window_.size() > 2 &&
         t_seconds - rate_window_.front().first > 2.0) {
    rate_window_.erase(rate_window_.begin());
  }
  const double dt = t_seconds - rate_window_.front().first;
  const double de = edges - rate_window_.front().second;
  const double rate = dt > 0 ? de / dt : 0.0;

  if (options_.print_progress) PrintProgress(t_seconds, edges, rate);

  std::function<void(const TickSample&)> listener;
  {
    std::lock_guard<std::mutex> tick_lock(g_tick_mu);
    listener = g_tick_listener;
  }
  if (listener) {
    TickSample tick;
    tick.t_seconds = t_seconds;
    tick.edges = edges;
    tick.edges_per_sec = rate;
    if (options_.progress_target_edges > 0 && rate > 0) {
      tick.eta_seconds =
          (static_cast<double>(options_.progress_target_edges) - edges) / rate;
    }
    tick.mem_used_bytes = registry.GetGauge("mem.used_bytes")->value();
    tick.mem_headroom_pct = registry.GetGauge("mem.headroom_pct")->value();
    tick.drift_ms = drift_ms;
    listener(tick);
  }
}

void Sampler::PrintProgress(double t_seconds, double edges, double rate) {
  char line[160];
  if (options_.progress_target_edges > 0) {
    double target = static_cast<double>(options_.progress_target_edges);
    double pct = target > 0 ? 100.0 * edges / target : 0.0;
    double eta = rate > 0 ? (target - edges) / rate : 0.0;
    std::snprintf(line, sizeof(line),
                  "\r[progress] %s/%s edges (%.0f%%)  %s edges/s  ETA %.1fs   ",
                  HumanCount(edges).c_str(), HumanCount(target).c_str(), pct,
                  HumanCount(rate).c_str(), eta);
  } else {
    std::snprintf(line, sizeof(line),
                  "\r[progress] %s edges  %s edges/s  t=%.1fs   ",
                  HumanCount(edges).c_str(), HumanCount(rate).c_str(),
                  t_seconds);
  }
  std::fputs(line, stderr);
  std::fflush(stderr);
}

void Sampler::CopyActiveSeriesTail(const std::string& name,
                                   std::size_t max_points,
                                   std::vector<double>* t,
                                   std::vector<double>* v) {
  std::lock_guard<std::mutex> active_lock(g_active_mu);
  if (g_active_sampler == nullptr) return;
  std::lock_guard<std::mutex> lock(g_active_sampler->mu_);
  auto it = g_active_sampler->series_.find(name);
  if (it == g_active_sampler->series_.end()) return;
  const TimeSeries& ts = it->second;
  std::size_t start = ts.t.size() > max_points ? ts.t.size() - max_points : 0;
  t->assign(ts.t.begin() + static_cast<std::ptrdiff_t>(start), ts.t.end());
  v->assign(ts.v.begin() + static_cast<std::ptrdiff_t>(start), ts.v.end());
}

std::map<std::string, TimeSeries> Sampler::Series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

void Sampler::ExportTo(RunReport* report) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, ts] : series_) {
    report->series[name] = ts;
  }
}

void Sampler::ExportActiveTo(RunReport* report) {
  std::lock_guard<std::mutex> active_lock(g_active_mu);
  if (g_active_sampler == nullptr) return;
  g_active_sampler->ExportTo(report);
}

}  // namespace tg::obs
