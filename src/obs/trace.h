// obs/trace.h — timeline tracing. Where obs/metrics.h answers "how much",
// the trace answers "when": per-thread lock-free ring buffers collect
// timestamped begin/end/instant/counter events, drained on demand into
// Chrome Trace Event Format JSON that opens directly in Perfetto or
// chrome://tracing. The paper's temporal claims (TrillionG overlaps
// generation with output and never stalls on a shuffle barrier, Figures
// 11b/14) are only visible on this timeline, not in end-of-run totals.
//
// Cost model: with tracing disabled (the default) every Trace* helper is one
// relaxed atomic load and touches no clock. Enabled, an event is one clock
// read plus a handful of relaxed atomic stores into a buffer owned by the
// emitting thread — no locks, no allocation after the buffer exists. Buffers
// are bounded rings: when a thread outruns its capacity the oldest events
// are overwritten and counted as dropped.
#ifndef TRILLIONG_OBS_TRACE_H_
#define TRILLIONG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace tg::obs {

enum class TraceEventType : std::int32_t {
  kBegin = 0,    ///< opens a duration slice ("B")
  kEnd = 1,      ///< closes the innermost slice ("E")
  kInstant = 2,  ///< zero-duration marker ("i")
  kCounter = 3,  ///< sampled value on a counter track ("C")
  kWire = 4,     ///< simulated network charge; value = simulated seconds
};

/// One trace event. `name` must be a string literal (or otherwise outlive
/// every drain) — the buffer stores the pointer, never a copy.
struct TraceEvent {
  std::int64_t ts_ns = 0;  ///< nanoseconds since the trace epoch
  const char* name = nullptr;
  TraceEventType type = TraceEventType::kInstant;
  std::int32_t machine = -1;  ///< simulated machine tag (-1: untagged)
  double value = 0.0;         ///< counter value / simulated wire seconds
};

/// Process-wide trace switch, independent of obs::Enabled() (span *trace*
/// events additionally require obs::Enabled(), since spans early-out before
/// consulting the trace flag).
bool TraceEnabled();
void SetTraceEnabled(bool on);

/// Nanoseconds since the trace epoch (process start, steady clock).
std::int64_t TraceNowNs();

/// Single-writer bounded ring of trace events. The owning thread emits; any
/// other thread may drain concurrently. Slots carry a seqlock-style
/// generation counter and atomic payload fields, so a drain racing a writer
/// skips torn slots instead of blocking — writers never wait.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 15;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  /// Appends one event, overwriting the oldest when full. Wait-free; must
  /// only be called from the owning thread.
  void Emit(const TraceEvent& event);

  /// Copies every complete, still-resident event into `out` in emission
  /// order. Safe to call from any thread while the owner keeps emitting;
  /// slots mid-overwrite are skipped. Returns the number of events appended.
  std::size_t Drain(std::vector<TraceEvent>* out) const;

  /// Total events ever emitted into this buffer.
  std::uint64_t emitted() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to ring overwrite so far (emitted minus capacity, floored).
  std::uint64_t dropped() const {
    std::uint64_t h = emitted();
    return h > capacity_ ? h - capacity_ : 0;
  }

  std::size_t capacity() const { return capacity_; }

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  struct Slot {
    /// 2*generation+1 while the writer fills the slot, 2*generation+2 once
    /// complete; a reader accepts only the latter and re-checks after
    /// copying the payload.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::int64_t> ts_ns{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int32_t> type{0};
    std::atomic<std::int32_t> machine{-1};
    std::atomic<double> value{0.0};
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// The calling thread's trace buffer, created (and registered for DrainTrace)
/// on first use. Stable for the thread's lifetime; buffers outlive their
/// threads so a post-join drain sees every event.
TraceBuffer* CurrentTraceBuffer();

/// Emit helpers. All are a single relaxed load when tracing is disabled, and
/// tag events with the thread's simulated machine (obs::CurrentMachine()).
void TraceBegin(const char* name);
void TraceEnd(const char* name);
void TraceInstant(const char* name);
void TraceCounter(const char* name, double value);
/// Copies `name` into process-lifetime storage and returns the stable
/// pointer (idempotent per distinct string). For callers whose event names
/// are built at runtime — e.g. the sampler's metric names — since the ring
/// stores pointers, not copies.
const char* InternTraceName(const std::string& name);
/// Books a simulated-network charge of `simulated_seconds` onto the trace's
/// dedicated wire track (NetworkModel / SimCluster call this).
void TraceWire(const char* name, double simulated_seconds);

/// A drained, merged view of every thread's buffer.
struct TraceSnapshot {
  struct Row {
    TraceEvent event;
    int tid = 0;  ///< stable per-thread trace id (buffer registration order)
  };
  /// Sorted by timestamp; ties keep per-thread emission order.
  std::vector<Row> rows;
  std::uint64_t dropped = 0;  ///< ring-overwritten events across all threads
};

/// Drains all registered buffers (threads may keep emitting; their in-flight
/// slots are simply missed). Also publishes the total drop count to the
/// `trace.dropped_events` counter so run reports surface truncation.
TraceSnapshot DrainTrace();

/// Drops all buffered events and thread registrations and restarts the
/// trace epoch. Only safe while no instrumented thread is running; tests
/// and one-report-per-row harnesses use it alongside Registry::Reset().
void ResetTraceForTest();

/// Renders a snapshot as Chrome Trace Event Format JSON ("traceEvents"
/// array). Simulated machines become trace processes, span nesting becomes
/// nested duration events, and kWire events land on a dedicated "simulated
/// network" process whose slice durations are *simulated* seconds — real and
/// simulated time side by side. The wire process and a cumulative
/// `net.simulated_seconds` counter track are always present, even when no
/// wire event fired (a shuffle-free run shows an empty track, which is the
/// claim).
std::string TraceToChromeJson(const TraceSnapshot& snapshot);

/// DrainTrace() + TraceToChromeJson + write, creating missing parent
/// directories first.
Status WriteChromeTraceFile(const std::string& path);

}  // namespace tg::obs

#endif  // TRILLIONG_OBS_TRACE_H_
