// obs/report_diff.h — the comparison engine behind tools/bench_check: diffs
// a fresh bench RunReport against a committed baseline with per-metric
// relative tolerances, so the BENCH_*.json trajectory becomes a CI gate
// instead of dead weight.
//
// What is comparable on a simulated cluster: counters (edge counts, shuffled
// bytes, spill counts) and the *simulated* gauges (net.simulated_seconds,
// mem.peak_*) are deterministic for a fixed seed and config, so they diff
// exactly or near-exactly across hosts. Real-clock artifacts — span
// wall/cpu seconds, per-machine cpu stats — are machine-dependent noise and
// are never compared.
#ifndef TRILLIONG_OBS_REPORT_DIFF_H_
#define TRILLIONG_OBS_REPORT_DIFF_H_

#include <map>
#include <string>
#include <vector>

#include "obs/run_report.h"

namespace tg::obs {

struct DiffOptions {
  /// Relative tolerance for counters without an explicit override. Counters
  /// are deterministic under a fixed seed, so the default is exact.
  double counter_rel_tol = 0.0;

  /// Gauges without an explicit or built-in rule: skipped when negative,
  /// otherwise compared at this tolerance.
  double default_gauge_rel_tol = -1.0;

  /// Per-metric overrides (apply to counters, gauges, and the
  /// `histogram/<name>/{count,sum}` synthetic keys).
  std::map<std::string, double> tolerances;

  /// Built-in prefix rule: any `mem.tag.<tag>.peak_bytes` gauge in the
  /// baseline is compared at this tolerance (explicit per-name overrides
  /// still win), so a per-component memory regression fails the gate even
  /// though the gauge set is open-ended. Negative disables the rule.
  double mem_tag_peak_rel_tol = 0.5;

  /// Metric names excluded from comparison entirely.
  std::vector<std::string> skip;

  /// Compare histogram count/sum (as synthetic `histogram/<name>/count`
  /// etc.) at the counter tolerance.
  bool check_histograms = true;

  /// Built-in gauge rules: the simulated/deterministic gauges are checked,
  /// everything else (real-clock derived) is skipped unless
  /// default_gauge_rel_tol says otherwise.
  static DiffOptions Defaults();
};

struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double rel_tol = 0.0;
  bool missing = false;    ///< present in baseline, absent in current
  bool regressed = false;  ///< |current - baseline| exceeded tolerance
};

struct DiffResult {
  std::vector<MetricDelta> deltas;  ///< every *checked* metric, name order
  int num_checked = 0;
  int num_regressed = 0;

  bool ok() const { return num_regressed == 0; }

  /// Human-readable table of the comparison; regressions marked "FAIL".
  std::string ToString(bool verbose) const;
};

/// One row of `ListGatedMetrics`: what DiffReports would do with a baseline
/// metric under a given option set, without needing a current report.
struct GatedMetric {
  std::string name;     ///< metric (or `histogram/<name>/{count,sum}`) key
  std::string kind;     ///< "counter", "gauge", or "histogram"
  double rel_tol = 0.0; ///< resolved relative tolerance (may be negative)
  bool skipped = false; ///< true when DiffReports would not compare it
};

/// Enumerates every metric in `baseline` with the tolerance DiffReports
/// would apply — the same resolution order (explicit override, built-in
/// prefix rule, kind default) — including the ones it would skip. Backs
/// `bench_check --list`, so the CI gate's coverage is inspectable instead
/// of implicit.
std::vector<GatedMetric> ListGatedMetrics(const RunReport& baseline,
                                          const DiffOptions& options);

/// Compares `current` against `baseline`. A metric present in the baseline
/// but absent from the current report counts as a regression (the bench
/// stopped measuring something it promised); metrics new in `current` are
/// ignored, so adding instrumentation never breaks old baselines.
DiffResult DiffReports(const RunReport& baseline, const RunReport& current,
                       const DiffOptions& options);

}  // namespace tg::obs

#endif  // TRILLIONG_OBS_REPORT_DIFF_H_
