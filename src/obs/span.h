// obs/span.h — RAII trace spans. TG_SPAN("avs.generate") measures the wall
// and thread-CPU time of the enclosing block; spans on the same thread nest,
// and each completed occurrence is aggregated per (slash-joined path,
// simulated machine) into the obs::Registry. When observability is disabled
// (obs::Enabled() == false) a span costs one relaxed atomic load and touches
// no clock.
#ifndef TRILLIONG_OBS_SPAN_H_
#define TRILLIONG_OBS_SPAN_H_

#include <string>

#include "obs/metrics.h"

namespace tg::obs {

/// Tags the current thread with a simulated machine id so spans (and
/// phase-boundary stats) can be broken down per machine. SimCluster
/// installs one per worker thread; -1 means untagged. Restores the previous
/// tag on destruction, so nesting works.
class ScopedMachine {
 public:
  explicit ScopedMachine(int machine);
  ~ScopedMachine();

  ScopedMachine(const ScopedMachine&) = delete;
  ScopedMachine& operator=(const ScopedMachine&) = delete;

 private:
  int saved_;
};

/// The machine tag of the calling thread (-1 when untagged).
int CurrentMachine();

/// Slash-joined path of the calling thread's open spans ("" when none or
/// when observability is disabled). OOM forensics records this so an
/// OomReport says *where* in the phase hierarchy the budget tripped.
std::string CurrentSpanPath();

/// One timed section. Span paths are per thread: a span opened on a worker
/// thread does not nest under spans of the spawning thread.
class Span {
 public:
  /// `name` must be a string literal (or otherwise outlive the span); names
  /// must not contain '/'.
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  bool active_ = false;
  double wall_start_ = 0.0;
  double cpu_start_ = 0.0;
};

}  // namespace tg::obs

#define TG_OBS_CONCAT_INNER(a, b) a##b
#define TG_OBS_CONCAT(a, b) TG_OBS_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing scope.
#define TG_SPAN(name) \
  ::tg::obs::Span TG_OBS_CONCAT(tg_obs_span_, __LINE__)(name)

#endif  // TRILLIONG_OBS_SPAN_H_
