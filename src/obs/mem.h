// obs/mem.h — memory observability glue between tg::MemoryBudget (util, no
// obs dependency) and the metric registry. Three jobs:
//
//  * pressure gauges: PublishMemoryGauges walks every live budget and sets
//    per-machine `mem.m<id>.used_bytes` / `mem.m<id>.headroom_pct`, the
//    process-wide `mem.used_bytes` / `mem.headroom_pct` (min headroom over
//    capped machines), and max-merges per-tag `mem.tag.<tag>.peak_bytes`.
//    The Sampler calls it each tick so the series shows pressure building.
//
//  * OOM forensics: EnableMemoryObservability installs the util-layer hooks
//    that (a) enrich an in-flight OomReport with the thrower's span stack
//    and the sampled headroom tail, and (b) fold a dying budget's per-tag
//    peaks into the registry so short-lived bench budgets still show up in
//    end-of-run reports and bench_check baselines.
//
//  * last-OOM capture: RecordOom stashes the most recent OomReport (and
//    bumps `mem.oom_events`); RunReport::Collect serializes it as the
//    "mem.oom" section.
#ifndef TRILLIONG_OBS_MEM_H_
#define TRILLIONG_OBS_MEM_H_

#include <optional>

#include "util/oom_report.h"

namespace tg::obs {

/// Installs the OOM-context and budget-retire hooks (idempotent). Called
/// from PreregisterCanonicalMetrics so any instrumented binary gets
/// attribution without extra wiring.
void EnableMemoryObservability();

/// Refreshes the mem.* gauges from every live MemoryBudget (see file
/// comment). Cheap: a mutex-guarded walk reading atomics.
void PublishMemoryGauges();

/// Records the forensics of a caught OomError as the run's last OOM and
/// increments the `mem.oom_events` counter. Benches and gen_cli call this
/// from their catch blocks; RunReport::Collect picks it up.
void RecordOom(const OomReport& report);

/// The most recently recorded OOM, if any.
std::optional<OomReport> LastOom();

/// Forgets the last OOM (Registry::Reset calls this so reports from
/// back-to-back runs in one process don't inherit a stale OOM section).
void ClearLastOom();

}  // namespace tg::obs

#endif  // TRILLIONG_OBS_MEM_H_
