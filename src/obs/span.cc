#include "obs/span.h"

#include <chrono>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/stopwatch.h"

namespace tg::obs {

namespace {

thread_local std::vector<const char*> t_span_stack;
thread_local int t_machine = -1;

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JoinStack() {
  std::string path;
  for (const char* name : t_span_stack) {
    if (!path.empty()) path += '/';
    path += name;
  }
  return path;
}

}  // namespace

ScopedMachine::ScopedMachine(int machine) : saved_(t_machine) {
  t_machine = machine;
}

ScopedMachine::~ScopedMachine() { t_machine = saved_; }

int CurrentMachine() { return t_machine; }

std::string CurrentSpanPath() { return JoinStack(); }

Span::Span(const char* name) : name_(name) {
  if (!Enabled()) return;
  active_ = true;
  t_span_stack.push_back(name_);
  // The trace begin event precedes the aggregate clock reads so the traced
  // slice encloses the measured interval.
  TraceBegin(name_);
  wall_start_ = WallSeconds();
  cpu_start_ = ThreadCpuSeconds();
}

Span::~Span() {
  if (!active_) return;
  double wall = WallSeconds() - wall_start_;
  double cpu = ThreadCpuSeconds() - cpu_start_;
  TraceEnd(name_);
  std::string path = JoinStack();
  // Pop only our own frame; TG_SPAN scoping guarantees LIFO order per thread.
  if (!t_span_stack.empty() && t_span_stack.back() == name_) {
    t_span_stack.pop_back();
  }
  Registry::Global().RecordSpan(path, t_machine, wall, cpu);
}

}  // namespace tg::obs
