// Chrome Trace Event Format export of a TraceSnapshot. Reference:
// "Trace Event Format" (Google, docs.google.com/document/d/1CvAClvFfyA5R-
// PhYUmn5OOQtYMH4h6I0nSsKchNAySU) — the JSON flavor both Perfetto's legacy
// importer and chrome://tracing accept.
//
// Track mapping:
//   pid 0               "driver"             untagged threads (machine -1)
//   pid 1               "simulated network"  kWire slices + wire counter
//   pid 100 + m         "machine m"          threads tagged ScopedMachine(m)
// Within a process, tid is the emitting thread's stable trace id, so one
// worker thread is one timeline row. Wire slices are "X" complete events
// whose *duration* is the simulated NetworkModel charge — real timestamps,
// simulated extents, so both clocks are visible side by side.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/file_io.h"
#include "storage/fs.h"

namespace tg::obs {

namespace {

constexpr int kDriverPid = 0;
constexpr int kWirePid = 1;
constexpr int kMachinePidBase = 100;
constexpr int kWireTid = 0;

int PidOf(const TraceEvent& event) {
  if (event.type == TraceEventType::kWire) return kWirePid;
  return event.machine < 0 ? kDriverPid : kMachinePidBase + event.machine;
}

void AppendEscaped(const char* s, std::string* out) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendMicros(std::int64_t ns, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  *out += buf;
}

void AppendDouble(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (std::strstr(buf, "inf") != nullptr ||
      std::strstr(buf, "nan") != nullptr) {
    *out += "0";
    return;
  }
  *out += buf;
}

/// Emits one metadata record ({"ph":"M"}) naming a process or thread.
void AppendMetadata(const char* what, int pid, int tid, bool with_tid,
                    const std::string& label, bool* first, std::string* out) {
  *out += *first ? "\n  " : ",\n  ";
  *first = false;
  *out += "{\"name\": ";
  AppendEscaped(what, out);
  *out += ", \"ph\": \"M\", \"pid\": ";
  *out += std::to_string(pid);
  if (with_tid) {
    *out += ", \"tid\": ";
    *out += std::to_string(tid);
  }
  *out += ", \"args\": {\"name\": ";
  AppendEscaped(label.c_str(), out);
  *out += "}}";
}

}  // namespace

std::string TraceToChromeJson(const TraceSnapshot& snapshot) {
  std::string out;
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;

  // --- Metadata: name every process and thread that appears, plus the wire
  // process, which is always present (an empty wire track on a shuffle-free
  // run is the paper's point, not an omission).
  std::set<int> pids = {kWirePid};
  std::set<std::pair<int, int>> pid_tids = {{kWirePid, kWireTid}};
  for (const TraceSnapshot::Row& row : snapshot.rows) {
    int pid = PidOf(row.event);
    pids.insert(pid);
    pid_tids.insert({pid, row.event.type == TraceEventType::kWire
                              ? kWireTid
                              : row.tid});
  }
  for (int pid : pids) {
    std::string label;
    if (pid == kDriverPid) {
      label = "driver";
    } else if (pid == kWirePid) {
      label = "simulated network";
    } else {
      label = "machine " + std::to_string(pid - kMachinePidBase);
    }
    AppendMetadata("process_name", pid, 0, false, label, &first, &out);
  }
  for (const auto& [pid, tid] : pid_tids) {
    std::string label = pid == kWirePid ? "wire (simulated time)"
                                        : "thread " + std::to_string(tid);
    AppendMetadata("thread_name", pid, tid, true, label, &first, &out);
  }

  // --- Events.
  double cumulative_wire_seconds = 0.0;
  std::int64_t last_ts_ns = 0;
  for (const TraceSnapshot::Row& row : snapshot.rows) {
    const TraceEvent& event = row.event;
    last_ts_ns = event.ts_ns;
    out += first ? "\n  " : ",\n  ";
    first = false;
    out += "{\"name\": ";
    AppendEscaped(event.name == nullptr ? "?" : event.name, &out);
    out += ", \"pid\": ";
    out += std::to_string(PidOf(event));
    out += ", \"tid\": ";
    out += std::to_string(event.type == TraceEventType::kWire ? kWireTid
                                                              : row.tid);
    out += ", \"ts\": ";
    AppendMicros(event.ts_ns, &out);
    switch (event.type) {
      case TraceEventType::kBegin:
        out += ", \"ph\": \"B\"}";
        break;
      case TraceEventType::kEnd:
        out += ", \"ph\": \"E\"}";
        break;
      case TraceEventType::kInstant:
        out += ", \"ph\": \"i\", \"s\": \"t\"}";
        break;
      case TraceEventType::kCounter:
        out += ", \"ph\": \"C\", \"args\": {\"value\": ";
        AppendDouble(event.value, &out);
        out += "}}";
        break;
      case TraceEventType::kWire: {
        // Simulated charge: a complete slice whose duration is the
        // *simulated* transfer time, plus a running total on a counter
        // track of the same process.
        out += ", \"ph\": \"X\", \"dur\": ";
        AppendMicros(static_cast<std::int64_t>(event.value * 1e9), &out);
        out += ", \"args\": {\"simulated_seconds\": ";
        AppendDouble(event.value, &out);
        out += "}}";
        cumulative_wire_seconds += event.value;
        out += ",\n  {\"name\": \"net.simulated_seconds\", \"pid\": ";
        out += std::to_string(kWirePid);
        out += ", \"tid\": ";
        out += std::to_string(kWireTid);
        out += ", \"ts\": ";
        AppendMicros(event.ts_ns, &out);
        out += ", \"ph\": \"C\", \"args\": {\"value\": ";
        AppendDouble(cumulative_wire_seconds, &out);
        out += "}}";
        break;
      }
    }
  }

  // Close the wire counter track with the registry's final total so runs
  // whose charges happened before tracing was enabled (or with no charges at
  // all) still render a track, pinned at the true end-of-run value.
  out += first ? "\n  " : ",\n  ";
  out += "{\"name\": \"net.simulated_seconds\", \"pid\": ";
  out += std::to_string(kWirePid);
  out += ", \"tid\": ";
  out += std::to_string(kWireTid);
  out += ", \"ts\": ";
  AppendMicros(last_ts_ns, &out);
  out += ", \"ph\": \"C\", \"args\": {\"value\": ";
  AppendDouble(GetGauge("net.simulated_seconds")->value(), &out);
  out += "}}";

  out += "\n],\n\"otherData\": {\"dropped_events\": ";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, snapshot.dropped);
  out += buf;
  out += "}\n}\n";
  return out;
}

Status WriteChromeTraceFile(const std::string& path) {
  Status made = storage::EnsureParentDirectory(path);
  if (!made.ok()) return made;
  TraceSnapshot snapshot = DrainTrace();
  std::string json = TraceToChromeJson(snapshot);
  storage::FileWriter writer;
  Status s = writer.Open(path);
  if (!s.ok()) return s;
  writer.Append(json.data(), json.size());
  return writer.Close();
}

}  // namespace tg::obs
