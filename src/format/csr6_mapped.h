// format/csr6_mapped.h — zero-copy CSR6 shard reader. Instead of streaming
// the file through FileReader into freshly allocated vectors (Csr6Reader),
// the whole shard is mmap'd read-only: the 8-byte offset table is used in
// place (it starts at byte 40, so it is naturally 8-aligned) and the 6-byte
// packed neighbors are decoded on the fly. Loading a shard costs one mmap
// regardless of size; pages fault in as the query traverses them. This is
// how tg::query loads graphs (query/csr_graph.cc).
#ifndef TRILLIONG_FORMAT_CSR6_MAPPED_H_
#define TRILLIONG_FORMAT_CSR6_MAPPED_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/common.h"
#include "util/status.h"

namespace tg::format {

class Csr6MappedReader {
 public:
  explicit Csr6MappedReader(const std::string& path);
  ~Csr6MappedReader();

  Csr6MappedReader(const Csr6MappedReader&) = delete;
  Csr6MappedReader& operator=(const Csr6MappedReader&) = delete;

  /// Unlike Csr6Reader's TG_CHECK aborts, structural problems (bad magic,
  /// size mismatch, truncated offsets) surface as a Corruption status — a
  /// query tool should report a broken shard, not crash on it.
  const Status& status() const { return status_; }

  VertexId lo() const { return lo_; }
  VertexId hi() const { return hi_; }
  std::uint64_t num_edges() const { return num_edges_; }

  /// Offset of u's first edge within the shard's edge array.
  std::uint64_t EdgeOffset(VertexId u) const {
    TG_DCHECK(u >= lo_ && u <= hi_);
    return LoadU64(offsets_ + 8 * (u - lo_));
  }

  std::uint64_t Degree(VertexId u) const {
    TG_DCHECK(u >= lo_ && u < hi_);
    return EdgeOffset(u + 1) - EdgeOffset(u);
  }

  /// Neighbor at absolute edge index (EdgeOffset(u) + i for u's i-th).
  VertexId NeighborAt(std::uint64_t edge_index) const {
    TG_DCHECK(edge_index < num_edges_);
    // 6-byte memcpy, not an 8-byte load masked down: the last record ends
    // exactly at EOF, and reading 2 bytes past it can cross the final page.
    std::uint64_t v = 0;
    std::memcpy(&v, neighbors_ + 6 * edge_index, 6);
    return FromLittleEndian48(v);
  }

  /// Widens u's 6-byte neighbors into `out` (Degree(u) entries).
  void CopyNeighbors(VertexId u, VertexId* out) const;

  /// Widens the whole shard's neighbor array into `out` (num_edges entries),
  /// in file order — the bulk-load path of query::CsrGraph.
  void CopyAllNeighbors(VertexId* out) const;

 private:
  static std::uint64_t LoadU64(const unsigned char* p) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    return FromLittleEndian64(v);
  }

  // The formats are little-endian on disk; on LE hosts (every supported
  // target) these compile to nothing.
  static std::uint64_t FromLittleEndian64(std::uint64_t v);
  static std::uint64_t FromLittleEndian48(std::uint64_t v);

  Status status_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  const unsigned char* offsets_ = nullptr;
  const unsigned char* neighbors_ = nullptr;
  VertexId lo_ = 0;
  VertexId hi_ = 0;
  std::uint64_t num_edges_ = 0;
};

}  // namespace tg::format

#endif  // TRILLIONG_FORMAT_CSR6_MAPPED_H_
