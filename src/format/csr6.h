#ifndef TRILLIONG_FORMAT_CSR6_H_
#define TRILLIONG_FORMAT_CSR6_H_

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scope_sink.h"
#include "storage/file_io.h"
#include "util/common.h"
#include "util/status.h"

namespace tg::format {

/// The 6-byte Compressed Sparse Row binary format of Section 5 (CSR6). One
/// file covers a contiguous vertex range [lo, hi) (a shard; the whole graph
/// when lo == 0 and hi == |V|):
///
///   [magic "TGCSR6\0\0" : 8][version : 8][lo : 8][hi : 8][num_edges : 8]
///   [offsets : (hi - lo + 1) * 8]          // offsets[i] = first edge of lo+i
///   [neighbors : num_edges * 6]            // sorted within each adjacency
///
/// Scopes must be fed in increasing vertex order (exactly what the AVS
/// generator produces); adjacency lists are sorted by the writer.
class Csr6Writer : public core::ResumableSink {
 public:
  Csr6Writer(const std::string& path, VertexId lo, VertexId hi);

  /// Resume constructor: restores the writer from a CommitState token
  /// ("bytes=B,next=V,edges=E") plus the degree sidecar (SidecarPath) the
  /// interrupted process kept, truncates the edge stream back to byte B,
  /// and continues at vertex V. The sidecar is needed because the CSR
  /// offset table is only materialized in Finish(): per-vertex degrees are
  /// appended durably at every checkpoint so a new process can rebuild the
  /// in-memory prefix.
  Csr6Writer(const std::string& path, VertexId lo, VertexId hi,
             const core::ResumeFrom& resume);
  ~Csr6Writer() override;

  void ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) override;
  void Finish() override;

  /// Durable checkpoint: flushes edge bytes, appends the degrees of newly
  /// consumed vertices to the sidecar, and renders the token. The sidecar
  /// outlives Finish() — the caller (gen_cli) deletes it once the whole
  /// run's journal records completion, so a crash between the last chunk
  /// commit and Finish stays recoverable.
  Status CommitState(std::string* token) override;

  /// Path of the degree sidecar kept next to a resumable CSR6 file.
  static std::string SidecarPath(const std::string& path) {
    return path + ".offsets";
  }

  /// Transport errors surface through the writer; token/sidecar problems
  /// through the local status — whichever failed first wins.
  const Status& status() const {
    return status_.ok() ? writer_->status() : status_;
  }
  std::uint64_t bytes_written() const { return writer_->bytes_written(); }

  static constexpr char kMagic[8] = {'T', 'G', 'C', 'S', 'R', '6', 0, 0};
  static constexpr std::uint64_t kVersion = 1;

 private:
  std::uint64_t HeaderBytes() const { return 8 * 5 + offsets_.size() * 8; }

  std::unique_ptr<storage::FileWriterBase> writer_;
  std::FILE* sidecar_ = nullptr;
  std::string path_;
  Status status_;
  VertexId lo_;
  VertexId hi_;
  VertexId next_vertex_;
  VertexId sidecar_next_;  ///< first vertex whose degree is not yet durable
  std::uint64_t num_edges_ = 0;
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> sorted_;
  bool finished_ = false;
  bool resumable_ = false;  ///< CommitState was used (or resume constructor)
};

/// Loads a CSR6 shard fully into memory.
class Csr6Reader {
 public:
  explicit Csr6Reader(const std::string& path);

  const Status& status() const { return status_; }
  VertexId lo() const { return lo_; }
  VertexId hi() const { return hi_; }
  std::uint64_t num_edges() const { return edges_.size(); }

  std::uint64_t Degree(VertexId u) const {
    TG_CHECK(u >= lo_ && u < hi_);
    return offsets_[u - lo_ + 1] - offsets_[u - lo_];
  }

  std::span<const VertexId> Neighbors(VertexId u) const {
    TG_CHECK(u >= lo_ && u < hi_);
    return std::span<const VertexId>(edges_.data() + offsets_[u - lo_],
                                     Degree(u));
  }

 private:
  Status status_;
  VertexId lo_ = 0;
  VertexId hi_ = 0;
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> edges_;
};

}  // namespace tg::format

#endif  // TRILLIONG_FORMAT_CSR6_H_
