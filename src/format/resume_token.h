// format/resume_token.h — parsing for the "key=value,key=value" tokens the
// format writers return from core::ResumableSink::CommitState and accept in
// their core::ResumeFrom constructors. Tokens are whitespace-free on purpose
// so the chunk-commit journal can store them as single fields.
#ifndef TRILLIONG_FORMAT_RESUME_TOKEN_H_
#define TRILLIONG_FORMAT_RESUME_TOKEN_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace tg::format {

/// Extracts the integer value of `key` from a "k1=v1,k2=v2" token. Returns
/// false when the key is missing or its value is not a clean integer.
inline bool TokenField(const std::string& token, const std::string& key,
                       std::uint64_t* out) {
  std::size_t pos = 0;
  const std::string needle = key + "=";
  while (pos < token.size()) {
    std::size_t end = token.find(',', pos);
    if (end == std::string::npos) end = token.size();
    if (token.compare(pos, needle.size(), needle) == 0) {
      const std::string value =
          token.substr(pos + needle.size(), end - pos - needle.size());
      if (value.empty()) return false;
      char* parse_end = nullptr;
      const unsigned long long v =
          std::strtoull(value.c_str(), &parse_end, 10);
      if (parse_end != value.c_str() + value.size()) return false;
      *out = v;
      return true;
    }
    pos = end + 1;
  }
  return false;
}

}  // namespace tg::format

#endif  // TRILLIONG_FORMAT_RESUME_TOKEN_H_
