#ifndef TRILLIONG_FORMAT_TSV_H_
#define TRILLIONG_FORMAT_TSV_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scope_sink.h"
#include "storage/file_io.h"
#include "util/common.h"
#include "util/status.h"

namespace tg::format {

/// Edge-list text writer: one "src\tdst\n" line per edge (the TSV format of
/// Section 5 — verbose, universally supported, slow to parse).
class TsvWriter : public core::ResumableSink {
 public:
  /// `transposed` swaps the emitted columns; used when the scopes come from
  /// an AVS-I run (scope vertex is the destination).
  explicit TsvWriter(const std::string& path, bool transposed = false);

  /// Resume constructor: truncates `path` to the byte position recorded in
  /// `resume.state` (a token from CommitState) and continues appending.
  TsvWriter(const std::string& path, bool transposed,
            const core::ResumeFrom& resume);

  void ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) override;
  void Finish() override;

  /// Durable checkpoint; token is "bytes=<flushed byte count>".
  Status CommitState(std::string* token) override;

  /// Writes one explicit edge (for edge-at-a-time baselines).
  void WriteEdge(VertexId src, VertexId dst);

  const Status& status() const { return writer_->status(); }
  std::uint64_t bytes_written() const { return writer_->bytes_written(); }

 private:
  std::unique_ptr<storage::FileWriterBase> writer_;
  bool transposed_;
};

/// Reads a TSV edge list produced by TsvWriter (or any whitespace-separated
/// pair-per-line file). Block-buffered: bytes are pulled in `buffer_bytes`
/// chunks and values parsed in place — no per-edge fscanf. Values must fit
/// the 6-byte formats downstream; anything >= 2^48 is rejected with a
/// Corruption status naming the line, as is any non-numeric field.
class TsvReader {
 public:
  explicit TsvReader(const std::string& path,
                     std::size_t buffer_bytes = 1 << 16);
  ~TsvReader();
  TsvReader(const TsvReader&) = delete;
  TsvReader& operator=(const TsvReader&) = delete;

  /// Reads the next edge; returns false at EOF or on error (check status()).
  bool Next(Edge* edge);

  /// Convenience: reads the whole file.
  static std::vector<Edge> ReadAll(const std::string& path);

  const Status& status() const { return status_; }

  /// 1-based line number the parser is currently on.
  std::uint64_t line() const { return line_; }

 private:
  int PeekChar();  // -1 at EOF

  std::FILE* file_ = nullptr;
  std::string path_;
  Status status_;
  std::vector<char> buffer_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::uint64_t line_ = 1;
};

}  // namespace tg::format

#endif  // TRILLIONG_FORMAT_TSV_H_
