#ifndef TRILLIONG_FORMAT_ADJ6_H_
#define TRILLIONG_FORMAT_ADJ6_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scope_sink.h"
#include "storage/file_io.h"
#include "util/common.h"
#include "util/status.h"

namespace tg::format {

/// The 6-byte adjacency-list binary format of Section 5 (ADJ6): a sequence
/// of records
///   [vertex id : 6 bytes][degree : 6 bytes][neighbor : 6 bytes]*degree
/// in little-endian byte order. Vertices with degree 0 are omitted. File
/// sizes are typically 3-4x smaller than TSV, and writing is a straight
/// memcpy of what the AVS generator already produces per scope.
class Adj6Writer : public core::ResumableSink {
 public:
  explicit Adj6Writer(const std::string& path);

  /// Resume constructor: truncates `path` to the byte position recorded in
  /// `resume.state` (a token from CommitState) and continues appending.
  Adj6Writer(const std::string& path, const core::ResumeFrom& resume);

  void ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) override;
  void Finish() override;

  /// Durable checkpoint; token is "bytes=<flushed byte count>". ADJ6 is a
  /// pure record stream, so a byte offset at a record boundary is the whole
  /// resume state.
  Status CommitState(std::string* token) override;

  const Status& status() const { return writer_->status(); }
  std::uint64_t bytes_written() const { return writer_->bytes_written(); }

 private:
  std::unique_ptr<storage::FileWriterBase> writer_;
};

/// Streaming ADJ6 reader.
class Adj6Reader {
 public:
  explicit Adj6Reader(const std::string& path);

  /// Reads the next adjacency record; returns false at EOF.
  bool Next(VertexId* u, std::vector<VertexId>* adj);

  /// Visits every record.
  static Status ForEach(
      const std::string& path,
      const std::function<void(VertexId, const std::vector<VertexId>&)>& fn);

  const Status& status() const { return status_; }

 private:
  storage::FileReader reader_;
  Status status_;
};

}  // namespace tg::format

#endif  // TRILLIONG_FORMAT_ADJ6_H_
