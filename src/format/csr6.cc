#include "format/csr6.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "storage/file_io.h"

namespace tg::format {

Csr6Writer::Csr6Writer(const std::string& path, VertexId lo, VertexId hi)
    : path_(path), lo_(lo), hi_(hi), next_vertex_(lo) {
  TG_CHECK(hi >= lo);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + path);
    return;
  }
  offsets_.assign(hi - lo + 1, 0);
  // Reserve the header + offsets region; it is rewritten in Finish() once
  // the offsets are known, so edges can stream sequentially after it.
  std::vector<char> zeros(8 * 5 + offsets_.size() * 8, 0);
  if (std::fwrite(zeros.data(), 1, zeros.size(), file_) != zeros.size()) {
    status_ = Status::IoError("write failed: " + path);
  }
  bytes_written_ = zeros.size();
}

Csr6Writer::~Csr6Writer() {
  if (!finished_) Finish();
}

void Csr6Writer::FlushBuffer() {
  if (buffer_.empty()) return;
  if (status_.ok() &&
      std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
          buffer_.size()) {
    status_ = Status::IoError("write failed: " + path_);
  }
  buffer_.clear();
}

void Csr6Writer::Put48(std::uint64_t value) {
  TG_CHECK_MSG(value < (std::uint64_t{1} << 48),
               "value does not fit in 6 bytes: " << value);
  for (int i = 0; i < 6; ++i) {
    buffer_.push_back(static_cast<unsigned char>((value >> (8 * i)) & 0xFF));
  }
  if (buffer_.size() >= (1u << 20)) FlushBuffer();
  bytes_written_ += 6;
}

void Csr6Writer::Put64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<unsigned char>((value >> (8 * i)) & 0xFF));
  }
  if (buffer_.size() >= (1u << 20)) FlushBuffer();
}

void Csr6Writer::ConsumeScope(VertexId u, const VertexId* adj,
                              std::size_t n) {
  TG_CHECK_MSG(u >= next_vertex_ && u < hi_,
               "CSR6 scopes must arrive in increasing order within [lo, hi)");
  next_vertex_ = u + 1;
  offsets_[u - lo_ + 1] = n;  // degree for now; prefix-summed in Finish()
  sorted_.assign(adj, adj + n);
  std::sort(sorted_.begin(), sorted_.end());
  for (VertexId v : sorted_) Put48(v);
  num_edges_ += n;
}

void Csr6Writer::Finish() {
  if (finished_) return;
  finished_ = true;
  if (file_ == nullptr) return;
  FlushBuffer();  // remaining edge bytes
  // Degrees -> offsets.
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  if (status_.ok() && std::fseek(file_, 0, SEEK_SET) != 0) {
    status_ = Status::IoError("seek failed: " + path_);
  }
  if (status_.ok()) {
    if (std::fwrite(kMagic, 1, 8, file_) != 8) {
      status_ = Status::IoError("write failed: " + path_);
    }
    Put64(kVersion);
    Put64(lo_);
    Put64(hi_);
    Put64(num_edges_);
    for (std::uint64_t off : offsets_) Put64(off);
    FlushBuffer();
  }
  if (std::fclose(file_) != 0 && status_.ok()) {
    status_ = Status::IoError("close failed: " + path_);
  }
  file_ = nullptr;
  obs::GetCounter("format.csr6.bytes_written")->Add(bytes_written_);
}

Csr6Reader::Csr6Reader(const std::string& path) {
  storage::FileReader reader;
  status_ = reader.Open(path);
  if (!status_.ok()) return;

  char magic[8];
  if (!reader.Read(magic, 8) ||
      std::memcmp(magic, Csr6Writer::kMagic, 8) != 0) {
    status_ = Status::Corruption("bad CSR6 magic: " + path);
    return;
  }
  std::uint64_t version, lo, hi, num_edges;
  TG_CHECK(reader.Read64(&version));
  if (version != Csr6Writer::kVersion) {
    status_ = Status::Corruption("unsupported CSR6 version");
    return;
  }
  TG_CHECK(reader.Read64(&lo));
  TG_CHECK(reader.Read64(&hi));
  TG_CHECK(reader.Read64(&num_edges));
  lo_ = lo;
  hi_ = hi;
  offsets_.resize(hi - lo + 1);
  for (std::uint64_t& off : offsets_) {
    TG_CHECK_MSG(reader.Read64(&off), "truncated CSR6 offsets");
  }
  TG_CHECK_MSG(offsets_.back() == num_edges, "CSR6 offsets/edge-count mismatch");
  edges_.resize(num_edges);
  for (VertexId& v : edges_) {
    TG_CHECK_MSG(reader.Read48(&v), "truncated CSR6 edges");
  }
}

}  // namespace tg::format
