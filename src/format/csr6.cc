#include "format/csr6.h"

#include <algorithm>
#include <cstring>

#include "format/resume_token.h"
#include "obs/metrics.h"
#include "storage/async_writer.h"
#include "storage/file_io.h"

namespace tg::format {

namespace {

void EncodeU64(std::uint64_t value, unsigned char* out) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
  }
}

std::uint64_t DecodeU64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[i]} << (8 * i);
  return v;
}

void AppendU64(std::vector<unsigned char>* out, std::uint64_t value) {
  unsigned char tmp[8];
  EncodeU64(value, tmp);
  out->insert(out->end(), tmp, tmp + 8);
}

}  // namespace

Csr6Writer::Csr6Writer(const std::string& path, VertexId lo, VertexId hi)
    : writer_(storage::MakeFileWriter()),
      path_(path),
      lo_(lo),
      hi_(hi),
      next_vertex_(lo),
      sidecar_next_(lo) {
  TG_CHECK(hi >= lo);
  offsets_.assign(hi - lo + 1, 0);
  if (!writer_->Open(path).ok()) return;
  // Reserve the header + offsets region; it is rewritten in Finish() once
  // the offsets are known, so edges can stream sequentially after it.
  std::vector<char> zeros(HeaderBytes(), 0);
  writer_->Append(zeros.data(), zeros.size());
}

Csr6Writer::Csr6Writer(const std::string& path, VertexId lo, VertexId hi,
                       const core::ResumeFrom& resume)
    : writer_(storage::MakeFileWriter()),
      path_(path),
      lo_(lo),
      hi_(hi),
      next_vertex_(lo),
      sidecar_next_(lo) {
  TG_CHECK(hi >= lo);
  resumable_ = true;
  offsets_.assign(hi - lo + 1, 0);
  std::uint64_t bytes = 0;
  std::uint64_t next = 0;
  std::uint64_t edges = 0;
  if (!TokenField(resume.state, "bytes", &bytes) ||
      !TokenField(resume.state, "next", &next) ||
      !TokenField(resume.state, "edges", &edges)) {
    status_ =
        Status::InvalidArgument("malformed CSR6 resume token: " + resume.state);
    return;
  }
  if (next < lo || next > hi || bytes != HeaderBytes() + 6 * edges) {
    status_ = Status::Corruption(
        "CSR6 resume token inconsistent with shard: " + resume.state);
    return;
  }
  // Rebuild the committed degree prefix from the sidecar. Entries past the
  // token's vertex — appended by a checkpoint whose journal record never
  // landed — and a torn final entry are simply ignored: the token decides
  // what is committed.
  const std::string sidecar_path = SidecarPath(path);
  std::FILE* side = std::fopen(sidecar_path.c_str(), "rb");
  if (side == nullptr) {
    status_ = Status::IoError("cannot open CSR6 sidecar: " + sidecar_path);
    return;
  }
  std::uint64_t degree_sum = 0;
  for (VertexId u = lo; u < next; ++u) {
    unsigned char entry[8];
    if (std::fread(entry, 1, 8, side) != 8) {
      status_ = Status::Corruption("CSR6 sidecar shorter than resume token: " +
                                   sidecar_path);
      std::fclose(side);
      return;
    }
    offsets_[u - lo + 1] = DecodeU64(entry);
    degree_sum += offsets_[u - lo + 1];
  }
  std::fclose(side);
  if (degree_sum != edges) {
    status_ = Status::Corruption(
        "CSR6 sidecar degrees do not sum to committed edges: " + sidecar_path);
    return;
  }
  if (!writer_->OpenForResume(path, bytes).ok()) return;
  // Trim uncommitted sidecar entries too, so this process appends from a
  // clean record boundary.
  sidecar_ = std::fopen(sidecar_path.c_str(), "r+b");
  if (sidecar_ == nullptr ||
      ::ftruncate(fileno(sidecar_),
                  static_cast<off_t>((next - lo) * 8)) != 0 ||
      std::fseek(sidecar_, 0, SEEK_END) != 0) {
    status_ = Status::IoError("cannot truncate CSR6 sidecar: " + sidecar_path);
    return;
  }
  next_vertex_ = next;
  sidecar_next_ = next;
  num_edges_ = edges;
}

Csr6Writer::~Csr6Writer() {
  if (!finished_) {
    if (resumable_) {
      // Interrupted mid-run: do NOT finalize — a partial shard with a valid
      // header would masquerade as complete. Flush raw bytes (a resuming
      // process truncates back to the last committed token) and close.
      writer_->Close();
    } else {
      Finish();
    }
  }
  if (sidecar_ != nullptr) {
    std::fclose(sidecar_);
    sidecar_ = nullptr;
  }
}

Status Csr6Writer::CommitState(std::string* token) {
  resumable_ = true;
  if (!status().ok()) return status();
  Status s = writer_->FlushToOs();
  if (!s.ok()) return s;
  const std::string sidecar_path = SidecarPath(path_);
  if (sidecar_ == nullptr) {
    sidecar_ = std::fopen(sidecar_path.c_str(), "wb");
    if (sidecar_ == nullptr) {
      status_ = Status::IoError("cannot open CSR6 sidecar: " + sidecar_path);
      return status_;
    }
  }
  for (VertexId u = sidecar_next_; u < next_vertex_; ++u) {
    unsigned char entry[8];
    EncodeU64(offsets_[u - lo_ + 1], entry);
    if (std::fwrite(entry, 1, 8, sidecar_) != 8) {
      status_ = Status::IoError("sidecar write failed: " + sidecar_path);
      return status_;
    }
  }
  if (std::fflush(sidecar_) != 0) {
    status_ = Status::IoError("sidecar flush failed: " + sidecar_path);
    return status_;
  }
  sidecar_next_ = next_vertex_;
  *token = "bytes=" + std::to_string(writer_->bytes_written()) +
           ",next=" + std::to_string(next_vertex_) +
           ",edges=" + std::to_string(num_edges_);
  return status();
}

void Csr6Writer::ConsumeScope(VertexId u, const VertexId* adj,
                              std::size_t n) {
  if (!status().ok()) return;  // dead disk: stop sorting and encoding too
  TG_CHECK_MSG(u >= next_vertex_ && u < hi_,
               "CSR6 scopes must arrive in increasing order within [lo, hi)");
  next_vertex_ = u + 1;
  offsets_[u - lo_ + 1] = n;  // degree for now; prefix-summed in Finish()
  sorted_.assign(adj, adj + n);
  std::sort(sorted_.begin(), sorted_.end());
  // One range check per scope (the max neighbor, free after the sort)
  // instead of one per Append48 in the hot loop.
  TG_CHECK_MSG(sorted_.empty() || sorted_.back() < (std::uint64_t{1} << 48),
               "CSR6 adjacency of vertex "
                   << u << " holds a value that does not fit in 6 bytes: "
                   << (sorted_.empty() ? 0 : sorted_.back()));
  for (VertexId v : sorted_) writer_->Append48(v);
  num_edges_ += n;
}

void Csr6Writer::Finish() {
  if (finished_) return;
  finished_ = true;
  if (!writer_->is_open()) return;  // construction failed; status() has why
  // Degrees -> offsets.
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  if (status().ok()) {
    std::vector<unsigned char> header;
    header.reserve(HeaderBytes());
    header.insert(header.end(), kMagic, kMagic + 8);
    AppendU64(&header, kVersion);
    AppendU64(&header, lo_);
    AppendU64(&header, hi_);
    AppendU64(&header, num_edges_);
    for (std::uint64_t off : offsets_) AppendU64(&header, off);
    writer_->RewriteAt(0, header.data(), header.size());
  }
  writer_->Close();
  obs::GetCounter("format.csr6.bytes_written")->Add(writer_->bytes_written());
}

Csr6Reader::Csr6Reader(const std::string& path) {
  storage::FileReader reader;
  status_ = reader.Open(path);
  if (!status_.ok()) return;

  char magic[8];
  if (!reader.Read(magic, 8) ||
      std::memcmp(magic, Csr6Writer::kMagic, 8) != 0) {
    status_ = Status::Corruption("bad CSR6 magic: " + path);
    return;
  }
  std::uint64_t version, lo, hi, num_edges;
  TG_CHECK(reader.Read64(&version));
  if (version != Csr6Writer::kVersion) {
    status_ = Status::Corruption("unsupported CSR6 version");
    return;
  }
  TG_CHECK(reader.Read64(&lo));
  TG_CHECK(reader.Read64(&hi));
  TG_CHECK(reader.Read64(&num_edges));
  lo_ = lo;
  hi_ = hi;
  offsets_.resize(hi - lo + 1);
  for (std::uint64_t& off : offsets_) {
    TG_CHECK_MSG(reader.Read64(&off), "truncated CSR6 offsets");
  }
  TG_CHECK_MSG(offsets_.back() == num_edges, "CSR6 offsets/edge-count mismatch");
  edges_.resize(num_edges);
  for (VertexId& v : edges_) {
    TG_CHECK_MSG(reader.Read48(&v), "truncated CSR6 edges");
  }
}

}  // namespace tg::format
