#include "format/csr6_mapped.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>

#include "format/csr6.h"

namespace tg::format {

namespace {
constexpr std::uint64_t kFixedHeaderBytes = 8 * 5;  // magic..num_edges
}

std::uint64_t Csr6MappedReader::FromLittleEndian64(std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    return v;
  } else {
    return __builtin_bswap64(v);
  }
}

std::uint64_t Csr6MappedReader::FromLittleEndian48(std::uint64_t v) {
  // The 6 payload bytes were memcpy'd into the low object bytes with the
  // rest zeroed, so the 64-bit swap is also the 48-bit one.
  return FromLittleEndian64(v);
}

Csr6MappedReader::Csr6MappedReader(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    status_ = Status::IoError("cannot open for read: " + path);
    return;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    status_ = Status::IoError("cannot stat: " + path);
    ::close(fd);
    return;
  }
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kFixedHeaderBytes) {
    status_ = Status::Corruption("CSR6 file shorter than its header: " + path);
    ::close(fd);
    return;
  }
  map_bytes_ = static_cast<std::size_t>(file_bytes);
  map_ = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    map_bytes_ = 0;
    status_ = Status::IoError("cannot mmap: " + path);
    return;
  }

  const unsigned char* base = static_cast<const unsigned char*>(map_);
  if (std::memcmp(base, Csr6Writer::kMagic, 8) != 0) {
    status_ = Status::Corruption("bad CSR6 magic: " + path);
    return;
  }
  const std::uint64_t version = LoadU64(base + 8);
  if (version != Csr6Writer::kVersion) {
    status_ = Status::Corruption("unsupported CSR6 version: " + path);
    return;
  }
  lo_ = LoadU64(base + 16);
  hi_ = LoadU64(base + 24);
  num_edges_ = LoadU64(base + 32);
  if (hi_ < lo_) {
    status_ = Status::Corruption("CSR6 vertex range inverted: " + path);
    return;
  }
  const std::uint64_t offsets_bytes = (hi_ - lo_ + 1) * 8;
  const std::uint64_t expected =
      kFixedHeaderBytes + offsets_bytes + 6 * num_edges_;
  if (file_bytes != expected) {
    status_ = Status::Corruption("CSR6 file size mismatch: " + path);
    return;
  }
  offsets_ = base + kFixedHeaderBytes;
  neighbors_ = offsets_ + offsets_bytes;
  if (EdgeOffset(hi_) != num_edges_) {
    status_ = Status::Corruption("CSR6 offsets/edge-count mismatch: " + path);
    offsets_ = nullptr;
    neighbors_ = nullptr;
    return;
  }
  // The query loads walk the arrays front to back; tell the kernel.
  ::madvise(map_, map_bytes_, MADV_SEQUENTIAL);
}

Csr6MappedReader::~Csr6MappedReader() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

void Csr6MappedReader::CopyNeighbors(VertexId u, VertexId* out) const {
  const std::uint64_t begin = EdgeOffset(u);
  const std::uint64_t end = EdgeOffset(u + 1);
  const unsigned char* p = neighbors_ + 6 * begin;
  for (std::uint64_t i = begin; i < end; ++i, p += 6) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 6);
    *out++ = FromLittleEndian48(v);
  }
}

void Csr6MappedReader::CopyAllNeighbors(VertexId* out) const {
  const unsigned char* p = neighbors_;
  for (std::uint64_t i = 0; i < num_edges_; ++i, p += 6) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 6);
    out[i] = FromLittleEndian48(v);
  }
}

}  // namespace tg::format
