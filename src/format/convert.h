#ifndef TRILLIONG_FORMAT_CONVERT_H_
#define TRILLIONG_FORMAT_CONVERT_H_

#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace tg::format {

/// Offline conversions between the three supported graph formats
/// (Section 5). Generators already write any format directly; these cover
/// the downstream-tooling cases (a TSV from elsewhere, shard merging).

/// TSV -> ADJ6: groups edges by source via external sort (bounded memory),
/// so arbitrarily large inputs convert on one machine.
struct ConvertOptions {
  std::string temp_dir = ".";
  std::size_t sort_buffer_items = 1 << 20;
};
Status TsvToAdj6(const std::string& tsv_path, const std::string& adj6_path,
                 const ConvertOptions& options = {});

/// ADJ6 -> TSV: streaming, constant memory.
Status Adj6ToTsv(const std::string& adj6_path, const std::string& tsv_path);

/// Merges per-worker CSR6 shards (which tile [0, |V|)) into one whole-graph
/// CSR6 file, streaming shard by shard.
Status MergeCsr6Shards(const std::vector<std::string>& shard_paths,
                       const std::string& out_path);

/// ADJ6 -> CSR6 (whole file): records may arrive in any order; sorted and
/// assembled in memory.
Status Adj6ToCsr6(const std::string& adj6_path, const std::string& csr6_path,
                  VertexId num_vertices);

}  // namespace tg::format

#endif  // TRILLIONG_FORMAT_CONVERT_H_
