#include "format/convert.h"

#include <algorithm>
#include <memory>
#include <map>
#include <vector>

#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "storage/external_sorter.h"

namespace tg::format {

Status TsvToAdj6(const std::string& tsv_path, const std::string& adj6_path,
                 const ConvertOptions& options) {
  TsvReader reader(tsv_path);
  if (!reader.status().ok()) return reader.status();

  storage::ExternalSorter<Edge> sorter(
      {options.temp_dir, options.sort_buffer_items, "tsv2adj6"});
  Edge e;
  while (reader.Next(&e)) sorter.Add(e);
  if (!reader.status().ok()) return reader.status();

  Adj6Writer writer(adj6_path);
  VertexId current = 0;
  bool has_current = false;
  std::vector<VertexId> adj;
  sorter.Merge(/*dedup=*/false, [&](const Edge& edge) {
    if (!has_current || edge.src != current) {
      if (has_current) writer.ConsumeScope(current, adj.data(), adj.size());
      current = edge.src;
      has_current = true;
      adj.clear();
    }
    adj.push_back(edge.dst);
  });
  if (has_current) writer.ConsumeScope(current, adj.data(), adj.size());
  writer.Finish();
  return writer.status();
}

Status Adj6ToTsv(const std::string& adj6_path, const std::string& tsv_path) {
  TsvWriter writer(tsv_path);
  Status status = Adj6Reader::ForEach(
      adj6_path, [&](VertexId u, const std::vector<VertexId>& adj) {
        writer.ConsumeScope(u, adj.data(), adj.size());
      });
  writer.Finish();
  if (!status.ok()) return status;
  return writer.status();
}

Status MergeCsr6Shards(const std::vector<std::string>& shard_paths,
                       const std::string& out_path) {
  // Open all shards, order by range, verify tiling.
  std::vector<std::unique_ptr<Csr6Reader>> shards;
  for (const std::string& path : shard_paths) {
    auto reader = std::make_unique<Csr6Reader>(path);
    if (!reader->status().ok()) return reader->status();
    shards.push_back(std::move(reader));
  }
  std::sort(shards.begin(), shards.end(), [](const auto& a, const auto& b) {
    return a->lo() < b->lo();
  });
  VertexId expected = 0;
  for (const auto& shard : shards) {
    if (shard->lo() != expected) {
      return Status::InvalidArgument("CSR6 shards do not tile the range");
    }
    expected = shard->hi();
  }

  Csr6Writer writer(out_path, 0, expected);
  for (const auto& shard : shards) {
    for (VertexId u = shard->lo(); u < shard->hi(); ++u) {
      auto nbrs = shard->Neighbors(u);
      if (!nbrs.empty()) {
        writer.ConsumeScope(u, nbrs.data(), nbrs.size());
      }
    }
  }
  writer.Finish();
  return writer.status();
}

Status Adj6ToCsr6(const std::string& adj6_path, const std::string& csr6_path,
                  VertexId num_vertices) {
  std::map<VertexId, std::vector<VertexId>> records;
  Status status = Adj6Reader::ForEach(
      adj6_path, [&](VertexId u, const std::vector<VertexId>& adj) {
        auto& slot = records[u];
        slot.insert(slot.end(), adj.begin(), adj.end());
      });
  if (!status.ok()) return status;

  Csr6Writer writer(csr6_path, 0, num_vertices);
  for (const auto& [u, adj] : records) {
    if (u >= num_vertices) {
      return Status::InvalidArgument("vertex id beyond num_vertices");
    }
    writer.ConsumeScope(u, adj.data(), adj.size());
  }
  writer.Finish();
  return writer.status();
}

}  // namespace tg::format
