#include "format/tsv.h"

#include <cinttypes>
#include <cstring>

#include "format/resume_token.h"
#include "obs/metrics.h"

namespace tg::format {

namespace {

/// Fast unsigned decimal formatting into `buf`; returns length.
int FormatU64(std::uint64_t value, char* buf) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (int i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

}  // namespace

TsvWriter::TsvWriter(const std::string& path, bool transposed)
    : transposed_(transposed) {
  writer_.Open(path);
}

TsvWriter::TsvWriter(const std::string& path, bool transposed,
                     const core::ResumeFrom& resume)
    : transposed_(transposed) {
  std::uint64_t bytes = 0;
  if (!TokenField(resume.state, "bytes", &bytes)) {
    // Force the writer into a sticky error state (nothing is open).
    writer_.OpenForResume("", 0);
    return;
  }
  writer_.OpenForResume(path, bytes);
}

Status TsvWriter::CommitState(std::string* token) {
  Status s = writer_.FlushToOs();
  if (!s.ok()) return s;
  *token = "bytes=" + std::to_string(writer_.bytes_written());
  return s;
}

void TsvWriter::WriteEdge(VertexId src, VertexId dst) {
  if (!writer_.status().ok()) return;  // dead disk: stop formatting too
  char line[44];
  int n = FormatU64(src, line);
  line[n++] = '\t';
  n += FormatU64(dst, line + n);
  line[n++] = '\n';
  writer_.Append(line, n);
}

void TsvWriter::ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) {
  if (!writer_.status().ok()) return;
  if (transposed_) {
    for (std::size_t i = 0; i < n; ++i) WriteEdge(adj[i], u);
  } else {
    for (std::size_t i = 0; i < n; ++i) WriteEdge(u, adj[i]);
  }
}

void TsvWriter::Finish() {
  writer_.Close();
  obs::GetCounter("format.tsv.bytes_written")->Add(writer_.bytes_written());
}

TsvReader::TsvReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for read: " + path);
  }
}

TsvReader::~TsvReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool TsvReader::Next(Edge* edge) {
  if (file_ == nullptr) return false;
  std::uint64_t src, dst;
  int got = std::fscanf(file_, "%" SCNu64 " %" SCNu64, &src, &dst);
  if (got == EOF) return false;
  if (got != 2) {
    status_ = Status::Corruption("malformed TSV line");
    return false;
  }
  edge->src = src;
  edge->dst = dst;
  return true;
}

std::vector<Edge> TsvReader::ReadAll(const std::string& path) {
  TsvReader reader(path);
  std::vector<Edge> edges;
  Edge e;
  while (reader.Next(&e)) edges.push_back(e);
  return edges;
}

}  // namespace tg::format
