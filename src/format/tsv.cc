#include "format/tsv.h"

#include <bit>
#include <cstring>

#include "format/resume_token.h"
#include "obs/metrics.h"
#include "storage/async_writer.h"

namespace tg::format {

namespace {

// "00".."99" packed back to back: one memcpy per two digits.
constexpr char kDigitPairs[] =
    "00010203040506070809"
    "10111213141516171819"
    "20212223242526272829"
    "30313233343536373839"
    "40414243444546474849"
    "50515253545556575859"
    "60616263646566676869"
    "70717273747576777879"
    "80818283848586878889"
    "90919293949596979899";

constexpr std::uint64_t kPow10[20] = {
    1ULL,
    10ULL,
    100ULL,
    1000ULL,
    10000ULL,
    100000ULL,
    1000000ULL,
    10000000ULL,
    100000000ULL,
    1000000000ULL,
    10000000000ULL,
    100000000000ULL,
    1000000000000ULL,
    10000000000000ULL,
    100000000000000ULL,
    1000000000000000ULL,
    10000000000000000ULL,
    100000000000000000ULL,
    1000000000000000000ULL,
    10000000000000000000ULL,
};

/// Branchless decimal width: log10 approximated from the bit width
/// ((bits * 1233) >> 12 ~ bits * log10(2)), corrected by one table compare.
/// `v | 1` folds the v == 0 case in — setting the low bit can never cross a
/// power of ten (they all end in 0, so v and v|1 share a decade).
inline int DigitCount(std::uint64_t v) {
  const std::uint64_t u = v | 1;
  const int approx = (std::bit_width(u) * 1233) >> 12;
  return approx + static_cast<int>(u >= kPow10[approx]);
}

/// Writes exactly eight digits of `v` (v < 1e8) at `buf`, zero-padded. The
/// four pair lookups hang off a shallow divide tree, so they retire mostly
/// in parallel instead of serializing like a digit-at-a-time chain.
inline void Format8(std::uint32_t v, char* buf) {
  const std::uint32_t hi = v / 10000;
  const std::uint32_t lo = v % 10000;
  std::memcpy(buf + 0, kDigitPairs + 2 * (hi / 100), 2);
  std::memcpy(buf + 2, kDigitPairs + 2 * (hi % 100), 2);
  std::memcpy(buf + 4, kDigitPairs + 2 * (lo / 100), 2);
  std::memcpy(buf + 6, kDigitPairs + 2 * (lo % 100), 2);
}

/// Fast unsigned decimal formatting into `buf`; returns length. Peels
/// zero-padded 8-digit chunks off the low end first — each chunk's divides
/// form an independent tree — leaving at most one short serial pair loop for
/// the head. A 15-digit vertex id costs one divide by 1e8 on the critical
/// path instead of seven chained divides by 100.
int FormatU64(std::uint64_t value, char* buf) {
  const int n = DigitCount(value);
  char* end = buf + n;
  while (value >= 100000000) {
    end -= 8;
    Format8(static_cast<std::uint32_t>(value % 100000000), end);
    value /= 100000000;
  }
  char* p = end;
  auto head = static_cast<std::uint32_t>(value);
  while (head >= 100) {
    const std::uint32_t rem = head % 100;
    head /= 100;
    p -= 2;
    std::memcpy(p, kDigitPairs + 2 * rem, 2);
  }
  if (head >= 10) {
    p -= 2;
    std::memcpy(p, kDigitPairs + 2 * head, 2);
  } else {
    *--p = static_cast<char>('0' + head);
  }
  return n;
}

}  // namespace

TsvWriter::TsvWriter(const std::string& path, bool transposed)
    : writer_(storage::MakeFileWriter()), transposed_(transposed) {
  writer_->Open(path);
}

TsvWriter::TsvWriter(const std::string& path, bool transposed,
                     const core::ResumeFrom& resume)
    : writer_(storage::MakeFileWriter()), transposed_(transposed) {
  std::uint64_t bytes = 0;
  if (!TokenField(resume.state, "bytes", &bytes)) {
    // Force the writer into a sticky error state (nothing is open).
    writer_->OpenForResume("", 0);
    return;
  }
  writer_->OpenForResume(path, bytes);
}

Status TsvWriter::CommitState(std::string* token) {
  Status s = writer_->FlushToOs();
  if (!s.ok()) return s;
  *token = "bytes=" + std::to_string(writer_->bytes_written());
  return s;
}

void TsvWriter::WriteEdge(VertexId src, VertexId dst) {
  // Format straight into the writer's staging buffer — one copy total. A
  // nullptr reservation is the sticky-error signal (dead disk: stop
  // formatting too). 44 bytes covers two 20-digit values plus "\t\n".
  char* p = writer_->Reserve(44);
  if (p == nullptr) return;
  char* q = p + FormatU64(src, p);
  *q++ = '\t';
  q += FormatU64(dst, q);
  *q++ = '\n';
  writer_->CommitReserved(44, static_cast<std::size_t>(q - p));
}

void TsvWriter::ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) {
  if (!writer_->status().ok()) return;
  if (transposed_) {
    for (std::size_t i = 0; i < n; ++i) WriteEdge(adj[i], u);
  } else {
    for (std::size_t i = 0; i < n; ++i) WriteEdge(u, adj[i]);
  }
}

void TsvWriter::Finish() {
  writer_->Close();
  obs::GetCounter("format.tsv.bytes_written")->Add(writer_->bytes_written());
}

TsvReader::TsvReader(const std::string& path, std::size_t buffer_bytes)
    : path_(path), buffer_(buffer_bytes == 0 ? 1 : buffer_bytes) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for read: " + path);
  }
}

TsvReader::~TsvReader() {
  if (file_ != nullptr) std::fclose(file_);
}

int TsvReader::PeekChar() {
  if (pos_ == len_) {
    len_ = std::fread(buffer_.data(), 1, buffer_.size(), file_);
    pos_ = 0;
    if (len_ == 0) return -1;
  }
  return static_cast<unsigned char>(buffer_[pos_]);
}

bool TsvReader::Next(Edge* edge) {
  if (file_ == nullptr || !status_.ok()) return false;
  std::uint64_t values[2];
  for (int field = 0; field < 2; ++field) {
    int c;
    for (;;) {  // skip whitespace (fscanf-compatible: newlines included)
      c = PeekChar();
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r' && c != '\v' &&
          c != '\f') {
        break;
      }
      ++pos_;
    }
    if (c < 0) {
      if (field == 0) return false;  // clean EOF between records
      status_ = Status::Corruption("malformed TSV line " +
                                   std::to_string(line_) + " in " + path_ +
                                   ": file ends after an unpaired value");
      return false;
    }
    if (c < '0' || c > '9') {
      status_ = Status::Corruption(
          "malformed TSV line " + std::to_string(line_) + " in " + path_ +
          ": expected a decimal vertex id, got '" +
          std::string(1, static_cast<char>(c)) + "'");
      return false;
    }
    std::uint64_t value = 0;
    while (c >= '0' && c <= '9') {
      // value < 2^48 here, so value * 10 + 9 < 2^52: no u64 wrap possible.
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value >= (std::uint64_t{1} << 48)) {
        status_ = Status::Corruption(
            "TSV line " + std::to_string(line_) + " in " + path_ +
            ": vertex id does not fit in 6 bytes (>= 2^48)");
        return false;
      }
      ++pos_;
      c = PeekChar();
    }
    values[field] = value;
  }
  edge->src = values[0];
  edge->dst = values[1];
  return true;
}

std::vector<Edge> TsvReader::ReadAll(const std::string& path) {
  TsvReader reader(path);
  std::vector<Edge> edges;
  Edge e;
  while (reader.Next(&e)) edges.push_back(e);
  return edges;
}

}  // namespace tg::format
