#include "format/adj6.h"

#include "format/resume_token.h"
#include "obs/metrics.h"
#include "storage/async_writer.h"

namespace tg::format {

Adj6Writer::Adj6Writer(const std::string& path)
    : writer_(storage::MakeFileWriter()) {
  writer_->Open(path);
}

Adj6Writer::Adj6Writer(const std::string& path,
                       const core::ResumeFrom& resume)
    : writer_(storage::MakeFileWriter()) {
  std::uint64_t bytes = 0;
  if (!TokenField(resume.state, "bytes", &bytes)) {
    writer_->OpenForResume("", 0);  // sticky error: malformed token
    return;
  }
  writer_->OpenForResume(path, bytes);
}

Status Adj6Writer::CommitState(std::string* token) {
  Status s = writer_->FlushToOs();
  if (!s.ok()) return s;
  *token = "bytes=" + std::to_string(writer_->bytes_written());
  return s;
}

void Adj6Writer::ConsumeScope(VertexId u, const VertexId* adj,
                              std::size_t n) {
  if (n == 0 || !writer_->status().ok()) return;
  writer_->Append48(u);
  writer_->Append48(n);
  VertexId mask = u | n;
  for (std::size_t i = 0; i < n; ++i) {
    mask |= adj[i];
    writer_->Append48(adj[i]);
  }
  // One range check per scope instead of one per Append48 — the OR above is
  // free next to the append, and an out-of-range id is fatal either way.
  TG_CHECK_MSG(mask < (std::uint64_t{1} << 48),
               "ADJ6 record for vertex " << u
                                         << " holds a value that does not fit "
                                            "in 6 bytes");
}

void Adj6Writer::Finish() {
  writer_->Close();
  obs::GetCounter("format.adj6.bytes_written")->Add(writer_->bytes_written());
}

Adj6Reader::Adj6Reader(const std::string& path) {
  status_ = reader_.Open(path);
}

bool Adj6Reader::Next(VertexId* u, std::vector<VertexId>* adj) {
  if (!status_.ok()) return false;
  std::uint64_t vertex, degree;
  if (!reader_.Read48(&vertex)) return false;
  TG_CHECK_MSG(reader_.Read48(&degree), "truncated ADJ6 record header");
  adj->resize(degree);
  for (std::uint64_t i = 0; i < degree; ++i) {
    TG_CHECK_MSG(reader_.Read48(&(*adj)[i]), "truncated ADJ6 adjacency");
  }
  *u = vertex;
  return true;
}

Status Adj6Reader::ForEach(
    const std::string& path,
    const std::function<void(VertexId, const std::vector<VertexId>&)>& fn) {
  Adj6Reader reader(path);
  if (!reader.status().ok()) return reader.status();
  VertexId u;
  std::vector<VertexId> adj;
  while (reader.Next(&u, &adj)) fn(u, adj);
  return reader.status();
}

}  // namespace tg::format
