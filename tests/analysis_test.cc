#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/degree_dist.h"
#include "core/trilliong.h"
#include "rng/random.h"

namespace tg::analysis {
namespace {

TEST(DegreeHistogramTest, BasicCounts) {
  DegreeHistogram h;
  h.AddVertex(1);
  h.AddVertex(1);
  h.AddVertex(4);
  EXPECT_EQ(h.NumVertices(), 3u);
  EXPECT_EQ(h.NumEdges(), 6u);
  EXPECT_EQ(h.MaxDegree(), 4u);
  EXPECT_DOUBLE_EQ(h.MeanDegree(), 2.0);
}

TEST(DegreeHistogramTest, FromDegreesSkipsZerosByDefault) {
  std::vector<std::uint32_t> degrees = {0, 0, 3, 1, 0, 2};
  DegreeHistogram h = DegreeHistogram::FromDegrees(degrees);
  EXPECT_EQ(h.NumVertices(), 3u);
  DegreeHistogram with_zero =
      DegreeHistogram::FromDegrees(degrees, /*include_zero=*/true);
  EXPECT_EQ(with_zero.NumVertices(), 6u);
}

TEST(DegreeHistogramTest, StddevMatchesClosedForm) {
  DegreeHistogram h;
  for (int i = 0; i < 100; ++i) h.AddVertex(10);
  EXPECT_DOUBLE_EQ(h.StddevDegree(), 0.0);
  h.AddVertex(110);  // one outlier
  double mean = h.MeanDegree();
  double var = (100 * (10 - mean) * (10 - mean) +
                (110 - mean) * (110 - mean)) /
               101.0;
  EXPECT_NEAR(h.StddevDegree(), std::sqrt(var), 1e-9);
}

TEST(DegreeHistogramTest, ZipfRankSlopeOnSyntheticPowerLaw) {
  // Construct an exact Zipf rank-degree law: degree(rank) = C * rank^s.
  DegreeHistogram h;
  const double slope = -1.5;
  for (std::uint64_t rank = 1; rank <= 100000; ++rank) {
    auto degree = static_cast<std::uint64_t>(
        std::max(1.0, std::round(1e6 * std::pow(rank, slope))));
    h.AddVertex(degree);
  }
  // The estimator excludes the integer-rounding degree-1 plateau, so the
  // fitted head slope matches.
  EXPECT_NEAR(h.ZipfRankSlope(), slope, 0.12);
}

TEST(DegreeHistogramTest, LogLogSlopeOnSyntheticHistogram) {
  // count(d) = round(2^20 * d^-2): log-log slope -2.
  DegreeHistogram h;
  for (std::uint64_t d = 1; d <= 1024; ++d) {
    auto count = static_cast<std::uint64_t>(
        std::round(std::pow(2.0, 20) / (static_cast<double>(d) * d)));
    for (std::uint64_t i = 0; i < count; ++i) h.AddVertex(d);
  }
  EXPECT_NEAR(h.LogLogSlope(), -2.0, 0.1);
}

TEST(DegreeHistogramTest, LogBinnedPreservesMassAndMonotoneX) {
  DegreeHistogram h;
  rng::Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.AddVertex(1 + rng.NextBounded(1000));
  auto bins = h.LogBinned();
  ASSERT_GT(bins.size(), 5u);
  for (std::size_t i = 1; i < bins.size(); ++i) {
    EXPECT_GT(bins[i].degree, bins[i - 1].degree);
  }
}

TEST(DegreeHistogramTest, KsDistanceProperties) {
  DegreeHistogram a, b;
  for (int i = 0; i < 1000; ++i) {
    a.AddVertex(1 + i % 10);
    b.AddVertex(1 + i % 10);
  }
  EXPECT_DOUBLE_EQ(DegreeHistogram::KsDistance(a, b), 0.0);

  DegreeHistogram c;
  for (int i = 0; i < 1000; ++i) c.AddVertex(100);
  // Disjoint supports: distance 1.
  DegreeHistogram d;
  for (int i = 0; i < 1000; ++i) d.AddVertex(1);
  EXPECT_DOUBLE_EQ(DegreeHistogram::KsDistance(c, d), 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(DegreeHistogram::KsDistance(a, c),
                   DegreeHistogram::KsDistance(c, a));
}

TEST(DegreeHistogramTest, KsDistanceDetectsShift) {
  rng::Rng rng(9);
  DegreeHistogram a, b;
  for (int i = 0; i < 20000; ++i) {
    a.AddVertex(1 + rng.NextBounded(100));
    b.AddVertex(51 + rng.NextBounded(100));  // shifted by 50
  }
  EXPECT_GT(DegreeHistogram::KsDistance(a, b), 0.3);
}

TEST(DegreeHistogramTest, OscillationScoreSmoothVsOscillating) {
  // Smooth: count(d) = 2^20 / d^2 exactly.
  DegreeHistogram smooth;
  for (std::uint64_t d = 1; d <= 200; ++d) {
    auto count =
        static_cast<std::uint64_t>(std::pow(2.0, 20) / (double(d) * d));
    if (count > 0) smooth.counts();  // no-op; use AddVertex below
    for (std::uint64_t i = 0; i < count; ++i) smooth.AddVertex(d);
  }
  // Oscillating: same envelope, alternating 2x / 0.5x.
  DegreeHistogram wavy;
  for (std::uint64_t d = 1; d <= 200; ++d) {
    double base = std::pow(2.0, 20) / (double(d) * d);
    double factor = (d % 2 == 0) ? 2.0 : 0.5;
    auto count = static_cast<std::uint64_t>(base * factor);
    for (std::uint64_t i = 0; i < count; ++i) wavy.AddVertex(d);
  }
  EXPECT_LT(smooth.OscillationScore(), 0.1);
  EXPECT_GT(wavy.OscillationScore(), 1.0);
  EXPECT_GT(wavy.OscillationScore(), 5 * smooth.OscillationScore());
}

TEST(DegreeSinkTest, AccumulatesBothDirections) {
  DegreeSink sink(8);
  std::vector<VertexId> adj1 = {1, 2, 3};
  std::vector<VertexId> adj2 = {1};
  sink.ConsumeScope(0, adj1.data(), adj1.size());
  sink.ConsumeScope(5, adj2.data(), adj2.size());
  EXPECT_EQ(sink.out_degrees()[0], 3u);
  EXPECT_EQ(sink.out_degrees()[5], 1u);
  EXPECT_EQ(sink.in_degrees()[1], 2u);
  EXPECT_EQ(sink.in_degrees()[2], 1u);
  EXPECT_EQ(sink.OutHistogram().NumEdges(), 4u);
  EXPECT_EQ(sink.InHistogram().NumEdges(), 4u);
}

TEST(DegreeSinkTest, TrillionGGraph500SlopeIsNearTheory) {
  // End-to-end check of Lemma 6 / Table 3: the popcount-class slope of the
  // generated out-degrees equals log2(c+d) - log2(a+b) = -1.662 for the
  // Graph500 parameters.
  core::TrillionGConfig config;
  config.scale = 16;
  config.edge_factor = 16;
  DegreeSink sink(config.NumVertices());
  core::GenerateToSink(config, &sink);
  EXPECT_NEAR(PopcountClassSlope(sink.out_degrees()), -1.662, 0.1);
  // The seed is symmetric, so in-degrees follow the same law; per-scope
  // dedup clips the head columns slightly, so the tolerance is wider.
  EXPECT_NEAR(PopcountClassSlope(sink.in_degrees()), -1.662, 0.2);
}

TEST(PopcountClassSlopeTest, ExactOnSyntheticClassMeans) {
  // degrees[v] = 1024 * 2^(-1.5 * popcount(v)) exactly.
  std::vector<std::uint32_t> degrees(1 << 12);
  for (std::uint64_t v = 0; v < degrees.size(); ++v) {
    degrees[v] = static_cast<std::uint32_t>(
        std::round(1024.0 * std::pow(2.0, -1.5 * std::popcount(v))));
  }
  EXPECT_NEAR(PopcountClassSlope(degrees), -1.5, 0.05);
}

TEST(PopcountClassSlopeTest, DegenerateInputs) {
  EXPECT_EQ(PopcountClassSlope({}), 0.0);
  std::vector<std::uint32_t> flat(1024, 5);
  EXPECT_NEAR(PopcountClassSlope(flat), 0.0, 1e-9);
}

TEST(DegreeHistogramTest, ToSeriesStringFormat) {
  DegreeHistogram h;
  h.AddVertex(1);
  h.AddVertex(2);
  std::string s = h.ToSeriesString();
  EXPECT_NE(s.find('\t'), std::string::npos);
  EXPECT_NE(s.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace tg::analysis
