#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/run_report.h"
#include "rng/random.h"
#include "util/common.h"
#include "util/flags.h"
#include "util/flat_set64.h"
#include "util/json.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace tg {
namespace {

TEST(FlatSet64Test, InsertAndContains) {
  FlatSet64 set;
  EXPECT_TRUE(set.Insert(1));
  EXPECT_TRUE(set.Insert(2));
  EXPECT_FALSE(set.Insert(1));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_TRUE(set.Contains(2));
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlatSet64Test, ZeroIsAValidKey) {
  FlatSet64 set;
  EXPECT_TRUE(set.Insert(0));
  EXPECT_FALSE(set.Insert(0));
  EXPECT_TRUE(set.Contains(0));
}

TEST(FlatSet64Test, GrowsBeyondInitialCapacity) {
  FlatSet64 set(4);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.Insert(i * 2654435761ULL));
  }
  EXPECT_EQ(set.size(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.Contains(i * 2654435761ULL));
  }
}

TEST(FlatSet64Test, MatchesStdSetUnderRandomWorkload) {
  FlatSet64 set;
  std::set<std::uint64_t> reference;
  rng::Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t key = rng.NextBounded(10000);
    EXPECT_EQ(set.Insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  std::size_t visited = 0;
  set.ForEach([&](std::uint64_t key) {
    EXPECT_TRUE(reference.count(key));
    ++visited;
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatSet64Test, ResetReusesStorage) {
  FlatSet64 set(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) set.Insert(i);
  set.Reset(10);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(5));
  EXPECT_TRUE(set.Insert(5));
}

TEST(FlatSet64Test, MemoryBytesTracksCapacity) {
  FlatSet64 set(100);
  std::size_t initial = set.MemoryBytes();
  EXPECT_GE(initial, 200 * sizeof(std::uint64_t));  // >= 2x load headroom
  for (std::uint64_t i = 0; i < 100000; ++i) set.Insert(i);
  EXPECT_GT(set.MemoryBytes(), initial);
}

TEST(MemoryBudgetTest, TracksUsageAndPeak) {
  MemoryBudget budget;
  budget.Allocate(100);
  budget.Allocate(50);
  EXPECT_EQ(budget.used_bytes(), 150u);
  EXPECT_EQ(budget.peak_bytes(), 150u);
  budget.Release(120);
  EXPECT_EQ(budget.used_bytes(), 30u);
  EXPECT_EQ(budget.peak_bytes(), 150u);
}

TEST(MemoryBudgetTest, ThrowsOomWhenLimitExceeded) {
  MemoryBudget budget(1000);
  budget.Allocate(900);
  EXPECT_THROW(budget.Allocate(200), OomError);
  // Failed allocation must not leak into the accounting.
  EXPECT_EQ(budget.used_bytes(), 900u);
  budget.Release(900);
  budget.Allocate(1000);  // exactly at the limit is fine
}

TEST(MemoryBudgetTest, ResizeAdjustsInBothDirections) {
  MemoryBudget budget(1000);
  budget.Allocate(500);
  budget.Resize(500, 800);
  EXPECT_EQ(budget.used_bytes(), 800u);
  budget.Resize(800, 100);
  EXPECT_EQ(budget.used_bytes(), 100u);
}

TEST(ScopedAllocationTest, ReleasesOnDestruction) {
  MemoryBudget budget;
  {
    ScopedAllocation alloc(&budget, 256);
    EXPECT_EQ(budget.used_bytes(), 256u);
    alloc.ResizeTo(512);
    EXPECT_EQ(budget.used_bytes(), 512u);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 512u);
}

TEST(ScopedAllocationTest, NullBudgetIsNoop) {
  ScopedAllocation alloc(nullptr, 1024);
  alloc.ResizeTo(2048);
  EXPECT_EQ(alloc.bytes(), 2048u);
}

TEST(MemoryBudgetTest, TagsAttributeUsedAndPeak) {
  MemoryBudget budget;
  MemoryBudget::TagStats* dedup = budget.Tag("core.scope_dedup");
  MemoryBudget::TagStats* shuffle = budget.Tag("cluster.shuffle_buf");
  EXPECT_EQ(budget.Tag("core.scope_dedup"), dedup);  // interned, stable
  budget.Allocate(100, dedup);
  budget.Allocate(300, shuffle);
  budget.Release(50, dedup);
  EXPECT_EQ(dedup->used.load(), 50u);
  EXPECT_EQ(dedup->peak.load(), 100u);
  EXPECT_EQ(shuffle->used.load(), 300u);
  EXPECT_EQ(budget.used_bytes(), 350u);

  std::vector<OomReport::TagUsage> breakdown = budget.TagBreakdown();
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown[0].tag, "cluster.shuffle_buf");
  EXPECT_EQ(breakdown[0].used_bytes, 300u);
  EXPECT_EQ(breakdown[1].tag, "core.scope_dedup");
  EXPECT_EQ(breakdown[1].peak_bytes, 100u);
}

TEST(MemoryBudgetTest, OomErrorCarriesForensicReport) {
  MemoryBudget budget(1000, /*machine=*/3);
  budget.Allocate(600, budget.Tag("baseline.rmat.edge_set"));
  try {
    budget.Allocate(500, budget.Tag("cluster.shuffle_buf"));
    FAIL() << "expected OomError";
  } catch (const OomError& e) {
    const OomReport& report = e.report();
    EXPECT_EQ(report.machine, 3);
    EXPECT_EQ(report.tag, "cluster.shuffle_buf");
    EXPECT_EQ(report.requested_bytes, 500u);
    EXPECT_EQ(report.used_bytes, 600u);
    EXPECT_EQ(report.limit_bytes, 1000u);
    ASSERT_EQ(report.breakdown.size(), 2u);
    EXPECT_EQ(report.breakdown[0].tag, "baseline.rmat.edge_set");
    EXPECT_EQ(report.breakdown[0].used_bytes, 600u);
    // what() names machine and tag for bare catch sites.
    EXPECT_NE(std::string(e.what()).find("machine 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cluster.shuffle_buf"),
              std::string::npos);
  }
  // Failed allocation must not leak into total or per-tag accounting.
  EXPECT_EQ(budget.used_bytes(), 600u);
  EXPECT_EQ(budget.Tag("cluster.shuffle_buf")->used.load(), 0u);
}

TEST(MemoryBudgetTest, ReleaseAllZerosUsedAndKeepsPeaks) {
  MemoryBudget budget;
  MemoryBudget::TagStats* tag = budget.Tag("cluster.shuffle_buf");
  budget.Allocate(512, tag);
  budget.ReleaseAll();
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(tag->used.load(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 512u);
  EXPECT_EQ(tag->peak.load(), 512u);
}

TEST(MemoryBudgetTest, ForEachBudgetSeesLiveBudgets) {
  MemoryBudget budget(0, /*machine=*/7);
  budget.Allocate(123);
  bool seen = false;
  MemoryBudget::ForEachBudget([&](const MemoryBudget& b) {
    if (&b == &budget) {
      seen = true;
      EXPECT_EQ(b.machine(), 7);
      EXPECT_EQ(b.used_bytes(), 123u);
    }
  });
  EXPECT_TRUE(seen);
}

#ifndef NDEBUG
TEST(MemoryBudgetDeathTest, ReleaseUnderflowDiesInDebugBuilds) {
  EXPECT_DEATH(
      {
        MemoryBudget budget;
        budget.Allocate(10);
        budget.Release(20);
      },
      "release underflow");
}
#else
TEST(MemoryBudgetTest, ReleaseUnderflowClampsToZeroInReleaseBuilds) {
  MemoryBudget budget;
  MemoryBudget::TagStats* tag = budget.Tag("t");
  budget.Allocate(10, tag);
  budget.Release(20, tag);  // caller bug: clamps instead of wrapping to 2^64
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(tag->used.load(), 0u);
  budget.Allocate(5, tag);  // accounting still usable afterwards
  EXPECT_EQ(budget.used_bytes(), 5u);
}
#endif

TEST(MemoryBudgetTest, ConcurrentAllocationsTrackPeakExactly) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1 << 16;
  MemoryBudget budget;
  MemoryBudget::TagStats* tag = budget.Tag("test.concurrent");
  std::atomic<int> ready{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      budget.Allocate(kPerThread, tag);
    });
  }
  for (std::thread& t : pool) t.join();
  // All threads held their registration simultaneously at join time, so the
  // peak must reflect the full sum (fetch_add returns the exact high-water).
  EXPECT_EQ(budget.used_bytes(), kThreads * kPerThread);
  EXPECT_EQ(budget.peak_bytes(), kThreads * kPerThread);
  EXPECT_EQ(tag->peak.load(), kThreads * kPerThread);
  budget.Release(kThreads * kPerThread, tag);
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.peak_bytes(), kThreads * kPerThread);
}

TEST(ScopedAllocationTest, FailedGrowKeepsRegistrationConsistent) {
  MemoryBudget budget(1000);
  ScopedAllocation alloc(&budget, 400, "test.buffer");
  EXPECT_THROW(alloc.ResizeTo(2000), OomError);
  // The failed grow left both the scope and the budget at the old size...
  EXPECT_EQ(alloc.bytes(), 400u);
  EXPECT_EQ(budget.used_bytes(), 400u);
  // ...so shrinking and destruction stay balanced.
  alloc.ResizeTo(100);
  EXPECT_EQ(budget.used_bytes(), 100u);
}

TEST(ScopedAllocationTest, DestructorReleasesTaggedRegistration) {
  MemoryBudget budget;
  MemoryBudget::TagStats* tag = budget.Tag("test.buffer");
  {
    ScopedAllocation alloc(&budget, 256, tag);
    EXPECT_EQ(tag->used.load(), 256u);
  }
  EXPECT_EQ(tag->used.load(), 0u);
  EXPECT_EQ(tag->peak.load(), 256u);
}

TEST(ByteSizeTest, ParsesHumanReadableSizes) {
  std::uint64_t bytes = 0;
  EXPECT_TRUE(ParseByteSize("1024", &bytes));
  EXPECT_EQ(bytes, 1024u);
  EXPECT_TRUE(ParseByteSize("512m", &bytes));
  EXPECT_EQ(bytes, 512ULL << 20);
  EXPECT_TRUE(ParseByteSize("2g", &bytes));
  EXPECT_EQ(bytes, 2ULL << 30);
  EXPECT_TRUE(ParseByteSize("64K", &bytes));
  EXPECT_EQ(bytes, 64ULL << 10);
  EXPECT_TRUE(ParseByteSize("1t", &bytes));
  EXPECT_EQ(bytes, 1ULL << 40);
  EXPECT_TRUE(ParseByteSize("100b", &bytes));
  EXPECT_EQ(bytes, 100u);
  EXPECT_TRUE(ParseByteSize("16MiB", &bytes));
  EXPECT_EQ(bytes, 16ULL << 20);
  EXPECT_TRUE(ParseByteSize("1.5g", &bytes));
  EXPECT_EQ(bytes, 3ULL << 29);  // fractional values round to bytes
}

TEST(ByteSizeTest, RejectsMalformedSizes) {
  std::uint64_t bytes = 0;
  EXPECT_FALSE(ParseByteSize("", &bytes));
  EXPECT_FALSE(ParseByteSize("abc", &bytes));
  EXPECT_FALSE(ParseByteSize("12q", &bytes));
  EXPECT_FALSE(ParseByteSize("12mx", &bytes));
  EXPECT_FALSE(ParseByteSize("-5m", &bytes));
}

TEST(FlagParserTest, GetBytesParsesSuffixedSizes) {
  const char* argv[] = {"prog", "--mem_budget=48m", "--bad=12q"};
  FlagParser flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetBytes("mem_budget", 0), 48ULL << 20);
  EXPECT_EQ(flags.GetBytes("missing", 7), 7u);   // absent -> default
  EXPECT_EQ(flags.GetBytes("bad", 9), 9u);       // unparseable -> default
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::IoError("open failed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIoError);
  EXPECT_EQ(s.ToString(), "IoError: open failed");
}

TEST(FlagParserTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog",          "--scale=20",    "--format=adj6",
                        "positional1",   "--verbose",     "--ratio=0.5",
                        "--enabled=false"};
  FlagParser flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("scale", 0), 20);
  EXPECT_EQ(flags.GetString("format", ""), "adj6");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("enabled", true));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("missing", -7), -7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional1");
  EXPECT_TRUE(flags.Has("scale"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagParserTest, ParsesSpaceSeparatedValues) {
  const char* argv[] = {"prog", "--scale", "16", "--out", "/tmp/g",
                        "--verbose"};
  FlagParser flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("scale", 0), 16);
  EXPECT_EQ(flags.GetString("out", ""), "/tmp/g");
  // A trailing bare flag still reads as boolean true.
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(EdgeTest, ComparisonAndEquality) {
  Edge a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_EQ(a, (Edge{1, 2}));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

// --- \uXXXX escape decoding (util/json.h). Previously the escape was
// truncated to its low byte, corrupting any non-ASCII content; now it
// UTF-8-encodes the code point, combining surrogate pairs.

TEST(JsonUnicodeTest, BasicMultilingualPlaneEscapes) {
  json::Value doc;
  ASSERT_TRUE(json::Parse("\"caf\\u00e9\"", &doc).ok());
  EXPECT_EQ(doc.str, "caf\xc3\xa9");  // é as two UTF-8 bytes
  ASSERT_TRUE(json::Parse("\"\\u203d\"", &doc).ok());
  EXPECT_EQ(doc.str, "\xe2\x80\xbd");  // ‽, three UTF-8 bytes
  // ASCII escapes still decode to single bytes.
  ASSERT_TRUE(json::Parse("\"\\u0041\\u000a\"", &doc).ok());
  EXPECT_EQ(doc.str, "A\n");
}

TEST(JsonUnicodeTest, SurrogatePairsCombine) {
  json::Value doc;
  // U+1F600 (😀) = \ud83d\ude00 -> four UTF-8 bytes.
  ASSERT_TRUE(json::Parse("\"\\ud83d\\ude00\"", &doc).ok());
  EXPECT_EQ(doc.str, "\xf0\x9f\x98\x80");
}

TEST(JsonUnicodeTest, LoneSurrogatesBecomeReplacementCharacter) {
  const std::string replacement = "\xef\xbf\xbd";  // U+FFFD
  json::Value doc;
  ASSERT_TRUE(json::Parse("\"\\ud83d\"", &doc).ok());  // unpaired high
  EXPECT_EQ(doc.str, replacement);
  ASSERT_TRUE(json::Parse("\"\\ude00\"", &doc).ok());  // unpaired low
  EXPECT_EQ(doc.str, replacement);
  // High surrogate followed by a non-surrogate escape: U+FFFD, then the
  // second escape decodes on its own.
  ASSERT_TRUE(json::Parse("\"\\ud83dx\"", &doc).ok());
  EXPECT_EQ(doc.str, replacement + "x");
}

TEST(JsonUnicodeTest, MalformedEscapesAreRejected) {
  json::Value doc;
  EXPECT_FALSE(json::Parse("\"\\u12\"", &doc).ok());    // too short
  EXPECT_FALSE(json::Parse("\"\\uzzzz\"", &doc).ok());  // not hex
}

TEST(JsonUnicodeTest, RunReportMetaRoundTripsMultiByteContent) {
  // RunReport's writer passes multi-byte UTF-8 through verbatim and escapes
  // control characters as \uXXXX; both parsers must reproduce the original.
  obs::RunReport report;
  report.meta["path"] = "caf\xc3\xa9/run\t1";
  report.meta["emoji"] = "\xf0\x9f\x98\x80";
  const std::string text = report.ToJson();

  obs::RunReport back;
  ASSERT_TRUE(obs::RunReport::FromJson(text, &back).ok());
  EXPECT_EQ(back.meta, report.meta);

  json::Value doc;
  ASSERT_TRUE(json::Parse(text, &doc).ok());
  const json::Value* meta = doc.Find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->Find("path")->StringOr(""), "caf\xc3\xa9/run\t1");
  EXPECT_EQ(meta->Find("emoji")->StringOr(""), "\xf0\x9f\x98\x80");
}

}  // namespace
}  // namespace tg
