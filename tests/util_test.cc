#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/random.h"
#include "util/common.h"
#include "util/flags.h"
#include "util/flat_set64.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace tg {
namespace {

TEST(FlatSet64Test, InsertAndContains) {
  FlatSet64 set;
  EXPECT_TRUE(set.Insert(1));
  EXPECT_TRUE(set.Insert(2));
  EXPECT_FALSE(set.Insert(1));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_TRUE(set.Contains(2));
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlatSet64Test, ZeroIsAValidKey) {
  FlatSet64 set;
  EXPECT_TRUE(set.Insert(0));
  EXPECT_FALSE(set.Insert(0));
  EXPECT_TRUE(set.Contains(0));
}

TEST(FlatSet64Test, GrowsBeyondInitialCapacity) {
  FlatSet64 set(4);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.Insert(i * 2654435761ULL));
  }
  EXPECT_EQ(set.size(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.Contains(i * 2654435761ULL));
  }
}

TEST(FlatSet64Test, MatchesStdSetUnderRandomWorkload) {
  FlatSet64 set;
  std::set<std::uint64_t> reference;
  rng::Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t key = rng.NextBounded(10000);
    EXPECT_EQ(set.Insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  std::size_t visited = 0;
  set.ForEach([&](std::uint64_t key) {
    EXPECT_TRUE(reference.count(key));
    ++visited;
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatSet64Test, ResetReusesStorage) {
  FlatSet64 set(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) set.Insert(i);
  set.Reset(10);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(5));
  EXPECT_TRUE(set.Insert(5));
}

TEST(FlatSet64Test, MemoryBytesTracksCapacity) {
  FlatSet64 set(100);
  std::size_t initial = set.MemoryBytes();
  EXPECT_GE(initial, 200 * sizeof(std::uint64_t));  // >= 2x load headroom
  for (std::uint64_t i = 0; i < 100000; ++i) set.Insert(i);
  EXPECT_GT(set.MemoryBytes(), initial);
}

TEST(MemoryBudgetTest, TracksUsageAndPeak) {
  MemoryBudget budget;
  budget.Allocate(100);
  budget.Allocate(50);
  EXPECT_EQ(budget.used_bytes(), 150u);
  EXPECT_EQ(budget.peak_bytes(), 150u);
  budget.Release(120);
  EXPECT_EQ(budget.used_bytes(), 30u);
  EXPECT_EQ(budget.peak_bytes(), 150u);
}

TEST(MemoryBudgetTest, ThrowsOomWhenLimitExceeded) {
  MemoryBudget budget(1000);
  budget.Allocate(900);
  EXPECT_THROW(budget.Allocate(200), OomError);
  // Failed allocation must not leak into the accounting.
  EXPECT_EQ(budget.used_bytes(), 900u);
  budget.Release(900);
  budget.Allocate(1000);  // exactly at the limit is fine
}

TEST(MemoryBudgetTest, ResizeAdjustsInBothDirections) {
  MemoryBudget budget(1000);
  budget.Allocate(500);
  budget.Resize(500, 800);
  EXPECT_EQ(budget.used_bytes(), 800u);
  budget.Resize(800, 100);
  EXPECT_EQ(budget.used_bytes(), 100u);
}

TEST(ScopedAllocationTest, ReleasesOnDestruction) {
  MemoryBudget budget;
  {
    ScopedAllocation alloc(&budget, 256);
    EXPECT_EQ(budget.used_bytes(), 256u);
    alloc.ResizeTo(512);
    EXPECT_EQ(budget.used_bytes(), 512u);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 512u);
}

TEST(ScopedAllocationTest, NullBudgetIsNoop) {
  ScopedAllocation alloc(nullptr, 1024);
  alloc.ResizeTo(2048);
  EXPECT_EQ(alloc.bytes(), 2048u);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::IoError("open failed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIoError);
  EXPECT_EQ(s.ToString(), "IoError: open failed");
}

TEST(FlagParserTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog",          "--scale=20",    "--format=adj6",
                        "positional1",   "--verbose",     "--ratio=0.5",
                        "--enabled=false"};
  FlagParser flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("scale", 0), 20);
  EXPECT_EQ(flags.GetString("format", ""), "adj6");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("enabled", true));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("missing", -7), -7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional1");
  EXPECT_TRUE(flags.Has("scale"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagParserTest, ParsesSpaceSeparatedValues) {
  const char* argv[] = {"prog", "--scale", "16", "--out", "/tmp/g",
                        "--verbose"};
  FlagParser flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("scale", 0), 16);
  EXPECT_EQ(flags.GetString("out", ""), "/tmp/g");
  // A trailing bare flag still reads as boolean true.
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(EdgeTest, ComparisonAndEquality) {
  Edge a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_EQ(a, (Edge{1, 2}));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace tg
