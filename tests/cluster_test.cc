#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include <map>
#include <mutex>

#include "cluster/network_model.h"
#include "cluster/sim_cluster.h"
#include "cluster/trilliong_cluster.h"
#include "core/trilliong.h"

namespace tg::cluster {
namespace {

TEST(NetworkModelTest, TransferTimeScalesWithBytes) {
  NetworkModel net = NetworkModel::OneGigabitEthernet();
  double t1 = net.TransferSeconds(125'000'000);  // 1 Gbit of payload
  EXPECT_NEAR(t1, 1.0, 0.01);
  double t2 = net.TransferSeconds(250'000'000);
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(NetworkModelTest, InfinibandIs100xFaster) {
  std::uint64_t bytes = 1ULL << 30;
  double slow = NetworkModel::OneGigabitEthernet().TransferSeconds(bytes);
  double fast = NetworkModel::InfinibandEdr().TransferSeconds(bytes);
  EXPECT_NEAR(slow / fast, 100.0, 1.0);
}

TEST(SimClusterTest, TopologyAccessors) {
  SimCluster cluster({3, 4, 0, {}});
  EXPECT_EQ(cluster.num_machines(), 3);
  EXPECT_EQ(cluster.num_workers(), 12);
  EXPECT_EQ(cluster.MachineOfWorker(0), 0);
  EXPECT_EQ(cluster.MachineOfWorker(3), 0);
  EXPECT_EQ(cluster.MachineOfWorker(4), 1);
  EXPECT_EQ(cluster.MachineOfWorker(11), 2);
  EXPECT_EQ(cluster.worker_budget(5), cluster.machine_budget(1));
}

TEST(SimClusterTest, RunParallelRunsEveryWorkerOnce) {
  SimCluster cluster({2, 3, 0, {}});
  std::vector<std::atomic<int>> hits(6);
  cluster.RunParallel([&](int w) { hits[w].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SimClusterTest, RunParallelPropagatesException) {
  SimCluster cluster({2, 2, 0, {}});
  EXPECT_THROW(cluster.RunParallel([](int w) {
    if (w == 2) throw tg::OomError("worker 2 died");
  }),
               tg::OomError);
}

TEST(SimClusterTest, ShuffleDeliversAllRecordsToRightWorkers) {
  SimCluster cluster({2, 2, 0, {}});
  const int n = cluster.num_workers();
  std::vector<std::vector<std::vector<int>>> outbox(n);
  for (int src = 0; src < n; ++src) {
    outbox[src].resize(n);
    for (int dst = 0; dst < n; ++dst) {
      // src sends (src*10 + dst) repeated (src + dst) times.
      outbox[src][dst].assign(src + dst, src * 10 + dst);
    }
  }
  auto inbox = cluster.Shuffle(std::move(outbox));
  for (int dst = 0; dst < n; ++dst) {
    std::size_t expected = 0;
    for (int src = 0; src < n; ++src) expected += src + dst;
    EXPECT_EQ(inbox[dst].size(), expected);
    for (int v : inbox[dst]) EXPECT_EQ(v % 10, dst);
  }
}

TEST(SimClusterTest, ShuffleChargesOnlyCrossMachineBytes) {
  SimCluster cluster({2, 1, 0, NetworkModel::OneGigabitEthernet()});
  std::vector<std::vector<std::vector<std::uint64_t>>> outbox(2);
  outbox[0].resize(2);
  outbox[1].resize(2);
  outbox[0][0].assign(1000, 1);  // intra-machine: free
  outbox[0][1].assign(500, 2);   // cross-machine
  auto inbox = cluster.Shuffle(std::move(outbox));
  EXPECT_EQ(cluster.shuffled_bytes(), 500 * sizeof(std::uint64_t));
  EXPECT_GT(cluster.network_seconds(), 0.0);
  EXPECT_EQ(inbox[0].size(), 1000u);
  EXPECT_EQ(inbox[1].size(), 500u);
}

TEST(SimClusterTest, SingleMachineShuffleIsFree) {
  SimCluster cluster({1, 4, 0, NetworkModel::OneGigabitEthernet()});
  std::vector<std::vector<std::vector<int>>> outbox(4);
  for (auto& row : outbox) row.resize(4, std::vector<int>(100, 7));
  cluster.Shuffle(std::move(outbox));
  EXPECT_EQ(cluster.shuffled_bytes(), 0u);
}

TEST(SimClusterTest, NetworkClockAccumulatesAndResets) {
  SimCluster cluster({2, 1, 0, NetworkModel::OneGigabitEthernet()});
  auto make_outbox = [] {
    std::vector<std::vector<std::vector<std::uint64_t>>> outbox(2);
    outbox[0].resize(2);
    outbox[1].resize(2);
    outbox[0][1].assign(1 << 16, 1);
    return outbox;
  };
  cluster.Shuffle(make_outbox());
  double t1 = cluster.network_seconds();
  cluster.Shuffle(make_outbox());
  EXPECT_NEAR(cluster.network_seconds(), 2 * t1, t1 * 0.01);
  cluster.ResetNetworkClock();
  EXPECT_EQ(cluster.network_seconds(), 0.0);
  EXPECT_EQ(cluster.shuffled_bytes(), 0u);
}

TEST(TrillionGClusterTest, OutputIdenticalToInProcessGenerate) {
  core::TrillionGConfig config;
  config.scale = 11;
  config.edge_factor = 8;
  config.rng_seed = 555;

  // Reference: single worker, in-process driver.
  std::map<tg::VertexId, std::vector<tg::VertexId>> reference;
  class Collect : public core::ScopeSink {
   public:
    explicit Collect(std::map<tg::VertexId, std::vector<tg::VertexId>>* out)
        : out_(out) {}
    void ConsumeScope(tg::VertexId u, const tg::VertexId* adj,
                      std::size_t n) override {
      (*out_)[u].assign(adj, adj + n);
    }
    std::map<tg::VertexId, std::vector<tg::VertexId>>* out_;
  };
  {
    config.num_workers = 1;
    Collect sink(&reference);
    core::GenerateToSink(config, &sink);
  }

  // Cluster run with the Figure 6 combine/gather/repartition/scatter
  // protocol must produce the same graph (scope RNGs are
  // partition-independent).
  SimCluster cluster({2, 2, 0, {}});
  std::map<tg::VertexId, std::vector<tg::VertexId>> merged;
  std::mutex mu;
  ClusterGenerateStats stats = GenerateOnCluster(
      &cluster, config,
      [&](int, tg::VertexId, tg::VertexId) -> std::unique_ptr<core::ScopeSink> {
        class Locked : public core::ScopeSink {
         public:
          Locked(std::map<tg::VertexId, std::vector<tg::VertexId>>* out,
                 std::mutex* mu)
              : out_(out), mu_(mu) {}
          void ConsumeScope(tg::VertexId u, const tg::VertexId* adj,
                            std::size_t n) override {
            std::lock_guard<std::mutex> lock(*mu_);
            (*out_)[u].assign(adj, adj + n);
          }
          std::map<tg::VertexId, std::vector<tg::VertexId>>* out_;
          std::mutex* mu_;
        };
        return std::make_unique<Locked>(&merged, &mu);
      });
  EXPECT_EQ(merged, reference);
  EXPECT_GT(stats.generate.num_edges, 0u);
  EXPECT_GT(stats.combine_seconds, 0.0);
  EXPECT_GT(stats.control_bytes, 0u);
  EXPECT_GT(stats.TotalSeconds(), 0.0);
}

TEST(TrillionGClusterTest, RespectsMachineBudgets) {
  core::TrillionGConfig config;
  config.scale = 12;
  config.edge_factor = 16;
  SimCluster cluster({2, 1, /*memory=*/64, {}});  // 64 bytes: instant OOM
  EXPECT_THROW(
      GenerateOnCluster(&cluster, config,
                        [](int, tg::VertexId, tg::VertexId)
                            -> std::unique_ptr<core::ScopeSink> {
                          return std::make_unique<core::CountingSink>();
                        }),
      tg::OomError);
}

TEST(TrillionGClusterTest, ControlTrafficIsTiny) {
  // Figure 6's gather moves bin summaries only — "network communication
  // overhead is quite small since just bin sizes are sent".
  core::TrillionGConfig config;
  config.scale = 14;
  config.edge_factor = 16;
  SimCluster cluster({4, 1, 0, NetworkModel::OneGigabitEthernet()});
  ClusterGenerateStats stats = GenerateOnCluster(
      &cluster, config,
      [](int, tg::VertexId, tg::VertexId) -> std::unique_ptr<core::ScopeSink> {
        return std::make_unique<core::CountingSink>();
      });
  // Control bytes are orders of magnitude below the edge data volume.
  EXPECT_LT(stats.control_bytes, config.NumEdges() * sizeof(tg::Edge) / 1000);
  EXPECT_LT(stats.gather_scatter_seconds, 0.01);
}

TEST(SimClusterTest, MachineBudgetsAreIndependent) {
  SimCluster cluster({2, 2, 1000, {}});
  cluster.machine_budget(0)->Allocate(900);
  // Machine 1's budget is untouched.
  cluster.machine_budget(1)->Allocate(900);
  EXPECT_THROW(cluster.machine_budget(0)->Allocate(200), tg::OomError);
  EXPECT_EQ(cluster.MaxMachinePeakBytes(), 900u);
}

}  // namespace
}  // namespace tg::cluster
