// Tests for the tg::prof sampling profiler: the bounded frame-pointer
// unwinder (depth, truncation), folded rendering golden formats, cached
// symbolization determinism, start/stop/status contracts, the off-CPU
// [stall:*] accounting, the RunReport "prof" section round trip, the live
// /pprof + /buildz admin endpoints, and — the TSan target — a multi-worker
// generation sampled at a high rate while snapshots race the collector.
//
// The 409-when-off test must run first in a whole-binary run: it needs the
// process to have never armed the profiler (ctest runs each test in its own
// process, so ordering only matters for manual `./prof_test` runs).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scope_sink.h"
#include "core/trilliong.h"
#include "obs/run_report.h"
#include "obs/serve/admin_server.h"
#include "prof/folded.h"
#include "prof/profiler.h"
#include "prof/symbolize.h"

namespace tg {
namespace {

// ---------------------------------------------------------------------------
// A tiny blocking test client (same shape as serve_test.cc).

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{/*tv_sec=*/10, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string Get(int port, const std::string& path) {
  const std::string raw =
      "GET " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  int fd = ConnectTo(port);
  if (fd < 0) return "";
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::write(fd, raw.data() + sent, raw.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string BodyOf(const std::string& reply) {
  const std::size_t split = reply.find("\r\n\r\n");
  return split == std::string::npos ? "" : reply.substr(split + 4);
}

/// Every non-empty line of folded text must be `frames... <count>` with a
/// positive integer count and a non-empty frame part.
bool WellFormedFolded(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) return false;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) return false;
    const std::string count = line.substr(space + 1);
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    if (count == "0") return false;  // zero rows must be omitted
  }
  return true;
}

/// Recurses `n` deep, then captures the stack from the innermost frame. The
/// empty asm both defeats tail-call conversion (the call must stay a call so
/// each level keeps a frame) and keeps the addition from folding away.
__attribute__((noinline)) int Recurse(int n, std::uintptr_t* pcs,
                                      int max_depth) {
  if (n <= 0) return prof::CaptureStack(pcs, max_depth);
  int depth = Recurse(n - 1, pcs, max_depth);
  asm volatile("" : "+r"(depth));
  return depth;
}

// ---------------------------------------------------------------------------
// /pprof endpoint off-path (first: needs a never-armed profiler).

TEST(ProfServeOrderFirstTest, ProfileEndpointConflictsWhenNeverStarted) {
  ASSERT_FALSE(prof::ProfilerRunning());
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start({}).ok());
  const std::string reply = Get(admin.port(), "/pprof/profile");
  EXPECT_NE(reply.find("HTTP/1.1 409"), std::string::npos) << reply;
  EXPECT_NE(BodyOf(reply).find("profiler not running"), std::string::npos);
  // The status endpoint answers 200 regardless.
  const std::string status = Get(admin.port(), "/pprof/status");
  EXPECT_NE(status.find("HTTP/1.1 200 OK"), std::string::npos) << status;
  EXPECT_NE(BodyOf(status).find("\"running\": false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Unwinder.

TEST(CaptureStackTest, DepthGrowsWithRecursion) {
  prof::EnsureThreadRegistered();
  std::uintptr_t pcs[prof::kMaxStackDepth];
  const int shallow = Recurse(2, pcs, prof::kMaxStackDepth);
  ASSERT_GT(shallow, 0);
  std::uintptr_t deep_pcs[prof::kMaxStackDepth];
  const int deep = Recurse(12, deep_pcs, prof::kMaxStackDepth);
  // Frame-pointer walks need -fno-omit-frame-pointer (set globally); if the
  // toolchain still produced FP-less frames the walk stops at depth 1 and
  // the depth comparison is meaningless.
  if (shallow > 1) {
    EXPECT_GE(deep, shallow + 8) << "10 extra recursion levels missing";
  }
  EXPECT_LE(deep, prof::kMaxStackDepth);
}

TEST(CaptureStackTest, TruncatesAtMaxDepth) {
  prof::EnsureThreadRegistered();
  std::uintptr_t pcs[prof::kMaxStackDepth];
  const int full = Recurse(prof::kMaxStackDepth + 20, pcs,
                           prof::kMaxStackDepth);
  EXPECT_LE(full, prof::kMaxStackDepth);
  if (full == prof::kMaxStackDepth) {
    // The walk really was cut short; a smaller cap must cut it shorter.
    std::uintptr_t few[8];
    EXPECT_EQ(Recurse(prof::kMaxStackDepth + 20, few, 8), 8);
  }
  // Zero capacity is a no-op, not a crash.
  EXPECT_EQ(prof::CaptureStack(pcs, 0), 0);
}

// ---------------------------------------------------------------------------
// Folded rendering (hand-built snapshots: fully deterministic goldens).

TEST(FoldedTest, StallGolden) {
  prof::ProfileSnapshot snap;
  snap.hz = 99;
  snap.stalls.push_back({"writer", "io", 0, 7});
  snap.stalls.push_back({"steal_wait", "generate", 1, 3});
  snap.stalls.push_back({"never", "generate", 0, 0});  // zero rows vanish
  snap.stalls.push_back({"idle", "", 2, 5});           // empty phase
  EXPECT_EQ(prof::RenderFolded(snap),
            "(idle);[stall:idle] 5\n"
            "generate;[stall:steal_wait] 3\n"
            "io;[stall:writer] 7\n");
}

TEST(FoldedTest, MergesIdenticalLinesAcrossWorkers) {
  prof::ProfileSnapshot snap;
  snap.hz = 99;
  // The same (kind, phase) from two machines is one flamegraph row.
  snap.stalls.push_back({"writer", "io", 0, 7});
  snap.stalls.push_back({"writer", "io", 1, 4});
  EXPECT_EQ(prof::RenderFolded(snap), "io;[stall:writer] 11\n");
}

TEST(FoldedTest, RealStackRendersRootFirstWithPhasePrefix) {
  prof::EnsureThreadRegistered();
  prof::ProfileSnapshot snap;
  snap.hz = 99;
  prof::ProfileSnapshot::Stack stack;
  stack.pcs.resize(prof::kMaxStackDepth);
  const int depth = Recurse(4, stack.pcs.data(), prof::kMaxStackDepth);
  ASSERT_GT(depth, 0);
  stack.pcs.resize(static_cast<std::size_t>(depth));
  stack.phase = "unit";
  stack.count = 2;
  snap.stacks.push_back(stack);
  stack.worker = 7;  // same pcs seen on another worker: merged
  snap.stacks.push_back(stack);
  snap.samples = 4;
  const std::string folded = prof::RenderFolded(snap);
  EXPECT_TRUE(WellFormedFolded(folded)) << folded;
  ASSERT_EQ(folded.substr(0, 5), "unit;") << folded;
  EXPECT_EQ(folded.substr(folded.size() - 3), " 4\n") << folded;
  EXPECT_EQ(folded.find('\n'), folded.size() - 1) << folded;
}

TEST(FoldedTest, DiffSubtractsAndOmitsNonGrowingRows) {
  prof::ProfileSnapshot before;
  before.hz = 99;
  before.stalls.push_back({"writer", "io", 0, 7});
  before.stalls.push_back({"idle", "tail", 0, 5});
  prof::ProfileSnapshot after = before;
  after.stalls[0].count = 10;  // grew by 3
  // stalls[1] unchanged: omitted from the diff.
  EXPECT_EQ(prof::RenderFoldedDiff(before, after), "io;[stall:writer] 3\n");
}

TEST(FoldedTest, EmptySnapshotRendersEmpty) {
  prof::ProfileSnapshot empty;
  EXPECT_EQ(prof::RenderFolded(empty), "");
  EXPECT_EQ(prof::RenderFoldedDiff(empty, empty), "");
  obs::RunReport report;
  prof::ExportTo(empty, &report);
  ASSERT_TRUE(report.prof.has_value());
  EXPECT_EQ(report.prof->samples, 0u);
  EXPECT_TRUE(report.prof->frames.empty());
}

// ---------------------------------------------------------------------------
// Symbolization.

TEST(SymbolizeTest, DeterministicAcrossCacheClear) {
  const std::uintptr_t pc =
      reinterpret_cast<std::uintptr_t>(&prof::CaptureStack);
  const std::string warm = prof::SymbolizeFrame(pc, /*is_leaf=*/true);
  ASSERT_FALSE(warm.empty());
  EXPECT_EQ(prof::SymbolizeFrame(pc, true), warm);
  prof::ClearSymbolCache();
  EXPECT_EQ(prof::SymbolizeFrame(pc, true), warm);
  // -rdynamic exports the library's own symbols to dladdr.
  EXPECT_NE(warm.find("CaptureStack"), std::string::npos) << warm;
}

TEST(SymbolizeTest, NonLeafFramesResolveTheCallSite) {
  // A return address that is the first byte *after* a function still lands
  // inside it thanks to the pc-1 adjustment; symbolizing it as a leaf may
  // fall through to module+offset, but must never throw or return empty.
  const std::uintptr_t pc =
      reinterpret_cast<std::uintptr_t>(&prof::CaptureStack) + 1;
  EXPECT_FALSE(prof::SymbolizeFrame(pc, /*is_leaf=*/false).empty());
  EXPECT_FALSE(prof::SymbolizeFrame(0, true).empty());
}

// ---------------------------------------------------------------------------
// Profiler lifecycle + off-CPU accounting.

TEST(ProfilerTest, StartStopStatusContract) {
  prof::ProfilerOptions bad;
  bad.hz = 0;
  EXPECT_FALSE(prof::StartProfiler(bad).ok());
  bad.hz = 100001;
  EXPECT_FALSE(prof::StartProfiler(bad).ok());

  ASSERT_TRUE(prof::StartProfiler({}).ok());
  EXPECT_TRUE(prof::ProfilerRunning());
  EXPECT_FALSE(prof::StartProfiler({}).ok()) << "double start must fail";
  prof::ProfilerStatus status = prof::GetStatus();
  EXPECT_TRUE(status.running);
  EXPECT_EQ(status.hz, 99);
  EXPECT_GE(status.threads, 1);

  prof::StopProfiler();
  EXPECT_FALSE(prof::ProfilerRunning());
  prof::StopProfiler();  // idempotent
  EXPECT_FALSE(prof::GetStatus().running);
}

TEST(ProfilerTest, RecordStallConvertsSecondsToSampleEquivalents) {
  prof::ProfilerOptions options;
  options.hz = 100;
  ASSERT_TRUE(prof::StartProfiler(options).ok());
  prof::RecordStall("unit_stall", 0.5);
  prof::RecordStall("unit_stall", 0.25);
  prof::StopProfiler();
  const prof::ProfileSnapshot snap = prof::TakeSnapshot();
  EXPECT_EQ(snap.hz, 100);
  std::uint64_t count = 0;
  for (const auto& stall : snap.stalls) {
    if (stall.kind == "unit_stall") count += stall.count;
  }
  EXPECT_EQ(count, 75u);  // 0.75 s at 100 Hz
  const std::string folded = prof::RenderFolded(snap);
  EXPECT_NE(folded.find("[stall:unit_stall] 75"), std::string::npos) << folded;
}

TEST(ProfilerTest, RecordStallIsANoOpWhenStopped) {
  ASSERT_FALSE(prof::ProfilerRunning());
  const prof::ProfileSnapshot before = prof::TakeSnapshot();
  prof::RecordStall("ghost", 100.0);
  const prof::ProfileSnapshot after = prof::TakeSnapshot();
  EXPECT_EQ(after.stalls.size(), before.stalls.size());
  for (const auto& stall : after.stalls) EXPECT_NE(stall.kind, "ghost");
}

TEST(ProfilerTest, RestartDiscardsThePreviousSession) {
  prof::ProfilerOptions options;
  options.hz = 100;
  ASSERT_TRUE(prof::StartProfiler(options).ok());
  prof::RecordStall("first_session", 1.0);
  prof::StopProfiler();
  ASSERT_TRUE(prof::StartProfiler(options).ok());
  prof::RecordStall("second_session", 1.0);
  prof::StopProfiler();
  const prof::ProfileSnapshot snap = prof::TakeSnapshot();
  bool saw_second = false;
  for (const auto& stall : snap.stalls) {
    EXPECT_NE(stall.kind, "first_session");
    saw_second = saw_second || stall.kind == "second_session";
  }
  EXPECT_TRUE(saw_second);
}

/// Stack-table interning is deterministic: snapshotting twice without new
/// samples yields identical (stack_id, pcs, count) rows, and ids are dense.
TEST(ProfilerTest, SnapshotInterningIsStable) {
  prof::ProfilerOptions options;
  options.hz = 1000;
  ASSERT_TRUE(prof::StartProfiler(options).ok());
  // Burn CPU so some samples land (CPU-time timer: sleeping never samples).
  volatile double sink = 0.0;
  for (int i = 0; i < 20000000; ++i) sink = sink + i * 0.5;
  prof::StopProfiler();
  const prof::ProfileSnapshot a = prof::TakeSnapshot();
  const prof::ProfileSnapshot b = prof::TakeSnapshot();
  ASSERT_EQ(a.stacks.size(), b.stacks.size());
  for (std::size_t i = 0; i < a.stacks.size(); ++i) {
    EXPECT_EQ(a.stacks[i].stack_id, b.stacks[i].stack_id);
    EXPECT_EQ(a.stacks[i].pcs, b.stacks[i].pcs);
    EXPECT_EQ(a.stacks[i].count, b.stacks[i].count);
    // Ids are interned densely: rows may share one (same stack in several
    // phases/workers), so every id is below the row count.
    EXPECT_LT(a.stacks[i].stack_id, a.stacks.size());
  }
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(prof::RenderFolded(a), prof::RenderFolded(b));
}

// ---------------------------------------------------------------------------
// RunReport "prof" section round trip.

TEST(ProfReportTest, JsonRoundTrip) {
  obs::RunReport report;
  report.meta["tool"] = "prof_test";
  obs::ProfSection section;
  section.samples = 1234;
  section.dropped = 5;
  section.hz = 99;
  section.frames.push_back({"generate", "tg::core::EdgeKernel", 700, 900});
  section.frames.push_back({"io", "[stall:writer]", 50, 50});
  report.prof = section;

  obs::RunReport parsed;
  ASSERT_TRUE(obs::RunReport::FromJson(report.ToJson(), &parsed).ok());
  ASSERT_TRUE(parsed.prof.has_value());
  EXPECT_EQ(parsed.prof->samples, 1234u);
  EXPECT_EQ(parsed.prof->dropped, 5u);
  EXPECT_EQ(parsed.prof->hz, 99);
  ASSERT_EQ(parsed.prof->frames.size(), 2u);
  EXPECT_EQ(parsed.prof->frames[0].phase, "generate");
  EXPECT_EQ(parsed.prof->frames[0].frame, "tg::core::EdgeKernel");
  EXPECT_EQ(parsed.prof->frames[0].self, 700u);
  EXPECT_EQ(parsed.prof->frames[0].total, 900u);
  EXPECT_EQ(parsed.prof->frames[1].frame, "[stall:writer]");
  // The table view names the section.
  EXPECT_NE(parsed.ToTable().find("prof (1234 samples"), std::string::npos);
}

TEST(ProfReportTest, AbsentSectionStaysAbsent) {
  obs::RunReport report;
  report.meta["tool"] = "prof_test";
  EXPECT_EQ(report.ToJson().find("\"prof\""), std::string::npos);
  obs::RunReport parsed;
  ASSERT_TRUE(obs::RunReport::FromJson(report.ToJson(), &parsed).ok());
  EXPECT_FALSE(parsed.prof.has_value());
}

// ---------------------------------------------------------------------------
// Live endpoints with a running profiler.

TEST(ProfServeTest, PprofProfileAndStatusRoundTrip) {
  prof::ProfilerOptions options;
  options.hz = 1000;
  ASSERT_TRUE(prof::StartProfiler(options).ok());
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start({}).ok());

  volatile double sink = 0.0;
  for (int i = 0; i < 20000000; ++i) sink = sink + i * 0.5;
  prof::RecordStall("serve_unit", 0.1);

  const std::string status_body = BodyOf(Get(admin.port(), "/pprof/status"));
  EXPECT_NE(status_body.find("\"running\": true"), std::string::npos)
      << status_body;
  EXPECT_NE(status_body.find("\"hz\": 1000"), std::string::npos);

  const std::string reply = Get(admin.port(), "/pprof/profile");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
  const std::string folded = BodyOf(reply);
  EXPECT_TRUE(WellFormedFolded(folded)) << folded;
  EXPECT_NE(folded.find("[stall:serve_unit]"), std::string::npos) << folded;

  prof::StopProfiler();
  // A stopped-but-sampled profiler still serves its cumulative profile.
  const std::string after = Get(admin.port(), "/pprof/profile");
  EXPECT_NE(after.find("HTTP/1.1 200 OK"), std::string::npos) << after;
}

TEST(ProfServeTest, BuildzNamesTheBinary) {
  obs::serve::AdminServer admin;
  ASSERT_TRUE(admin.Start({}).ok());
  const std::string reply = Get(admin.port(), "/buildz");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
  const std::string body = BodyOf(reply);
  EXPECT_NE(body.find("\"git\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"compiler\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"cxx_standard\""), std::string::npos) << body;
}

// ---------------------------------------------------------------------------
// The TSan target: sample a real multi-worker generation at a high rate
// while snapshot readers race the collector and stall writers. Assertions
// are deliberately weak (sample counts depend on CPU time granted), but any
// handler/collector/snapshot race fails under -fsanitize=thread.

TEST(ProfStressTest, SamplesAFourWorkerRunUnderConcurrentSnapshots) {
  prof::ProfilerOptions options;
  options.hz = 997;
  ASSERT_TRUE(prof::StartProfiler(options).ok());

  std::atomic<bool> done{false};
  std::thread snapshotter([&done] {
    while (!done.load(std::memory_order_relaxed)) {
      const prof::ProfileSnapshot snap = prof::TakeSnapshot();
      EXPECT_EQ(snap.hz, 997);
      (void)prof::GetStatus();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  core::TrillionGConfig config;
  config.scale = 15;
  config.edge_factor = 8;
  config.num_workers = 4;
  std::uint64_t total_edges = 0;
  std::mutex total_mu;
  const core::GenerateStats stats = core::Generate(
      config, [&](int, VertexId, VertexId) -> std::unique_ptr<core::ScopeSink> {
        class Locked : public core::ScopeSink {
         public:
          Locked(std::uint64_t* total, std::mutex* mu)
              : total_(total), mu_(mu) {}
          void ConsumeScope(VertexId, const VertexId*,
                            std::size_t n) override {
            std::lock_guard<std::mutex> lock(*mu_);
            *total_ += n;
          }

         private:
          std::uint64_t* total_;
          std::mutex* mu_;
        };
        return std::make_unique<Locked>(&total_edges, &total_mu);
      });
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();
  prof::StopProfiler();

  // Profiling must not perturb generation.
  EXPECT_EQ(stats.num_edges, total_edges);
  const prof::ProfileSnapshot snap = prof::TakeSnapshot();
  EXPECT_EQ(snap.hz, 997);
  const std::string folded = prof::RenderFolded(snap);
  EXPECT_TRUE(WellFormedFolded(folded)) << folded;
  // Every sample that made it into the table is on some stack row.
  std::uint64_t on_stacks = 0;
  for (const auto& stack : snap.stacks) on_stacks += stack.count;
  EXPECT_EQ(on_stacks, snap.samples);
}

}  // namespace
}  // namespace tg
