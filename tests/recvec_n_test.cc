#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "analysis/degree_dist.h"
#include "baseline/kronecker.h"
#include "core/avs_generator_n.h"
#include "core/edge_determiner.h"
#include "core/rec_vec.h"
#include "core/rec_vec_n.h"
#include "model/noise.h"
#include "model/seed_matrix.h"
#include "rng/random.h"

namespace tg::core {
namespace {

using model::SeedMatrix;
using model::SeedMatrixN;

/// Brute-force cell probability for an n x n Kronecker product.
double CellN(const SeedMatrixN& seed, int levels, VertexId u, VertexId v) {
  const int n = seed.n();
  double p = 1.0;
  for (int k = 0; k < levels; ++k) {
    p *= seed.Entry(static_cast<int>(u % n), static_cast<int>(v % n));
    u /= n;
    v /= n;
  }
  return p;
}

TEST(RecVecNTest, ValuesMatchBruteForceCdf3x3) {
  SeedMatrixN seed = SeedMatrixN::Example3x3();
  const int levels = 4;  // |V| = 81
  const VertexId num_vertices = 81;
  for (VertexId u = 0; u < num_vertices; u += 5) {
    RecVecN rv(seed, levels, u);
    double cum = 0;
    for (VertexId v = 0; v < num_vertices; ++v) {
      cum += CellN(seed, levels, u, v);
      // Check RecVecN entries at the powers-of-three boundaries.
      VertexId boundary = 1;
      for (int i = 0; i <= levels; ++i) {
        if (v + 1 == boundary) {
          EXPECT_NEAR(rv[i], cum, 1e-12) << "u=" << u << " x=" << i;
        }
        boundary *= 3;
      }
    }
    EXPECT_NEAR(rv.Total(), cum, 1e-12);
  }
}

TEST(RecVecNTest, BlockStartsMatchBruteForce) {
  SeedMatrixN seed = SeedMatrixN::Example3x3();
  const int levels = 3;  // |V| = 27
  for (VertexId u : {VertexId{0}, VertexId{7}, VertexId{26}}) {
    RecVecN rv(seed, levels, u);
    for (int x = 0; x < levels; ++x) {
      VertexId block = rv.PowN(x);
      for (int d = 0; d <= 3; ++d) {
        double cum = 0;
        for (VertexId v = 0; v < static_cast<VertexId>(d) * block; ++v) {
          cum += CellN(seed, levels, u, v);
        }
        EXPECT_NEAR(rv.BlockStart(x, d), cum, 1e-12)
            << "u=" << u << " x=" << x << " d=" << d;
      }
    }
  }
}

TEST(RecVecNTest, DetermineEdgeNIsExactCdfInverse3x3) {
  SeedMatrixN seed = SeedMatrixN::Example3x3();
  const int levels = 3;
  const VertexId num_vertices = 27;
  for (VertexId u = 0; u < num_vertices; u += 4) {
    RecVecN rv(seed, levels, u);
    double cum = 0;
    for (VertexId v = 0; v < num_vertices; ++v) {
      double p = CellN(seed, levels, u, v);
      double mid = cum + p / 2;
      EXPECT_EQ(DetermineEdgeN(rv, mid), v) << "u=" << u << " v=" << v;
      cum += p;
    }
  }
}

TEST(RecVecNTest, N2MatchesBinaryRecVec) {
  // With a 2 x 2 seed, RecVecN must agree with the paper's RecVec exactly.
  SeedMatrix seed2 = SeedMatrix::Graph500();
  SeedMatrixN seedn = SeedMatrixN::FromSeedMatrix(seed2);
  const int scale = 10;
  model::NoiseVector noise(seed2, scale);
  rng::Rng rng(17);
  for (VertexId u : {VertexId{0}, VertexId{123}, VertexId{1023}}) {
    RecVec<double> rv2(noise, u);
    RecVecN rvn(seedn, scale, u);
    for (int x = 0; x <= scale; ++x) {
      EXPECT_NEAR(rvn[x], rv2[x], 1e-12);
    }
    for (int i = 0; i < 2000; ++i) {
      double x = rng.NextDouble(rv2.Total() * 0.999999);
      EXPECT_EQ(DetermineEdgeN(rvn, x), DetermineEdge(rv2, x));
    }
  }
}

TEST(RecVecNTest, DistributionMatchesCells) {
  SeedMatrixN seed = SeedMatrixN::Example3x3();
  const int levels = 2;  // |V| = 9
  VertexId u = 5;
  RecVecN rv(seed, levels, u);
  rng::Rng rng(99);
  const int trials = 200000;
  std::vector<int> counts(9, 0);
  for (int i = 0; i < trials; ++i) {
    ++counts[DetermineEdgeN(rv, rng.NextDouble(rv.Total()))];
  }
  double chi2 = 0;
  for (VertexId v = 0; v < 9; ++v) {
    double expected = trials * CellN(seed, levels, u, v) / rv.Total();
    chi2 += (counts[v] - expected) * (counts[v] - expected) / expected;
  }
  // 8 dof, 99.9% critical ~26.1.
  EXPECT_LT(chi2, 26.1);
}

TEST(AvsGeneratorNTest, EdgeCountNearTargetAndDeduped) {
  AvsNOptions options;
  options.seed = SeedMatrixN::Example3x3();
  options.levels = 7;  // |V| = 2187
  options.num_edges = 1 << 15;

  std::map<VertexId, std::vector<VertexId>> scopes;
  class Sink : public ScopeSink {
   public:
    explicit Sink(std::map<VertexId, std::vector<VertexId>>* out)
        : out_(out) {}
    void ConsumeScope(VertexId u, const VertexId* adj,
                      std::size_t n) override {
      (*out_)[u].assign(adj, adj + n);
    }
    std::map<VertexId, std::vector<VertexId>>* out_;
  };
  Sink sink(&scopes);
  AvsNStats stats = GenerateAvsN(options, &sink);

  double expected = static_cast<double>(options.num_edges);
  EXPECT_LE(static_cast<double>(stats.num_edges),
            expected + 6 * std::sqrt(expected));
  EXPECT_GE(static_cast<double>(stats.num_edges), 0.85 * expected);
  for (const auto& [u, adj] : scopes) {
    EXPECT_LT(u, 2187u);
    std::set<VertexId> unique(adj.begin(), adj.end());
    EXPECT_EQ(unique.size(), adj.size());
    for (VertexId v : adj) EXPECT_LT(v, 2187u);
  }
}

TEST(AvsGeneratorNTest, MatchesFastKroneckerDistribution) {
  // The generalized AVS model and FastKronecker draw from the same 3 x 3
  // SKG distribution: compare out-degree histograms by KS distance.
  AvsNOptions options;
  options.seed = SeedMatrixN::Example3x3();
  options.levels = 7;
  options.num_edges = 1 << 15;
  std::vector<std::uint32_t> avs_out(2187, 0);
  class Sink : public ScopeSink {
   public:
    explicit Sink(std::vector<std::uint32_t>* out) : out_(out) {}
    void ConsumeScope(VertexId u, const VertexId*, std::size_t n) override {
      (*out_)[u] += static_cast<std::uint32_t>(n);
    }
    std::vector<std::uint32_t>* out_;
  };
  Sink sink(&avs_out);
  GenerateAvsN(options, &sink);

  baseline::FastKroneckerOptions fk;
  fk.seed = options.seed;
  fk.num_vertices = 2187;
  fk.num_edges = 1 << 15;
  std::vector<std::uint32_t> fk_out(2187, 0);
  baseline::FastKronecker(fk, [&](const Edge& e) { ++fk_out[e.src]; });

  double ks = analysis::DegreeHistogram::KsDistance(
      analysis::DegreeHistogram::FromDegrees(avs_out),
      analysis::DegreeHistogram::FromDegrees(fk_out));
  EXPECT_LT(ks, 0.06);
}

}  // namespace
}  // namespace tg::core
