// Property-based parameterized sweeps: core invariants checked across a grid
// of seed matrices, scales, noise levels and RNG seeds.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "analysis/degree_dist.h"
#include "core/edge_determiner.h"
#include "core/partitioner.h"
#include "core/rec_vec.h"
#include "core/trilliong.h"
#include "model/edge_probability.h"

namespace tg::core {
namespace {

using model::EdgeProbability;
using model::NoiseVector;
using model::SeedMatrix;

// ---------------------------------------------------------------------------
// RecVec invariants across (seed matrix, scale, source vertex pattern).
// ---------------------------------------------------------------------------

struct SeedCase {
  const char* name;
  double a, b, c, d;
};

class RecVecPropertyTest
    : public ::testing::TestWithParam<std::tuple<SeedCase, int>> {};

TEST_P(RecVecPropertyTest, CdfIsMonotoneAndBounded) {
  auto [seed_case, scale] = GetParam();
  SeedMatrix seed(seed_case.a, seed_case.b, seed_case.c, seed_case.d);
  NoiseVector noise(seed, scale);
  // Probe structured vertex patterns: all-zeros, all-ones, alternating,
  // single bits.
  std::vector<VertexId> probes = {0, (VertexId{1} << scale) - 1};
  for (int b = 0; b < scale; ++b) probes.push_back(VertexId{1} << b);
  VertexId alternating = 0;
  for (int b = 0; b < scale; b += 2) alternating |= VertexId{1} << b;
  probes.push_back(alternating);

  for (VertexId u : probes) {
    RecVec<double> rv(noise, u);
    EXPECT_GT(rv[0], 0.0);
    for (int x = 0; x < scale; ++x) {
      EXPECT_LE(rv[x], rv[x + 1]) << "u=" << u << " x=" << x;
    }
    EXPECT_LE(rv.Total(), 1.0 + 1e-12);
    // Lemma 1 closed form.
    EdgeProbability prob(seed, scale);
    EXPECT_NEAR(rv.Total(), prob.RowProbability(u),
                1e-9 * prob.RowProbability(u) + 1e-300);
  }
}

TEST_P(RecVecPropertyTest, DetermineEdgeStaysInRange) {
  auto [seed_case, scale] = GetParam();
  SeedMatrix seed(seed_case.a, seed_case.b, seed_case.c, seed_case.d);
  NoiseVector noise(seed, scale);
  rng::Rng rng(2024);
  const VertexId n = VertexId{1} << scale;
  for (int trial = 0; trial < 200; ++trial) {
    VertexId u = rng.NextBounded(n);
    RecVec<double> rv(noise, u);
    for (int i = 0; i < 50; ++i) {
      double x = NextUniformReal<double>(&rng, rv.Total());
      VertexId v = DetermineEdge(rv, x);
      EXPECT_LT(v, n) << "u=" << u;
      // Idea#2-off variant must agree exactly for the same x.
      EXPECT_EQ(DetermineEdgeLinear(rv, x), v);
    }
  }
}

constexpr SeedCase kSeeds[] = {
    {"graph500", 0.57, 0.19, 0.19, 0.05},
    {"uniform", 0.25, 0.25, 0.25, 0.25},
    {"skewed", 0.7, 0.15, 0.1, 0.05},
    {"asymmetric", 0.45, 0.3, 0.2, 0.05},
    {"column_heavy", 0.3, 0.4, 0.1, 0.2},
};

INSTANTIATE_TEST_SUITE_P(
    SeedsByScales, RecVecPropertyTest,
    ::testing::Combine(::testing::ValuesIn(kSeeds),
                       ::testing::Values(4, 9, 16, 25, 40)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_scale" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Whole-graph invariants across (seed, noise, rng seed).
// ---------------------------------------------------------------------------

class GeneratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<SeedCase, double, int>> {};

TEST_P(GeneratorPropertyTest, EdgeMassMatchesTheorem1Aggregate) {
  auto [seed_case, noise, rng_seed] = GetParam();
  TrillionGConfig config;
  config.scale = 11;
  config.edge_factor = 8;
  config.seed = SeedMatrix(seed_case.a, seed_case.b, seed_case.c,
                           seed_case.d);
  config.noise = noise;
  config.rng_seed = static_cast<std::uint64_t>(rng_seed);

  CountingSink sink;
  GenerateStats stats = GenerateToSink(config, &sink);
  double expected = static_cast<double>(config.NumEdges());
  // Aggregate of per-scope Normal samples: mean |E|, stddev < sqrt(|E|).
  // The bound is asymmetric: dedup and the |V| degree cap can only *remove*
  // mass, and for strongly skewed seeds at this small scale the head rows
  // saturate (expected degree > |V|), clipping up to ~15%.
  EXPECT_LE(static_cast<double>(stats.num_edges),
            expected + 6 * std::sqrt(expected));
  EXPECT_GE(static_cast<double>(stats.num_edges),
            0.82 * expected - 6 * std::sqrt(expected));
  EXPECT_LE(stats.max_degree, config.NumVertices());
  EXPECT_GT(stats.num_scopes, 0u);
  EXPECT_LE(stats.num_scopes, config.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorPropertyTest,
    ::testing::Combine(::testing::ValuesIn(kSeeds),
                       ::testing::Values(0.0, 0.1),
                       ::testing::Values(1, 7, 1234)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) +
             (std::get<1>(info.param) > 0 ? "_noisy" : "_plain") + "_rng" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Partitioner invariants across seeds and bin counts.
// ---------------------------------------------------------------------------

class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<SeedCase, int>> {};

TEST_P(PartitionPropertyTest, BinsTileTheRangeWithBalancedMass) {
  auto [seed_case, bins] = GetParam();
  const int scale = 14;
  SeedMatrix seed(seed_case.a, seed_case.b, seed_case.c, seed_case.d);
  NoiseVector noise(seed, scale);
  EdgeProbability prob(seed, scale);
  std::vector<VertexId> b = PartitionByCdf(noise, bins);
  ASSERT_EQ(b.size(), static_cast<std::size_t>(bins) + 1);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), VertexId{1} << scale);
  double worst = 0;
  for (int i = 0; i < bins; ++i) {
    EXPECT_LE(b[i], b[i + 1]);
    double mass = prob.CumulativeRowProbability(b[i + 1]) -
                  prob.CumulativeRowProbability(b[i]);
    worst = std::max(worst, mass);
  }
  // No bin may exceed its fair share by more than one head vertex's mass.
  EXPECT_LE(worst, 1.0 / bins + prob.MaxRowProbability() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionPropertyTest,
    ::testing::Combine(::testing::ValuesIn(kSeeds),
                       ::testing::Values(2, 5, 16, 61)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_bins" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tg::core
