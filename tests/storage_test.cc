#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rng/random.h"
#include "storage/external_sorter.h"
#include "storage/file_io.h"
#include "storage/temp_dir.h"
#include "util/common.h"

namespace tg::storage {
namespace {

TEST(TempDirTest, CreatesAndCleansUp) {
  std::string path;
  {
    TempDir dir;
    path = dir.path();
    EXPECT_TRUE(std::filesystem::exists(path));
    FileWriter w;
    ASSERT_TRUE(w.Open(dir.File("x.bin")).ok());
    w.Append("abc", 3);
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FileIoTest, RoundTrip48And64) {
  TempDir dir;
  std::string path = dir.File("io.bin");
  {
    FileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    w.Append48(0);
    w.Append48((1ULL << 48) - 1);
    w.Append48(123456789012345ULL);
    w.Append64(~0ULL);
    w.Append64(42);
    ASSERT_TRUE(w.Close().ok());
  }
  FileReader r;
  ASSERT_TRUE(r.Open(path).ok());
  std::uint64_t v;
  ASSERT_TRUE(r.Read48(&v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(r.Read48(&v));
  EXPECT_EQ(v, (1ULL << 48) - 1);
  ASSERT_TRUE(r.Read48(&v));
  EXPECT_EQ(v, 123456789012345ULL);
  ASSERT_TRUE(r.Read64(&v));
  EXPECT_EQ(v, ~0ULL);
  ASSERT_TRUE(r.Read64(&v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(r.Read48(&v));  // clean EOF
}

TEST(FileIoTest, LargeWriteBypassesBuffer) {
  TempDir dir;
  std::string path = dir.File("big.bin");
  std::vector<char> payload(5 << 20, 'x');
  {
    FileWriter w(1 << 16);  // small buffer, payload much bigger
    ASSERT_TRUE(w.Open(path).ok());
    w.Append(payload.data(), payload.size());
    EXPECT_EQ(w.bytes_written(), payload.size());
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_EQ(std::filesystem::file_size(path), payload.size());
}

TEST(FileIoTest, OpenFailureIsStatusNotCrash) {
  FileWriter w;
  EXPECT_FALSE(w.Open("/nonexistent_dir_xyz/file.bin").ok());
  FileReader r;
  EXPECT_FALSE(r.Open("/nonexistent_dir_xyz/file.bin").ok());
}

TEST(ExternalSorterTest, InMemoryOnlySort) {
  TempDir dir;
  ExternalSorter<std::uint64_t> sorter({dir.path(), 1024, "t"});
  for (std::uint64_t v : {5ULL, 3ULL, 9ULL, 1ULL}) sorter.Add(v);
  EXPECT_EQ(sorter.num_runs(), 0u);  // fits in buffer
  std::vector<std::uint64_t> out;
  sorter.Merge(false, [&](const std::uint64_t& v) { out.push_back(v); });
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 3, 5, 9}));
}

TEST(ExternalSorterTest, SpillsAndMergesAcrossRuns) {
  TempDir dir;
  ExternalSorter<std::uint64_t> sorter({dir.path(), 100, "t"});
  rng::Rng rng(3);
  std::vector<std::uint64_t> reference;
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.NextUint64();
    sorter.Add(v);
    reference.push_back(v);
  }
  EXPECT_GT(sorter.num_runs(), 50u);
  EXPECT_GT(sorter.bytes_spilled(), 0u);
  std::sort(reference.begin(), reference.end());
  std::vector<std::uint64_t> out;
  std::uint64_t n = sorter.Merge(false, [&](const std::uint64_t& v) {
    out.push_back(v);
  });
  EXPECT_EQ(n, reference.size());
  EXPECT_EQ(out, reference);
}

TEST(ExternalSorterTest, DedupRemovesDuplicatesAcrossRuns) {
  TempDir dir;
  ExternalSorter<std::uint64_t> sorter({dir.path(), 64, "t"});
  std::set<std::uint64_t> reference;
  rng::Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t v = rng.NextBounded(500);  // heavy duplication
    sorter.Add(v);
    reference.insert(v);
  }
  std::vector<std::uint64_t> out;
  std::uint64_t n =
      sorter.Merge(true, [&](const std::uint64_t& v) { out.push_back(v); });
  EXPECT_EQ(n, reference.size());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
  EXPECT_EQ(std::vector<std::uint64_t>(reference.begin(), reference.end()),
            out);
}

TEST(ExternalSorterTest, SortsEdgeRecords) {
  TempDir dir;
  ExternalSorter<Edge> sorter({dir.path(), 128, "edges"});
  rng::Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    sorter.Add(Edge{rng.NextBounded(100), rng.NextBounded(100)});
  }
  Edge last{0, 0};
  bool first = true;
  std::uint64_t n = sorter.Merge(true, [&](const Edge& e) {
    if (!first) {
      EXPECT_LT(last, e);
    }
    last = e;
    first = false;
  });
  EXPECT_GT(n, 0u);
  EXPECT_LE(n, 3000u);
}

TEST(ExternalSorterTest, EmptyInput) {
  TempDir dir;
  ExternalSorter<std::uint64_t> sorter({dir.path(), 16, "e"});
  std::uint64_t n = sorter.Merge(true, [](const std::uint64_t&) {
    FAIL() << "callback on empty input";
  });
  EXPECT_EQ(n, 0u);
}

TEST(ExternalSorterTest, RunFilesCleanedUpOnDestruction) {
  TempDir dir;
  {
    ExternalSorter<std::uint64_t> sorter({dir.path(), 16, "c"});
    for (std::uint64_t i = 0; i < 1000; ++i) sorter.Add(i);
    EXPECT_GT(sorter.num_runs(), 0u);
  }
  // Only the directory itself remains.
  int files = 0;
  for (auto it : std::filesystem::directory_iterator(dir.path())) {
    (void)it;
    ++files;
  }
  EXPECT_EQ(files, 0);
}

}  // namespace
}  // namespace tg::storage
