#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "analysis/degree_dist.h"
#include "erv/erv_generator.h"
#include "gmark/graph_config.h"

namespace tg::erv {
namespace {

using analysis::DegreeHistogram;

ErvStats Collect(const ErvOptions& options,
                 std::vector<std::uint32_t>* out_degrees,
                 std::vector<std::uint32_t>* in_degrees) {
  out_degrees->assign(options.num_sources, 0);
  in_degrees->assign(options.num_destinations, 0);
  return GenerateErv(options, [&](VertexId src, VertexId dst) {
    ++(*out_degrees)[src];
    ++(*in_degrees)[dst];
  });
}

TEST(ErvTest, EdgeCountNearTarget) {
  ErvOptions options;
  options.num_sources = 1 << 14;
  options.num_destinations = 1 << 14;
  options.num_edges = 1 << 17;
  std::vector<std::uint32_t> out, in;
  ErvStats stats = Collect(options, &out, &in);
  double expected = static_cast<double>(options.num_edges);
  EXPECT_NEAR(static_cast<double>(stats.num_edges), expected,
              0.02 * expected);
}

TEST(ErvTest, AllIdsWithinRanges) {
  ErvOptions options;
  options.num_sources = 1000;  // deliberately not a power of two
  options.num_destinations = 300;
  options.num_edges = 20000;
  std::uint64_t count = 0;
  GenerateErv(options, [&](VertexId src, VertexId dst) {
    EXPECT_LT(src, options.num_sources);
    EXPECT_LT(dst, options.num_destinations);
    ++count;
  });
  EXPECT_GT(count, 0u);
}

TEST(ErvTest, NoDuplicateEdgesPerSource) {
  ErvOptions options;
  options.num_sources = 500;
  options.num_destinations = 400;
  options.num_edges = 30000;
  std::set<std::pair<VertexId, VertexId>> seen;
  std::uint64_t count = 0;
  GenerateErv(options, [&](VertexId src, VertexId dst) {
    EXPECT_TRUE(seen.emplace(src, dst).second)
        << "duplicate edge " << src << "->" << dst;
    ++count;
  });
  EXPECT_EQ(seen.size(), count);
}

TEST(ErvTest, ZipfianOutSlopeIsControllable) {
  // Section 6.1: the ERV model precisely controls the Zipf slope — the
  // popcount-class slope of the out-degrees equals the configured value.
  for (double slope : {-1.0, -1.662, -2.2}) {
    ErvOptions options;
    options.num_sources = 1 << 15;
    options.num_destinations = 1 << 15;
    options.num_edges = 16ULL << 15;
    options.out_degree = DegreeSpec::Zipfian(slope);
    options.in_degree = DegreeSpec::Gaussian();
    std::vector<std::uint32_t> out, in;
    Collect(options, &out, &in);
    EXPECT_NEAR(analysis::PopcountClassSlope(out), slope, 0.12)
        << "slope " << slope;
  }
}

TEST(ErvTest, GaussianInDegreeMatchesBinomialMoments) {
  // Figure 10(b): Gaussian in-degree with mu = |E| / |Vdst|.
  ErvOptions options;
  options.num_sources = 1 << 14;
  options.num_destinations = 1 << 12;
  options.num_edges = 1 << 17;
  options.out_degree = DegreeSpec::Zipfian(-1.662);
  options.in_degree = DegreeSpec::Gaussian();
  std::vector<std::uint32_t> out, in;
  ErvStats stats = Collect(options, &out, &in);

  DegreeHistogram h = DegreeHistogram::FromDegrees(in, /*include_zero=*/true);
  double mu = static_cast<double>(stats.num_edges) /
              static_cast<double>(options.num_destinations);
  EXPECT_NEAR(h.MeanDegree(), mu, 0.05 * mu);
  // Binomial(n, 1/V) stddev ~ sqrt(mu); allow slack for dedup effects.
  EXPECT_NEAR(h.StddevDegree(), std::sqrt(mu), 0.5 * std::sqrt(mu));
  // A Gaussian has no power-law head: max in-degree stays within ~6 sigma.
  EXPECT_LT(static_cast<double>(h.MaxDegree()), mu + 8 * std::sqrt(mu));
}

TEST(ErvTest, ZipfianInDegreeHasHeavyTail) {
  ErvOptions options;
  options.num_sources = 1 << 13;
  options.num_destinations = 1 << 13;
  options.num_edges = 1 << 16;
  options.out_degree = DegreeSpec::Gaussian();
  options.in_degree = DegreeSpec::Zipfian(-2.0);
  std::vector<std::uint32_t> out, in;
  ErvStats stats = Collect(options, &out, &in);
  DegreeHistogram h = DegreeHistogram::FromDegrees(in);
  double mu = static_cast<double>(stats.num_edges) /
              static_cast<double>(options.num_destinations);
  // Heavy tail: the hub has far more than the mean in-degree, and the
  // popcount-class slope matches the configured -2.0.
  EXPECT_GT(static_cast<double>(h.MaxDegree()), 10 * mu);
  EXPECT_NEAR(analysis::PopcountClassSlope(in), -2.0, 0.2);
}

TEST(ErvTest, UniformOutDegreesWithinBounds) {
  ErvOptions options;
  options.num_sources = 5000;
  options.num_destinations = 5000;
  options.out_degree = DegreeSpec::Uniform(2, 7);
  options.in_degree = DegreeSpec::Gaussian();
  std::vector<std::uint32_t> out, in;
  Collect(options, &out, &in);
  std::uint64_t total = 0;
  for (std::uint32_t d : out) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 7u);
    total += d;
  }
  EXPECT_NEAR(static_cast<double>(total) / 5000, 4.5, 0.1);
}

TEST(ErvTest, UniformDegreeOneFanout) {
  // The bibliography schema uses uniform:1:1 for paper->journal: every
  // source gets exactly one edge.
  ErvOptions options;
  options.num_sources = 3000;
  options.num_destinations = 100;
  options.out_degree = DegreeSpec::Uniform(1, 1);
  options.in_degree = DegreeSpec::Zipfian(-2.0);
  std::vector<std::uint32_t> out, in;
  ErvStats stats = Collect(options, &out, &in);
  EXPECT_EQ(stats.num_edges, 3000u);
  for (std::uint32_t d : out) EXPECT_EQ(d, 1u);
}

TEST(ErvTest, DeterministicGivenSeed) {
  ErvOptions options;
  options.num_sources = 1000;
  options.num_destinations = 1000;
  options.num_edges = 10000;
  std::vector<std::pair<VertexId, VertexId>> run1, run2;
  GenerateErv(options, [&](VertexId s, VertexId d) { run1.emplace_back(s, d); });
  GenerateErv(options, [&](VertexId s, VertexId d) { run2.emplace_back(s, d); });
  EXPECT_EQ(run1, run2);
  options.rng_seed = 91;
  std::vector<std::pair<VertexId, VertexId>> run3;
  GenerateErv(options, [&](VertexId s, VertexId d) { run3.emplace_back(s, d); });
  EXPECT_NE(run1, run3);
}

TEST(ErvTest, SeedForSpecMapsPerTable3) {
  model::SeedMatrix zipf = SeedForSpec(DegreeSpec::Zipfian(-1.5));
  EXPECT_NEAR(zipf.TheoreticalOutSlope(), -1.5, 1e-9);
  model::SeedMatrix gauss = SeedForSpec(DegreeSpec::Gaussian());
  EXPECT_EQ(gauss, model::SeedMatrix::ErdosRenyi());
}

TEST(ErvTest, EmpiricalOutDegreesFollowFrequencyTable) {
  // Data-driven extension: degrees drawn from an explicit frequency table.
  ErvOptions options;
  options.num_sources = 30000;
  options.num_destinations = 1 << 14;
  options.out_degree = DegreeSpec::Empirical({{1, 60}, {4, 30}, {50, 10}});
  options.in_degree = DegreeSpec::Gaussian();
  std::vector<std::uint32_t> out, in;
  Collect(options, &out, &in);

  std::map<std::uint32_t, int> histogram;
  for (std::uint32_t d : out) ++histogram[d];
  // Only the three configured degrees occur.
  ASSERT_EQ(histogram.size(), 3u);
  EXPECT_NEAR(histogram[1], 18000, 500);   // 60%
  EXPECT_NEAR(histogram[4], 9000, 450);    // 30%
  EXPECT_NEAR(histogram[50], 3000, 300);   // 10%
}

TEST(ErvTest, EmpiricalRoundTripsThroughGmarkConfigText) {
  gmark::GraphConfig config;
  const char* text = R"(
nodes 1000
edges 5000
type a 0.5
type b 0.5
predicate p 1.0
schema a p b out=empirical:2*70,9*30 in=gaussian
)";
  ASSERT_TRUE(gmark::GraphConfig::Parse(text, &config).ok());
  ASSERT_EQ(config.schema.size(), 1u);
  const DegreeSpec& spec = config.schema[0].out_degree;
  EXPECT_EQ(spec.kind, DegreeSpec::Kind::kEmpirical);
  ASSERT_NE(spec.empirical, nullptr);
  ASSERT_EQ(spec.empirical->size(), 2u);
  EXPECT_EQ((*spec.empirical)[0], (std::pair<std::uint64_t, std::uint64_t>{2, 70}));
  EXPECT_EQ((*spec.empirical)[1], (std::pair<std::uint64_t, std::uint64_t>{9, 30}));
  // And the text form round-trips.
  gmark::GraphConfig reparsed;
  ASSERT_TRUE(gmark::GraphConfig::Parse(config.ToString(), &reparsed).ok());
  EXPECT_EQ(reparsed.schema[0].out_degree.kind,
            DegreeSpec::Kind::kEmpirical);
}

TEST(ErvTest, SmallDestinationRangeDoesNotOverflow) {
  ErvOptions options;
  options.num_sources = 100;
  options.num_destinations = 1;
  options.out_degree = DegreeSpec::Uniform(1, 5);
  options.in_degree = DegreeSpec::Gaussian();
  std::vector<std::uint32_t> out, in;
  ErvStats stats = Collect(options, &out, &in);
  // Only one destination exists; dedup caps every scope at one edge.
  EXPECT_EQ(stats.num_edges, 100u);
  EXPECT_EQ(in[0], 100u);
}

}  // namespace
}  // namespace tg::erv
