// Tests for tg::fault: plan parsing, deterministic injection, crash
// recovery (bit-identical output), the chunk-commit journal, and resumable
// format writers. The die-based tests use gtest death tests: the child
// process is hard-killed by the injector (std::_Exit(86)) and the parent
// resumes from the files the child left behind — the closest an in-process
// test gets to kill -9.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/network_model.h"
#include "cluster/sim_cluster.h"
#include "cluster/trilliong_cluster.h"
#include "core/scheduler.h"
#include "core/scope_sink.h"
#include "core/trilliong.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/journal.h"
#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "storage/file_io.h"

namespace tg::fault {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream data;
  data << in.rdbuf();
  return data.str();
}

/// Thread-safe adjacency collector (scopes arrive from several workers).
class LockedMapSink : public core::ScopeSink {
 public:
  LockedMapSink(std::map<VertexId, std::vector<VertexId>>* out,
                std::mutex* mu)
      : out_(out), mu_(mu) {}
  void ConsumeScope(VertexId u, const VertexId* adj,
                    std::size_t n) override {
    std::lock_guard<std::mutex> lock(*mu_);
    (*out_)[u].assign(adj, adj + n);
  }

 private:
  std::map<VertexId, std::vector<VertexId>>* out_;
  std::mutex* mu_;
};

/// Clears the process-wide storage failure hook on scope exit, so a failing
/// test cannot poison later ones.
struct IoHookGuard {
  ~IoHookGuard() { storage::IoFailureHookRef() = nullptr; }
};

FaultPlan MustParse(const std::string& text) {
  FaultPlan plan;
  Status s = FaultPlan::Parse(text, &plan);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return plan;
}

// ---------------------------------------------------------------------------
// Plan grammar.

TEST(FaultPlanTest, ParsesFullGrammar) {
  FaultPlan plan = MustParse(
      "seed=7, m3:crash@chunk=120, m1:slow@2x, *:crash@p=0.001, "
      "m0:die@chunk=40, m2:flaky@p=0.25, m4:iofail@chunk=9, "
      "m5:crash@shuffle=2");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 7u);

  EXPECT_EQ(plan.rules[0].machine, 3);
  EXPECT_EQ(plan.rules[0].action, FaultAction::kCrash);
  EXPECT_EQ(plan.rules[0].at_chunk, 120u);

  EXPECT_EQ(plan.rules[1].machine, 1);
  EXPECT_EQ(plan.rules[1].action, FaultAction::kSlow);
  EXPECT_DOUBLE_EQ(plan.rules[1].slow_factor, 2.0);

  EXPECT_EQ(plan.rules[2].machine, -1);  // '*'
  EXPECT_DOUBLE_EQ(plan.rules[2].probability, 0.001);

  EXPECT_EQ(plan.rules[3].action, FaultAction::kDie);
  EXPECT_EQ(plan.rules[4].action, FaultAction::kFlaky);
  EXPECT_EQ(plan.rules[5].action, FaultAction::kIoFail);
  EXPECT_EQ(plan.rules[6].at_shuffle, 2u);
}

TEST(FaultPlanTest, RejectsMalformedClauses) {
  const char* bad[] = {
      "m1",                  // no action
      "m1:crash",            // no trigger
      "m1:crash@chunk=0",    // ordinal must be positive
      "m1:crash@p=1.5",      // probability out of range
      "m1:crash@p=0",        // zero probability never fires
      "m1:slow@0.5x",        // slowdown below 1
      "m1:slow@2",           // missing the 'x'
      "m1:die@p=0.1",        // die must be deterministic
      "m1:flaky@shuffle=1",  // only crash has a shuffle trigger
      "m1:explode@chunk=1",  // unknown verb
      "q1:crash@chunk=1",    // bad target
      "seed=notanumber",
  };
  for (const char* text : bad) {
    FaultPlan plan;
    EXPECT_FALSE(FaultPlan::Parse(text, &plan).ok()) << text;
  }
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  FaultPlan plan =
      MustParse("seed=99,m2:crash@chunk=5,*:flaky@p=0.125,m0:slow@3x");
  FaultPlan reparsed = MustParse(plan.ToString());
  EXPECT_EQ(reparsed.seed, plan.seed);
  ASSERT_EQ(reparsed.rules.size(), plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(reparsed.rules[i].ToString(), plan.rules[i].ToString());
  }
}

// ---------------------------------------------------------------------------
// Injector determinism.

TEST(FaultInjectorTest, ProbabilisticScheduleIsDeterministic) {
  auto schedule = [](std::uint64_t seed) {
    FaultPlan plan = MustParse("m0:flaky@p=0.2");
    plan.seed = seed;
    FaultInjector injector(std::move(plan), 2);
    std::vector<bool> fired;
    for (int i = 0; i < 512; ++i) {
      fired.push_back(injector.OnChunkBoundary(0).kind ==
                      Decision::Kind::kTransient);
    }
    return fired;
  };
  std::vector<bool> a = schedule(7);
  EXPECT_EQ(a, schedule(7));  // same seed: identical injected schedule
  EXPECT_NE(a, schedule(8));  // different seed: different schedule
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
}

TEST(FaultInjectorTest, DeterministicChunkTriggerAndDeadStickiness) {
  FaultInjector injector(MustParse("m1:crash@chunk=3"), 4);
  EXPECT_EQ(injector.OnChunkBoundary(1).kind, Decision::Kind::kNone);
  EXPECT_EQ(injector.OnChunkBoundary(1).kind, Decision::Kind::kNone);
  EXPECT_EQ(injector.OnChunkBoundary(1).kind, Decision::Kind::kCrash);
  EXPECT_TRUE(injector.machine_dead(1));
  // Dead machines stay dead; other machines are untouched.
  EXPECT_EQ(injector.OnChunkBoundary(1).kind, Decision::Kind::kCrash);
  EXPECT_EQ(injector.OnChunkBoundary(0).kind, Decision::Kind::kNone);
  EXPECT_EQ(injector.machines_alive(), 3);
}

TEST(FaultInjectorTest, SlowRuleAnnotatesWithoutConsuming) {
  FaultInjector injector(MustParse("m0:slow@2x,m0:crash@chunk=2"), 1);
  Decision first = injector.OnChunkBoundary(0);
  EXPECT_EQ(first.kind, Decision::Kind::kNone);
  EXPECT_DOUBLE_EQ(first.slow_factor, 2.0);
  EXPECT_EQ(injector.OnChunkBoundary(0).kind, Decision::Kind::kCrash);
}

// ---------------------------------------------------------------------------
// Crash recovery: output is bit-identical to a fault-free run.

std::map<VertexId, std::vector<VertexId>> ReferenceGraph(
    core::TrillionGConfig config) {
  config.num_workers = 1;
  config.fault_injector = nullptr;
  std::map<VertexId, std::vector<VertexId>> out;
  std::mutex mu;
  LockedMapSink sink(&out, &mu);
  core::GenerateToSink(config, &sink);
  return out;
}

TEST(FaultRecoveryTest, CrashedMachineChunksAreRecoveredBitIdentical) {
  for (core::Precision precision :
       {core::Precision::kDouble, core::Precision::kDoubleDouble}) {
    core::TrillionGConfig config;
    config.scale = 10;
    config.edge_factor = 8;
    config.rng_seed = 321;
    config.precision = precision;
    const std::map<VertexId, std::vector<VertexId>> reference =
        ReferenceGraph(config);

    config.num_workers = 4;
    config.chunks_per_worker = 8;
    // Boundary 1 fires at each doomed worker's FIRST injector consultation,
    // before it takes any work — deterministic regardless of how fast the
    // survivors drain the queues. (Recovery-queue traffic specifically is
    // pinned by ClusterRunSurvivesMachineCrash, where steal domains make it
    // the only path.)
    FaultInjector injector(MustParse("m1:crash@chunk=1,m2:crash@chunk=1"),
                           config.num_workers);
    config.fault_injector = &injector;

    std::map<VertexId, std::vector<VertexId>> merged;
    std::mutex mu;
    core::GenerateStats stats = core::Generate(
        config, [&](int, VertexId, VertexId) {
          return std::make_unique<LockedMapSink>(&merged, &mu);
        });
    EXPECT_EQ(merged, reference);
    EXPECT_EQ(injector.machines_alive(), 2);
    // Every chunk still ran exactly once, all on the two survivors.
    EXPECT_EQ(stats.sched_chunks,
              static_cast<std::uint64_t>(config.num_workers) *
                  config.chunks_per_worker);
  }
}

TEST(FaultRecoveryTest, ClusterRunSurvivesMachineCrash) {
  core::TrillionGConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  config.rng_seed = 11;
  const std::map<VertexId, std::vector<VertexId>> reference =
      ReferenceGraph(config);

  cluster::SimCluster sim({2, 2, 0, {}});
  FaultInjector injector(MustParse("m1:crash@chunk=2"), sim.num_machines());
  sim.set_fault_injector(&injector);

  std::map<VertexId, std::vector<VertexId>> merged;
  std::mutex mu;
  cluster::ClusterGenerateStats stats = cluster::GenerateOnCluster(
      &sim, config, [&](int, VertexId, VertexId) {
        return std::make_unique<LockedMapSink>(&merged, &mu);
      });
  EXPECT_EQ(merged, reference);
  EXPECT_GT(stats.generate.sched_recovered, 0u);
}

TEST(FaultRecoveryTest, AllMachinesCrashedThrowsFaultError) {
  core::TrillionGConfig config;
  config.scale = 9;
  config.num_workers = 2;
  config.chunks_per_worker = 4;
  FaultInjector injector(MustParse("*:crash@chunk=1"), config.num_workers);
  config.fault_injector = &injector;
  std::map<VertexId, std::vector<VertexId>> merged;
  std::mutex mu;
  EXPECT_THROW(core::Generate(config,
                              [&](int, VertexId, VertexId) {
                                return std::make_unique<LockedMapSink>(
                                    &merged, &mu);
                              }),
               FaultError);
}

TEST(FaultRecoveryTest, EnvPlanArmsGenerate) {
  ::setenv("TG_FAULT_PLAN", "m1:crash@chunk=1", 1);
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("TG_FAULT_PLAN"); }
  } guard;
  core::TrillionGConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  config.rng_seed = 5;
  const std::map<VertexId, std::vector<VertexId>> reference =
      ReferenceGraph(config);
  config.num_workers = 2;
  std::map<VertexId, std::vector<VertexId>> merged;
  std::mutex mu;
  obs::Counter* injected = obs::GetCounter("fault.injected");
  const std::uint64_t before = injected->value();
  core::Generate(config, [&](int, VertexId, VertexId) {
    return std::make_unique<LockedMapSink>(&merged, &mu);
  });
  EXPECT_EQ(merged, reference);
  // The env-armed injector fired: machine 1's crash was injected even
  // though the caller never constructed a FaultInjector.
  EXPECT_GE(injected->value() - before, 1u);
}

// ---------------------------------------------------------------------------
// RunParallel aggregates every worker failure (satellite bugfix).

TEST(FaultRecoveryTest, RunParallelCountsEveryWorkerFailure) {
  obs::Counter* failures = obs::GetCounter("cluster.worker_failures");
  const std::uint64_t before = failures->value();
  cluster::SimCluster sim({2, 2, 0, {}});
  EXPECT_THROW(sim.RunParallel([](int w) {
    if (w == 1 || w == 3) throw std::runtime_error("boom " + std::to_string(w));
  }),
               std::runtime_error);
  EXPECT_EQ(failures->value() - before, 2u);
}

// ---------------------------------------------------------------------------
// Shuffle-heavy recovery cost: a crash during a collective charges
// re-transfer wire time instead of recomputation (fig14 asymmetry).

TEST(FaultRecoveryTest, ShuffleCrashChargesRetransfer) {
  auto make_outbox = [] {
    std::vector<std::vector<std::vector<std::uint64_t>>> outbox(2);
    outbox[0].resize(2);
    outbox[1].resize(2);
    outbox[0][1].assign(1 << 16, 1);  // cross-machine payload
    return outbox;
  };
  cluster::SimCluster baseline(
      {2, 1, 0, cluster::NetworkModel::OneGigabitEthernet()});
  baseline.Shuffle(make_outbox());
  const double clean_seconds = baseline.network_seconds();
  ASSERT_GT(clean_seconds, 0.0);

  obs::Counter* retransfers = obs::GetCounter("fault.shuffle_retransfers");
  const std::uint64_t before = retransfers->value();
  cluster::SimCluster faulty(
      {2, 1, 0, cluster::NetworkModel::OneGigabitEthernet()});
  FaultInjector injector(MustParse("m1:crash@shuffle=1"),
                         faulty.num_machines());
  faulty.set_fault_injector(&injector);
  faulty.Shuffle(make_outbox());
  EXPECT_GT(faulty.network_seconds(), clean_seconds * 1.5);
  EXPECT_EQ(retransfers->value() - before, 1u);
}

// ---------------------------------------------------------------------------
// Format writers stop accepting edges after an I/O error (satellite bugfix).

TEST(WriterShortCircuitTest, TsvFreezesAfterInjectedIoError) {
  IoHookGuard guard;
  const std::string path = ::testing::TempDir() + "tg_fault_sc.tsv";
  format::TsvWriter writer(path);
  const VertexId adj[3] = {1, 2, 3};
  writer.ConsumeScope(0, adj, 3);
  std::string token;
  ASSERT_TRUE(writer.CommitState(&token).ok());
  storage::IoFailureHookRef() = [](const std::string&) { return true; };
  writer.ConsumeScope(1, adj, 3);
  EXPECT_FALSE(writer.CommitState(&token).ok());  // flush hits the bad disk
  storage::IoFailureHookRef() = nullptr;
  const std::uint64_t frozen = writer.bytes_written();
  writer.ConsumeScope(2, adj, 3);  // must be dropped, not buffered
  writer.WriteEdge(7, 8);
  EXPECT_EQ(writer.bytes_written(), frozen);
  EXPECT_FALSE(writer.status().ok());
  std::remove(path.c_str());
}

TEST(WriterShortCircuitTest, Adj6FreezesAfterInjectedIoError) {
  IoHookGuard guard;
  const std::string path = ::testing::TempDir() + "tg_fault_sc.adj6";
  format::Adj6Writer writer(path);
  const VertexId adj[2] = {4, 5};
  writer.ConsumeScope(0, adj, 2);
  std::string token;
  ASSERT_TRUE(writer.CommitState(&token).ok());
  storage::IoFailureHookRef() = [](const std::string&) { return true; };
  writer.ConsumeScope(1, adj, 2);
  EXPECT_FALSE(writer.CommitState(&token).ok());
  storage::IoFailureHookRef() = nullptr;
  const std::uint64_t frozen = writer.bytes_written();
  writer.ConsumeScope(2, adj, 2);
  EXPECT_EQ(writer.bytes_written(), frozen);
  EXPECT_FALSE(writer.status().ok());
  std::remove(path.c_str());
}

TEST(WriterShortCircuitTest, Csr6FreezesAfterInjectedIoError) {
  IoHookGuard guard;
  const std::string path = ::testing::TempDir() + "tg_fault_sc.csr6";
  {
    format::Csr6Writer writer(path, 0, 8);
    const VertexId adj[2] = {4, 5};
    writer.ConsumeScope(0, adj, 2);
    std::string token;
    ASSERT_TRUE(writer.CommitState(&token).ok());
    storage::IoFailureHookRef() = [](const std::string&) { return true; };
    writer.ConsumeScope(1, adj, 2);
    EXPECT_FALSE(writer.CommitState(&token).ok());
    storage::IoFailureHookRef() = nullptr;
    const std::uint64_t frozen = writer.bytes_written();
    writer.ConsumeScope(2, adj, 2);
    EXPECT_EQ(writer.bytes_written(), frozen);
    EXPECT_FALSE(writer.status().ok());
  }
  std::remove(path.c_str());
  std::remove(format::Csr6Writer::SidecarPath(path).c_str());
}

// ---------------------------------------------------------------------------
// The chunk-commit journal.

TEST(JournalTest, RoundTripIgnoresTornTail) {
  const std::string path = ::testing::TempDir() + "tg_fault_journal_rt";
  {
    std::unique_ptr<Journal> journal;
    ASSERT_TRUE(Journal::Start(path, 0xABCDEF, &journal).ok());
    ASSERT_TRUE(journal->AppendCommit(0, 0, "bytes=10").ok());
    ASSERT_TRUE(journal->AppendCommit(1, 0, "bytes=11").ok());
    ASSERT_TRUE(journal->AppendCommit(0, 1, "bytes=20").ok());
  }
  {
    // Simulate a kill mid-append: a record with no trailing newline.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "c 0 2 byt");
    std::fclose(f);
  }
  JournalState state;
  ASSERT_TRUE(LoadJournal(path, &state).ok());
  EXPECT_EQ(state.fingerprint, 0xABCDEFu);
  EXPECT_FALSE(state.done);
  ASSERT_EQ(state.ranges.size(), 2u);
  EXPECT_EQ(state.ranges.at(0).next_seq, 2u);  // torn "seq 2" record ignored
  EXPECT_EQ(state.ranges.at(0).sink_state, "bytes=20");
  EXPECT_EQ(state.ranges.at(1).next_seq, 1u);

  // Reopen truncates nothing; done marks the run complete.
  std::unique_ptr<Journal> journal;
  ASSERT_TRUE(Journal::Reopen(path, &journal).ok());
  ASSERT_TRUE(journal->AppendDone().ok());
  journal.reset();
  ASSERT_TRUE(LoadJournal(path, &state).ok());
  EXPECT_TRUE(state.done);
  std::remove(path.c_str());
}

TEST(JournalTest, LoadReportsMissingAndCorrupt) {
  JournalState state;
  EXPECT_FALSE(
      LoadJournal(::testing::TempDir() + "tg_no_such_journal", &state).ok());
  const std::string path = ::testing::TempDir() + "tg_fault_journal_bad";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fprintf(f, "NOTAJOURNAL 1 00\n");
    std::fclose(f);
  }
  EXPECT_FALSE(LoadJournal(path, &state).ok());
  std::remove(path.c_str());
}

TEST(JournalTest, FingerprintCoversEveryOutputShapingParameter) {
  core::TrillionGConfig config;
  const std::uint64_t base = ConfigFingerprint(config, "adj6");
  EXPECT_EQ(base, ConfigFingerprint(config, "adj6"));  // stable
  EXPECT_NE(base, ConfigFingerprint(config, "tsv"));
  core::TrillionGConfig changed = config;
  changed.rng_seed ^= 1;
  EXPECT_NE(base, ConfigFingerprint(changed, "adj6"));
  changed = config;
  changed.num_workers += 1;  // changes shard layout and chunk numbering
  EXPECT_NE(base, ConfigFingerprint(changed, "adj6"));
  changed = config;
  changed.precision = core::Precision::kDoubleDouble;
  EXPECT_NE(base, ConfigFingerprint(changed, "adj6"));
}

// ---------------------------------------------------------------------------
// Crash / resume round trips: an interrupted run continued from its commit
// tokens produces byte-identical files, for every format.

struct CommitLog {
  std::mutex mu;
  std::map<int, std::pair<std::uint32_t, std::string>> tokens;
};

core::TrillionGConfig ResumeBaseConfig() {
  core::TrillionGConfig config;
  config.scale = 9;
  config.edge_factor = 8;
  config.rng_seed = 77;
  config.num_workers = 2;
  config.chunks_per_worker = 6;
  return config;
}

std::function<void(const core::Chunk&, core::ScopeSink*)> CommitHook(
    CommitLog* log) {
  return [log](const core::Chunk& chunk, core::ScopeSink* sink) {
    auto* resumable = dynamic_cast<core::ResumableSink*>(sink);
    ASSERT_NE(resumable, nullptr);
    std::string token;
    if (!resumable->CommitState(&token).ok()) return;
    std::lock_guard<std::mutex> lock(log->mu);
    log->tokens[chunk.range] = {chunk.seq + 1, token};
  };
}

/// One crash/resume round trip: generate reference shards, run the same
/// config under an all-machines-crash plan while logging commit tokens,
/// then resume from the tokens and require byte-identical shards.
void CrashResumeRoundTrip(
    const std::string& format,
    const std::function<std::unique_ptr<core::ScopeSink>(
        const std::string& path, VertexId lo, VertexId hi)>& fresh,
    const std::function<std::unique_ptr<core::ScopeSink>(
        const std::string& path, VertexId lo, VertexId hi,
        const std::string& state)>& resumed) {
  const core::TrillionGConfig base = ResumeBaseConfig();
  const std::string dir = ::testing::TempDir();
  auto shard = [&](const std::string& prefix, int worker) {
    return dir + "tg_fault_" + prefix + ".w" + std::to_string(worker) + "." +
           format;
  };

  // Reference: one uninterrupted run.
  {
    core::TrillionGConfig config = base;
    core::Generate(config, [&](int w, VertexId lo, VertexId hi) {
      return fresh(shard("ref", w), lo, hi);
    });
  }

  // Interrupted run: both machines crash after a few committed chunks.
  CommitLog log;
  {
    core::TrillionGConfig config = base;
    FaultInjector injector(MustParse("m0:crash@chunk=4,m1:crash@chunk=3"),
                           config.num_workers);
    config.fault_injector = &injector;
    config.chunk_commit_hook = CommitHook(&log);
    EXPECT_THROW(
        core::Generate(config,
                       [&](int w, VertexId lo, VertexId hi) {
                         return fresh(shard("cut", w), lo, hi);
                       }),
        FaultError);
  }
  ASSERT_FALSE(log.tokens.empty());

  // Resume: continue exactly where the committed tokens left off.
  {
    core::TrillionGConfig config = base;
    config.resume_next_seq.assign(config.num_workers, 0);
    for (const auto& [range, entry] : log.tokens) {
      config.resume_next_seq[range] = entry.first;
    }
    config.chunk_commit_hook = CommitHook(&log);
    core::Generate(config, [&](int w, VertexId lo, VertexId hi)
                               -> std::unique_ptr<core::ScopeSink> {
      const auto it = log.tokens.find(w);
      if (it != log.tokens.end()) {
        return resumed(shard("cut", w), lo, hi, it->second.second);
      }
      return fresh(shard("cut", w), lo, hi);
    });
  }

  for (int w = 0; w < base.num_workers; ++w) {
    EXPECT_EQ(ReadFileBytes(shard("cut", w)), ReadFileBytes(shard("ref", w)))
        << format << " shard " << w << " diverged after resume";
    std::remove(shard("cut", w).c_str());
    std::remove(shard("ref", w).c_str());
    if (format == "csr6") {
      std::remove(format::Csr6Writer::SidecarPath(shard("cut", w)).c_str());
      std::remove(format::Csr6Writer::SidecarPath(shard("ref", w)).c_str());
    }
  }
}

TEST(ResumeTest, TsvCrashResumeRoundTrip) {
  CrashResumeRoundTrip(
      "tsv",
      [](const std::string& path, VertexId, VertexId) {
        return std::make_unique<format::TsvWriter>(path);
      },
      [](const std::string& path, VertexId, VertexId,
         const std::string& state) {
        return std::make_unique<format::TsvWriter>(path, false,
                                                   core::ResumeFrom{state});
      });
}

TEST(ResumeTest, Adj6CrashResumeRoundTrip) {
  CrashResumeRoundTrip(
      "adj6",
      [](const std::string& path, VertexId, VertexId) {
        return std::make_unique<format::Adj6Writer>(path);
      },
      [](const std::string& path, VertexId, VertexId,
         const std::string& state) {
        return std::make_unique<format::Adj6Writer>(path,
                                                    core::ResumeFrom{state});
      });
}

TEST(ResumeTest, Csr6CrashResumeRoundTrip) {
  CrashResumeRoundTrip(
      "csr6",
      [](const std::string& path, VertexId lo, VertexId hi) {
        return std::make_unique<format::Csr6Writer>(path, lo, hi);
      },
      [](const std::string& path, VertexId lo, VertexId hi,
         const std::string& state) {
        return std::make_unique<format::Csr6Writer>(path, lo, hi,
                                                    core::ResumeFrom{state});
      });
}

TEST(ResumeTest, ResumedWriterRejectsMalformedToken) {
  const std::string path = ::testing::TempDir() + "tg_fault_badtoken.adj6";
  format::Adj6Writer writer(path, core::ResumeFrom{"garbage"});
  EXPECT_FALSE(writer.status().ok());
  format::Csr6Writer csr(path, 0, 16, core::ResumeFrom{"bytes=1,next=2"});
  EXPECT_FALSE(csr.status().ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// die@chunk: the process is hard-killed; a new process resumes from the
// journal file and reproduces the uninterrupted bytes (the gen_cli --resume
// contract, exercised at the library level).

using ResumeDeathTest = ::testing::Test;

TEST(ResumeDeathTest, DieThenResumeFromJournalIsByteIdentical) {
  // One worker so the schedule is fixed: it must take its own six chunks in
  // order, so die@chunk=3 always lands after exactly two committed chunks.
  // (With two workers the survivor can drain every deque before the doomed
  // worker reaches its third boundary, and the die never fires.)
  core::TrillionGConfig base = ResumeBaseConfig();
  base.num_workers = 1;
  const std::string dir = ::testing::TempDir();
  const std::string journal_path = dir + "tg_fault_die.journal";
  auto shard = [&](const std::string& prefix, int worker) {
    return dir + "tg_fault_die_" + prefix + ".w" + std::to_string(worker) +
           ".adj6";
  };
  const std::uint64_t fingerprint = ConfigFingerprint(base, "adj6");

  // Reference shards.
  {
    core::TrillionGConfig config = base;
    core::Generate(config, [&](int w, VertexId, VertexId) {
      return std::make_unique<format::Adj6Writer>(shard("ref", w));
    });
  }

  // Child process: journals every commit, then dies by injection. Files the
  // child flushed survive its _Exit, exactly like a kill -9.
  auto child = [&]() {
    core::TrillionGConfig config = base;
    FaultPlan plan = MustParse("m0:die@chunk=3");
    FaultInjector injector(std::move(plan), config.num_workers);
    config.fault_injector = &injector;
    std::unique_ptr<Journal> journal;
    if (!Journal::Start(journal_path, fingerprint, &journal).ok()) {
      std::_Exit(1);
    }
    Journal* raw = journal.get();
    config.chunk_commit_hook = [raw](const core::Chunk& chunk,
                                     core::ScopeSink* sink) {
      auto* resumable = dynamic_cast<core::ResumableSink*>(sink);
      std::string token;
      if (resumable != nullptr && resumable->CommitState(&token).ok()) {
        raw->AppendCommit(chunk.range, chunk.seq, token);
      }
    };
    core::Generate(config, [&](int w, VertexId, VertexId) {
      return std::make_unique<format::Adj6Writer>(shard("cut", w));
    });
    std::_Exit(0);  // not reached: the injector kills the run first
  };
  EXPECT_EXIT(child(), ::testing::ExitedWithCode(kKilledExitCode), "");

  // Parent: load the journal the dead child left and finish the run.
  JournalState state;
  ASSERT_TRUE(LoadJournal(journal_path, &state).ok());
  EXPECT_EQ(state.fingerprint, fingerprint);
  EXPECT_FALSE(state.done);
  ASSERT_EQ(state.ranges.size(), 1u);
  EXPECT_EQ(state.ranges.at(0).next_seq, 2u);

  {
    core::TrillionGConfig config = base;
    config.resume_next_seq.assign(config.num_workers, 0);
    for (const auto& [range, range_state] : state.ranges) {
      config.resume_next_seq[range] = range_state.next_seq;
    }
    core::Generate(config, [&](int w, VertexId, VertexId)
                               -> std::unique_ptr<core::ScopeSink> {
      const auto it = state.ranges.find(w);
      if (it != state.ranges.end()) {
        return std::make_unique<format::Adj6Writer>(
            shard("cut", w), core::ResumeFrom{it->second.sink_state});
      }
      return std::make_unique<format::Adj6Writer>(shard("cut", w));
    });
  }

  for (int w = 0; w < base.num_workers; ++w) {
    EXPECT_EQ(ReadFileBytes(shard("cut", w)), ReadFileBytes(shard("ref", w)))
        << "shard " << w;
    std::remove(shard("cut", w).c_str());
    std::remove(shard("ref", w).c_str());
  }
  std::remove(journal_path.c_str());
}

// ---------------------------------------------------------------------------
// Observability: the injected schedule lands in the run report.

TEST(FaultReportTest, InjectedScheduleAppearsInRunReport) {
  obs::Registry::Global().Reset();
  core::TrillionGConfig config;
  config.scale = 9;
  config.num_workers = 2;
  // Slow machine 0 so it sleeps (yielding the CPU) after every chunk: the
  // doomed machine reliably reaches its second chunk boundary and orphans
  // its remaining deque onto the recovery queue before the survivor can
  // steal it dry. Without the slowdown, scale-9 chunks are so fast that
  // machine 0 can drain both deques first, leaving nothing to recover.
  FaultInjector injector(MustParse("m0:slow@100x,m1:crash@chunk=2"),
                         config.num_workers);
  config.fault_injector = &injector;
  std::map<VertexId, std::vector<VertexId>> merged;
  std::mutex mu;
  core::Generate(config, [&](int, VertexId, VertexId) {
    return std::make_unique<LockedMapSink>(&merged, &mu);
  });

  obs::RunReport report = obs::RunReport::Collect();
  ASSERT_FALSE(report.fault.empty());
  EXPECT_EQ(report.fault[0].kind, "fault.crash");
  EXPECT_EQ(report.fault[0].machine, 1);
  EXPECT_EQ(report.fault[0].ordinal, 2u);
  EXPECT_GE(report.counters["fault.injected"], 1u);
  EXPECT_GE(report.counters["fault.injected_crashes"], 1u);
  EXPECT_GE(report.counters["fault.recovered_chunks"], 1u);

  // The fault section survives a JSON round trip and shows in the table.
  obs::RunReport parsed;
  ASSERT_TRUE(obs::RunReport::FromJson(report.ToJson(), &parsed).ok());
  ASSERT_EQ(parsed.fault.size(), report.fault.size());
  EXPECT_EQ(parsed.fault[0].kind, report.fault[0].kind);
  EXPECT_EQ(parsed.fault[0].detail, report.fault[0].detail);
  EXPECT_NE(report.ToTable().find("-- fault"), std::string::npos);
}

}  // namespace
}  // namespace tg::fault
