#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/partitioner.h"
#include "core/trilliong.h"
#include "model/noise.h"

namespace tg::core {
namespace {

/// Collects scopes in memory, checking in-order delivery.
class VectorSink : public ScopeSink {
 public:
  void ConsumeScope(VertexId u, const VertexId* adj, std::size_t n) override {
    EXPECT_TRUE(last_ == ~VertexId{0} || u > last_)
        << "out-of-order delivery: " << u << " after " << last_;
    last_ = u;
    scopes_[u].assign(adj, adj + n);
  }
  void Finish() override { ++finishes_; }

  const std::map<VertexId, std::vector<VertexId>>& scopes() const {
    return scopes_;
  }
  int finishes() const { return finishes_; }

 private:
  std::map<VertexId, std::vector<VertexId>> scopes_;
  VertexId last_ = ~VertexId{0};
  int finishes_ = 0;
};

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive hash of the full edge set: equal hashes across schedules
/// certify bit-identical output (same scopes, same adjacency order).
std::uint64_t HashEdges(
    const std::map<VertexId, std::vector<VertexId>>& scopes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [u, dsts] : scopes) {
    h = Mix(h, u);
    h = Mix(h, dsts.size());
    for (VertexId v : dsts) h = Mix(h, v);
  }
  return h;
}

/// Runs Generate with per-worker shard sinks and merges the shards.
struct MergedRun {
  std::map<VertexId, std::vector<VertexId>> scopes;
  GenerateStats stats;
};

MergedRun RunMerged(TrillionGConfig config) {
  std::vector<std::shared_ptr<VectorSink>> shards(config.num_workers);
  MergedRun out;
  out.stats = Generate(config, [&](int w, VertexId, VertexId)
                                   -> std::unique_ptr<ScopeSink> {
    shards[w] = std::make_shared<VectorSink>();
    // Non-owning forwarder so the test keeps the sink after Generate.
    class Forward : public ScopeSink {
     public:
      explicit Forward(ScopeSink* inner) : inner_(inner) {}
      void ConsumeScope(VertexId u, const VertexId* adj,
                        std::size_t n) override {
        inner_->ConsumeScope(u, adj, n);
      }
      void Finish() override { inner_->Finish(); }

     private:
      ScopeSink* inner_;
    };
    return std::make_unique<Forward>(shards[w].get());
  });
  for (const auto& shard : shards) {
    EXPECT_EQ(shard->finishes(), 1);
    for (const auto& [u, dsts] : shard->scopes()) {
      EXPECT_EQ(out.scopes.count(u), 0u) << "scope split across workers";
      out.scopes[u] = dsts;
    }
  }
  return out;
}

TEST(SchedulerTest, EdgeHashInvariantUnderWorkersAndChunking) {
  // The acceptance bar of the engine: the edge-set hash is identical for
  // every (num_workers, chunks_per_worker) combination, in both precisions.
  for (Precision precision : {Precision::kDouble, Precision::kDoubleDouble}) {
    TrillionGConfig config;
    config.scale = 11;
    config.edge_factor = 8;
    config.rng_seed = 4242;
    config.precision = precision;

    config.num_workers = 1;
    const std::uint64_t reference = HashEdges(RunMerged(config).scopes);

    for (int workers : {1, 3, 8}) {
      for (int chunks : {1, 16}) {
        config.num_workers = workers;
        config.chunks_per_worker = chunks;
        MergedRun run = RunMerged(config);
        EXPECT_EQ(HashEdges(run.scopes), reference)
            << "workers=" << workers << " chunks=" << chunks
            << " precision=" << static_cast<int>(precision);
      }
    }
  }
}

TEST(SchedulerTest, SkewedSeedStealsAndStaysOrdered) {
  // End-to-end through Generate: drag worker 0 down (its sink burns wall
  // time on every scope) so the other workers drain their own deques and
  // must steal worker 0's remaining chunks. VectorSink asserts per-shard
  // vertex order on every delivery; the merged output must still be
  // bit-identical to the single-worker reference.
  TrillionGConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  config.rng_seed = 7;
  config.seed = model::SeedMatrix(0.7, 0.15, 0.1, 0.05);  // strongly skewed

  config.num_workers = 1;
  const std::uint64_t reference = HashEdges(RunMerged(config).scopes);

  config.num_workers = 4;
  config.chunks_per_worker = 16;
  std::vector<std::shared_ptr<VectorSink>> shards(config.num_workers);
  class SlowSink : public ScopeSink {
   public:
    explicit SlowSink(ScopeSink* inner, bool slow)
        : inner_(inner), slow_(slow) {}
    void ConsumeScope(VertexId u, const VertexId* adj,
                      std::size_t n) override {
      if (slow_) std::this_thread::sleep_for(std::chrono::microseconds(200));
      inner_->ConsumeScope(u, adj, n);
    }
    void Finish() override { inner_->Finish(); }

   private:
    ScopeSink* inner_;
    bool slow_;
  };
  GenerateStats stats =
      Generate(config, [&](int w, VertexId, VertexId)
                           -> std::unique_ptr<ScopeSink> {
        shards[w] = std::make_shared<VectorSink>();
        return std::make_unique<SlowSink>(shards[w].get(), w == 0);
      });

  EXPECT_EQ(stats.sched_chunks,
            static_cast<std::uint64_t>(config.num_workers) *
                config.chunks_per_worker);
  EXPECT_GT(stats.sched_steals, 0u);
  EXPECT_GE(stats.sched_imbalance, 1.0);

  std::map<VertexId, std::vector<VertexId>> merged;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard->finishes(), 1);
    merged.insert(shard->scopes().begin(), shard->scopes().end());
  }
  EXPECT_EQ(HashEdges(merged), reference);
}

TEST(SchedulerTest, EngineStealsFromBusyWorkerAndCommitsInOrder) {
  // Direct engine test with controlled chunk bodies: worker 0 owns every
  // chunk and each chunk takes ~10ms, so workers 1..3 start empty and must
  // steal. Chunks are committed to the range sink strictly in seq order no
  // matter which thread ran them.
  constexpr int kWorkers = 4;
  constexpr int kChunks = 12;
  std::vector<std::vector<Chunk>> queues(kWorkers);
  for (int i = 0; i < kChunks; ++i) {
    queues[0].push_back(Chunk{/*range=*/0, static_cast<std::uint32_t>(i),
                              static_cast<VertexId>(i),
                              static_cast<VertexId>(i + 1)});
  }
  VectorSink sink;
  std::vector<ScopeSink*> sinks = {&sink};

  auto make_worker = [](int) -> ChunkFn {
    return [](const Chunk& c, ChunkBuffer* buffer) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      VertexId v = c.lo;
      buffer->ConsumeScope(c.lo, &v, 1);
    };
  };
  SchedulerStats stats = RunWorkStealing(queues, sinks, make_worker);

  EXPECT_EQ(stats.num_chunks, static_cast<std::uint64_t>(kChunks));
  EXPECT_GT(stats.num_steals, 0u);
  EXPECT_EQ(sink.finishes(), 1);
  // VectorSink asserted ascending order on every ConsumeScope; all chunks
  // must have landed.
  EXPECT_EQ(sink.scopes().size(), static_cast<std::size_t>(kChunks));
}

TEST(SchedulerTest, StealDomainsConfineThieves) {
  // Two domains of two workers each; all work sits on worker 0's deque.
  // Worker 1 (same domain) may steal it; workers 2 and 3 (other domain)
  // must never see it. Each chunk records which worker executed it.
  constexpr int kChunks = 8;
  std::vector<std::vector<Chunk>> queues(4);
  for (int i = 0; i < kChunks; ++i) {
    queues[0].push_back(Chunk{0, static_cast<std::uint32_t>(i),
                              static_cast<VertexId>(i),
                              static_cast<VertexId>(i + 1)});
  }
  VectorSink sink;
  std::vector<ScopeSink*> sinks = {&sink};

  std::atomic<bool> foreign_execution{false};
  auto make_worker = [&](int w) -> ChunkFn {
    return [&, w](const Chunk& c, ChunkBuffer* buffer) {
      if (w >= 2) foreign_execution = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      VertexId v = c.lo;
      buffer->ConsumeScope(c.lo, &v, 1);
    };
  };
  SchedulerOptions options;
  options.steal_domain = {0, 0, 1, 1};
  SchedulerStats stats = RunWorkStealing(queues, sinks, make_worker, options);

  EXPECT_FALSE(foreign_execution.load());
  EXPECT_EQ(stats.num_chunks, static_cast<std::uint64_t>(kChunks));
  EXPECT_EQ(sink.scopes().size(), static_cast<std::size_t>(kChunks));
}

TEST(SchedulerTest, WorkerExceptionPropagates) {
  std::vector<std::vector<Chunk>> queues(2);
  for (int i = 0; i < 4; ++i) {
    queues[i % 2].push_back(Chunk{0, static_cast<std::uint32_t>(i),
                                  static_cast<VertexId>(i),
                                  static_cast<VertexId>(i + 1)});
  }
  VectorSink sink;
  std::vector<ScopeSink*> sinks = {&sink};
  auto make_worker = [](int) -> ChunkFn {
    return [](const Chunk& c, ChunkBuffer*) {
      if (c.seq == 2) throw OomError("simulated");
    };
  };
  EXPECT_THROW(RunWorkStealing(queues, sinks, make_worker), OomError);
}

TEST(SchedulerTest, EmptyRangeStillGetsFinish) {
  // A sink whose range received zero chunks must still observe Finish().
  std::vector<std::vector<Chunk>> queues(2);
  queues[0].push_back(Chunk{0, 0, 0, 1});
  VectorSink with_work, without_work;
  std::vector<ScopeSink*> sinks = {&with_work, &without_work};
  auto make_worker = [](int) -> ChunkFn {
    return [](const Chunk& c, ChunkBuffer* buffer) {
      VertexId v = c.lo;
      buffer->ConsumeScope(c.lo, &v, 1);
    };
  };
  RunWorkStealing(queues, sinks, make_worker);
  EXPECT_EQ(with_work.finishes(), 1);
  EXPECT_EQ(without_work.finishes(), 1);
}

TEST(SchedulerTest, BuildChunkQueuesCoversRangesExactly) {
  model::NoiseVector noise(model::SeedMatrix::Graph500(), 12);
  const std::vector<VertexId> boundaries = PartitionByCdf(noise, 4);
  const auto queues = BuildChunkQueues(noise, boundaries, 8);
  ASSERT_EQ(queues.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(queues[r].size(), 8u);
    EXPECT_EQ(queues[r].front().lo, boundaries[r]);
    EXPECT_EQ(queues[r].back().hi, boundaries[r + 1]);
    for (std::size_t i = 0; i < queues[r].size(); ++i) {
      const Chunk& c = queues[r][i];
      EXPECT_EQ(c.range, r);
      EXPECT_EQ(c.seq, i);
      EXPECT_LE(c.lo, c.hi);
      if (i > 0) EXPECT_EQ(c.lo, queues[r][i - 1].hi);
    }
  }
}

TEST(SchedulerTest, CpuImbalanceMaxOverMean) {
  EXPECT_DOUBLE_EQ(CpuImbalance({}), 1.0);
  EXPECT_DOUBLE_EQ(CpuImbalance({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(CpuImbalance({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(CpuImbalance({3.0, 1.0}), 1.5);
}

TEST(SchedulerTest, ChunksPerWorkerEnvHook) {
  unsetenv("TG_CHUNKS_PER_WORKER");
  EXPECT_EQ(ChunksPerWorkerFromEnv(), kDefaultChunksPerWorker);
  EXPECT_EQ(ChunksPerWorkerFromEnv(5), 5);
  setenv("TG_CHUNKS_PER_WORKER", "32", 1);
  EXPECT_EQ(ChunksPerWorkerFromEnv(5), 32);
  setenv("TG_CHUNKS_PER_WORKER", "0", 1);
  EXPECT_EQ(ChunksPerWorkerFromEnv(5), 5);  // invalid -> fallback
  setenv("TG_CHUNKS_PER_WORKER", "garbage", 1);
  EXPECT_EQ(ChunksPerWorkerFromEnv(5), 5);
  unsetenv("TG_CHUNKS_PER_WORKER");
}

TEST(TrillionGConfigTest, NumEdgesLargeInBoundsProduct) {
  TrillionGConfig config;
  config.scale = 40;
  config.edge_factor = std::uint64_t{1} << 23;
  EXPECT_EQ(config.NumEdges(), std::uint64_t{1} << 63);  // near the top, exact
  config.num_edges = 123;
  EXPECT_EQ(config.NumEdges(), 123u);  // explicit |E| bypasses the product
}

TEST(TrillionGConfigTest, NumEdgesOverflowIsFatal) {
  TrillionGConfig config;
  config.scale = 44;
  config.edge_factor = std::uint64_t{1} << 44;  // 2^88 cannot fit
  EXPECT_DEATH(config.NumEdges(), "overflows uint64");
}

}  // namespace
}  // namespace tg::core
