// End-to-end tests for the tg::serve daemon (src/serve/): request
// validation, multi-tenant streamed generation that must be byte-identical
// to an offline run for every format, the whole-graph artifact cache,
// admission control (429 under overload), client-disconnect cancellation,
// and graceful drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/trilliong.h"
#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "obs/metrics.h"
#include "serve/artifact_cache.h"
#include "serve/daemon.h"
#include "serve/minihttp_client.h"
#include "serve/request.h"
#include "storage/temp_dir.h"

namespace tg {
namespace {

using serve::ClientOptions;
using serve::ClientResponse;
using serve::DaemonOptions;
using serve::GenRequest;
using serve::HttpGet;
using serve::HttpPost;
using serve::ServeDaemon;

std::uint64_t CounterValue(const std::string& name) {
  return obs::GetCounter(name)->value();
}

/// The bytes an offline run (gen_cli's sink construction exactly) writes for
/// `request`, shards concatenated in worker order — the reference every
/// daemon-streamed payload must match byte for byte.
std::string OfflineReference(const GenRequest& request) {
  storage::TempDir dir("serve_ref");
  core::TrillionGConfig config = serve::ToConfig(request);
  const bool transposed = request.direction == "in";
  auto shard_path = [&](int worker) {
    return dir.File("ref.w" + std::to_string(worker) + "." + request.format);
  };
  core::Generate(
      config,
      [&](int worker, VertexId lo,
          VertexId hi) -> std::unique_ptr<core::ScopeSink> {
        if (request.format == "tsv") {
          return std::make_unique<format::TsvWriter>(shard_path(worker),
                                                     transposed);
        }
        if (request.format == "adj6") {
          return std::make_unique<format::Adj6Writer>(shard_path(worker));
        }
        return std::make_unique<format::Csr6Writer>(shard_path(worker), lo, hi);
      });
  std::string all;
  for (int w = 0; w < request.workers; ++w) {
    std::FILE* f = std::fopen(shard_path(w).c_str(), "rb");
    EXPECT_NE(f, nullptr) << shard_path(w);
    if (f == nullptr) continue;
    char buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) all.append(buf, n);
    std::fclose(f);
  }
  return all;
}

std::string RequestJson(const std::string& tenant, int scale,
                        const std::string& format, int workers,
                        std::uint64_t seed = 42) {
  return "{\"tenant\": \"" + tenant + "\", \"scale\": " +
         std::to_string(scale) + ", \"edge_factor\": 8, \"format\": \"" +
         format + "\", \"workers\": " + std::to_string(workers) +
         ", \"seed\": " + std::to_string(seed) + "}";
}

GenRequest ParsedRequest(const std::string& json) {
  GenRequest request;
  Status s = serve::ParseGenRequest(json, serve::RequestLimits{}, &request);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return request;
}

class DaemonFixture : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetEnabled(true); }

  void Start(DaemonOptions options) {
    Status started = daemon_.Start(options);
    ASSERT_TRUE(started.ok()) << started.ToString();
    port_ = daemon_.port();
  }

  ClientResponse Post(const std::string& json,
                      const ClientOptions& options = {}) {
    return HttpPost("127.0.0.1", port_, "/generate", json,
                    "application/json", options);
  }

  ServeDaemon daemon_;
  int port_ = -1;
};

// ---------------------------------------------------------------------------
// Validation and protocol errors.

TEST_F(DaemonFixture, RejectsInvalidRequests) {
  Start(DaemonOptions{});

  EXPECT_EQ(Post("not json").status, 400);
  EXPECT_EQ(Post("[1,2,3]").status, 400);
  EXPECT_EQ(Post("{\"scale\": 10, \"surprise\": 1}").status, 400);
  EXPECT_EQ(Post("{\"scale\": 99}").status, 400);
  EXPECT_EQ(Post("{\"format\": \"xml\"}").status, 400);
  EXPECT_EQ(Post("{\"tenant\": \"no spaces\"}").status, 400);
  EXPECT_EQ(Post("{\"a\": 0.9, \"b\": 0.9, \"c\": 0.1, \"d\": 0.1}").status,
            400);
  EXPECT_EQ(Post("{\"scale\": 10.5}").status, 400);
  EXPECT_EQ(Post("{\"noise\": 2.0}").status, 400);
  ClientResponse bad = Post("{\"workers\": 99}");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("workers"), std::string::npos) << bad.body;

  // Wrong method on /generate.
  ClientResponse got = HttpGet("127.0.0.1", port_, "/generate");
  EXPECT_EQ(got.status, 405);
  EXPECT_EQ(got.headers["allow"], "POST");
}

TEST_F(DaemonFixture, BodyPolicyErrorsSurviveOnDaemonPort) {
  DaemonOptions options;
  options.max_body_bytes = 1024;
  Start(options);

  // POST without Content-Length -> 411 (the http_server body policy,
  // reachable through the daemon's port).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string raw =
      "POST /generate HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(reply.find("411"), std::string::npos) << reply;

  // Content-Length over the cap -> 413.
  ClientResponse big = Post(std::string(2048, 'x'));
  EXPECT_EQ(big.status, 413);
}

TEST_F(DaemonFixture, AdminPlaneIsMountedNextToGenerate) {
  Start(DaemonOptions{});
  ClientResponse health = HttpGet("127.0.0.1", port_, "/healthz");
  EXPECT_EQ(health.status, 200);
  ClientResponse metrics = HttpGet("127.0.0.1", port_, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  // The serve.* families are preregistered: visible before any request.
  EXPECT_NE(metrics.body.find("tg_serve_requests"), std::string::npos);
  EXPECT_NE(metrics.body.find("tg_serve_cache_hits"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bit-identity: daemon-streamed output == offline generation, all formats,
// concurrently from multiple tenants.

TEST_F(DaemonFixture, ConcurrentMultiTenantStreamsAreByteIdentical) {
  DaemonOptions options;
  options.max_concurrent = 3;
  options.worker_threads = 4;
  options.cache_bytes = 0;  // exercise the streaming path, not the cache
  Start(options);

  const struct {
    const char* tenant;
    const char* format;
    int scale;
    int workers;
  } cases[] = {
      {"alice", "tsv", 11, 3},
      {"bob", "adj6", 12, 2},
      {"carol", "csr6", 11, 2},
  };

  std::string expected[3];
  ClientResponse got[3];
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    const auto& c = cases[i];
    const std::string json =
        RequestJson(c.tenant, c.scale, c.format, c.workers);
    expected[i] = OfflineReference(ParsedRequest(json));
    ASSERT_FALSE(expected[i].empty());
    clients.emplace_back([this, json, &got, i] { got[i] = Post(json); });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(cases[i].format);
    EXPECT_EQ(got[i].status, 200);
    EXPECT_FALSE(got[i].truncated) << got[i].error;
    EXPECT_EQ(got[i].headers["x-tg-cache"], "miss");
    ASSERT_EQ(got[i].body.size(), expected[i].size());
    EXPECT_TRUE(got[i].body == expected[i])
        << "daemon stream diverged from offline generation";
  }
  // Per-tenant accounting saw all three tenants.
  EXPECT_GE(CounterValue("serve.tenant.alice.requests"), 1u);
  EXPECT_GE(CounterValue("serve.tenant.bob.bytes_streamed"),
            expected[1].size());
}

// ---------------------------------------------------------------------------
// Artifact cache: repeat request is a hit, served from memory, same bytes.

TEST_F(DaemonFixture, RepeatedRequestHitsCache) {
  DaemonOptions options;
  options.cache_bytes = 64ULL << 20;
  Start(options);

  const std::string json = RequestJson("dora", 11, "adj6", 2, /*seed=*/7);
  const std::uint64_t hits_before = CounterValue("serve.cache_hits");
  const std::uint64_t misses_before = CounterValue("serve.cache_misses");

  ClientResponse cold = Post(json);
  ASSERT_EQ(cold.status, 200);
  EXPECT_EQ(cold.headers["x-tg-cache"], "miss");

  ClientResponse warm = Post(json);
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(warm.headers["x-tg-cache"], "hit");
  EXPECT_EQ(warm.body, cold.body);
  EXPECT_EQ(CounterValue("serve.cache_hits"), hits_before + 1);
  EXPECT_EQ(CounterValue("serve.cache_misses"), misses_before + 1);

  // A different seed is a different fingerprint: miss again.
  ClientResponse other = Post(RequestJson("dora", 11, "adj6", 2, /*seed=*/8));
  ASSERT_EQ(other.status, 200);
  EXPECT_EQ(other.headers["x-tg-cache"], "miss");
  EXPECT_NE(other.body, cold.body);
}

TEST(ArtifactCacheTest, ModelArtifactsAreMemoizedAndGraphLruEvicts) {
  serve::ArtifactCache::Options options;
  options.graph_cache_bytes = 1000;
  options.graph_entry_max_bytes = 600;
  serve::ArtifactCache cache(options);

  GenRequest request;
  request.scale = 10;
  bool computed = false;
  auto plan = cache.PartitionPlan(request, &computed);
  EXPECT_TRUE(computed);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->size(), static_cast<std::size_t>(request.workers) + 1);
  auto again = cache.PartitionPlan(request, &computed);
  EXPECT_FALSE(computed);
  EXPECT_EQ(plan.get(), again.get());

  bool built = false;
  auto tables = cache.PrefixTables(request, &built);
  EXPECT_TRUE(built);
  ASSERT_NE(tables, nullptr);
  cache.PrefixTables(request, &built);
  EXPECT_FALSE(built);
  // Ineligible request (descent kernel): no tables to share.
  GenRequest descent = request;
  descent.use_prefix_tables = false;
  EXPECT_EQ(cache.PrefixTables(descent, &built), nullptr);

  // Whole-graph LRU: entry over the per-entry cap refused; total cap evicts.
  EXPECT_FALSE(cache.InsertGraph(1, std::string(601, 'x')));
  EXPECT_TRUE(cache.InsertGraph(1, std::string(500, 'a')));
  EXPECT_TRUE(cache.InsertGraph(2, std::string(400, 'b')));
  EXPECT_EQ(cache.graph_entries(), 2u);
  EXPECT_NE(cache.LookupGraph(1), nullptr);  // refresh 1: now 2 is LRU
  EXPECT_TRUE(cache.InsertGraph(3, std::string(300, 'c')));
  EXPECT_EQ(cache.LookupGraph(2), nullptr);  // evicted
  EXPECT_NE(cache.LookupGraph(1), nullptr);
  EXPECT_NE(cache.LookupGraph(3), nullptr);
  EXPECT_LE(cache.graph_bytes_used(), 1000u);
}

// ---------------------------------------------------------------------------
// Admission control: per-tenant cap answers 429 while the slot is held.

TEST_F(DaemonFixture, OverloadedTenantGets429) {
  DaemonOptions options;
  options.per_tenant_inflight = 1;
  options.max_concurrent = 1;
  // Tiny watermark: a client that stops reading wedges its streamer (and
  // holds its admission slot) as soon as the backlog passes 4 KiB.
  options.backlog_watermark_bytes = 4 * 1024;
  options.stream_block_bytes = 4 * 1024;
  options.cache_bytes = 0;
  Start(options);

  // Tenant "erin" opens a stream and stops consuming after the first bytes.
  std::atomic<bool> got_first{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    ClientOptions slow;
    slow.on_body = [&](const char*, std::size_t) {
      got_first.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return true;
    };
    Post(RequestJson("erin", 13, "tsv", 2), slow);
  });
  while (!got_first.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The slot is held: a second request from the same tenant is refused.
  ClientResponse refused = Post(RequestJson("erin", 10, "adj6", 1));
  EXPECT_EQ(refused.status, 429);
  EXPECT_FALSE(refused.headers["retry-after"].empty());
  EXPECT_GE(CounterValue("serve.rejected"), 1u);

  release.store(true);
  holder.join();
}

// ---------------------------------------------------------------------------
// Client disconnect cancels the request.

TEST_F(DaemonFixture, ClientDisconnectCancelsGeneration) {
  DaemonOptions options;
  options.backlog_watermark_bytes = 4 * 1024;
  options.stream_block_bytes = 4 * 1024;
  options.cache_bytes = 0;
  Start(options);

  const std::uint64_t cancelled_before = CounterValue("serve.cancelled");

  // Hang up after the first body bytes arrive.
  ClientOptions bail;
  bail.on_body = [](const char*, std::size_t) { return false; };
  ClientResponse aborted = Post(RequestJson("frank", 14, "tsv", 2), bail);
  EXPECT_EQ(aborted.status, 200);  // headers arrived before the hangup

  // The daemon notices, cancels, and returns to idle.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (daemon_.inflight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(daemon_.inflight(), 0);
  EXPECT_GE(CounterValue("serve.cancelled"), cancelled_before + 1);

  // The daemon is healthy afterwards: a fresh request completes.
  const std::string json = RequestJson("frank", 10, "adj6", 1);
  ClientResponse ok = Post(json);
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, OfflineReference(ParsedRequest(json)));
}

// ---------------------------------------------------------------------------
// Graceful drain: in-flight requests complete, then the daemon stops.

TEST_F(DaemonFixture, DrainCompletesInFlightRequests) {
  DaemonOptions options;
  options.max_concurrent = 2;
  Start(options);

  const std::string json = RequestJson("gail", 12, "adj6", 2);
  const std::string expected = OfflineReference(ParsedRequest(json));
  const std::uint64_t completed_before = CounterValue("serve.completed");

  ClientResponse got;
  std::thread client([&] { got = Post(json); });
  // Wait for the request to be admitted (or already finished), then drain
  // concurrently with it.
  while (daemon_.inflight() == 0 &&
         CounterValue("serve.completed") == completed_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon_.Drain();
  client.join();

  EXPECT_EQ(got.status, 200);
  EXPECT_FALSE(got.truncated) << got.error;
  EXPECT_EQ(got.body, expected);
  EXPECT_FALSE(daemon_.running());
}

}  // namespace
}  // namespace tg
