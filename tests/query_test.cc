#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/graph_stats.h"
#include "core/trilliong.h"
#include "format/csr6.h"
#include "query/bfs.h"
#include "query/components.h"
#include "query/csr_graph.h"
#include "query/pagerank.h"
#include "storage/temp_dir.h"

namespace tg::query {
namespace {

std::vector<Edge> Chain(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, v + 1});
  return edges;
}

TEST(CsrGraphTest, FromEdgesBasics) {
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {2, 0}, {3, 3}};
  CsrGraph g = CsrGraph::FromEdges(4, edges);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  EXPECT_EQ(g.OutDegree(3), 1u);
  auto n0 = g.OutNeighbors(0);
  EXPECT_EQ(std::set<VertexId>(n0.begin(), n0.end()),
            (std::set<VertexId>{1, 2}));
}

TEST(CsrGraphTest, TransposeReversesEdges) {
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {2, 1}};
  CsrGraph g = CsrGraph::FromEdges(3, edges);
  CsrGraph t = g.Transposed();
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_EQ(t.OutDegree(1), 2u);  // in-degree of 1 was 2
  EXPECT_EQ(t.OutDegree(0), 0u);
  // Double transpose restores degrees.
  CsrGraph tt = t.Transposed();
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(tt.OutDegree(v), g.OutDegree(v));
  }
}

TEST(CsrGraphTest, FromCsr6ShardsTilesRange) {
  storage::TempDir dir;
  {
    format::Csr6Writer w0(dir.File("a.csr6"), 0, 4);
    std::vector<VertexId> adj = {5, 1};
    w0.ConsumeScope(2, adj.data(), adj.size());
    w0.Finish();
    format::Csr6Writer w1(dir.File("b.csr6"), 4, 8);
    std::vector<VertexId> adj2 = {0};
    w1.ConsumeScope(6, adj2.data(), adj2.size());
    w1.Finish();
  }
  CsrGraph g;
  // Out-of-order shard list is fine.
  ASSERT_TRUE(CsrGraph::FromCsr6Shards({dir.File("b.csr6"), dir.File("a.csr6")},
                                       &g)
                  .ok());
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(2), 2u);
  EXPECT_EQ(g.OutDegree(6), 1u);
  EXPECT_EQ(g.OutNeighbors(6)[0], 0u);
}

TEST(CsrGraphTest, FromCsr6ShardsRejectsGaps) {
  storage::TempDir dir;
  {
    format::Csr6Writer w0(dir.File("a.csr6"), 0, 4);
    w0.Finish();
    format::Csr6Writer w1(dir.File("b.csr6"), 6, 8);  // gap [4, 6)
    w1.Finish();
  }
  CsrGraph g;
  EXPECT_FALSE(
      CsrGraph::FromCsr6Shards({dir.File("a.csr6"), dir.File("b.csr6")}, &g)
          .ok());
}

TEST(BfsTest, ChainGraphDepths) {
  CsrGraph g = CsrGraph::FromEdges(10, Chain(10));
  BfsResult r = Bfs(g, 0);
  EXPECT_EQ(r.vertices_visited, 10u);
  EXPECT_EQ(r.max_depth, 9);
  EXPECT_EQ(r.parent[0], 0u);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(r.parent[v], v - 1);
  EXPECT_TRUE(ValidateBfsTree(g, 0, r).ok());
}

TEST(BfsTest, DirectedReachabilityOnly) {
  // Chain edges point forward; starting mid-chain reaches only the suffix
  // unless the reverse graph is supplied.
  CsrGraph g = CsrGraph::FromEdges(10, Chain(10));
  BfsResult forward_only = Bfs(g, 5);
  EXPECT_EQ(forward_only.vertices_visited, 5u);  // 5..9
  CsrGraph rev = g.Transposed();
  BfsResult undirected = Bfs(g, 5, &rev);
  EXPECT_EQ(undirected.vertices_visited, 10u);
  EXPECT_TRUE(ValidateBfsTree(g, 5, undirected, &rev).ok());
}

TEST(BfsTest, DisconnectedComponentUnreached) {
  std::vector<Edge> edges = {{0, 1}, {2, 3}};
  CsrGraph g = CsrGraph::FromEdges(4, edges);
  BfsResult r = Bfs(g, 0);
  EXPECT_EQ(r.vertices_visited, 2u);
  EXPECT_EQ(r.parent[2], BfsResult::kUnreached);
  EXPECT_EQ(r.parent[3], BfsResult::kUnreached);
  EXPECT_TRUE(ValidateBfsTree(g, 0, r).ok());
}

TEST(BfsTest, ValidationCatchesCorruptTrees) {
  CsrGraph g = CsrGraph::FromEdges(10, Chain(10));
  BfsResult r = Bfs(g, 0);
  // Corrupt: parent edge that does not exist.
  BfsResult bad = r;
  bad.parent[7] = 3;
  EXPECT_FALSE(ValidateBfsTree(g, 0, bad).ok());
  // Corrupt: cycle.
  BfsResult cyclic = r;
  cyclic.parent[1] = 2;
  cyclic.parent[2] = 1;
  EXPECT_FALSE(ValidateBfsTree(g, 0, cyclic).ok());
  // Corrupt: root not its own parent.
  BfsResult rootless = r;
  rootless.parent[0] = 1;
  EXPECT_FALSE(ValidateBfsTree(g, 0, rootless).ok());
}

TEST(BfsTest, OnGeneratedGraphVisitsGiantComponent) {
  core::TrillionGConfig config;
  config.scale = 12;
  config.edge_factor = 16;
  std::vector<Edge> edges;
  class Collect : public core::ScopeSink {
   public:
    explicit Collect(std::vector<Edge>* out) : out_(out) {}
    void ConsumeScope(VertexId u, const VertexId* adj,
                      std::size_t n) override {
      for (std::size_t i = 0; i < n; ++i) out_->push_back(Edge{u, adj[i]});
    }
    std::vector<Edge>* out_;
  };
  Collect sink(&edges);
  core::GenerateToSink(config, &sink);

  CsrGraph g = CsrGraph::FromEdges(config.NumVertices(), edges);
  CsrGraph rev = g.Transposed();
  BfsResult r = Bfs(g, 0, &rev);
  // Edge factor 16: the giant weakly-connected component holds nearly every
  // non-isolated vertex; vertex 0 is the hub.
  EXPECT_GT(r.vertices_visited, config.NumVertices() / 2);
  EXPECT_TRUE(ValidateBfsTree(g, 0, r, &rev).ok());
  EXPECT_GT(r.edges_traversed, config.NumEdges());
}

TEST(DisjointSetsTest, BasicUnions) {
  DisjointSets ds(6);
  EXPECT_EQ(ds.NumComponents(), 6u);
  EXPECT_TRUE(ds.Union(0, 1));
  EXPECT_TRUE(ds.Union(1, 2));
  EXPECT_FALSE(ds.Union(0, 2));  // already joined
  EXPECT_EQ(ds.NumComponents(), 4u);
  EXPECT_EQ(ds.ComponentSize(2), 3u);
  EXPECT_EQ(ds.LargestComponent(), 3u);
  EXPECT_EQ(ds.Find(0), ds.Find(2));
  EXPECT_NE(ds.Find(0), ds.Find(3));
}

TEST(DisjointSetsTest, AgreesWithBfsOnGeneratedGraph) {
  core::TrillionGConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  std::vector<Edge> edges;
  class Collect : public core::ScopeSink {
   public:
    explicit Collect(std::vector<Edge>* out) : out_(out) {}
    void ConsumeScope(VertexId u, const VertexId* adj,
                      std::size_t n) override {
      for (std::size_t i = 0; i < n; ++i) out_->push_back(Edge{u, adj[i]});
    }
    std::vector<Edge>* out_;
  };
  Collect sink(&edges);
  core::GenerateToSink(config, &sink);

  DisjointSets ds(config.NumVertices());
  for (const Edge& e : edges) ds.Union(e.src, e.dst);

  CsrGraph g = CsrGraph::FromEdges(config.NumVertices(), edges);
  CsrGraph rev = g.Transposed();
  BfsResult r = Bfs(g, 0, &rev);
  EXPECT_EQ(r.vertices_visited, ds.ComponentSize(0));
}

TEST(PageRankTest, UniformOnRegularCycle) {
  // A directed cycle: every vertex has identical rank 1/n.
  const VertexId n = 10;
  std::vector<Edge> edges;
  for (VertexId v = 0; v < n; ++v) edges.push_back(Edge{v, (v + 1) % n});
  CsrGraph g = CsrGraph::FromEdges(n, edges);
  PageRankResult r = PageRank(g);
  double total = 0;
  for (double x : r.rank) {
    EXPECT_NEAR(x, 0.1, 1e-9);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRankTest, StarGraphCenterDominates) {
  // Spokes point to the center; the center's rank must dominate.
  const VertexId n = 50;
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.push_back(Edge{v, 0});
  CsrGraph g = CsrGraph::FromEdges(n, edges);
  PageRankResult r = PageRank(g);
  for (VertexId v = 1; v < n; ++v) EXPECT_GT(r.rank[0], 10 * r.rank[v]);
  double total = 0;
  for (double x : r.rank) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);  // dangling center redistributes correctly
}

TEST(PageRankTest, MatchesHandComputedTwoNodeChain) {
  // 0 -> 1, 1 dangling. Closed form with damping d and n = 2:
  // r0 = (1-d)/2 + d*r1/2; r1 = (1-d)/2 + d*r0 + d*r1/2.
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}});
  PageRankOptions options;
  options.max_iterations = 200;
  options.tolerance = 1e-14;
  PageRankResult r = PageRank(g, options);
  double d = options.damping;
  // Solve the 2x2 system.
  // r0 = (1-d)/2 + d/2 * r1 ; r1 = (1-d)/2 + d * r0 + d/2 * r1
  // => substitute and check.
  double r0 = r.rank[0], r1 = r.rank[1];
  EXPECT_NEAR(r0, (1 - d) / 2 + d / 2 * r1, 1e-9);
  EXPECT_NEAR(r1, (1 - d) / 2 + d * r0 + d / 2 * r1, 1e-9);
  EXPECT_NEAR(r0 + r1, 1.0, 1e-9);
}

TEST(PageRankTest, ConvergesOnGeneratedGraph) {
  core::TrillionGConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  std::vector<Edge> edges;
  class Collect : public core::ScopeSink {
   public:
    explicit Collect(std::vector<Edge>* out) : out_(out) {}
    void ConsumeScope(VertexId u, const VertexId* adj,
                      std::size_t n) override {
      for (std::size_t i = 0; i < n; ++i) out_->push_back(Edge{u, adj[i]});
    }
    std::vector<Edge>* out_;
  };
  Collect sink(&edges);
  core::GenerateToSink(config, &sink);
  CsrGraph g = CsrGraph::FromEdges(config.NumVertices(), edges);

  PageRankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 100;
  PageRankResult r = PageRank(g, options);
  EXPECT_LT(r.final_delta, 1e-10);
  double total = 0;
  for (double x : r.rank) total += x;
  EXPECT_NEAR(total, 1.0, 1e-6);
  // On an RMAT graph, high in-degree hubs (low vertex IDs) get high rank.
  double head = r.rank[0] + r.rank[1] + r.rank[2];
  double mid = r.rank[500] + r.rank[501] + r.rank[502];
  EXPECT_GT(head, 10 * mid);
}

TEST(GraphStatsTest, HandComputedValues) {
  // 0->1, 1->0 (reciprocal pair), 0->2, 3->3 (self loop), 4 isolated.
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 2}, {3, 3}};
  CsrGraph g = CsrGraph::FromEdges(5, edges);
  analysis::GraphStatsOptions options;
  options.clustering_samples = 0;
  analysis::GraphStats s = analysis::ComputeGraphStats(g, options);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.self_loops, 1u);
  EXPECT_NEAR(s.reciprocity, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.isolated_fraction, 2.0 / 5.0, 1e-12);  // vertices 2 and 4
  EXPECT_EQ(s.max_out_degree, 2u);
}

TEST(GraphStatsTest, CliqueHasFullClusteringAndReciprocity) {
  std::vector<Edge> edges;
  const VertexId n = 12;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) edges.push_back(Edge{u, v});
    }
  }
  CsrGraph g = CsrGraph::FromEdges(n, edges);
  analysis::GraphStats s = analysis::ComputeGraphStats(g);
  EXPECT_NEAR(s.reciprocity, 1.0, 1e-12);
  EXPECT_NEAR(s.clustering_coefficient, 1.0, 1e-12);
  EXPECT_EQ(s.self_loops, 0u);
}

}  // namespace
}  // namespace tg::query
