// Failure-injection and error-path coverage: corrupt files, unwritable
// targets, invalid configurations. Production libraries are judged by how
// they fail, not just how they succeed.

#include <gtest/gtest.h>

#include <vector>

#include "core/trilliong.h"
#include "format/adj6.h"
#include "format/convert.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "gmark/graph_config.h"
#include "storage/file_io.h"
#include "storage/temp_dir.h"

namespace tg {
namespace {

TEST(FailureTest, WritersReportUnwritablePaths) {
  format::TsvWriter tsv("/nonexistent_dir_xyz/out.tsv");
  tsv.WriteEdge(1, 2);
  tsv.Finish();
  EXPECT_FALSE(tsv.status().ok());

  format::Adj6Writer adj6("/nonexistent_dir_xyz/out.adj6");
  VertexId v = 1;
  adj6.ConsumeScope(0, &v, 1);
  adj6.Finish();
  EXPECT_FALSE(adj6.status().ok());

  format::Csr6Writer csr6("/nonexistent_dir_xyz/out.csr6", 0, 8);
  csr6.Finish();
  EXPECT_FALSE(csr6.status().ok());
}

TEST(FailureTest, TruncatedAdj6HeaderDies) {
  storage::TempDir dir;
  std::string path = dir.File("trunc.adj6");
  {
    storage::FileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    w.Append48(5);  // vertex id but no degree
    ASSERT_TRUE(w.Close().ok());
  }
  format::Adj6Reader reader(path);
  VertexId u;
  std::vector<VertexId> adj;
  EXPECT_DEATH(reader.Next(&u, &adj), "truncated ADJ6");
}

TEST(FailureTest, TruncatedAdj6AdjacencyDies) {
  storage::TempDir dir;
  std::string path = dir.File("trunc2.adj6");
  {
    storage::FileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    w.Append48(5);   // vertex
    w.Append48(3);   // claims 3 neighbors
    w.Append48(7);   // provides only 1
    ASSERT_TRUE(w.Close().ok());
  }
  format::Adj6Reader reader(path);
  VertexId u;
  std::vector<VertexId> adj;
  EXPECT_DEATH(reader.Next(&u, &adj), "truncated ADJ6 adjacency");
}

TEST(FailureTest, TruncatedCsr6OffsetsRejected) {
  storage::TempDir dir;
  std::string path = dir.File("trunc.csr6");
  {
    storage::FileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    w.Append("TGCSR6\0\0", 8);
    w.Append64(1);   // version
    w.Append64(0);   // lo
    w.Append64(16);  // hi
    w.Append64(0);   // num_edges — but offsets are missing entirely
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_DEATH(format::Csr6Reader reader(path), "truncated CSR6 offsets");
}

TEST(FailureTest, Csr6OffsetEdgeCountMismatchRejected) {
  storage::TempDir dir;
  std::string path = dir.File("mismatch.csr6");
  {
    storage::FileWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    w.Append("TGCSR6\0\0", 8);
    w.Append64(1);  // version
    w.Append64(0);  // lo
    w.Append64(1);  // hi (one vertex, two offsets)
    w.Append64(5);  // claims 5 edges
    w.Append64(0);  // offsets[0]
    w.Append64(2);  // offsets[1] == 2 != 5
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_DEATH(format::Csr6Reader reader(path), "mismatch");
}

// The 48-bit range check lives at the format-writer scope level (one check
// per adjacency, not one per Append48 in the hot loop) and is always on —
// both the ADJ6 and the CSR6 writer must die on an oversized id.
TEST(FailureTest, Adj6ScopeRejectsOversizedIds) {
  storage::TempDir dir;
  const std::string path = dir.File("x.adj6");
  const VertexId adj[1] = {VertexId{1} << 48};
  EXPECT_DEATH(
      {
        format::Adj6Writer w(path);
        w.ConsumeScope(0, adj, 1);
      },
      "does not fit in 6 bytes");
}

TEST(FailureTest, Csr6ScopeRejectsOversizedIds) {
  storage::TempDir dir;
  const std::string path = dir.File("x.csr6");
  const VertexId adj[1] = {VertexId{1} << 48};
  EXPECT_DEATH(
      {
        format::Csr6Writer w(path, 0, 4);
        w.ConsumeScope(0, adj, 1);
      },
      "does not fit in 6 bytes");
}

TEST(FailureTest, ConvertReportsMissingInput) {
  storage::TempDir dir;
  EXPECT_FALSE(
      format::TsvToAdj6("/no/such/file.tsv", dir.File("o.adj6")).ok());
  EXPECT_FALSE(
      format::Adj6ToTsv("/no/such/file.adj6", dir.File("o.tsv")).ok());
  EXPECT_FALSE(format::MergeCsr6Shards({"/no/such/shard.csr6"},
                                       dir.File("o.csr6"))
                   .ok());
}

TEST(FailureTest, GenerateToSinkRequiresSingleWorker) {
  core::TrillionGConfig config;
  config.num_workers = 2;
  core::CountingSink sink;
  EXPECT_DEATH(core::GenerateToSink(config, &sink), "num_workers == 1");
}

TEST(FailureTest, OomDuringMultiWorkerGenerationStopsCleanly) {
  // The OOM must propagate out of worker threads as an exception, not crash.
  core::TrillionGConfig config;
  config.scale = 12;
  config.edge_factor = 16;
  config.num_workers = 3;
  MemoryBudget tiny(64);
  config.budget = &tiny;
  EXPECT_THROW(core::Generate(config,
                              [](int, VertexId, VertexId) {
                                return std::make_unique<core::CountingSink>();
                              }),
               OomError);
}

TEST(FailureTest, GmarkValidateCatchesEveryReferenceError) {
  gmark::GraphConfig config = gmark::GraphConfig::Bibliography(1000, 5000);
  config.schema[0].source_type = "nonexistent";
  EXPECT_FALSE(config.Validate().ok());

  config = gmark::GraphConfig::Bibliography(1000, 5000);
  config.schema[0].predicate = "nonexistent";
  EXPECT_FALSE(config.Validate().ok());

  config = gmark::GraphConfig::Bibliography(1000, 5000);
  config.total_nodes = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = gmark::GraphConfig::Bibliography(1000, 5000);
  config.node_types[0].ratio = 0.9;  // ratios no longer sum to 1
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace tg
