#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <vector>

#include "core/trilliong.h"
#include "format/adj6.h"
#include "format/csr6.h"
#include "format/tsv.h"
#include "storage/temp_dir.h"

namespace tg::format {
namespace {

std::vector<VertexId> V(std::initializer_list<VertexId> ids) { return ids; }

TEST(TsvTest, RoundTripScopes) {
  storage::TempDir dir;
  std::string path = dir.File("edges.tsv");
  {
    TsvWriter writer(path);
    std::vector<VertexId> adj1 = V({5, 3, 9});
    std::vector<VertexId> adj2 = V({0});
    writer.ConsumeScope(1, adj1.data(), adj1.size());
    writer.ConsumeScope(7, adj2.data(), adj2.size());
    writer.Finish();
    EXPECT_TRUE(writer.status().ok());
  }
  std::vector<Edge> edges = TsvReader::ReadAll(path);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0], (Edge{1, 5}));
  EXPECT_EQ(edges[1], (Edge{1, 3}));
  EXPECT_EQ(edges[2], (Edge{1, 9}));
  EXPECT_EQ(edges[3], (Edge{7, 0}));
}

TEST(TsvTest, TransposedSwapsColumns) {
  storage::TempDir dir;
  std::string path = dir.File("t.tsv");
  {
    TsvWriter writer(path, /*transposed=*/true);
    std::vector<VertexId> adj = V({5, 3});
    writer.ConsumeScope(1, adj.data(), adj.size());
    writer.Finish();
  }
  std::vector<Edge> edges = TsvReader::ReadAll(path);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{5, 1}));
  EXPECT_EQ(edges[1], (Edge{3, 1}));
}

TEST(TsvTest, LargeIdsSurviveTextRoundTrip) {
  storage::TempDir dir;
  std::string path = dir.File("big.tsv");
  VertexId big = (VertexId{1} << 47) + 12345;
  {
    TsvWriter writer(path);
    writer.WriteEdge(big, big + 1);
    writer.Finish();
  }
  std::vector<Edge> edges = TsvReader::ReadAll(path);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].src, big);
  EXPECT_EQ(edges[0].dst, big + 1);
}

TEST(TsvTest, MissingFileReportsError) {
  TsvReader reader("/nonexistent/path/file.tsv");
  Edge e;
  EXPECT_FALSE(reader.Next(&e));
  EXPECT_FALSE(reader.status().ok());
}

TEST(Adj6Test, RoundTripRecords) {
  storage::TempDir dir;
  std::string path = dir.File("g.adj6");
  {
    Adj6Writer writer(path);
    std::vector<VertexId> adj1 = V({2, 4, 8});
    std::vector<VertexId> adj2 = V({1});
    writer.ConsumeScope(0, adj1.data(), adj1.size());
    writer.ConsumeScope(3, adj2.data(), adj2.size());
    writer.ConsumeScope(5, nullptr, 0);  // zero-degree scopes are omitted
    writer.Finish();
    EXPECT_TRUE(writer.status().ok());
  }
  std::map<VertexId, std::vector<VertexId>> got;
  ASSERT_TRUE(Adj6Reader::ForEach(path, [&](VertexId u,
                                            const std::vector<VertexId>& adj) {
                got[u] = adj;
              }).ok());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], V({2, 4, 8}));
  EXPECT_EQ(got[3], V({1}));
}

TEST(Adj6Test, SixByteBoundaryIds) {
  storage::TempDir dir;
  std::string path = dir.File("b.adj6");
  VertexId max48 = (VertexId{1} << 48) - 1;
  {
    Adj6Writer writer(path);
    std::vector<VertexId> adj = V({max48, 0});
    writer.ConsumeScope(max48 - 1, adj.data(), adj.size());
    writer.Finish();
  }
  Adj6Reader reader(path);
  VertexId u;
  std::vector<VertexId> adj;
  ASSERT_TRUE(reader.Next(&u, &adj));
  EXPECT_EQ(u, max48 - 1);
  EXPECT_EQ(adj, V({max48, 0}));
  EXPECT_FALSE(reader.Next(&u, &adj));
}

TEST(Adj6Test, FileIsCompact) {
  // Record = 6 (vertex) + 6 (degree) + 6 * degree bytes.
  storage::TempDir dir;
  std::string path = dir.File("c.adj6");
  {
    Adj6Writer writer(path);
    std::vector<VertexId> adj(100, 7);
    for (int i = 0; i < 50; ++i) {
      writer.ConsumeScope(i, adj.data(), adj.size());
    }
    writer.Finish();
    EXPECT_EQ(writer.bytes_written(), 50u * (6 + 6 + 100 * 6));
  }
}

TEST(Csr6Test, RoundTripWholeGraph) {
  storage::TempDir dir;
  std::string path = dir.File("g.csr6");
  {
    Csr6Writer writer(path, 0, 8);
    std::vector<VertexId> adj0 = V({7, 2, 5});
    std::vector<VertexId> adj3 = V({0});
    std::vector<VertexId> adj7 = V({6, 1});
    writer.ConsumeScope(0, adj0.data(), adj0.size());
    writer.ConsumeScope(3, adj3.data(), adj3.size());
    writer.ConsumeScope(7, adj7.data(), adj7.size());
    writer.Finish();
    EXPECT_TRUE(writer.status().ok());
  }
  Csr6Reader reader(path);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.lo(), 0u);
  EXPECT_EQ(reader.hi(), 8u);
  EXPECT_EQ(reader.num_edges(), 6u);
  EXPECT_EQ(reader.Degree(0), 3u);
  EXPECT_EQ(reader.Degree(1), 0u);
  EXPECT_EQ(reader.Degree(3), 1u);
  EXPECT_EQ(reader.Degree(7), 2u);
  // Adjacency must come back sorted.
  auto n0 = reader.Neighbors(0);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()), V({2, 5, 7}));
  auto n7 = reader.Neighbors(7);
  EXPECT_EQ(std::vector<VertexId>(n7.begin(), n7.end()), V({1, 6}));
}

TEST(Csr6Test, ShardWithNonZeroLow) {
  storage::TempDir dir;
  std::string path = dir.File("s.csr6");
  {
    Csr6Writer writer(path, 100, 110);
    std::vector<VertexId> adj = V({42});
    writer.ConsumeScope(105, adj.data(), adj.size());
    writer.Finish();
  }
  Csr6Reader reader(path);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.lo(), 100u);
  EXPECT_EQ(reader.hi(), 110u);
  EXPECT_EQ(reader.Degree(105), 1u);
  EXPECT_EQ(reader.Degree(100), 0u);
  EXPECT_EQ(reader.Neighbors(105)[0], 42u);
}

TEST(Csr6Test, RejectsCorruptMagic) {
  storage::TempDir dir;
  std::string path = dir.File("bad.csr6");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("NOTCSR00", 1, 8, f);
  std::fclose(f);
  Csr6Reader reader(path);
  EXPECT_FALSE(reader.status().ok());
}

TEST(Csr6DeathTest, OutOfOrderScopesRejected) {
  storage::TempDir dir;
  std::string path = dir.File("o.csr6");
  Csr6Writer writer(path, 0, 8);
  std::vector<VertexId> adj = V({1});
  writer.ConsumeScope(5, adj.data(), adj.size());
  EXPECT_DEATH(writer.ConsumeScope(2, adj.data(), adj.size()),
               "increasing order");
}

TEST(FormatIntegrationTest, GeneratorToAllThreeFormatsAgree) {
  // Generate once into each format and verify they encode the same graph.
  storage::TempDir dir;
  core::TrillionGConfig config;
  config.scale = 8;
  config.edge_factor = 8;
  config.rng_seed = 777;

  std::string tsv_path = dir.File("g.tsv");
  std::string adj_path = dir.File("g.adj6");
  std::string csr_path = dir.File("g.csr6");
  {
    TsvWriter sink(tsv_path);
    core::GenerateToSink(config, &sink);
    sink.Finish();
  }
  {
    Adj6Writer sink(adj_path);
    core::GenerateToSink(config, &sink);
    sink.Finish();
  }
  {
    Csr6Writer sink(csr_path, 0, config.NumVertices());
    core::GenerateToSink(config, &sink);
    sink.Finish();
  }

  // Canonicalize all three to sorted edge lists.
  std::vector<Edge> tsv_edges = TsvReader::ReadAll(tsv_path);
  std::sort(tsv_edges.begin(), tsv_edges.end());

  std::vector<Edge> adj_edges;
  ASSERT_TRUE(Adj6Reader::ForEach(adj_path, [&](VertexId u,
                                                const std::vector<VertexId>&
                                                    adj) {
                for (VertexId v : adj) adj_edges.push_back(Edge{u, v});
              }).ok());
  std::sort(adj_edges.begin(), adj_edges.end());

  Csr6Reader csr(csr_path);
  ASSERT_TRUE(csr.status().ok());
  std::vector<Edge> csr_edges;
  for (VertexId u = 0; u < config.NumVertices(); ++u) {
    for (VertexId v : csr.Neighbors(u)) csr_edges.push_back(Edge{u, v});
  }
  std::sort(csr_edges.begin(), csr_edges.end());

  EXPECT_EQ(tsv_edges, adj_edges);
  EXPECT_EQ(adj_edges, csr_edges);
  EXPECT_GT(tsv_edges.size(), 1000u);
}

TEST(FormatIntegrationTest, Adj6IsMuchSmallerThanTsvAtLargeIds) {
  // Section 5: ADJ6 files are 3-4x smaller than TSV. The gap comes from
  // large vertex IDs (a scale-38 ID is 12 decimal digits vs 6 bytes), so
  // measure with IDs in that range.
  storage::TempDir dir;
  std::string tsv_path = dir.File("big.tsv");
  std::string adj_path = dir.File("big.adj6");
  const VertexId base = VertexId{1} << 40;
  std::vector<VertexId> adj(64);
  for (std::size_t i = 0; i < adj.size(); ++i) adj[i] = base + i * 12345;
  {
    TsvWriter tsv(tsv_path);
    Adj6Writer adj6(adj_path);
    for (int u = 0; u < 200; ++u) {
      tsv.ConsumeScope(base + u, adj.data(), adj.size());
      adj6.ConsumeScope(base + u, adj.data(), adj.size());
    }
    tsv.Finish();
    adj6.Finish();
  }
  auto file_size = [](const std::string& p) {
    return static_cast<double>(std::filesystem::file_size(p));
  };
  EXPECT_GT(file_size(tsv_path) / file_size(adj_path), 3.0);
}

}  // namespace
}  // namespace tg::format
