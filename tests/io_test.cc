// Tests for the I/O fast path: the double-buffered async writer
// (storage/async_writer.h) against the three FileWriterBase contracts, the
// raw-syscall io_uring submission queue (storage/uring.h), the zero-copy
// mmap'd CSR6 reader (format/csr6_mapped.h), and the branchless TSV
// formatter/parser (format/tsv.cc). The recurring theme is bit-identity:
// whatever transport moves the bytes, the files must match the synchronous
// stdio writer byte for byte.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "format/adj6.h"
#include "format/csr6.h"
#include "format/csr6_mapped.h"
#include "format/tsv.h"
#include "obs/metrics.h"
#include "storage/async_writer.h"
#include "storage/file_io.h"
#include "storage/temp_dir.h"
#include "storage/uring.h"

namespace tg {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream data;
  data << in.rdbuf();
  return data.str();
}

/// Clears the process-wide storage failure hook on scope exit, so a failing
/// test cannot poison later ones.
struct IoHookGuard {
  ~IoHookGuard() { storage::IoFailureHookRef() = nullptr; }
};

/// Deterministic adjacency lists of varied sizes (including empty ones) —
/// the same scope stream is fed to every transport under test.
std::vector<std::vector<VertexId>> TestScopes(int count, std::uint64_t seed) {
  std::vector<std::vector<VertexId>> scopes(count);
  std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
  };
  for (int u = 0; u < count; ++u) {
    const std::size_t degree = next() % 8;  // 0..7, empties included
    scopes[u].resize(degree);
    for (std::size_t i = 0; i < degree; ++i) {
      scopes[u][i] = next() % (std::uint64_t{1} << 48);
    }
  }
  return scopes;
}

// ---------------------------------------------------------------------------
// I/O spec parsing and writer selection.

TEST(IoSpecTest, ParseRoundTripsEveryMode) {
  for (const char* spec : {"sync", "async,uring", "async,nouring"}) {
    storage::IoConfig config;
    ASSERT_TRUE(storage::ParseIoSpec(spec, &config).ok()) << spec;
    EXPECT_EQ(storage::IoSpecString(config), spec);
  }
  storage::IoConfig config;
  ASSERT_TRUE(storage::ParseIoSpec("async", &config).ok());
  EXPECT_EQ(storage::IoSpecString(config), "async,uring");
}

TEST(IoSpecTest, RejectsUnknownSpecs) {
  storage::IoConfig config;
  for (const char* spec : {"", "fast", "async,", "sync,uring", "uring"}) {
    EXPECT_FALSE(storage::ParseIoSpec(spec, &config).ok()) << spec;
  }
}

TEST(IoSpecTest, MakeFileWriterHonorsScopedConfig) {
  {
    storage::ScopedIoConfig scoped({storage::IoMode::kSync, true});
    auto writer = storage::MakeFileWriter();
    EXPECT_NE(dynamic_cast<storage::FileWriter*>(writer.get()), nullptr);
  }
  {
    storage::ScopedIoConfig scoped({storage::IoMode::kAsync, false});
    auto writer = storage::MakeFileWriter();
    EXPECT_NE(dynamic_cast<storage::AsyncFileWriter*>(writer.get()), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity between transports.

// Drives one writer through every append shape: sub-buffer runs, 48/64-bit
// integers, and a run larger than the buffer (the direct-write path).
void WriteMixedWorkload(storage::FileWriterBase* writer,
                        std::size_t buffer_bytes) {
  std::uint64_t state = 99;
  for (int i = 0; i < 200; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    char chunk[48];
    const std::size_t n = 1 + (state >> 20) % sizeof(chunk);
    std::memset(chunk, static_cast<int>('a' + i % 26), n);
    writer->Append(chunk, n);
    writer->Append48(state % (std::uint64_t{1} << 48));
    writer->Append64(state);
  }
  const std::vector<char> big(3 * buffer_bytes + 17, 'Z');
  writer->Append(big.data(), big.size());
  writer->Append("tail", 4);
}

TEST(TransportIdentityTest, RawWritersProduceIdenticalBytes) {
  storage::TempDir dir;
  for (const std::size_t buffer_bytes : {std::size_t{64}, std::size_t{4096},
                                         std::size_t{1} << 20}) {
    storage::FileWriter sync_writer(buffer_bytes);
    storage::AsyncFileWriter async_uring(buffer_bytes, true);
    storage::AsyncFileWriter async_pwrite(buffer_bytes, false);
    struct Case {
      storage::FileWriterBase* writer;
      std::string path;
    };
    const std::string tag = std::to_string(buffer_bytes);
    std::vector<Case> cases = {
        {&sync_writer, dir.File("sync." + tag)},
        {&async_uring, dir.File("uring." + tag)},
        {&async_pwrite, dir.File("pwrite." + tag)},
    };
    for (Case& c : cases) {
      ASSERT_TRUE(c.writer->Open(c.path).ok());
      WriteMixedWorkload(c.writer, buffer_bytes);
      ASSERT_TRUE(c.writer->Close().ok()) << c.path;
    }
    const std::string reference = ReadFileBytes(cases[0].path);
    EXPECT_GT(reference.size(), 3 * buffer_bytes);
    for (std::size_t i = 1; i < cases.size(); ++i) {
      EXPECT_EQ(ReadFileBytes(cases[i].path), reference)
          << cases[i].path << " diverges from the sync writer";
    }
  }
}

TEST(TransportIdentityTest, FormatWritersBitIdenticalSyncVsAsync) {
  storage::TempDir dir;
  const auto scopes = TestScopes(500, 7);
  const storage::IoConfig modes[] = {{storage::IoMode::kSync, true},
                                     {storage::IoMode::kAsync, true},
                                     {storage::IoMode::kAsync, false}};
  std::vector<std::string> tsv_bytes, adj6_bytes, csr6_bytes;
  for (const storage::IoConfig& mode : modes) {
    storage::ScopedIoConfig scoped(mode);
    const std::string tag = storage::IoSpecString(mode);
    {
      format::TsvWriter writer(dir.File(tag + ".tsv"));
      for (std::size_t u = 0; u < scopes.size(); ++u) {
        writer.ConsumeScope(u, scopes[u].data(), scopes[u].size());
      }
      writer.Finish();
      ASSERT_TRUE(writer.status().ok());
    }
    {
      format::Adj6Writer writer(dir.File(tag + ".adj6"));
      for (std::size_t u = 0; u < scopes.size(); ++u) {
        writer.ConsumeScope(u, scopes[u].data(), scopes[u].size());
      }
      writer.Finish();
      ASSERT_TRUE(writer.status().ok());
    }
    {
      format::Csr6Writer writer(dir.File(tag + ".csr6"), 0, scopes.size());
      for (std::size_t u = 0; u < scopes.size(); ++u) {
        writer.ConsumeScope(u, scopes[u].data(), scopes[u].size());
      }
      writer.Finish();
      ASSERT_TRUE(writer.status().ok());
    }
    tsv_bytes.push_back(ReadFileBytes(dir.File(tag + ".tsv")));
    adj6_bytes.push_back(ReadFileBytes(dir.File(tag + ".adj6")));
    csr6_bytes.push_back(ReadFileBytes(dir.File(tag + ".csr6")));
  }
  for (std::size_t i = 1; i < tsv_bytes.size(); ++i) {
    EXPECT_EQ(tsv_bytes[i], tsv_bytes[0]);
    EXPECT_EQ(adj6_bytes[i], adj6_bytes[0]);
    EXPECT_EQ(csr6_bytes[i], csr6_bytes[0]);
  }
}

TEST(TransportIdentityTest, UringSubmissionMatchesPwriteFallback) {
  if (!storage::UringAvailable()) {
    GTEST_SKIP() << "io_uring not available in this build/kernel";
  }
  storage::TempDir dir;
  storage::AsyncFileWriter with_uring(256, true);
  storage::AsyncFileWriter without_uring(256, false);
  ASSERT_TRUE(with_uring.Open(dir.File("uring")).ok());
  ASSERT_TRUE(without_uring.Open(dir.File("pwrite")).ok());
  WriteMixedWorkload(&with_uring, 256);
  WriteMixedWorkload(&without_uring, 256);
  ASSERT_TRUE(with_uring.Close().ok());
  ASSERT_TRUE(without_uring.Close().ok());
  EXPECT_EQ(ReadFileBytes(dir.File("uring")), ReadFileBytes(dir.File("pwrite")));
  // A ring actually ran, and the gauge recorded it.
  EXPECT_EQ(obs::GetGauge("io.uring_active")->value(), 1.0);
}

// ---------------------------------------------------------------------------
// The three FileWriterBase contracts across the thread hop.

TEST(AsyncContractTest, InjectedFailureIsStickyAndFreezesBytes) {
  IoHookGuard guard;
  storage::TempDir dir;
  storage::AsyncFileWriter writer(64);  // tiny buffer: every append flushes
  ASSERT_TRUE(writer.Open(dir.File("sticky")).ok());
  const std::vector<char> chunk(64, 'x');
  writer.Append(chunk.data(), chunk.size());
  ASSERT_TRUE(writer.FlushToOs().ok());

  storage::IoFailureHookRef() = [](const std::string&) { return true; };
  writer.Append(chunk.data(), chunk.size());
  writer.Append(chunk.data(), chunk.size());  // forces a handoff
  // The hook fires on the writer thread; FlushToOs is the producer-side
  // barrier after which the failure must be visible.
  EXPECT_FALSE(writer.FlushToOs().ok());
  storage::IoFailureHookRef() = nullptr;

  const std::uint64_t frozen = writer.bytes_written();
  writer.Append(chunk.data(), chunk.size());  // dropped, not buffered
  writer.Append48(1);
  EXPECT_EQ(writer.bytes_written(), frozen);
  const Status closed = writer.Close();
  EXPECT_FALSE(closed.ok());
  EXPECT_NE(closed.ToString().find("injected I/O failure"), std::string::npos)
      << closed.ToString();
}

TEST(AsyncContractTest, CommitStateFailureLeavesTokenUntouched) {
  IoHookGuard guard;
  storage::TempDir dir;
  storage::ScopedIoConfig scoped({storage::IoMode::kAsync, true});
  format::Adj6Writer writer(dir.File("commit.adj6"));
  const VertexId adj[3] = {4, 5, 6};
  writer.ConsumeScope(0, adj, 3);
  std::string token = "unset";
  ASSERT_TRUE(writer.CommitState(&token).ok());
  const std::string committed = token;
  EXPECT_NE(committed, "unset");

  storage::IoFailureHookRef() = [](const std::string&) { return true; };
  writer.ConsumeScope(1, adj, 3);
  EXPECT_FALSE(writer.CommitState(&token).ok());
  storage::IoFailureHookRef() = nullptr;
  // The journal only records tokens from Ok commits: a failed commit must
  // not have produced a new one.
  EXPECT_EQ(token, committed);
  EXPECT_FALSE(writer.status().ok());
}

TEST(AsyncContractTest, FlushToOsIsTheDurabilityBarrier) {
  storage::TempDir dir;
  storage::AsyncFileWriter writer(1 << 20);
  const std::string path = dir.File("durable");
  ASSERT_TRUE(writer.Open(path).ok());
  const std::string payload(100000, 'd');
  writer.Append(payload.data(), payload.size());
  ASSERT_TRUE(writer.FlushToOs().ok());
  // After the barrier every appended byte is in the kernel: the file really
  // is that long, even though the writer is still open.
  EXPECT_EQ(std::filesystem::file_size(path), payload.size());
  EXPECT_EQ(writer.bytes_written(), payload.size());
  ASSERT_TRUE(writer.Close().ok());
}

TEST(AsyncContractTest, RewriteAtPatchesEarlierBytesInPlace) {
  storage::TempDir dir;
  for (const bool use_async : {false, true}) {
    std::unique_ptr<storage::FileWriterBase> writer;
    if (use_async) {
      writer = std::make_unique<storage::AsyncFileWriter>(64);
    } else {
      writer = std::make_unique<storage::FileWriter>(64);
    }
    const std::string path = dir.File(use_async ? "rw.async" : "rw.sync");
    ASSERT_TRUE(writer->Open(path).ok());
    std::string body(200, '.');
    writer->Append(body.data(), body.size());
    ASSERT_TRUE(writer->RewriteAt(0, "HEADER", 6).ok());
    EXPECT_EQ(writer->bytes_written(), body.size());  // rewrite adds nothing
    writer->Append("!", 1);
    ASSERT_TRUE(writer->Close().ok());
    std::string expected = body + "!";
    std::memcpy(expected.data(), "HEADER", 6);
    EXPECT_EQ(ReadFileBytes(path), expected);
  }
}

TEST(AsyncContractTest, OpenAfterFailedOpenStartsClean) {
  storage::TempDir dir;
  for (const bool use_async : {false, true}) {
    std::unique_ptr<storage::FileWriterBase> writer;
    if (use_async) {
      writer = std::make_unique<storage::AsyncFileWriter>(1 << 16);
    } else {
      writer = std::make_unique<storage::FileWriter>(1 << 16);
    }
    EXPECT_FALSE(writer->Open("/nonexistent_dir_xyz/out").ok());
    writer->Append("stale bytes", 11);  // dropped: nothing is open
    // Reopening the same object must start from a clean slate: empty buffer,
    // cleared error state.
    const std::string path = dir.File(use_async ? "clean.async" : "clean.sync");
    ASSERT_TRUE(writer->Open(path).ok());
    EXPECT_TRUE(writer->status().ok());
    writer->Append("B", 1);
    ASSERT_TRUE(writer->Close().ok());
    EXPECT_EQ(ReadFileBytes(path), "B");
  }
}

TEST(AsyncContractTest, IoCountersCompareExactlyBetweenModes) {
  storage::TempDir dir;
  const auto scopes = TestScopes(300, 3);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> deltas;
  for (const storage::IoMode mode :
       {storage::IoMode::kSync, storage::IoMode::kAsync}) {
    storage::ScopedIoConfig scoped({mode, true});
    obs::Counter* bytes = obs::GetCounter("io.bytes_written");
    obs::Counter* flushes = obs::GetCounter("io.flushes");
    const std::uint64_t bytes_before = bytes->value();
    const std::uint64_t flushes_before = flushes->value();
    format::Adj6Writer writer(
        dir.File(mode == storage::IoMode::kSync ? "c.sync" : "c.async"));
    for (std::size_t u = 0; u < scopes.size(); ++u) {
      writer.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    writer.Finish();
    ASSERT_TRUE(writer.status().ok());
    deltas.emplace_back(bytes->value() - bytes_before,
                        flushes->value() - flushes_before);
  }
  // io.* counts producer->backend handoffs, which do not depend on the
  // transport: bench baselines rely on sync and async agreeing exactly.
  EXPECT_EQ(deltas[0], deltas[1]);
  EXPECT_GT(deltas[0].first, 0u);
}

// ---------------------------------------------------------------------------
// Crash / --resume round trips on the async transport.

TEST(AsyncResumeTest, TsvResumeIsByteIdentical) {
  storage::TempDir dir;
  storage::ScopedIoConfig scoped({storage::IoMode::kAsync, true});
  const auto scopes = TestScopes(64, 11);
  const std::string ref_path = dir.File("ref.tsv");
  {
    format::TsvWriter ref(ref_path);
    for (std::size_t u = 0; u < scopes.size(); ++u) {
      ref.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    ref.Finish();
    ASSERT_TRUE(ref.status().ok());
  }
  const std::string cut_path = dir.File("cut.tsv");
  std::string token;
  {
    format::TsvWriter cut(cut_path, false);
    for (std::size_t u = 0; u < 40; ++u) {
      cut.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    ASSERT_TRUE(cut.CommitState(&token).ok());
    // Uncommitted tail past the checkpoint; the writer is then abandoned
    // without Finish, as a killed process would leave it.
    for (std::size_t u = 40; u < 50; ++u) {
      cut.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
  }
  {
    format::TsvWriter resumed(cut_path, false, core::ResumeFrom{token});
    for (std::size_t u = 40; u < scopes.size(); ++u) {
      resumed.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    resumed.Finish();
    ASSERT_TRUE(resumed.status().ok());
  }
  EXPECT_EQ(ReadFileBytes(cut_path), ReadFileBytes(ref_path));
}

TEST(AsyncResumeTest, Adj6ResumeIsByteIdentical) {
  storage::TempDir dir;
  storage::ScopedIoConfig scoped({storage::IoMode::kAsync, true});
  const auto scopes = TestScopes(64, 13);
  const std::string ref_path = dir.File("ref.adj6");
  {
    format::Adj6Writer ref(ref_path);
    for (std::size_t u = 0; u < scopes.size(); ++u) {
      ref.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    ref.Finish();
    ASSERT_TRUE(ref.status().ok());
  }
  const std::string cut_path = dir.File("cut.adj6");
  std::string token;
  {
    format::Adj6Writer cut(cut_path);
    for (std::size_t u = 0; u < 40; ++u) {
      cut.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    ASSERT_TRUE(cut.CommitState(&token).ok());
    for (std::size_t u = 40; u < 50; ++u) {
      cut.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
  }
  {
    format::Adj6Writer resumed(cut_path, core::ResumeFrom{token});
    for (std::size_t u = 40; u < scopes.size(); ++u) {
      resumed.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    resumed.Finish();
    ASSERT_TRUE(resumed.status().ok());
  }
  EXPECT_EQ(ReadFileBytes(cut_path), ReadFileBytes(ref_path));
}

TEST(AsyncResumeTest, Csr6ResumeIsByteIdentical) {
  storage::TempDir dir;
  storage::ScopedIoConfig scoped({storage::IoMode::kAsync, true});
  const auto scopes = TestScopes(64, 17);
  const VertexId lo = 0, hi = scopes.size();
  const std::string ref_path = dir.File("ref.csr6");
  {
    format::Csr6Writer ref(ref_path, lo, hi);
    for (std::size_t u = 0; u < scopes.size(); ++u) {
      ref.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    ref.Finish();
    ASSERT_TRUE(ref.status().ok());
  }
  const std::string cut_path = dir.File("cut.csr6");
  std::string token;
  {
    format::Csr6Writer cut(cut_path, lo, hi);
    for (std::size_t u = 0; u < 40; ++u) {
      cut.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    ASSERT_TRUE(cut.CommitState(&token).ok());
    for (std::size_t u = 40; u < 50; ++u) {
      cut.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    // The destructor of an unfinished resumable writer must close without
    // finalizing the header and must keep the degree sidecar on disk.
  }
  ASSERT_TRUE(std::filesystem::exists(format::Csr6Writer::SidecarPath(cut_path)));
  {
    format::Csr6Writer resumed(cut_path, lo, hi, core::ResumeFrom{token});
    for (std::size_t u = 40; u < scopes.size(); ++u) {
      resumed.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    resumed.Finish();
    ASSERT_TRUE(resumed.status().ok());
  }
  EXPECT_EQ(ReadFileBytes(cut_path), ReadFileBytes(ref_path));
}

// ---------------------------------------------------------------------------
// Zero-copy CSR6 reads.

TEST(MappedReaderTest, MatchesStreamingReader) {
  storage::TempDir dir;
  const auto scopes = TestScopes(200, 23);
  const VertexId lo = 100;
  const VertexId hi = lo + scopes.size();
  const std::string path = dir.File("g.csr6");
  {
    format::Csr6Writer writer(path, lo, hi);
    for (std::size_t i = 0; i < scopes.size(); ++i) {
      writer.ConsumeScope(lo + i, scopes[i].data(), scopes[i].size());
    }
    writer.Finish();
    ASSERT_TRUE(writer.status().ok());
  }

  format::Csr6Reader streaming(path);
  format::Csr6MappedReader mapped(path);
  ASSERT_TRUE(streaming.status().ok());
  ASSERT_TRUE(mapped.status().ok());
  EXPECT_EQ(mapped.lo(), streaming.lo());
  EXPECT_EQ(mapped.hi(), streaming.hi());
  ASSERT_EQ(mapped.num_edges(), streaming.num_edges());

  std::vector<VertexId> all_streaming, scratch;
  for (VertexId u = lo; u < hi; ++u) {
    ASSERT_EQ(mapped.Degree(u), streaming.Degree(u)) << "vertex " << u;
    const auto neighbors = streaming.Neighbors(u);
    scratch.assign(mapped.Degree(u), 0);
    mapped.CopyNeighbors(u, scratch.data());
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      EXPECT_EQ(scratch[i], neighbors[i]);
      EXPECT_EQ(mapped.NeighborAt(mapped.EdgeOffset(u) + i), neighbors[i]);
    }
    all_streaming.insert(all_streaming.end(), neighbors.begin(),
                         neighbors.end());
  }
  std::vector<VertexId> all_mapped(mapped.num_edges(), 0);
  mapped.CopyAllNeighbors(all_mapped.data());
  EXPECT_EQ(all_mapped, all_streaming);
}

TEST(MappedReaderTest, CorruptShardsReportStatusInsteadOfCrashing) {
  storage::TempDir dir;
  const auto scopes = TestScopes(8, 29);
  const std::string good = dir.File("good.csr6");
  {
    format::Csr6Writer writer(good, 0, scopes.size());
    for (std::size_t u = 0; u < scopes.size(); ++u) {
      writer.ConsumeScope(u, scopes[u].data(), scopes[u].size());
    }
    writer.Finish();
    ASSERT_TRUE(writer.status().ok());
  }
  const std::string bytes = ReadFileBytes(good);

  auto write_variant = [&](const std::string& name,
                           const std::string& content) {
    const std::string path = dir.File(name);
    std::ofstream out(path, std::ios::binary);
    out << content;
    out.close();
    return path;
  };

  {
    format::Csr6MappedReader reader(dir.File("missing.csr6"));
    EXPECT_FALSE(reader.status().ok());
  }
  {
    format::Csr6MappedReader reader(
        write_variant("short.csr6", bytes.substr(0, 10)));
    EXPECT_NE(reader.status().ToString().find("shorter than its header"),
              std::string::npos);
  }
  {
    std::string corrupted = bytes;
    corrupted[0] = 'X';
    format::Csr6MappedReader reader(write_variant("magic.csr6", corrupted));
    EXPECT_NE(reader.status().ToString().find("bad CSR6 magic"),
              std::string::npos);
  }
  {
    format::Csr6MappedReader reader(
        write_variant("sized.csr6", bytes + "extra"));
    EXPECT_NE(reader.status().ToString().find("size mismatch"),
              std::string::npos);
  }
  {
    // Claim one more edge than the offset table accounts for, and pad the
    // file so the size equation still holds: only the offsets/edge-count
    // cross-check can catch it.
    std::string corrupted = bytes;
    std::uint64_t num_edges = 0;
    std::memcpy(&num_edges, corrupted.data() + 32, 8);
    ++num_edges;
    std::memcpy(corrupted.data() + 32, &num_edges, 8);
    corrupted.append(6, '\0');
    format::Csr6MappedReader reader(write_variant("count.csr6", corrupted));
    EXPECT_NE(reader.status().ToString().find("offsets/edge-count mismatch"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// TSV formatting and parsing.

TEST(TsvTest, FormatterMatchesSnprintfAcrossDecades) {
  storage::TempDir dir;
  const std::string path = dir.File("fmt.tsv");
  std::vector<std::uint64_t> values = {0,
                                       1,
                                       9,
                                       10,
                                       99,
                                       100,
                                       999,
                                       1000,
                                       12345,
                                       (std::uint64_t{1} << 32) - 1,
                                       (std::uint64_t{1} << 47),
                                       (std::uint64_t{1} << 48) - 1,
                                       999999999999999999ULL,
                                       1000000000000000000ULL,
                                       9999999999999999999ULL,
                                       10000000000000000000ULL,
                                       ~std::uint64_t{0}};
  std::string expected;
  {
    format::TsvWriter writer(path);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::uint64_t src = values[i];
      const std::uint64_t dst = values[values.size() - 1 - i];
      writer.WriteEdge(src, dst);
      char line[64];
      std::snprintf(line, sizeof(line), "%" PRIu64 "\t%" PRIu64 "\n", src,
                    dst);
      expected += line;
    }
    writer.Finish();
    ASSERT_TRUE(writer.status().ok());
  }
  EXPECT_EQ(ReadFileBytes(path), expected);
}

TEST(TsvTest, ReaderNamesTheLineOfAMalformedField) {
  storage::TempDir dir;
  const std::string path = dir.File("bad.tsv");
  {
    std::ofstream out(path);
    out << "1\t2\nx\t3\n";
  }
  format::TsvReader reader(path);
  Edge edge;
  ASSERT_TRUE(reader.Next(&edge));
  EXPECT_EQ(edge, (Edge{1, 2}));
  EXPECT_FALSE(reader.Next(&edge));
  EXPECT_EQ(reader.line(), 2u);
  const std::string message = reader.status().ToString();
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("expected a decimal vertex id, got 'x'"),
            std::string::npos)
      << message;
  EXPECT_FALSE(reader.Next(&edge));  // errors are sticky
}

TEST(TsvTest, ReaderRejectsUnpairedValueAtEof) {
  storage::TempDir dir;
  const std::string path = dir.File("odd.tsv");
  {
    std::ofstream out(path);
    out << "1\t2\n7";
  }
  format::TsvReader reader(path);
  Edge edge;
  ASSERT_TRUE(reader.Next(&edge));
  EXPECT_FALSE(reader.Next(&edge));
  EXPECT_NE(reader.status().ToString().find("file ends after an unpaired"),
            std::string::npos)
      << reader.status().ToString();
}

TEST(TsvTest, ReaderRejectsIdsThatOverflowSixBytes) {
  storage::TempDir dir;
  const std::string path = dir.File("wide.tsv");
  {
    std::ofstream out(path);
    // 2^48 exactly: one too many for the 6-byte formats downstream.
    out << "281474976710656\t1\n";
  }
  format::TsvReader reader(path);
  Edge edge;
  EXPECT_FALSE(reader.Next(&edge));
  EXPECT_NE(reader.status().ToString().find("does not fit in 6 bytes"),
            std::string::npos)
      << reader.status().ToString();
}

TEST(TsvTest, TinyReadBufferCrossesValueBoundaries) {
  storage::TempDir dir;
  const std::string path = dir.File("tiny.tsv");
  std::vector<Edge> expected;
  {
    format::TsvWriter writer(path);
    std::uint64_t state = 5;
    for (int i = 0; i < 300; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const Edge edge{state % (std::uint64_t{1} << 48),
                      (state >> 8) % (std::uint64_t{1} << 48)};
      writer.WriteEdge(edge.src, edge.dst);
      expected.push_back(edge);
    }
    writer.Finish();
    ASSERT_TRUE(writer.status().ok());
  }
  // A 3-byte block size forces every multi-digit value to straddle refills.
  format::TsvReader reader(path, 3);
  std::vector<Edge> got;
  Edge edge;
  while (reader.Next(&edge)) got.push_back(edge);
  ASSERT_TRUE(reader.status().ok()) << reader.status().ToString();
  EXPECT_EQ(got, expected);
}

// ---------------------------------------------------------------------------
// Handoff stress (meant to run under TSan: .github/workflows/ci.yml).

TEST(HandoffStressTest, ConcurrentWritersRecycleBuffersSafely) {
  storage::TempDir dir;
  constexpr int kThreads = 4;
  std::vector<std::string> expected(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    std::string& content = expected[t];
    std::uint64_t state = 1000 + t;
    for (int i = 0; i < 4000; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      content.append(1 + state % 17, static_cast<char>('A' + t));
    }
    threads.emplace_back([&dir, t, &content] {
      // A 64-byte buffer makes the producer hand off (and stall on the
      // kQueueDepth limit) thousands of times.
      storage::AsyncFileWriter writer(64, t % 2 == 0);
      ASSERT_TRUE(writer.Open(dir.File("t" + std::to_string(t))).ok());
      std::size_t pos = 0;
      std::uint64_t state = 7777 + t;
      while (pos < content.size()) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::size_t n =
            std::min(content.size() - pos, std::size_t(1 + state % 23));
        writer.Append(content.data() + pos, n);
        pos += n;
      }
      ASSERT_TRUE(writer.Close().ok());
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ReadFileBytes(dir.File("t" + std::to_string(t))), expected[t])
        << "thread " << t;
  }
}

}  // namespace
}  // namespace tg
