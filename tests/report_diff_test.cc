// Tests for obs/report_diff.h: the comparison engine behind
// tools/bench_check. Identical reports must pass, an injected 2× regression
// must fail, missing metrics count as regressions, and the tolerance /
// skip-list machinery must behave as documented.
#include <gtest/gtest.h>

#include <string>

#include "obs/report_diff.h"
#include "obs/run_report.h"

namespace tg::obs {
namespace {

// A representative bench report: deterministic counters, one simulated
// gauge with a built-in tolerance rule, one real-clock gauge that the
// defaults must skip, and a histogram.
RunReport MakeBaseline() {
  RunReport report;
  report.counters["avs.edges_generated"] = 1048576;
  report.counters["cluster.shuffled_bytes"] = 65536;
  report.gauges["net.simulated_seconds"] = 1.25;
  report.gauges["span.wall_seconds"] = 0.731;  // real clock: never compared
  HistogramSnapshot hist;
  hist.count = 100;
  hist.sum = 5000;
  hist.min = 1;
  hist.max = 200;
  hist.buckets = {0, 10, 20, 30, 40};
  report.histograms["avs.scope_edges"] = hist;
  return report;
}

TEST(ReportDiffTest, IdenticalReportsPass) {
  RunReport baseline = MakeBaseline();
  DiffResult result =
      DiffReports(baseline, baseline, DiffOptions::Defaults());
  EXPECT_TRUE(result.ok()) << result.ToString(true);
  EXPECT_EQ(result.num_regressed, 0);
  // Two counters + the simulated gauge + histogram count/sum are checked;
  // the real-clock gauge is not.
  EXPECT_EQ(result.num_checked, 5);
}

TEST(ReportDiffTest, InjectedTwoTimesRegressionFails) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  current.counters["cluster.shuffled_bytes"] *= 2;
  DiffResult result = DiffReports(baseline, current, DiffOptions::Defaults());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.num_regressed, 1);
  bool found = false;
  for (const MetricDelta& delta : result.deltas) {
    if (delta.name != "cluster.shuffled_bytes") continue;
    found = true;
    EXPECT_TRUE(delta.regressed);
    EXPECT_FALSE(delta.missing);
    EXPECT_DOUBLE_EQ(delta.baseline, 65536.0);
    EXPECT_DOUBLE_EQ(delta.current, 131072.0);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(result.ToString(false).find("FAIL"), std::string::npos);
}

TEST(ReportDiffTest, MissingMetricIsARegression) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  current.counters.erase("avs.edges_generated");
  DiffResult result = DiffReports(baseline, current, DiffOptions::Defaults());
  EXPECT_FALSE(result.ok());
  bool found = false;
  for (const MetricDelta& delta : result.deltas) {
    if (delta.name != "avs.edges_generated") continue;
    found = true;
    EXPECT_TRUE(delta.missing);
    EXPECT_TRUE(delta.regressed);
  }
  EXPECT_TRUE(found);
}

TEST(ReportDiffTest, ExtraMetricsInCurrentAreIgnored) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  current.counters["brand.new_counter"] = 999;
  current.gauges["brand.new_gauge"] = 3.14;
  DiffResult result = DiffReports(baseline, current, DiffOptions::Defaults());
  EXPECT_TRUE(result.ok()) << result.ToString(true);
}

TEST(ReportDiffTest, ToleranceAllowsBoundedDrift) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  current.counters["cluster.shuffled_bytes"] = 68000;  // ~3.8% up
  DiffOptions options = DiffOptions::Defaults();
  options.tolerances["cluster.shuffled_bytes"] = 0.05;
  EXPECT_TRUE(DiffReports(baseline, current, options).ok());
  options.tolerances["cluster.shuffled_bytes"] = 0.01;
  EXPECT_FALSE(DiffReports(baseline, current, options).ok());
}

TEST(ReportDiffTest, NegativeToleranceSkipsTheMetric) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  current.counters["cluster.shuffled_bytes"] *= 10;
  DiffOptions options = DiffOptions::Defaults();
  options.tolerances["cluster.shuffled_bytes"] = -1.0;
  DiffResult result = DiffReports(baseline, current, options);
  EXPECT_TRUE(result.ok()) << result.ToString(true);
}

TEST(ReportDiffTest, SkipListExcludesMetrics) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  current.counters["cluster.shuffled_bytes"] *= 2;
  DiffOptions options = DiffOptions::Defaults();
  options.skip.push_back("cluster.shuffled_bytes");
  EXPECT_TRUE(DiffReports(baseline, current, options).ok());
}

TEST(ReportDiffTest, RealClockGaugesAreSkippedByDefault) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  current.gauges["span.wall_seconds"] = 99.0;  // wildly different wall time
  DiffResult result = DiffReports(baseline, current, DiffOptions::Defaults());
  EXPECT_TRUE(result.ok()) << result.ToString(true);
  // ...unless a default gauge tolerance opts them in.
  DiffOptions options = DiffOptions::Defaults();
  options.default_gauge_rel_tol = 0.1;
  EXPECT_FALSE(DiffReports(baseline, current, options).ok());
}

TEST(ReportDiffTest, PerTagPeakGaugesGateViaPrefixRule) {
  RunReport baseline = MakeBaseline();
  baseline.gauges["mem.tag.core.scope_dedup.peak_bytes"] = 1000000.0;
  RunReport current = baseline;

  // Within the 0.5 relative prefix tolerance: passes.
  current.gauges["mem.tag.core.scope_dedup.peak_bytes"] = 1400000.0;
  EXPECT_TRUE(DiffReports(baseline, current, DiffOptions::Defaults()).ok());

  // A tag's peak doubling is a memory regression.
  current.gauges["mem.tag.core.scope_dedup.peak_bytes"] = 2000001.0;
  EXPECT_FALSE(DiffReports(baseline, current, DiffOptions::Defaults()).ok());

  // A tag vanishing (the bench stopped attributing it) is a regression too.
  current.gauges.erase("mem.tag.core.scope_dedup.peak_bytes");
  DiffResult result = DiffReports(baseline, current, DiffOptions::Defaults());
  EXPECT_FALSE(result.ok());

  // An explicit per-name tolerance still outranks the prefix rule.
  current = baseline;
  current.gauges["mem.tag.core.scope_dedup.peak_bytes"] = 4000000.0;
  DiffOptions options = DiffOptions::Defaults();
  options.tolerances["mem.tag.core.scope_dedup.peak_bytes"] = 10.0;
  EXPECT_TRUE(DiffReports(baseline, current, options).ok());
}

TEST(ReportDiffTest, StealCountsAreSkippedByDefault) {
  RunReport baseline = MakeBaseline();
  baseline.counters["sched.steals"] = 24;
  RunReport current = baseline;
  current.counters["sched.steals"] = 25;  // thread-timing, not a regression
  EXPECT_TRUE(DiffReports(baseline, current, DiffOptions::Defaults()).ok());
}

TEST(ReportDiffTest, SimulatedGaugeUsesBuiltInTolerance) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  // net.simulated_seconds is deterministic; the built-in rule is 1e-6
  // relative — a float-noise-sized wiggle passes, a real change fails.
  current.gauges["net.simulated_seconds"] = 1.25 * (1.0 + 1e-8);
  EXPECT_TRUE(DiffReports(baseline, current, DiffOptions::Defaults()).ok());
  current.gauges["net.simulated_seconds"] = 1.30;
  EXPECT_FALSE(DiffReports(baseline, current, DiffOptions::Defaults()).ok());
}

TEST(ReportDiffTest, HistogramCountAndSumAreCompared) {
  RunReport baseline = MakeBaseline();
  RunReport current = baseline;
  current.histograms["avs.scope_edges"].count = 150;
  DiffResult result = DiffReports(baseline, current, DiffOptions::Defaults());
  EXPECT_FALSE(result.ok());
  bool found = false;
  for (const MetricDelta& delta : result.deltas) {
    if (delta.name == "histogram/avs.scope_edges/count") {
      found = true;
      EXPECT_TRUE(delta.regressed);
    }
  }
  EXPECT_TRUE(found);

  DiffOptions options = DiffOptions::Defaults();
  options.check_histograms = false;
  EXPECT_TRUE(DiffReports(baseline, current, options).ok());
}

TEST(ReportDiffTest, VerboseListingNamesEveryCheckedMetric) {
  RunReport baseline = MakeBaseline();
  DiffResult result =
      DiffReports(baseline, baseline, DiffOptions::Defaults());
  std::string verbose = result.ToString(true);
  EXPECT_NE(verbose.find("avs.edges_generated"), std::string::npos);
  EXPECT_NE(verbose.find("net.simulated_seconds"), std::string::npos);
  EXPECT_EQ(result.ToString(false).find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace tg::obs
