// Tests for obs/sampler.h: the background time-series sampler feeding
// RunReport::series — monotonic timestamps, live counter/gauge capture, JSON
// round-trip of the embedded series, and idempotent lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/sampler.h"

namespace tg::obs {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Global().Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    Registry::Global().Reset();
  }
};

SamplerOptions FastOptions() {
  SamplerOptions options;
  options.interval_ms = 2;
  options.sample_rss = false;
  options.emit_trace_counters = false;
  return options;
}

TEST_F(SamplerTest, SeriesAreMonotonicallyTimestamped) {
  Counter* edges = GetCounter("progress.edges");
  Sampler sampler(FastOptions());
  sampler.Start();
  for (int i = 0; i < 10; ++i) {
    edges->Add(1000);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  sampler.Stop();

  std::map<std::string, TimeSeries> series = sampler.Series();
  ASSERT_TRUE(series.count("progress.edges"));
  const TimeSeries& ts = series["progress.edges"];
  // Start() records t=0 and Stop() records a final sample, so a ~30ms run at
  // a 2ms interval yields well over 5 points.
  ASSERT_GE(ts.size(), 5u);
  ASSERT_EQ(ts.t.size(), ts.v.size());
  EXPECT_DOUBLE_EQ(ts.t.front(), 0.0);
  for (std::size_t i = 1; i < ts.t.size(); ++i) {
    EXPECT_GE(ts.t[i], ts.t[i - 1]) << "timestamps regress at " << i;
  }
  // A cumulative counter's samples are non-decreasing too, ending at the
  // final value.
  for (std::size_t i = 1; i < ts.v.size(); ++i) {
    EXPECT_GE(ts.v[i], ts.v[i - 1]);
  }
  EXPECT_DOUBLE_EQ(ts.v.back(), 10000.0);
  EXPECT_DOUBLE_EQ(ts.interval_seconds, 0.002);
}

TEST_F(SamplerTest, SamplesGauges) {
  Gauge* gauge = GetGauge("net.simulated_seconds");
  gauge->Set(1.5);
  Sampler sampler(FastOptions());
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(6));
  gauge->Set(2.5);
  sampler.Stop();
  std::map<std::string, TimeSeries> series = sampler.Series();
  ASSERT_TRUE(series.count("net.simulated_seconds"));
  const TimeSeries& ts = series["net.simulated_seconds"];
  ASSERT_GE(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.v.front(), 1.5);
  EXPECT_DOUBLE_EQ(ts.v.back(), 2.5);
}

TEST_F(SamplerTest, ExportToEmbedsSeriesAndJsonRoundTrips) {
  GetCounter("progress.edges")->Add(7);
  Sampler sampler(FastOptions());
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(6));
  sampler.Stop();

  RunReport report = RunReport::Collect(Registry::Global());
  sampler.ExportTo(&report);
  ASSERT_FALSE(report.series.empty());

  RunReport parsed;
  Status status = RunReport::FromJson(report.ToJson(), &parsed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(parsed.series.size(), report.series.size());
  for (const auto& [name, ts] : report.series) {
    ASSERT_TRUE(parsed.series.count(name)) << name;
    const TimeSeries& got = parsed.series[name];
    ASSERT_EQ(got.size(), ts.size()) << name;
    EXPECT_DOUBLE_EQ(got.interval_seconds, ts.interval_seconds);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      EXPECT_NEAR(got.t[i], ts.t[i], 1e-9);
      EXPECT_NEAR(got.v[i], ts.v[i], 1e-9);
    }
  }
}

TEST_F(SamplerTest, RssSamplingWorksOnLinux) {
#ifdef __linux__
  EXPECT_GT(CurrentRssBytes(), 0u);
  SamplerOptions options = FastOptions();
  options.sample_rss = true;
  Sampler sampler(options);
  sampler.Start();
  sampler.Stop();
  std::map<std::string, TimeSeries> series = sampler.Series();
  ASSERT_TRUE(series.count("proc.rss_bytes"));
  EXPECT_GT(series["proc.rss_bytes"].v.front(), 0.0);
#else
  EXPECT_EQ(CurrentRssBytes(), 0u);
#endif
}

TEST_F(SamplerTest, TickListenerReceivesEveryTickWithDrift) {
  Counter* edges = GetCounter("progress.edges");
  edges->Add(500);
  std::mutex mu;
  std::vector<TickSample> ticks;
  SetTickListener([&](const TickSample& tick) {
    std::lock_guard<std::mutex> lock(mu);
    ticks.push_back(tick);
  });

  SamplerOptions options = FastOptions();
  options.progress_target_edges = 1000;
  Sampler sampler(options);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.Stop();
  SetTickListener(nullptr);

  std::lock_guard<std::mutex> lock(mu);
  // t=0 sample + interval ticks + final sample.
  ASSERT_GE(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks.front().t_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ticks.front().drift_ms, 0.0);  // boundary samples: 0
  for (const TickSample& tick : ticks) {
    EXPECT_DOUBLE_EQ(tick.edges, 500.0);
  }
  // The drift gauge carries the latest tick's drift (the Stop boundary
  // sample writes 0 last).
  EXPECT_DOUBLE_EQ(GetGauge("obs.sampler.drift_ms")->value(), 0.0);
}

TEST_F(SamplerTest, RemovedTickListenerIsNotInvoked) {
  std::atomic<int> calls{0};
  SetTickListener([&](const TickSample&) { calls.fetch_add(1); });
  SetTickListener(nullptr);
  Sampler sampler(FastOptions());
  sampler.Start();
  sampler.Stop();
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(SamplerTest, IntervalFromEnvParsesAndValidates) {
  ::unsetenv("TG_SAMPLE_INTERVAL_MS");
  EXPECT_EQ(SamplerIntervalFromEnv(20), 20);
  EXPECT_EQ(SamplerIntervalFromEnv(-1), -1);
  ::setenv("TG_SAMPLE_INTERVAL_MS", "250", 1);
  EXPECT_EQ(SamplerIntervalFromEnv(20), 250);
  ::setenv("TG_SAMPLE_INTERVAL_MS", "0", 1);  // non-positive: fall back
  EXPECT_EQ(SamplerIntervalFromEnv(20), 20);
  ::setenv("TG_SAMPLE_INTERVAL_MS", "junk", 1);
  EXPECT_EQ(SamplerIntervalFromEnv(20), 20);
  ::unsetenv("TG_SAMPLE_INTERVAL_MS");
}

TEST_F(SamplerTest, ExportActiveToSnapshotsTheLiveSampler) {
  RunReport report;
  Sampler::ExportActiveTo(&report);  // no active sampler: no-op
  EXPECT_TRUE(report.series.empty());

  Sampler sampler(FastOptions());
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Sampler::ExportActiveTo(&report);
  EXPECT_TRUE(report.series.count("progress.edges"));
  sampler.Stop();

  RunReport after;
  Sampler::ExportActiveTo(&after);  // stopped: deregistered again
  EXPECT_TRUE(after.series.empty());
}

TEST_F(SamplerTest, StopIsIdempotentAndDestructorIsSafe) {
  Sampler sampler(FastOptions());
  sampler.Start();
  sampler.Stop();
  sampler.Stop();  // second Stop is a no-op
  std::size_t size = sampler.Series()["progress.edges"].size();
  EXPECT_GE(size, 2u);  // t=0 sample + final sample
  {
    Sampler unstarted(FastOptions());  // destructor without Start
  }
  {
    Sampler running(FastOptions());  // destructor stops a running sampler
    running.Start();
  }
}

}  // namespace
}  // namespace tg::obs
