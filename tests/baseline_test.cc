#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "baseline/graph500.h"
#include "baseline/kronecker.h"
#include "baseline/rmat.h"
#include "baseline/simple.h"
#include "baseline/teg.h"
#include "baseline/wesp.h"
#include "model/edge_probability.h"
#include "storage/temp_dir.h"

namespace tg::baseline {
namespace {

using model::EdgeProbability;
using model::NoiseVector;
using model::SeedMatrix;

TEST(RmatEdgeTest, EdgeDistributionMatchesCellProbabilities) {
  const int scale = 3;
  SeedMatrix seed = SeedMatrix::Graph500();
  EdgeProbability prob(seed, scale);
  NoiseVector noise(seed, scale);
  rng::Rng rng(11);
  const int n = 200000;
  std::vector<int> counts(64, 0);
  for (int i = 0; i < n; ++i) {
    Edge e = RmatEdge(noise, &rng);
    ++counts[e.src * 8 + e.dst];
  }
  double chi2 = 0;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = 0; v < 8; ++v) {
      double expected = n * prob.CellProbability(u, v);
      chi2 += (counts[u * 8 + v] - expected) * (counts[u * 8 + v] - expected) /
              expected;
    }
  }
  // 63 dof, 99.9% critical value ~103.4.
  EXPECT_LT(chi2, 103.4);
}

TEST(RmatMemTest, ProducesExactlyTargetUniqueEdges) {
  RmatOptions options;
  options.scale = 10;
  options.num_edges = 4096;
  std::set<Edge> edges;
  WesStats stats = RmatMem(options, [&](const Edge& e) { edges.insert(e); });
  EXPECT_EQ(stats.num_edges, 4096u);
  EXPECT_EQ(edges.size(), 4096u);  // all distinct
  EXPECT_GE(stats.num_generated, stats.num_edges);
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, options.NumVertices());
    EXPECT_LT(e.dst, options.NumVertices());
  }
}

TEST(RmatMemTest, SpaceIsOrderEdges) {
  RmatOptions options;
  options.scale = 12;
  options.num_edges = 1 << 14;
  WesStats stats = RmatMem(options, [](const Edge&) {});
  // The dedup set is at least 8 bytes per edge (and at most ~4x that).
  EXPECT_GE(stats.peak_bytes, options.num_edges * 8);
  EXPECT_LE(stats.peak_bytes, options.num_edges * 40);
}

TEST(RmatMemTest, OomUnderTightBudget) {
  RmatOptions options;
  options.scale = 12;
  options.num_edges = 1 << 14;
  MemoryBudget budget(options.num_edges * 4);  // less than 8 B/edge needed
  options.budget = &budget;
  EXPECT_THROW(RmatMem(options, [](const Edge&) {}), OomError);
}

TEST(RmatDiskTest, DedupsViaExternalSort) {
  storage::TempDir dir;
  RmatDiskOptions options;
  options.scale = 10;
  options.num_edges = 4096;
  options.temp_dir = dir.path();
  options.sort_buffer_items = 512;  // force spills
  std::vector<Edge> edges;
  WesStats stats = RmatDisk(options, [&](const Edge& e) {
    edges.push_back(e);
  });
  EXPECT_GT(stats.spilled_bytes, 0u);
  // Sorted and unique.
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_TRUE(std::adjacent_find(edges.begin(), edges.end()) == edges.end());
  // Close to target. At this small scale the duplicate rate is well above
  // the paper's large-scale epsilon ~ 0.01 (head cells have multiplicity
  // > 1), so allow a generous band: all duplicates removed, most edges kept.
  EXPECT_LE(stats.num_edges, 4096u);
  EXPECT_GT(static_cast<double>(stats.num_edges), 4096.0 * 0.8);
  // Bounded memory regardless of |E|.
  EXPECT_LE(stats.peak_bytes, options.sort_buffer_items * sizeof(Edge) + 1024);
}

TEST(FastKroneckerTest, MatchesRmatDistributionForN2) {
  // n=2 FastKronecker and RMAT-mem draw unique edges from the identical
  // distribution (Section 3.1): compare source-popcount band histograms.
  // |E| << |V|^2 so the dedup loop terminates comfortably.
  const int scale = 10;
  SeedMatrix seed = SeedMatrix::Graph500();

  FastKroneckerOptions fk_options;
  fk_options.seed = model::SeedMatrixN::FromSeedMatrix(seed);
  fk_options.num_vertices = VertexId{1} << scale;
  fk_options.num_edges = 1 << 15;
  std::vector<double> fk_bands(scale + 1, 0);
  FastKronecker(fk_options, [&](const Edge& e) {
    ++fk_bands[std::popcount(e.src)];
  });

  RmatOptions rmat_options;
  rmat_options.seed = seed;
  rmat_options.scale = scale;
  rmat_options.num_edges = 1 << 15;
  std::vector<double> rmat_bands(scale + 1, 0);
  RmatMem(rmat_options, [&](const Edge& e) {
    ++rmat_bands[std::popcount(e.src)];
  });

  for (int band = 0; band <= scale; ++band) {
    double expected = rmat_bands[band];
    if (expected < 50) continue;  // skip noisy tail bands
    EXPECT_NEAR(fk_bands[band], expected,
                0.1 * expected + 5 * std::sqrt(expected))
        << "popcount band " << band;
  }
}

TEST(FastKroneckerTest, SupportsNonBinarySeeds) {
  FastKroneckerOptions options;
  options.seed = model::SeedMatrixN::Example3x3();
  options.num_vertices = 729;  // 3^6
  options.num_edges = 5000;
  std::set<Edge> edges;
  WesStats stats = FastKronecker(options, [&](const Edge& e) {
    edges.insert(e);
  });
  EXPECT_EQ(stats.num_edges, 5000u);
  EXPECT_EQ(edges.size(), 5000u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, 729u);
    EXPECT_LT(e.dst, 729u);
  }
}

TEST(KroneckerAesTest, ExpectedEdgeCount) {
  KroneckerAesOptions options;
  options.scale = 8;
  options.num_edges = 4096;
  AesStats stats = KroneckerAes(options, [](const Edge&) {});
  EXPECT_EQ(stats.cells_visited, 65536u);  // |V|^2 Bernoulli trials

  // Exact expectation with per-cell clamping min(1, |E| * K_{u,v}): cells
  // group by the multiset of per-bit quadrant choices, with multinomial
  // multiplicities.
  const SeedMatrix seed = options.seed;
  const int scale = options.scale;
  double expected = 0, variance = 0;
  auto binom = [](int n, int k) {
    double r = 1;
    for (int i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
    return r;
  };
  for (int na = 0; na <= scale; ++na) {
    for (int nb = 0; na + nb <= scale; ++nb) {
      for (int nc = 0; na + nb + nc <= scale; ++nc) {
        int nd = scale - na - nb - nc;
        double mult = binom(scale, na) * binom(scale - na, nb) *
                      binom(scale - na - nb, nc);
        double p = std::min(
            1.0, 4096.0 * std::pow(seed.a(), na) * std::pow(seed.b(), nb) *
                     std::pow(seed.c(), nc) * std::pow(seed.d(), nd));
        expected += mult * p;
        variance += mult * p * (1 - p);
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(stats.num_edges), expected,
              5 * std::sqrt(variance));
}

TEST(KroneckerAesTest, MultiThreadMatchesCellCount) {
  KroneckerAesOptions options;
  options.scale = 8;
  options.num_edges = 4096;
  options.num_threads = 4;
  std::atomic<std::uint64_t> consumed{0};
  AesStats stats = KroneckerAes(options, [&](const Edge&) {
    consumed.fetch_add(1);
  });
  EXPECT_EQ(stats.cells_visited, 65536u);
  EXPECT_EQ(consumed.load(), stats.num_edges);
}

TEST(TegTest, StaticCountsAreDeterministicAcrossSeeds) {
  // TeG's defining defect: per-cell edge counts don't depend on the RNG.
  TegOptions options;
  options.scale = 10;
  options.num_edges = 8192;
  options.rng_seed = 1;
  TegStats s1 = RunTeg(options, [](const Edge&) {});
  options.rng_seed = 999;
  TegStats s2 = RunTeg(options, [](const Edge&) {});
  EXPECT_EQ(s1.num_edges, s2.num_edges);
  EXPECT_EQ(s1.num_cells, s2.num_cells);
}

TEST(TegTest, EdgesStayInsideTheirCells) {
  TegOptions options;
  options.scale = 8;
  options.grid_scale = 4;
  options.num_edges = 4096;
  EdgeProbability prob(options.seed, options.scale);
  std::uint64_t count = 0;
  RunTeg(options, [&](const Edge& e) {
    EXPECT_LT(e.src, options.NumVertices());
    EXPECT_LT(e.dst, options.NumVertices());
    ++count;
  });
  EXPECT_NEAR(static_cast<double>(count), 4096.0, 4096.0 * 0.25);
}

TEST(ErdosRenyiTest, UniformEndpoints) {
  ErdosRenyiOptions options;
  options.scale = 8;
  options.num_edges = 50000;
  options.dedup = false;
  std::vector<int> src_counts(256, 0);
  ErdosRenyi(options, [&](const Edge& e) { ++src_counts[e.src]; });
  double chi2 = 0;
  double expected = 50000.0 / 256;
  for (int c : src_counts) chi2 += (c - expected) * (c - expected) / expected;
  // 255 dof, 99.9% critical ~330.
  EXPECT_LT(chi2, 330.0);
}

TEST(ErdosRenyiTest, DedupYieldsDistinctEdges) {
  ErdosRenyiOptions options;
  options.scale = 6;
  options.num_edges = 2000;  // half the 4096 cells
  std::set<Edge> edges;
  std::uint64_t n = ErdosRenyi(options, [&](const Edge& e) {
    edges.insert(e);
  });
  EXPECT_EQ(n, 2000u);
  EXPECT_EQ(edges.size(), 2000u);
}

TEST(BarabasiAlbertTest, PowerLawTailAndEdgeCount) {
  BarabasiAlbertOptions options;
  options.num_vertices = 20000;
  options.edges_per_vertex = 4;
  std::vector<std::uint32_t> degree(options.num_vertices, 0);
  std::uint64_t n = BarabasiAlbert(options, [&](const Edge& e) {
    ++degree[e.src];
    ++degree[e.dst];
  });
  std::uint64_t expected =
      (options.num_vertices - options.edges_per_vertex - 1) *
          options.edges_per_vertex +
      options.edges_per_vertex * (options.edges_per_vertex + 1) / 2;
  EXPECT_EQ(n, expected);
  // Preferential attachment: max degree far above the mean (heavy tail).
  std::uint32_t max_degree = *std::max_element(degree.begin(), degree.end());
  double mean_degree = 2.0 * static_cast<double>(n) / options.num_vertices;
  EXPECT_GT(max_degree, 20 * mean_degree);
}

TEST(ScrambleTest, IsAPermutation) {
  for (int scale : {4, 10, 16}) {
    std::set<VertexId> seen;
    VertexId n = VertexId{1} << scale;
    for (VertexId x = 0; x < n; ++x) {
      VertexId y = ScrambleVertex(x, scale, 12345);
      EXPECT_LT(y, n);
      seen.insert(y);
    }
    EXPECT_EQ(seen.size(), n) << "scale " << scale;
  }
}

TEST(ScrambleTest, KeySensitive) {
  int differing = 0;
  for (VertexId x = 0; x < 1024; ++x) {
    if (ScrambleVertex(x, 10, 1) != ScrambleVertex(x, 10, 2)) ++differing;
  }
  EXPECT_GT(differing, 1000);
}

class WespTest : public ::testing::TestWithParam<bool> {};

TEST_P(WespTest, ProducesUniqueEdgesNearTarget) {
  storage::TempDir dir;
  cluster::SimCluster cluster({/*machines=*/2, /*threads=*/2, 0, {}});
  WespOptions options;
  options.scale = 10;
  options.num_edges = 8192;
  options.disk = GetParam();
  options.temp_dir = dir.path();
  options.sort_buffer_items = 1024;

  std::mutex mu;
  std::vector<Edge> all;
  WespStats stats = RunWesp(&cluster, options, [&](int) {
    return [&](const Edge& e) {
      std::lock_guard<std::mutex> lock(mu);
      all.push_back(e);
    };
  });
  EXPECT_EQ(all.size(), stats.num_edges);
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  // All duplicates removed; most of the raw edges survive (the duplicate
  // rate exceeds the paper's large-scale epsilon at this small scale).
  EXPECT_GT(static_cast<double>(stats.num_edges), 8192.0 * 0.75);
  EXPECT_LE(static_cast<double>(stats.num_edges), 8192.0 * 1.011);
  EXPECT_GT(stats.shuffled_bytes, 0u);
  EXPECT_GT(stats.shuffle_seconds, 0.0);
  if (options.disk) {
    EXPECT_GT(stats.spilled_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(MemAndDisk, WespTest, ::testing::Bool());

TEST(WespTest, SkewConcentratesOnMachineZero) {
  cluster::SimCluster cluster({/*machines=*/4, /*threads=*/1, 0, {}});
  WespOptions options;
  options.scale = 12;
  options.num_edges = 1 << 15;
  WespStats stats = RunWesp(&cluster, options);
  // Block partition by source: worker 0 owns the power-law head, so its
  // partition is far above the average |E|/P.
  double average = static_cast<double>(stats.num_edges) / 4;
  EXPECT_GT(static_cast<double>(stats.max_partition_edges), 1.5 * average);
}

TEST(WespTest, MemVariantOomsUnderMachineBudget) {
  cluster::SimCluster cluster(
      {/*machines=*/2, /*threads=*/1, /*memory=*/32 << 10, {}});
  WespOptions options;
  options.scale = 12;
  options.num_edges = 1 << 16;  // 64k edges * 16B = 1 MB >> 32 KB budget
  EXPECT_THROW(RunWesp(&cluster, options), OomError);
}

TEST(Graph500Test, GeneratesAndConstructsValidCsr) {
  cluster::SimCluster cluster({/*machines=*/2, /*threads=*/2, 0, {}});
  Graph500Options options;
  options.scale = 10;
  options.edge_factor = 8;
  std::atomic<std::uint64_t> csr_edges{0};
  std::mutex mu;
  std::vector<bool> machine_seen(2, false);
  Graph500Stats stats = RunGraph500(
      &cluster, options,
      [&](int machine, VertexId lo, const std::vector<std::uint64_t>& offsets,
          const std::vector<VertexId>& adj) {
        std::lock_guard<std::mutex> lock(mu);
        machine_seen[machine] = true;
        EXPECT_EQ(offsets.back(), adj.size());
        for (std::size_t i = 1; i < offsets.size(); ++i) {
          EXPECT_GE(offsets[i], offsets[i - 1]);
          // Sorted adjacency per vertex.
          for (std::uint64_t j = offsets[i - 1] + 1; j < offsets[i]; ++j) {
            EXPECT_LE(adj[j - 1], adj[j]);
          }
        }
        (void)lo;
        csr_edges.fetch_add(adj.size());
      });
  EXPECT_EQ(stats.num_edges, options.NumEdges());
  EXPECT_EQ(csr_edges.load(), options.NumEdges());
  EXPECT_TRUE(machine_seen[0] && machine_seen[1]);
  EXPECT_GT(stats.network_seconds, 0.0);
  EXPECT_GT(stats.construction_seconds, 0.0);
}

TEST(Graph500Test, ConstructionOverheadShrinksOnFastNetwork) {
  // Figure 14(b): Graph500's construction overhead is dominated by the
  // shuffle, so it is substantial on 1 GbE and collapses on InfiniBand.
  // (The paper reports > 90% on 1 GbE with the C reference kernel; our
  // generation kernel is slower relative to the modeled wire, so the
  // absolute ratio is lower — the *ordering* is the reproduced claim.)
  Graph500Options options;
  options.scale = 16;
  options.edge_factor = 16;

  auto ratio_with = [&](const cluster::NetworkModel& net) {
    cluster::SimCluster cluster({/*machines=*/4, /*threads=*/1, 0, net});
    Graph500Stats stats = RunGraph500(&cluster, options);
    return stats.construction_seconds /
           (stats.construction_seconds + stats.generation_seconds);
  };
  double ratio_1g = ratio_with(cluster::NetworkModel::OneGigabitEthernet());
  double ratio_ib = ratio_with(cluster::NetworkModel::InfinibandEdr());
  EXPECT_GT(ratio_1g, 0.15);
  EXPECT_GT(ratio_1g, 1.2 * ratio_ib);
}

TEST(Graph500Test, ScrambledDegreesAreSpreadAcrossIdSpace) {
  // Without scrambling, the top-degree vertices are the small IDs. With it,
  // high-degree vertices land anywhere.
  cluster::SimCluster cluster({1, 2, 0, {}});
  Graph500Options options;
  options.scale = 12;
  options.edge_factor = 8;
  std::vector<std::uint32_t> out_degree(options.NumVertices(), 0);
  std::mutex mu;
  RunGraph500(&cluster, options,
              [&](int, VertexId lo, const std::vector<std::uint64_t>& offsets,
                  const std::vector<VertexId>&) {
                std::lock_guard<std::mutex> lock(mu);
                for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
                  out_degree[lo + i] =
                      static_cast<std::uint32_t>(offsets[i + 1] - offsets[i]);
                }
              });
  VertexId argmax = 0;
  for (VertexId v = 0; v < options.NumVertices(); ++v) {
    if (out_degree[v] > out_degree[argmax]) argmax = v;
  }
  // The hub is almost surely not in the first few IDs once scrambled.
  EXPECT_GT(argmax, 16u);
}

}  // namespace
}  // namespace tg::baseline
