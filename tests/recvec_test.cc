#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/cdf_vector.h"
#include "core/edge_determiner.h"
#include "core/on_demand_cdf.h"
#include "core/rec_vec.h"
#include "model/edge_probability.h"
#include "model/noise.h"
#include "numeric/double_double.h"
#include "rng/random.h"

namespace tg::core {
namespace {

using model::EdgeProbability;
using model::NoiseVector;
using model::SeedMatrix;

/// Brute-force CDF F_u(r) = sum_{v < r} K_{u,v}.
std::vector<double> BruteForceCdf(const EdgeProbability& prob, VertexId u) {
  VertexId n = prob.num_vertices();
  std::vector<double> cdf(n + 1, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    cdf[v + 1] = cdf[v] + prob.CellProbability(u, v);
  }
  return cdf;
}

TEST(RecVecTest, MatchesDefinition2AgainstBruteForceCdf) {
  const int scale = 6;
  SeedMatrix seed(0.5, 0.2, 0.2, 0.1);
  EdgeProbability prob(seed, scale);
  NoiseVector noise(seed, scale);
  for (VertexId u = 0; u < prob.num_vertices(); ++u) {
    RecVec<double> rv(noise, u);
    std::vector<double> cdf = BruteForceCdf(prob, u);
    for (int x = 0; x <= scale; ++x) {
      EXPECT_NEAR(rv[x], cdf[VertexId{1} << x], 1e-12)
          << "u=" << u << " x=" << x;
    }
    EXPECT_NEAR(rv.Total(), prob.RowProbability(u), 1e-12);
  }
}

TEST(RecVecTest, PaperWorkedExampleSourceVertex2) {
  // Figure 3 / Section 4.2: seed [0.5, 0.2; 0.2, 0.1], |V| = 8, u = 2 gives
  // RecVec = [0.05, 0.07, 0.105, 0.147].
  SeedMatrix seed(0.5, 0.2, 0.2, 0.1);
  NoiseVector noise(seed, 3);
  RecVec<double> rv(noise, 2);
  EXPECT_NEAR(rv[0], 0.05, 1e-12);
  EXPECT_NEAR(rv[1], 0.07, 1e-12);
  EXPECT_NEAR(rv[2], 0.105, 1e-12);
  EXPECT_NEAR(rv[3], 0.147, 1e-12);
}

TEST(RecVecTest, Lemma2ClosedFormMatchesConstruction) {
  // RecVec[x] = (a/(a+b))^(L-x-Bits(u>>x)) * (c/(c+d))^Bits(u>>x) * P_u->.
  const int scale = 10;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  EdgeProbability prob(seed, scale);
  for (VertexId u : {VertexId{0}, VertexId{5}, VertexId{513}, VertexId{1023}}) {
    RecVec<double> rv(noise, u);
    double pu = prob.RowProbability(u);
    for (int x = 0; x <= scale; ++x) {
      int ones = std::popcount(u >> x);
      double expected = std::pow(seed.a() / (seed.a() + seed.b()),
                                 scale - x - ones) *
                        std::pow(seed.c() / (seed.c() + seed.d()), ones) * pu;
      EXPECT_NEAR(rv[x], expected, 1e-12) << "u=" << u << " x=" << x;
    }
  }
}

TEST(RecVecTest, ScaleSymmetryLemma3) {
  // P_{u->(R+r)} / P_{u->r} == K_{u[k],1} / K_{u[k],0} for R = 2^k.
  const int scale = 5;
  SeedMatrix seed(0.5, 0.2, 0.2, 0.1);
  EdgeProbability prob(seed, scale);
  for (VertexId u = 0; u < prob.num_vertices(); ++u) {
    for (int k = 0; k < scale; ++k) {
      VertexId big_r = VertexId{1} << k;
      double sigma_expected = seed.Sigma((u >> k) & 1);
      for (VertexId r = 0; r < big_r; ++r) {
        double ratio = prob.CellProbability(u, big_r + r) /
                       prob.CellProbability(u, r);
        EXPECT_NEAR(ratio, sigma_expected, 1e-9)
            << "u=" << u << " k=" << k << " r=" << r;
      }
    }
  }
}

TEST(RecVecTest, TranslationalSymmetryLemma4) {
  // F_u(R + r) = F_u(R) + sigma_{u[k]} * F_u(r).
  const int scale = 5;
  SeedMatrix seed(0.5, 0.2, 0.2, 0.1);
  EdgeProbability prob(seed, scale);
  for (VertexId u = 0; u < prob.num_vertices(); ++u) {
    std::vector<double> cdf = BruteForceCdf(prob, u);
    for (int k = 0; k < scale; ++k) {
      VertexId big_r = VertexId{1} << k;
      double sigma = seed.Sigma((u >> k) & 1);
      for (VertexId r = 0; r <= big_r; ++r) {
        EXPECT_NEAR(cdf[big_r + r], cdf[big_r] + sigma * cdf[r], 1e-12);
      }
    }
  }
}

TEST(RecVecTest, SigmaFromStoredValuesMatchesSeedRatio) {
  const int scale = 8;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  for (VertexId u : {VertexId{0}, VertexId{37}, VertexId{255}}) {
    RecVec<double> rv(noise, u);
    for (int k = 0; k < scale; ++k) {
      EXPECT_NEAR(rv.Sigma(k), seed.Sigma((u >> k) & 1), 1e-9)
          << "u=" << u << " k=" << k;
    }
  }
}

TEST(RecVecTest, PaperWorkedExampleEdgeDetermination) {
  // Section 4.2 / Figure 5: u = 2, x = 0.133 must produce destination 6.
  SeedMatrix seed(0.5, 0.2, 0.2, 0.1);
  NoiseVector noise(seed, 3);
  RecVec<double> rv(noise, 2);
  EXPECT_EQ(DetermineEdge(rv, 0.133), VertexId{6});
  // And the linear variant must agree.
  EXPECT_EQ(DetermineEdgeLinear(rv, 0.133), VertexId{6});
}

TEST(RecVecTest, DetermineEdgeIsExactCdfInverse) {
  // For every cell boundary, x just inside [F(v), F(v+1)) must map to v.
  const int scale = 6;
  SeedMatrix seed(0.5, 0.2, 0.2, 0.1);
  EdgeProbability prob(seed, scale);
  NoiseVector noise(seed, scale);
  for (VertexId u = 0; u < prob.num_vertices(); u += 7) {
    RecVec<double> rv(noise, u);
    std::vector<double> cdf = BruteForceCdf(prob, u);
    for (VertexId v = 0; v < prob.num_vertices(); ++v) {
      double mid = (cdf[v] + cdf[v + 1]) / 2;
      EXPECT_EQ(DetermineEdge(rv, mid), v) << "u=" << u << " v=" << v;
      EXPECT_EQ(DetermineEdgeLinear(rv, mid), v) << "u=" << u << " v=" << v;
    }
  }
}

TEST(RecVecTest, DetermineEdgeDistributionMatchesCellProbabilities) {
  // Chi-square of empirical destinations against K_{u,v}.
  const int scale = 4;
  SeedMatrix seed = SeedMatrix::Graph500();
  EdgeProbability prob(seed, scale);
  NoiseVector noise(seed, scale);
  VertexId u = 5;
  RecVec<double> rv(noise, u);
  rng::Rng rng(123);
  const int n = 200000;
  std::vector<int> counts(16, 0);
  for (int i = 0; i < n; ++i) {
    double x = NextUniformReal<double>(&rng, rv.Total());
    ++counts[DetermineEdge(rv, x)];
  }
  double chi2 = 0;
  for (VertexId v = 0; v < 16; ++v) {
    double expected = n * prob.CellProbability(u, v) / prob.RowProbability(u);
    chi2 += (counts[v] - expected) * (counts[v] - expected) / expected;
  }
  // 15 dof, 99.9% critical value ~37.7.
  EXPECT_LT(chi2, 37.7);
}

class DeterminerVariantTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(DeterminerVariantTest, AllIdeaCombinationsDrawSameDistribution) {
  auto [idea1, idea2, idea3] = GetParam();
  DeterminerOptions opts;
  opts.reuse_rec_vec = idea1;
  opts.reduce_recursions = idea2;
  opts.reuse_random_value = idea3;

  const int scale = 4;
  SeedMatrix seed = SeedMatrix::Graph500();
  EdgeProbability prob(seed, scale);
  NoiseVector noise(seed, scale);
  VertexId u = 9;
  RecVec<double> rv(noise, u);
  rng::Rng rng(99);
  const int n = 100000;
  std::vector<int> counts(16, 0);
  for (int i = 0; i < n; ++i) {
    double x = NextUniformReal<double>(&rng, rv.Total());
    ++counts[DetermineEdgeWithOptions(rv, x, &rng, opts)];
  }
  double chi2 = 0;
  for (VertexId v = 0; v < 16; ++v) {
    double expected = n * prob.CellProbability(u, v) / prob.RowProbability(u);
    chi2 += (counts[v] - expected) * (counts[v] - expected) / expected;
  }
  EXPECT_LT(chi2, 37.7) << "ideas: " << idea1 << idea2 << idea3;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DeterminerVariantTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()));

TEST(RecVecTest, DoubleDoubleAgreesWithDoubleAtModerateScale) {
  const int scale = 12;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  for (VertexId u : {VertexId{0}, VertexId{100}, VertexId{4095}}) {
    RecVec<double> rvd(noise, u);
    RecVec<numeric::DoubleDouble> rvq(noise, u);
    for (int x = 0; x <= scale; ++x) {
      EXPECT_NEAR(rvq[x].ToDouble(), rvd[x], 1e-12 * rvd[scale]);
    }
  }
}

TEST(RecVecTest, DoubleDoubleDetermineEdgeMatchesDouble) {
  const int scale = 8;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  VertexId u = 77;
  RecVec<double> rvd(noise, u);
  RecVec<numeric::DoubleDouble> rvq(noise, u);
  rng::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble(rvd.Total() * 0.999999);
    VertexId vd = DetermineEdge(rvd, x);
    VertexId vq = DetermineEdge(rvq, numeric::DoubleDouble(x));
    EXPECT_EQ(vd, vq);
  }
}

TEST(RecVecTest, NoisyRecVecMatchesBruteForceNoisyKronecker) {
  // Build the noisy Kronecker matrix explicitly from per-level matrices and
  // compare F'_u(2^x) (Lemma 8 realized through per-level products).
  const int scale = 5;
  SeedMatrix seed = SeedMatrix::Graph500();
  rng::Rng noise_rng(31);
  NoiseVector noise(seed, scale, 0.1, &noise_rng);

  const VertexId n = VertexId{1} << scale;
  // cell(u, v) = prod over levels of K_level(u_bit, v_bit), level 0 = MSB.
  auto cell = [&](VertexId u, VertexId v) {
    double p = 1.0;
    for (int level = 0; level < scale; ++level) {
      int bitpos = scale - 1 - level;
      p *= noise.Entry(level, (u >> bitpos) & 1, (v >> bitpos) & 1);
    }
    return p;
  };

  for (VertexId u = 0; u < n; u += 3) {
    RecVec<double> rv(noise, u);
    double cum = 0.0;
    VertexId next_pow = 1;
    int x = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (v == next_pow >> 1 && v == 0) {
        // F(2^0) handled below after adding v=0.
      }
      cum += cell(u, v);
      if (v + 1 == (VertexId{1} << x)) {
        EXPECT_NEAR(rv[x], cum, 1e-12) << "u=" << u << " x=" << x;
        ++x;
      }
    }
    EXPECT_NEAR(rv[scale], cum, 1e-12);
  }
}

TEST(CdfVectorTest, AgreesWithRecVecAndBruteForce) {
  const int scale = 7;
  SeedMatrix seed = SeedMatrix::Graph500();
  EdgeProbability prob(seed, scale);
  NoiseVector noise(seed, scale);
  for (VertexId u : {VertexId{0}, VertexId{42}, VertexId{127}}) {
    CdfVector cdf(noise, u);
    RecVec<double> rv(noise, u);
    EXPECT_NEAR(cdf.Total(), rv.Total(), 1e-12);
    for (int x = 0; x <= scale; ++x) {
      EXPECT_NEAR(cdf[VertexId{1} << x], rv[x], 1e-12);
    }
    // All three inversion methods agree on every cell midpoint.
    for (VertexId v = 0; v < prob.num_vertices(); ++v) {
      double mid = (cdf[v] + cdf[v + 1]) / 2;
      EXPECT_EQ(cdf.InvertLinear(mid), v);
      EXPECT_EQ(cdf.InvertBinary(mid), v);
      EXPECT_EQ(DetermineEdge(rv, mid), v);
    }
    EXPECT_EQ(cdf.MemoryBytes(), ((VertexId{1} << scale) + 1) * 8);
  }
}

TEST(OnDemandCdfTest, AgreesWithRecVecEverywhere) {
  const int scale = 10;
  SeedMatrix seed = SeedMatrix::Graph500();
  rng::Rng noise_rng(3);
  NoiseVector noise(seed, scale, 0.1, &noise_rng);
  for (VertexId u : {VertexId{0}, VertexId{77}, VertexId{1023}}) {
    RecVec<double> rv(noise, u);
    OnDemandCdf<double> od(&noise, u);
    EXPECT_EQ(od.scale(), scale);
    for (int x = 0; x <= scale; ++x) {
      EXPECT_NEAR(od[x], rv[x], 1e-14) << "u=" << u << " x=" << x;
    }
    for (int k = 0; k < scale; ++k) {
      EXPECT_NEAR(od.Sigma(k), rv.Sigma(k), 1e-9);
      EXPECT_NEAR(od.InvSigma(k), rv.InvSigma(k),
                  1e-9 * std::abs(rv.InvSigma(k)));
    }
    EXPECT_GT(od.evaluations(), 0u);
  }
}

TEST(OnDemandCdfTest, DetermineEdgeMatchesRecVecPath) {
  const int scale = 8;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  VertexId u = 99;
  RecVec<double> rv(noise, u);
  OnDemandCdf<double> od(&noise, u);
  rng::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    double x = rng.NextDouble(rv.Total() * 0.999999);
    EXPECT_EQ(DetermineEdge(rv, x), DetermineEdge(od, x));
  }
}

TEST(RecVecTest, InvSigmaIsReciprocalOfSigma) {
  const int scale = 12;
  NoiseVector noise(SeedMatrix::Graph500(), scale);
  RecVec<double> rv(noise, 0xABC);
  for (int k = 0; k < scale; ++k) {
    EXPECT_NEAR(rv.InvSigma(k) * rv.Sigma(k), 1.0, 1e-12);
  }
}

TEST(CdfVectorTest, NoisyCdfMatchesNoisyRecVec) {
  const int scale = 6;
  SeedMatrix seed = SeedMatrix::Graph500();
  rng::Rng rng(17);
  NoiseVector noise(seed, scale, 0.1, &rng);
  for (VertexId u : {VertexId{3}, VertexId{60}}) {
    CdfVector cdf(noise, u);
    RecVec<double> rv(noise, u);
    for (int x = 0; x <= scale; ++x) {
      EXPECT_NEAR(cdf[VertexId{1} << x], rv[x], 1e-12);
    }
  }
}

TEST(RecVecTest, MemoryFootprintIsLogarithmic) {
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise36(seed, 36);
  RecVec<double> rv(noise36, 12345);
  // Section 4.2: a trillion-scale RecVec is ~(36+1)*8 bytes.
  EXPECT_EQ(rv.MemoryBytes(), 37u * sizeof(double));
}

TEST(RecVecTest, AllOnesAndAllZerosSources) {
  // Extreme rows: u = 0 (largest marginal) and u = |V|-1 (smallest).
  const int scale = 20;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  RecVec<double> rv0(noise, 0);
  RecVec<double> rv1(noise, (VertexId{1} << scale) - 1);
  EXPECT_NEAR(rv0.Total(), std::pow(0.76, scale), 1e-12);
  EXPECT_NEAR(rv1.Total(), std::pow(0.24, scale), 1e-18);
  // CDF must be non-decreasing in x for any source.
  for (int x = 0; x < scale; ++x) {
    EXPECT_LE(rv0[x], rv0[x + 1]);
    EXPECT_LE(rv1[x], rv1[x + 1]);
  }
}

}  // namespace
}  // namespace tg::core
