#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/partitioner.h"
#include "model/edge_probability.h"
#include "model/noise.h"
#include "model/seed_matrix.h"

namespace tg::core {
namespace {

using model::EdgeProbability;
using model::NoiseVector;
using model::SeedMatrix;

TEST(PartitionerTest, CumulativeMatchesEdgeProbabilityHelper) {
  const int scale = 8;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  EdgeProbability prob(seed, scale);
  for (VertexId u = 0; u <= prob.num_vertices(); u += 13) {
    EXPECT_NEAR(CumulativeRowProbability(noise, u),
                prob.CumulativeRowProbability(u), 1e-12);
  }
}

TEST(PartitionerTest, CumulativeWithNoiseMatchesBruteForce) {
  const int scale = 6;
  SeedMatrix seed = SeedMatrix::Graph500();
  rng::Rng rng(55);
  NoiseVector noise(seed, scale, 0.1, &rng);

  // Brute force: P'_{u->} per Lemma 7 (product of per-level row sums).
  auto row = [&](VertexId u) {
    double p = 1.0;
    for (int bit = 0; bit < scale; ++bit) {
      p *= noise.RowSumAtBit(bit, static_cast<int>((u >> bit) & 1));
    }
    return p;
  };
  double cum = 0;
  for (VertexId u = 0; u <= (VertexId{1} << scale); ++u) {
    EXPECT_NEAR(CumulativeRowProbability(noise, u), cum, 1e-12) << "u=" << u;
    if (u < (VertexId{1} << scale)) cum += row(u);
  }
  EXPECT_NEAR(cum, 1.0, 1e-12);
}

TEST(PartitionerTest, CdfBoundariesCoverRangeAndAreMonotone) {
  const int scale = 16;
  NoiseVector noise(SeedMatrix::Graph500(), scale);
  for (int bins : {1, 2, 7, 16, 60}) {
    std::vector<VertexId> b = PartitionByCdf(noise, bins);
    ASSERT_EQ(b.size(), static_cast<std::size_t>(bins + 1));
    EXPECT_EQ(b.front(), 0u);
    EXPECT_EQ(b.back(), VertexId{1} << scale);
    for (int i = 1; i <= bins; ++i) EXPECT_GE(b[i], b[i - 1]);
  }
}

TEST(PartitionerTest, CdfBinsBalanceExpectedMass) {
  const int scale = 18;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  EdgeProbability prob(seed, scale);
  const int bins = 10;
  std::vector<VertexId> b = PartitionByCdf(noise, bins);
  for (int i = 0; i < bins; ++i) {
    double mass = prob.CumulativeRowProbability(b[i + 1]) -
                  prob.CumulativeRowProbability(b[i]);
    // Each bin within a few percent of 1/bins (quantization: one vertex can
    // carry nontrivial mass at the head of a skewed distribution).
    EXPECT_NEAR(mass, 1.0 / bins, 0.05 / bins + 2 * prob.MaxRowProbability())
        << "bin " << i;
  }
}

TEST(PartitionerTest, SkewedSeedStillBalances) {
  const int scale = 16;
  SeedMatrix seed(0.7, 0.15, 0.1, 0.05);
  NoiseVector noise(seed, scale);
  EdgeProbability prob(seed, scale);
  const int bins = 8;
  std::vector<VertexId> b = PartitionByCdf(noise, bins);
  // Vertex-count per bin is wildly uneven (that is the point), but mass is
  // even.
  double min_mass = 1.0, max_mass = 0.0;
  for (int i = 0; i < bins; ++i) {
    double mass = prob.CumulativeRowProbability(b[i + 1]) -
                  prob.CumulativeRowProbability(b[i]);
    min_mass = std::min(min_mass, mass);
    max_mass = std::max(max_mass, mass);
  }
  EXPECT_LT(max_mass / min_mass, 1.3);
  // And the first bin (densest rows) must hold far fewer vertices than the
  // last.
  EXPECT_LT(b[1] - b[0], (b[bins] - b[bins - 1]) / 4);
}

TEST(PartitionerTest, CombineProtocolAgreesWithCdfApproximately) {
  const int scale = 12;
  SeedMatrix seed = SeedMatrix::Graph500();
  NoiseVector noise(seed, scale);
  EdgeProbability prob(seed, scale);
  const std::uint64_t num_edges = 16ULL << scale;
  const int bins = 6;
  std::vector<VertexId> by_cdf = PartitionByCdf(noise, bins);
  std::vector<VertexId> by_combine =
      PartitionByCombine(noise, num_edges, /*num_threads=*/4, bins);
  ASSERT_EQ(by_combine.size(), by_cdf.size());
  // The combine path packs greedily so boundaries shift by up to one bin's
  // worth of head vertices; compare realized mass balance instead of exact
  // boundary equality.
  for (int i = 0; i < bins; ++i) {
    double mass = prob.CumulativeRowProbability(by_combine[i + 1]) -
                  prob.CumulativeRowProbability(by_combine[i]);
    EXPECT_NEAR(mass, 1.0 / bins, 0.6 / bins) << "bin " << i;
  }
  EXPECT_EQ(by_combine.front(), 0u);
  EXPECT_EQ(by_combine.back(), VertexId{1} << scale);
}

TEST(PartitionerTest, RangeCdfMatchesWholeRangePartition) {
  // Restricting to [0, |V|) uses the same targets as PartitionByCdf, so the
  // boundaries must agree exactly.
  const int scale = 14;
  NoiseVector noise(SeedMatrix::Graph500(), scale);
  for (int bins : {1, 3, 16}) {
    EXPECT_EQ(PartitionRangeByCdf(noise, 0, VertexId{1} << scale, bins),
              PartitionByCdf(noise, bins));
  }
}

TEST(PartitionerTest, RangeCdfSubdividesEachBinEvenly) {
  // Splitting each top-level bin into sub-bins must stay inside the bin,
  // cover it exactly, and carry ~equal shares of the bin's own mass — the
  // property the work-stealing scheduler's chunks rely on.
  const int scale = 16;
  SeedMatrix seed(0.7, 0.15, 0.1, 0.05);
  NoiseVector noise(seed, scale);
  EdgeProbability prob(seed, scale);
  const int bins = 4;
  const int sub_bins = 8;
  std::vector<VertexId> outer = PartitionByCdf(noise, bins);
  for (int i = 0; i < bins; ++i) {
    std::vector<VertexId> inner =
        PartitionRangeByCdf(noise, outer[i], outer[i + 1], sub_bins);
    ASSERT_EQ(inner.size(), static_cast<std::size_t>(sub_bins + 1));
    EXPECT_EQ(inner.front(), outer[i]);
    EXPECT_EQ(inner.back(), outer[i + 1]);
    const double bin_mass = prob.CumulativeRowProbability(outer[i + 1]) -
                            prob.CumulativeRowProbability(outer[i]);
    for (int j = 0; j < sub_bins; ++j) {
      EXPECT_GE(inner[j + 1], inner[j]);
      double mass = prob.CumulativeRowProbability(inner[j + 1]) -
                    prob.CumulativeRowProbability(inner[j]);
      EXPECT_NEAR(mass, bin_mass / sub_bins,
                  0.05 * bin_mass + 2 * prob.MaxRowProbability())
          << "bin " << i << " sub " << j;
    }
  }
}

TEST(PartitionerTest, RangeCdfEmptyRange) {
  NoiseVector noise(SeedMatrix::Graph500(), 10);
  std::vector<VertexId> b = PartitionRangeByCdf(noise, 100, 100, 4);
  ASSERT_EQ(b.size(), 5u);
  for (VertexId v : b) EXPECT_EQ(v, 100u);
}

TEST(PartitionerTest, SingleBinIsWholeRange) {
  NoiseVector noise(SeedMatrix::Graph500(), 10);
  std::vector<VertexId> b = PartitionByCdf(noise, 1);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 1024u);
}

TEST(PartitionerTest, MoreBinsThanMassCarryingVerticesDegradesGracefully) {
  // Tiny graph, many bins: boundaries must stay monotone and cover the range.
  NoiseVector noise(SeedMatrix::Graph500(), 3);
  std::vector<VertexId> b = PartitionByCdf(noise, 32);
  ASSERT_EQ(b.size(), 33u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 8u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GE(b[i], b[i - 1]);
}

}  // namespace
}  // namespace tg::core
