#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "numeric/bits.h"
#include "numeric/double_double.h"

namespace tg::numeric {
namespace {

TEST(DoubleDoubleTest, ConstructionAndConversion) {
  DoubleDouble zero;
  EXPECT_EQ(zero.ToDouble(), 0.0);

  DoubleDouble one(1.0);
  EXPECT_EQ(one.ToDouble(), 1.0);

  DoubleDouble x(1.0, 1e-20);
  EXPECT_EQ(x.hi(), 1.0);
  EXPECT_EQ(x.lo(), 1e-20);
}

TEST(DoubleDoubleTest, AdditionIsExactForRepresentableSplits) {
  // 1 + 2^-80 is not representable in a double but is in a double-double.
  DoubleDouble a(1.0);
  DoubleDouble b(std::ldexp(1.0, -80));
  DoubleDouble s = a + b;
  EXPECT_EQ(s.hi(), 1.0);
  EXPECT_EQ(s.lo(), std::ldexp(1.0, -80));
  // Subtracting 1 back recovers the tiny term exactly.
  DoubleDouble diff = s - a;
  EXPECT_EQ(diff.ToDouble(), std::ldexp(1.0, -80));
}

TEST(DoubleDoubleTest, MultiplicationCapturesRoundoff) {
  // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60; the 2^-60 term is lost in double.
  double eps = std::ldexp(1.0, -30);
  DoubleDouble x = DoubleDouble(1.0) + DoubleDouble(eps);
  DoubleDouble sq = x * x;
  DoubleDouble expected =
      DoubleDouble(1.0) + DoubleDouble(std::ldexp(1.0, -29)) +
      DoubleDouble(std::ldexp(1.0, -60));
  EXPECT_EQ(sq.hi(), expected.hi());
  EXPECT_NEAR(sq.lo(), expected.lo(), std::ldexp(1.0, -106));
}

TEST(DoubleDoubleTest, DivisionRoundTrips) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  for (int i = 0; i < 1000; ++i) {
    DoubleDouble a(dist(rng), dist(rng) * 1e-18);
    DoubleDouble b(dist(rng), dist(rng) * 1e-18);
    DoubleDouble q = a / b;
    DoubleDouble back = q * b;
    // |back - a| should be ~1 ulp of double-double, far below double eps^1.5.
    double err = std::abs((back - a).ToDouble());
    EXPECT_LT(err, 1e-28 * std::abs(a.ToDouble()));
  }
}

TEST(DoubleDoubleTest, ComparisonOrdersByValue) {
  DoubleDouble a(1.0, 0.0);
  DoubleDouble b(1.0, 1e-20);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, DoubleDouble(1.0));
  EXPECT_LT(DoubleDouble(0.5), DoubleDouble(0.75));
}

TEST(DoubleDoubleTest, PowMatchesRepeatedMultiplication) {
  DoubleDouble base(0.57);
  DoubleDouble by_mult(1.0);
  for (unsigned n = 0; n <= 40; ++n) {
    DoubleDouble by_pow = DoubleDouble::Pow(base, n);
    EXPECT_NEAR(by_pow.ToDouble(), by_mult.ToDouble(),
                1e-25 * by_mult.ToDouble() + 1e-300);
    by_mult *= base;
  }
}

TEST(DoubleDoubleTest, PrecisionBeyondDouble) {
  // Accumulate 2^20 copies of (2^-70): exact in double-double when added to
  // 1.0, entirely lost in double.
  double tiny = std::ldexp(1.0, -70);
  DoubleDouble acc(1.0);
  double dacc = 1.0;
  for (int i = 0; i < (1 << 20); ++i) {
    acc += DoubleDouble(tiny);
    dacc += tiny;
  }
  EXPECT_EQ(dacc, 1.0);  // double lost everything
  EXPECT_NEAR((acc - DoubleDouble(1.0)).ToDouble(),
              std::ldexp(1.0, -50), std::ldexp(1.0, -80));
}

TEST(DoubleDoubleTest, NegationAndSubtraction) {
  DoubleDouble a(3.5, 1e-18);
  DoubleDouble na = -a;
  EXPECT_EQ(na.hi(), -3.5);
  EXPECT_EQ((a + na).ToDouble(), 0.0);
  EXPECT_EQ((a - a).ToDouble(), 0.0);
}

TEST(BitsTest, PopcountBasics) {
  EXPECT_EQ(Bits(0), 0);
  EXPECT_EQ(Bits(1), 1);
  EXPECT_EQ(Bits(0xFF), 8);
  EXPECT_EQ(Bits(~std::uint64_t{0}), 64);
}

TEST(BitsTest, BitsLowRespectsWidth) {
  EXPECT_EQ(BitsLow(0xFF, 4), 4);
  EXPECT_EQ(BitsLow(0xF0, 4), 0);
  EXPECT_EQ(BitsLow(0xF0, 8), 4);
  EXPECT_EQ(BitsLow(~std::uint64_t{0}, 64), 64);
  EXPECT_EQ(BitsLow(~std::uint64_t{0}, 0), 0);
}

TEST(BitsTest, ZeroBitsLowIsComplement) {
  for (int width = 1; width <= 20; ++width) {
    std::uint64_t x = 0xDEADBEEFCAFEBABEULL;
    EXPECT_EQ(BitsLow(x, width) + ZeroBitsLow(x, width), width);
  }
}

TEST(BitsTest, BitAtMatchesShift) {
  std::uint64_t x = 0b101101;
  EXPECT_EQ(BitAt(x, 0), 1);
  EXPECT_EQ(BitAt(x, 1), 0);
  EXPECT_EQ(BitAt(x, 2), 1);
  EXPECT_EQ(BitAt(x, 3), 1);
  EXPECT_EQ(BitAt(x, 4), 0);
  EXPECT_EQ(BitAt(x, 5), 1);
}

TEST(BitsTest, Log2Functions) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(1ULL << 47), 47);
  EXPECT_EQ(Log2Exact(1ULL << 20), 20);
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 33));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(0));
}

}  // namespace
}  // namespace tg::numeric
